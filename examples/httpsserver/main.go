//go:build linux

// HTTPS server example: the full QTLS stack end-to-end over real TCP —
// an event-driven worker with epoll, the minitls TLS 1.2 stack in fiber
// async mode, the QAT engine with heuristic polling and kernel-bypass
// notification — then a few client requests against it.
//
//	go run ./examples/httpsserver
//
// Pass a fault scenario to watch graceful degradation: offloads that the
// sick device swallows time out and complete in software instead of
// hanging the handshake.
//
//	go run ./examples/httpsserver -fault 'stall:op=rsa,p=1' -op-timeout 10ms
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"qtls/internal/fault"
	"qtls/internal/loadgen"
	"qtls/internal/minitls"
	"qtls/internal/qat"
	"qtls/internal/server"
	"qtls/internal/trace"
)

func main() {
	var (
		faultSpec = flag.String("fault", "", "device fault scenario, e.g. 'stall:op=rsa,p=1' (see internal/fault)")
		opTimeout = flag.Duration("op-timeout", 10*time.Millisecond, "per-op offload deadline before software fallback")
		doMetrics = flag.Bool("metrics", false, "trace offload phases and print a phase-latency line every 500ms")
	)
	flag.Parse()

	log.Print("generating RSA-2048 identity...")
	id, err := minitls.NewRSAIdentity(2048)
	if err != nil {
		log.Fatal(err)
	}

	inj, err := fault.ParseSpec(*faultSpec, 1)
	if err != nil {
		log.Fatalf("-fault: %v", err)
	}
	dev := qat.NewDevice(qat.DeviceSpec{Endpoints: 3, EnginesPerEndpoint: 4, Injector: inj})
	defer dev.Close()

	run := server.ConfigQTLS
	if inj != nil {
		log.Printf("%s", inj)
		run.OpTimeout = *opTimeout
		run.Breaker = &fault.BreakerConfig{}
	}

	var rec *trace.Recorder
	if *doMetrics {
		rec = trace.NewRecorder(4096)
		rec.SetEnabled(true)
	}
	var ticketKey [32]byte
	copy(ticketKey[:], "httpsserver-example-ticket-key!!")
	srv, err := server.New(server.Options{
		Addr:    "127.0.0.1:0",
		Workers: 2,
		Run:     run,
		TLS: &minitls.Config{
			Identity:     id,
			SessionCache: minitls.NewSessionCache(1024),
			TicketKey:    &ticketKey,
		},
		Device:  dev,
		Handler: server.SizedBodyHandler(1 << 20),
		Trace:   rec,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()
	log.Printf("QTLS server listening on https://%s (paths like /4096 serve 4 KiB)", srv.Addr())

	if *doMetrics {
		log.Print("observability on: /metrics, /stub_status, /debug/trace")
		stopTick := make(chan struct{})
		defer close(stopTick)
		go func() {
			tick := time.NewTicker(500 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stopTick:
					return
				case <-tick.C:
				}
				line := "phase latency p50/p99 µs:"
				for _, ph := range trace.OffloadPhases() {
					h, ok := srv.Metrics().LookupHistogram(trace.PhaseSeriesName(ph))
					if !ok || h.Count() == 0 {
						continue
					}
					line += fmt.Sprintf("  %s %.1f/%.1f", ph,
						h.Quantile(0.50)/1e3, h.Quantile(0.99)/1e3)
				}
				log.Print(line)
			}
		}()
	}

	// Drive it: 8 clients make connections with one request each for 2s.
	res := loadgen.STime(loadgen.STimeOptions{
		Addr:        srv.Addr(),
		Clients:     8,
		Duration:    2 * time.Second,
		RequestPath: "/4096",
	})
	fmt.Printf("\nclient results: %s\n", res)

	st := srv.Stats()
	fmt.Printf("server stats:   handshakes=%d requests=%d asyncEvents=%d heuristicPolls=%d\n",
		st.Handshakes, st.Requests, st.AsyncEvents, st.HeuristicPolls)
	var fw uint64
	for _, c := range dev.Counters() {
		fw += c.TotalResponses()
	}
	fmt.Printf("QAT fw_counters: %d crypto operations offloaded\n", fw)
	if inj != nil {
		snap := srv.Metrics().Snapshot()
		fmt.Printf("degradation:    faults=%d timeouts=%d swFallbacks=%d trips=%d\n",
			snap["qat_faults_injected"], snap["qat_op_timeouts"],
			snap["qat_sw_fallbacks"], snap["qat_instance_trips"])
	}
}
