//go:build linux

// Loadtest example: compares the paper's five offload configurations on
// the functional stack (real sockets, real crypto, simulated QAT device)
// with a closed-loop full-handshake workload — a laptop-scale Fig. 7a.
//
// Interpretation depends on host cores: the simulated accelerator's
// engines are goroutines, so offload only wins wall-clock time when spare
// cores exist to run them (on a single-core host SW wins and the async
// configurations merely demonstrate the machinery). The paper's
// performance figures are reproduced on the calibrated discrete-event
// model instead: see cmd/qtlsbench.
//
//	go run ./examples/loadtest [-duration 2s] [-clients 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"qtls/internal/loadgen"
	"qtls/internal/minitls"
	"qtls/internal/qat"
	"qtls/internal/server"
)

func main() {
	duration := flag.Duration("duration", 2*time.Second, "measurement per configuration")
	clients := flag.Int("clients", 8, "concurrent closed-loop clients")
	workers := flag.Int("workers", 2, "server workers")
	flag.Parse()

	log.Print("generating RSA-2048 identity...")
	id, err := minitls.NewRSAIdentity(2048)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %10s %10s %12s\n", "config", "conns", "CPS", "avg latency")
	for _, run := range server.Configurations() {
		var dev *qat.Device
		if run.UseQAT {
			dev = qat.NewDevice(qat.DeviceSpec{Endpoints: 3, EnginesPerEndpoint: 4})
		}
		srv, err := server.New(server.Options{
			Addr:    "127.0.0.1:0",
			Workers: *workers,
			Run:     run,
			TLS: &minitls.Config{
				Identity:     id,
				CipherSuites: []uint16{minitls.TLS_RSA_WITH_AES_128_CBC_SHA},
			},
			Device:  dev,
			Handler: server.SizedBodyHandler(1 << 20),
		})
		if err != nil {
			log.Fatal(err)
		}
		srv.Start()
		res := loadgen.STime(loadgen.STimeOptions{
			Addr:     srv.Addr(),
			Clients:  *clients,
			Duration: *duration,
		})
		srv.Stop()
		if dev != nil {
			dev.Close()
		}
		fmt.Printf("%-8s %10d %10.0f %12v\n",
			run.Name, res.Connections, res.CPS(), time.Duration(res.Latency.Mean).Round(time.Microsecond))
	}
}
