// Heuristic polling example: shows how the QTLS heuristic polling scheme
// adapts to traffic (§3.3) using the discrete-event model. Under low
// concurrency the timeliness constraint (Rtotal == active connections)
// triggers immediate polls for low latency; under high concurrency the
// efficiency constraint coalesces ~24-48 responses per poll. A timer
// thread either wastes polls (10 µs) or destroys latency (1 ms).
//
//	go run ./examples/heuristic
package main

import (
	"fmt"
	"time"

	"qtls/internal/perf"
)

func run(name string, cfg perf.Config, clients int) {
	res := perf.Run(perf.RunOptions{
		Config:  cfg,
		Warmup:  300 * time.Millisecond,
		Measure: 500 * time.Millisecond,
		Install: func(m *perf.Model) {
			perf.STimeWorkload{
				Clients: clients,
				Spec:    perf.ScriptSpec{Suite: perf.SuiteRSA},
			}.Install(m)
		},
	})
	st := res.Stats
	perPoll := 0.0
	if st.Polls > 0 {
		perPoll = float64(st.Notifications) / float64(st.Polls)
	}
	fmt.Printf("  %-22s clients=%-5d CPS=%-8.0f polls=%-8d empty=%-8d responses/poll=%.1f\n",
		name, clients, res.CPS, st.Polls, st.EmptyPolls, perPoll)
}

func main() {
	heur := perf.QTLS(4)
	timerFast := perf.QATA(4)
	timerSlow := perf.QATA(4)
	timerSlow.PollInterval = time.Millisecond

	fmt.Println("low concurrency (4 clients): timeliness constraint polls immediately")
	run("heuristic (QTLS)", heur, 4)
	run("timer 10µs", timerFast, 4)
	run("timer 1ms", timerSlow, 4)

	fmt.Println("\nhigh concurrency (600 clients): efficiency constraint coalesces responses")
	run("heuristic (QTLS)", heur, 600)
	run("timer 10µs", timerFast, 600)
	run("timer 1ms", timerSlow, 600)

	fmt.Println("\nThe heuristic matches the retrieve rate to the submission rate in both")
	fmt.Println("regimes; fixed-interval polling must pick one and lose in the other (§5.6).")
}
