// Quickstart: offload crypto operations to the simulated QAT accelerator
// asynchronously from a single goroutine — the core idea of QTLS.
//
// A straight (blocking) offload serializes: one in-flight operation per
// worker, engines idle. The async offload submits many operations from
// one goroutine, pauses each "connection", and resumes them as responses
// are polled — keeping every computation engine busy.
//
//	go run ./examples/quickstart
package main

import (
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"errors"
	"fmt"
	"log"
	"time"

	"qtls/internal/asynclib"
	"qtls/internal/engine"
	"qtls/internal/minitls"
	"qtls/internal/qat"
)

func main() {
	// A QAT device: 1 endpoint with 8 parallel computation engines. The
	// service-time floor models the ASIC's per-operation latency, so the
	// parallelism win is visible even on a single-core host (the engines
	// overlap their service intervals in wall-clock time, exactly like
	// real hardware).
	dev := qat.NewDevice(qat.DeviceSpec{
		Endpoints:          1,
		EnginesPerEndpoint: 8,
		ServiceTime:        map[qat.OpType]time.Duration{qat.OpRSA: 4 * time.Millisecond},
	})
	defer dev.Close()
	inst, err := dev.AllocInstance()
	if err != nil {
		log.Fatal(err)
	}
	eng, err := engine.New(engine.Config{Instance: inst})
	if err != nil {
		log.Fatal(err)
	}

	key, err := rsa.GenerateKey(rand.Reader, 2048)
	if err != nil {
		log.Fatal(err)
	}
	digest := sha256.Sum256([]byte("quickstart"))
	const jobs = 32

	sign := func() (any, error) {
		return rsa.SignPKCS1v15(nil, key, crypto.SHA256, digest[:])
	}

	// 1) Straight offload: submit, busy-wait, repeat — §2.4's blocking.
	start := time.Now()
	for i := 0; i < jobs; i++ {
		call := &minitls.OpCall{Mode: minitls.AsyncModeOff}
		if _, err := eng.Do(call, minitls.KindRSA, sign); err != nil {
			log.Fatal(err)
		}
	}
	blocking := time.Since(start)

	// 2) Asynchronous offload (stack async): submit all 32 operations
	// from this one goroutine, then poll responses as they complete.
	start = time.Now()
	calls := make([]*minitls.OpCall, jobs)
	for i := range calls {
		calls[i] = &minitls.OpCall{
			Mode:  minitls.AsyncModeStack,
			Stack: &asynclib.StackOp{},
		}
		if _, err := eng.Do(calls[i], minitls.KindRSA, sign); !errors.Is(err, minitls.ErrWantAsync) {
			log.Fatalf("submit %d: %v", i, err)
		}
	}
	done := 0
	for done < jobs {
		if eng.Poll(0) == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		for _, call := range calls {
			if call.Stack.State() != asynclib.StackReady {
				continue
			}
			if _, err := eng.Do(call, minitls.KindRSA, nil); err != nil {
				log.Fatal(err)
			}
			done++
		}
	}
	async := time.Since(start)

	fmt.Printf("signed %d × RSA-2048\n", jobs)
	fmt.Printf("  straight (blocking) offload: %v\n", blocking.Round(time.Millisecond))
	fmt.Printf("  asynchronous offload:        %v  (%.1fx faster)\n",
		async.Round(time.Millisecond), float64(blocking)/float64(async))
	st := eng.Stats()
	fmt.Printf("  engine: submitted=%d retrieved=%d polls=%d\n",
		st.Submitted, st.Retrieved, st.Polls)
}
