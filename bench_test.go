// Package qtls's top-level benchmark harness: one benchmark per table and
// figure of the paper's evaluation (§5), plus ablation benchmarks for the
// design choices DESIGN.md calls out (heuristic thresholds, ring
// capacity, engine count, notification scheme) and micro-benchmarks of
// the functional stack.
//
// Figure benchmarks execute the corresponding experiment on the
// calibrated discrete-event model at smoke scale and report the headline
// number as a custom metric. Run the full-scale experiments with
// cmd/qtlsbench.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig7a -benchtime=1x
package qtls

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"qtls/internal/asynclib"
	"qtls/internal/engine"
	"qtls/internal/minitls"
	"qtls/internal/perf"
	"qtls/internal/perf/figures"
	"qtls/internal/qat"
)

// benchFigure runs a figure generator once per iteration and reports the
// requested cell as a metric.
func benchFigure(b *testing.B, gen func(figures.Opts) figures.Table, series string, col int, unit string) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		tab := gen(figures.Quick())
		for _, s := range tab.Series {
			if s.Name == series {
				last = s.Values[col]
			}
		}
	}
	b.ReportMetric(last, unit)
}

// --- one benchmark per table/figure ---------------------------------------

// BenchmarkTable1_HandshakeOps regenerates Table 1 on the real minitls
// stack (RSA/ECC/PRF-HKDF op counts per full handshake).
func BenchmarkTable1_HandshakeOps(b *testing.B) {
	var prf float64
	for i := 0; i < b.N; i++ {
		tab := figures.Table1()
		prf = tab.Series[0].Values[2] // TLS-RSA PRF count
	}
	b.ReportMetric(prf, "prf-ops/handshake")
}

// BenchmarkFig7a_FullHandshakeRSA reports QTLS CPS at 8 workers,
// TLS 1.2 TLS-RSA (paper: 38.8K, 9x SW).
func BenchmarkFig7a_FullHandshakeRSA(b *testing.B) {
	benchFigure(b, figures.Fig7a, "QTLS", 2, "qtls-cps@8HT")
}

// BenchmarkFig7b_FullHandshakeECDHERSA reports QTLS CPS at 16 workers,
// ECDHE-RSA (paper: the 40K card limit).
func BenchmarkFig7b_FullHandshakeECDHERSA(b *testing.B) {
	benchFigure(b, figures.Fig7b, "QTLS", 4, "qtls-cps@16HT")
}

// BenchmarkFig7c_FullHandshakeECDSACurves reports QTLS CPS on P-384
// (paper: 14x the software baseline).
func BenchmarkFig7c_FullHandshakeECDSACurves(b *testing.B) {
	benchFigure(b, figures.Fig7c, "QTLS", 1, "qtls-cps-p384")
}

// BenchmarkFig8_TLS13Handshake reports QTLS CPS at 8 workers for TLS 1.3
// (paper: 3.5x SW — HKDF not offloadable).
func BenchmarkFig8_TLS13Handshake(b *testing.B) {
	benchFigure(b, figures.Fig8, "QTLS", 2, "qtls-cps@8HT")
}

// BenchmarkFig9a_Resumption100 reports QTLS CPS at 8 workers with 100%
// abbreviated handshakes (paper: 30-40% over SW).
func BenchmarkFig9a_Resumption100(b *testing.B) {
	benchFigure(b, figures.Fig9a, "QTLS", 2, "qtls-cps@8HT")
}

// BenchmarkFig9b_ResumptionMix19 reports QTLS CPS at 8 workers with a 1:9
// full:abbreviated mix (paper: >2x SW).
func BenchmarkFig9b_ResumptionMix19(b *testing.B) {
	benchFigure(b, figures.Fig9b, "QTLS", 2, "qtls-cps@8HT")
}

// BenchmarkFig10_Throughput reports QTLS goodput for 128 KB transfers
// (paper: >2x SW).
func BenchmarkFig10_Throughput(b *testing.B) {
	benchFigure(b, figures.Fig10, "QTLS", 4, "qtls-gbps@128KB")
}

// BenchmarkFig11_ResponseTime reports QTLS average response time at
// concurrency 64 in milliseconds (paper: ~85% below SW).
func BenchmarkFig11_ResponseTime(b *testing.B) {
	benchFigure(b, figures.Fig11, "QTLS", 8, "qtls-ms@c64")
}

// BenchmarkFig12a_PollingCPS reports heuristic-polling CPS at 8 workers
// (paper: ~20% above the 10µs polling thread).
func BenchmarkFig12a_PollingCPS(b *testing.B) {
	benchFigure(b, figures.Fig12a, "Heuristic", 2, "heuristic-cps@8w")
}

// BenchmarkFig12b_PollingThroughput reports heuristic-polling goodput at
// 16 clients (paper: the 1ms thread collapses here).
func BenchmarkFig12b_PollingThroughput(b *testing.B) {
	benchFigure(b, figures.Fig12b, "Heuristic", 0, "heuristic-gbps@16c")
}

// BenchmarkFig12c_PollingLatency reports heuristic-polling response time
// at concurrency 1 in milliseconds.
func BenchmarkFig12c_PollingLatency(b *testing.B) {
	benchFigure(b, figures.Fig12c, "Heuristic", 0, "heuristic-ms@c1")
}

// --- ablation benchmarks ---------------------------------------------------

func quickCPS(cfg perf.Config, clients int) float64 {
	res := perf.Run(perf.RunOptions{
		Config:  cfg,
		Warmup:  150 * time.Millisecond,
		Measure: 200 * time.Millisecond,
		Install: func(m *perf.Model) {
			perf.STimeWorkload{Clients: clients, Spec: perf.ScriptSpec{Suite: perf.SuiteRSA}}.Install(m)
		},
	})
	return res.CPS
}

// BenchmarkAblationHeuristicThresholds sweeps the efficiency thresholds
// (qat_heuristic_poll_asym_threshold): too small polls too often, too
// large risks timeliness.
func BenchmarkAblationHeuristicThresholds(b *testing.B) {
	for _, thr := range []int{1, 8, 24, 48, 96} {
		b.Run(fmt.Sprintf("asym=%d", thr), func(b *testing.B) {
			var cps float64
			for i := 0; i < b.N; i++ {
				p := perf.DefaultParams()
				p.AsymThreshold = thr
				p.SymThreshold = thr / 2
				if p.SymThreshold < 1 {
					p.SymThreshold = 1
				}
				res := perf.Run(perf.RunOptions{
					Params:  p,
					Config:  perf.QTLS(8),
					Warmup:  150 * time.Millisecond,
					Measure: 200 * time.Millisecond,
					Install: func(m *perf.Model) {
						perf.STimeWorkload{Clients: 420, Spec: perf.ScriptSpec{Suite: perf.SuiteRSA}}.Install(m)
					},
				})
				cps = res.CPS
			}
			b.ReportMetric(cps, "cps")
		})
	}
}

// BenchmarkAblationRingCapacity sweeps the request-ring capacity: a tiny
// ring forces submission retries and throttles concurrency.
func BenchmarkAblationRingCapacity(b *testing.B) {
	for _, capN := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("ring=%d", capN), func(b *testing.B) {
			var cps float64
			for i := 0; i < b.N; i++ {
				p := perf.DefaultParams()
				p.RingCapacity = capN
				res := perf.Run(perf.RunOptions{
					Params:  p,
					Config:  perf.QTLS(8),
					Warmup:  150 * time.Millisecond,
					Measure: 200 * time.Millisecond,
					Install: func(m *perf.Model) {
						perf.STimeWorkload{Clients: 420, Spec: perf.ScriptSpec{Suite: perf.SuiteRSA}}.Install(m)
					},
				})
				cps = res.CPS
			}
			b.ReportMetric(cps, "cps")
		})
	}
}

// BenchmarkAblationEngines sweeps the per-endpoint PKE engine count (the
// card's parallel capacity).
func BenchmarkAblationEngines(b *testing.B) {
	for _, engines := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("engines=%d", engines), func(b *testing.B) {
			var cps float64
			for i := 0; i < b.N; i++ {
				p := perf.DefaultParams()
				p.AsymEnginesPerEndpoint = engines
				res := perf.Run(perf.RunOptions{
					Params:  p,
					Config:  perf.QTLS(16),
					Warmup:  150 * time.Millisecond,
					Measure: 200 * time.Millisecond,
					Install: func(m *perf.Model) {
						perf.STimeWorkload{Clients: 740, Spec: perf.ScriptSpec{Suite: perf.SuiteRSA}}.Install(m)
					},
				})
				cps = res.CPS
			}
			b.ReportMetric(cps, "cps")
		})
	}
}

// BenchmarkAblationNotification isolates FD vs kernel-bypass notification
// at fixed heuristic polling (QAT+AH vs QTLS).
func BenchmarkAblationNotification(b *testing.B) {
	for _, cfg := range []perf.Config{perf.QATAH(8), perf.QTLS(8)} {
		b.Run(cfg.Name, func(b *testing.B) {
			var cps float64
			for i := 0; i < b.N; i++ {
				cps = quickCPS(cfg, 420)
			}
			b.ReportMetric(cps, "cps")
		})
	}
}

// --- functional-stack micro-benchmarks ------------------------------------

var (
	benchIDOnce sync.Once
	benchRSAID  *minitls.Identity
)

func benchIdentity(b *testing.B) *minitls.Identity {
	b.Helper()
	benchIDOnce.Do(func() {
		var err error
		benchRSAID, err = minitls.NewRSAIdentity(2048)
		if err != nil {
			panic(err)
		}
	})
	return benchRSAID
}

// BenchmarkEngineOffloadRoundTrip measures one async offload round trip
// (submit + poll + consume) through the functional QAT device.
func BenchmarkEngineOffloadRoundTrip(b *testing.B) {
	dev := qat.NewDevice(qat.DeviceSpec{Endpoints: 1, EnginesPerEndpoint: 2})
	defer dev.Close()
	inst, err := dev.AllocInstance()
	if err != nil {
		b.Fatal(err)
	}
	eng, err := engine.New(engine.Config{Instance: inst})
	if err != nil {
		b.Fatal(err)
	}
	call := &minitls.OpCall{Mode: minitls.AsyncModeStack, Stack: &asynclib.StackOp{}}
	work := func() (any, error) { return nil, nil }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Do(call, minitls.KindPRF, work); !errors.Is(err, minitls.ErrWantAsync) {
			b.Fatalf("submit: %v", err)
		}
		for eng.Poll(0) == 0 {
		}
		if _, err := eng.Do(call, minitls.KindPRF, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFiberPauseResume measures one ASYNC_JOB pause/resume cycle
// (two fiber context swaps).
func BenchmarkFiberPauseResume(b *testing.B) {
	st, job, err := asynclib.StartJob(nil, func(j *asynclib.Job) error {
		for {
			if err := j.Pause(); err != nil {
				return err
			}
		}
	})
	if err != nil || st != asynclib.StatusPause {
		b.Fatalf("start: %v %v", st, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st, _, err := asynclib.StartJob(job, nil); err != nil || st != asynclib.StatusPause {
			b.Fatalf("resume: %v %v", st, err)
		}
	}
}

// BenchmarkHandshakeSoftware measures a full in-memory TLS-RSA handshake
// pair (client + server) with software crypto.
func BenchmarkHandshakeSoftware(b *testing.B) {
	id := benchIdentity(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cliT, srvT := newBenchPipe()
		server := minitls.Server(srvT, &minitls.Config{
			Identity:     id,
			CipherSuites: []uint16{minitls.TLS_RSA_WITH_AES_128_CBC_SHA},
		})
		client := minitls.ClientConn(cliT, &minitls.Config{})
		errc := make(chan error, 1)
		go func() { errc <- client.Handshake() }()
		if err := server.Handshake(); err != nil {
			b.Fatal(err)
		}
		if err := <-errc; err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecordSeal16KB measures sealing one 16 KB application record
// with AES-128-CBC-HMAC-SHA1 through the record layer.
func BenchmarkRecordSeal16KB(b *testing.B) {
	id := benchIdentity(b)
	cliT, srvT := newBenchPipe()
	server := minitls.Server(srvT, &minitls.Config{
		Identity:     id,
		CipherSuites: []uint16{minitls.TLS_RSA_WITH_AES_128_CBC_SHA},
	})
	client := minitls.ClientConn(cliT, &minitls.Config{})
	errc := make(chan error, 1)
	go func() { errc <- client.Handshake() }()
	if err := server.Handshake(); err != nil {
		b.Fatal(err)
	}
	if err := <-errc; err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 16384)
	buf := make([]byte, 32768)
	go func() {
		for {
			if _, err := client.Read(buf); err != nil {
				return
			}
		}
	}()
	b.SetBytes(16384)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := server.Write(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// newBenchPipe returns an in-memory full-duplex byte pipe suitable for
// benchmarks (buffered, unlike net.Pipe, so writes don't synchronize).
func newBenchPipe() (a, bEnd *benchPipeEnd) {
	ab := newBenchBuf()
	ba := newBenchBuf()
	return &benchPipeEnd{r: ba, w: ab}, &benchPipeEnd{r: ab, w: ba}
}

type benchBuf struct {
	mu   sync.Mutex
	cond *sync.Cond
	data []byte
}

func newBenchBuf() *benchBuf {
	b := &benchBuf{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

type benchPipeEnd struct{ r, w *benchBuf }

func (e *benchPipeEnd) Read(p []byte) (int, error) {
	e.r.mu.Lock()
	defer e.r.mu.Unlock()
	for len(e.r.data) == 0 {
		e.r.cond.Wait()
	}
	n := copy(p, e.r.data)
	e.r.data = e.r.data[n:]
	return n, nil
}

func (e *benchPipeEnd) Write(p []byte) (int, error) {
	e.w.mu.Lock()
	e.w.data = append(e.w.data, p...)
	e.w.cond.Broadcast()
	e.w.mu.Unlock()
	return len(p), nil
}

// BenchmarkAblationAsyncImpl compares the fiber and stack crypto-pause
// implementations (§4.1: stack is slightly faster but intrusive).
func BenchmarkAblationAsyncImpl(b *testing.B) {
	for _, impl := range []struct {
		name string
		impl perf.AsyncImpl
	}{{"fiber", perf.ImplFiber}, {"stack", perf.ImplStack}} {
		b.Run(impl.name, func(b *testing.B) {
			var cps float64
			for i := 0; i < b.N; i++ {
				cfg := perf.QTLS(8)
				cfg.Impl = impl.impl
				cps = quickCPS(cfg, 420)
			}
			b.ReportMetric(cps, "cps")
		})
	}
}

// BenchmarkAblationInterruptVsPolling compares interrupt-driven response
// delivery against heuristic polling (§3.3's design rationale).
func BenchmarkAblationInterruptVsPolling(b *testing.B) {
	intr := perf.QTLS(8)
	intr.Polling = perf.PollInterrupt
	intr.Name = "interrupt"
	for _, cfg := range []perf.Config{intr, perf.QTLS(8)} {
		b.Run(cfg.Name, func(b *testing.B) {
			var cps float64
			for i := 0; i < b.N; i++ {
				cps = quickCPS(cfg, 420)
			}
			b.ReportMetric(cps, "cps")
		})
	}
}
