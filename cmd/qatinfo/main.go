// Command qatinfo exercises a simulated QAT device and dumps its
// per-endpoint firmware counters, mirroring the artifact appendix's
// post-test check:
//
//	cat /sys/kernel/debug/qat*/fw_counters
//
// It allocates instances like a multi-worker server would, submits a
// configurable burst of requests of each type, polls them to completion,
// and prints the resulting counters plus per-instance health/breaker
// state. A fault scenario (internal/fault spec grammar) can be injected
// to watch the device degrade:
//
//	qatinfo -fault 'stall:op=rsa,p=0.2 latency:d=2ms,p=0.5'
//	qatinfo -fault 'reset:after=500,limit=1'
//
// It also doubles as the flight-dump reader: -flight pretty-prints a
// black-box dump (qtlsserver -flight anomaly/SIGQUIT files, or a saved
// GET /debug/flight body) as a windowed phase-latency table, a
// per-second incident timeline and the top slow spans:
//
//	qatinfo -flight flight-breaker-open-1723110000.jsonl
//
// With -recommend, the burst's retrieve latencies and completion-batch
// sizes additionally feed the adaptive poll controller offline, and the
// thresholds it settles on are printed as a starting point for
// qtlsserver's -asym-threshold/-sym-threshold (or -adaptive-poll):
//
//	qatinfo -burst 500 -recommend
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"qtls/internal/fault"
	"qtls/internal/flight"
	"qtls/internal/metrics"
	"qtls/internal/offload"
	"qtls/internal/qat"
	"qtls/internal/trace"
)

func main() {
	var (
		devices   = flag.Int("devices", 1, "QAT devices in the pool (instances round-robin across them)")
		endpoints = flag.Int("endpoints", 3, "QAT endpoints per device (DH8970 has 3)")
		engines   = flag.Int("engines", 4, "engines per endpoint")
		instances = flag.Int("instances", 6, "crypto instances to allocate")
		burst     = flag.Int("burst", 100, "requests of each type per instance")
		batch     = flag.Int("batch", 1, "submit in batches of this size via SubmitBatch (1 = per-op Submit, >1 = the coalesced submit mode's doorbell amortization)")
		service   = flag.Duration("service", 50*time.Microsecond, "modeled RSA service time")
		symBase   = flag.Duration("sym-base", 4*time.Microsecond, "modeled per-request base time of symmetric (record cipher) ops")
		symPerKB  = flag.Duration("sym-perkb", time.Microsecond, "modeled symmetric service time per KB of record payload")
		recBytes  = flag.Int("record-bytes", 16384, "payload size of each symmetric (OpSym) request")
		faultSpec = flag.String("fault", "", "fault scenario, e.g. 'stall:op=rsa,p=0.1' (see internal/fault)")
		faultSeed = flag.Int64("fault-seed", 1, "fault injector RNG seed")
		deadline  = flag.Duration("op-timeout", 50*time.Millisecond, "drain deadline: give up on stalled requests after this long without progress")
		flightIn  = flag.String("flight", "", "read a flight-recorder dump (JSON lines) and pretty-print it instead of exercising a device")
		topK      = flag.Int("top", 10, "slow spans to list with -flight")
		recommend = flag.Bool("recommend", false, "replay the adaptive poll controller over this run's latency/batch windows and print the thresholds it settles on")
	)
	flag.Parse()

	if *flightIn != "" {
		if err := printFlightDump(*flightIn, *topK); err != nil {
			log.Fatalf("-flight: %v", err)
		}
		return
	}

	inj, err := fault.ParseSpec(*faultSpec, *faultSeed)
	if err != nil {
		log.Fatalf("-fault: %v", err)
	}
	if *devices < 1 {
		log.Fatalf("-devices: need at least 1, got %d", *devices)
	}
	pool := qat.NewPool(*devices, qat.DeviceSpec{
		Endpoints:          *endpoints,
		EnginesPerEndpoint: *engines,
		RingCapacity:       256,
		ServiceTime: map[qat.OpType]time.Duration{
			qat.OpRSA: *service,
		},
		SymBaseTime: *symBase,
		SymPerKB:    *symPerKB,
		Injector:    inj,
	})
	defer pool.Close()

	ops := []qat.OpType{qat.OpRSA, qat.OpECDSA, qat.OpECDH, qat.OpPRF, qat.OpCipher, qat.OpSym}
	// Submit→response latency per op type, plus retrieval spans in the
	// same recorder the server uses (everything runs on this goroutine:
	// callbacks fire inside Poll, so plain maps are fine).
	rec := trace.NewRecorder(4096)
	rec.SetEnabled(true)
	spans := rec.Buffer(0)
	// With -recommend, the same latencies and completion-batch sizes also
	// feed a pair of flight windows — the adaptive controller's feedback
	// shape — so the controller can be replayed over them afterwards. One
	// hour-wide bucket keeps every observation in-window for the replay.
	latWin := flight.NewWindow(1, time.Hour)
	batchWin := flight.NewWindow(1, time.Hour)
	lat := map[qat.OpType]*metrics.Histogram{}
	for _, op := range ops {
		lat[op] = metrics.NewHistogram(1 << 14)
	}
	var insts []*qat.Instance
	var instDev []int // owning device of each instance
	var breakers []*fault.Breaker
	for i := 0; i < *instances; i++ {
		d := i % *devices
		inst, err := pool.AllocInstance(d)
		if err != nil {
			log.Fatalf("alloc instance %d: %v", i, err)
		}
		insts = append(insts, inst)
		instDev = append(instDev, d)
		breakers = append(breakers, fault.NewBreaker(fault.BreakerConfig{}))
	}
	fmt.Printf("pool: %d device(s) × %d endpoints × %d engines, %d instances allocated\n",
		*devices, *endpoints, *engines, len(insts))
	if inj != nil {
		fmt.Printf("%s\n", inj)
	}

	// poll drains responses from one instance, feeding the completion
	// batch window the controller replay reads.
	poll := func(inst *qat.Instance) int {
		n := inst.Poll(0)
		if n > 0 {
			batchWin.Observe(float64(n), time.Now().UnixNano())
		}
		return n
	}

	start := time.Now()
	var submitErrs, respErrs int
	for i, inst := range insts {
		br := breakers[i]
		// makeReq builds one request stamped with its submit time; the
		// callback runs on this goroutine inside Poll.
		makeReq := func(op qat.OpType) qat.Request {
			submitAt := time.Now()
			bytes := 0
			if op == qat.OpSym {
				// Symmetric record ops carry their payload size: the engine
				// occupancy (and so the latency below) scales with it.
				bytes = *recBytes
			}
			return qat.Request{
				Op:    op,
				Bytes: bytes,
				Work:  func() (any, error) { return nil, nil },
				Callback: func(r qat.Response) {
					d := time.Since(submitAt)
					lat[op].ObserveDuration(d)
					latWin.Observe(float64(d), time.Now().UnixNano())
					spans.Record(trace.PhaseRetrieve, trace.Op(op), trace.TagNone, 0, submitAt, d)
					if r.Err != nil {
						respErrs++
						br.RecordFailure(time.Now())
					} else {
						br.RecordSuccess(time.Now())
					}
				},
			}
		}
		for _, op := range ops {
			if *batch > 1 {
				// Batched submission: one ring lock and one doorbell per
				// chunk, retrying the unaccepted tail on backpressure.
				for n := 0; n < *burst; {
					size := *batch
					if rest := *burst - n; size > rest {
						size = rest
					}
					reqs := make([]qat.Request, size)
					for j := range reqs {
						reqs[j] = makeReq(op)
					}
					for len(reqs) > 0 {
						acc, err := inst.SubmitBatch(reqs)
						n += acc
						reqs = reqs[acc:]
						if err == nil {
							continue
						}
						if errors.Is(err, qat.ErrRingFull) {
							poll(inst)
							continue
						}
						// Device-level failure: feed the breaker, drop the
						// head of the tail like the per-op path drops its
						// request, and keep going.
						submitErrs++
						br.RecordFailure(time.Now())
						reqs = reqs[1:]
						n++
					}
				}
				continue
			}
			for n := 0; n < *burst; n++ {
				req := makeReq(op)
				for {
					err := inst.Submit(req)
					if err == nil {
						break
					}
					if errors.Is(err, qat.ErrRingFull) {
						poll(inst)
						continue
					}
					// Device-level failure (e.g. endpoint reset): feed the
					// breaker and move on, like a hardened engine would.
					submitErrs++
					br.RecordFailure(time.Now())
					break
				}
			}
		}
	}
	// Drain. Stalled requests never answer: when no instance makes
	// progress for the drain deadline, reclaim the leaked slots and count
	// them against the owning instance's breaker.
	var leaked int
	lastProgress := time.Now()
	for {
		pending, progress := 0, 0
		for _, inst := range insts {
			progress += poll(inst)
			pending += inst.Inflight()
		}
		if pending == 0 {
			break
		}
		if progress > 0 {
			lastProgress = time.Now()
		} else if time.Since(lastProgress) > *deadline {
			for i, inst := range insts {
				if n := inst.ReclaimLeaked(); n > 0 {
					leaked += n
					for j := 0; j < n; j++ {
						breakers[i].RecordFailure(time.Now())
					}
				}
			}
			if p := sumInflight(insts); p > 0 {
				fmt.Printf("\ndrain: gave up on %d stuck request(s) after %v\n", p, *deadline)
			}
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	elapsed := time.Since(start)

	fmt.Printf("\nfw_counters (after %v):\n", elapsed.Round(time.Millisecond))
	total := uint64(0)
	for di, dev := range pool.Devices() {
		fmt.Printf("  device %d:\n", di)
		for i, c := range dev.Counters() {
			fmt.Printf("    endpoint %d:\n", i)
			for _, op := range ops {
				fmt.Printf("      %-7s requests=%-8d responses=%d\n",
					op, c.Requests[op], c.Responses[op])
			}
			total += c.TotalResponses()
		}
	}
	fmt.Printf("\nsubmit→response latency (%d spans recorded):\n", rec.Count())
	for _, op := range ops {
		h := lat[op]
		if h.Count() == 0 {
			continue
		}
		fmt.Printf("  %-7s n=%-8d p50=%-10v p99=%-10v max=%v\n",
			op, h.Count(),
			time.Duration(h.Quantile(0.50)).Round(time.Microsecond),
			time.Duration(h.Quantile(0.99)).Round(time.Microsecond),
			time.Duration(h.Max()).Round(time.Microsecond))
	}

	fmt.Printf("\ndevice health:\n")
	for _, h := range pool.Health() {
		fmt.Printf("  device %d: state=%s instances=%d inflight=%d leaked=%d resets=%d pressure=%.2f\n",
			h.Device, h.State, h.Instances, h.Inflight, h.Leaked, h.Resets, h.Pressure())
	}

	fmt.Printf("\ninstance health:\n")
	for i, inst := range insts {
		st := inst.Stats()
		fmt.Printf("  instance %d device %d endpoint %d inflight %d leaked %d breaker %s\n",
			i, instDev[i], inst.Endpoint(), inst.Inflight(), inst.Leaked(), breakers[i].Snapshot())
		fmt.Printf("    submits=%d ringFull=%d polls=%d (empty %d) dequeued=%d maxBatch=%d reclaimed=%d\n",
			st.Submits, st.RingFull, st.Polls, st.EmptyPolls, st.Dequeued, st.MaxBatch, st.Reclaimed)
		meanBatch := 0.0
		if st.SubmitBatches > 0 {
			meanBatch = float64(st.BatchSubmitted) / float64(st.SubmitBatches)
		}
		fmt.Printf("    submitBatches=%d (max %d mean %.1f) doorbells=%d\n",
			st.SubmitBatches, st.MaxSubmitBatch, meanBatch, st.Doorbells)
	}
	if inj != nil {
		fmt.Printf("\nfaults injected: %d (stall=%d drop=%d corrupt=%d latency=%d ringfull=%d reset=%d); submit errors=%d response errors=%d leaked slots reclaimed=%d\n",
			inj.TotalInjected(),
			inj.Injected(fault.Stall), inj.Injected(fault.Drop), inj.Injected(fault.Corrupt),
			inj.Injected(fault.Latency), inj.Injected(fault.RingFull), inj.Injected(fault.Reset),
			submitErrs, respErrs, leaked)
	}
	fmt.Printf("\ntotal responses: %d (%.0f ops/s)\n",
		total, float64(total)/elapsed.Seconds())

	if *recommend {
		recommendThresholds(latWin, batchWin)
	}
}

// recommendThresholds replays the adaptive controller over the windows
// this run populated until it stops moving, and prints where it lands:
// the largest thresholds the measured completion-batch efficiency
// supports, or a walk toward the minimum if retrieve latencies sit at
// failover scale. The replay uses a tight interval so convergence takes
// milliseconds of virtual time.
func recommendThresholds(latWin, batchWin *flight.Window) {
	a := offload.NewAdaptivePoll(offload.AdaptiveConfig{
		Interval:   time.Millisecond,
		MinSamples: 1,
	}, flight.WindowFeedback{Latency: latWin, Batch: batchWin})
	now := time.Now().UnixNano()
	step := int64(2 * time.Millisecond)
	last := int64(-1)
	for i := 0; i < 128; i++ {
		a.Tick(now + int64(i)*step)
		if adj := a.Adjusts(); adj == last {
			break
		} else {
			last = adj
		}
	}
	asym, sym := a.Thresholds()
	snap := latWin.Snapshot(now)
	mean := batchWin.Snapshot(now).Mean
	fmt.Printf("\nrecommended poll thresholds (controller replay: retrieve p99 %v over %d samples, mean batch %.1f):\n",
		time.Duration(snap.P99).Round(time.Microsecond), snap.Count, mean)
	fmt.Printf("  asym=%d sym=%d after %d moves\n", asym, sym, a.Adjusts())
	fmt.Printf("  (qtlsserver -asym-threshold %d -sym-threshold %d, or -adaptive-poll to track this live)\n", asym, sym)
}

// printFlightDump renders a black-box dump file through flight's
// reader: header summary, windowed phase table, incident timeline and
// the top slow spans.
func printFlightDump(path string, topK int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	d, err := flight.ReadDump(f)
	if err != nil {
		return err
	}
	d.Report(os.Stdout, topK)
	return nil
}

func sumInflight(insts []*qat.Instance) int {
	n := 0
	for _, inst := range insts {
		n += inst.Inflight()
	}
	return n
}
