// Command qatinfo exercises a simulated QAT device and dumps its
// per-endpoint firmware counters, mirroring the artifact appendix's
// post-test check:
//
//	cat /sys/kernel/debug/qat*/fw_counters
//
// It allocates instances like a multi-worker server would, submits a
// configurable burst of requests of each type, polls them to completion,
// and prints the resulting counters.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"qtls/internal/qat"
)

func main() {
	var (
		endpoints = flag.Int("endpoints", 3, "QAT endpoints (DH8970 has 3)")
		engines   = flag.Int("engines", 4, "engines per endpoint")
		instances = flag.Int("instances", 6, "crypto instances to allocate")
		burst     = flag.Int("burst", 100, "requests of each type per instance")
		service   = flag.Duration("service", 50*time.Microsecond, "modeled RSA service time")
	)
	flag.Parse()

	dev := qat.NewDevice(qat.DeviceSpec{
		Endpoints:          *endpoints,
		EnginesPerEndpoint: *engines,
		RingCapacity:       256,
		ServiceTime: map[qat.OpType]time.Duration{
			qat.OpRSA: *service,
		},
	})
	defer dev.Close()

	ops := []qat.OpType{qat.OpRSA, qat.OpECDSA, qat.OpECDH, qat.OpPRF, qat.OpCipher}
	var insts []*qat.Instance
	for i := 0; i < *instances; i++ {
		inst, err := dev.AllocInstance()
		if err != nil {
			log.Fatalf("alloc instance %d: %v", i, err)
		}
		insts = append(insts, inst)
	}
	fmt.Printf("device: %d endpoints × %d engines, %d instances allocated\n",
		*endpoints, *engines, len(insts))

	start := time.Now()
	for _, inst := range insts {
		for _, op := range ops {
			for n := 0; n < *burst; n++ {
				req := qat.Request{Op: op, Work: func() (any, error) { return nil, nil }}
				for {
					err := inst.Submit(req)
					if err == nil {
						break
					}
					if err == qat.ErrRingFull {
						inst.Poll(0)
						continue
					}
					log.Fatalf("submit: %v", err)
				}
			}
		}
	}
	for _, inst := range insts {
		for inst.Inflight() > 0 {
			inst.Poll(0)
			time.Sleep(100 * time.Microsecond)
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("\nfw_counters (after %v):\n", elapsed.Round(time.Millisecond))
	total := uint64(0)
	for i, c := range dev.Counters() {
		fmt.Printf("  endpoint %d:\n", i)
		for _, op := range ops {
			fmt.Printf("    %-7s requests=%-8d responses=%d\n",
				op, c.Requests[op], c.Responses[op])
		}
		total += c.TotalResponses()
	}
	fmt.Printf("\ntotal responses: %d (%.0f ops/s)\n",
		total, float64(total)/elapsed.Seconds())
}
