//go:build linux

// Command qtlsserver runs the functional event-driven TLS server — the
// Nginx-equivalent of the QTLS reproduction — over real TCP sockets with
// the simulated QAT device. The offload configuration, worker count, TLS
// version and resumption machinery are selectable, mirroring the SSL
// Engine Framework directives of the paper's artifact (§A.7):
//
//	qtlsserver -addr 127.0.0.1:8443 -config QTLS -workers 4
//	qtlsserver -config SW -max-version 1.3
//	qtlsserver -config QAT+AH -asym-threshold 64 -sym-threshold 32
//
// The named configurations and the heuristic-polling defaults (thresholds,
// failover timer) come from internal/offload, the policy layer shared with
// the performance model; the threshold flags override them.
//
// A fault scenario (internal/fault spec grammar) can be injected into the
// simulated device to watch the server degrade gracefully instead of
// hanging; GET /stub_status reports the fault counters and per-instance
// breaker state:
//
//	qtlsserver -fault 'stall:ep=0,op=rsa,p=1' -op-timeout 10ms -breaker
//
// Clients: cmd/qtlsload, or the examples. Responses are served for paths
// of the form "/<bytes>" (e.g. GET /65536 returns 64 KiB).
package main

import (
	"context"
	"crypto/elliptic"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qtls/internal/fault"
	"qtls/internal/flight"
	"qtls/internal/minitls"
	"qtls/internal/offload"
	"qtls/internal/qat"
	"qtls/internal/server"
	"qtls/internal/trace"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8443", "listen address")
		cfgName  = flag.String("config", "QTLS", "offload configuration: SW, QAT+S, QAT+A, QAT+AH, QTLS")
		confFile = flag.String("conf", "", "SSL Engine Framework config file (overrides -config/-workers, §A.7 dialect)")
		workers  = flag.Int("workers", 2, "number of event-loop workers")
		keyType  = flag.String("key", "rsa", "server key type: rsa or ecdsa")
		maxVer   = flag.String("max-version", "1.2", "maximum TLS version: 1.2 or 1.3")
		tickets  = flag.Bool("tickets", true, "enable session-ticket resumption")
		cache    = flag.Bool("session-cache", true, "enable session-ID resumption")
		asymThr  = flag.Int("asym-threshold", offload.DefaultAsymThreshold, "heuristic polling asym threshold")
		symThr   = flag.Int("sym-threshold", offload.DefaultSymThreshold, "heuristic polling sym threshold")
		interval = flag.Duration("poll-interval", offload.DefaultPollInterval, "timer polling interval")
		coalesce = flag.Bool("coalesce", false, "batch async submissions per event-loop iteration (one doorbell per batch)")
		notify   = flag.String("notify", "", "async notification backend: fd, kernel-bypass or coalesced (empty = the configuration's default)")
		adaptive = flag.Bool("adaptive-poll", false, "close the loop on the heuristic thresholds from the retrieve-phase window (implies -flight)")
		adaptInt = flag.Duration("adaptive-interval", time.Second, "minimum spacing between adaptive threshold adjustments (with -adaptive-poll)")
		recMode  = flag.String("record-mode", "software", "post-handshake record path: software, offload, or adaptive")
		recThr   = flag.Int("record-threshold", offload.DefaultRecordThreshold, "adaptive record-offload size threshold in bytes")
		endpnts  = flag.Int("endpoints", 3, "QAT endpoints on each simulated device")
		engines  = flag.Int("engines", 4, "engines per endpoint")
		devCount = flag.Int("devices", 1, "simulated QAT devices in the pool")
		placeStr = flag.String("placement", "", "multi-device placement: single, class-shard or conn-hash (empty = single)")
		tktRot   = flag.Duration("ticket-rotate", 0, "session-ticket key rotation interval for the shared ring (0 = off; needs a multi-device placement)")
		stats    = flag.Duration("stats", 5*time.Second, "stats print interval (0 = off)")
		traceOn  = flag.Bool("trace", false, "record offload-phase spans (serves /debug/trace, adds phase latency to stats)")
		traceCap = flag.Int("trace-spans", 4096, "span ring capacity per worker (with -trace)")
		flightOn = flag.Bool("flight", false, "enable the black-box flight recorder (serves /debug/flight, windowed _w60s metrics, anomaly + SIGQUIT dumps; implies -trace)")
		sloP99   = flag.Duration("slo-p99", 0, "windowed p99 SLO over the offload phases; exceeding it triggers a flight dump (0 = off; needs -flight)")

		faultSpec = flag.String("fault", "", "device fault scenario, e.g. 'stall:op=rsa,p=0.1' (see internal/fault)")
		faultSeed = flag.Int64("fault-seed", 1, "fault injector RNG seed")
		chaosSpec = flag.String("chaos", "", "time-scripted chaos schedule, e.g. 't=5s dev1 stall 10s; t=30s dev0 reset-storm n=4' (implies -lifecycle; per-device injectors)")
		lifecycle = flag.Bool("lifecycle", false, "enable the device lifecycle manager: quarantine/probation/recovery with live worker re-homing")
		opTimeout = flag.Duration("op-timeout", 0, "per-op offload deadline before software fallback (0 = off)")
		maxRetry  = flag.Int("max-retries", 2, "offload retries after retryable device errors")
		breaker   = flag.Bool("breaker", false, "enable per-instance circuit breakers")

		hsTimeout = flag.Duration("handshake-timeout", offload.DefaultHandshakeTimeout, "TLS handshake deadline (negative = off)")
		hdTimeout = flag.Duration("header-timeout", offload.DefaultHeaderTimeout, "request-header deadline (negative = off)")
		kaTimeout = flag.Duration("keepalive-timeout", offload.DefaultKeepaliveTimeout, "keepalive idle deadline (negative = off)")
		wsTimeout = flag.Duration("write-stall-timeout", offload.DefaultWriteStallTimeout, "buffered-write stall deadline (negative = off)")
		maxConns  = flag.Int("max-conns", offload.DefaultMaxConnsPerWorker, "per-worker connection cap before accept-time shedding (negative = off)")
		shedFrac  = flag.Float64("shed-fraction", offload.DefaultShedFraction, "QAT inflight/ring-capacity fraction that sheds new accepts (negative = off)")
		drainWait = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on SIGTERM/SIGINT before the hard cutoff")
	)
	flag.Parse()

	var run server.RunConfig
	if *confFile != "" {
		text, err := os.ReadFile(*confFile)
		if err != nil {
			log.Fatalf("read -conf: %v", err)
		}
		settings, err := server.ParseEngineConfig(string(text))
		if err != nil {
			log.Fatalf("parse -conf: %v", err)
		}
		run = settings.Run
		if settings.Workers > 0 {
			*workers = settings.Workers
		}
		if run.AsymThreshold == 0 {
			run.AsymThreshold = *asymThr
		}
		if run.SymThreshold == 0 {
			run.SymThreshold = *symThr
		}
		log.Printf("ssl_engine config: %s (offload %v)", run.Name, settings.Offload)
	} else {
		found := false
		for _, rc := range server.Configurations() {
			if rc.Name == *cfgName {
				run = rc
				found = true
				break
			}
		}
		if !found {
			log.Fatalf("unknown -config %q (want SW, QAT+S, QAT+A, QAT+AH or QTLS)", *cfgName)
		}
		run.AsymThreshold = *asymThr
		run.SymThreshold = *symThr
		run.PollInterval = *interval
	}

	// Device-placement layer: shard op classes or hash connections across
	// a pool of devices. The zero/empty value keeps the single-device
	// legacy path byte-identical.
	if *placeStr != "" {
		p, ok := offload.PlacementByName(*placeStr)
		if !ok {
			log.Fatalf("unknown -placement %q (want single, class-shard or conn-hash)", *placeStr)
		}
		run.Placement = p
	}
	if *devCount < 1 {
		log.Fatalf("-devices: need at least 1, got %d", *devCount)
	}
	if run.Placement != offload.PlacementSingle && !run.UseQAT {
		log.Fatalf("-placement %s needs a QAT configuration (got %s)", run.Placement, run.Name)
	}

	log.Printf("generating %s identity...", *keyType)
	var id *minitls.Identity
	var err error
	if *keyType == "ecdsa" {
		id, err = minitls.NewECDSAIdentity(elliptic.P256())
	} else {
		id, err = minitls.NewRSAIdentity(2048)
	}
	if err != nil {
		log.Fatalf("identity: %v", err)
	}

	tlsCfg := &minitls.Config{Identity: id}
	if *maxVer == "1.3" {
		tlsCfg.MaxVersion = minitls.VersionTLS13
	}
	if *cache {
		tlsCfg.SessionCache = minitls.NewSessionCache(4096)
	}
	if *tickets {
		if run.Placement != offload.PlacementSingle {
			// Multi-device placements share one rotating ring across the
			// accept-sharded workers so a ticket issued anywhere resumes
			// anywhere, across rotations.
			ring, err := minitls.GenerateTicketKeyRing(0)
			if err != nil {
				log.Fatalf("ticket ring: %v", err)
			}
			tlsCfg.TicketKeys = ring
		} else {
			var key [32]byte
			copy(key[:], "qtlsserver-demo-ticket-key-32byte")
			tlsCfg.TicketKey = &key
		}
	}

	// Submit coalescing applies to the async configurations only (the
	// straight-offload path waits for its own response inline).
	run.CoalesceSubmits = *coalesce

	// Notification backend override: the named configurations pick fd or
	// kernel-bypass per the paper; -notify swaps in any Notifier
	// implementation, including the coalesced hybrid.
	if *notify != "" {
		scheme, ok := offload.NotifySchemeByName(*notify)
		if !ok {
			log.Fatalf("unknown -notify %q (want fd, kernel-bypass or coalesced)", *notify)
		}
		run.Notify = scheme
	}

	// Adaptive polling replaces the static 48/24 thresholds with the
	// closed-loop controller. Its feedback source is the flight
	// recorder's retrieve-phase window, so it implies -flight (which in
	// turn implies -trace).
	if *adaptive {
		if run.Polling != offload.PollHeuristic {
			log.Fatalf("-adaptive-poll needs heuristic polling (config %s uses %v)", run.Name, run.Polling)
		}
		run.AdaptivePoll = &offload.AdaptiveConfig{Interval: *adaptInt}
		*flightOn = true
	}

	// Record-path offload: after the handshake, application-data records
	// are sealed by the record engine per this policy (internal/record).
	switch *recMode {
	case "software":
		run.RecordMode = offload.RecordSoftware
	case "offload":
		run.RecordMode = offload.RecordOffload
	case "adaptive":
		run.RecordMode = offload.RecordAdaptive
		run.RecordThreshold = *recThr
	default:
		log.Fatalf("unknown -record-mode %q (want software, offload or adaptive)", *recMode)
	}

	// Degradation knobs: the deadline/retry ladder and breakers apply to
	// any configuration; the injector needs the simulated device.
	run.OpTimeout = *opTimeout
	run.MaxRetries = *maxRetry
	if *breaker {
		run.Breaker = &fault.BreakerConfig{}
	}
	// Lifecycle deadlines and admission control (the connection-lifecycle
	// hardening layer; zero RunConfig fields take the offload defaults).
	run.Deadlines = offload.DeadlinePolicy{
		Handshake:  *hsTimeout,
		Header:     *hdTimeout,
		Keepalive:  *kaTimeout,
		WriteStall: *wsTimeout,
	}
	run.Overload = offload.OverloadPolicy{
		MaxConns:     *maxConns,
		ShedFraction: *shedFrac,
	}

	inj, err := fault.ParseSpec(*faultSpec, *faultSeed)
	if err != nil {
		log.Fatalf("-fault: %v", err)
	}
	if inj != nil && !run.UseQAT {
		log.Fatalf("-fault needs a QAT configuration (got %s)", run.Name)
	}
	if inj != nil && *opTimeout <= 0 {
		log.Print("warning: -fault without -op-timeout; stalled ops will hang their connections")
	}

	// A chaos schedule replays timed faults against individual devices, so
	// each device needs its own injector (the -fault rules, if any, seed
	// every one). Chaos without the lifecycle manager would leave killed
	// devices dead forever, so -chaos implies -lifecycle.
	chaos, err := fault.ParseSchedule(*chaosSpec)
	if err != nil {
		log.Fatalf("-chaos: %v", err)
	}
	if chaos != nil {
		if !run.UseQAT {
			log.Fatalf("-chaos needs a QAT configuration (got %s)", run.Name)
		}
		*lifecycle = true
		if *opTimeout <= 0 {
			log.Print("warning: -chaos without -op-timeout; stalled ops will hang their connections")
		}
	}
	if *lifecycle {
		if !run.UseQAT {
			log.Fatalf("-lifecycle needs a QAT configuration (got %s)", run.Name)
		}
		run.Lifecycle = &qat.LifecycleConfig{}
	}

	var pool *qat.Pool
	var devInjs []*fault.Injector
	if run.UseQAT {
		spec := qat.DeviceSpec{
			Endpoints:          *endpnts,
			EnginesPerEndpoint: *engines,
			SymBaseTime:        4 * time.Microsecond,
			SymPerKB:           time.Microsecond,
			Injector:           inj,
		}
		if chaos != nil {
			var rules []fault.Rule
			if inj != nil {
				rules = inj.Rules()
			}
			devs := make([]*qat.Device, *devCount)
			devInjs = make([]*fault.Injector, *devCount)
			for d := range devs {
				devInjs[d] = fault.NewInjector(*faultSeed+int64(d), rules...)
				dspec := spec
				dspec.Injector = devInjs[d]
				devs[d] = qat.NewDevice(dspec)
			}
			pool = qat.PoolOf(devs...)
		} else {
			pool = qat.NewPool(*devCount, spec)
		}
		defer pool.Close()
		if inj != nil {
			log.Printf("%s", inj)
		}
	}

	var rec *trace.Recorder
	if *traceOn || *flightOn {
		// The flight recorder's windowed signal plane consumes spans, so
		// -flight implies span recording.
		rec = trace.NewRecorder(*traceCap)
		rec.SetEnabled(true)
	}
	var fr *flight.Recorder
	if *flightOn {
		fr = flight.New(flight.Config{SLOP99: *sloP99})
		fr.SetEnabled(true)
		fr.SetDumpSink(func(reason string, events []flight.Event) {
			name := fmt.Sprintf("flight-%s-%d.jsonl", reason, time.Now().UnixNano())
			f, err := os.Create(name)
			if err != nil {
				log.Printf("flight dump (%s): %v", reason, err)
				return
			}
			defer f.Close()
			if err := fr.WriteDumpEvents(f, reason, events); err != nil {
				log.Printf("flight dump (%s): %v", reason, err)
				return
			}
			log.Printf("flight dump (%s): %d events -> %s (read with: qatinfo -flight %s)",
				reason, len(events), name, name)
		})
	}
	srv, err := server.New(server.Options{
		Addr:    *addr,
		Workers: *workers,
		Run:     run,
		TLS:     tlsCfg,
		Pool:    pool,
		Handler: server.SizedBodyHandler(8 << 20),
		Trace:   rec,
		Flight:  fr,
	})
	if err != nil {
		log.Fatalf("server: %v", err)
	}
	srv.Start()
	log.Printf("qtlsserver: %s, %d workers, config %s, max %s — listening on %s",
		*keyType, *workers, run.Name, *maxVer, srv.Addr())
	log.Printf("observability: GET /stub_status, GET /metrics (Prometheus text)")
	if rec != nil {
		log.Printf("tracing: GET /debug/trace?n=256 (four-phase spans, %d per worker)", *traceCap)
	}
	if pool != nil && (pool.Size() > 1 || run.Placement != offload.PlacementSingle) {
		log.Printf("placement: %s over %d device(s), pool-wide admission control", run.Placement, pool.Size())
	}
	if *tktRot > 0 {
		ring := srv.TicketKeys()
		if ring == nil {
			log.Fatalf("-ticket-rotate needs the shared ticket ring (a multi-device -placement with -tickets)")
		}
		go func() {
			for range time.Tick(*tktRot) {
				if err := ring.Rotate(); err != nil {
					log.Printf("ticket rotate: %v", err)
					continue
				}
				log.Printf("ticket ring rotated (generation %d, %d keys retained)", ring.Generation(), ring.Len())
			}
		}()
		log.Printf("ticket ring: rotating every %s", *tktRot)
	}
	if run.AdaptivePoll != nil {
		log.Printf("adaptive polling: closed-loop thresholds every %s, watch qtls_poll_threshold{class} on /metrics", *adaptInt)
	}
	if srv.Lifecycle() != nil {
		note := ""
		if run.Breaker == nil {
			note = " (no -breaker: only reset-storm and wedge detection active)"
		}
		log.Printf("lifecycle: quarantine/probation/recovery on %d device(s), qtls_device_state{dev} on /metrics%s",
			pool.Size(), note)
	}
	if chaos != nil {
		log.Printf("chaos: %s (quiet after %s)", chaos, chaos.Duration())
		chaosCtx, chaosCancel := context.WithCancel(context.Background())
		defer chaosCancel()
		go func() {
			err := chaos.Apply(chaosCtx,
				func(dev int) *fault.Injector {
					if dev >= 0 && dev < len(devInjs) {
						return devInjs[dev]
					}
					return nil
				},
				func(dev int) {
					if dev >= 0 && dev < pool.Size() {
						pool.Device(dev).Reset()
					}
				})
			if err != nil {
				log.Printf("chaos: %v", err)
				return
			}
			log.Print("chaos: schedule complete")
		}()
	}
	if fr != nil {
		log.Printf("flight recorder: GET /debug/flight?n=256, SIGQUIT dumps, windowed *_w60s series on /metrics")
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		go func() {
			for range quit {
				fr.Trigger("signal")
			}
		}()
	}

	if *stats > 0 {
		go func() {
			for range time.Tick(*stats) {
				st := srv.Stats()
				line := fmt.Sprintf("handshakes=%d (resumed %d) requests=%d bytes=%d asyncEvents=%d heuristicPolls=%d timerPolls=%d retries=%d errors=%d",
					st.Handshakes, st.Resumed, st.Requests, st.BytesOut,
					st.AsyncEvents, st.HeuristicPolls, st.TimerPolls, st.RetryEvents, st.Errors)
				if pool != nil {
					var reqs uint64
					for _, d := range pool.Devices() {
						for _, c := range d.Counters() {
							reqs += c.TotalRequests()
						}
					}
					line += fmt.Sprintf(" fw_counters=%d", reqs)
					if lc := srv.Lifecycle(); lc != nil {
						line += fmt.Sprintf(" devState=%v", lc.States())
					}
				}
				snap := srv.Metrics().Snapshot()
				if rb := snap["qtls_record_bytes"]; rb > 0 {
					line += fmt.Sprintf(" recordBytes=%d recordOps=%d/%d(off/sw)",
						rb, snap["qtls_record_offload_ops"], snap["qtls_record_sw_ops"])
				}
				if snap["qat_faults_injected"] > 0 || snap["qat_sw_fallbacks"] > 0 {
					line += fmt.Sprintf(" faults=%d timeouts=%d swFallbacks=%d trips=%d",
						snap["qat_faults_injected"], snap["qat_op_timeouts"],
						snap["qat_sw_fallbacks"], snap["qat_instance_trips"])
				}
				if rec != nil {
					line += " phases(p50/p99 µs):"
					for _, ph := range trace.OffloadPhases() {
						if h, ok := srv.Metrics().LookupHistogram(trace.PhaseSeriesName(ph)); ok && h.Count() > 0 {
							line += fmt.Sprintf(" %s=%.1f/%.1f", ph,
								h.Quantile(0.50)/1e3, h.Quantile(0.99)/1e3)
						}
					}
				}
				log.Print(line)
			}
		}()
	}

	// SIGTERM/SIGINT starts a graceful drain: stop accepting, finish
	// admitted requests and in-flight QAT responses, close-notify idle
	// keepalive connections. A second signal — or the drain budget
	// expiring — forces the hard cutoff.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("draining (budget %s; signal again for hard stop)", *drainWait)
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	go func() {
		<-sig
		cancel()
	}()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("drain cut short: %v", err)
	} else {
		log.Print("drained cleanly")
	}
	cancel()
}
