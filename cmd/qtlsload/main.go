// Command qtlsload is the client-side load generator of the reproduction:
// an OpenSSL s_time equivalent (closed-loop TLS connections measuring
// connections per second) and an ApacheBench equivalent (keepalive
// requests measuring throughput and response time), targeting a running
// qtlsserver. The offload configuration under test (SW, QAT+S, QAT+A,
// QAT+AH, QTLS — see internal/offload) is selected on the server side;
// this tool only drives the TLS client half of the workload.
//
//	qtlsload -mode stime -addr 127.0.0.1:8443 -clients 50 -duration 10s
//	qtlsload -mode stime -resume-fraction 0.9  # full:abbreviated = 1:9 mix
//	qtlsload -mode ab -path /65536 -clients 40 # 64 KB keepalive transfers
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"qtls/internal/loadgen"
	"qtls/internal/minitls"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8443", "server address")
		mode     = flag.String("mode", "stime", "workload: stime (handshakes) or ab (keepalive requests)")
		clients  = flag.Int("clients", 10, "concurrent clients")
		duration = flag.Duration("duration", 5*time.Second, "run duration")
		reuse    = flag.Float64("reuse", 0, "fraction of resumed connections (stime mode; alias of -resume-fraction)")
		resume   = flag.Float64("resume-fraction", 0, "fraction of connections attempted as abbreviated (resumed) handshakes; implies requesting session tickets")
		path     = flag.String("path", "/1024", "request path (ab mode, or stime per-connection request)")
		request  = flag.Bool("request", false, "stime: issue one request per connection")
		maxVer   = flag.String("max-version", "1.2", "maximum TLS version: 1.2 or 1.3")

		// Invariant thresholds for scripted soaks: violating any exits 1,
		// so a chaos harness can gate on this tool's exit code.
		minConns   = flag.Int("min-conns", 0, "exit 1 when fewer connections complete (0 = off)")
		maxErrRate = flag.Float64("max-error-rate", -1, "exit 1 when errors/attempts exceeds this fraction (negative = off; sheds and clean closes don't count)")
		maxP99     = flag.Duration("max-p99", 0, "exit 1 when the latency p99 exceeds this (0 = off)")
	)
	flag.Parse()

	tlsCfg := &minitls.Config{}
	if *maxVer == "1.3" {
		tlsCfg.MaxVersion = minitls.VersionTLS13
	}

	frac := *reuse
	if *resume > 0 {
		frac = *resume
	}
	if frac > 0 {
		// A resumption mix needs sessions to resume: ask the server for
		// tickets on the full handshakes.
		tlsCfg.RequestTicket = true
	}

	var res loadgen.Result
	switch *mode {
	case "stime":
		opts := loadgen.STimeOptions{
			Addr:           *addr,
			Clients:        *clients,
			Duration:       *duration,
			TLS:            tlsCfg,
			ResumeFraction: frac,
		}
		if *request {
			opts.RequestPath = *path
		}
		res = loadgen.STime(opts)
	case "ab":
		res = loadgen.AB(loadgen.ABOptions{
			Addr:     *addr,
			Clients:  *clients,
			Duration: *duration,
			TLS:      tlsCfg,
			Path:     *path,
		})
	default:
		log.Fatalf("unknown -mode %q", *mode)
	}
	fmt.Println(res)

	// Soak invariants: report every violation, then gate the exit code.
	failed := false
	if *minConns > 0 && res.Connections < int64(*minConns) {
		fmt.Fprintf(os.Stderr, "FAIL: %d connections < -min-conns %d\n", res.Connections, *minConns)
		failed = true
	}
	if *maxErrRate >= 0 {
		attempts := res.Connections + res.Errors
		rate := 0.0
		if attempts > 0 {
			rate = float64(res.Errors) / float64(attempts)
		}
		if rate > *maxErrRate {
			fmt.Fprintf(os.Stderr, "FAIL: error rate %.4f > -max-error-rate %.4f (%d/%d)\n",
				rate, *maxErrRate, res.Errors, attempts)
			failed = true
		}
	}
	if *maxP99 > 0 && time.Duration(res.Latency.P99) > *maxP99 {
		fmt.Fprintf(os.Stderr, "FAIL: p99 %v > -max-p99 %v\n",
			time.Duration(res.Latency.P99).Round(time.Microsecond), *maxP99)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
