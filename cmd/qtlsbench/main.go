// Command qtlsbench regenerates the QTLS paper's evaluation tables and
// figures (§5) on the discrete-event performance model, printing the same
// rows/series the paper reports. The offload configurations the
// experiments sweep (SW, QAT+S, QAT+A, QAT+AH, QTLS) are the named
// policies of internal/offload, shared with the live server.
//
// Usage:
//
//	qtlsbench                 # run every experiment (full durations)
//	qtlsbench -run fig7a      # one experiment
//	qtlsbench -run fig7a,fig10
//	qtlsbench -quick          # short smoke durations
//	qtlsbench -list           # list experiment ids
//	qtlsbench -measure 2s -warmup 1s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"qtls/internal/perf/figures"
)

func main() {
	var (
		runList = flag.String("run", "", "comma-separated experiment ids (default: all)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		quick   = flag.Bool("quick", false, "short smoke durations")
		warmup  = flag.Duration("warmup", 0, "override warmup duration")
		measure = flag.Duration("measure", 0, "override measurement window")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	if *list {
		for _, id := range figures.IDs() {
			fmt.Println(id)
		}
		return
	}

	opts := figures.Opts{}
	if *quick {
		opts = figures.Quick()
	}
	if *warmup > 0 {
		opts.Warmup = *warmup
	}
	if *measure > 0 {
		opts.Measure = *measure
	}

	ids := figures.IDs()
	if *runList != "" {
		ids = strings.Split(*runList, ",")
	}
	start := time.Now()
	for _, id := range ids {
		id = strings.TrimSpace(id)
		gen, ok := figures.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "qtlsbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		t0 := time.Now()
		table := gen(opts)
		if *csv {
			fmt.Printf("# %s — %s\n%s\n", table.ID, table.Title, table.CSV())
		} else {
			fmt.Println(table.Format())
			fmt.Printf("  [%s completed in %v]\n\n", id, time.Since(t0).Round(time.Millisecond))
		}
	}
	if !*csv {
		fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))
	}
}
