module qtls

go 1.22
