//go:build linux

package loadgen

import (
	"syscall"
	"time"
)

// ProcessCPU returns the process's cumulative user+system CPU time via
// getrusage(RUSAGE_SELF). The second return is false when the sample
// could not be taken.
func ProcessCPU() (time.Duration, bool) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, false
	}
	return tvDuration(ru.Utime) + tvDuration(ru.Stime), true
}

func tvDuration(tv syscall.Timeval) time.Duration {
	return time.Duration(tv.Sec)*time.Second + time.Duration(tv.Usec)*time.Microsecond
}
