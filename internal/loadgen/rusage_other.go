//go:build !linux

package loadgen

import "time"

// ProcessCPU is unavailable off Linux; callers fall back to wall-clock
// comparisons (BulkResult.CPUValid stays false).
func ProcessCPU() (time.Duration, bool) { return 0, false }
