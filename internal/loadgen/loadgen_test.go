//go:build linux

package loadgen

import (
	"sync"
	"testing"
	"time"

	"qtls/internal/minitls"
	"qtls/internal/server"
)

var (
	idOnce sync.Once
	rsaID  *minitls.Identity
)

func identity(t testing.TB) *minitls.Identity {
	t.Helper()
	idOnce.Do(func() {
		var err error
		rsaID, err = minitls.NewRSAIdentity(2048)
		if err != nil {
			panic(err)
		}
	})
	return rsaID
}

func startServer(t *testing.T, extra func(*minitls.Config)) *server.Server {
	t.Helper()
	cfg := &minitls.Config{Identity: identity(t)}
	if extra != nil {
		extra(cfg)
	}
	srv, err := server.New(server.Options{
		Addr:    "127.0.0.1:0",
		Workers: 1,
		Run:     server.ConfigSW,
		TLS:     cfg,
		Handler: server.SizedBodyHandler(1 << 20),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)
	return srv
}

func TestSTimeBasic(t *testing.T) {
	srv := startServer(t, nil)
	res := STime(STimeOptions{
		Addr:           srv.Addr(),
		Clients:        2,
		Duration:       300 * time.Millisecond,
		MaxConnections: 10,
	})
	if res.Connections == 0 {
		t.Fatalf("no connections: %s", res)
	}
	if res.Errors > 0 {
		t.Fatalf("errors: %s", res)
	}
	if res.CPS() <= 0 {
		t.Fatal("CPS should be positive")
	}
	if res.Latency.Count != res.Connections {
		t.Fatalf("latency samples %d != connections %d", res.Latency.Count, res.Connections)
	}
}

func TestSTimeWithRequest(t *testing.T) {
	srv := startServer(t, nil)
	res := STime(STimeOptions{
		Addr:           srv.Addr(),
		Clients:        2,
		Duration:       300 * time.Millisecond,
		RequestPath:    "/512",
		MaxConnections: 6,
	})
	if res.Requests == 0 {
		t.Fatalf("no requests: %s", res)
	}
	if res.BytesIn != res.Requests*512 {
		t.Fatalf("bytes %d for %d requests of 512", res.BytesIn, res.Requests)
	}
}

func TestSTimeResumption(t *testing.T) {
	srv := startServer(t, func(c *minitls.Config) {
		c.SessionCache = minitls.NewSessionCache(64)
	})
	res := STime(STimeOptions{
		Addr:           srv.Addr(),
		Clients:        2,
		Duration:       400 * time.Millisecond,
		ResumeFraction: 1.0,
		MaxConnections: 16,
	})
	if res.Connections < 4 {
		t.Fatalf("too few connections: %s", res)
	}
	if res.Resumed == 0 {
		t.Fatalf("no resumptions: %s", res)
	}
	// First connection per client is necessarily full.
	if res.Resumed >= res.Connections {
		t.Fatalf("resumed %d of %d: first connections must be full", res.Resumed, res.Connections)
	}
}

// TestSTimeClassifiesFullVsResumed pins the split stats: every completed
// connection lands in exactly one of the full/resumed latency
// distributions, and the counters agree with them.
func TestSTimeClassifiesFullVsResumed(t *testing.T) {
	ring, err := minitls.GenerateTicketKeyRing(2)
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, func(c *minitls.Config) {
		c.TicketKeys = ring
	})
	res := STime(STimeOptions{
		Addr:           srv.Addr(),
		Clients:        2,
		Duration:       500 * time.Millisecond,
		TLS:            &minitls.Config{RequestTicket: true},
		ResumeFraction: 0.9,
		MaxConnections: 20,
	})
	if res.Errors > 0 {
		t.Fatalf("errors: %s", res)
	}
	if res.Resumed == 0 || res.FullHandshakes() == 0 {
		t.Fatalf("need both kinds in a 0.9 mix: %s", res)
	}
	if res.FullHandshakes() != res.Connections-res.Resumed {
		t.Fatalf("full %d != conns %d - resumed %d", res.FullHandshakes(), res.Connections, res.Resumed)
	}
	if res.LatencyFull.Count != res.FullHandshakes() {
		t.Fatalf("full latency samples %d != full handshakes %d", res.LatencyFull.Count, res.FullHandshakes())
	}
	if res.LatencyResumed.Count != res.Resumed {
		t.Fatalf("resumed latency samples %d != resumed %d", res.LatencyResumed.Count, res.Resumed)
	}
	if res.Latency.Count != res.Connections {
		t.Fatalf("combined latency samples %d != connections %d", res.Latency.Count, res.Connections)
	}
}

// TestSTimeResumeDeclined checks the declined bucket: a server that
// cannot resume (no ticket key, no cache) still issues no session, so
// nothing is offered — declined stays 0. Against a resuming server whose
// keys rotate away mid-run, offers start failing and are classified as
// declined full handshakes rather than errors.
func TestSTimeResumeDeclined(t *testing.T) {
	ring, err := minitls.GenerateTicketKeyRing(2)
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, func(c *minitls.Config) {
		c.TicketKeys = ring
	})
	// Age every issued key out shortly into the run: outstanding tickets
	// stop opening and offers get declined.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		time.Sleep(150 * time.Millisecond)
		for i := 0; i < 2; i++ {
			ring.Rotate()
		}
		<-stop
	}()
	res := STime(STimeOptions{
		Addr:           srv.Addr(),
		Clients:        1,
		Duration:       600 * time.Millisecond,
		TLS:            &minitls.Config{RequestTicket: true},
		ResumeFraction: 1.0,
	})
	if res.Errors > 0 {
		t.Fatalf("declined resumptions must not error: %s", res)
	}
	if res.ResumeDeclined == 0 {
		t.Fatalf("no declines after key rotation: %s", res)
	}
	if res.LatencyFull.Count+res.LatencyResumed.Count != res.Connections {
		t.Fatalf("split does not cover all connections: %s", res)
	}
}

func TestABKeepalive(t *testing.T) {
	srv := startServer(t, nil)
	res := AB(ABOptions{
		Addr:        srv.Addr(),
		Clients:     2,
		Duration:    400 * time.Millisecond,
		Path:        "/2048",
		MaxRequests: 12,
	})
	if res.Requests == 0 || res.Errors > 0 {
		t.Fatalf("bad run: %s", res)
	}
	if res.Connections > res.Requests {
		t.Fatalf("keepalive broken: %d conns for %d requests", res.Connections, res.Requests)
	}
	if res.ThroughputGbps() <= 0 || res.RPS() <= 0 {
		t.Fatal("rates should be positive")
	}
}

func TestResultString(t *testing.T) {
	var r Result
	if r.String() == "" {
		t.Fatal("empty render")
	}
	if r.CPS() != 0 || r.RPS() != 0 || r.ThroughputGbps() != 0 {
		t.Fatal("zero-duration rates should be 0")
	}
}

func TestDialFailureCounted(t *testing.T) {
	// Nothing listening on this port.
	res := STime(STimeOptions{
		Addr:     "127.0.0.1:1",
		Clients:  1,
		Duration: 50 * time.Millisecond,
	})
	if res.Connections != 0 {
		t.Fatalf("connections to dead port: %s", res)
	}
	// A refused dial is the server declining at the door: shed, not error.
	if res.Shed == 0 {
		t.Fatalf("dial failures should be counted (as sheds): %s", res)
	}
	if res.Errors != 0 {
		t.Fatalf("refused dials misclassified as generic errors: %s", res)
	}
}

func TestCutPrefixFold(t *testing.T) {
	if v, ok := cutPrefixFold("Content-Length: 42", "content-length:"); !ok || v != "42" {
		t.Fatalf("got %q, %v", v, ok)
	}
	if _, ok := cutPrefixFold("X-Other: 1", "content-length:"); ok {
		t.Fatal("wrong prefix matched")
	}
	if _, ok := cutPrefixFold("short", "content-length:"); ok {
		t.Fatal("short line matched")
	}
}

func TestTrimCRLF(t *testing.T) {
	if trimCRLF("abc\r\n") != "abc" || trimCRLF("abc") != "abc" || trimCRLF("\r\n") != "" {
		t.Fatal("trimCRLF broken")
	}
}
