package loadgen

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"qtls/internal/metrics"
	"qtls/internal/minitls"
)

// The bulk-transfer workload: keepalive connections downloading
// configurable response sizes, reporting goodput and CPU-per-byte —
// the client side of the record-path evaluation (the `ktls` figure).
// Where STime stresses handshakes and AB stresses a fixed object, Bulk
// cycles a size list per request and samples process CPU around the
// run, so software and offloaded record paths can be compared on the
// cost of moving a byte, not just on wall-clock throughput.

// BulkOptions configures the bulk-transfer load.
type BulkOptions struct {
	// Addr is the server address.
	Addr string
	// Clients is the number of concurrent keepalive connections.
	Clients int
	// Duration bounds the run.
	Duration time.Duration
	// TLS is the client TLS template.
	TLS *minitls.Config
	// Sizes are the response sizes cycled per request against a
	// SizedBodyHandler-style server (default: one 64 KB object).
	Sizes []int
	// MaxRequests, when > 0, stops after this many requests.
	MaxRequests int64
}

// BulkResult is a Result plus the CPU cost of the run.
type BulkResult struct {
	Result
	// CPU is the user+system CPU time this process consumed during the
	// run. With server and client in one process (the benchmark
	// harness), it is the total cost of serving and consuming the
	// bytes — the comparison the record-path figure is after.
	CPU time.Duration
	// CPUValid reports whether the platform could sample process CPU.
	CPUValid bool
}

// CPUPerKB returns CPU nanoseconds spent per kilobyte of response body
// — the figure of merit for record-path offload (0 when CPU sampling
// is unavailable or nothing transferred).
func (r BulkResult) CPUPerKB() float64 {
	if !r.CPUValid || r.BytesIn <= 0 {
		return 0
	}
	return float64(r.CPU.Nanoseconds()) / (float64(r.BytesIn) / 1024)
}

// String renders the result with its CPU cost.
func (r BulkResult) String() string {
	return fmt.Sprintf("%s cpu=%v (%.0f ns/KB)", r.Result, r.CPU.Round(time.Millisecond), r.CPUPerKB())
}

// Bulk runs the bulk-transfer workload.
func Bulk(opts BulkOptions) BulkResult {
	if opts.Clients <= 0 {
		opts.Clients = 1
	}
	if opts.Duration <= 0 {
		opts.Duration = time.Second
	}
	if opts.TLS == nil {
		opts.TLS = &minitls.Config{}
	}
	if len(opts.Sizes) == 0 {
		opts.Sizes = []int{64 << 10}
	}
	paths := make([]string, len(opts.Sizes))
	for i, s := range opts.Sizes {
		paths[i] = "/" + strconv.Itoa(s)
	}
	var reqs, bytesIn, errCount, conns, shedCount, cleanCount, shortCount atomic.Int64
	lat := metrics.NewHistogram(1 << 14)
	cpu0, cpuOK := ProcessCPU()
	deadline := time.Now().Add(opts.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < opts.Clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			n := id // stagger the size cycle across clients
			for time.Now().Before(deadline) {
				raw, err := net.DialTimeout("tcp", opts.Addr, 5*time.Second)
				if err != nil {
					// A refused or reset dial is the server shedding, not a
					// generic failure — classify it, and keep the client
					// loop alive (with a short backoff so a dead listener
					// is not hammered) so the run can observe the recovery
					// instead of bleeding clients.
					classifyFailure(err, nil, &shedCount, &cleanCount, &shortCount, &errCount)
					dialBackoff(deadline)
					continue
				}
				cfg := *opts.TLS
				tc := minitls.ClientConn(raw, &cfg)
				raw.SetDeadline(time.Now().Add(15 * time.Second))
				if err := tc.Handshake(); err != nil {
					classifyFailure(err, tc, &shedCount, &cleanCount, &shortCount, &errCount)
					raw.Close()
					continue
				}
				conns.Add(1)
				br := bufio.NewReaderSize(&tlsReader{tc}, 64<<10)
				for time.Now().Before(deadline) {
					if opts.MaxRequests > 0 && reqs.Load() >= opts.MaxRequests {
						break
					}
					raw.SetDeadline(time.Now().Add(15 * time.Second))
					t0 := time.Now()
					got, err := doRequest(tc, br, paths[n%len(paths)])
					n++
					if err != nil {
						classifyFailure(err, tc, &shedCount, &cleanCount, &shortCount, &errCount)
						break
					}
					lat.ObserveDuration(time.Since(t0))
					reqs.Add(1)
					bytesIn.Add(int64(got))
				}
				raw.Close()
				if opts.MaxRequests > 0 && reqs.Load() >= opts.MaxRequests {
					return
				}
			}
		}(i)
	}
	wg.Wait()
	res := BulkResult{Result: Result{
		Connections: conns.Load(),
		Requests:    reqs.Load(),
		BytesIn:     bytesIn.Load(),
		Errors:      errCount.Load(),
		ShortIO:     shortCount.Load(),
		Shed:        shedCount.Load(),
		CleanCloses: cleanCount.Load(),
		Elapsed:     time.Since(start),
		Latency:     lat.Snapshot(),
	}}
	if cpu1, ok := ProcessCPU(); ok && cpuOK {
		res.CPU = cpu1 - cpu0
		res.CPUValid = true
	}
	return res
}
