// Package loadgen implements the client side of the paper's evaluation:
// an OpenSSL s_time equivalent that opens TLS connections in a closed
// loop to measure connections per second (§5.2, §5.3), and an
// ApacheBench (ab) equivalent that issues keepalive HTTPS requests to
// measure secure data transfer throughput (§5.4) and average response
// time (§5.5).
package loadgen

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"qtls/internal/metrics"
	"qtls/internal/minitls"
)

// Result aggregates a load run.
type Result struct {
	// Connections is the number of completed TLS connections.
	Connections int64
	// Resumed is how many of those used an abbreviated handshake.
	Resumed int64
	// ResumeDeclined counts connections that offered a session but were
	// answered with a full handshake (ticket key rotated out, cache miss
	// on another worker, server without resumption). These complete and
	// count under Connections, but as full handshakes.
	ResumeDeclined int64
	// Requests is the number of completed HTTP requests.
	Requests int64
	// BytesIn is the number of response body bytes received.
	BytesIn int64
	// Errors counts failed connections/requests, excluding the two
	// server-intended closes counted below and the mid-transfer
	// truncations counted as ShortIO.
	Errors int64
	// ShortIO counts responses truncated mid-body — a short read (the
	// connection died after the handshake, while the body was still
	// streaming) or a short write. These are transfer failures, not
	// handshake failures, and the bulk workload reports them separately
	// so a record-path defect can't hide inside the handshake error
	// count.
	ShortIO int64
	// Shed counts connections rejected by the server's admission control:
	// a TCP reset surfaced while dialing, handshaking or requesting.
	Shed int64
	// CleanCloses counts server-initiated orderly closes — the peer sent
	// a TLS close-notify (graceful drain, keepalive deadline) before the
	// failure, so the connection ended cleanly rather than erroring.
	CleanCloses int64
	// Elapsed is the measured wall-clock interval.
	Elapsed time.Duration
	// Latency summarizes per-operation latency (handshake latency for
	// STime, request latency for AB).
	Latency metrics.Snapshot
	// LatencyFull and LatencyResumed split the STime handshake latency by
	// handshake kind: a resumed handshake skips the asymmetric-key
	// calculations, so mixing the two hides both distributions (§5.3's
	// 1:9 mix). Zero-valued for AB and when the split is empty.
	LatencyFull    metrics.Snapshot
	LatencyResumed metrics.Snapshot
}

// FullHandshakes returns the connections completed with a full (non
// resumed) handshake.
func (r Result) FullHandshakes() int64 { return r.Connections - r.Resumed }

// CPS returns completed connections per second.
func (r Result) CPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Connections) / r.Elapsed.Seconds()
}

// RPS returns requests per second.
func (r Result) RPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// ThroughputGbps returns the response-body goodput in gigabits/second.
func (r Result) ThroughputGbps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.BytesIn) * 8 / r.Elapsed.Seconds() / 1e9
}

// STimeOptions configures the s_time-like closed-loop handshake load.
type STimeOptions struct {
	// Addr is the server address.
	Addr string
	// Clients is the number of concurrent client loops (the paper runs
	// 2×1000 s_time processes).
	Clients int
	// Duration bounds the run.
	Duration time.Duration
	// TLS is the client TLS template (suites, max version).
	TLS *minitls.Config
	// ResumeFraction is the fraction of connections attempted as
	// abbreviated handshakes once a session is available: 0 = all full
	// (fresh s_time), 1 = all resumed (s_time -reuse), 0.9 = the paper's
	// 1:9 full/abbreviated mix (§5.3).
	ResumeFraction float64
	// RequestPath, when non-empty, sends one GET per connection and reads
	// the response (used for the latency evaluation, §5.5).
	RequestPath string
	// MaxConnections, when > 0, stops after this many connections.
	MaxConnections int64
}

// STime runs the closed-loop handshake workload.
func STime(opts STimeOptions) Result {
	if opts.Clients <= 0 {
		opts.Clients = 1
	}
	if opts.Duration <= 0 {
		opts.Duration = time.Second
	}
	if opts.TLS == nil {
		opts.TLS = &minitls.Config{}
	}
	var res Result
	var conns, resumed, declined, reqs, bytesIn, errCount, shedCount, cleanCount, shortCount atomic.Int64
	lat := metrics.NewHistogram(1 << 14)
	latFull := metrics.NewHistogram(1 << 14)
	latResumed := metrics.NewHistogram(1 << 14)
	deadline := time.Now().Add(opts.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < opts.Clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var session *minitls.ClientSession
			iter := 0
			for time.Now().Before(deadline) {
				if opts.MaxConnections > 0 && conns.Load() >= opts.MaxConnections {
					return
				}
				iter++
				cfg := *opts.TLS
				wantResume := session != nil && opts.ResumeFraction > 0 &&
					float64(iter%100)/100.0 < opts.ResumeFraction
				if wantResume {
					cfg.Session = session
				}
				t0 := time.Now()
				conn, didResume, body, err := oneConnection(opts.Addr, &cfg, opts.RequestPath)
				if err != nil {
					classifyFailure(err, conn, &shedCount, &cleanCount, &shortCount, &errCount)
					continue
				}
				hsDur := time.Since(t0)
				lat.ObserveDuration(hsDur)
				conns.Add(1)
				if didResume {
					resumed.Add(1)
					latResumed.ObserveDuration(hsDur)
				} else {
					latFull.ObserveDuration(hsDur)
					if wantResume {
						declined.Add(1)
					}
				}
				if opts.RequestPath != "" {
					reqs.Add(1)
					bytesIn.Add(int64(body))
				}
				if conn != nil && (session == nil || !didResume) {
					if s := conn.ResumptionSession(); s != nil {
						session = s
					}
				}
			}
		}(i)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Connections = conns.Load()
	res.Resumed = resumed.Load()
	res.ResumeDeclined = declined.Load()
	res.Requests = reqs.Load()
	res.BytesIn = bytesIn.Load()
	res.Errors = errCount.Load()
	res.ShortIO = shortCount.Load()
	res.Shed = shedCount.Load()
	res.CleanCloses = cleanCount.Load()
	res.Latency = lat.Snapshot()
	res.LatencyFull = latFull.Snapshot()
	res.LatencyResumed = latResumed.Snapshot()
	return res
}

// classifyFailure sorts one failed connection or request into the shed /
// clean-close / short-IO / error buckets. A TCP reset is the signature
// of the server's accept-time shedding (netpoll Conn.Abort), and a
// refused dial is the server declining at the earliest possible point (a
// draining server closes its listener first) — both are the server
// turning work away, not client-side failures; EOF after the peer's
// close-notify is an orderly server-initiated close, not a failure; a
// short body read or write (io.ErrUnexpectedEOF / io.ErrShortWrite,
// surfaced by doRequest) is a transfer truncation, distinct from
// handshake errors.
func classifyFailure(err error, tc *minitls.Conn, shed, clean, short, errs *atomic.Int64) {
	switch {
	case errors.Is(err, syscall.ECONNRESET), errors.Is(err, syscall.EPIPE),
		errors.Is(err, syscall.ECONNREFUSED):
		shed.Add(1)
	case errors.Is(err, io.EOF) && tc != nil && tc.CloseNotifyReceived():
		clean.Add(1)
	case errors.Is(err, io.ErrUnexpectedEOF) && tc != nil && tc.CloseNotifyReceived():
		// Truncated by an orderly close (a drain cut the response): the
		// close was clean at the TLS layer, but the transfer was short.
		short.Add(1)
	case errors.Is(err, io.ErrUnexpectedEOF), errors.Is(err, io.ErrShortWrite):
		short.Add(1)
	default:
		errs.Add(1)
	}
}

// dialBackoff pauses a client loop after a failed dial — long enough not
// to busy-loop against a dead listener, short enough to notice a
// recovering one promptly — without sleeping past the run deadline.
func dialBackoff(deadline time.Time) {
	const backoff = 50 * time.Millisecond
	if d := time.Until(deadline); d < backoff {
		if d > 0 {
			time.Sleep(d)
		}
		return
	}
	time.Sleep(backoff)
}

// oneConnection dials, handshakes, optionally issues one request, and
// closes.
func oneConnection(addr string, cfg *minitls.Config, path string) (*minitls.Conn, bool, int, error) {
	raw, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, false, 0, err
	}
	defer raw.Close()
	raw.SetDeadline(time.Now().Add(10 * time.Second))
	tc := minitls.ClientConn(raw, cfg)
	if err := tc.Handshake(); err != nil {
		return nil, false, 0, err
	}
	n := 0
	if path != "" {
		br := bufio.NewReaderSize(&tlsReader{tc}, 32<<10)
		if n, err = doRequest(tc, br, path); err != nil {
			return tc, tc.ConnectionState().DidResume, 0, err
		}
	}
	tc.Close()
	return tc, tc.ConnectionState().DidResume, n, nil
}

// doRequest sends one GET and reads the full response, returning the
// body length. The buffered reader must be reused across requests on the
// same connection (it may hold read-ahead bytes).
func doRequest(tc *minitls.Conn, br *bufio.Reader, path string) (int, error) {
	req := "GET " + path + " HTTP/1.1\r\nHost: qtls\r\n\r\n"
	if _, err := tc.Write([]byte(req)); err != nil {
		return 0, err
	}
	var contentLength = -1
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return 0, err
		}
		line = trimCRLF(line)
		if line == "" {
			break
		}
		if n, ok := cutPrefixFold(line, "content-length:"); ok {
			v, err := strconv.Atoi(n)
			if err != nil {
				return 0, err
			}
			contentLength = v
		}
	}
	if contentLength < 0 {
		return 0, errors.New("loadgen: response without Content-Length")
	}
	if n, err := io.CopyN(io.Discard, br, int64(contentLength)); err != nil {
		if errors.Is(err, io.EOF) {
			// The body ended early: a short read, not a boundary EOF —
			// classified apart from handshake errors (Result.ShortIO).
			err = io.ErrUnexpectedEOF
		}
		return int(n), err
	}
	return contentLength, nil
}

func trimCRLF(s string) string {
	for len(s) > 0 && (s[len(s)-1] == '\n' || s[len(s)-1] == '\r') {
		s = s[:len(s)-1]
	}
	return s
}

// cutPrefixFold strips an ASCII-case-insensitive prefix and surrounding
// spaces.
func cutPrefixFold(s, prefix string) (string, bool) {
	if len(s) < len(prefix) {
		return "", false
	}
	for i := 0; i < len(prefix); i++ {
		a, b := s[i], prefix[i]
		if 'A' <= a && a <= 'Z' {
			a += 'a' - 'A'
		}
		if a != b {
			return "", false
		}
	}
	return string(bytes.TrimSpace([]byte(s[len(prefix):]))), true
}

type tlsReader struct{ c *minitls.Conn }

func (r *tlsReader) Read(p []byte) (int, error) { return r.c.Read(p) }

// ABOptions configures the ApacheBench-like keepalive request load.
type ABOptions struct {
	// Addr is the server address.
	Addr string
	// Clients is the number of concurrent keepalive connections (the
	// paper uses 400 ab processes for throughput, 1–256 for latency).
	Clients int
	// Duration bounds the run.
	Duration time.Duration
	// TLS is the client TLS template.
	TLS *minitls.Config
	// Path is the requested object (e.g. "/65536" for a 64 KB file).
	Path string
	// MaxRequests, when > 0, stops after this many requests.
	MaxRequests int64
}

// AB runs the keepalive request workload.
func AB(opts ABOptions) Result {
	if opts.Clients <= 0 {
		opts.Clients = 1
	}
	if opts.Duration <= 0 {
		opts.Duration = time.Second
	}
	if opts.TLS == nil {
		opts.TLS = &minitls.Config{}
	}
	if opts.Path == "" {
		opts.Path = "/1024"
	}
	var reqs, bytesIn, errCount, conns, shedCount, cleanCount, shortCount atomic.Int64
	lat := metrics.NewHistogram(1 << 14)
	deadline := time.Now().Add(opts.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < opts.Clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				raw, err := net.DialTimeout("tcp", opts.Addr, 5*time.Second)
				if err != nil {
					// A refused or reset dial is the server shedding, not a
					// generic failure — classify it, and keep the client
					// loop alive (with a short backoff so a dead listener
					// is not hammered) so the run can observe the recovery
					// instead of bleeding clients.
					classifyFailure(err, nil, &shedCount, &cleanCount, &shortCount, &errCount)
					dialBackoff(deadline)
					continue
				}
				cfg := *opts.TLS
				tc := minitls.ClientConn(raw, &cfg)
				raw.SetDeadline(time.Now().Add(15 * time.Second))
				if err := tc.Handshake(); err != nil {
					classifyFailure(err, tc, &shedCount, &cleanCount, &shortCount, &errCount)
					raw.Close()
					continue
				}
				conns.Add(1)
				br := bufio.NewReaderSize(&tlsReader{tc}, 32<<10)
				// Keepalive request loop on this connection.
				for time.Now().Before(deadline) {
					if opts.MaxRequests > 0 && reqs.Load() >= opts.MaxRequests {
						break
					}
					raw.SetDeadline(time.Now().Add(15 * time.Second))
					t0 := time.Now()
					n, err := doRequest(tc, br, opts.Path)
					if err != nil {
						classifyFailure(err, tc, &shedCount, &cleanCount, &shortCount, &errCount)
						break
					}
					lat.ObserveDuration(time.Since(t0))
					reqs.Add(1)
					bytesIn.Add(int64(n))
				}
				raw.Close()
				if opts.MaxRequests > 0 && reqs.Load() >= opts.MaxRequests {
					return
				}
			}
		}()
	}
	wg.Wait()
	return Result{
		Connections: conns.Load(),
		Requests:    reqs.Load(),
		BytesIn:     bytesIn.Load(),
		Errors:      errCount.Load(),
		ShortIO:     shortCount.Load(),
		Shed:        shedCount.Load(),
		CleanCloses: cleanCount.Load(),
		Elapsed:     time.Since(start),
		Latency:     lat.Snapshot(),
	}
}

// String renders a result summary.
func (r Result) String() string {
	s := fmt.Sprintf("conns=%d (%.0f cps, %d full / %d resumed) reqs=%d (%.0f rps) in=%.2f Gbps err=%d short=%d shed=%d clean=%d lat{%s}",
		r.Connections, r.CPS(), r.FullHandshakes(), r.Resumed, r.Requests, r.RPS(), r.ThroughputGbps(),
		r.Errors, r.ShortIO, r.Shed, r.CleanCloses, r.Latency)
	if r.Resumed > 0 {
		s += fmt.Sprintf(" full{%s} resumed{%s}", r.LatencyFull, r.LatencyResumed)
	}
	if r.ResumeDeclined > 0 {
		s += fmt.Sprintf(" declined=%d", r.ResumeDeclined)
	}
	return s
}
