//go:build linux

package loadgen

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"qtls/internal/minitls"
	"qtls/internal/offload"
	"qtls/internal/server"
)

func classifyOne(err error) (shed, clean, short, errs int64) {
	var s, c, sh, e atomic.Int64
	classifyFailure(err, nil, &s, &c, &sh, &e)
	return s.Load(), c.Load(), sh.Load(), e.Load()
}

// classifyFailure sorts TCP resets (admission shedding) and mid-body
// truncations (short IO) away from plain errors, including through
// wrapping.
func TestClassifyFailure(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{syscall.ECONNRESET, "shed"},
		{syscall.EPIPE, "shed"},
		{fmt.Errorf("write: %w", syscall.ECONNRESET), "shed"},
		{&net.OpError{Op: "read", Err: os.NewSyscallError("read", syscall.ECONNRESET)}, "shed"},
		{io.EOF, "err"}, // EOF without a close-notify is an abnormal close
		{io.ErrUnexpectedEOF, "short"},
		{io.ErrShortWrite, "short"},
		{fmt.Errorf("body: %w", io.ErrUnexpectedEOF), "short"},
		{errors.New("handshake failure"), "err"},
		// A refused dial is the server declining at the door (a draining
		// server closes its listener first): shed, not error.
		{syscall.ECONNREFUSED, "shed"},
	}
	for _, tc := range cases {
		shed, clean, short, errs := classifyOne(tc.err)
		got := "err"
		switch {
		case shed == 1 && clean == 0 && short == 0 && errs == 0:
			got = "shed"
		case clean == 1 && shed == 0 && short == 0 && errs == 0:
			got = "clean"
		case short == 1 && shed == 0 && clean == 0 && errs == 0:
			got = "short"
		}
		if got != tc.want {
			t.Fatalf("classify(%v) = %s (shed=%d clean=%d short=%d err=%d), want %s",
				tc.err, got, shed, clean, short, errs, tc.want)
		}
	}
}

// A short body read surfaces as ShortIO, separately from handshake
// errors: doRequest converts a mid-body EOF into io.ErrUnexpectedEOF.
func TestShortReadClassifiedSeparately(t *testing.T) {
	shed, clean, short, errs := classifyOne(fmt.Errorf("request: %w", io.ErrUnexpectedEOF))
	if short != 1 || shed != 0 || clean != 0 || errs != 0 {
		t.Fatalf("short read: shed=%d clean=%d short=%d err=%d, want only short",
			shed, clean, short, errs)
	}
	// A handshake error stays in the error bucket.
	_, _, short, errs = classifyOne(errors.New("minitls: handshake failure"))
	if short != 0 || errs != 1 {
		t.Fatalf("handshake error leaked into ShortIO: short=%d err=%d", short, errs)
	}
}

// TestDialFailuresDoNotKillClients pins the dial-error path of the bulk
// and AB loops: a failed dial is classified like any other connection
// failure and the client loop continues to the deadline. The old path did
// errCount.Add(1) and returned, so the first refused dial silently killed
// the client goroutine — a load run against a shedding or recovering
// server would bleed clients and under-report the recovery.
func TestDialFailuresDoNotKillClients(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close() // nothing listens: every dial is refused immediately

	for _, mode := range []string{"bulk", "ab"} {
		var res Result
		switch mode {
		case "bulk":
			res = Bulk(BulkOptions{Addr: addr, Clients: 2, Duration: 150 * time.Millisecond}).Result
		case "ab":
			res = AB(ABOptions{Addr: addr, Clients: 2, Duration: 150 * time.Millisecond})
		}
		// A surviving loop retries for the whole window: far more than the
		// one-failure-per-client the goroutine-killing path produced.
		if failures := res.Errors + res.Shed; failures < 4 {
			t.Fatalf("%s: %d dial failures for 2 clients over 150ms — client loops died after the first (%s)",
				mode, failures, res)
		}
	}
}

// End to end: a server that refuses keepalive reuse closes every
// connection after one response; the client counts those closes in the
// shed/clean buckets, never as errors.
func TestABCountsServerClosesSeparately(t *testing.T) {
	run := server.ConfigSW
	run.Overload = offload.OverloadPolicy{
		MaxConns:              1,
		ShedFraction:          -1,
		KeepaliveShedFraction: -1,
	}
	srv, err := server.New(server.Options{
		Addr:    "127.0.0.1:0",
		Workers: 1,
		Run:     run,
		TLS:     &minitls.Config{Identity: identity(t)},
		Handler: server.SizedBodyHandler(1 << 20),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)

	res := AB(ABOptions{
		Addr:        srv.Addr(),
		Clients:     1,
		Duration:    2 * time.Second,
		Path:        "/64",
		MaxRequests: 4,
	})
	if res.Requests < 2 {
		t.Fatalf("too few requests through the shedding server: %s", res)
	}
	if res.Errors != 0 {
		t.Fatalf("server-initiated closes misclassified as errors: %s", res)
	}
	if res.Shed+res.CleanCloses == 0 {
		t.Fatalf("no server-initiated close counted: %s", res)
	}
}
