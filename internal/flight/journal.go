package flight

import (
	"sync/atomic"
	"time"

	"qtls/internal/trace"
)

// SystemWorker is the journal index used for events not owned by one
// worker goroutine: fault injections (device goroutines), signal-driven
// dump markers, and anything wired before workers exist.
const SystemWorker = 256

// Slot layout: [generation, time, meta, dur, arg]. Identical seqlock
// discipline to trace.Buffer: the generation word is 2*index+1 while
// the slot is being written and 2*index+2 once stable, so readers
// detect both in-progress writes and wrap-around overwrites.
const slotWords = 5

// Journal is one worker's private event ring. The zero/nil Journal is
// inert: Active reports false and Note is a no-op, so producers hold a
// plain *Journal and never nil-check — the same contract as
// trace.Buffer, and the property the package's zero-alloc benchmark
// guards.
type Journal struct {
	rec    *Recorder
	worker uint16
	mask   uint64
	cursor atomic.Uint64
	slots  []atomic.Int64
}

// Active reports whether events noted now would be kept.
func (j *Journal) Active() bool {
	return j != nil && j.rec.enabled.Load()
}

// Note journals one event stamped with the recorder's clock. Safe (one
// branch + one atomic load, no allocation) on a nil or disabled
// journal. Breaker-open events and the shed/fault/deadline counter
// windows are fed from here, so producers call Note once and the
// recorder fans the event out.
func (j *Journal) Note(k Kind, code uint8, op trace.Op, dur, arg int64) {
	if !j.Active() {
		return
	}
	j.noteAt(j.rec.now(), k, code, op, dur, arg)
}

// noteAt journals one event with an explicit timestamp (the span-fed
// path reuses the span's own clock; Note stamps with the recorder's).
// Callers must have checked Active.
func (j *Journal) noteAt(tNs int64, k Kind, code uint8, op trace.Op, dur, arg int64) {
	idx := j.cursor.Add(1) - 1
	base := int(idx&j.mask) * slotWords
	gen := int64(idx) * 2
	j.slots[base].Store(gen + 1)
	j.slots[base+1].Store(tNs)
	j.slots[base+2].Store(int64(k) | int64(code)<<8 | int64(op)<<16 | int64(j.worker)<<24)
	j.slots[base+3].Store(dur)
	j.slots[base+4].Store(arg)
	j.slots[base].Store(gen + 2)
	j.rec.onEvent(k, code, tNs)
}

// size returns the ring capacity in events.
func (j *Journal) size() uint64 { return j.mask + 1 }

// snapshot appends every readable event in the ring to out, oldest
// first. Torn slots (a writer raced the read) are skipped.
func (j *Journal) snapshot(out []Event) []Event {
	if j == nil {
		return out
	}
	cur := j.cursor.Load()
	n := cur
	if n > j.size() {
		n = j.size()
	}
	for i := cur - n; i < cur; i++ {
		base := int(i&j.mask) * slotWords
		want := int64(i)*2 + 2
		if j.slots[base].Load() != want {
			continue // being written, or overwritten by a wrap
		}
		e := Event{
			Time: j.slots[base+1].Load(),
			Dur:  j.slots[base+3].Load(),
			Arg:  j.slots[base+4].Load(),
		}
		meta := j.slots[base+2].Load()
		if j.slots[base].Load() != want {
			continue // torn: a wrap-around writer got in between
		}
		e.Kind = Kind(meta & 0xff)
		e.Code = uint8(meta >> 8 & 0xff)
		e.Op = trace.Op(meta >> 16 & 0xff)
		e.Worker = uint16(meta >> 24 & 0xffff)
		out = append(out, e)
	}
	return out
}

// sortEvents orders by time (shellsort, allocation-free, same rationale
// as trace.sortSpans).
func sortEvents(s []Event) {
	for gap := len(s) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(s); i++ {
			v := s[i]
			j := i
			for ; j >= gap && s[j-gap].Time > v.Time; j -= gap {
				s[j] = s[j-gap]
			}
			s[j] = v
		}
	}
}

// nowNano is the default recorder clock.
func nowNano() int64 { return time.Now().UnixNano() }
