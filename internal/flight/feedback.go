package flight

import "qtls/internal/offload"

// WindowFeedback backs offload.PollFeedback with a pair of sliding
// windows: retrieve-phase latency (the recorder's PhaseRetrieve window
// on the live stack, a virtual-time window in the DES) and completion
// batch sizes (fed by the worker's poll path). This is the closed-loop
// wiring the Window doc comment promised: the adaptive ShouldPoll tuner
// reads the last window, not the lifetime histograms, so the thresholds
// follow what the device is doing *now*.
type WindowFeedback struct {
	// Latency observes retrieve-phase latency in nanoseconds.
	Latency *Window
	// Batch observes the size of each non-empty completion batch.
	Batch *Window
}

// Feedback merges both windows into one controller reading.
func (f WindowFeedback) Feedback(nowNs int64) offload.FeedbackPoint {
	var p offload.FeedbackPoint
	if f.Latency != nil {
		s := f.Latency.Snapshot(nowNs)
		p.Samples = s.Count
		p.P95 = s.P95
		p.P99 = s.P99
	}
	if f.Batch != nil {
		p.BatchMean = f.Batch.Snapshot(nowNs).Mean
	}
	return p
}
