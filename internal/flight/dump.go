package flight

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"qtls/internal/trace"
)

// DumpHeader is the first line of a flight dump: what fired, when, and
// the windowed phase summaries at that moment.
type DumpHeader struct {
	Reason string                  `json:"reason"`
	AtNs   int64                   `json:"at_ns"`
	Events int                     `json:"events"`
	Window string                  `json:"window"`
	Phases map[string]PhaseSummary `json:"phases,omitempty"`
}

// PhaseSummary is one phase's windowed latency summary inside a dump
// header (nanoseconds).
type PhaseSummary struct {
	Count int64   `json:"count"`
	Rate  float64 `json:"rate"`
	P50   float64 `json:"p50_ns"`
	P95   float64 `json:"p95_ns"`
	P99   float64 `json:"p99_ns"`
	Max   float64 `json:"max_ns"`
}

// headerLine wraps DumpHeader so a dump file's first line is
// self-identifying: {"flight":{...}}.
type headerLine struct {
	Flight *DumpHeader `json:"flight"`
}

// WriteDump renders a JSON-lines dump: one header line followed by up
// to n journaled events (n <= 0 writes everything retained). It reads
// the live journals; pass events to WriteDumpEvents when the snapshot
// was already taken (the trigger path).
func (r *Recorder) WriteDump(w io.Writer, reason string, n int) error {
	if r == nil {
		return fmt.Errorf("flight: recorder not configured")
	}
	return r.WriteDumpEvents(w, reason, r.Events(n))
}

// WriteDumpEvents renders a JSON-lines dump from an already captured
// event snapshot.
func (r *Recorder) WriteDumpEvents(w io.Writer, reason string, events []Event) error {
	if r == nil {
		return fmt.Errorf("flight: recorder not configured")
	}
	nowNs := r.now()
	hdr := DumpHeader{
		Reason: reason,
		AtNs:   nowNs,
		Events: len(events),
		Window: r.suffix(),
		Phases: make(map[string]PhaseSummary, trace.NumPhases),
	}
	for p := trace.Phase(0); p < trace.NumPhases; p++ {
		s := r.phaseWin[p].Snapshot(nowNs)
		if s.Count == 0 {
			continue
		}
		hdr.Phases[p.String()] = PhaseSummary{
			Count: s.Count, Rate: s.Rate, P50: s.P50, P95: s.P95, P99: s.P99, Max: s.Max,
		}
	}
	b, err := json.Marshal(headerLine{Flight: &hdr})
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s\n", b); err != nil {
		return err
	}
	for _, e := range events {
		line, err := e.MarshalJSON()
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s\n", line); err != nil {
			return err
		}
	}
	return nil
}

// DumpEvent is one parsed dump line, with the symbolic names a reader
// tool works in.
type DumpEvent struct {
	TimeNs int64  `json:"t_ns"`
	Kind   string `json:"kind"`
	Worker int    `json:"worker"`
	Code   string `json:"code"`
	Op     string `json:"op"`
	DurNs  int64  `json:"dur_ns"`
	Arg    int64  `json:"arg"`
}

// Dump is one parsed flight dump.
type Dump struct {
	Header DumpHeader
	Events []DumpEvent
}

// ReadDump parses a JSON-lines dump produced by WriteDump. A missing
// header line is tolerated (the dump then has a zero Header), so event
// fragments paste-ably round-trip.
func ReadDump(r io.Reader) (*Dump, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	d := &Dump{}
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if first {
			first = false
			var hl headerLine
			if err := json.Unmarshal([]byte(line), &hl); err == nil && hl.Flight != nil {
				d.Header = *hl.Flight
				continue
			}
		}
		var e DumpEvent
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("flight: bad dump line %q: %v", line, err)
		}
		d.Events = append(d.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

// Report pretty-prints a parsed dump: the header summary, a per-second
// phase/event timeline, and the top-k slowest spans. This backs
// `qatinfo -flight <file>`.
func (d *Dump) Report(w io.Writer, topK int) {
	if topK <= 0 {
		topK = 10
	}
	if d.Header.Reason != "" {
		fmt.Fprintf(w, "flight dump: reason=%s at=%s window=%s events=%d\n",
			d.Header.Reason, time.Unix(0, d.Header.AtNs).UTC().Format(time.RFC3339),
			d.Header.Window, d.Header.Events)
	} else {
		fmt.Fprintf(w, "flight dump: %d events (no header)\n", len(d.Events))
	}
	if len(d.Header.Phases) > 0 {
		fmt.Fprintf(w, "\nwindowed phase latency (%s):\n", d.Header.Window)
		names := make([]string, 0, len(d.Header.Phases))
		for n := range d.Header.Phases {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			p := d.Header.Phases[n]
			fmt.Fprintf(w, "  %-9s n=%-7d rate=%-8.1f p50=%-10v p95=%-10v p99=%-10v max=%v\n",
				n, p.Count, p.Rate,
				time.Duration(p.P50).Round(time.Microsecond),
				time.Duration(p.P95).Round(time.Microsecond),
				time.Duration(p.P99).Round(time.Microsecond),
				time.Duration(p.Max).Round(time.Microsecond))
		}
	}
	if len(d.Events) == 0 {
		fmt.Fprintf(w, "\nno events\n")
		return
	}

	// Timeline: one row per second containing events, oldest first,
	// counting events by kind (slow spans keyed by phase).
	t0, t1 := d.Events[0].TimeNs, d.Events[0].TimeNs
	for _, e := range d.Events {
		if e.TimeNs < t0 {
			t0 = e.TimeNs
		}
		if e.TimeNs > t1 {
			t1 = e.TimeNs
		}
	}
	counts := map[int64]map[string]int{}
	for _, e := range d.Events {
		sec := (e.TimeNs - t0) / int64(time.Second)
		key := e.Kind
		if e.Kind == "slowspan" {
			key = "slow:" + e.Code
		} else if e.Code != "" {
			key = e.Kind + ":" + e.Code
		}
		m, ok := counts[sec]
		if !ok {
			m = map[string]int{}
			counts[sec] = m
		}
		m[key]++
	}
	fmt.Fprintf(w, "\ntimeline (%s span, t0=%s):\n",
		time.Duration(t1-t0).Round(time.Millisecond),
		time.Unix(0, t0).UTC().Format("15:04:05.000"))
	secs := make([]int64, 0, len(counts))
	for s := range counts {
		secs = append(secs, s)
	}
	sort.Slice(secs, func(i, j int) bool { return secs[i] < secs[j] })
	for _, s := range secs {
		keys := make([]string, 0, len(counts[s]))
		for k := range counts[s] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s×%d", k, counts[s][k]))
		}
		fmt.Fprintf(w, "  +%3ds  %s\n", s, strings.Join(parts, " "))
	}

	// Placement flips and device-lifecycle transitions, pretty-printed:
	// these are low-frequency, high-signal events and the generic
	// kind:code×N timeline hides the fields that matter (which device,
	// which states, why).
	var moves []DumpEvent
	for _, e := range d.Events {
		if e.Kind == "placement" || e.Kind == "lifecycle" {
			moves = append(moves, e)
		}
	}
	if len(moves) > 0 {
		fmt.Fprintf(w, "\nplacement / lifecycle events:\n")
		for _, e := range moves {
			at := time.Duration(e.TimeNs - t0).Round(time.Millisecond)
			switch e.Kind {
			case "placement":
				// Code is the lane, DurNs the previous device, Arg the new.
				fmt.Fprintf(w, "  +%-8v placement  worker=%-3d lane=%-4s dev%d → dev%d\n",
					at, e.Worker, e.Code, e.DurNs, e.Arg)
			case "lifecycle":
				// Code is the reason, DurNs packs from<<8|to, Arg the device.
				from, to := LifecycleStates(e.DurNs)
				fmt.Fprintf(w, "  +%-8v lifecycle  dev%d %s → %s (%s)\n",
					at, e.Arg, from, to, e.Code)
			}
		}
	}

	// Top-k slow spans by duration.
	slow := make([]DumpEvent, 0, len(d.Events))
	for _, e := range d.Events {
		if e.Kind == "slowspan" {
			slow = append(slow, e)
		}
	}
	if len(slow) > 0 {
		sort.Slice(slow, func(i, j int) bool { return slow[i].DurNs > slow[j].DurNs })
		if len(slow) > topK {
			slow = slow[:topK]
		}
		fmt.Fprintf(w, "\ntop %d slow spans:\n", len(slow))
		for _, e := range slow {
			fmt.Fprintf(w, "  %-9s op=%-7s worker=%-3d dur=%-10v arg=%d t=+%v\n",
				e.Code, e.Op, e.Worker,
				time.Duration(e.DurNs).Round(time.Microsecond), e.Arg,
				time.Duration(e.TimeNs-t0).Round(time.Millisecond))
		}
	}
}
