package flight

import (
	"bytes"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qtls/internal/metrics"
	"qtls/internal/trace"
)

// fakeClock is an injectable recorder clock.
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) now() int64              { return c.ns.Load() }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

func newTestRecorder(cfg Config) (*Recorder, *fakeClock) {
	clk := &fakeClock{}
	clk.ns.Store(int64(1000 * time.Second))
	cfg.Now = clk.now
	r := New(cfg)
	r.SetEnabled(true)
	return r, clk
}

func TestFlightJournalNoteAndEvents(t *testing.T) {
	r, _ := newTestRecorder(Config{JournalSize: 16})
	j := r.Journal(3)
	j.Note(KindShed, ShedAccept, trace.OpNone, 0, 17)
	j.Note(KindDeadline, 2, trace.OpNone, 0, 18)
	r.Journal(SystemWorker).Note(KindFault, 0, trace.Op(0), 0, 1)

	evs := r.Events(0)
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	byKind := map[Kind]Event{}
	for _, e := range evs {
		byKind[e.Kind] = e
	}
	if e := byKind[KindShed]; e.Worker != 3 || e.Code != ShedAccept || e.Arg != 17 {
		t.Fatalf("shed event decoded wrong: %+v", e)
	}
	if e := byKind[KindDeadline]; codeName(e.Kind, e.Code) != "keepalive" || e.Arg != 18 {
		t.Fatalf("deadline event decoded wrong: %+v", e)
	}
	if e := byKind[KindFault]; e.Worker != SystemWorker || codeName(e.Kind, e.Code) != "stall" {
		t.Fatalf("fault event decoded wrong: %+v", e)
	}
	if got := r.Events(1); len(got) != 1 {
		t.Fatalf("Events(1) returned %d", len(got))
	}
}

func TestFlightJournalRingOverwritesOldest(t *testing.T) {
	r, _ := newTestRecorder(Config{JournalSize: 8})
	j := r.Journal(0)
	for i := 0; i < 20; i++ {
		j.Note(KindShed, ShedAccept, trace.OpNone, 0, int64(i))
	}
	evs := r.Events(0)
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want ring size 8", len(evs))
	}
	if evs[0].Arg != 12 || evs[7].Arg != 19 {
		t.Fatalf("ring kept wrong window: first=%d last=%d", evs[0].Arg, evs[7].Arg)
	}
}

func TestFlightDisabledAndNilAreInert(t *testing.T) {
	r := New(Config{})
	j := r.Journal(0)
	if j.Active() {
		t.Fatal("journal active before enable")
	}
	j.Note(KindShed, ShedAccept, trace.OpNone, 0, 1)
	if len(r.Events(0)) != 0 {
		t.Fatal("disabled recorder kept an event")
	}

	var nilJ *Journal
	if nilJ.Active() {
		t.Fatal("nil journal active")
	}
	nilJ.Note(KindShed, ShedAccept, trace.OpNone, 0, 1) // must not panic

	var nilR *Recorder
	nilR.SetEnabled(true)
	nilR.Check()
	nilR.Trigger("manual")
	nilR.Register(nil)
	nilR.AttachTrace(nil)
	nilR.SetDumpSink(nil)
	if nilR.Enabled() || nilR.Journal(0) != nil || nilR.Events(1) != nil ||
		nilR.PhaseWindow(trace.PhasePre) != nil || nilR.Dumps() != 0 {
		t.Fatal("nil recorder not inert")
	}
	if err := nilR.WriteDump(&bytes.Buffer{}, "manual", 0); err == nil {
		t.Fatal("nil recorder WriteDump should error")
	}
}

// The disabled hot paths must not allocate (the guard CI enforces via
// the benchmarks below; this is the fast in-suite check).
func TestFlightDisabledPathsDoNotAllocate(t *testing.T) {
	r := New(Config{})
	j := r.Journal(0)
	if n := testing.AllocsPerRun(1000, func() {
		j.Note(KindShed, ShedAccept, trace.OpNone, 0, 1)
	}); n != 0 {
		t.Fatalf("disabled Note allocates %v times per call", n)
	}
	span := trace.Span{Start: 1, Dur: 2, Phase: trace.PhaseRetrieve, Op: trace.Op(0)}
	if n := testing.AllocsPerRun(1000, func() {
		r.onSpan(span)
	}); n != 0 {
		t.Fatalf("disabled span hook allocates %v times per call", n)
	}

	// Enabled paths stay allocation-free too: windows and journals are
	// preallocated.
	r.SetEnabled(true)
	r.Journal(int(span.Worker)) // pre-create the hook's journal
	if n := testing.AllocsPerRun(1000, func() {
		j.Note(KindShed, ShedAccept, trace.OpNone, 0, 1)
	}); n != 0 {
		t.Fatalf("enabled Note allocates %v times per call", n)
	}
	slow := trace.Span{Start: 1, Dur: int64(5 * time.Millisecond), Phase: trace.PhaseRetrieve, Op: trace.Op(0)}
	if n := testing.AllocsPerRun(1000, func() {
		r.onSpan(slow)
	}); n != 0 {
		t.Fatalf("enabled span hook allocates %v times per call", n)
	}
}

func TestFlightSpanHookFeedsWindowsAndJournal(t *testing.T) {
	r, clk := newTestRecorder(Config{SlowFloor: time.Millisecond})
	tr := trace.NewRecorder(64)
	tr.SetEnabled(true)
	r.AttachTrace(tr)
	buf := tr.Buffer(1)

	start := time.Unix(0, clk.now())
	buf.Record(trace.PhaseRetrieve, trace.Op(0), trace.TagNone, 7, start, 100*time.Microsecond) // fast: window only
	buf.Record(trace.PhaseRetrieve, trace.Op(5), trace.TagNone, 8, start, 5*time.Millisecond)   // slow: journaled

	ws := r.PhaseWindow(trace.PhaseRetrieve).Snapshot(clk.now() + int64(5*time.Millisecond))
	if ws.Count != 2 {
		t.Fatalf("retrieve window count = %d, want 2", ws.Count)
	}
	if asym := r.ClassWindow("asym").Snapshot(clk.now()); asym.Count != 1 {
		t.Fatalf("asym window count = %d, want 1", asym.Count)
	}
	if sym := r.ClassWindow("sym").Snapshot(clk.now() + int64(5*time.Millisecond)); sym.Count != 1 {
		t.Fatalf("sym window count = %d, want 1", sym.Count)
	}
	evs := r.Events(0)
	if len(evs) != 1 {
		t.Fatalf("journaled %d events, want only the slow span", len(evs))
	}
	e := evs[0]
	if e.Kind != KindSlowSpan || e.Worker != 1 || codeName(e.Kind, e.Code) != "retrieve" ||
		e.Op != trace.Op(5) || e.Dur != int64(5*time.Millisecond) || e.Arg != 8 {
		t.Fatalf("slow-span event decoded wrong: %+v", e)
	}
	if r.ClassWindow("bogus") != nil {
		t.Fatal("unknown class window should be nil")
	}
}

func TestFlightBreakerOpenTriggersDump(t *testing.T) {
	var mu sync.Mutex
	var reasons []string
	var captured []Event
	r, clk := newTestRecorder(Config{DumpCooldown: 10 * time.Second})
	r.SetDumpSink(func(reason string, events []Event) {
		mu.Lock()
		defer mu.Unlock()
		reasons = append(reasons, reason)
		captured = events
	})

	j := r.Journal(0)
	j.Note(KindShed, ShedAccept, trace.OpNone, 0, 5)
	j.Note(KindBreaker, 1, trace.OpNone, 0, 2) // open: must trigger
	mu.Lock()
	if len(reasons) != 1 || reasons[0] != "breaker-open" {
		mu.Unlock()
		t.Fatalf("reasons = %v, want [breaker-open]", reasons)
	}
	if len(captured) != 2 {
		mu.Unlock()
		t.Fatalf("dump captured %d events, want 2 (shed + breaker)", len(captured))
	}
	mu.Unlock()

	// Within the cooldown a second automatic trigger is suppressed.
	clk.advance(time.Second)
	j.Note(KindBreaker, 1, trace.OpNone, 0, 3)
	mu.Lock()
	if len(reasons) != 1 {
		mu.Unlock()
		t.Fatalf("cooldown did not suppress: %v", reasons)
	}
	mu.Unlock()

	// A manual Trigger ignores the cooldown.
	r.Trigger("signal")
	mu.Lock()
	if len(reasons) != 2 || reasons[1] != "signal" {
		mu.Unlock()
		t.Fatalf("manual trigger: %v", reasons)
	}
	mu.Unlock()

	// Past the cooldown, automatic triggers fire again.
	clk.advance(time.Minute)
	j.Note(KindBreaker, 1, trace.OpNone, 0, 2)
	mu.Lock()
	defer mu.Unlock()
	if len(reasons) != 3 || reasons[2] != "breaker-open" {
		t.Fatalf("post-cooldown trigger: %v", reasons)
	}
	if r.Dumps() != 3 {
		t.Fatalf("Dumps = %d, want 3", r.Dumps())
	}
	// Breaker transitions that are not "open" must not trigger.
	j.Note(KindBreaker, 0, trace.OpNone, 0, 2)
	j.Note(KindBreaker, 2, trace.OpNone, 0, 2)
	if len(reasons) != 3 {
		t.Fatalf("non-open transitions triggered: %v", reasons)
	}
}

func TestFlightSLOCheckTriggersDump(t *testing.T) {
	var got atomic.Int64
	var reason atomic.Pointer[string]
	r, clk := newTestRecorder(Config{SLOP99: time.Millisecond})
	r.SetDumpSink(func(rs string, _ []Event) {
		got.Add(1)
		reason.Store(&rs)
	})

	// Healthy traffic: Check stays quiet.
	for i := 0; i < 100; i++ {
		r.onSpan(trace.Span{Start: clk.now(), Dur: int64(100 * time.Microsecond), Phase: trace.PhaseRetrieve, Op: trace.Op(0)})
	}
	r.Check()
	if got.Load() != 0 {
		t.Fatal("healthy traffic tripped the SLO")
	}

	// Latency step over the SLO; Check is rate-limited, so advance past
	// half a bucket first.
	clk.advance(3 * time.Second)
	for i := 0; i < 100; i++ {
		r.onSpan(trace.Span{Start: clk.now(), Dur: int64(20 * time.Millisecond), Phase: trace.PhaseRetrieve, Op: trace.Op(0)})
	}
	r.Check()
	if got.Load() != 1 {
		t.Fatalf("SLO breach did not trigger (dumps=%d)", got.Load())
	}
	if rs := reason.Load(); rs == nil || *rs != "slo-p99" {
		t.Fatalf("reason = %v, want slo-p99", rs)
	}
}

func TestFlightShedRateCheckTriggersDump(t *testing.T) {
	var got atomic.Int64
	r, clk := newTestRecorder(Config{ShedRate: 10})
	r.SetDumpSink(func(string, []Event) { got.Add(1) })
	j := r.Journal(0)
	// 100 sheds in one bucket: ~20/s over the 5 s bucket, over the
	// 10/s threshold.
	for i := 0; i < 100; i++ {
		j.Note(KindShed, ShedAccept, trace.OpNone, 0, int64(i))
	}
	clk.advance(3 * time.Second)
	r.Check()
	if got.Load() != 1 {
		t.Fatalf("shed storm did not trigger (dumps=%d)", got.Load())
	}
}

func TestFlightCheckRateLimited(t *testing.T) {
	r, clk := newTestRecorder(Config{SLOP99: time.Millisecond})
	var got atomic.Int64
	r.SetDumpSink(func(string, []Event) { got.Add(1) })
	for i := 0; i < 100; i++ {
		r.onSpan(trace.Span{Start: clk.now(), Dur: int64(20 * time.Millisecond), Phase: trace.PhasePre, Op: trace.Op(0)})
	}
	clk.advance(3 * time.Second)
	r.Check()
	first := got.Load()
	// Immediately repeated checks are rate-limited (and the dump
	// cooldown would suppress the dump anyway).
	r.Check()
	r.Check()
	if got.Load() != first {
		t.Fatalf("rate limit failed: %d dumps", got.Load())
	}
}

func TestFlightDumpRoundTripAndReport(t *testing.T) {
	r, clk := newTestRecorder(Config{SlowFloor: time.Millisecond})
	r.onSpan(trace.Span{Start: clk.now(), Dur: int64(7 * time.Millisecond), Phase: trace.PhaseRetrieve, Op: trace.Op(0), Worker: 2, Arg: 11})
	r.onSpan(trace.Span{Start: clk.now() + int64(time.Second), Dur: int64(3 * time.Millisecond), Phase: trace.PhasePost, Op: trace.Op(1), Worker: 2, Arg: 12})
	// The breaker-open note fires the anomaly trigger, which journals a
	// dump marker of its own — so the journal holds 5 events.
	r.Journal(0).Note(KindBreaker, 1, trace.OpNone, 0, 0)
	r.Journal(0).Note(KindDrain, DrainDone, trace.OpNone, int64(time.Second), 3)

	var buf bytes.Buffer
	if err := r.WriteDump(&buf, "breaker-open", 0); err != nil {
		t.Fatal(err)
	}
	d, err := ReadDump(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadDump: %v\n%s", err, buf.String())
	}
	if d.Header.Reason != "breaker-open" || d.Header.Events != 5 {
		t.Fatalf("header = %+v", d.Header)
	}
	if p, ok := d.Header.Phases["retrieve"]; !ok || p.Count != 1 {
		t.Fatalf("header phases = %+v", d.Header.Phases)
	}
	if len(d.Events) != 5 {
		t.Fatalf("parsed %d events, want 5", len(d.Events))
	}
	kinds := map[string]int{}
	for _, e := range d.Events {
		kinds[e.Kind]++
	}
	if kinds["slowspan"] != 2 || kinds["breaker"] != 1 || kinds["drain"] != 1 || kinds["dump"] != 1 {
		t.Fatalf("kinds = %v", kinds)
	}

	var rep bytes.Buffer
	d.Report(&rep, 5)
	out := rep.String()
	for _, want := range []string{"reason=breaker-open", "top 2 slow spans", "retrieve", "breaker:open", "timeline"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}

	// Headerless fragments still parse.
	frag, err := ReadDump(strings.NewReader(`{"t_ns":5,"kind":"shed","worker":0,"code":"accept","op":"none","dur_ns":0,"arg":9}`))
	if err != nil || len(frag.Events) != 1 || frag.Events[0].Kind != "shed" {
		t.Fatalf("fragment parse: %v %+v", err, frag)
	}
	var fragRep bytes.Buffer
	frag.Report(&fragRep, 0)
	if !strings.Contains(fragRep.String(), "no header") {
		t.Fatalf("fragment report:\n%s", fragRep.String())
	}
}

// The /metrics growth: windowed summaries appear as *_w60s series with
// p50/p95/p99 per phase, and react to a latency step within one bucket
// rotation.
func TestFlightRegisterExposesWindowedSeries(t *testing.T) {
	reg := metrics.NewRegistry()
	r, clk := newTestRecorder(Config{})
	r.Register(reg)
	r.Register(reg) // idempotent

	scrape := func() string {
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}

	// Healthy traffic, then scrape.
	for i := 0; i < 200; i++ {
		r.onSpan(trace.Span{Start: clk.now(), Dur: int64(100 * time.Microsecond), Phase: trace.PhaseRetrieve, Op: trace.Op(0)})
		clk.advance(10 * time.Millisecond)
	}
	out := scrape()
	for _, want := range []string{
		"# TYPE qtls_phase_ns_w60s summary",
		"# HELP qtls_phase_ns_w60s ",
		`qtls_phase_ns_w60s{phase="retrieve",quantile="0.5"}`,
		`qtls_phase_ns_w60s{phase="retrieve",quantile="0.95"}`,
		`qtls_phase_ns_w60s{phase="retrieve",quantile="0.99"}`,
		`qtls_phase_ns_w60s{phase="pre",quantile="0.99"} 0`,
		`qtls_phase_ns_w60s_count{phase="retrieve"} 200`,
		`qtls_op_ns_w60s{class="asym",quantile="0.99"}`,
		"# TYPE qtls_phase_ns_w60s_max gauge",
		"# TYPE qtls_phase_ns_w60s_rate gauge",
		"qtls_shed_w60s_rate 0",
		"qtls_fault_w60s_rate 0",
		"qtls_deadline_w60s_rate 0",
		"qtls_flight_events_total 0",
		"qtls_flight_dumps_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape missing %q:\n%s", want, out)
		}
	}
	p99Before := windowedQuantile(t, out, "retrieve", "0.99")
	if p99Before > float64(200*time.Microsecond) {
		t.Fatalf("healthy windowed p99 = %v, want ~100µs", time.Duration(int64(p99Before)))
	}

	// Latency step: within one bucket rotation the windowed p99 follows.
	for i := 0; i < 200; i++ {
		r.onSpan(trace.Span{Start: clk.now(), Dur: int64(15 * time.Millisecond), Phase: trace.PhaseRetrieve, Op: trace.Op(0)})
		clk.advance(10 * time.Millisecond)
	}
	p99After := windowedQuantile(t, scrape(), "retrieve", "0.99")
	if p99After < float64(10*time.Millisecond) {
		t.Fatalf("windowed p99 = %v after step, did not react within one rotation",
			time.Duration(int64(p99After)))
	}
}

// windowedQuantile extracts one qtls_phase_ns_w60s quantile value from
// a scrape.
func windowedQuantile(t *testing.T, scrape, phase, q string) float64 {
	t.Helper()
	prefix := `qtls_phase_ns_w60s{phase="` + phase + `",quantile="` + q + `"} `
	for _, line := range strings.Split(scrape, "\n") {
		if v, ok := strings.CutPrefix(line, prefix); ok {
			f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				t.Fatalf("bad value %q: %v", v, err)
			}
			return f
		}
	}
	t.Fatalf("series %q not in scrape:\n%s", prefix, scrape)
	return 0
}
