package flight

import (
	"math"
	"math/bits"
	"sync"
	"time"
)

// Quarter-log2 value buckets. Values are nanoseconds; bucket i covers
// [2^(i/4), 2^((i+1)/4)), so quantiles interpolated from bucket counts
// carry at most ~±9% relative error — plenty for a telemetry p99 whose
// job is to move when the workload does. 160 buckets reach 2^40 ns
// (~18 minutes), far past any span this stack can produce.
const numValueBuckets = 160

// windowBucket is one time slice of a Window. epoch stamps which slice
// of absolute time the bucket currently holds; a bucket whose epoch is
// stale is logically empty and is recycled in place on the next write.
type windowBucket struct {
	epoch    int64 // nowNs / bucketNs when last written; -1 = never used
	count    int64
	sum      float64
	min, max float64
	vals     [numValueBuckets]int32
}

func (b *windowBucket) reset(epoch int64) {
	b.epoch = epoch
	b.count = 0
	b.sum = 0
	b.min = math.Inf(1)
	b.max = math.Inf(-1)
	b.vals = [numValueBuckets]int32{}
}

// Window is a sliding-window histogram: a ring of time-bucketed
// sub-histograms (default 12 × 5 s) merged on read. Unlike
// metrics.Histogram, whose reservoir remembers the whole process
// lifetime, a Window forgets — its p99 is the p99 of the last minute,
// which is the signal an anomaly trigger (or a future adaptive
// ShouldPoll) actually needs.
//
// The clock is injected: every method takes nowNs, so the hot path
// never calls time.Now (span-fed observations reuse the span's own
// timestamps) and tests drive bucket rotation deterministically.
type Window struct {
	mu       sync.Mutex
	bucketNs int64
	buckets  []windowBucket
}

// NewWindow builds a window of n time buckets of width each. n <= 0
// selects 12 and width <= 0 selects 5s (a 60 s window).
func NewWindow(n int, width time.Duration) *Window {
	if n <= 0 {
		n = 12
	}
	if width <= 0 {
		width = 5 * time.Second
	}
	w := &Window{bucketNs: int64(width), buckets: make([]windowBucket, n)}
	for i := range w.buckets {
		w.buckets[i].epoch = -1
	}
	return w
}

// Span returns the total window duration (buckets × width).
func (w *Window) Span() time.Duration {
	return time.Duration(w.bucketNs * int64(len(w.buckets)))
}

// valueBucket maps v (nanoseconds, clamped to >= 1) onto its
// quarter-log2 bucket without calling math.Log2.
func valueBucket(v float64) int {
	u := uint64(v)
	if u < 1 {
		u = 1
	}
	e := bits.Len64(u) - 1 // floor(log2 u)
	sub := 0
	if e >= 2 {
		sub = int(u>>(e-2)) & 3 // quartile of [2^e, 2^(e+1))
	}
	i := e*4 + sub
	if i >= numValueBuckets {
		i = numValueBuckets - 1
	}
	return i
}

// bucketMid returns the geometric midpoint of value bucket i.
func bucketMid(i int) float64 {
	return math.Exp2((float64(i) + 0.5) / 4)
}

// Observe records one value at nowNs. Allocation-free; the only cost is
// the window mutex (held for a handful of stores).
func (w *Window) Observe(v float64, nowNs int64) {
	epoch := nowNs / w.bucketNs
	idx := int(epoch % int64(len(w.buckets)))
	if idx < 0 {
		idx += len(w.buckets)
	}
	w.mu.Lock()
	b := &w.buckets[idx]
	if b.epoch != epoch {
		b.reset(epoch)
	}
	b.count++
	b.sum += v
	if v < b.min {
		b.min = v
	}
	if v > b.max {
		b.max = v
	}
	b.vals[valueBucket(v)]++
	w.mu.Unlock()
}

// Add records n unit events at nowNs — the counter-shaped use (shed,
// fault, deadline rates) where only Count and Rate are read back.
func (w *Window) Add(n int64, nowNs int64) {
	for i := int64(0); i < n; i++ {
		w.Observe(1, nowNs)
	}
}

// WindowSnapshot is a point-in-time merge of a Window's live buckets.
// Min, Max and Mean are exact over the window; the quantiles are
// interpolated from the quarter-log2 buckets.
type WindowSnapshot struct {
	Count int64
	// Rate is events/second over the live portion of the window.
	Rate float64
	Min  float64
	Max  float64
	Mean float64
	P50  float64
	P95  float64
	P99  float64
}

// Snapshot merges every bucket still inside the window ending at nowNs.
func (w *Window) Snapshot(nowNs int64) WindowSnapshot {
	curEpoch := nowNs / w.bucketNs
	minEpoch := curEpoch - int64(len(w.buckets)) + 1

	var s WindowSnapshot
	var vals [numValueBuckets]int64
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	oldest := curEpoch

	w.mu.Lock()
	for i := range w.buckets {
		b := &w.buckets[i]
		if b.epoch < minEpoch || b.epoch > curEpoch || b.count == 0 {
			continue
		}
		s.Count += b.count
		s.sumInto(b)
		for j, c := range b.vals {
			vals[j] += int64(c)
		}
		if b.epoch < oldest {
			oldest = b.epoch
		}
	}
	w.mu.Unlock()

	if s.Count == 0 {
		return WindowSnapshot{}
	}
	s.Mean = s.Mean / float64(s.Count) // sumInto accumulated the sum here
	// Live span: from the start of the oldest contributing bucket to
	// now, clamped to at least one bucket so early rates aren't inflated.
	spanNs := nowNs - oldest*w.bucketNs
	if spanNs < w.bucketNs {
		spanNs = w.bucketNs
	}
	s.Rate = float64(s.Count) / (float64(spanNs) / 1e9)
	s.P50 = quantileFromBuckets(vals[:], s.Count, 0.50, s.Min, s.Max)
	s.P95 = quantileFromBuckets(vals[:], s.Count, 0.95, s.Min, s.Max)
	s.P99 = quantileFromBuckets(vals[:], s.Count, 0.99, s.Min, s.Max)
	return s
}

// sumInto folds one bucket's exact aggregates into the snapshot (the
// running sum is parked in Mean until Snapshot divides it).
func (s *WindowSnapshot) sumInto(b *windowBucket) {
	s.Mean += b.sum
	if b.min < s.Min {
		s.Min = b.min
	}
	if b.max > s.Max {
		s.Max = b.max
	}
}

// quantileFromBuckets finds the q-quantile from merged value-bucket
// counts, clamped into the exact observed [min, max] so single-sample
// and narrow windows report real values instead of bucket midpoints
// outside the data.
func quantileFromBuckets(vals []int64, count int64, q, min, max float64) float64 {
	rank := int64(math.Ceil(q * float64(count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range vals {
		cum += c
		if cum >= rank {
			v := bucketMid(i)
			if v < min {
				v = min
			}
			if v > max {
				v = max
			}
			return v
		}
	}
	return max
}
