// Package flight is the always-on black-box recorder and sliding-window
// aggregation layer of the QTLS observability surface. Where
// internal/trace answers "where did the time of one operation go" and
// internal/metrics answers "what happened since the process started",
// flight answers the two questions an incident actually poses: *what is
// the latency distribution right now* (windowed stats, merged from a
// ring of time-bucketed histograms) and *what happened in the seconds
// before things went wrong* (a per-worker journal of structured events,
// dumped as JSON-lines when an anomaly trigger fires).
//
// Design constraints mirror trace's:
//
//   - Opt-out cheap: with the recorder disabled every hot-path call is
//     one branch + one atomic load, no allocations (guarded by a
//     benchmark that CI runs).
//   - Race-detector clean: journals are seqlock-style rings of
//     atomic.Int64 words; windows are short-critical-section mutexes.
//   - Clock-injected: nothing in the hot path calls time.Now — span-fed
//     observations reuse the span's own timestamps and tests drive the
//     bucket rotation with a synthetic clock.
package flight

import (
	"fmt"

	"qtls/internal/trace"
)

// Kind classifies a journal event.
type Kind uint8

const (
	// KindSlowSpan is a trace span that completed above the recorder's
	// latency floor. Code is the trace.Phase, Op the span's op class,
	// Dur the span duration and Arg the span argument (connection fd,
	// batch size — phase-dependent, as in trace).
	KindSlowSpan Kind = iota
	// KindBreaker is a circuit-breaker state transition. Code is the new
	// state (closed/open/half-open), Dur the instance's endpoint and Arg
	// the instance index.
	KindBreaker
	// KindFault is one injected fault. Code is the fault class
	// (stall/drop/corrupt/latency/ringfull/reset), Op the targeted op
	// and Arg the endpoint.
	KindFault
	// KindShed is one admission-control rejection. Code is the shed site
	// (accept/keepalive) and Arg the connection fd.
	KindShed
	// KindDeadline is one connection-deadline expiry. Code is the
	// deadline class (handshake/header/keepalive/write) and Arg the fd.
	KindDeadline
	// KindDrain marks graceful-drain progress. Code is start/done and
	// Arg the number of connections still open.
	KindDrain
	// KindFallback is one degradation to the software path. Code says
	// why (timeout/cancel/ring-full/breaker/error/oversize), Op the op
	// class and Arg a phase-dependent argument (bytes for record ops).
	KindFallback
	// KindDump marks a dump trigger firing. Code is the trigger reason
	// and Arg the number of events captured.
	KindDump
	// KindThreshold is one adaptive poll-threshold move. Code is the
	// threshold class (asym/sym), Dur the old threshold and Arg the new
	// one.
	KindThreshold
	// KindPlacement is one placement flip: the engine re-routed an op
	// class to a different device (breaker open or rings saturated on the
	// preferred set). Code is the op class's placement lane (asym/sym),
	// Dur the previous device index and Arg the new one.
	KindPlacement
	// KindLifecycle is one device-lifecycle transition (healthy / suspect
	// / quarantined / probation). Code is the transition reason
	// (breaker-density, reset-storm, wedge, ...), Dur packs the states as
	// from<<8|to (see LifecycleStates) and Arg is the device index.
	KindLifecycle

	numKinds
)

// String returns the kind name used in dump output.
func (k Kind) String() string {
	switch k {
	case KindSlowSpan:
		return "slowspan"
	case KindBreaker:
		return "breaker"
	case KindFault:
		return "fault"
	case KindShed:
		return "shed"
	case KindDeadline:
		return "deadline"
	case KindDrain:
		return "drain"
	case KindFallback:
		return "fallback"
	case KindDump:
		return "dump"
	case KindThreshold:
		return "threshold"
	case KindPlacement:
		return "placement"
	case KindLifecycle:
		return "lifecycle"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Shed sites (KindShed codes).
const (
	ShedAccept uint8 = iota
	ShedKeepalive
)

// Drain marks (KindDrain codes).
const (
	DrainStart uint8 = iota
	DrainDone
)

// Fallback reasons (KindFallback codes).
const (
	FallbackTimeout uint8 = iota
	FallbackCancel
	FallbackRingFull
	FallbackBreaker
	FallbackError
	FallbackOversize
)

// Dump reasons (KindDump codes). DumpReasonCode maps the trigger-reason
// strings used by Recorder.Trigger onto these.
const (
	DumpManual uint8 = iota
	DumpSignal
	DumpBreakerOpen
	DumpSLOP99
	DumpShedRate
)

// dumpReasons indexes dump-reason names by code.
var dumpReasons = [...]string{"manual", "signal", "breaker-open", "slo-p99", "shed-rate"}

// DumpReasonCode returns the KindDump code for a trigger-reason string
// (DumpManual for unknown reasons).
func DumpReasonCode(reason string) uint8 {
	for i, n := range dumpReasons {
		if n == reason {
			return uint8(i)
		}
	}
	return DumpManual
}

// codeNames render the kind-specific meaning of Event.Code. The breaker,
// fault and deadline tables mirror fault.BreakerState, fault.Kind and
// offload.DeadlineClass ordinals without importing those packages (the
// dependencies point the other way: they journal into flight).
var (
	breakerNames  = [...]string{"closed", "open", "half-open"}
	faultNames    = [...]string{"stall", "drop", "corrupt", "latency", "ringfull", "reset"}
	shedNames     = [...]string{"accept", "keepalive"}
	deadlineNames = [...]string{"handshake", "header", "keepalive", "write"}
	drainNames    = [...]string{"start", "done"}
	fallbackNames = [...]string{"timeout", "cancel", "ring-full", "breaker", "error", "oversize"}
	// thresholdNames mirror offload.ThresholdAsym/ThresholdSym.
	thresholdNames = [...]string{"asym", "sym"}
	// placementNames mirror the engine's placement lanes (PlacementAsym /
	// PlacementSym codes below).
	placementNames = [...]string{"asym", "sym"}
	// lifecycleReasons mirror qat.LifecycleReason ordinals.
	lifecycleReasons = [...]string{"breaker-density", "reset-storm", "wedge",
		"probation", "probe-ok", "probe-fail", "decay", "manual"}
	// lifecycleStates mirror qat.DeviceState ordinals (packed into
	// KindLifecycle's Dur as from<<8|to).
	lifecycleStates = [...]string{"healthy", "suspect", "quarantined", "probation"}
)

// LifecycleStates unpacks a KindLifecycle Dur field (from<<8|to) into
// state names.
func LifecycleStates(dur int64) (from, to string) {
	name := func(s int64) string {
		if s >= 0 && int(s) < len(lifecycleStates) {
			return lifecycleStates[s]
		}
		return fmt.Sprintf("state(%d)", s)
	}
	return name(dur >> 8 & 0xff), name(dur & 0xff)
}

// PackLifecycleStates packs two qat.DeviceState ordinals into the Dur
// encoding LifecycleStates reverses.
func PackLifecycleStates(from, to int64) int64 { return from<<8 | to }

// Placement lanes (KindPlacement codes).
const (
	PlacementAsym uint8 = iota
	PlacementSym
)

func codeName(k Kind, code uint8) string {
	var tab []string
	switch k {
	case KindSlowSpan:
		return trace.Phase(code).String()
	case KindBreaker:
		tab = breakerNames[:]
	case KindFault:
		tab = faultNames[:]
	case KindShed:
		tab = shedNames[:]
	case KindDeadline:
		tab = deadlineNames[:]
	case KindDrain:
		tab = drainNames[:]
	case KindFallback:
		tab = fallbackNames[:]
	case KindDump:
		tab = dumpReasons[:]
	case KindThreshold:
		tab = thresholdNames[:]
	case KindPlacement:
		tab = placementNames[:]
	case KindLifecycle:
		tab = lifecycleReasons[:]
	}
	if int(code) < len(tab) {
		return tab[code]
	}
	return fmt.Sprintf("code(%d)", int(code))
}

// Event is one decoded journal record. Dur and Arg are kind-dependent;
// see the Kind constants.
type Event struct {
	// Time is the event time, nanoseconds since the Unix epoch. For slow
	// spans it is the span's completion time (start + duration).
	Time int64
	// Kind classifies the event.
	Kind Kind
	// Worker is the journaling worker's id (SystemWorker for events not
	// tied to one worker: fault injections, dump markers).
	Worker uint16
	// Code is the kind-specific detail (phase, breaker state, fault
	// class, shed site, deadline class, drain mark, fallback reason,
	// dump reason).
	Code uint8
	// Op is the crypto op class (trace.OpNone when not applicable).
	Op trace.Op
	// Dur is a duration in nanoseconds where meaningful (slow spans),
	// or a kind-specific extra field (endpoint for breaker events).
	Dur int64
	// Arg is the kind-specific argument (fd, instance, endpoint, bytes,
	// event count).
	Arg int64
}

// MarshalJSON renders the event as one dump line with symbolic names.
func (e Event) MarshalJSON() ([]byte, error) {
	return fmt.Appendf(nil,
		`{"t_ns":%d,"kind":%q,"worker":%d,"code":%q,"op":%q,"dur_ns":%d,"arg":%d}`,
		e.Time, e.Kind, e.Worker, codeName(e.Kind, e.Code), e.Op, e.Dur, e.Arg), nil
}
