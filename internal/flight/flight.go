package flight

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"qtls/internal/metrics"
	"qtls/internal/trace"
)

// Config tunes a Recorder. The zero value selects the defaults.
type Config struct {
	// JournalSize is each worker ring's capacity in events (rounded up
	// to a power of two; <= 0 selects 1024).
	JournalSize int
	// Buckets is the number of time buckets per window (default 12).
	Buckets int
	// Bucket is the width of one time bucket (default 5s; 12 × 5s gives
	// the default 60 s window and the `_w60s` series suffix).
	Bucket time.Duration
	// SlowFloor is the latency floor above which completed spans are
	// journaled (default 1ms; <0 journals nothing).
	SlowFloor time.Duration
	// SLOP99 arms the windowed-p99 anomaly trigger over the four
	// offload phases (0 disables it).
	SLOP99 time.Duration
	// ShedRate arms the shed-rate anomaly trigger, in sheds/second
	// (0 disables it).
	ShedRate float64
	// DumpCooldown is the minimum spacing between automatic dumps
	// (default 30s). Manual triggers (SIGQUIT, /debug/flight) ignore it.
	DumpCooldown time.Duration
	// DumpN caps the events captured per dump (<= 0 keeps everything
	// the journals retain).
	DumpN int
	// Now overrides the recorder clock (tests); nil uses wall time.
	Now func() int64
}

func (c Config) withDefaults() Config {
	if c.JournalSize <= 0 {
		c.JournalSize = 1024
	}
	if c.Buckets <= 0 {
		c.Buckets = 12
	}
	if c.Bucket <= 0 {
		c.Bucket = 5 * time.Second
	}
	if c.SlowFloor == 0 {
		c.SlowFloor = time.Millisecond
	}
	if c.DumpCooldown <= 0 {
		c.DumpCooldown = 30 * time.Second
	}
	if c.Now == nil {
		c.Now = nowNano
	}
	return c
}

// opClass maps a span op onto the window class index (0 = asym,
// 1 = sym, -1 = neither). Ordinals mirror qat.OpType/trace.Op: rsa,
// ecdsa, ecdh are the asymmetric handshake ops; prf, cipher, sym are
// the symmetric/derivation ops.
func opClass(op trace.Op) int {
	switch {
	case op <= 2:
		return 0
	case op <= 5:
		return 1
	}
	return -1
}

var classNames = [...]string{"asym", "sym"}

// slowSampleFloor is the minimum windowed sample count before the SLO
// trigger trusts a p99.
const sloSampleFloor = 8

// Recorder is the flight-recorder root: it owns the per-worker
// journals, the sliding windows, the anomaly triggers and the dump
// surface. A nil *Recorder is inert everywhere, so wiring is optional
// end-to-end (the same contract as trace.Recorder).
type Recorder struct {
	cfg     Config
	enabled atomic.Bool

	// journals is indexed by worker id (0..255) plus SystemWorker;
	// slots fill lazily and reads are lock-free (the trace hook routes
	// by span worker on the hot path).
	journals [SystemWorker + 1]atomic.Pointer[Journal]
	mu       sync.Mutex // guards journal creation and dump serialization

	phaseWin    [trace.NumPhases]*Window
	classWin    [len(classNames)]*Window
	shedWin     *Window
	faultWin    *Window
	deadlineWin *Window

	lastCheck  atomic.Int64
	lastDump   atomic.Int64
	dumps      atomic.Int64
	sink       atomic.Pointer[func(reason string, events []Event)]
	registered atomic.Bool
}

// New builds a disabled recorder. Call SetEnabled(true) to start
// keeping events, AttachTrace to feed it spans, and Register to grow
// the /metrics exposition.
func New(cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	size := uint64(1)
	for size < uint64(cfg.JournalSize) {
		size <<= 1
	}
	cfg.JournalSize = int(size)
	r := &Recorder{cfg: cfg}
	for i := range r.phaseWin {
		r.phaseWin[i] = NewWindow(cfg.Buckets, cfg.Bucket)
	}
	for i := range r.classWin {
		r.classWin[i] = NewWindow(cfg.Buckets, cfg.Bucket)
	}
	r.shedWin = NewWindow(cfg.Buckets, cfg.Bucket)
	r.faultWin = NewWindow(cfg.Buckets, cfg.Bucket)
	r.deadlineWin = NewWindow(cfg.Buckets, cfg.Bucket)
	return r
}

// SetEnabled turns the recorder on or off. Disabling keeps already
// journaled events readable.
func (r *Recorder) SetEnabled(on bool) {
	if r != nil {
		r.enabled.Store(on)
	}
}

// Enabled reports whether events are currently being kept.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled.Load() }

// now reads the recorder clock.
func (r *Recorder) now() int64 { return r.cfg.Now() }

// Journal returns worker's event ring, creating it on first use. A nil
// recorder returns a nil (inert) journal.
func (r *Recorder) Journal(worker int) *Journal {
	if r == nil {
		return nil
	}
	if worker < 0 || worker > SystemWorker {
		worker = SystemWorker
	}
	if j := r.journals[worker].Load(); j != nil {
		return j
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if j := r.journals[worker].Load(); j != nil {
		return j
	}
	j := &Journal{
		rec:    r,
		worker: uint16(worker),
		mask:   uint64(r.cfg.JournalSize) - 1,
		slots:  make([]atomic.Int64, r.cfg.JournalSize*slotWords),
	}
	r.journals[worker].Store(j)
	return j
}

// AttachTrace subscribes the recorder to tr's span commits: every span
// feeds the phase/class windows, and spans above the latency floor are
// journaled. The hook is a no-op (one atomic load) while the recorder
// is disabled, preserving trace's zero-alloc guarantee.
func (r *Recorder) AttachTrace(tr *trace.Recorder) {
	if r == nil || tr == nil {
		return
	}
	tr.Subscribe(r.onSpan)
}

// onSpan is the trace-commit hook. It must not allocate: windows are
// pre-built, journals are created at most once per worker, and the
// span arrives by value.
func (r *Recorder) onSpan(s trace.Span) {
	if !r.enabled.Load() {
		return
	}
	end := s.Start + s.Dur
	if int(s.Phase) < len(r.phaseWin) {
		r.phaseWin[s.Phase].Observe(float64(s.Dur), end)
	}
	if c := opClass(s.Op); c >= 0 {
		r.classWin[c].Observe(float64(s.Dur), end)
	}
	if r.cfg.SlowFloor >= 0 && s.Dur >= int64(r.cfg.SlowFloor) {
		r.Journal(int(s.Worker)).noteAt(end, KindSlowSpan, uint8(s.Phase), s.Op, s.Dur, s.Arg)
	}
}

// onEvent fans a freshly journaled event into the counter windows and
// the event-driven triggers. Runs on the journaling goroutine.
func (r *Recorder) onEvent(k Kind, code uint8, tNs int64) {
	switch k {
	case KindShed:
		r.shedWin.Observe(1, tNs)
	case KindFault:
		r.faultWin.Observe(1, tNs)
	case KindDeadline:
		r.deadlineWin.Observe(1, tNs)
	case KindBreaker:
		if code == 1 { // mirrors fault.StateOpen
			r.trigger("breaker-open", tNs)
		}
	}
}

// NewWindow builds an extra sliding window with the recorder's bucket
// geometry — for feedback consumers (the adaptive poll tuner's
// completion-batch window) that want the same time horizon as the
// recorder's own windows. A nil recorder returns a default window so
// callers need no nil branch.
func (r *Recorder) NewWindow() *Window {
	if r == nil {
		return NewWindow(0, 0)
	}
	return NewWindow(r.cfg.Buckets, r.cfg.Bucket)
}

// PhaseWindow returns the sliding window of one trace phase — the
// in-process consumer surface (the adaptive ShouldPoll tuner reads the
// retrieve-phase window from here).
func (r *Recorder) PhaseWindow(p trace.Phase) *Window {
	if r == nil || int(p) >= len(r.phaseWin) {
		return nil
	}
	return r.phaseWin[p]
}

// ClassWindow returns the sliding window of one op class ("asym" or
// "sym").
func (r *Recorder) ClassWindow(class string) *Window {
	if r == nil {
		return nil
	}
	for i, n := range classNames {
		if n == class {
			return r.classWin[i]
		}
	}
	return nil
}

// ShedWindow returns the shed-event counter window.
func (r *Recorder) ShedWindow() *Window {
	if r == nil {
		return nil
	}
	return r.shedWin
}

// Events returns up to n journaled events, merged across workers and
// sorted by time (oldest first). n <= 0 returns everything retained.
func (r *Recorder) Events(n int) []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for i := range r.journals {
		if j := r.journals[i].Load(); j != nil {
			out = j.snapshot(out)
		}
	}
	sortEvents(out)
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// SetDumpSink installs the dump consumer (typically "write a JSONL
// file"). The sink runs synchronously on whichever goroutine tripped
// the trigger — keep it cheap or hand off. Pass nil to detach.
func (r *Recorder) SetDumpSink(fn func(reason string, events []Event)) {
	if r == nil {
		return
	}
	if fn == nil {
		r.sink.Store(nil)
		return
	}
	r.sink.Store(&fn)
}

// Dumps returns how many dump triggers have fired.
func (r *Recorder) Dumps() int64 {
	if r == nil {
		return 0
	}
	return r.dumps.Load()
}

// Check evaluates the windowed anomaly conditions (SLO p99 over the
// offload phases, shed rate). It is rate-limited internally to twice
// per bucket, so event loops call it every iteration for free.
func (r *Recorder) Check() {
	if r == nil || !r.enabled.Load() {
		return
	}
	nowNs := r.now()
	last := r.lastCheck.Load()
	if nowNs-last < int64(r.cfg.Bucket)/2 {
		return
	}
	if !r.lastCheck.CompareAndSwap(last, nowNs) {
		return
	}
	if slo := int64(r.cfg.SLOP99); slo > 0 {
		for _, p := range trace.OffloadPhases() {
			if s := r.phaseWin[p].Snapshot(nowNs); s.Count >= sloSampleFloor && s.P99 > float64(slo) {
				r.trigger("slo-p99", nowNs)
				return
			}
		}
	}
	if sr := r.cfg.ShedRate; sr > 0 {
		if s := r.shedWin.Snapshot(nowNs); s.Rate > sr {
			r.trigger("shed-rate", nowNs)
		}
	}
}

// Trigger fires a dump unconditionally (manual and signal-driven
// paths; automatic triggers go through the cooldown-limited internal
// path instead).
func (r *Recorder) Trigger(reason string) {
	if r == nil || !r.enabled.Load() {
		return
	}
	r.dump(reason, r.now())
}

// trigger fires a dump unless one fired within the cooldown.
func (r *Recorder) trigger(reason string, nowNs int64) {
	last := r.lastDump.Load()
	if last != 0 && nowNs-last < int64(r.cfg.DumpCooldown) {
		return
	}
	if !r.lastDump.CompareAndSwap(last, nowNs) {
		return
	}
	r.dump(reason, nowNs)
}

// dump snapshots the journals, marks the dump in the system journal and
// hands the events to the sink.
func (r *Recorder) dump(reason string, nowNs int64) {
	events := r.Events(r.cfg.DumpN)
	r.dumps.Add(1)
	if j := r.Journal(SystemWorker); j.Active() {
		j.noteAt(nowNs, KindDump, DumpReasonCode(reason), trace.OpNone, 0, int64(len(events)))
	}
	if fn := r.sink.Load(); fn != nil {
		(*fn)(reason, events)
	}
}

// suffix is the windowed-series name suffix ("w60s" for the default
// 12 × 5 s configuration).
func (r *Recorder) suffix() string {
	return fmt.Sprintf("w%ds", int64(r.phaseWin[0].Span()/time.Second))
}

// Register grows reg's /metrics exposition with the recorder's
// windowed series (qtls_phase_ns_<sfx>, qtls_op_ns_<sfx>, the
// shed/fault/deadline rates and the flight meta counters). Existing
// series names are untouched. Register is idempotent per recorder.
func (r *Recorder) Register(reg *metrics.Registry) {
	if r == nil || reg == nil || !r.registered.CompareAndSwap(false, true) {
		return
	}
	reg.AddExposition(r.writeProm)
}

// writeProm renders the windowed series in Prometheus text format.
func (r *Recorder) writeProm(w io.Writer) error {
	nowNs := r.now()
	sfx := r.suffix()

	phaseFam := "qtls_phase_ns_" + sfx
	if err := writeSummaryFamily(w, phaseFam,
		fmt.Sprintf("Sliding-window (%s) offload-phase latency summary in nanoseconds.", sfx),
		func(emit func(label string, s WindowSnapshot)) {
			for p := trace.Phase(0); p < trace.NumPhases; p++ {
				emit(`phase="`+p.String()+`"`, r.phaseWin[p].Snapshot(nowNs))
			}
		}); err != nil {
		return err
	}

	opFam := "qtls_op_ns_" + sfx
	if err := writeSummaryFamily(w, opFam,
		fmt.Sprintf("Sliding-window (%s) op-class latency summary in nanoseconds.", sfx),
		func(emit func(label string, s WindowSnapshot)) {
			for i, n := range classNames {
				emit(`class="`+n+`"`, r.classWin[i].Snapshot(nowNs))
			}
		}); err != nil {
		return err
	}

	for _, cw := range []struct {
		name string
		help string
		win  *Window
	}{
		{"qtls_shed_" + sfx, "Admission-control rejections over the sliding window.", r.shedWin},
		{"qtls_fault_" + sfx, "Injected faults over the sliding window.", r.faultWin},
		{"qtls_deadline_" + sfx, "Connection-deadline expiries over the sliding window.", r.deadlineWin},
	} {
		s := cw.win.Snapshot(nowNs)
		if _, err := fmt.Fprintf(w,
			"# HELP %[1]s_rate %[2]s\n# TYPE %[1]s_rate gauge\n%[1]s_rate %[3]g\n# TYPE %[1]s_count gauge\n%[1]s_count %[4]d\n",
			cw.name, cw.help, s.Rate, s.Count); err != nil {
			return err
		}
	}

	var journaled int64
	for i := range r.journals {
		if j := r.journals[i].Load(); j != nil {
			journaled += int64(j.cursor.Load())
		}
	}
	_, err := fmt.Fprintf(w,
		"# HELP qtls_flight_events_total Events journaled by the flight recorder (including overwritten ones).\n"+
			"# TYPE qtls_flight_events_total counter\nqtls_flight_events_total %d\n"+
			"# HELP qtls_flight_dumps_total Flight-recorder dump triggers fired.\n"+
			"# TYPE qtls_flight_dumps_total counter\nqtls_flight_dumps_total %d\n",
		journaled, r.dumps.Load())
	return err
}

// writeSummaryFamily renders one windowed summary family: quantile
// lines plus _count, _sum, and companion _max/_rate gauge families.
func writeSummaryFamily(w io.Writer, fam, help string, each func(emit func(label string, s WindowSnapshot))) error {
	var err error
	emitf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	emitf("# HELP %s %s\n# TYPE %s summary\n", fam, help, fam)
	type row struct {
		label string
		s     WindowSnapshot
	}
	var rows []row
	each(func(label string, s WindowSnapshot) { rows = append(rows, row{label, s}) })
	for _, r := range rows {
		emitf("%s{%s,quantile=\"0.5\"} %g\n", fam, r.label, r.s.P50)
		emitf("%s{%s,quantile=\"0.95\"} %g\n", fam, r.label, r.s.P95)
		emitf("%s{%s,quantile=\"0.99\"} %g\n", fam, r.label, r.s.P99)
		emitf("%s_sum{%s} %g\n", fam, r.label, r.s.Mean*float64(r.s.Count))
		emitf("%s_count{%s} %d\n", fam, r.label, r.s.Count)
	}
	emitf("# TYPE %s_max gauge\n", fam)
	for _, r := range rows {
		v := r.s.Max
		if r.s.Count == 0 {
			v = 0
		}
		emitf("%s_max{%s} %g\n", fam, r.label, v)
	}
	emitf("# TYPE %s_rate gauge\n", fam)
	for _, r := range rows {
		emitf("%s_rate{%s} %g\n", fam, r.label, r.s.Rate)
	}
	return err
}
