package flight

import (
	"sync"
	"testing"
	"time"

	"qtls/internal/trace"
)

// Concurrent writers on their own journals plus readers merging and
// dumping them: exercised under -race; torn slots must be skipped, not
// corrupted.
func TestFlightConcurrentNoteAndSnapshot(t *testing.T) {
	r, _ := newTestRecorder(Config{JournalSize: 64})
	const workers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		j := r.Journal(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				j.Note(KindShed, uint8(i%2), trace.OpNone, 0, int64(i))
			}
		}()
	}
	for i := 0; i < 50; i++ {
		for _, e := range r.Events(0) {
			if e.Kind != KindShed || int(e.Worker) >= workers || e.Code > 1 {
				t.Errorf("corrupt event read: %+v", e)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// The disabled-path cost the CI bench guard enforces: one branch + one
// atomic load, no allocations.
func BenchmarkNoteDisabled(b *testing.B) {
	r := New(Config{})
	j := r.Journal(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j.Note(KindShed, ShedAccept, trace.OpNone, 0, int64(i))
	}
}

func BenchmarkNoteEnabled(b *testing.B) {
	r := New(Config{})
	r.SetEnabled(true)
	j := r.Journal(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j.Note(KindShed, ShedAccept, trace.OpNone, 0, int64(i))
	}
}

// The span hook with flight disabled (the always-wired configuration)
// must stay free: one atomic load inside the hook.
func BenchmarkSpanHookDisabled(b *testing.B) {
	r := New(Config{})
	tr := trace.NewRecorder(4096)
	tr.SetEnabled(true)
	r.AttachTrace(tr)
	buf := tr.Buffer(0)
	now := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Record(trace.PhaseRetrieve, trace.Op(0), trace.TagNone, int64(i), now, time.Microsecond)
	}
}

func BenchmarkSpanHookEnabled(b *testing.B) {
	r := New(Config{})
	r.SetEnabled(true)
	tr := trace.NewRecorder(4096)
	tr.SetEnabled(true)
	r.AttachTrace(tr)
	buf := tr.Buffer(0)
	now := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// 5 ms spans take the full path: windows + journal.
		buf.Record(trace.PhaseRetrieve, trace.Op(0), trace.TagNone, int64(i), now, 5*time.Millisecond)
	}
}

func BenchmarkWindowObserve(b *testing.B) {
	w := NewWindow(12, 5*time.Second)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Observe(float64(i%1000+1), int64(i)*int64(time.Millisecond))
	}
}
