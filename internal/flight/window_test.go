package flight

import (
	"math"
	"testing"
	"time"
)

func TestWindowObserveAndSnapshot(t *testing.T) {
	w := NewWindow(4, time.Second)
	base := int64(100 * time.Second)
	for i := 0; i < 100; i++ {
		w.Observe(1000, base+int64(i)*int64(10*time.Millisecond))
	}
	s := w.Snapshot(base + int64(time.Second))
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.Min != 1000 || s.Max != 1000 || s.Mean != 1000 {
		t.Fatalf("min/mean/max = %v/%v/%v, want 1000", s.Min, s.Mean, s.Max)
	}
	// Quantiles clamp into [min, max], so a constant stream reports the
	// constant exactly despite the log-bucket approximation.
	if s.P50 != 1000 || s.P95 != 1000 || s.P99 != 1000 {
		t.Fatalf("quantiles = %v/%v/%v, want 1000", s.P50, s.P95, s.P99)
	}
	if s.Rate < 50 || s.Rate > 150 {
		t.Fatalf("rate = %v, want ~100/s", s.Rate)
	}
}

func TestWindowEmpty(t *testing.T) {
	w := NewWindow(4, time.Second)
	if s := w.Snapshot(int64(time.Hour)); s.Count != 0 || s.P99 != 0 || s.Max != 0 || s.Rate != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
}

// Bucket rotation: observations older than the window must fall out as
// the injected clock advances, bucket by bucket.
func TestWindowBucketRotation(t *testing.T) {
	w := NewWindow(4, time.Second) // 4 s window
	base := int64(50 * time.Second)
	w.Observe(100, base)                    // bucket epoch 50
	w.Observe(200, base+int64(time.Second)) // epoch 51

	if s := w.Snapshot(base + int64(time.Second)); s.Count != 2 {
		t.Fatalf("both buckets live: count = %d, want 2", s.Count)
	}
	// At t=54s the window is [51, 54]: epoch 50 must have rotated out.
	if s := w.Snapshot(base + 4*int64(time.Second)); s.Count != 1 || s.Min != 200 {
		t.Fatalf("after one rotation: count=%d min=%v, want 1/200", s.Count, s.Min)
	}
	// At t=55s everything is stale.
	if s := w.Snapshot(base + 5*int64(time.Second)); s.Count != 0 {
		t.Fatalf("after full rotation: count = %d, want 0", s.Count)
	}
	// A write into a recycled ring slot must reset the stale bucket, not
	// merge with it.
	w.Observe(300, base+4*int64(time.Second)) // epoch 54, same slot as 50
	if s := w.Snapshot(base + 4*int64(time.Second)); s.Count != 2 || s.Min != 200 || s.Max != 300 {
		t.Fatalf("recycled bucket: %+v", s)
	}
}

// The acceptance property: a latency step is visible in the windowed
// p99 within one bucket rotation, while a lifetime histogram would
// still be dominated by the old regime.
func TestWindowLatencyStepDetectedWithinOneBucket(t *testing.T) {
	w := NewWindow(12, 5*time.Second) // the default 60 s window
	base := int64(1000 * time.Second)
	healthy := float64(100 * time.Microsecond)
	slow := float64(10 * time.Millisecond)

	// 55 s of healthy traffic, 100 observations per bucket.
	now := base
	for b := 0; b < 11; b++ {
		for i := 0; i < 100; i++ {
			w.Observe(healthy, now)
			now += int64(50 * time.Millisecond)
		}
	}
	before := w.Snapshot(now)
	if before.P99 > 2*healthy {
		t.Fatalf("healthy p99 = %v, want ~%v", before.P99, healthy)
	}

	// The step: one bucket's worth of slow observations.
	stepStart := now
	for i := 0; i < 100; i++ {
		w.Observe(slow, now)
		now += int64(50 * time.Millisecond)
	}
	after := w.Snapshot(now)
	if now-stepStart > int64(5*time.Second)+int64(50*time.Millisecond) {
		t.Fatalf("step spanned %v, exceeds one bucket", time.Duration(now-stepStart))
	}
	if after.P99 < slow/2 {
		t.Fatalf("windowed p99 = %v after step, want >= %v (did not react within one bucket)",
			time.Duration(int64(after.P99)), time.Duration(int64(slow/2)))
	}
	if after.Max != slow {
		t.Fatalf("windowed max = %v, want %v", after.Max, slow)
	}
}

func TestValueBucketMonotone(t *testing.T) {
	prev := -1
	for _, v := range []float64{0, 1, 2, 3, 4, 7, 8, 1000, 1e6, 1e9, 1e12, 1e15} {
		b := valueBucket(v)
		if b < prev {
			t.Fatalf("valueBucket not monotone at %v: %d < %d", v, b, prev)
		}
		if b < 0 || b >= numValueBuckets {
			t.Fatalf("valueBucket(%v) = %d out of range", v, b)
		}
		prev = b
	}
	// The midpoint of a value's bucket is within one quarter-octave.
	for _, v := range []float64{100, 1e5, 3e6, 7e8} {
		mid := bucketMid(valueBucket(v))
		if r := mid / v; r < 0.8 || r > 1.25 {
			t.Fatalf("bucketMid(valueBucket(%v)) = %v, ratio %v out of quarter-octave", v, mid, r)
		}
	}
}

func TestWindowQuantileSpread(t *testing.T) {
	w := NewWindow(12, 5*time.Second)
	base := int64(10 * time.Second)
	// 99 fast + 1 slow: p50 fast, p99 picks up the tail once rank
	// reaches it.
	for i := 0; i < 99; i++ {
		w.Observe(1e5, base)
	}
	w.Observe(1e8, base)
	s := w.Snapshot(base)
	if s.P50 > 2e5 {
		t.Fatalf("p50 = %v, want ~1e5", s.P50)
	}
	if s.P99 > 2e5 {
		t.Fatalf("p99 = %v should still be fast at 1%% tail", s.P99)
	}
	if math.Abs(s.Max-1e8) > 1 {
		t.Fatalf("max = %v, want 1e8", s.Max)
	}
	// Push the tail past 1%: p99 must move to the slow mode.
	for i := 0; i < 4; i++ {
		w.Observe(1e8, base)
	}
	if s := w.Snapshot(base); s.P99 < 5e7 {
		t.Fatalf("p99 = %v after 5%% tail, want ~1e8", s.P99)
	}
}
