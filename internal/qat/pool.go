package qat

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
)

// ErrNoDevice is returned (as a sentinel for Pick/RouteConn's -1) when
// every pool device is quarantined: there is nowhere to route offload
// work, and callers must shed or take the software path instead of
// queueing against a corpse.
var ErrNoDevice = errors.New("qat: no routable device (all quarantined)")

// Pool owns N identically-specified Devices and hands out crypto
// instances with per-device health and pressure views. It is the
// placement layer's view of the hardware: internal/offload decides which
// device set an op class should land on, the engine routes individual
// ops, and the Pool answers "how loaded is device k right now" and "which
// device should take this next allocation".
//
// Instances must be allocated through the Pool (AllocInstance) for the
// pressure views to see them; instances allocated directly on a Device
// are invisible to Health/Pressure.
type Pool struct {
	devs []*Device

	// lifecycle, when set, filters quarantined devices out of Pick and
	// RouteConn. Atomic so the hot paths read it without the pool lock.
	lifecycle atomic.Pointer[Lifecycle]

	mu    sync.Mutex
	insts [][]*Instance // pool-allocated instances, indexed by device
}

// NewPool creates n devices sharing one spec and starts their engines.
// n <= 0 is treated as 1. Device IDs are their pool indices.
func NewPool(n int, spec DeviceSpec) *Pool {
	if n <= 0 {
		n = 1
	}
	p := &Pool{devs: make([]*Device, n), insts: make([][]*Instance, n)}
	for i := range p.devs {
		d := NewDevice(spec)
		d.id = i
		p.devs[i] = d
	}
	return p
}

// PoolOf wraps already-constructed devices into a pool without starting
// new ones — the adapter that lets legacy single-device callers (and
// tests that need per-device specs, e.g. one faulted and one clean) use
// the placement layer. Device IDs are rewritten to their pool indices.
func PoolOf(devs ...*Device) *Pool {
	p := &Pool{devs: devs, insts: make([][]*Instance, len(devs))}
	for i, d := range devs {
		d.id = i
	}
	return p
}

// Size returns the number of devices in the pool.
func (p *Pool) Size() int { return len(p.devs) }

// Device returns device i.
func (p *Pool) Device(i int) *Device { return p.devs[i] }

// Devices returns the pool's devices in index order. The slice is shared;
// callers must not mutate it.
func (p *Pool) Devices() []*Device { return p.devs }

// AllocInstance allocates a crypto instance on device dev and registers
// it with the pool's pressure accounting. Errors carry the device index
// (see Device.AllocInstance).
func (p *Pool) AllocInstance(dev int) (*Instance, error) {
	inst, err := p.devs[dev].AllocInstance()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.insts[dev] = append(p.insts[dev], inst)
	p.mu.Unlock()
	return inst, nil
}

// setLifecycle registers the lifecycle manager (called by NewLifecycle).
func (p *Pool) setLifecycle(lc *Lifecycle) { p.lifecycle.Store(lc) }

// Lifecycle returns the pool's lifecycle manager, or nil when none is
// attached (all devices then count as routable).
func (p *Pool) Lifecycle() *Lifecycle { return p.lifecycle.Load() }

// routable reports whether lifecycle state permits routing to device i.
func (p *Pool) routable(i int) bool {
	lc := p.lifecycle.Load()
	return lc == nil || lc.Routable(i)
}

// reclaimDevice reclaims leaked ring slots on every pool-allocated
// instance of device dev — part of the quarantine drain, after Reset has
// failed the in-flight work.
func (p *Pool) reclaimDevice(dev int) {
	p.mu.Lock()
	insts := p.insts[dev]
	p.mu.Unlock()
	for _, inst := range insts {
		inst.ReclaimLeaked()
	}
}

// deviceInflight sums submitted-but-unpolled requests across device dev's
// pool-allocated instances (the wedge watchdog's numerator).
func (p *Pool) deviceInflight(dev int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	var n int
	for _, inst := range p.insts[dev] {
		n += inst.Inflight()
	}
	return n
}

// deviceDequeued sums completion counters across device dev's
// pool-allocated instances (the wedge watchdog's progress signal).
func (p *Pool) deviceDequeued(dev int) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var n int64
	for _, inst := range p.insts[dev] {
		n += inst.Stats().Dequeued
	}
	return n
}

// Close shuts every device down.
func (p *Pool) Close() {
	for _, d := range p.devs {
		d.Close()
	}
}

// DeviceHealth is a point-in-time pressure view of one pool device,
// aggregated over the instances allocated through the pool.
type DeviceHealth struct {
	// Device is the device index.
	Device int
	// Instances is how many instances the pool has allocated on it.
	Instances int
	// Inflight is the total submitted-but-unpolled requests across them.
	Inflight int
	// Leaked is the total ring slots held by stalled requests.
	Leaked int
	// RingCapacity is the summed ring capacity of those instances.
	RingCapacity int
	// Resets is the total endpoint reset count on the device.
	Resets int64
	// State is the device's lifecycle state (DevHealthy when no lifecycle
	// manager is attached).
	State DeviceState
}

// Pressure is Inflight/RingCapacity, or 0 for a device with no
// pool-allocated capacity.
func (h DeviceHealth) Pressure() float64 {
	if h.RingCapacity == 0 {
		return 0
	}
	return float64(h.Inflight) / float64(h.RingCapacity)
}

// Health returns a per-device pressure snapshot, indexed by device.
func (p *Pool) Health() []DeviceHealth {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]DeviceHealth, len(p.devs))
	for i, d := range p.devs {
		h := DeviceHealth{Device: i, Instances: len(p.insts[i])}
		for _, inst := range p.insts[i] {
			h.Inflight += inst.Inflight()
			h.Leaked += inst.Leaked()
			h.RingCapacity += inst.Cap()
		}
		for _, r := range d.Resets() {
			h.Resets += r
		}
		if lc := p.lifecycle.Load(); lc != nil {
			h.State = lc.State(i)
		}
		out[i] = h
	}
	return out
}

// Pressure returns device dev's inflight/capacity ratio (0 when the pool
// has allocated no capacity on it).
func (p *Pool) Pressure(dev int) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pressureLocked(dev)
}

func (p *Pool) pressureLocked(dev int) float64 {
	var inflight, capa int
	for _, inst := range p.insts[dev] {
		inflight += inst.Inflight()
		capa += inst.Cap()
	}
	if capa == 0 {
		return 0
	}
	return float64(inflight) / float64(capa)
}

// TotalPressure returns pool-wide inflight and ring capacity across every
// pool-allocated instance — the denominator admission control should use
// when work is sharded across devices instead of pinned to one.
func (p *Pool) TotalPressure() (inflight, capacity int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.devs {
		for _, inst := range p.insts[i] {
			inflight += inst.Inflight()
			capacity += inst.Cap()
		}
	}
	return inflight, capacity
}

// Pick routes one unit of work: it returns the least-pressure routable
// device among preferred, failing over to the least-pressure routable
// device pool-wide when every preferred device is saturated (pressure
// >= 1). An empty preferred set scans the whole pool. Quarantined
// devices are never picked; when every device is quarantined Pick
// returns -1 (see ErrNoDevice) and the caller must shed or fall back to
// software. This is the hot-path primitive the class-shard placement
// builds on, so it must stay cheap (BenchmarkPoolRoute guards it).
func (p *Pool) Pick(preferred []int) int {
	lc := p.lifecycle.Load()
	p.mu.Lock()
	defer p.mu.Unlock()
	best, bestP := -1, math.Inf(1)
	for _, i := range preferred {
		if i < 0 || i >= len(p.devs) {
			continue
		}
		if lc != nil && !lc.Routable(i) {
			continue
		}
		if pr := p.pressureLocked(i); pr < bestP {
			best, bestP = i, pr
		}
	}
	if best >= 0 && bestP < 1 {
		return best
	}
	for i := range p.devs {
		if lc != nil && !lc.Routable(i) {
			continue
		}
		if pr := p.pressureLocked(i); pr < bestP {
			best, bestP = i, pr
		}
	}
	if best < 0 && lc == nil {
		best = 0
	}
	return best
}

// RouteConn maps a connection hash to a device index (the conn-hash
// placement mode). When the hashed device is quarantined the hash walks
// forward to the next routable device, so a connection's home moves
// deterministically under quarantine and moves back once the device
// recovers. Returns -1 when every device is quarantined (see ErrNoDevice).
func (p *Pool) RouteConn(hash uint64) int {
	n := uint64(len(p.devs))
	home := int(hash % n)
	lc := p.lifecycle.Load()
	if lc == nil {
		return home
	}
	for i := 0; i < len(p.devs); i++ {
		dev := (home + i) % len(p.devs)
		if lc.Routable(dev) {
			return dev
		}
	}
	return -1
}
