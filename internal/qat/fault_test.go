package qat

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"qtls/internal/fault"
)

func faultyDevice(t *testing.T, inj *fault.Injector, spec DeviceSpec) (*Device, *Instance) {
	t.Helper()
	spec.Injector = inj
	dev := NewDevice(spec)
	t.Cleanup(dev.Close)
	inst, err := dev.AllocInstance()
	if err != nil {
		t.Fatal(err)
	}
	return dev, inst
}

// submitOne submits a request returning its bytes result via ch.
func submitOne(t *testing.T, inst *Instance, result []byte) chan Response {
	t.Helper()
	ch := make(chan Response, 1)
	req := Request{
		Op:       OpRSA,
		Work:     func() (any, error) { return result, nil },
		Callback: func(r Response) { ch <- r },
	}
	if err := inst.Submit(req); err != nil {
		t.Fatalf("submit: %v", err)
	}
	return ch
}

func pollUntil(t *testing.T, inst *Instance, ch chan Response, timeout time.Duration) (Response, bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		inst.Poll(0)
		select {
		case r := <-ch:
			return r, true
		default:
		}
		time.Sleep(100 * time.Microsecond)
	}
	return Response{}, false
}

// A stalled request never produces a response; its ring slot leaks until
// reclaimed.
func TestStallLeaksSlotAndReclaim(t *testing.T) {
	inj := fault.NewInjector(1, fault.Rule{Kind: fault.Stall, Endpoint: fault.AnyEndpoint, Op: fault.AnyOp, P: 1, Limit: 1})
	_, inst := faultyDevice(t, inj, DeviceSpec{Endpoints: 1, EnginesPerEndpoint: 1, RingCapacity: 4})
	ch := submitOne(t, inst, []byte("x"))
	if _, ok := pollUntil(t, inst, ch, 50*time.Millisecond); ok {
		t.Fatal("stalled request produced a response")
	}
	// The leak is visible once the engine consumed the request.
	deadline := time.Now().Add(2 * time.Second)
	for inst.Leaked() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leak never recorded")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if inst.Inflight() != 1 {
		t.Fatalf("inflight = %d", inst.Inflight())
	}
	if n := inst.ReclaimLeaked(); n != 1 {
		t.Fatalf("reclaimed %d", n)
	}
	if inst.Inflight() != 0 || inst.Leaked() != 0 {
		t.Fatalf("after reclaim: inflight=%d leaked=%d", inst.Inflight(), inst.Leaked())
	}
	// The device still works for subsequent requests (Limit: 1).
	ch2 := submitOne(t, inst, []byte("y"))
	if _, ok := pollUntil(t, inst, ch2, 2*time.Second); !ok {
		t.Fatal("healthy follow-up request did not complete")
	}
}

// A dropped response frees the ring slot but never reaches Poll.
func TestDropFreesSlotSilently(t *testing.T) {
	inj := fault.NewInjector(1, fault.Rule{Kind: fault.Drop, Endpoint: fault.AnyEndpoint, Op: fault.AnyOp, P: 1, Limit: 1})
	_, inst := faultyDevice(t, inj, DeviceSpec{Endpoints: 1, EnginesPerEndpoint: 1})
	ch := submitOne(t, inst, []byte("x"))
	if _, ok := pollUntil(t, inst, ch, 50*time.Millisecond); ok {
		t.Fatal("dropped request produced a response")
	}
	deadline := time.Now().Add(2 * time.Second)
	for inst.Inflight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("slot not freed: inflight=%d", inst.Inflight())
		}
		time.Sleep(100 * time.Microsecond)
	}
	if inst.Leaked() != 0 {
		t.Fatalf("drop recorded a leak: %d", inst.Leaked())
	}
}

// Corruption flips bytes: the response arrives but carries wrong content.
func TestCorruptDeliversWrongBytes(t *testing.T) {
	inj := fault.NewInjector(1, fault.Rule{Kind: fault.Corrupt, Endpoint: fault.AnyEndpoint, Op: fault.AnyOp, P: 1})
	_, inst := faultyDevice(t, inj, DeviceSpec{Endpoints: 1, EnginesPerEndpoint: 1})
	want := []byte("signature-bytes")
	ch := submitOne(t, inst, want)
	r, ok := pollUntil(t, inst, ch, 2*time.Second)
	if !ok {
		t.Fatal("no response")
	}
	if r.Err != nil {
		t.Fatalf("corruption must be silent, got err %v", r.Err)
	}
	got := r.Result.([]byte)
	if bytes.Equal(got, want) {
		t.Fatal("response not corrupted")
	}
	if len(got) != len(want) {
		t.Fatalf("length changed: %d != %d", len(got), len(want))
	}
}

// Injected latency delays the response.
func TestLatencyDelaysResponse(t *testing.T) {
	const extra = 20 * time.Millisecond
	inj := fault.NewInjector(1, fault.Rule{Kind: fault.Latency, Endpoint: fault.AnyEndpoint, Op: fault.AnyOp, P: 1, Latency: extra})
	_, inst := faultyDevice(t, inj, DeviceSpec{Endpoints: 1, EnginesPerEndpoint: 1})
	start := time.Now()
	ch := submitOne(t, inst, []byte("x"))
	if _, ok := pollUntil(t, inst, ch, 5*time.Second); !ok {
		t.Fatal("no response")
	}
	if el := time.Since(start); el < extra {
		t.Fatalf("response after %v, want >= %v", el, extra)
	}
}

// A ring-full storm rejects submissions even with free slots.
func TestRingFullStorm(t *testing.T) {
	inj := fault.NewInjector(1, fault.Rule{Kind: fault.RingFull, Endpoint: fault.AnyEndpoint, Op: fault.AnyOp, P: 1, Limit: 3})
	_, inst := faultyDevice(t, inj, DeviceSpec{Endpoints: 1, EnginesPerEndpoint: 1})
	req := Request{Op: OpPRF, Work: func() (any, error) { return nil, nil }}
	for i := 0; i < 3; i++ {
		if err := inst.Submit(req); !errors.Is(err, ErrRingFull) {
			t.Fatalf("storm submit %d: %v", i, err)
		}
	}
	// Storm over (Limit: 3): submissions flow again.
	if err := inst.Submit(req); err != nil {
		t.Fatalf("post-storm submit: %v", err)
	}
	if inst.Inflight() != 1 {
		t.Fatalf("inflight = %d", inst.Inflight())
	}
}

// An endpoint reset fails the triggering submission and every request in
// flight on the endpoint with ErrDeviceReset; the endpoint then recovers.
func TestEndpointReset(t *testing.T) {
	inj := fault.NewInjector(1, fault.Rule{Kind: fault.Reset, Endpoint: fault.AnyEndpoint, Op: fault.AnyOp, P: 1, After: 8, Limit: 1})
	dev, inst := faultyDevice(t, inj, DeviceSpec{
		Endpoints: 1, EnginesPerEndpoint: 1, RingCapacity: 64,
		// Slow service keeps requests on the rings when the reset lands.
		ServiceTime: map[OpType]time.Duration{OpRSA: 5 * time.Millisecond},
	})
	type result struct{ r Response }
	ch := make(chan result, 64)
	req := Request{
		Op:       OpRSA,
		Work:     func() (any, error) { return []byte("ok"), nil },
		Callback: func(r Response) { ch <- result{r} },
	}
	// 8 clean submissions queue up; the 9th trips the reset rule.
	for i := 0; i < 8; i++ {
		if err := inst.Submit(req); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := inst.Submit(req); !errors.Is(err, ErrDeviceReset) {
		t.Fatalf("reset submit err = %v", err)
	}
	if dev.Resets()[0] != 1 {
		t.Fatalf("resets = %v", dev.Resets())
	}
	// Drain: all 8 get responses (some executed before the reset; the
	// rest fail with ErrDeviceReset), and the ring fully drains.
	deadline := time.Now().Add(10 * time.Second)
	got, resetErrs := 0, 0
	for got < 8 {
		inst.Poll(0)
		select {
		case res := <-ch:
			got++
			if errors.Is(res.r.Err, ErrDeviceReset) {
				resetErrs++
			} else if res.r.Err != nil {
				t.Fatalf("unexpected err: %v", res.r.Err)
			}
		default:
			if time.Now().After(deadline) {
				t.Fatalf("drained %d/8", got)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	if resetErrs == 0 {
		t.Fatal("no in-flight request observed the reset")
	}
	if inst.Inflight() != 0 {
		t.Fatalf("inflight = %d", inst.Inflight())
	}
	// Post-reset the endpoint serves normally.
	ch2 := submitOne(t, inst, []byte("post"))
	if r, ok := pollUntil(t, inst, ch2, 5*time.Second); !ok || r.Err != nil {
		t.Fatalf("post-reset request: ok=%v err=%v", ok, r.Err)
	}
}

// With a nil injector the fault paths are never taken: counters balance
// and no leaks appear (the zero-overhead default of the subsystem).
func TestNilInjectorUnchangedBehavior(t *testing.T) {
	dev := NewDevice(DeviceSpec{Endpoints: 1, EnginesPerEndpoint: 2})
	defer dev.Close()
	inst, _ := dev.AllocInstance()
	done := make(chan struct{}, 32)
	for i := 0; i < 32; i++ {
		req := Request{Op: OpPRF, Work: func() (any, error) { return 1, nil },
			Callback: func(Response) { done <- struct{}{} }}
		for {
			if err := inst.Submit(req); err == nil {
				break
			} else if !errors.Is(err, ErrRingFull) {
				t.Fatal(err)
			}
			inst.Poll(0)
		}
	}
	got := 0
	deadline := time.Now().Add(10 * time.Second)
	for got < 32 {
		inst.Poll(0)
		for {
			select {
			case <-done:
				got++
				continue
			default:
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("completed %d/32", got)
		}
	}
	if inst.Leaked() != 0 || inst.Inflight() != 0 {
		t.Fatalf("leaked=%d inflight=%d", inst.Leaked(), inst.Inflight())
	}
	c := dev.Counters()[0]
	if c.TotalRequests() != 32 || c.TotalResponses() != 32 {
		t.Fatalf("counters = %+v", c)
	}
	if dev.Resets()[0] != 0 {
		t.Fatalf("resets = %v", dev.Resets())
	}
}
