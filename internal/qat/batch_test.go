package qat

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"qtls/internal/fault"
)

func batchOf(n int, op OpType, done *atomic.Int64) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		i := i
		reqs[i] = Request{
			Op:   op,
			Work: func() (any, error) { return i, nil },
			Callback: func(r Response) {
				if done != nil {
					done.Add(1)
				}
			},
		}
	}
	return reqs
}

func TestSubmitBatchRoundTrip(t *testing.T) {
	d := newTestDevice(t, DeviceSpec{RingCapacity: 64})
	inst, err := d.AllocInstance()
	if err != nil {
		t.Fatal(err)
	}
	var sum atomic.Int64
	reqs := make([]Request, 10)
	for i := range reqs {
		i := i
		reqs[i] = Request{
			Op:   OpRSA,
			Work: func() (any, error) { return i * 2, nil },
			Callback: func(r Response) {
				if r.Err != nil {
					t.Errorf("unexpected err: %v", r.Err)
				}
				sum.Add(int64(r.Result.(int)))
			},
		}
	}
	n, err := inst.SubmitBatch(reqs)
	if err != nil || n != len(reqs) {
		t.Fatalf("SubmitBatch = (%d, %v), want (%d, nil)", n, err, len(reqs))
	}
	waitInflightZero(t, inst, 5*time.Second)
	if want := int64(9 * 10); sum.Load() != want { // 2*sum(0..9)
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
	st := inst.Stats()
	if st.Submits != 10 || st.SubmitBatches != 1 || st.BatchSubmitted != 10 || st.MaxSubmitBatch != 10 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Doorbells != 1 {
		t.Fatalf("Doorbells = %d, want 1 (one ring-lock acquisition per batch)", st.Doorbells)
	}
	cs := d.Counters()
	if cs[inst.Endpoint()].Requests[OpRSA] != 10 {
		t.Fatalf("fw counters = %+v", cs[inst.Endpoint()])
	}
}

func TestSubmitBatchEmpty(t *testing.T) {
	d := newTestDevice(t, DeviceSpec{})
	inst, _ := d.AllocInstance()
	if n, err := inst.SubmitBatch(nil); n != 0 || err != nil {
		t.Fatalf("SubmitBatch(nil) = (%d, %v)", n, err)
	}
	if st := inst.Stats(); st != (InstanceStats{}) {
		t.Fatalf("empty batch touched stats: %+v", st)
	}
}

func TestSubmitBatchPartialAcceptance(t *testing.T) {
	block := make(chan struct{})
	d := newTestDevice(t, DeviceSpec{
		Endpoints:          1,
		EnginesPerEndpoint: 1,
		RingCapacity:       4,
	})
	inst, _ := d.AllocInstance()
	var done atomic.Int64
	reqs := make([]Request, 7)
	for i := range reqs {
		reqs[i] = Request{
			Op:       OpRSA,
			Work:     func() (any, error) { <-block; return nil, nil },
			Callback: func(Response) { done.Add(1) },
		}
	}
	n, err := inst.SubmitBatch(reqs)
	if n != 4 || !errors.Is(err, ErrRingFull) {
		t.Fatalf("SubmitBatch = (%d, %v), want (4, ErrRingFull)", n, err)
	}
	// The accepted prefix occupies exactly n ring slots; the tail carries
	// no ring state.
	if got := inst.Inflight(); got != 4 {
		t.Fatalf("Inflight = %d, want 4", got)
	}
	st := inst.Stats()
	if st.Submits != 4 || st.RingFull != 1 || st.SubmitBatches != 1 || st.BatchSubmitted != 4 {
		t.Fatalf("stats = %+v (partial batch must count RingFull once)", st)
	}
	// Retrying the unaccepted tail after a drain submits exactly the
	// remainder — no request is lost or duplicated.
	close(block)
	waitInflightZero(t, inst, 5*time.Second)
	n2, err := inst.SubmitBatch(reqs[n:])
	if n2 != 3 || err != nil {
		t.Fatalf("retry SubmitBatch = (%d, %v), want (3, nil)", n2, err)
	}
	waitInflightZero(t, inst, 5*time.Second)
	if done.Load() != 7 {
		t.Fatalf("completed %d, want 7", done.Load())
	}
	st = inst.Stats()
	if st.Submits != 7 || st.Doorbells != 2 || st.MaxSubmitBatch != 4 {
		t.Fatalf("final stats = %+v", st)
	}
}

func TestSubmitBatchFullRingRejectsAll(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	d := newTestDevice(t, DeviceSpec{Endpoints: 1, EnginesPerEndpoint: 1, RingCapacity: 2})
	inst, _ := d.AllocInstance()
	for i := 0; i < 2; i++ {
		if err := inst.Submit(Request{Op: OpRSA, Work: func() (any, error) { <-block; return nil, nil }}); err != nil {
			t.Fatal(err)
		}
	}
	n, err := inst.SubmitBatch(batchOf(3, OpRSA, nil))
	if n != 0 || !errors.Is(err, ErrRingFull) {
		t.Fatalf("SubmitBatch on full ring = (%d, %v), want (0, ErrRingFull)", n, err)
	}
	st := inst.Stats()
	if st.RingFull != 1 || st.SubmitBatches != 0 || st.BatchSubmitted != 0 {
		t.Fatalf("stats = %+v (zero-acceptance batch must not count as a batch)", st)
	}
}

func TestSubmitBatchInjectedRingFullMidBatch(t *testing.T) {
	// The 4th submit opportunity hits an injected ring-full storm: the
	// batch is cut to a 3-request prefix and the fault is counted once.
	inj := fault.NewInjector(1, fault.Rule{
		Kind: fault.RingFull, Endpoint: fault.AnyEndpoint, Op: fault.AnyOp,
		P: 1, After: 3, Limit: 1,
	})
	d := newTestDevice(t, DeviceSpec{RingCapacity: 64, Injector: inj})
	inst, _ := d.AllocInstance()
	var done atomic.Int64
	reqs := batchOf(8, OpECDSA, &done)
	n, err := inst.SubmitBatch(reqs)
	if n != 3 || !errors.Is(err, ErrRingFull) {
		t.Fatalf("SubmitBatch = (%d, %v), want (3, ErrRingFull)", n, err)
	}
	if got := inj.Injected(fault.RingFull); got != 1 {
		t.Fatalf("injections = %d, want 1", got)
	}
	st := inst.Stats()
	if st.Submits != 3 || st.RingFull != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The storm has passed (limit=1): the tail retries cleanly.
	n2, err := inst.SubmitBatch(reqs[n:])
	if n2 != 5 || err != nil {
		t.Fatalf("retry = (%d, %v), want (5, nil)", n2, err)
	}
	waitInflightZero(t, inst, 5*time.Second)
	if done.Load() != 8 {
		t.Fatalf("completed %d, want 8", done.Load())
	}
}

func TestSubmitBatchResetMidBatch(t *testing.T) {
	// The 3rd submit opportunity resets the endpoint. The two accepted
	// requests were on the rings at reset time, so they complete with
	// retryable ErrDeviceReset responses; the tail was never submitted.
	inj := fault.NewInjector(1, fault.Rule{
		Kind: fault.Reset, Endpoint: fault.AnyEndpoint, Op: fault.AnyOp,
		P: 1, After: 2, Limit: 1,
	})
	d := newTestDevice(t, DeviceSpec{RingCapacity: 64, Injector: inj})
	inst, _ := d.AllocInstance()
	var resetErrs, okResps atomic.Int64
	reqs := make([]Request, 6)
	for i := range reqs {
		reqs[i] = Request{
			Op:   OpRSA,
			Work: func() (any, error) { return nil, nil },
			Callback: func(r Response) {
				if errors.Is(r.Err, ErrDeviceReset) {
					resetErrs.Add(1)
				} else if r.Err == nil {
					okResps.Add(1)
				}
			},
		}
	}
	n, err := inst.SubmitBatch(reqs)
	if n != 2 || !errors.Is(err, ErrDeviceReset) {
		t.Fatalf("SubmitBatch = (%d, %v), want (2, ErrDeviceReset)", n, err)
	}
	waitInflightZero(t, inst, 5*time.Second)
	if resetErrs.Load() != 2 || okResps.Load() != 0 {
		t.Fatalf("reset errs = %d ok = %d, want 2/0 (accepted prefix fails retryably)", resetErrs.Load(), okResps.Load())
	}
	if got := d.Resets()[inst.Endpoint()]; got != 1 {
		t.Fatalf("resets = %d, want 1", got)
	}
	// After the reset, the tail resubmits and completes normally.
	n2, err := inst.SubmitBatch(reqs[n:])
	if n2 != 4 || err != nil {
		t.Fatalf("resubmit = (%d, %v), want (4, nil)", n2, err)
	}
	waitInflightZero(t, inst, 5*time.Second)
	if okResps.Load() != 4 {
		t.Fatalf("ok responses = %d, want 4", okResps.Load())
	}
}

func TestSubmitBatchDoorbellAmortization(t *testing.T) {
	// The acceptance criterion of the batched path: ring-lock acquisitions
	// (Doorbells) grow per batch, not per op, so at batch size >= 4 the
	// batched instance rings the doorbell at most 1/4 as often as the
	// per-op instance for the same work.
	const total, batch = 48, 4
	d := newTestDevice(t, DeviceSpec{RingCapacity: 64})
	perOp, _ := d.AllocInstance()
	batched, _ := d.AllocInstance()
	var done atomic.Int64
	for i := 0; i < total; i++ {
		if err := perOp.Submit(batchOf(1, OpPRF, &done)[0]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < total; i += batch {
		n, err := batched.SubmitBatch(batchOf(batch, OpPRF, &done))
		if err != nil || n != batch {
			t.Fatalf("SubmitBatch = (%d, %v)", n, err)
		}
	}
	waitInflightZero(t, perOp, 5*time.Second)
	waitInflightZero(t, batched, 5*time.Second)
	if done.Load() != 2*total {
		t.Fatalf("completed %d, want %d", done.Load(), 2*total)
	}
	ps, bs := perOp.Stats(), batched.Stats()
	if ps.Submits != total || bs.Submits != total {
		t.Fatalf("submits = %d/%d, want %d each", ps.Submits, bs.Submits, total)
	}
	if ps.Doorbells != total {
		t.Fatalf("per-op doorbells = %d, want %d", ps.Doorbells, total)
	}
	if want := int64(total / batch); bs.Doorbells != want {
		t.Fatalf("batched doorbells = %d, want %d", bs.Doorbells, want)
	}
	if bs.Doorbells*batch > ps.Doorbells {
		t.Fatalf("no amortization: batched %d vs per-op %d", bs.Doorbells, ps.Doorbells)
	}
}

func TestSubmitBatchAfterClose(t *testing.T) {
	d := NewDevice(DeviceSpec{})
	inst, _ := d.AllocInstance()
	d.Close()
	n, err := inst.SubmitBatch(batchOf(3, OpRSA, nil))
	if n != 0 || !errors.Is(err, ErrClosed) {
		t.Fatalf("SubmitBatch after close = (%d, %v), want (0, ErrClosed)", n, err)
	}
}

func TestSubmitBatchValidation(t *testing.T) {
	d := newTestDevice(t, DeviceSpec{})
	inst, _ := d.AllocInstance()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("nil work", func() {
		inst.SubmitBatch([]Request{{Op: OpRSA, Work: func() (any, error) { return nil, nil }}, {Op: OpRSA}})
	})
	mustPanic("bad op", func() {
		inst.SubmitBatch([]Request{{Op: OpType(99), Work: func() (any, error) { return nil, nil }}})
	})
	// Validation rejects the whole batch before touching the ring.
	if st := inst.Stats(); st != (InstanceStats{}) {
		t.Fatalf("failed validation touched stats: %+v", st)
	}
}

// BenchmarkSubmitBatch measures per-op submit cost at increasing batch
// sizes; the CI bench-smoke step executes it once to keep the batched path
// compiling and running.
func BenchmarkSubmitBatch(b *testing.B) {
	for _, size := range []int{1, 4, 16, 48} {
		b.Run(fmt.Sprintf("size-%d", size), func(b *testing.B) {
			d := NewDevice(DeviceSpec{RingCapacity: 256})
			defer d.Close()
			inst, err := d.AllocInstance()
			if err != nil {
				b.Fatal(err)
			}
			reqs := make([]Request, size)
			for i := range reqs {
				reqs[i] = Request{Op: OpRSA, Work: func() (any, error) { return nil, nil }}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += size {
				pending := reqs
				for len(pending) > 0 {
					n, err := inst.SubmitBatch(pending)
					pending = pending[n:]
					if err != nil {
						if !errors.Is(err, ErrRingFull) {
							b.Fatal(err)
						}
						inst.Poll(0)
					}
				}
			}
			b.StopTimer()
			for inst.Inflight() > 0 {
				inst.Poll(0)
			}
			if st := inst.Stats(); st.Submits > 0 {
				b.ReportMetric(float64(st.Doorbells)/float64(st.Submits), "doorbells/op")
			}
		})
	}
}
