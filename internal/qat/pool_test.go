package qat

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestAllocInstanceExhaustion pins the exhaustion path: the error must
// wrap ErrNoInstances, name the device index, and a device Reset must
// clear the allocation counters so re-alloc succeeds.
func TestAllocInstanceExhaustion(t *testing.T) {
	spec := DeviceSpec{Endpoints: 2, MaxInstancesPerEndpoint: 2, EnginesPerEndpoint: 1}
	p := NewPool(2, spec)
	defer p.Close()

	for dev := 0; dev < p.Size(); dev++ {
		for i := 0; i < 4; i++ {
			if _, err := p.AllocInstance(dev); err != nil {
				t.Fatalf("device %d alloc %d: %v", dev, i, err)
			}
		}
		_, err := p.AllocInstance(dev)
		if err == nil {
			t.Fatalf("device %d: alloc beyond capacity succeeded", dev)
		}
		if !errors.Is(err, ErrNoInstances) {
			t.Fatalf("device %d: exhaustion error %v does not wrap ErrNoInstances", dev, err)
		}
		want := fmt.Sprintf("device %d", dev)
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("device %d: exhaustion error %q missing %q", dev, err, want)
		}
	}

	// Reset reinitializes the rings: allocation must succeed again.
	p.Device(1).Reset()
	inst, err := p.Device(1).AllocInstance()
	if err != nil {
		t.Fatalf("post-Reset alloc: %v", err)
	}
	// The re-allocated instance must be live end-to-end.
	done := make(chan struct{})
	if err := inst.Submit(Request{Op: OpPRF, Work: func() (any, error) { return 42, nil },
		Callback: func(r Response) {
			if r.Err != nil {
				t.Errorf("post-Reset op: %v", r.Err)
			}
			close(done)
		}}); err != nil {
		t.Fatalf("post-Reset submit: %v", err)
	}
	for inst.Available() == 0 {
	}
	inst.Poll(0)
	<-done
	// Device 0 was not reset and must still be exhausted.
	if _, err := p.Device(0).AllocInstance(); !errors.Is(err, ErrNoInstances) {
		t.Fatalf("device 0: want ErrNoInstances after neighbour reset, got %v", err)
	}
}

// TestPoolHealthPressure checks the per-device and pool-wide pressure
// views that admission control and the class-shard router consume.
func TestPoolHealthPressure(t *testing.T) {
	spec := DeviceSpec{Endpoints: 1, EnginesPerEndpoint: 1, RingCapacity: 8}
	p := NewPool(2, spec)
	defer p.Close()
	i0, err := p.AllocInstance(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AllocInstance(1); err != nil {
		t.Fatal(err)
	}

	block := make(chan struct{})
	for k := 0; k < 4; k++ {
		if err := i0.Submit(Request{Op: OpRSA, Work: func() (any, error) { <-block; return nil, nil }}); err != nil {
			t.Fatalf("submit %d: %v", k, err)
		}
	}
	h := p.Health()
	if len(h) != 2 {
		t.Fatalf("health: %d devices, want 2", len(h))
	}
	if h[0].Inflight != 4 || h[0].RingCapacity != 8 {
		t.Fatalf("device 0 health = %+v, want inflight 4 cap 8", h[0])
	}
	if got := h[0].Pressure(); got != 0.5 {
		t.Fatalf("device 0 pressure = %v, want 0.5", got)
	}
	if h[1].Inflight != 0 {
		t.Fatalf("device 1 health = %+v, want idle", h[1])
	}
	inflight, capacity := p.TotalPressure()
	if inflight != 4 || capacity != 16 {
		t.Fatalf("total pressure = %d/%d, want 4/16", inflight, capacity)
	}
	close(block)
}

// TestPoolPick checks routing: least-pressure preferred device wins, and
// a fully saturated preferred set fails over pool-wide.
func TestPoolPick(t *testing.T) {
	spec := DeviceSpec{Endpoints: 1, EnginesPerEndpoint: 1, RingCapacity: 4}
	p := NewPool(3, spec)
	defer p.Close()
	insts := make([]*Instance, 3)
	for i := range insts {
		var err error
		if insts[i], err = p.AllocInstance(i); err != nil {
			t.Fatal(err)
		}
	}
	block := make(chan struct{})
	defer close(block)
	fill := func(dev, n int) {
		for k := 0; k < n; k++ {
			if err := insts[dev].Submit(Request{Op: OpRSA, Work: func() (any, error) { <-block; return nil, nil }}); err != nil {
				t.Fatalf("fill dev %d: %v", dev, err)
			}
		}
	}
	fill(0, 2)
	if got := p.Pick([]int{0, 1}); got != 1 {
		t.Fatalf("Pick({0,1}) with dev0 loaded = %d, want 1", got)
	}
	// Saturate the whole preferred set: Pick must fail over to device 2.
	fill(0, 2)
	fill(1, 4)
	if got := p.Pick([]int{0, 1}); got != 2 {
		t.Fatalf("Pick({0,1}) saturated = %d, want failover to 2", got)
	}
	// Empty preferred set scans everything.
	if got := p.Pick(nil); got != 2 {
		t.Fatalf("Pick(nil) = %d, want 2", got)
	}
}

// BenchmarkPoolRoute measures the class-shard hot-path routing primitive:
// one Pick per submitted op against a pool with allocated capacity.
func BenchmarkPoolRoute(b *testing.B) {
	spec := DeviceSpec{Endpoints: 1, EnginesPerEndpoint: 1, RingCapacity: 64}
	p := NewPool(4, spec)
	defer p.Close()
	for dev := 0; dev < p.Size(); dev++ {
		for k := 0; k < 2; k++ {
			if _, err := p.AllocInstance(dev); err != nil {
				b.Fatal(err)
			}
		}
	}
	preferred := []int{0, 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := p.Pick(preferred); d < 0 || d >= 4 {
			b.Fatalf("Pick returned %d", d)
		}
	}
}
