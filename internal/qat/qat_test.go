package qat

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newTestDevice(t *testing.T, spec DeviceSpec) *Device {
	t.Helper()
	d := NewDevice(spec)
	t.Cleanup(d.Close)
	return d
}

func waitInflightZero(t *testing.T, inst *Instance, timeout time.Duration) int {
	t.Helper()
	deadline := time.Now().Add(timeout)
	total := 0
	for inst.Inflight() > 0 {
		total += inst.Poll(0)
		if time.Now().After(deadline) {
			t.Fatalf("inflight did not drain: %d left", inst.Inflight())
		}
		time.Sleep(50 * time.Microsecond)
	}
	return total
}

func TestSubmitPollRoundTrip(t *testing.T) {
	d := newTestDevice(t, DeviceSpec{})
	inst, err := d.AllocInstance()
	if err != nil {
		t.Fatal(err)
	}
	var got atomic.Int64
	for i := 0; i < 100; i++ {
		i := i
		for {
			err := inst.Submit(Request{
				Op:   OpRSA,
				Work: func() (any, error) { return i * 2, nil },
				Callback: func(r Response) {
					if r.Err != nil {
						t.Errorf("unexpected err: %v", r.Err)
					}
					got.Add(int64(r.Result.(int)))
				},
			})
			if errors.Is(err, ErrRingFull) {
				inst.Poll(0)
				continue
			}
			if err != nil {
				t.Fatalf("Submit %d: %v", i, err)
			}
			break
		}
	}
	waitInflightZero(t, inst, 5*time.Second)
	want := int64(99 * 100) // 2*sum(0..99)
	if got.Load() != want {
		t.Fatalf("sum = %d, want %d", got.Load(), want)
	}
}

func TestWorkErrorPropagates(t *testing.T) {
	d := newTestDevice(t, DeviceSpec{})
	inst, _ := d.AllocInstance()
	sentinel := errors.New("boom")
	var seen error
	inst.Submit(Request{
		Op:       OpPRF,
		Work:     func() (any, error) { return nil, sentinel },
		Callback: func(r Response) { seen = r.Err },
	})
	waitInflightZero(t, inst, 5*time.Second)
	if !errors.Is(seen, sentinel) {
		t.Fatalf("err = %v, want sentinel", seen)
	}
}

func TestRingFull(t *testing.T) {
	block := make(chan struct{})
	d := newTestDevice(t, DeviceSpec{
		Endpoints:          1,
		EnginesPerEndpoint: 1,
		RingCapacity:       4,
	})
	inst, _ := d.AllocInstance()
	// The single engine will block on the first request; the ring admits
	// ringCap in-flight total.
	for i := 0; i < 4; i++ {
		err := inst.Submit(Request{Op: OpRSA, Work: func() (any, error) {
			<-block
			return nil, nil
		}})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	if err := inst.Submit(Request{Op: OpRSA, Work: func() (any, error) { return nil, nil }}); !errors.Is(err, ErrRingFull) {
		t.Fatalf("err = %v, want ErrRingFull", err)
	}
	close(block)
	waitInflightZero(t, inst, 5*time.Second)
	// After draining, submission succeeds again.
	if err := inst.Submit(Request{Op: OpRSA, Work: func() (any, error) { return nil, nil }}); err != nil {
		t.Fatalf("Submit after drain: %v", err)
	}
	waitInflightZero(t, inst, 5*time.Second)
}

func TestEngineParallelism(t *testing.T) {
	const engines = 4
	d := newTestDevice(t, DeviceSpec{
		Endpoints:          1,
		EnginesPerEndpoint: engines,
		RingCapacity:       64,
	})
	inst, _ := d.AllocInstance()
	var cur, peak atomic.Int64
	var mu sync.Mutex
	gate := make(chan struct{})
	for i := 0; i < engines; i++ {
		inst.Submit(Request{Op: OpECDH, Work: func() (any, error) {
			n := cur.Add(1)
			mu.Lock()
			if n > peak.Load() {
				peak.Store(n)
			}
			mu.Unlock()
			<-gate
			cur.Add(-1)
			return nil, nil
		}})
	}
	// Give engines time to pick all four up.
	deadline := time.Now().Add(2 * time.Second)
	for cur.Load() < engines && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	waitInflightZero(t, inst, 5*time.Second)
	if peak.Load() != engines {
		t.Fatalf("peak parallelism = %d, want %d", peak.Load(), engines)
	}
}

func TestConcurrencyLimitedByEngines(t *testing.T) {
	// One engine: two blocking jobs must run sequentially.
	d := newTestDevice(t, DeviceSpec{Endpoints: 1, EnginesPerEndpoint: 1, RingCapacity: 8})
	inst, _ := d.AllocInstance()
	var concurrent, maxConc atomic.Int64
	for i := 0; i < 5; i++ {
		inst.Submit(Request{Op: OpRSA, Work: func() (any, error) {
			n := concurrent.Add(1)
			for {
				old := maxConc.Load()
				if n <= old || maxConc.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			concurrent.Add(-1)
			return nil, nil
		}})
	}
	waitInflightZero(t, inst, 5*time.Second)
	if maxConc.Load() != 1 {
		t.Fatalf("max concurrency = %d, want 1", maxConc.Load())
	}
}

func TestCountersTrackOps(t *testing.T) {
	d := newTestDevice(t, DeviceSpec{Endpoints: 2})
	// Two instances land on different endpoints (round-robin).
	i1, _ := d.AllocInstance()
	i2, _ := d.AllocInstance()
	if i1.Endpoint() == i2.Endpoint() {
		t.Fatalf("instances share endpoint %d; want round-robin", i1.Endpoint())
	}
	i1.Submit(Request{Op: OpRSA, Work: func() (any, error) { return nil, nil }})
	i1.Submit(Request{Op: OpPRF, Work: func() (any, error) { return nil, nil }})
	i2.Submit(Request{Op: OpCipher, Work: func() (any, error) { return nil, nil }})
	waitInflightZero(t, i1, 5*time.Second)
	waitInflightZero(t, i2, 5*time.Second)
	cs := d.Counters()
	if cs[i1.Endpoint()].Requests[OpRSA] != 1 || cs[i1.Endpoint()].Requests[OpPRF] != 1 {
		t.Fatalf("endpoint0 counters = %+v", cs[i1.Endpoint()])
	}
	if cs[i2.Endpoint()].Requests[OpCipher] != 1 {
		t.Fatalf("endpoint1 counters = %+v", cs[i2.Endpoint()])
	}
	for _, c := range cs {
		if c.TotalRequests() != c.TotalResponses() {
			t.Fatalf("requests %d != responses %d", c.TotalRequests(), c.TotalResponses())
		}
	}
}

func TestPollMaxBatches(t *testing.T) {
	d := newTestDevice(t, DeviceSpec{})
	inst, _ := d.AllocInstance()
	for i := 0; i < 10; i++ {
		inst.Submit(Request{Op: OpPRF, Work: func() (any, error) { return nil, nil }})
	}
	// Wait for all responses to be ready.
	deadline := time.Now().Add(5 * time.Second)
	for inst.Available() < 10 {
		if time.Now().After(deadline) {
			t.Fatalf("responses not ready: %d", inst.Available())
		}
		time.Sleep(time.Millisecond)
	}
	if n := inst.Poll(3); n != 3 {
		t.Fatalf("Poll(3) = %d", n)
	}
	if n := inst.Poll(0); n != 7 {
		t.Fatalf("Poll(0) = %d, want 7", n)
	}
	if inst.Inflight() != 0 {
		t.Fatalf("Inflight = %d", inst.Inflight())
	}
}

func TestServiceTimeEnforced(t *testing.T) {
	const minT = 20 * time.Millisecond
	d := newTestDevice(t, DeviceSpec{
		Endpoints:          1,
		EnginesPerEndpoint: 1,
		ServiceTime:        map[OpType]time.Duration{OpRSA: minT},
	})
	inst, _ := d.AllocInstance()
	start := time.Now()
	inst.Submit(Request{Op: OpRSA, Work: func() (any, error) { return nil, nil }})
	waitInflightZero(t, inst, 5*time.Second)
	if el := time.Since(start); el < minT {
		t.Fatalf("service time %v < configured minimum %v", el, minT)
	}
}

func TestInstanceExhaustion(t *testing.T) {
	d := newTestDevice(t, DeviceSpec{Endpoints: 1, MaxInstancesPerEndpoint: 2})
	if _, err := d.AllocInstance(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AllocInstance(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AllocInstance(); err == nil {
		t.Fatal("expected allocation failure")
	}
}

func TestSubmitAfterClose(t *testing.T) {
	d := NewDevice(DeviceSpec{})
	inst, _ := d.AllocInstance()
	d.Close()
	d.Close() // idempotent
	if err := inst.Submit(Request{Op: OpRSA, Work: func() (any, error) { return nil, nil }}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if _, err := d.AllocInstance(); !errors.Is(err, ErrClosed) {
		t.Fatalf("alloc err = %v, want ErrClosed", err)
	}
}

func TestOnResponseHook(t *testing.T) {
	var hooked atomic.Int64
	d := NewDevice(DeviceSpec{OnResponse: func(*Instance) { hooked.Add(1) }})
	defer d.Close()
	inst, _ := d.AllocInstance()
	for i := 0; i < 5; i++ {
		inst.Submit(Request{Op: OpCipher, Work: func() (any, error) { return nil, nil }})
	}
	deadline := time.Now().Add(5 * time.Second)
	for hooked.Load() < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("hook fired %d times, want 5", hooked.Load())
		}
		time.Sleep(time.Millisecond)
	}
	inst.Poll(0)
}

func TestSubmitValidation(t *testing.T) {
	d := newTestDevice(t, DeviceSpec{})
	inst, _ := d.AllocInstance()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("nil work", func() { inst.Submit(Request{Op: OpRSA}) })
	mustPanic("bad op", func() {
		inst.Submit(Request{Op: OpType(99), Work: func() (any, error) { return nil, nil }})
	})
}

func TestOpTypeStrings(t *testing.T) {
	cases := map[OpType]string{OpRSA: "rsa", OpECDSA: "ecdsa", OpECDH: "ecdh", OpPRF: "prf", OpCipher: "cipher", OpType(42): "op(42)"}
	for op, want := range cases {
		if op.String() != want {
			t.Fatalf("String(%d) = %q, want %q", int(op), op.String(), want)
		}
	}
	if !OpRSA.Asymmetric() || !OpECDSA.Asymmetric() || !OpECDH.Asymmetric() {
		t.Fatal("asym ops misclassified")
	}
	if OpPRF.Asymmetric() || OpCipher.Asymmetric() {
		t.Fatal("sym ops misclassified")
	}
}

func TestManyConcurrentSubmitters(t *testing.T) {
	d := newTestDevice(t, DeviceSpec{Endpoints: 3, EnginesPerEndpoint: 4, RingCapacity: 256})
	var wg sync.WaitGroup
	var done atomic.Int64
	const workers = 8
	const perWorker = 200
	insts := make([]*Instance, workers)
	for w := 0; w < workers; w++ {
		inst, err := d.AllocInstance()
		if err != nil {
			t.Fatal(err)
		}
		insts[w] = inst
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(inst *Instance) {
			defer wg.Done()
			submitted := 0
			for submitted < perWorker {
				err := inst.Submit(Request{
					Op:       OpRSA,
					Work:     func() (any, error) { return 1, nil },
					Callback: func(Response) { done.Add(1) },
				})
				if errors.Is(err, ErrRingFull) {
					inst.Poll(0)
					continue
				}
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				submitted++
			}
			deadline := time.Now().Add(10 * time.Second)
			for inst.Inflight() > 0 && time.Now().Before(deadline) {
				inst.Poll(0)
				time.Sleep(100 * time.Microsecond)
			}
		}(insts[w])
	}
	wg.Wait()
	if done.Load() != workers*perWorker {
		t.Fatalf("completed %d, want %d", done.Load(), workers*perWorker)
	}
}

func TestInstanceStats(t *testing.T) {
	d := NewDevice(DeviceSpec{RingCapacity: 2})
	defer d.Close()
	inst, err := d.AllocInstance()
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.Stats(); got != (InstanceStats{}) {
		t.Fatalf("fresh instance stats = %+v", got)
	}
	if n := inst.Poll(0); n != 0 {
		t.Fatalf("empty poll retrieved %d", n)
	}
	block := make(chan struct{})
	work := func() (any, error) { <-block; return nil, nil }
	for i := 0; i < 2; i++ {
		if err := inst.Submit(Request{Op: OpRSA, Work: work}); err != nil {
			t.Fatal(err)
		}
	}
	if err := inst.Submit(Request{Op: OpRSA, Work: work}); err != ErrRingFull {
		t.Fatalf("overfull submit err = %v", err)
	}
	close(block)
	deadline := time.Now().Add(5 * time.Second)
	got := 0
	for got < 2 {
		if time.Now().After(deadline) {
			t.Fatal("responses never arrived")
		}
		got += inst.Poll(0)
	}
	st := inst.Stats()
	if st.Submits != 2 || st.RingFull != 1 || st.Dequeued != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Polls < 2 || st.EmptyPolls < 1 || st.MaxBatch < 1 || st.MaxBatch > 2 {
		t.Fatalf("poll stats = %+v", st)
	}
}
