package qat

import (
	"sync"
	"sync/atomic"
	"time"
)

// Device lifecycle management: the pool-level state machine that turns
// instance-level failure signals (circuit-breaker trips, endpoint reset
// storms, wedged rings) into device-level routing decisions. Where the
// engine's per-instance breakers answer "should this submission try that
// instance", the lifecycle answers "should any work be homed on that
// device at all" — and, crucially, probes a quarantined device back to
// health instead of abandoning it forever.
//
// States and transitions:
//
//	healthy ──breaker opens──▶ suspect ──more opens──▶ quarantined
//	healthy ──reset storm / wedge────────────────────▶ quarantined
//	suspect ──window drains──▶ healthy
//	quarantined ──ProbationAfter elapses──▶ probation
//	probation ──ProbeSuccesses clean ops──▶ healthy
//	probation ──any failure / breaker open──▶ quarantined
//
// Quarantine entry drains the device: a Reset fails its in-flight
// requests with ErrDeviceReset (the engine's retry/fallback path absorbs
// them) and leaked ring slots are reclaimed, so nothing stays parked on
// the corpse. Probation admits a 1-in-ProbeTrickle trickle of real ops;
// their outcomes decide re-admission.

// DeviceState is one device's lifecycle state.
type DeviceState int32

const (
	// DevHealthy: the device takes its full share of work.
	DevHealthy DeviceState = iota
	// DevSuspect: failures were observed recently but below the
	// quarantine threshold; routing is unchanged, the window is watched.
	DevSuspect
	// DevQuarantined: the device takes no work. Pick and RouteConn route
	// around it; its in-flight ops were drained through the fallback path.
	DevQuarantined
	// DevProbation: a trickle of real ops is admitted to probe recovery.
	DevProbation

	numDeviceStates = 4
)

// String returns the state name (the qtls_device_state gauge value is the
// ordinal).
func (s DeviceState) String() string {
	switch s {
	case DevHealthy:
		return "healthy"
	case DevSuspect:
		return "suspect"
	case DevQuarantined:
		return "quarantined"
	case DevProbation:
		return "probation"
	default:
		return "state(?)"
	}
}

// LifecycleReason says why a lifecycle transition happened. The ordinals
// are journaled as flight.KindLifecycle codes (see flight's
// lifecycleReasons table — keep the two in step).
type LifecycleReason uint8

const (
	// ReasonBreakerDensity: too many breaker opens inside the window.
	ReasonBreakerDensity LifecycleReason = iota
	// ReasonResetStorm: too many endpoint resets inside the window.
	ReasonResetStorm
	// ReasonWedge: inflight > 0 with no completions for WedgeTimeout.
	ReasonWedge
	// ReasonProbation: quarantine matured into the probing state.
	ReasonProbation
	// ReasonProbeOK: enough probe ops succeeded; full re-admission.
	ReasonProbeOK
	// ReasonProbeFail: a probe op failed; back to quarantine.
	ReasonProbeFail
	// ReasonDecay: a suspect window drained without further failures.
	ReasonDecay
	// ReasonManual: an operator forced the transition.
	ReasonManual
)

// String returns the reason name used in logs and dumps.
func (r LifecycleReason) String() string {
	names := [...]string{"breaker-density", "reset-storm", "wedge",
		"probation", "probe-ok", "probe-fail", "decay", "manual"}
	if int(r) < len(names) {
		return names[r]
	}
	return "reason(?)"
}

// LifecycleConfig tunes the state machine. The zero value resolves to
// defaults sized for the in-process device model (sub-second windows);
// production hardware would use multi-second ones.
type LifecycleConfig struct {
	// Window is the rolling window breaker opens and resets are counted
	// in (default 1s).
	Window time.Duration
	// SuspectOpens is the breaker-open count within Window that marks a
	// device suspect (default 1).
	SuspectOpens int
	// QuarantineOpens is the breaker-open count within Window that
	// quarantines a device (default 3).
	QuarantineOpens int
	// ResetStorm is the endpoint-reset count within Window that
	// quarantines a device (default 3).
	ResetStorm int
	// WedgeTimeout quarantines a device when it holds in-flight work but
	// completes nothing for this long (default 400ms). The watchdog for
	// the all-engines-stalled failure a breaker may never see.
	WedgeTimeout time.Duration
	// ProbationAfter is the quarantine dwell time before probing begins
	// (default 500ms).
	ProbationAfter time.Duration
	// ProbeTrickle admits one in this many routing decisions during
	// probation (default 8).
	ProbeTrickle int
	// ProbeSuccesses is the count of consecutive successful probe ops
	// that re-admits the device (default 8).
	ProbeSuccesses int
	// PollInterval is the watchdog tick (default 20ms): reset-storm and
	// wedge detection, suspect decay and the probation timer all run on
	// it.
	PollInterval time.Duration
}

func (c LifecycleConfig) withDefaults() LifecycleConfig {
	if c.Window <= 0 {
		c.Window = time.Second
	}
	if c.SuspectOpens <= 0 {
		c.SuspectOpens = 1
	}
	if c.QuarantineOpens <= 0 {
		c.QuarantineOpens = 3
	}
	if c.ResetStorm <= 0 {
		c.ResetStorm = 3
	}
	if c.WedgeTimeout <= 0 {
		c.WedgeTimeout = 400 * time.Millisecond
	}
	if c.ProbationAfter <= 0 {
		c.ProbationAfter = 500 * time.Millisecond
	}
	if c.ProbeTrickle <= 0 {
		c.ProbeTrickle = 8
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 8
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 20 * time.Millisecond
	}
	return c
}

// Transition is one lifecycle state change, delivered to the OnTransition
// hook (journaling, gauges, re-home notification).
type Transition struct {
	Dev    int
	From   DeviceState
	To     DeviceState
	Reason LifecycleReason
	At     time.Time
}

// lcDev is one device's lifecycle bookkeeping, guarded by Lifecycle.mu
// except where noted.
type lcDev struct {
	opens      []time.Time // breaker-open timestamps within Window
	resetTimes []time.Time // reset timestamps within Window (from deltas)
	lastResets int64       // Device.Resets() sum at the last tick

	lastDequeued int64     // summed InstanceStats.Dequeued at last progress
	lastProgress time.Time // when completions (or idleness) last advanced

	quarantinedAt time.Time
	probeOK       int

	trickle atomic.Int64 // probation admission counter (lock-free)
}

// Lifecycle is the per-pool device lifecycle manager. Construct with
// NewLifecycle, wire OnTransition, then Start the watchdog. The hot-path
// methods (State, Admit, Routable, Epoch) are lock-free; the signal
// inputs (NoteBreakerOpen, NoteResult) take the manager lock only when a
// transition may be due.
type Lifecycle struct {
	pool *Pool
	cfg  LifecycleConfig

	states []atomic.Int32 // DeviceState per device
	epoch  atomic.Int64   // bumped on every transition; workers poll it

	mu     sync.Mutex
	devs   []*lcDev
	onTr   func(Transition)
	stop   chan struct{}
	done   chan struct{}
	active bool
}

// NewLifecycle builds a lifecycle manager for the pool's devices (all
// initially healthy) and registers it with the pool, so Pick and
// RouteConn route around quarantined devices from now on.
func NewLifecycle(pool *Pool, cfg LifecycleConfig) *Lifecycle {
	lc := &Lifecycle{
		pool:   pool,
		cfg:    cfg.withDefaults(),
		states: make([]atomic.Int32, pool.Size()),
		devs:   make([]*lcDev, pool.Size()),
	}
	now := time.Now()
	for i := range lc.devs {
		lc.devs[i] = &lcDev{lastProgress: now}
		for _, r := range pool.Device(i).Resets() {
			lc.devs[i].lastResets += r
		}
	}
	pool.setLifecycle(lc)
	return lc
}

// SetOnTransition installs the transition hook (journaling, gauges,
// worker re-home notification). The hook runs outside the manager lock,
// on whichever goroutine triggered the transition. Set it before Start.
func (lc *Lifecycle) SetOnTransition(fn func(Transition)) {
	lc.mu.Lock()
	lc.onTr = fn
	lc.mu.Unlock()
}

// Config returns the resolved (defaulted) configuration.
func (lc *Lifecycle) Config() LifecycleConfig { return lc.cfg }

// State returns device dev's lifecycle state. Lock-free.
func (lc *Lifecycle) State(dev int) DeviceState {
	if dev < 0 || dev >= len(lc.states) {
		return DevHealthy
	}
	return DeviceState(lc.states[dev].Load())
}

// States returns a snapshot of every device's state, indexed by device.
func (lc *Lifecycle) States() []DeviceState {
	out := make([]DeviceState, len(lc.states))
	for i := range lc.states {
		out[i] = DeviceState(lc.states[i].Load())
	}
	return out
}

// Epoch returns the transition epoch: a counter bumped on every state
// change. Workers compare it against their cached value once per loop
// iteration — one atomic load — and re-derive placement when it moved.
func (lc *Lifecycle) Epoch() int64 { return lc.epoch.Load() }

// Routable reports whether routing decisions (Pick, RouteConn, lane
// preference) may target the device: everything but quarantine. Lock-free.
func (lc *Lifecycle) Routable(dev int) bool {
	return lc.State(dev) != DevQuarantined
}

// Admit decides one submission against the device: healthy and suspect
// devices admit everything, quarantined devices nothing, and a device on
// probation admits a 1-in-ProbeTrickle trickle of real ops as probes.
// Lock-free (one atomic load, plus one atomic add during probation).
func (lc *Lifecycle) Admit(dev int) bool {
	if dev < 0 || dev >= len(lc.states) {
		return true
	}
	switch DeviceState(lc.states[dev].Load()) {
	case DevQuarantined:
		return false
	case DevProbation:
		n := lc.devs[dev].trickle.Add(1)
		return n%int64(lc.cfg.ProbeTrickle) == 0
	default:
		return true
	}
}

// NoteBreakerOpen records one circuit-breaker open transition on an
// instance of device dev — the breaker-density input of the state
// machine. Called by the engine's breaker hook (outside the breaker lock).
func (lc *Lifecycle) NoteBreakerOpen(dev int) {
	if dev < 0 || dev >= len(lc.states) {
		return
	}
	now := time.Now()
	lc.mu.Lock()
	d := lc.devs[dev]
	d.opens = append(d.opens, now)
	d.opens = pruneWindow(d.opens, now, lc.cfg.Window)
	n := len(d.opens)
	var trs []Transition
	switch DeviceState(lc.states[dev].Load()) {
	case DevHealthy:
		if n >= lc.cfg.QuarantineOpens {
			trs = lc.transitionLocked(dev, DevQuarantined, ReasonBreakerDensity, now)
		} else if n >= lc.cfg.SuspectOpens {
			trs = lc.transitionLocked(dev, DevSuspect, ReasonBreakerDensity, now)
		}
	case DevSuspect:
		if n >= lc.cfg.QuarantineOpens {
			trs = lc.transitionLocked(dev, DevQuarantined, ReasonBreakerDensity, now)
		}
	case DevProbation:
		// A breaker opening during probation is a failed probe.
		trs = lc.transitionLocked(dev, DevQuarantined, ReasonProbeFail, now)
	}
	lc.mu.Unlock()
	lc.fire(trs)
}

// NoteResult records one offload outcome on device dev. Only probation
// consumes it (probe scoring); outside probation the cost is one atomic
// load.
func (lc *Lifecycle) NoteResult(dev int, ok bool) {
	if dev < 0 || dev >= len(lc.states) {
		return
	}
	if DeviceState(lc.states[dev].Load()) != DevProbation {
		return
	}
	now := time.Now()
	lc.mu.Lock()
	var trs []Transition
	if DeviceState(lc.states[dev].Load()) == DevProbation { // recheck under lock
		d := lc.devs[dev]
		if !ok {
			trs = lc.transitionLocked(dev, DevQuarantined, ReasonProbeFail, now)
		} else if d.probeOK++; d.probeOK >= lc.cfg.ProbeSuccesses {
			trs = lc.transitionLocked(dev, DevHealthy, ReasonProbeOK, now)
		}
	}
	lc.mu.Unlock()
	lc.fire(trs)
}

// Quarantine forces device dev into quarantine (operator action, or a
// test fixture). No-op if already quarantined.
func (lc *Lifecycle) Quarantine(dev int, reason LifecycleReason) {
	now := time.Now()
	lc.mu.Lock()
	trs := lc.transitionLocked(dev, DevQuarantined, reason, now)
	lc.mu.Unlock()
	lc.fire(trs)
}

// transitionLocked performs one state change under lc.mu and returns the
// transition(s) to deliver after unlock. Quarantine entry drains the
// device: Reset fails its in-flight ops with ErrDeviceReset (absorbed by
// the engine's retry/fallback path) and leaked slots are reclaimed.
func (lc *Lifecycle) transitionLocked(dev int, to DeviceState, reason LifecycleReason, now time.Time) []Transition {
	from := DeviceState(lc.states[dev].Load())
	if from == to {
		return nil
	}
	lc.states[dev].Store(int32(to))
	lc.epoch.Add(1)
	d := lc.devs[dev]
	switch to {
	case DevQuarantined:
		d.quarantinedAt = now
		d.probeOK = 0
		d.opens = d.opens[:0]
		// Drain: fail everything parked on the device so the submitters'
		// retry/fallback paths settle it now instead of at their deadlines.
		lc.pool.Device(dev).Reset()
		lc.pool.reclaimDevice(dev)
		// The drain reset must not feed the storm detector.
		d.lastResets = sumResets(lc.pool.Device(dev))
		d.resetTimes = d.resetTimes[:0]
	case DevProbation:
		d.probeOK = 0
		d.trickle.Store(0)
	case DevHealthy:
		d.opens = d.opens[:0]
		d.resetTimes = d.resetTimes[:0]
	}
	// A state change invalidates the progress baseline either way.
	d.lastProgress = now
	d.lastDequeued = lc.pool.deviceDequeued(dev)
	return []Transition{{Dev: dev, From: from, To: to, Reason: reason, At: now}}
}

// fire delivers transitions to the hook outside the manager lock.
func (lc *Lifecycle) fire(trs []Transition) {
	if len(trs) == 0 {
		return
	}
	lc.mu.Lock()
	fn := lc.onTr
	lc.mu.Unlock()
	if fn == nil {
		return
	}
	for _, tr := range trs {
		fn(tr)
	}
}

// Start launches the watchdog goroutine (reset-storm and wedge detection,
// suspect decay, the probation timer). Stop with Stop.
func (lc *Lifecycle) Start() {
	lc.mu.Lock()
	if lc.active {
		lc.mu.Unlock()
		return
	}
	lc.active = true
	lc.stop = make(chan struct{})
	lc.done = make(chan struct{})
	stop, done := lc.stop, lc.done
	lc.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(lc.cfg.PollInterval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-t.C:
				lc.tick(now)
			}
		}
	}()
}

// Stop halts the watchdog. Idempotent.
func (lc *Lifecycle) Stop() {
	lc.mu.Lock()
	if !lc.active {
		lc.mu.Unlock()
		return
	}
	lc.active = false
	stop, done := lc.stop, lc.done
	lc.mu.Unlock()
	close(stop)
	<-done
}

// tick runs one watchdog pass over every device.
func (lc *Lifecycle) tick(now time.Time) {
	var fireList []Transition
	lc.mu.Lock()
	for dev := range lc.devs {
		d := lc.devs[dev]
		state := DeviceState(lc.states[dev].Load())

		// Reset-storm detection: turn Device.Resets() deltas into
		// windowed timestamps. The drain reset performed at quarantine
		// entry was already folded into lastResets.
		cur := sumResets(lc.pool.Device(dev))
		if delta := cur - d.lastResets; delta > 0 {
			for i := int64(0); i < delta; i++ {
				d.resetTimes = append(d.resetTimes, now)
			}
		}
		d.lastResets = cur
		d.resetTimes = pruneWindow(d.resetTimes, now, lc.cfg.Window)

		switch state {
		case DevHealthy, DevSuspect:
			if len(d.resetTimes) >= lc.cfg.ResetStorm {
				fireList = append(fireList, lc.transitionLocked(dev, DevQuarantined, ReasonResetStorm, now)...)
				continue
			}
			// Wedge watchdog: work parked, nothing completing.
			inflight := lc.pool.deviceInflight(dev)
			dequeued := lc.pool.deviceDequeued(dev)
			if inflight == 0 || dequeued != d.lastDequeued {
				d.lastDequeued = dequeued
				d.lastProgress = now
			} else if now.Sub(d.lastProgress) >= lc.cfg.WedgeTimeout {
				fireList = append(fireList, lc.transitionLocked(dev, DevQuarantined, ReasonWedge, now)...)
				continue
			}
			// Suspect decay: the open window drained.
			if state == DevSuspect {
				d.opens = pruneWindow(d.opens, now, lc.cfg.Window)
				if len(d.opens) == 0 {
					fireList = append(fireList, lc.transitionLocked(dev, DevHealthy, ReasonDecay, now)...)
				}
			}
		case DevQuarantined:
			if now.Sub(d.quarantinedAt) >= lc.cfg.ProbationAfter {
				fireList = append(fireList, lc.transitionLocked(dev, DevProbation, ReasonProbation, now)...)
			}
		}
	}
	lc.mu.Unlock()
	lc.fire(fireList)
}

// pruneWindow drops timestamps older than window before now, in place.
func pruneWindow(ts []time.Time, now time.Time, window time.Duration) []time.Time {
	cut := 0
	for cut < len(ts) && now.Sub(ts[cut]) > window {
		cut++
	}
	if cut == 0 {
		return ts
	}
	return append(ts[:0], ts[cut:]...)
}

// sumResets totals a device's per-endpoint reset counters.
func sumResets(d *Device) int64 {
	var n int64
	for _, r := range d.Resets() {
		n += r
	}
	return n
}
