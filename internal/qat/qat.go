// Package qat is a functional, in-process model of an Intel® QuickAssist
// Technology (QAT) crypto acceleration device, faithful to the usage model
// described in §2.3 of the QTLS paper (Fig. 2):
//
//   - a device hosts one or more independent *endpoints* (the DH8970 card
//     used in the paper contains three);
//   - each endpoint possesses multiple parallel *computation engines* and a
//     number of hardware-assisted *request/response ring pairs*;
//   - ring pairs are grouped into *crypto instances*, logical units assigned
//     to a process/thread;
//   - software writes requests onto a request ring and reads responses back
//     from a response ring; the hardware load-balances requests from all
//     rings across all available engines;
//   - submission is inherently non-blocking: when the request ring is full
//     the submit call fails with a retry status (ErrRingFull);
//   - response availability is indicated by polling (QTLS' choice) or by a
//     completion hook standing in for an interrupt.
//
// Computation engines are goroutines. Each request carries a Work closure
// executed on an engine; real deployments of this package pass closures
// that perform genuine RSA/ECDSA/ECDH/PRF/cipher computations via the Go
// standard library, so TLS handshakes driven through the device are real.
// An optional per-op minimum service time models the latency/throughput
// envelope of the ASIC, letting tests create deterministic contention.
package qat

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"qtls/internal/fault"
)

// OpType classifies a crypto request, mirroring the service categories the
// QAT Engine offloads (§2.3): asymmetric crypto, symmetric chained cipher
// and PRF.
type OpType int

const (
	// OpRSA is an RSA private-key operation (sign/decrypt).
	OpRSA OpType = iota
	// OpECDSA is an ECDSA sign operation.
	OpECDSA
	// OpECDH is an ECDH(E) point-multiplication / derive operation.
	OpECDH
	// OpPRF is a TLS 1.2 pseudo random function derivation.
	OpPRF
	// OpCipher is a symmetric chained cipher record operation
	// (e.g. AES-128-CBC-HMAC-SHA1).
	OpCipher
	// OpSym is a bulk symmetric record-protection operation on the
	// post-handshake data path (the kTLS-style record engine). Unlike
	// OpCipher — a handshake-path op routed through the provider with a
	// flat service time — OpSym requests carry their payload size
	// (Request.Bytes) and the engine occupancy is calibrated per byte
	// (DeviceSpec.SymBaseTime/SymPerKB), so large records hold an engine
	// proportionally longer, as a real symmetric slice would.
	OpSym

	numOpTypes = 6
)

// String returns the conventional name of the op type.
func (t OpType) String() string {
	switch t {
	case OpRSA:
		return "rsa"
	case OpECDSA:
		return "ecdsa"
	case OpECDH:
		return "ecdh"
	case OpPRF:
		return "prf"
	case OpCipher:
		return "cipher"
	case OpSym:
		return "sym"
	default:
		return fmt.Sprintf("op(%d)", int(t))
	}
}

// Asymmetric reports whether the op type is an asymmetric-key calculation.
// The heuristic polling scheme uses a larger coalescing threshold when
// asymmetric requests are in flight (§3.3).
func (t OpType) Asymmetric() bool {
	return t == OpRSA || t == OpECDSA || t == OpECDH
}

// ErrRingFull is returned by Submit when the instance's request ring has no
// free slot; the caller is expected to retry later (§3.2 "failure of crypto
// submission").
var ErrRingFull = errors.New("qat: request ring full")

// ErrClosed is returned by Submit after the device has been closed.
var ErrClosed = errors.New("qat: device closed")

// ErrDeviceReset is returned by Submit when the target endpoint reset
// underneath the submission, and delivered as the response error of
// requests that were in flight on an endpoint when it reset. It is a
// retryable condition: the engine resubmits (possibly elsewhere) or falls
// back to software.
var ErrDeviceReset = errors.New("qat: endpoint reset")

// ErrNoInstances is the sentinel wrapped by AllocInstance when every
// endpoint is at MaxInstancesPerEndpoint. The returned error carries the
// device index; match with errors.Is.
var ErrNoInstances = errors.New("no free crypto instances")

// Response is the completion record read back from a response ring.
type Response struct {
	// Result is the value produced by the request's Work closure.
	Result any
	// Err is the error produced by the request's Work closure.
	Err error
}

// Request describes one crypto offload job.
type Request struct {
	// Op classifies the request for counters and scheduling.
	Op OpType
	// Bytes is the payload size of a bulk symmetric request (OpSym), used
	// for byte-calibrated service times. Ignored for other op types.
	Bytes int
	// Work performs the actual computation on an engine goroutine. It must
	// be non-nil and must not block indefinitely.
	Work func() (any, error)
	// Callback is invoked with the response during Poll, on the polling
	// goroutine (matching QAT userspace polled operation). Optional.
	Callback func(Response)
}

// DeviceSpec configures a simulated QAT device.
type DeviceSpec struct {
	// Endpoints is the number of independent QAT endpoints (the paper's
	// DH8970 card has 3). Default 1.
	Endpoints int
	// EnginesPerEndpoint is the number of parallel computation engines in
	// each endpoint. Default 8.
	EnginesPerEndpoint int
	// MaxInstancesPerEndpoint bounds AllocInstance (a modern endpoint
	// supports up to 48 crypto instances, §2.3). Default 48.
	MaxInstancesPerEndpoint int
	// RingCapacity is the capacity of each instance's request ring.
	// Default 64.
	RingCapacity int
	// ServiceTime, when non-nil, gives a minimum engine occupancy per op
	// type; engines sleep out any remainder after Work returns. This models
	// ASIC latency for tests and demos. A nil map means "as fast as the
	// host computes".
	ServiceTime map[OpType]time.Duration
	// SymBaseTime and SymPerKB calibrate OpSym engine occupancy by request
	// size: occupancy = SymBaseTime + SymPerKB × Bytes/1024. When both are
	// zero, OpSym falls back to the flat ServiceTime entry (or host speed).
	SymBaseTime time.Duration
	SymPerKB    time.Duration
	// OnResponse, when non-nil, is called from the engine goroutine each
	// time a response becomes available on an instance's response ring.
	// It stands in for a completion interrupt; QTLS itself relies on
	// polling and leaves this nil.
	OnResponse func(*Instance)
	// Injector, when non-nil, is consulted at submit and service time to
	// inject faults (stalls, drops, corruption, latency, ring-full
	// storms, endpoint resets). nil — the default — is free: no fault
	// paths are taken.
	Injector *fault.Injector
}

func (s DeviceSpec) withDefaults() DeviceSpec {
	if s.Endpoints <= 0 {
		s.Endpoints = 1
	}
	if s.EnginesPerEndpoint <= 0 {
		s.EnginesPerEndpoint = 8
	}
	if s.MaxInstancesPerEndpoint <= 0 {
		s.MaxInstancesPerEndpoint = 48
	}
	if s.RingCapacity <= 0 {
		s.RingCapacity = 64
	}
	return s
}

// Counters is a snapshot of the firmware counters of one endpoint,
// mirroring /sys/kernel/debug/qat*/fw_counters from the artifact appendix.
type Counters struct {
	Requests  [numOpTypes]uint64
	Responses [numOpTypes]uint64
}

// TotalRequests sums requests across op types.
func (c Counters) TotalRequests() (n uint64) {
	for _, v := range c.Requests {
		n += v
	}
	return n
}

// TotalResponses sums responses across op types.
func (c Counters) TotalResponses() (n uint64) {
	for _, v := range c.Responses {
		n += v
	}
	return n
}

// Device is a simulated QAT acceleration device.
type Device struct {
	id        int // position in a Pool; 0 for standalone devices
	spec      DeviceSpec
	endpoints []*endpoint

	mu        sync.Mutex
	closed    bool
	nextAlloc int // round-robin endpoint for instance allocation
}

type endpoint struct {
	dev      *Device
	id       int
	dispatch chan *pending
	wg       sync.WaitGroup

	mu        sync.Mutex
	counters  Counters
	instances int
	epoch     int // bumped by reset; stale in-flight requests fail
	resets    int64
}

type pending struct {
	req   Request
	inst  *Instance
	epoch int
}

// Instance is a QAT crypto instance: a logical group of ring pairs assigned
// to one process/thread. Instances are not safe for concurrent use by
// multiple goroutines except where documented: Submit and Poll may be
// called concurrently with engine completions, but the intended usage is
// one owning worker per instance (as in the paper's deployment: one Nginx
// worker per instance).
type Instance struct {
	ep      *endpoint
	id      int
	ringCap int

	mu        sync.Mutex
	inflight  int
	leaked    int         // ring slots held by stalled requests
	responses []completed // response ring; bounded by inflight <= ringCap
	stats     InstanceStats
}

// InstanceStats is a snapshot of one instance's ring-level counters: how
// submission and retrieval behaved, as opposed to the endpoint firmware
// counters which only count operations.
type InstanceStats struct {
	// Submits counts requests accepted onto the request ring (whether
	// they arrived one at a time or inside a batch).
	Submits int64
	// RingFull counts submit calls rejected — fully or, for SubmitBatch,
	// partially — with ErrRingFull. A partially accepted batch counts
	// once, not once per unaccepted request.
	RingFull int64
	// Doorbells counts ring-lock acquisitions on the submit path: one per
	// Submit and one per SubmitBatch that reaches the ring (a submit-time
	// endpoint reset fails before the ring lock). The batched submission
	// path exists to make this number grow slower than Submits.
	Doorbells int64
	// SubmitBatches counts SubmitBatch calls that accepted at least one
	// request.
	SubmitBatches int64
	// BatchSubmitted counts requests accepted via SubmitBatch (a subset
	// of Submits; BatchSubmitted/SubmitBatches is the mean batch size).
	BatchSubmitted int64
	// MaxSubmitBatch is the largest single SubmitBatch acceptance.
	MaxSubmitBatch int64
	// Polls counts Poll calls.
	Polls int64
	// EmptyPolls counts Poll calls that retrieved nothing — wasted CPU
	// the heuristic polling scheme exists to avoid (§3.3).
	EmptyPolls int64
	// Dequeued counts responses retrieved across all polls.
	Dequeued int64
	// MaxBatch is the largest single-poll batch observed.
	MaxBatch int64
	// Reclaimed counts ring slots recovered by ReclaimLeaked — each one a
	// stalled request the submitter gave up on. A growing value is the
	// ring-level shadow of the engine's timeout/fallback incidents (the
	// flight recorder journals the submitter-side cause).
	Reclaimed int64
}

type completed struct {
	cb   func(Response)
	resp Response
}

// NewDevice creates a device and starts its engine goroutines.
func NewDevice(spec DeviceSpec) *Device {
	spec = spec.withDefaults()
	d := &Device{spec: spec}
	for i := 0; i < spec.Endpoints; i++ {
		ep := &endpoint{
			dev: d,
			id:  i,
			// Dispatch capacity covers every instance's full ring so that
			// a successful Submit can never block on the channel send.
			dispatch: make(chan *pending, spec.MaxInstancesPerEndpoint*spec.RingCapacity),
		}
		for e := 0; e < spec.EnginesPerEndpoint; e++ {
			ep.wg.Add(1)
			go ep.engineLoop()
		}
		d.endpoints = append(d.endpoints, ep)
	}
	return d
}

// Spec returns the (defaulted) device specification.
func (d *Device) Spec() DeviceSpec { return d.spec }

// ID returns the device's index within its Pool (0 for a standalone
// device). The id appears in AllocInstance errors and per-device stats so
// that multi-device deployments can attribute failures to hardware.
func (d *Device) ID() int { return d.id }

// AllocInstance allocates a crypto instance, distributing instances evenly
// across endpoints (the paper's setup: "the allocated QAT instances were
// distributed evenly from the three QAT endpoints").
func (d *Device) AllocInstance() (*Instance, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	for try := 0; try < len(d.endpoints); try++ {
		ep := d.endpoints[d.nextAlloc%len(d.endpoints)]
		d.nextAlloc++
		ep.mu.Lock()
		if ep.instances < d.spec.MaxInstancesPerEndpoint {
			ep.instances++
			id := ep.instances
			ep.mu.Unlock()
			return &Instance{ep: ep, id: id, ringCap: d.spec.RingCapacity}, nil
		}
		ep.mu.Unlock()
	}
	return nil, fmt.Errorf("qat: device %d: %w (%d endpoints at max %d instances)",
		d.id, ErrNoInstances, len(d.endpoints), d.spec.MaxInstancesPerEndpoint)
}

// Close shuts the device down. In-flight work is completed; subsequent
// Submit calls fail with ErrClosed. Close blocks until all engines exit.
func (d *Device) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.mu.Unlock()
	for _, ep := range d.endpoints {
		close(ep.dispatch)
		ep.wg.Wait()
	}
}

// Counters returns per-endpoint firmware counters.
func (d *Device) Counters() []Counters {
	out := make([]Counters, len(d.endpoints))
	for i, ep := range d.endpoints {
		ep.mu.Lock()
		out[i] = ep.counters
		ep.mu.Unlock()
	}
	return out
}

func (ep *endpoint) engineLoop() {
	defer ep.wg.Done()
	st := ep.dev.spec.ServiceTime
	inj := ep.dev.spec.Injector
	for p := range ep.dispatch {
		inst := p.inst
		// A request that was on the rings when its endpoint reset fails
		// with a retryable error instead of executing.
		ep.mu.Lock()
		stale := p.epoch != ep.epoch
		ep.mu.Unlock()
		if stale {
			ep.deliver(inst, p.req, Response{Err: ErrDeviceReset})
			continue
		}
		var out fault.Outcome
		if inj != nil {
			out = inj.AtService(ep.id, int(p.req.Op))
		}
		if out.Stall {
			// Stalled engine: the response never arrives and the ring slot
			// stays occupied until the submitter reclaims it.
			inst.mu.Lock()
			inst.leaked++
			inst.mu.Unlock()
			continue
		}
		if out.Drop {
			// The request was consumed (slot freed) but the response is
			// lost on the way back.
			inst.mu.Lock()
			inst.inflight--
			inst.mu.Unlock()
			continue
		}
		start := time.Now()
		var resp Response
		resp.Result, resp.Err = p.req.Work()
		minT, haveMin := time.Duration(0), false
		if p.req.Op == OpSym && (ep.dev.spec.SymBaseTime > 0 || ep.dev.spec.SymPerKB > 0) {
			minT = ep.dev.spec.SymBaseTime + ep.dev.spec.SymPerKB*time.Duration(p.req.Bytes)/1024
			haveMin = true
		} else if st != nil {
			minT, haveMin = st[p.req.Op]
		}
		if haveMin {
			if rem := minT - time.Since(start); rem > 0 {
				time.Sleep(rem)
			}
		}
		if out.ExtraLatency > 0 {
			time.Sleep(out.ExtraLatency)
		}
		if out.Corrupt {
			resp.Result = corruptResult(resp.Result)
		}
		ep.deliver(inst, p.req, resp)
	}
}

// deliver places a response on the instance's response ring, bumps the
// firmware counter and fires the completion hook.
func (ep *endpoint) deliver(inst *Instance, req Request, resp Response) {
	inst.mu.Lock()
	inst.responses = append(inst.responses, completed{cb: req.Callback, resp: resp})
	inst.mu.Unlock()
	ep.mu.Lock()
	ep.counters.Responses[req.Op]++
	ep.mu.Unlock()
	if hook := ep.dev.spec.OnResponse; hook != nil {
		hook(inst)
	}
}

// corruptResult returns a bit-flipped copy of byte-slice results (wrong
// bytes back, silently — detection is the submitter's job, e.g. RSA
// sign-then-verify). Non-byte results pass through unchanged.
func corruptResult(v any) any {
	b, ok := v.([]byte)
	if !ok || len(b) == 0 {
		return v
	}
	c := make([]byte, len(b))
	copy(c, b)
	c[0] ^= 0xa5
	c[len(c)-1] ^= 0x5a
	return c
}

// reset models a whole-endpoint reset: every request currently on the
// endpoint's rings fails with ErrDeviceReset instead of executing.
func (ep *endpoint) reset() {
	ep.mu.Lock()
	ep.epoch++
	ep.resets++
	ep.mu.Unlock()
}

// Reset models a whole-device reset: every endpoint resets (in-flight
// requests fail with ErrDeviceReset instead of executing) and the
// instance-allocation counters are cleared, so a process that exhausted
// AllocInstance can re-allocate after the reset — the ring
// reinitialization a real adf_ctl restart performs. Instances handed out
// before the reset remain usable for Submit/Poll; their outstanding
// requests complete with ErrDeviceReset.
func (d *Device) Reset() {
	d.mu.Lock()
	d.nextAlloc = 0
	d.mu.Unlock()
	for _, ep := range d.endpoints {
		ep.reset()
		ep.mu.Lock()
		ep.instances = 0
		ep.mu.Unlock()
	}
}

// Resets returns how many times each endpoint has reset.
func (d *Device) Resets() []int64 {
	out := make([]int64, len(d.endpoints))
	for i, ep := range d.endpoints {
		ep.mu.Lock()
		out[i] = ep.resets
		ep.mu.Unlock()
	}
	return out
}

// Submit places a request on the instance's request ring. It never blocks:
// when the ring is full it returns ErrRingFull and the caller must retry
// later. On success the request will eventually be executed by one of the
// endpoint's engines and its response becomes retrievable via Poll.
func (inst *Instance) Submit(req Request) error {
	if req.Work == nil {
		panic("qat: Submit with nil Work")
	}
	if req.Op < 0 || req.Op >= numOpTypes {
		panic("qat: Submit with invalid OpType")
	}
	inst.ep.dev.mu.Lock()
	closed := inst.ep.dev.closed
	inst.ep.dev.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if inj := inst.ep.dev.spec.Injector; inj != nil {
		out := inj.AtSubmit(inst.ep.id, int(req.Op))
		if out.Reset {
			inst.ep.reset()
			return ErrDeviceReset
		}
		if out.RingFull {
			inst.mu.Lock()
			inst.stats.Doorbells++
			inst.stats.RingFull++
			inst.mu.Unlock()
			return ErrRingFull
		}
	}
	inst.mu.Lock()
	inst.stats.Doorbells++
	if inst.inflight >= inst.ringCap {
		inst.stats.RingFull++
		inst.mu.Unlock()
		return ErrRingFull
	}
	inst.inflight++
	inst.stats.Submits++
	inst.mu.Unlock()

	inst.ep.mu.Lock()
	inst.ep.counters.Requests[req.Op]++
	epoch := inst.ep.epoch
	inst.ep.mu.Unlock()

	// Guaranteed space: dispatch capacity >= sum of ring capacities.
	inst.ep.dispatch <- &pending{req: req, inst: inst, epoch: epoch}
	return nil
}

// SubmitBatch places up to len(reqs) requests on the instance's request
// ring, taking the ring lock and ringing the doorbell once for the whole
// batch. It accepts a prefix of reqs and returns how many were accepted:
// on ring-full the remainder is rejected with ErrRingFull and the caller
// retries (or falls back) only the unaccepted tail. Like Submit it never
// blocks.
//
// Partial-acceptance semantics: requests reqs[:accepted] are on the ring
// exactly as if submitted individually; reqs[accepted:] were never
// submitted and carry no ring state. When the returned error is
// ErrDeviceReset the endpoint reset mid-batch; the accepted prefix was on
// the rings at reset time and will complete with ErrDeviceReset responses
// (retryable), matching the fate of any other in-flight request.
func (inst *Instance) SubmitBatch(reqs []Request) (int, error) {
	for i := range reqs {
		if reqs[i].Work == nil {
			panic("qat: SubmitBatch with nil Work")
		}
		if reqs[i].Op < 0 || reqs[i].Op >= numOpTypes {
			panic("qat: SubmitBatch with invalid OpType")
		}
	}
	if len(reqs) == 0 {
		return 0, nil
	}
	inst.ep.dev.mu.Lock()
	closed := inst.ep.dev.closed
	inst.ep.dev.mu.Unlock()
	if closed {
		return 0, ErrClosed
	}
	inj := inst.ep.dev.spec.Injector

	// Read the epoch before reserving ring slots so that a reset injected
	// mid-batch leaves the accepted prefix stale: the engines fail those
	// requests with ErrDeviceReset instead of executing them, exactly as
	// they would any request already on the rings when the endpoint reset.
	inst.ep.mu.Lock()
	epoch := inst.ep.epoch
	inst.ep.mu.Unlock()

	var accepted int
	var batchErr error
	inst.mu.Lock()
	inst.stats.Doorbells++
	for i := range reqs {
		if inj != nil {
			out := inj.AtSubmit(inst.ep.id, int(reqs[i].Op))
			if out.Reset {
				inst.ep.reset()
				batchErr = ErrDeviceReset
				break
			}
			if out.RingFull {
				inst.stats.RingFull++
				batchErr = ErrRingFull
				break
			}
		}
		if inst.inflight >= inst.ringCap {
			inst.stats.RingFull++
			batchErr = ErrRingFull
			break
		}
		inst.inflight++
		inst.stats.Submits++
		accepted++
	}
	if accepted > 0 {
		inst.stats.SubmitBatches++
		inst.stats.BatchSubmitted += int64(accepted)
		if int64(accepted) > inst.stats.MaxSubmitBatch {
			inst.stats.MaxSubmitBatch = int64(accepted)
		}
	}
	inst.mu.Unlock()
	if accepted == 0 {
		return 0, batchErr
	}

	inst.ep.mu.Lock()
	for i := range reqs[:accepted] {
		inst.ep.counters.Requests[reqs[i].Op]++
	}
	inst.ep.mu.Unlock()

	// Guaranteed space: dispatch capacity >= sum of ring capacities.
	for i := range reqs[:accepted] {
		inst.ep.dispatch <- &pending{req: reqs[i], inst: inst, epoch: epoch}
	}
	return accepted, batchErr
}

// Poll retrieves up to max responses (0 or negative means all available),
// invoking each request's callback on the calling goroutine. It returns
// the number of responses retrieved. This is the userspace polled
// operation QTLS builds its heuristic polling scheme on (§3.3).
func (inst *Instance) Poll(max int) int {
	inst.mu.Lock()
	n := len(inst.responses)
	if max > 0 && n > max {
		n = max
	}
	batch := make([]completed, n)
	copy(batch, inst.responses[:n])
	rest := copy(inst.responses, inst.responses[n:])
	for i := rest; i < len(inst.responses); i++ {
		inst.responses[i] = completed{}
	}
	inst.responses = inst.responses[:rest]
	inst.inflight -= n
	inst.stats.Polls++
	if n == 0 {
		inst.stats.EmptyPolls++
	}
	inst.stats.Dequeued += int64(n)
	if int64(n) > inst.stats.MaxBatch {
		inst.stats.MaxBatch = int64(n)
	}
	inst.mu.Unlock()

	for _, c := range batch {
		if c.cb != nil {
			c.cb(c.resp)
		}
	}
	return n
}

// Inflight returns the number of submitted-but-not-yet-polled requests on
// this instance (includes responses waiting on the response ring).
func (inst *Instance) Inflight() int {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.inflight
}

// Available returns the number of responses ready to be polled.
func (inst *Instance) Available() int {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return len(inst.responses)
}

// Leaked returns the number of ring slots currently held by stalled
// requests whose responses will never arrive.
func (inst *Instance) Leaked() int {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.leaked
}

// ReclaimLeaked frees the ring slots of stalled requests, returning how
// many were reclaimed. The submitter calls this after deciding (via a
// deadline) that outstanding requests are never coming back; it stands in
// for the ring reinitialization a device reset performs.
func (inst *Instance) ReclaimLeaked() int {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	n := inst.leaked
	inst.inflight -= n
	inst.leaked = 0
	inst.stats.Reclaimed += int64(n)
	return n
}

// Stats returns a snapshot of the instance's ring-level counters.
func (inst *Instance) Stats() InstanceStats {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.stats
}

// Cap returns the capacity of the instance's request ring: the maximum
// number of requests that may be in flight at once. Submitters use
// Cap()-Inflight() as the free-slot estimate when sizing batches.
func (inst *Instance) Cap() int { return inst.ringCap }

// Endpoint returns the id of the endpoint this instance belongs to.
func (inst *Instance) Endpoint() int { return inst.ep.id }
