package qat

import (
	"testing"
	"time"
)

// TestSymByteCalibratedServiceTime verifies that OpSym engine occupancy
// scales with Request.Bytes: a 64 KB record must hold an engine visibly
// longer than a 1 KB record under the same calibration.
func TestSymByteCalibratedServiceTime(t *testing.T) {
	dev := NewDevice(DeviceSpec{
		Endpoints:          1,
		EnginesPerEndpoint: 1, // serialize: occupancy becomes latency
		SymBaseTime:        100 * time.Microsecond,
		SymPerKB:           50 * time.Microsecond,
	})
	defer dev.Close()
	inst, err := dev.AllocInstance()
	if err != nil {
		t.Fatal(err)
	}

	timeOne := func(bytes int) time.Duration {
		start := time.Now()
		err := inst.Submit(Request{
			Op:    OpSym,
			Bytes: bytes,
			Work:  func() (any, error) { return nil, nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		for inst.Poll(1) == 0 {
			time.Sleep(20 * time.Microsecond)
		}
		return time.Since(start)
	}

	small := timeOne(1024)
	large := timeOne(64 * 1024)
	// Calibrated floors: 150µs for 1KB, 3.3ms for 64KB. Sleeps can only
	// lengthen them, so compare against the midpoint.
	if small < 150*time.Microsecond {
		t.Errorf("1KB sym op completed in %v, below its calibrated floor", small)
	}
	if large < 2*time.Millisecond {
		t.Errorf("64KB sym op completed in %v; want byte-proportional occupancy (>= ~3.3ms)", large)
	}
	if large < 2*small {
		t.Errorf("64KB op (%v) not proportionally slower than 1KB op (%v)", large, small)
	}
}

// TestSymCountersAndStats checks OpSym flows through the firmware
// counters and instance stats like the asymmetric ops do.
func TestSymCountersAndStats(t *testing.T) {
	dev := NewDevice(DeviceSpec{Endpoints: 1})
	defer dev.Close()
	inst, err := dev.AllocInstance()
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	got := 0
	for i := 0; i < n; i++ {
		err := inst.Submit(Request{
			Op:       OpSym,
			Bytes:    4096,
			Work:     func() (any, error) { return 42, nil },
			Callback: func(r Response) { got++ },
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for got < n && time.Now().Before(deadline) {
		inst.Poll(0)
		time.Sleep(100 * time.Microsecond)
	}
	if got != n {
		t.Fatalf("retrieved %d/%d sym responses", got, n)
	}
	ctr := dev.Counters()[0]
	if ctr.Requests[OpSym] != n || ctr.Responses[OpSym] != n {
		t.Errorf("fw counters for sym = %d/%d, want %d/%d",
			ctr.Requests[OpSym], ctr.Responses[OpSym], n, n)
	}
	if OpSym.Asymmetric() {
		t.Error("OpSym must not be classified asymmetric")
	}
	if OpSym.String() != "sym" {
		t.Errorf("OpSym.String() = %q", OpSym.String())
	}
}
