package qat

import (
	"sync"
	"testing"
	"time"
)

// lcFixture builds a pool with one instance per device and a lifecycle
// manager with fast, test-sized thresholds. The watchdog is NOT started:
// tests drive tick() with synthetic timestamps so the state machine is
// exercised deterministically, without sleeps.
func lcFixture(t *testing.T, devices int, cfg LifecycleConfig) (*Pool, *Lifecycle, []*Instance, func()) {
	t.Helper()
	spec := DeviceSpec{Endpoints: 1, EnginesPerEndpoint: 1, RingCapacity: 8}
	p := NewPool(devices, spec)
	insts := make([]*Instance, devices)
	for i := range insts {
		var err error
		if insts[i], err = p.AllocInstance(i); err != nil {
			p.Close()
			t.Fatalf("alloc dev %d: %v", i, err)
		}
	}
	lc := NewLifecycle(p, cfg)
	return p, lc, insts, func() { lc.Stop(); p.Close() }
}

// recordTransitions wires a hook that appends every transition under a
// lock, so tests can assert on the exact sequence.
func recordTransitions(lc *Lifecycle) func() []Transition {
	var mu sync.Mutex
	var trs []Transition
	lc.SetOnTransition(func(tr Transition) {
		mu.Lock()
		trs = append(trs, tr)
		mu.Unlock()
	})
	return func() []Transition {
		mu.Lock()
		defer mu.Unlock()
		return append([]Transition(nil), trs...)
	}
}

// TestLifecycleBreakerDensity pins the breaker-density input: one open
// inside the window marks a device suspect, QuarantineOpens opens
// quarantine it, and a suspect whose window drains decays back to healthy.
func TestLifecycleBreakerDensity(t *testing.T) {
	cfg := LifecycleConfig{Window: 100 * time.Millisecond, SuspectOpens: 1, QuarantineOpens: 3}
	_, lc, _, cleanup := lcFixture(t, 2, cfg)
	defer cleanup()
	snap := recordTransitions(lc)

	if lc.State(0) != DevHealthy || lc.Epoch() != 0 {
		t.Fatalf("fresh lifecycle: state %v epoch %d", lc.State(0), lc.Epoch())
	}
	lc.NoteBreakerOpen(0)
	if lc.State(0) != DevSuspect {
		t.Fatalf("after 1 open: %v, want suspect", lc.State(0))
	}
	if !lc.Routable(0) || !lc.Admit(0) {
		t.Fatal("suspect device must stay routable and admitting")
	}
	lc.NoteBreakerOpen(0)
	if lc.State(0) != DevSuspect {
		t.Fatalf("after 2 opens: %v, want still suspect", lc.State(0))
	}
	lc.NoteBreakerOpen(0)
	if lc.State(0) != DevQuarantined {
		t.Fatalf("after 3 opens: %v, want quarantined", lc.State(0))
	}
	if lc.Routable(0) || lc.Admit(0) {
		t.Fatal("quarantined device must be unroutable and refuse admission")
	}
	if lc.Epoch() != 2 {
		t.Fatalf("epoch %d after two transitions, want 2", lc.Epoch())
	}
	// The other device is untouched.
	if lc.State(1) != DevHealthy {
		t.Fatalf("device 1 state %v, want healthy", lc.State(1))
	}

	// Suspect decay: device 1 trips once, then its window drains.
	lc.NoteBreakerOpen(1)
	if lc.State(1) != DevSuspect {
		t.Fatalf("device 1 after 1 open: %v, want suspect", lc.State(1))
	}
	lc.tick(time.Now().Add(cfg.Window + 50*time.Millisecond))
	if lc.State(1) != DevHealthy {
		t.Fatalf("device 1 after window drain: %v, want healthy", lc.State(1))
	}

	trs := snap()
	want := []struct {
		dev    int
		from   DeviceState
		to     DeviceState
		reason LifecycleReason
	}{
		{0, DevHealthy, DevSuspect, ReasonBreakerDensity},
		{0, DevSuspect, DevQuarantined, ReasonBreakerDensity},
		{1, DevHealthy, DevSuspect, ReasonBreakerDensity},
		{1, DevSuspect, DevHealthy, ReasonDecay},
	}
	if len(trs) != len(want) {
		t.Fatalf("transitions %v, want %d of them", trs, len(want))
	}
	for i, w := range want {
		got := trs[i]
		if got.Dev != w.dev || got.From != w.from || got.To != w.to || got.Reason != w.reason {
			t.Fatalf("transition %d = %+v, want %+v", i, got, w)
		}
	}
}

// TestLifecycleQuarantineDrains pins the drain: entering quarantine resets
// the device so parked in-flight ops fail with ErrDeviceReset (the
// engine's fallback path absorbs them live), and the drain's own reset is
// folded into the storm baseline so it cannot re-trigger detection.
func TestLifecycleQuarantineDrains(t *testing.T) {
	p, lc, insts, cleanup := lcFixture(t, 1, LifecycleConfig{ResetStorm: 1})
	defer cleanup()

	// One op executing (blocked in Work), three parked on the rings.
	block := make(chan struct{})
	var mu sync.Mutex
	var drained int
	for k := 0; k < 4; k++ {
		err := insts[0].Submit(Request{
			Op:   OpRSA,
			Work: func() (any, error) { <-block; return nil, nil },
			Callback: func(r Response) {
				if r.Err == ErrDeviceReset {
					mu.Lock()
					drained++
					mu.Unlock()
				}
			},
		})
		if err != nil {
			t.Fatalf("submit %d: %v", k, err)
		}
	}

	resetsBefore := sumResets(p.Device(0))
	lc.Quarantine(0, ReasonManual)
	if lc.State(0) != DevQuarantined {
		t.Fatalf("state %v, want quarantined", lc.State(0))
	}
	if got := sumResets(p.Device(0)); got <= resetsBefore {
		t.Fatalf("quarantine did not reset the device: resets %d -> %d", resetsBefore, got)
	}

	// Let the engine flush the stale requests and the blocked one through.
	close(block)
	deadline := time.Now().Add(2 * time.Second)
	for {
		insts[0].Poll(0)
		mu.Lock()
		n := drained
		mu.Unlock()
		if n >= 3 && insts[0].Inflight() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain incomplete: %d ErrDeviceReset responses, %d inflight", n, insts[0].Inflight())
		}
		time.Sleep(time.Millisecond)
	}

	// The drain reset must not feed the storm detector: probation and a
	// successful probe later, the device stays healthy through a tick.
	lc.mu.Lock()
	trs := lc.transitionLocked(0, DevHealthy, ReasonManual, time.Now())
	lc.mu.Unlock()
	lc.fire(trs)
	lc.tick(time.Now())
	if lc.State(0) != DevHealthy {
		t.Fatalf("drain reset re-triggered storm detection: state %v", lc.State(0))
	}
}

// TestLifecycleProbationCycle pins quarantine → probation → healthy (and
// the probe-failure edge back to quarantine): the probation timer, the
// 1-in-ProbeTrickle admission trickle, and probe scoring via NoteResult.
func TestLifecycleProbationCycle(t *testing.T) {
	cfg := LifecycleConfig{
		ProbationAfter: 50 * time.Millisecond,
		ProbeTrickle:   4,
		ProbeSuccesses: 2,
	}
	_, lc, _, cleanup := lcFixture(t, 1, cfg)
	defer cleanup()
	snap := recordTransitions(lc)

	lc.Quarantine(0, ReasonManual)
	// Before the dwell elapses the device stays quarantined.
	lc.tick(time.Now().Add(10 * time.Millisecond))
	if lc.State(0) != DevQuarantined {
		t.Fatalf("probation began early: %v", lc.State(0))
	}
	lc.tick(time.Now().Add(cfg.ProbationAfter + 10*time.Millisecond))
	if lc.State(0) != DevProbation {
		t.Fatalf("after dwell: %v, want probation", lc.State(0))
	}
	if !lc.Routable(0) {
		t.Fatal("probation device must be routable (it needs probe traffic)")
	}
	// The trickle admits exactly 1 in ProbeTrickle decisions.
	admitted := 0
	for i := 0; i < 2*cfg.ProbeTrickle; i++ {
		if lc.Admit(0) {
			admitted++
		}
	}
	if admitted != 2 {
		t.Fatalf("trickle admitted %d of %d, want 2", admitted, 2*cfg.ProbeTrickle)
	}

	// Two clean probes re-admit the device.
	lc.NoteResult(0, true)
	if lc.State(0) != DevProbation {
		t.Fatalf("one probe short of re-admission: %v", lc.State(0))
	}
	lc.NoteResult(0, true)
	if lc.State(0) != DevHealthy {
		t.Fatalf("after %d clean probes: %v, want healthy", cfg.ProbeSuccesses, lc.State(0))
	}
	// Results outside probation are ignored.
	lc.NoteResult(0, false)
	if lc.State(0) != DevHealthy {
		t.Fatalf("NoteResult outside probation changed state to %v", lc.State(0))
	}

	// A failed probe sends the device straight back to quarantine.
	lc.Quarantine(0, ReasonManual)
	lc.tick(time.Now().Add(cfg.ProbationAfter + 10*time.Millisecond))
	if lc.State(0) != DevProbation {
		t.Fatalf("second probation: %v", lc.State(0))
	}
	lc.NoteResult(0, false)
	if lc.State(0) != DevQuarantined {
		t.Fatalf("failed probe: %v, want quarantined", lc.State(0))
	}

	// So does a breaker opening mid-probation.
	lc.tick(time.Now().Add(cfg.ProbationAfter + 10*time.Millisecond))
	if lc.State(0) != DevProbation {
		t.Fatalf("third probation: %v", lc.State(0))
	}
	lc.NoteBreakerOpen(0)
	if lc.State(0) != DevQuarantined {
		t.Fatalf("breaker open during probation: %v, want quarantined", lc.State(0))
	}

	reasons := []LifecycleReason{}
	for _, tr := range snap() {
		reasons = append(reasons, tr.Reason)
	}
	want := []LifecycleReason{ReasonManual, ReasonProbation, ReasonProbeOK,
		ReasonManual, ReasonProbation, ReasonProbeFail,
		ReasonProbation, ReasonProbeFail}
	if len(reasons) != len(want) {
		t.Fatalf("transition reasons %v, want %v", reasons, want)
	}
	for i := range want {
		if reasons[i] != want[i] {
			t.Fatalf("transition reasons %v, want %v", reasons, want)
		}
	}
}

// TestLifecycleWedgeWatchdog pins the wedge input: in-flight work with no
// completions for WedgeTimeout quarantines the device, while an idle
// device (or one making progress) never trips it.
func TestLifecycleWedgeWatchdog(t *testing.T) {
	cfg := LifecycleConfig{WedgeTimeout: 50 * time.Millisecond}
	_, lc, insts, cleanup := lcFixture(t, 2, cfg)
	defer cleanup()

	block := make(chan struct{})
	defer close(block)
	if err := insts[0].Submit(Request{Op: OpRSA, Work: func() (any, error) { <-block; return nil, nil }}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	lc.tick(start) // arms the progress baseline; not yet past the deadline
	if lc.State(0) != DevHealthy {
		t.Fatalf("wedge fired before deadline: %v", lc.State(0))
	}
	lc.tick(start.Add(cfg.WedgeTimeout + 10*time.Millisecond))
	if lc.State(0) != DevQuarantined {
		t.Fatalf("wedged device state %v, want quarantined", lc.State(0))
	}
	// Device 1 is idle the whole time: no inflight means no wedge, however
	// long the clock advances.
	lc.tick(start.Add(time.Hour))
	if lc.State(1) != DevHealthy {
		t.Fatalf("idle device state %v, want healthy", lc.State(1))
	}
}

// TestLifecycleResetStorm pins the reset-storm input: ResetStorm endpoint
// resets inside the window quarantine the device on the next tick.
func TestLifecycleResetStorm(t *testing.T) {
	cfg := LifecycleConfig{ResetStorm: 2}
	p, lc, _, cleanup := lcFixture(t, 2, cfg)
	defer cleanup()
	snap := recordTransitions(lc)

	p.Device(0).Reset()
	lc.tick(time.Now())
	if lc.State(0) != DevHealthy {
		t.Fatalf("one reset quarantined the device: %v", lc.State(0))
	}
	p.Device(0).Reset()
	lc.tick(time.Now())
	if lc.State(0) != DevQuarantined {
		t.Fatalf("after %d resets: %v, want quarantined", cfg.ResetStorm, lc.State(0))
	}
	trs := snap()
	if len(trs) != 1 || trs[0].Reason != ReasonResetStorm {
		t.Fatalf("transitions %v, want one reset-storm quarantine", trs)
	}
}

// TestLifecycleStartStop smoke-tests the real watchdog goroutine: Start is
// idempotent, Stop joins it, and a storm is detected without manual ticks.
func TestLifecycleStartStop(t *testing.T) {
	cfg := LifecycleConfig{ResetStorm: 1, PollInterval: 5 * time.Millisecond}
	p, lc, _, cleanup := lcFixture(t, 1, cfg)
	defer cleanup()

	lc.Start()
	lc.Start() // idempotent
	p.Device(0).Reset()
	deadline := time.Now().Add(2 * time.Second)
	for lc.State(0) != DevQuarantined {
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never quarantined the device: %v", lc.State(0))
		}
		time.Sleep(time.Millisecond)
	}
	lc.Stop()
	lc.Stop() // idempotent
}

// TestPoolRoutingAllQuarantined pins the no-device path the whole stack
// sheds on: with every device quarantined, Pick and RouteConn return -1
// (the ErrNoDevice sentinel) instead of hanging work on a corpse — and
// routing resumes, back at the original home, once a device recovers.
func TestPoolRoutingAllQuarantined(t *testing.T) {
	p, lc, _, cleanup := lcFixture(t, 3, LifecycleConfig{})
	defer cleanup()

	// Quarantine device 1 only: Pick skips it, RouteConn walks forward.
	lc.Quarantine(1, ReasonManual)
	if got := p.Pick([]int{1}); got == 1 || got < 0 {
		t.Fatalf("Pick({1}) with dev1 quarantined = %d, want failover to a healthy device", got)
	}
	// hash 4 % 3 == 1: home is quarantined, the walk lands on 2 — and the
	// same hash returns home once device 1 recovers (re-home-back).
	if got := p.RouteConn(4); got != 2 {
		t.Fatalf("RouteConn(4) with dev1 quarantined = %d, want 2", got)
	}
	if got := p.RouteConn(3); got != 0 {
		t.Fatalf("RouteConn(3) (healthy home) = %d, want 0", got)
	}

	lc.Quarantine(0, ReasonManual)
	lc.Quarantine(2, ReasonManual)
	if got := p.Pick(nil); got != -1 {
		t.Fatalf("Pick(nil) all-quarantined = %d, want -1", got)
	}
	if got := p.Pick([]int{0, 1, 2}); got != -1 {
		t.Fatalf("Pick(preferred) all-quarantined = %d, want -1", got)
	}
	if got := p.RouteConn(4); got != -1 {
		t.Fatalf("RouteConn all-quarantined = %d, want -1", got)
	}
	if ErrNoDevice == nil || ErrNoDevice.Error() == "" {
		t.Fatal("ErrNoDevice sentinel missing")
	}
	health := p.Health()
	for i, h := range health {
		if h.State != DevQuarantined {
			t.Fatalf("Health()[%d].State = %v, want quarantined", i, h.State)
		}
	}

	// Recovery: device 1 comes back, the conn re-homes to its original home.
	lc.mu.Lock()
	trs := lc.transitionLocked(1, DevHealthy, ReasonManual, time.Now())
	lc.mu.Unlock()
	lc.fire(trs)
	if got := p.RouteConn(4); got != 1 {
		t.Fatalf("RouteConn(4) after recovery = %d, want home device 1", got)
	}
	if got := p.Pick(nil); got != 1 {
		t.Fatalf("Pick(nil) after recovery = %d, want 1", got)
	}
}
