package engine

import (
	"errors"
	"sort"
	"sync/atomic"
	"time"

	"qtls/internal/qat"
	"qtls/internal/trace"
)

// This file is the engine's submit coalescer: the submit-side dual of the
// heuristic polling scheme (§3.3). Where heuristic polling amortizes
// response retrieval by batching ring reads, the coalescer amortizes
// submission by gathering the ops that pause within one event-loop
// iteration and pushing them onto the request rings in batches — one ring
// lock and one doorbell per batch (qat.Instance.SubmitBatch) instead of
// one per op. The worker flushes at the same points it drains the async
// notification queue, so an op coalesced in iteration N is on the rings
// before iteration N+1 sleeps.
//
// Only the async modes coalesce. The straight-offload path busy-waits for
// its own response inside the crypto call, so deferring its submission to
// the end of the iteration would wait on a request that never left the
// queue.

// pendingSubmit is one op gathered for the next flush. The accepted and
// fail hooks run on the worker goroutine during Flush; the op's owner (a
// paused fiber or a stack-async state flag) is never running at that
// point, so the hooks may write its locals without synchronization.
type pendingSubmit struct {
	req     qat.Request
	settled *atomic.Bool
	// accepted runs when the request lands on instance idx inside a
	// batch; submitAt is the batch's submit timestamp.
	accepted func(idx int, submitAt time.Time)
	// fail runs when the flush could not place the request anywhere and
	// requeueing is pointless (no healthy instance, or a device-level
	// submission error). The request was never on a ring: fail must not
	// touch inflight accounting.
	fail func(error)
}

// coalescing reports whether async submissions are being gathered.
func (e *Engine) coalescing() bool { return e.coalesce }

// enqueue adds one op to its class's pending queue for the next flush.
func (e *Engine) enqueue(class Class, ps *pendingSubmit) {
	e.pendingQ[class] = append(e.pendingQ[class], ps)
	e.pendingN.Add(1)
}

// PendingSubmits returns the number of ops gathered and not yet flushed.
// The worker uses it to avoid sleeping on a non-empty submit queue.
func (e *Engine) PendingSubmits() int { return int(e.pendingN.Load()) }

// Flush drains the pending queues onto the request rings in batches and
// returns the number of ops submitted. The worker calls it wherever it
// drains the async notification queue. Ops that fit nowhere because every
// admitted ring is full stay queued for the next flush (one ring-full
// count per flush, not per op); ops that cannot ever be placed (no
// healthy instance, device-level errors on every candidate) are failed
// back to their owners, who retry or degrade to software.
func (e *Engine) Flush() int {
	if !e.coalesce || e.pendingN.Load() == 0 {
		return 0
	}
	flushed := 0
	for c := Class(0); c < numClasses; c++ {
		if len(e.pendingQ[c]) == 0 {
			continue
		}
		q := e.pendingQ[c]
		e.pendingQ[c] = nil
		e.pendingN.Add(-int64(len(q)))
		flushed += e.flushClass(c, q)
	}
	if flushed > 0 {
		e.flushes.Add(1)
		e.flushedOps.Add(int64(flushed))
		if int64(flushed) > e.maxFlush.Load() {
			e.maxFlush.Store(int64(flushed))
		}
		if e.ctrFlushes != nil {
			e.ctrFlushes.Inc()
		}
	}
	return flushed
}

// flushClass places one class's gathered ops, batching per instance with
// inflight-aware load balancing: breaker-admitted instances are tried in
// free-capacity order, each receiving a chunk sized to its free ring
// slots in one SubmitBatch call.
func (e *Engine) flushClass(class Class, q []*pendingSubmit) int {
	// Ops settled while queued (deadline scan won the CAS) are dropped:
	// their owners already degraded to software.
	live := q[:0]
	for _, ps := range q {
		if !ps.settled.Load() {
			live = append(live, ps)
		}
	}
	if len(live) == 0 {
		return 0
	}
	order := e.instancesByFreeClass(class)
	if len(order) == 0 {
		for _, ps := range live {
			ps.fail(ErrNoInstance)
		}
		return 0
	}
	flushed := 0
	ringFull := false
	var devErr error
	for _, idx := range order {
		if len(live) == 0 {
			break
		}
		inst := e.insts[idx]
		n := inst.Cap() - inst.Inflight()
		if n <= 0 {
			ringFull = true
			continue
		}
		if n > len(live) {
			n = len(live)
		}
		reqs := make([]qat.Request, n)
		for i := range reqs {
			reqs[i] = live[i].req
		}
		start := time.Now()
		acc, err := inst.SubmitBatch(reqs)
		dur := time.Since(start)
		for i := 0; i < acc; i++ {
			live[i].accepted(idx, start)
		}
		live = live[acc:]
		flushed += acc
		if acc > 0 {
			e.noteRouteClass(class, idx)
			if e.ctrBatched != nil {
				for i := 0; i < acc; i++ {
					e.ctrBatched.Inc()
				}
			}
			if e.histBatch != nil {
				e.histBatch.Observe(float64(acc))
			}
			if e.histAmort != nil {
				e.histAmort.Observe(float64(dur) / float64(acc))
			}
		}
		if err != nil {
			if errors.Is(err, qat.ErrRingFull) {
				ringFull = true
				continue
			}
			// Device-level failure (endpoint reset mid-batch): the breaker
			// hears about it and the rest of the queue spills to the next
			// instance. The accepted prefix needs nothing here — its
			// responses arrive as retryable ErrDeviceReset errors.
			e.recordResult(idx, false)
			devErr = err
			continue
		}
	}
	if len(live) > 0 {
		if ringFull || devErr == nil {
			// Pure backpressure: requeue for the next flush, counting the
			// rejection once per flush rather than once per op.
			e.ringFulls.Add(1)
			e.pendingQ[class] = append(e.pendingQ[class], live...)
			e.pendingN.Add(int64(len(live)))
		} else {
			for _, ps := range live {
				ps.fail(devErr)
			}
		}
	}
	return flushed
}

// instancesByFree returns breaker-admitted instance indexes sorted by
// free ring capacity, fullest-last, so batches land on the instances with
// the most headroom first.
func (e *Engine) instancesByFree() []int {
	type cand struct{ idx, free int }
	cands := make([]cand, 0, len(e.insts))
	for i, inst := range e.insts {
		if !e.instAllowed(i) {
			continue
		}
		cands = append(cands, cand{i, inst.Cap() - inst.Inflight()})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].free > cands[b].free })
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.idx
	}
	return out
}

// settleQueued accounts for an op abandoned at its deadline while still
// in the pending queue: it was never on a ring, so only the timeout is
// counted — no inflight decrement, no breaker penalty, no leak
// reclamation (nothing was submitted that could leak).
func (e *Engine) settleQueued() {
	e.timeouts.Add(1)
	if e.ctrTimeouts != nil {
		e.ctrTimeouts.Inc()
	}
}

// coalesceTag distinguishes coalesced first-attempt spans from
// resubmissions.
func coalesceTag(attempt int) trace.Tag {
	if attempt > 0 {
		return trace.TagRetry
	}
	return trace.TagCoalesce
}
