package engine

import (
	"testing"
	"time"

	"qtls/internal/fault"
	"qtls/internal/minitls"
	"qtls/internal/offload"
	"qtls/internal/qat"
)

// connHashEngine builds a conn-hash engine over a two-device pool with a
// lifecycle manager: one instance per device, home on device 0. This is
// the worker-side topology the server builds per conn-hash worker.
func connHashEngine(t *testing.T, cfg Config) (*Engine, *qat.Pool, *qat.Lifecycle) {
	t.Helper()
	spec := qat.DeviceSpec{Endpoints: 1, EnginesPerEndpoint: 2, RingCapacity: 16}
	pool := qat.NewPool(2, spec)
	t.Cleanup(pool.Close)
	insts := make([]*qat.Instance, 2)
	for d := range insts {
		var err error
		if insts[d], err = pool.AllocInstance(d); err != nil {
			t.Fatal(err)
		}
	}
	lc := qat.NewLifecycle(pool, qat.LifecycleConfig{})
	cfg.Instances = insts
	cfg.InstanceDevices = []int{0, 1}
	cfg.Placement = offload.PlacementConnHash
	cfg.HomeDevice = 0
	cfg.Lifecycle = lc
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, pool, lc
}

// TestRehome pins the live re-homing primitive: both lanes re-prefer the
// new home device and subsequent ops land there, while non-moves (same
// device, out of range, non-conn-hash placement) report false.
func TestRehome(t *testing.T) {
	e, _, _ := connHashEngine(t, Config{})
	call := &minitls.OpCall{Mode: minitls.AsyncModeOff}

	if e.HomeDevice() != 0 {
		t.Fatalf("home = %d, want 0", e.HomeDevice())
	}
	if _, err := e.Do(call, minitls.KindRSA, func() (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if got := e.LaneDevice(0); got != 0 {
		t.Fatalf("asym op routed to device %d, want home 0", got)
	}

	if e.Rehome(0) {
		t.Fatal("Rehome to the current home reported a move")
	}
	if e.Rehome(7) || e.Rehome(-1) {
		t.Fatal("Rehome out of range reported a move")
	}
	if !e.Rehome(1) {
		t.Fatal("Rehome(1) reported no move")
	}
	if e.HomeDevice() != 1 {
		t.Fatalf("home after Rehome = %d, want 1", e.HomeDevice())
	}
	for _, kind := range []minitls.OpKind{minitls.KindRSA, minitls.KindPRF} {
		if _, err := e.Do(call, kind, func() (any, error) { return 1, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.LaneDevice(0); got != 1 {
		t.Fatalf("asym op after Rehome routed to device %d, want 1", got)
	}
	if got := e.LaneDevice(1); got != 1 {
		t.Fatalf("sym op after Rehome routed to device %d, want 1", got)
	}

	// Class-shard engines never re-home (the lane split is static).
	inj := (*fault.Injector)(nil)
	cs, _ := twoDeviceEngine(t, inj, Config{})
	if cs.Rehome(1) {
		t.Fatal("class-shard engine accepted Rehome")
	}
}

// TestLifecycleAdmissionSpills pins quarantine admission control inside
// the engine: with the home device quarantined, submissions skip its
// instances and land on the healthy device; with every device quarantined
// they fall back to software — no op ever parks on a quarantined device.
func TestLifecycleAdmissionSpills(t *testing.T) {
	e, _, lc := connHashEngine(t, Config{})
	call := &minitls.OpCall{Mode: minitls.AsyncModeOff}

	lc.Quarantine(0, qat.ReasonManual)
	for i := 0; i < 4; i++ {
		if res, err := e.Do(call, minitls.KindRSA, func() (any, error) { return "sig", nil }); err != nil || res != "sig" {
			t.Fatalf("op %d under quarantine: %v, %v", i, res, err)
		}
	}
	if got := e.LaneDevice(0); got != 1 {
		t.Fatalf("ops routed to device %d with device 0 quarantined, want 1", got)
	}
	if st := e.Stats(); st.SWFallbacks != 0 {
		t.Fatalf("healthy spill device available but ops fell back to software: %+v", st)
	}

	// Total quarantine: the offload path is refused, software answers.
	lc.Quarantine(1, qat.ReasonManual)
	before := e.Stats()
	if res, err := e.Do(call, minitls.KindRSA, func() (any, error) { return "sw", nil }); err != nil || res != "sw" {
		t.Fatalf("op with all devices quarantined: %v, %v", res, err)
	}
	if after := e.Stats(); after.SWFallbacks != before.SWFallbacks+1 {
		t.Fatalf("all-quarantined op did not fall back to software: before %+v after %+v", before, after)
	}
}

// TestBreakerFeedsLifecycle pins the breaker→lifecycle wiring: injected
// stalls open the instance breaker, the engine reports the open to the
// lifecycle manager, and the sick device leaves the healthy state.
func TestBreakerFeedsLifecycle(t *testing.T) {
	spec := qat.DeviceSpec{Endpoints: 1, EnginesPerEndpoint: 2, RingCapacity: 16}
	faulted := spec
	faulted.Injector = fault.NewInjector(1, fault.Rule{
		Kind: fault.Stall, Endpoint: fault.AnyEndpoint, Op: int(qat.OpRSA), P: 1,
	})
	pool := qat.PoolOf(qat.NewDevice(faulted), qat.NewDevice(spec))
	t.Cleanup(pool.Close)
	insts := make([]*qat.Instance, 2)
	for d := range insts {
		var err error
		if insts[d], err = pool.AllocInstance(d); err != nil {
			t.Fatal(err)
		}
	}
	lc := qat.NewLifecycle(pool, qat.LifecycleConfig{SuspectOpens: 1, QuarantineOpens: 1})
	e, err := New(Config{
		Instances:       insts,
		InstanceDevices: []int{0, 1},
		Placement:       offload.PlacementConnHash,
		HomeDevice:      0,
		Lifecycle:       lc,
		OpTimeout:       5 * time.Millisecond,
		Breaker: &fault.BreakerConfig{
			Window: 4, MinSamples: 2, ProbeCount: 1, Cooldown: time.Hour,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	call := &minitls.OpCall{Mode: minitls.AsyncModeOff}
	for i := 0; i < 10 && lc.State(0) == qat.DevHealthy; i++ {
		if _, err := e.Do(call, minitls.KindRSA, func() (any, error) { return "sig", nil }); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if lc.State(0) != qat.DevQuarantined {
		t.Fatalf("device 0 state %v after breaker opened, want quarantined", lc.State(0))
	}
	if lc.State(1) != qat.DevHealthy {
		t.Fatalf("device 1 state %v, want healthy", lc.State(1))
	}
}
