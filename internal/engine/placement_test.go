package engine

import (
	"testing"
	"time"

	"qtls/internal/fault"
	"qtls/internal/flight"
	"qtls/internal/minitls"
	"qtls/internal/offload"
	"qtls/internal/qat"
)

// twoDeviceEngine builds an engine over two devices — device 0 carrying
// the given injector, device 1 healthy — with one instance on each and
// class-shard placement (asym lane prefers device 0, sym lane device 1).
func twoDeviceEngine(t *testing.T, inj *fault.Injector, cfg Config) (*Engine, [2]*qat.Device) {
	t.Helper()
	spec := qat.DeviceSpec{Endpoints: 1, EnginesPerEndpoint: 2, RingCapacity: 16}
	faulted := spec
	faulted.Injector = inj
	dev0, dev1 := qat.NewDevice(faulted), qat.NewDevice(spec)
	t.Cleanup(dev0.Close)
	t.Cleanup(dev1.Close)
	i0, err := dev0.AllocInstance()
	if err != nil {
		t.Fatal(err)
	}
	i1, err := dev1.AllocInstance()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Instances = []*qat.Instance{i0, i1}
	cfg.InstanceDevices = []int{0, 1}
	cfg.Placement = offload.PlacementClassShard
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, [2]*qat.Device{dev0, dev1}
}

// TestPlacementLanePreference checks the static routing: under
// class-shard with two devices, asym ops land on device 0 and sym-lane
// ops (PRF) on device 1, and the flush ordering partitions the same way.
func TestPlacementLanePreference(t *testing.T) {
	e, _ := twoDeviceEngine(t, nil, Config{})
	call := &minitls.OpCall{Mode: minitls.AsyncModeOff}
	if _, err := e.Do(call, minitls.KindRSA, func() (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if got := e.LaneDevice(flight.PlacementAsym); got != 0 {
		t.Fatalf("asym lane routed to device %d, want 0", got)
	}
	if _, err := e.Do(call, minitls.KindPRF, func() (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if got := e.LaneDevice(flight.PlacementSym); got != 1 {
		t.Fatalf("sym lane routed to device %d, want 1", got)
	}
	if st := e.Stats(); st.PlacementFlips != 0 {
		t.Fatalf("healthy routing flipped placement: %+v", st)
	}
	// The coalescer's candidate order partitions preferred-first.
	if order := e.instancesByFreeClass(ClassAsym); order[0] != 0 {
		t.Fatalf("asym flush order = %v, want instance 0 first", order)
	}
	if order := e.instancesByFreeClass(ClassPRF); order[0] != 1 {
		t.Fatalf("sym flush order = %v, want instance 1 first", order)
	}
}

// TestPlacementFailoverAcrossDevices is the cross-device failover
// scenario: injected stalls on device 0 time out the asym lane's ops,
// the instance breaker opens, the engine re-routes the class to device 1
// and the flight journal records the placement flip.
func TestPlacementFailoverAcrossDevices(t *testing.T) {
	inj := fault.NewInjector(1, fault.Rule{
		Kind: fault.Stall, Endpoint: fault.AnyEndpoint, Op: int(qat.OpRSA), P: 1,
	})
	fr := flight.New(flight.Config{})
	fr.SetEnabled(true)
	e, _ := twoDeviceEngine(t, inj, Config{
		OpTimeout: 5 * time.Millisecond,
		Breaker: &fault.BreakerConfig{
			Window:     4,
			MinSamples: 2,
			ProbeCount: 1,
			Cooldown:   time.Hour, // stay open: no probes back to the sick device
		},
		Flight: fr.Journal(0),
	})
	call := &minitls.OpCall{Mode: minitls.AsyncModeOff}
	// Drive RSA ops until the breaker trips and the lane lands on device 1.
	for i := 0; i < 10; i++ {
		res, err := e.Do(call, minitls.KindRSA, func() (any, error) { return "sig", nil })
		if err != nil || res != "sig" {
			t.Fatalf("op %d: %v, %v", i, res, err)
		}
		if e.LaneDevice(flight.PlacementAsym) == 1 {
			break
		}
	}
	if got := e.LaneDevice(flight.PlacementAsym); got != 1 {
		t.Fatalf("asym lane stuck on device %d; stats %+v", got, e.Stats())
	}
	st := e.Stats()
	if st.Trips == 0 {
		t.Fatalf("breaker never tripped: %+v", st)
	}
	if st.PlacementFlips == 0 {
		t.Fatalf("no placement flip counted: %+v", st)
	}
	// After the re-route, ops complete on device 1 without further
	// timeouts: the class is served by the healthy device, not by
	// software fallback.
	before := e.Stats()
	for i := 0; i < 4; i++ {
		if _, err := e.Do(call, minitls.KindRSA, func() (any, error) { return "sig", nil }); err != nil {
			t.Fatal(err)
		}
	}
	after := e.Stats()
	if after.Timeouts != before.Timeouts || after.SWFallbacks != before.SWFallbacks {
		t.Fatalf("re-routed ops still degrading: before %+v after %+v", before, after)
	}
	// The journal holds the flip: asym lane, device 0 → 1.
	var flip *flight.Event
	for _, ev := range fr.Events(0) {
		if ev.Kind == flight.KindPlacement {
			ev := ev
			flip = &ev
			break
		}
	}
	if flip == nil {
		t.Fatalf("no KindPlacement event in journal: %+v", fr.Events(0))
	}
	if flip.Code != flight.PlacementAsym || flip.Dur != 0 || flip.Arg != 1 {
		t.Fatalf("placement event = %+v, want asym 0->1", flip)
	}
}
