package engine

import (
	"errors"
	"runtime"
	"sync/atomic"
	"time"

	"qtls/internal/asynclib"
	"qtls/internal/minitls"
	"qtls/internal/qat"
	"qtls/internal/trace"
)

// This file is the engine's single async submit path. Fiber vs stack
// pause mechanics and direct vs coalesced submission used to be four
// copies of the same control flow; they now differ only in injected
// behavior: submitPath owns the request construction, the settled/trace/
// in-flight bookkeeping and the submit-failure policy, and a
// pauseStrategy contributes the three points where the pause
// implementations genuinely diverge (result delivery, parking, and the
// reaction to a full ring).

// attempt is the state of one submission attempt, shared between the
// submit path, the response callback, the coalescer hooks and the
// deadline logic. The settled flag is the CAS gate between response
// delivery and deadline expiry; everything else is only touched on the
// worker goroutine or during the fiber↔worker strict handoff.
type attempt struct {
	e     *Engine
	call  *minitls.OpCall
	kind  minitls.OpKind
	class Class
	work  func() (any, error)

	n        int // attempt number (0-based)
	tag      trace.Tag
	settled  atomic.Bool
	deadline time.Time
	idx      int // instance index; -1 while queued or unplaced
	preStart time.Time
	submitAt time.Time
}

func (e *Engine) newAttempt(call *minitls.OpCall, kind minitls.OpKind, class Class, work func() (any, error), n int) *attempt {
	return &attempt{e: e, call: call, kind: kind, class: class, work: work, n: n, idx: -1}
}

// outcome says what submitPath's caller should do next.
type outcome int

const (
	// outReturn: the res/err pair is final for this Do invocation.
	outReturn outcome = iota
	// outResubmit: run another submission attempt (a.n was advanced for
	// retryable failures; ring-full resubmissions keep their count).
	outResubmit
)

// pauseStrategy is the injected behavior distinguishing the crypto pause
// implementations (§4.1): ASYNC_JOB fibers park inside the engine, stack
// ops park by returning ErrWantAsync to the event loop.
type pauseStrategy interface {
	// deliver hands a completed result (or a coalescer failure) to the
	// op's owner and fires the connection's async notification. It runs
	// with the settled CAS already won.
	deliver(a *attempt, result any, err error)
	// park suspends the op after its request was submitted or enqueued.
	park(a *attempt) (any, error, outcome)
	// ringFull reacts to a full request ring on the direct submit path
	// (§3.2 "failure of crypto submission").
	ringFull(a *attempt) (any, error, outcome)
	// retryFailed reacts to a retryable submit-time failure (e.g. a
	// device reset) — resubmit within budget, degrade past it.
	retryFailed(a *attempt) (any, error, outcome)
}

// callback builds the qat response callback: settle the op, trace the
// retrieval phase, settle the in-flight counter, deliver.
func (a *attempt) callback(s pauseStrategy) func(qat.Response) {
	return func(r qat.Response) {
		if !a.settled.CompareAndSwap(false, true) {
			return // the op already timed out and degraded
		}
		if !a.submitAt.IsZero() {
			a.e.traceRetrieve(a.kind, a.tag, a.submitAt)
		}
		a.e.onResponse(a.class)
		s.deliver(a, r.Result, r.Err)
	}
}

// settleDeadline settles an expired attempt: ops still in the coalescer
// queue were never submitted (the flush drops them), ops on a ring pay
// the full timeout accounting.
func (a *attempt) settleDeadline() {
	if a.idx < 0 {
		a.e.settleQueued()
	} else {
		a.e.settleTimeout(a.class, a.idx)
	}
}

// submitPath runs one submission attempt for an async op: build the
// request, place it (directly, or via the coalescer for the
// iteration-end batch flush), and park the op through the strategy.
func (e *Engine) submitPath(a *attempt, s pauseStrategy) (any, error, outcome) {
	if e.tracing() {
		a.preStart = time.Now()
	}
	a.tag = attemptTag(a.n)
	if e.coalescing() {
		a.tag = coalesceTag(a.n)
	}
	a.deadline = e.opDeadline()
	req := qat.Request{
		Op:       opTypeFor(a.kind),
		Work:     a.work,
		Callback: a.callback(s),
	}
	if e.coalescing() {
		// Defer the submission to the iteration-end batch flush. a.idx
		// stays -1 until the flush actually places the request on a ring.
		e.enqueue(a.class, &pendingSubmit{
			req:     req,
			settled: &a.settled,
			accepted: func(i int, at time.Time) {
				a.idx = i
				e.onSubmit(a.class)
				if !a.preStart.IsZero() {
					a.submitAt = at
					e.tracePre(a.kind, a.tag, a.preStart)
				}
			},
			fail: func(err error) {
				if !a.settled.CompareAndSwap(false, true) {
					return
				}
				s.deliver(a, nil, err)
			},
		})
		return s.park(a)
	}
	if !a.preStart.IsZero() {
		a.submitAt = time.Now()
	}
	idx, err := e.submitClass(a.class, req)
	if err != nil {
		if errors.Is(err, qat.ErrRingFull) {
			e.ringFulls.Add(1)
			return s.ringFull(a)
		}
		if errors.Is(err, ErrNoInstance) {
			res, ferr := e.swFallback(a.work)
			return res, ferr, outReturn
		}
		if retryable(err) {
			return s.retryFailed(a)
		}
		return nil, err, outReturn
	}
	a.idx = idx
	e.onSubmit(a.class)
	if !a.preStart.IsZero() {
		e.tracePre(a.kind, a.tag, a.preStart)
	}
	return s.park(a)
}

// resultAction is settleResult's verdict on a delivered result.
type resultAction int

const (
	// actReturn: hand the result (or its non-retryable error) to the TLS
	// stack.
	actReturn resultAction = iota
	// actRetry: retryable failure with retry budget left.
	actRetry
	// actFallback: degrade the operation to software.
	actFallback
)

// settleResult is the shared response epilogue: breaker accounting,
// result verification, and the retry/fallback decision. idx < 0 (the op
// never reached a ring) skips the breaker. An ErrNoInstance result means
// the coalesced flush found no healthy instance — no inflight slot, no
// breaker signal, straight to software.
func (e *Engine) settleResult(kind minitls.OpKind, idx, n int, result any, rerr error) resultAction {
	if rerr != nil {
		if errors.Is(rerr, ErrNoInstance) {
			return actFallback
		}
		e.recordResult(idx, false)
		if !retryable(rerr) {
			return actReturn
		}
	} else if !e.verifyOK(kind, result) {
		e.recordResult(idx, false)
		e.verifyFails.Add(1)
	} else {
		e.recordResult(idx, true)
		return actReturn
	}
	if n < e.maxRetry {
		return actRetry
	}
	return actFallback
}

// --- fiber strategy --------------------------------------------------------

// fiberStrategy parks the calling ASYNC_JOB (§3.2 pre-processing /
// Fig. 6): the response callback stores the result on the OpCall and
// fires the connection's notification; the application then resumes the
// job, and execution continues inside park. A resume after the op
// deadline (the worker's deadline scan) degrades the op to software
// instead of re-pausing.
type fiberStrategy struct {
	delivered bool
}

func (s *fiberStrategy) deliver(a *attempt, result any, err error) {
	a.call.SetResult(result, err)
	s.delivered = true
	if a.call.WaitCtx != nil {
		a.call.WaitCtx.Notify()
	}
}

func (s *fiberStrategy) park(a *attempt) (any, error, outcome) {
	e := a.e
	a.call.SubmitFailed = false
	a.call.SetResult(nil, nil)
	// Tolerate spurious resumes: stay paused until the response callback
	// (or the coalescer's failure hook) has delivered — unless the
	// deadline passed, in which case the op is abandoned and degraded.
	for {
		if err := a.call.Job.Pause(); err != nil {
			return nil, err, outReturn
		}
		if s.delivered {
			break
		}
		if a.call.Cancelled {
			// The connection is being torn down (lifecycle deadline or
			// drain cutoff): abandon the offload without a software
			// fallback — nothing will consume the result.
			if a.settled.CompareAndSwap(false, true) {
				a.e.settleCancel(a.class, a.idx)
				return nil, ErrCancelled, outReturn
			}
			break // lost the CAS: the response landed first, consume it
		}
		if expired(a.deadline) {
			if a.settled.CompareAndSwap(false, true) {
				a.settleDeadline()
				res, err := e.swFallback(a.work)
				return res, err, outReturn
			}
			break // lost the CAS: the response landed first
		}
	}
	result, rerr := a.call.Result()
	switch e.settleResult(a.kind, a.idx, a.n, result, rerr) {
	case actReturn:
		if rerr != nil {
			return nil, rerr, outReturn
		}
		return result, nil, outReturn
	case actRetry:
		a.n++
		e.noteRetry()
		return nil, nil, outResubmit
	default:
		res, err := e.swFallback(a.work)
		return res, err, outReturn
	}
}

func (s *fiberStrategy) ringFull(a *attempt) (any, error, outcome) {
	// Pause with the retry indication; the application reschedules this
	// handler later and we resubmit with the same attempt count.
	a.call.SubmitFailed = true
	if perr := a.call.Job.Pause(); perr != nil {
		return nil, perr, outReturn
	}
	return nil, nil, outResubmit
}

func (s *fiberStrategy) retryFailed(a *attempt) (any, error, outcome) {
	if a.n < a.e.maxRetry {
		a.n++
		a.e.noteRetry()
		return nil, nil, outResubmit
	}
	res, err := a.e.swFallback(a.work)
	return res, err, outReturn
}

// doFiber submits through submitPath until an attempt is final.
func (e *Engine) doFiber(call *minitls.OpCall, kind minitls.OpKind, class Class, work func() (any, error)) (any, error) {
	if call.Job == nil {
		return nil, errors.New("engine: fiber mode without a job")
	}
	if call.Cancelled {
		// The connection is already being torn down; refuse new
		// submissions so a cancelled handshake cannot re-park.
		return nil, ErrCancelled
	}
	for n := 0; ; {
		a := e.newAttempt(call, kind, class, work, n)
		res, err, out := e.submitPath(a, &fiberStrategy{})
		if out == outReturn {
			return res, err
		}
		n = a.n
	}
}

// --- stack strategy --------------------------------------------------------

// stackStrategy drives the stack-async state flag (Fig. 5): the op parks
// by marking the flag in flight and returning ErrWantAsync; the
// re-entered Do call (see doStack) consumes the ready result.
type stackStrategy struct {
	st *asynclib.StackOp
}

func (s *stackStrategy) deliver(a *attempt, result any, err error) {
	s.st.MarkReady(result, err)
	if a.call.WaitCtx != nil {
		a.call.WaitCtx.Notify()
	}
}

func (s *stackStrategy) park(a *attempt) (any, error, outcome) {
	s.st.MarkInflight()
	a.e.stackOps[s.st] = a
	return nil, minitls.ErrWantAsync, outReturn
}

func (s *stackStrategy) ringFull(a *attempt) (any, error, outcome) {
	s.st.MarkRetry()
	return nil, minitls.ErrWantAsyncRetry, outReturn
}

func (s *stackStrategy) retryFailed(a *attempt) (any, error, outcome) {
	if a.n >= a.e.maxRetry {
		res, err := a.e.swFallback(a.work)
		return res, err, outReturn
	}
	// A submit-time reset: surface the retry to the event loop, which
	// re-invokes us with the state flag set to retry.
	a.e.noteRetry()
	s.st.MarkRetry()
	return nil, minitls.ErrWantAsyncRetry, outReturn
}

// doStack handles the stack-async re-entries around submitPath: first
// entry submits and returns ErrWantAsync; the re-entered call consumes
// the ready result. A re-entry while the op is still inflight past its
// deadline (the worker's deadline scan) abandons the offload and
// degrades to software.
func (e *Engine) doStack(call *minitls.OpCall, kind minitls.OpKind, class Class, work func() (any, error)) (any, error) {
	st := call.Stack
	if st == nil {
		return nil, errors.New("engine: stack mode without a StackOp")
	}
	if call.Cancelled {
		return nil, e.cancelStack(st)
	}
	n := 0
	switch st.State() {
	case asynclib.StackReady:
		a := e.stackOps[st]
		delete(e.stackOps, st)
		idx := -1
		if a != nil {
			idx, n = a.idx, a.n
		}
		result, rerr := st.Consume()
		switch e.settleResult(kind, idx, n, result, rerr) {
		case actReturn:
			if rerr != nil {
				return nil, rerr
			}
			return result, nil
		case actFallback:
			return e.swFallback(work)
		}
		n++
		e.noteRetry()
		// Fall through to resubmission: Consume reset the op to idle.
	case asynclib.StackInflight:
		a := e.stackOps[st]
		if a == nil {
			return nil, errors.New("engine: stack op already in flight")
		}
		if expired(a.deadline) && a.settled.CompareAndSwap(false, true) {
			delete(e.stackOps, st)
			a.settleDeadline()
			st.Reset()
			return e.swFallback(work)
		}
		// Spurious re-entry before the deadline (e.g. the worker's
		// deadline scan firing early): keep waiting for the response.
		return nil, minitls.ErrWantAsync
	}
	// State idle or retry: submit.
	res, err, _ := e.submitPath(e.newAttempt(call, kind, class, work, n), &stackStrategy{st: st})
	return res, err
}

// cancelStack abandons a stack-async op in whatever state it is in: an
// inflight op settles with cancel accounting, a delivered-but-unconsumed
// result is discarded, and the state flag resets to idle so the StackOp
// could be reused.
func (e *Engine) cancelStack(st *asynclib.StackOp) error {
	switch st.State() {
	case asynclib.StackReady:
		delete(e.stackOps, st)
		st.Consume() // discard: the result has no consumer
	case asynclib.StackInflight:
		if a := e.stackOps[st]; a != nil && a.settled.CompareAndSwap(false, true) {
			e.settleCancel(a.class, a.idx)
		}
		delete(e.stackOps, st)
		st.Reset()
	default:
		st.Reset()
	}
	return ErrCancelled
}

// --- straight offload ------------------------------------------------------

// doStraight is the straight offload mode (§2.4, Fig. 3): replace the
// crypto function call with an offload I/O call and busy-wait for the
// response. The worker core spins, and at most one engine computes for
// this worker at any time — the blocking the paper measures. It shares
// the result epilogue (settleResult) with the async paths but keeps its
// own submission loop: it must submit immediately and block, so neither
// pause strategy nor the coalescer applies.
func (e *Engine) doStraight(call *minitls.OpCall, kind minitls.OpKind, class Class, work func() (any, error)) (any, error) {
	for n := 0; ; n++ {
		deadline := e.opDeadline()
		var done atomic.Bool
		var settled atomic.Bool
		var result any
		var resultErr error
		var preStart, submitAt time.Time
		if e.tracing() {
			preStart = time.Now()
		}
		req := qat.Request{
			Op:   opTypeFor(kind),
			Work: work,
			Callback: func(r qat.Response) {
				if !settled.CompareAndSwap(false, true) {
					return // late response for an op already degraded
				}
				if !submitAt.IsZero() {
					e.traceRetrieve(kind, attemptTag(n), submitAt)
				}
				result, resultErr = r.Result, r.Err
				e.onResponse(class)
				done.Store(true)
			},
		}
		if !preStart.IsZero() {
			submitAt = time.Now()
		}
		idx, err := e.submitClass(class, req)
		for err != nil && errors.Is(err, qat.ErrRingFull) {
			e.ringFulls.Add(1)
			e.pollAll(0)
			if expired(deadline) {
				// The ring stays full past the deadline — leaked slots
				// from a stalled engine. Reclaim and degrade.
				e.reclaimLeaked()
				return e.swFallback(work)
			}
			if !preStart.IsZero() {
				submitAt = time.Now()
			}
			idx, err = e.submitClass(class, req)
		}
		if err != nil {
			if errors.Is(err, ErrNoInstance) {
				return e.swFallback(work)
			}
			if retryable(err) {
				if n < e.maxRetry {
					e.noteRetry()
					e.retrySleep(n)
					continue
				}
				return e.swFallback(work)
			}
			return nil, err
		}
		e.onSubmit(class)
		if !preStart.IsZero() {
			e.tracePre(kind, attemptTag(n), preStart)
		}
		for !done.Load() {
			if e.pollAll(0) == 0 {
				runtime.Gosched()
			}
			if expired(deadline) && settled.CompareAndSwap(false, true) {
				e.settleTimeout(class, idx)
				return e.swFallback(work)
			}
		}
		switch e.settleResult(kind, idx, n, result, resultErr) {
		case actReturn:
			if resultErr != nil {
				return nil, resultErr
			}
			return result, nil
		case actRetry:
			e.noteRetry()
			e.retrySleep(n)
			continue
		default:
			return e.swFallback(work)
		}
	}
}
