package engine

import (
	"errors"
	"net"
	"testing"
	"time"

	"qtls/internal/asynclib"
	"qtls/internal/fault"
	"qtls/internal/minitls"
	"qtls/internal/qat"
)

func newCoalescedEngine(t *testing.T, spec qat.DeviceSpec, cfg Config) (*Engine, *qat.Device) {
	t.Helper()
	dev := qat.NewDevice(spec)
	t.Cleanup(dev.Close)
	inst, err := dev.AllocInstance()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Instance = inst
	cfg.Coalesce = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, dev
}

// drainStack polls until every call's stack op is ready and consumes it,
// flushing between polls like the worker would.
func drainStack(t *testing.T, e *Engine, calls []*minitls.OpCall, kind minitls.OpKind) []any {
	t.Helper()
	results := make([]any, len(calls))
	consumed := make([]bool, len(calls))
	done := 0
	deadline := time.Now().Add(10 * time.Second)
	for done < len(calls) {
		e.Flush()
		e.Poll(0)
		for i, call := range calls {
			if consumed[i] || call.Stack.State() != asynclib.StackReady {
				continue
			}
			res, err := e.Do(call, kind, func() (any, error) { return i, nil })
			if errors.Is(err, minitls.ErrWantAsync) || errors.Is(err, minitls.ErrWantAsyncRetry) {
				continue // resubmitted after a retryable failure
			}
			if err != nil {
				t.Fatalf("consume %d: %v", i, err)
			}
			results[i] = res
			consumed[i] = true
			done++
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d completed", done, len(calls))
		}
		time.Sleep(50 * time.Microsecond)
	}
	return results
}

// Ops paused in one iteration ride one doorbell: the coalescer holds them
// until Flush, which places them in a single batch.
func TestCoalesceStackFlush(t *testing.T) {
	e, dev := newCoalescedEngine(t, qat.DeviceSpec{
		Endpoints: 1, EnginesPerEndpoint: 8, RingCapacity: 64,
	}, Config{})
	const ops = 12
	calls := make([]*minitls.OpCall, ops)
	for i := range calls {
		i := i
		calls[i] = &minitls.OpCall{Mode: minitls.AsyncModeStack, Stack: newStack()}
		if _, err := e.Do(calls[i], minitls.KindRSA, func() (any, error) { return i, nil }); !errors.Is(err, minitls.ErrWantAsync) {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	// Nothing on the device yet: the ops are gathered, not submitted.
	if got := e.PendingSubmits(); got != ops {
		t.Fatalf("PendingSubmits = %d, want %d", got, ops)
	}
	if e.InflightTotal() != 0 || dev.Counters()[0].TotalRequests() != 0 {
		t.Fatalf("ops reached the device before Flush (inflight %d)", e.InflightTotal())
	}
	if n := e.Flush(); n != ops {
		t.Fatalf("Flush = %d, want %d", n, ops)
	}
	if e.PendingSubmits() != 0 || e.InflightTotal() != ops {
		t.Fatalf("after flush: pending=%d inflight=%d", e.PendingSubmits(), e.InflightTotal())
	}
	ist := e.Instances()[0].Stats()
	if ist.Doorbells != 1 || ist.SubmitBatches != 1 || ist.BatchSubmitted != ops || ist.MaxSubmitBatch != ops {
		t.Fatalf("instance stats = %+v (want one doorbell for the whole batch)", ist)
	}
	results := drainStack(t, e, calls, minitls.KindRSA)
	for i, r := range results {
		if r != i {
			t.Fatalf("result[%d] = %v", i, r)
		}
	}
	st := e.Stats()
	if st.Flushes != 1 || st.FlushedOps != ops || st.MaxFlush != ops || st.Submitted != ops || st.Retrieved != ops {
		t.Fatalf("engine stats = %+v", st)
	}
	if e.InflightTotal() != 0 {
		t.Fatalf("inflight after drain = %d", e.InflightTotal())
	}
}

// A flush against full rings requeues the leftovers — counting ring-full
// once per flush, not once per op — and the next flush places them.
func TestCoalesceRingFullRequeue(t *testing.T) {
	block := make(chan struct{})
	e, _ := newCoalescedEngine(t, qat.DeviceSpec{
		Endpoints: 1, EnginesPerEndpoint: 1, RingCapacity: 2,
	}, Config{})
	const ops = 5
	calls := make([]*minitls.OpCall, ops)
	for i := range calls {
		calls[i] = &minitls.OpCall{Mode: minitls.AsyncModeStack, Stack: newStack()}
		if _, err := e.Do(calls[i], minitls.KindPRF, func() (any, error) { <-block; return nil, nil }); !errors.Is(err, minitls.ErrWantAsync) {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if n := e.Flush(); n != 2 {
		t.Fatalf("Flush = %d, want ring capacity 2", n)
	}
	if got := e.PendingSubmits(); got != 3 {
		t.Fatalf("PendingSubmits = %d, want 3 requeued", got)
	}
	st := e.Stats()
	if st.RingFulls != 1 {
		t.Fatalf("RingFulls = %d, want exactly 1 per flush", st.RingFulls)
	}
	// A second flush against the still-full ring makes no progress and
	// adds exactly one more ring-full count.
	if n := e.Flush(); n != 0 {
		t.Fatalf("second Flush = %d, want 0", n)
	}
	if st := e.Stats(); st.RingFulls != 2 {
		t.Fatalf("RingFulls = %d, want 2", st.RingFulls)
	}
	close(block)
	// Drain and let the remaining ops flush in.
	deadline := time.Now().Add(10 * time.Second)
	for e.PendingSubmits() > 0 || e.InflightTotal() > 0 {
		e.Poll(0)
		e.Flush()
		if time.Now().After(deadline) {
			t.Fatalf("stuck: pending=%d inflight=%d", e.PendingSubmits(), e.InflightTotal())
		}
		time.Sleep(50 * time.Microsecond)
	}
	if st := e.Stats(); st.Submitted != ops {
		t.Fatalf("Submitted = %d, want %d (no loss, no double-submit)", st.Submitted, ops)
	}
}

// When every instance is circuit-broken the flush fails the gathered ops
// back to their owners, who degrade to software — with no inflight slot
// ever taken and no double count anywhere.
func TestCoalesceNoHealthyInstance(t *testing.T) {
	e, dev := newCoalescedEngine(t, qat.DeviceSpec{Endpoints: 1}, Config{
		Breaker: &fault.BreakerConfig{},
	})
	// Trip the only instance's breaker.
	now := time.Now()
	for i := 0; i < 100; i++ {
		e.breakers[0].RecordFailure(now)
	}
	if e.breakers[0].Allow(time.Now()) {
		t.Skip("breaker did not open; config defaults changed")
	}
	call := &minitls.OpCall{Mode: minitls.AsyncModeStack, Stack: newStack()}
	if _, err := e.Do(call, minitls.KindRSA, func() (any, error) { return "sw", nil }); !errors.Is(err, minitls.ErrWantAsync) {
		t.Fatal(err)
	}
	if n := e.Flush(); n != 0 {
		t.Fatalf("Flush = %d, want 0", n)
	}
	// The fail path marked the op ready with ErrNoInstance; re-entry
	// degrades to software.
	if call.Stack.State() != asynclib.StackReady {
		t.Fatalf("stack state = %v, want ready", call.Stack.State())
	}
	res, err := e.Do(call, minitls.KindRSA, func() (any, error) { return "sw", nil })
	if err != nil || res != "sw" {
		t.Fatalf("Do = %v, %v", res, err)
	}
	st := e.Stats()
	if st.SWFallbacks != 1 || st.Submitted != 0 {
		t.Fatalf("stats = %+v (want one fallback, zero submissions)", st)
	}
	if e.InflightTotal() != 0 {
		t.Fatalf("inflight = %d, want 0 (queued op never took a slot)", e.InflightTotal())
	}
	if dev.Counters()[0].TotalRequests() != 0 {
		t.Fatal("request reached a circuit-broken device")
	}
}

// An endpoint reset during the flush fails the accepted prefix retryably
// and spills the rest; bounded retries re-place everything.
func TestCoalesceResetMidFlush(t *testing.T) {
	inj := fault.NewInjector(1, fault.Rule{
		Kind: fault.Reset, Endpoint: fault.AnyEndpoint, Op: fault.AnyOp,
		P: 1, After: 2, Limit: 1,
	})
	e, _ := newCoalescedEngine(t, qat.DeviceSpec{
		Endpoints: 1, EnginesPerEndpoint: 4, RingCapacity: 64, Injector: inj,
	}, Config{MaxRetries: 2})
	const ops = 6
	calls := make([]*minitls.OpCall, ops)
	for i := range calls {
		i := i
		calls[i] = &minitls.OpCall{Mode: minitls.AsyncModeStack, Stack: newStack()}
		if _, err := e.Do(calls[i], minitls.KindRSA, func() (any, error) { return i, nil }); !errors.Is(err, minitls.ErrWantAsync) {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	results := drainStack(t, e, calls, minitls.KindRSA)
	for i, r := range results {
		if r != i {
			t.Fatalf("result[%d] = %v", i, r)
		}
	}
	st := e.Stats()
	if st.Retries == 0 {
		t.Fatalf("stats = %+v (reset mid-flush should force retries)", st)
	}
	if st.Submitted != st.Retrieved {
		t.Fatalf("submitted %d != retrieved %d", st.Submitted, st.Retrieved)
	}
	if e.InflightTotal() != 0 {
		t.Fatalf("inflight = %d", e.InflightTotal())
	}
	if got := inj.Injected(fault.Reset); got != 1 {
		t.Fatalf("resets injected = %d", got)
	}
}

// An op whose deadline passes while it is still queued settles as a
// timeout without an inflight decrement (it never took a slot) and the
// flush drops it instead of submitting a zombie.
func TestCoalesceQueuedDeadlineNoDoubleCount(t *testing.T) {
	e, dev := newCoalescedEngine(t, qat.DeviceSpec{Endpoints: 1}, Config{
		OpTimeout: time.Millisecond,
	})
	call := &minitls.OpCall{Mode: minitls.AsyncModeStack, Stack: newStack()}
	if _, err := e.Do(call, minitls.KindRSA, func() (any, error) { return "late", nil }); !errors.Is(err, minitls.ErrWantAsync) {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	// Deadline-scan re-entry: the op is still queued (never flushed).
	res, err := e.Do(call, minitls.KindRSA, func() (any, error) { return "late", nil })
	if err != nil || res != "late" {
		t.Fatalf("Do after deadline = %v, %v", res, err)
	}
	st := e.Stats()
	if st.Timeouts != 1 || st.SWFallbacks != 1 || st.Submitted != 0 {
		t.Fatalf("stats = %+v (want timeout+fallback, zero submissions)", st)
	}
	if e.InflightTotal() != 0 {
		t.Fatalf("inflight = %d, want 0 — queued timeout must not decrement", e.InflightTotal())
	}
	// The flush drops the settled op rather than submitting it.
	if n := e.Flush(); n != 0 {
		t.Fatalf("Flush submitted %d settled op(s)", n)
	}
	if dev.Counters()[0].TotalRequests() != 0 {
		t.Fatal("abandoned op reached the device")
	}
}

// Full fiber-mode handshake with the coalescer enabled, driven the way a
// worker drives it: flush after each handshake step, then poll. The
// handshake result must be identical to the uncoalesced path.
func TestCoalesceFiberHandshake(t *testing.T) {
	e, _ := newCoalescedEngine(t, qat.DeviceSpec{Endpoints: 1, EnginesPerEndpoint: 4}, Config{})
	runHandshake(t, e, minitls.AsyncModeFiber)
	// A single handshake is serial, so batches are small — but every op
	// must ride the batched path rather than a lone doorbell.
	ist := e.Instances()[0].Stats()
	if ist.BatchSubmitted != ist.Submits || ist.SubmitBatches == 0 {
		t.Fatalf("instance stats = %+v (handshake ops should ride batches)", ist)
	}
	if st := e.Stats(); st.Flushes == 0 || st.FlushedOps != st.Submitted {
		t.Fatalf("engine stats = %+v", st)
	}
}

// Same for stack mode.
func TestCoalesceStackHandshake(t *testing.T) {
	e, _ := newCoalescedEngine(t, qat.DeviceSpec{Endpoints: 1, EnginesPerEndpoint: 4}, Config{})
	runHandshake(t, e, minitls.AsyncModeStack)
	if st := e.Stats(); st.Flushes == 0 || st.FlushedOps != st.Submitted {
		t.Fatalf("engine stats = %+v", st)
	}
}

// runHandshake performs one client/server handshake against e with the
// worker-style drive loop: handshake step, flush, poll, repeat.
func runHandshake(t *testing.T, e *Engine, mode minitls.AsyncMode) {
	t.Helper()
	cliT, srvT := net.Pipe()
	defer cliT.Close()
	defer srvT.Close()
	var ops minitls.OpCounts
	server := minitls.Server(srvT, &minitls.Config{
		Identity:     rsaIdentity(t),
		Provider:     e,
		AsyncMode:    mode,
		CipherSuites: []uint16{minitls.TLS_RSA_WITH_AES_128_CBC_SHA},
		OpCounter:    &ops,
	})
	client := minitls.ClientConn(cliT, &minitls.Config{})
	cliErr := make(chan error, 1)
	go func() { cliErr <- client.Handshake() }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := server.Handshake()
		if err == nil {
			break
		}
		if errors.Is(err, minitls.ErrWantAsync) || errors.Is(err, minitls.ErrWantAsyncRetry) {
			e.Flush()
			for e.Poll(0) == 0 && errors.Is(err, minitls.ErrWantAsync) && e.PendingSubmits() == 0 {
				if time.Now().After(deadline) {
					t.Fatal("timed out polling for responses")
				}
				time.Sleep(50 * time.Microsecond)
			}
			continue
		}
		t.Fatalf("server handshake: %v", err)
	}
	if err := <-cliErr; err != nil {
		t.Fatalf("client: %v", err)
	}
	rsaN, _, prfN := ops.Table1Row()
	if rsaN != 1 || prfN != 4 {
		t.Fatalf("op counts RSA:%d PRF:%d — batched path must not change handshake results", rsaN, prfN)
	}
	if e.InflightTotal() != 0 || e.PendingSubmits() != 0 {
		t.Fatalf("inflight=%d pending=%d after handshake", e.InflightTotal(), e.PendingSubmits())
	}
}
