// Package engine is the QAT Engine layer of QTLS (§3.2, §4.3): the bridge
// between the TLS library (internal/minitls) and the accelerator driver
// (internal/qat). It implements minitls.Provider by submitting crypto work
// to a QAT crypto instance and either
//
//   - blocking until the response arrives — the straight offload mode
//     (QAT+S) whose offload-I/O blocking motivates the paper (§2.4); or
//   - pausing the calling offload job immediately after submission and
//     returning control to the application (the QTLS asynchronous offload
//     framework); the pre-registered response callback later delivers the
//     result and fires the connection's async notification.
//
// The engine also keeps the per-class in-flight request counters
// (Rasym, Rcipher, Rprf) that feed the heuristic polling scheme (§4.3).
//
// # Graceful degradation
//
// A sick device (stalled engine, dropped or corrupted responses, endpoint
// resets — see internal/fault) must degrade handshakes, not hang them. The
// hardening knobs in Config enable, per offloaded operation:
//
//   - a deadline (OpTimeout) after which the engine abandons the offload
//     and computes the result in software on the worker core;
//   - bounded retries with exponential backoff for retryable failures
//     (device reset, corrupted response), then software fallback;
//   - a verification hook (Verify) that detects corrupted responses
//     before they reach the TLS state machine; and
//   - a per-instance circuit breaker routing submissions away from
//     instances whose recent offloads keep failing, with half-open
//     probes to detect recovery.
//
// All knobs default to off, in which case the engine behaves exactly like
// the unhardened original.
package engine

import (
	"errors"
	"sync/atomic"
	"time"

	"qtls/internal/asynclib"
	"qtls/internal/fault"
	"qtls/internal/flight"
	"qtls/internal/metrics"
	"qtls/internal/minitls"
	"qtls/internal/offload"
	"qtls/internal/qat"
	"qtls/internal/trace"
)

// Class groups op kinds the way the heuristic polling scheme counts them.
type Class int

const (
	// ClassAsym covers RSA/ECDSA/ECDH (the slow asymmetric calculations).
	ClassAsym Class = iota
	// ClassCipher covers symmetric record protection.
	ClassCipher
	// ClassPRF covers TLS 1.2 PRF derivations.
	ClassPRF

	numClasses = 3
)

// classify maps an op kind to its in-flight counter class; ok is false
// for kinds the engine never offloads (HKDF).
func classify(kind minitls.OpKind) (Class, bool) {
	switch kind {
	case minitls.KindRSA, minitls.KindECDSA, minitls.KindECDH:
		return ClassAsym, true
	case minitls.KindCipher:
		return ClassCipher, true
	case minitls.KindPRF:
		return ClassPRF, true
	default:
		return 0, false
	}
}

func opTypeFor(kind minitls.OpKind) qat.OpType {
	switch kind {
	case minitls.KindRSA:
		return qat.OpRSA
	case minitls.KindECDSA:
		return qat.OpECDSA
	case minitls.KindECDH:
		return qat.OpECDH
	case minitls.KindPRF:
		return qat.OpPRF
	default:
		return qat.OpCipher
	}
}

// ErrNoInstance is returned (internally) when every crypto instance is
// circuit-broken; the engine then degrades the operation to software.
var ErrNoInstance = errors.New("engine: no healthy crypto instance available")

// ErrCancelled is returned when an in-flight offload is abandoned because
// its connection is being torn down (OpCall.Cancelled set via
// minitls.Conn.CancelAsync): the op's inflight slot is released and the
// instance breaker is informed, but no software fallback is computed —
// the result has no consumer.
var ErrCancelled = errors.New("engine: async operation cancelled")

// Config configures an Engine.
type Config struct {
	// Instance is the QAT crypto instance assigned to this worker
	// (one instance per Nginx worker in the paper's deployment).
	Instance *qat.Instance
	// Instances optionally assigns several crypto instances — typically
	// one per endpoint — so a single worker can employ more computation
	// engines (§2.3: "one process can be assigned with multiple QAT
	// instances from different endpoints"). Submissions round-robin
	// across instances; Poll drains all of them. Mutually additive with
	// Instance.
	Instances []*qat.Instance
	// Offload selects which op kinds are offloaded; nil means all
	// offloadable kinds (RSA, ECDSA, ECDH, PRF, Cipher). This mirrors the
	// default_algorithm directive of the SSL Engine Framework (§A.7).
	Offload []minitls.OpKind
	// Placement selects the multi-device routing mode (see placement.go).
	// The zero value, PlacementSingle, is the exact legacy single-device
	// behavior.
	Placement offload.Placement
	// InstanceDevices gives the pool device index of each instance,
	// parallel to the combined Instance+Instances list. nil means all
	// instances live on device 0 (single-device, the legacy assumption).
	InstanceDevices []int
	// HomeDevice is the conn-hash home: under PlacementConnHash both lanes
	// prefer this device and spill to the rest of the pool only when it is
	// broken or saturated. Ignored by other placements. Rehome moves it.
	HomeDevice int
	// Lifecycle, when set, threads device-lifecycle state into routing:
	// quarantined devices admit no submissions, probing devices admit a
	// trickle, breaker opens and op outcomes feed the state machine.
	Lifecycle *qat.Lifecycle

	// OpTimeout bounds the wait for each offloaded response; once
	// exceeded the engine abandons the offload, reclaims any leaked ring
	// slots and computes the result in software. 0 disables deadlines
	// (an offload can wait forever — the pre-hardening behavior).
	OpTimeout time.Duration
	// MaxRetries bounds resubmissions after a retryable failure — a
	// device reset or a response the Verify hook rejects. After the
	// budget is spent the operation falls back to software. 0 means no
	// retries: the first retryable failure degrades immediately.
	MaxRetries int
	// RetryBackoff is the pause before the first retry, doubling per
	// attempt. Only the straight-offload path sleeps (it blocks its
	// caller anyway); the async paths pace retries through the event
	// loop instead.
	RetryBackoff time.Duration
	// Verify, when set, validates every offloaded result before it is
	// delivered to the TLS stack (e.g. an RSA sign→verify round-trip).
	// Returning false marks the response corrupted, which counts as a
	// retryable failure.
	Verify func(kind minitls.OpKind, result any) bool
	// Metrics, when set, exports the degradation counters
	// qat_op_timeouts, qat_sw_fallbacks, qat_instance_trips and
	// qat_retries into the shared registry behind stub_status.
	Metrics *metrics.Registry
	// Breaker, when set, enables a per-instance circuit breaker: an
	// instance whose recent offloads keep failing is taken out of the
	// submission rotation until its half-open probes succeed.
	Breaker *fault.BreakerConfig
	// Coalesce enables the submit coalescer: async-mode submissions are
	// gathered per class as their jobs pause and pushed onto the request
	// rings in batches (one ring lock + doorbell per batch) when the
	// worker calls Flush at the end of the event-loop iteration. The
	// straight-offload path is unaffected — it busy-waits inside the
	// crypto call and must submit immediately. Off by default.
	Coalesce bool
	// Trace, when set, receives phase spans for the paper's first two
	// offload phases (pre-processing: entry → submitted; response
	// retrieval: submitted → callback). The remaining two phases
	// (notification, post-processing) are recorded by the event-loop
	// worker, which owns those boundaries. A nil or disabled buffer costs
	// one atomic load per op.
	Trace *trace.Buffer
	// Flight, when set, receives black-box events: breaker transitions
	// and software-fallback causes (timeout, cancel). A nil journal or a
	// disabled flight recorder costs one branch plus one atomic load per
	// event site.
	Flight *flight.Journal
}

// Engine implements minitls.Provider backed by one or more QAT crypto
// instances. One engine belongs to one worker goroutine; Poll must be
// called from that goroutine (response callbacks run inside Poll).
type Engine struct {
	insts   []*qat.Instance
	next    int // round-robin submission cursor
	offload [6]bool

	// Device-placement state (see placement.go). Inert under
	// PlacementSingle.
	placement      offload.Placement
	devOf          []int // device index per instance
	numDevs        int
	homeDev        int              // conn-hash home device (see Rehome)
	lc             *qat.Lifecycle   // nil when lifecycle routing is off
	lanePref       [numLanes][]bool // device → preferred, per lane
	laneInsts      [numLanes][]int  // instances on preferred devices
	laneOther      [numLanes][]int  // instances elsewhere (spill targets)
	laneCursor     [numLanes]int    // per-lane rotation cursors
	routeDev       [numLanes]atomic.Int64
	placementFlips atomic.Int64

	// Hardening configuration (see Config).
	timeout  time.Duration
	maxRetry int
	backoff  time.Duration
	verifyFn func(minitls.OpKind, any) bool
	breakers []*fault.Breaker // parallel to insts; nil when disabled

	// Stack-async ops in flight, keyed by their state flag, so a
	// deadline-driven re-entry can find the pending attempt's deadline and
	// suppression flag. Entries for connections torn down mid-flight are
	// dropped lazily when the same StackOp is reused or consumed.
	stackOps map[*asynclib.StackOp]*attempt

	// Submit coalescer state (see coalesce.go). The pending queues are
	// only touched by the worker goroutine and by fibers during their
	// strict handoff with the worker, so they need no lock.
	coalesce bool
	pendingQ [numClasses][]*pendingSubmit
	pendingN atomic.Int64

	inflight [numClasses]atomic.Int64

	// Cumulative statistics.
	submitted  atomic.Int64
	retrieved  atomic.Int64
	ringFulls  atomic.Int64
	pollsEmpty atomic.Int64
	polls      atomic.Int64

	// Degradation statistics.
	timeouts    atomic.Int64
	fallbacks   atomic.Int64
	retries     atomic.Int64
	verifyFails atomic.Int64
	trips       atomic.Int64
	cancels     atomic.Int64

	// Coalescer statistics.
	flushes    atomic.Int64
	flushedOps atomic.Int64
	maxFlush   atomic.Int64

	// Registry counters (nil without Config.Metrics).
	ctrTimeouts  *metrics.Counter
	ctrCancels   *metrics.Counter
	ctrFallbacks *metrics.Counter
	ctrTrips     *metrics.Counter
	ctrRetries   *metrics.Counter
	ctrFlushes   *metrics.Counter
	ctrBatched   *metrics.Counter
	histBatch    *metrics.Histogram // qtls_submit_batch
	histAmort    *metrics.Histogram // qtls_submit_amortized_ns

	// Phase tracing (inert when Config.Trace is nil or disabled).
	tr           *trace.Buffer
	histPre      *metrics.Histogram // qtls_phase_ns{phase="pre"}
	histRetrieve *metrics.Histogram // qtls_phase_ns{phase="retrieve"}

	// Flight-recorder journal (inert when Config.Flight is nil or the
	// recorder is disabled).
	fl *flight.Journal
}

// New creates an engine bound to its QAT instances.
func New(cfg Config) (*Engine, error) {
	e := &Engine{
		timeout:  cfg.OpTimeout,
		maxRetry: cfg.MaxRetries,
		backoff:  cfg.RetryBackoff,
		verifyFn: cfg.Verify,
		stackOps: make(map[*asynclib.StackOp]*attempt),
	}
	if cfg.Instance != nil {
		e.insts = append(e.insts, cfg.Instance)
	}
	e.insts = append(e.insts, cfg.Instances...)
	if len(e.insts) == 0 {
		return nil, errors.New("engine: at least one crypto instance is required")
	}
	if cfg.Offload == nil {
		cfg.Offload = []minitls.OpKind{
			minitls.KindRSA, minitls.KindECDSA, minitls.KindECDH,
			minitls.KindPRF, minitls.KindCipher,
		}
	}
	for _, k := range cfg.Offload {
		if k == minitls.KindHKDF {
			return nil, errors.New("engine: HKDF cannot be offloaded through the QAT Engine")
		}
		e.offload[k] = true
	}
	e.fl = cfg.Flight
	e.lc = cfg.Lifecycle
	if err := e.initPlacement(cfg); err != nil {
		return nil, err
	}
	if cfg.Breaker != nil {
		e.breakers = make([]*fault.Breaker, len(e.insts))
		for i := range e.breakers {
			e.breakers[i] = fault.NewBreaker(*cfg.Breaker)
			if e.fl != nil || e.lc != nil {
				// Journal every breaker transition (an open transition also
				// arms the flight recorder's anomaly dump trigger) and feed
				// opens into the device lifecycle's breaker-density window.
				idx := i
				e.breakers[i].SetOnTransition(func(from, to fault.BreakerState) {
					if e.fl != nil {
						e.fl.Note(flight.KindBreaker, uint8(to), trace.OpNone, int64(from), int64(idx))
					}
					if e.lc != nil && to == fault.StateOpen {
						e.lc.NoteBreakerOpen(e.devOf[idx])
					}
				})
			}
		}
	}
	e.coalesce = cfg.Coalesce
	if cfg.Metrics != nil {
		e.ctrTimeouts = cfg.Metrics.Counter("qat_op_timeouts")
		e.ctrCancels = cfg.Metrics.Counter("qat_op_cancels")
		e.ctrFallbacks = cfg.Metrics.Counter("qat_sw_fallbacks")
		e.ctrTrips = cfg.Metrics.Counter("qat_instance_trips")
		e.ctrRetries = cfg.Metrics.Counter("qat_retries")
		e.histPre = cfg.Metrics.Histogram(trace.PhaseSeriesName(trace.PhasePre))
		e.histRetrieve = cfg.Metrics.Histogram(trace.PhaseSeriesName(trace.PhaseRetrieve))
		e.ctrFlushes = cfg.Metrics.Counter("qat_submit_flushes")
		e.ctrBatched = cfg.Metrics.Counter("qat_batched_ops")
		e.histBatch = cfg.Metrics.Histogram("qtls_submit_batch")
		e.histAmort = cfg.Metrics.Histogram("qtls_submit_amortized_ns")
	}
	e.tr = cfg.Trace
	return e, nil
}

// tracing reports whether phase spans should be timestamped at all; when
// false the op paths skip even the time.Now() calls.
func (e *Engine) tracing() bool { return e.tr.Active() }

// tracePre records one pre-processing span (crypto-call entry to the
// request landing on the QAT request ring).
func (e *Engine) tracePre(kind minitls.OpKind, tag trace.Tag, start time.Time) {
	dur := time.Since(start)
	e.tr.Record(trace.PhasePre, trace.Op(opTypeFor(kind)), tag, 0, start, dur)
	if e.histPre != nil {
		e.histPre.ObserveDuration(dur)
	}
}

// traceRetrieve records one response-retrieval span (submission to the
// response callback running inside a poll). Called from the callback, on
// the polling goroutine.
func (e *Engine) traceRetrieve(kind minitls.OpKind, tag trace.Tag, submitAt time.Time) {
	dur := time.Since(submitAt)
	e.tr.Record(trace.PhaseRetrieve, trace.Op(opTypeFor(kind)), tag, 0, submitAt, dur)
	if e.histRetrieve != nil {
		e.histRetrieve.ObserveDuration(dur)
	}
}

// attemptTag distinguishes first-attempt spans from resubmissions.
func attemptTag(attempt int) trace.Tag {
	if attempt > 0 {
		return trace.TagRetry
	}
	return trace.TagNone
}

// submitIdx places the request on the next breaker-admitted instance in
// round-robin order, falling back to the other instances when a ring is
// full. It returns the index of the instance used. When every instance's
// ring is full it returns qat.ErrRingFull; when the breakers admit no
// instance at all it returns ErrNoInstance.
func (e *Engine) submitIdx(req qat.Request) (int, error) {
	var lastErr error
	tried := false
	for i := 0; i < len(e.insts); i++ {
		idx := e.next % len(e.insts)
		e.next++
		if !e.instAllowed(idx) {
			continue
		}
		tried = true
		lastErr = e.insts[idx].Submit(req)
		if lastErr == nil {
			return idx, nil
		}
		if !errors.Is(lastErr, qat.ErrRingFull) {
			// A device-level submission failure (e.g. endpoint reset) is
			// a health signal; ring-full is mere backpressure and is not.
			e.recordResult(idx, false)
			return idx, lastErr
		}
	}
	if !tried {
		return -1, ErrNoInstance
	}
	return -1, lastErr
}

func (e *Engine) instAllowed(idx int) bool {
	if e.lc != nil && !e.lc.Admit(e.devOf[idx]) {
		return false
	}
	if e.breakers == nil {
		return true
	}
	return e.breakers[idx].Allow(time.Now())
}

// recordResult feeds the instance's circuit breaker and the device
// lifecycle; idx < 0 (no instance involved) is ignored.
func (e *Engine) recordResult(idx int, ok bool) {
	if idx < 0 {
		return
	}
	if e.lc != nil {
		e.lc.NoteResult(e.devOf[idx], ok)
	}
	if e.breakers == nil {
		return
	}
	now := time.Now()
	if ok {
		e.breakers[idx].RecordSuccess(now)
		return
	}
	if e.breakers[idx].RecordFailure(now) {
		e.trips.Add(1)
		if e.ctrTrips != nil {
			e.ctrTrips.Inc()
		}
	}
}

// opDeadline returns the absolute deadline for an offload starting now
// (zero when deadlines are disabled).
func (e *Engine) opDeadline() time.Time {
	if e.timeout <= 0 {
		return time.Time{}
	}
	return time.Now().Add(e.timeout)
}

func expired(deadline time.Time) bool {
	return !deadline.IsZero() && time.Now().After(deadline)
}

// retryable reports whether err is worth a bounded resubmission.
func retryable(err error) bool {
	return errors.Is(err, qat.ErrDeviceReset)
}

// verifyOK applies the verification hook.
func (e *Engine) verifyOK(kind minitls.OpKind, result any) bool {
	if e.verifyFn == nil {
		return true
	}
	return e.verifyFn(kind, result)
}

// settleTimeout accounts for an op abandoned at its deadline: the class
// counter no longer carries it, the instance's breaker hears about the
// failure, and slots the device itself marked leaked are reclaimed so the
// ring regains capacity.
func (e *Engine) settleTimeout(class Class, idx int) {
	e.inflight[class].Add(-1)
	e.timeouts.Add(1)
	if e.ctrTimeouts != nil {
		e.ctrTimeouts.Inc()
	}
	e.fl.Note(flight.KindFallback, flight.FallbackTimeout, trace.OpNone, 0, int64(idx))
	e.recordResult(idx, false)
	e.reclaimLeaked()
}

// reclaimLeaked recovers ring slots leaked by stalled engine requests on
// every assigned instance.
func (e *Engine) reclaimLeaked() {
	for _, inst := range e.insts {
		inst.ReclaimLeaked()
	}
}

// swFallback degrades the operation to a software computation on the
// calling goroutine — slower, but the handshake completes (the paper's SW
// configuration for exactly this op).
func (e *Engine) swFallback(work func() (any, error)) (any, error) {
	e.fallbacks.Add(1)
	if e.ctrFallbacks != nil {
		e.ctrFallbacks.Inc()
	}
	return work()
}

// noteRetry accounts one resubmission attempt.
func (e *Engine) noteRetry() {
	e.retries.Add(1)
	if e.ctrRetries != nil {
		e.ctrRetries.Inc()
	}
}

// retrySleep applies exponential backoff before attempt n (0-based). Only
// the straight-offload path calls it: that path blocks its caller anyway.
func (e *Engine) retrySleep(attempt int) {
	if e.backoff <= 0 {
		return
	}
	time.Sleep(e.backoff << attempt)
}

// settleCancel accounts for an op abandoned because its connection is
// being torn down: same inflight/breaker/leak bookkeeping as a timeout
// (a cancel on a stalled device must still trip its breaker), under its
// own counter. Queued ops were never submitted, so only the cancel is
// counted — the coalescer flush drops the settled entry.
func (e *Engine) settleCancel(class Class, idx int) {
	e.cancels.Add(1)
	if e.ctrCancels != nil {
		e.ctrCancels.Inc()
	}
	e.fl.Note(flight.KindFallback, flight.FallbackCancel, trace.OpNone, 0, int64(idx))
	if idx >= 0 {
		e.inflight[class].Add(-1)
		e.recordResult(idx, false)
		e.reclaimLeaked()
	}
}

// Instances returns the engine's crypto instances.
func (e *Engine) Instances() []*qat.Instance { return e.insts }

// RingCapacity returns the summed request-ring capacity across the
// engine's crypto instances — the denominator of the admission-control
// pressure ratio (offload.OverloadPolicy).
func (e *Engine) RingCapacity() int {
	n := 0
	for _, inst := range e.insts {
		n += inst.Cap()
	}
	return n
}

// Name implements minitls.Provider.
func (e *Engine) Name() string { return "qat-engine" }

// Do implements minitls.Provider.
func (e *Engine) Do(call *minitls.OpCall, kind minitls.OpKind, work func() (any, error)) (any, error) {
	class, offloadable := classify(kind)
	if !offloadable || !e.offload[kind] {
		// Software fallback on the worker core (e.g. HKDF, or algorithms
		// excluded from default_algorithm).
		return work()
	}
	switch call.Mode {
	case minitls.AsyncModeFiber:
		return e.doFiber(call, kind, class, work)
	case minitls.AsyncModeStack:
		return e.doStack(call, kind, class, work)
	default:
		return e.doStraight(call, kind, class, work)
	}
}

var _ minitls.Provider = (*Engine)(nil)
