// Package engine is the QAT Engine layer of QTLS (§3.2, §4.3): the bridge
// between the TLS library (internal/minitls) and the accelerator driver
// (internal/qat). It implements minitls.Provider by submitting crypto work
// to a QAT crypto instance and either
//
//   - blocking until the response arrives — the straight offload mode
//     (QAT+S) whose offload-I/O blocking motivates the paper (§2.4); or
//   - pausing the calling offload job immediately after submission and
//     returning control to the application (the QTLS asynchronous offload
//     framework); the pre-registered response callback later delivers the
//     result and fires the connection's async notification.
//
// The engine also keeps the per-class in-flight request counters
// (Rasym, Rcipher, Rprf) that feed the heuristic polling scheme (§4.3).
package engine

import (
	"errors"
	"runtime"
	"sync/atomic"

	"qtls/internal/asynclib"
	"qtls/internal/minitls"
	"qtls/internal/qat"
)

// Class groups op kinds the way the heuristic polling scheme counts them.
type Class int

const (
	// ClassAsym covers RSA/ECDSA/ECDH (the slow asymmetric calculations).
	ClassAsym Class = iota
	// ClassCipher covers symmetric record protection.
	ClassCipher
	// ClassPRF covers TLS 1.2 PRF derivations.
	ClassPRF

	numClasses = 3
)

// classify maps an op kind to its in-flight counter class; ok is false
// for kinds the engine never offloads (HKDF).
func classify(kind minitls.OpKind) (Class, bool) {
	switch kind {
	case minitls.KindRSA, minitls.KindECDSA, minitls.KindECDH:
		return ClassAsym, true
	case minitls.KindCipher:
		return ClassCipher, true
	case minitls.KindPRF:
		return ClassPRF, true
	default:
		return 0, false
	}
}

func opTypeFor(kind minitls.OpKind) qat.OpType {
	switch kind {
	case minitls.KindRSA:
		return qat.OpRSA
	case minitls.KindECDSA:
		return qat.OpECDSA
	case minitls.KindECDH:
		return qat.OpECDH
	case minitls.KindPRF:
		return qat.OpPRF
	default:
		return qat.OpCipher
	}
}

// Config configures an Engine.
type Config struct {
	// Instance is the QAT crypto instance assigned to this worker
	// (one instance per Nginx worker in the paper's deployment).
	Instance *qat.Instance
	// Instances optionally assigns several crypto instances — typically
	// one per endpoint — so a single worker can employ more computation
	// engines (§2.3: "one process can be assigned with multiple QAT
	// instances from different endpoints"). Submissions round-robin
	// across instances; Poll drains all of them. Mutually additive with
	// Instance.
	Instances []*qat.Instance
	// Offload selects which op kinds are offloaded; nil means all
	// offloadable kinds (RSA, ECDSA, ECDH, PRF, Cipher). This mirrors the
	// default_algorithm directive of the SSL Engine Framework (§A.7).
	Offload []minitls.OpKind
}

// Engine implements minitls.Provider backed by one or more QAT crypto
// instances. One engine belongs to one worker goroutine; Poll must be
// called from that goroutine (response callbacks run inside Poll).
type Engine struct {
	insts   []*qat.Instance
	next    int // round-robin submission cursor
	offload [6]bool

	inflight [numClasses]atomic.Int64

	// Cumulative statistics.
	submitted  atomic.Int64
	retrieved  atomic.Int64
	ringFulls  atomic.Int64
	pollsEmpty atomic.Int64
	polls      atomic.Int64
}

// New creates an engine bound to its QAT instances.
func New(cfg Config) (*Engine, error) {
	e := &Engine{}
	if cfg.Instance != nil {
		e.insts = append(e.insts, cfg.Instance)
	}
	e.insts = append(e.insts, cfg.Instances...)
	if len(e.insts) == 0 {
		return nil, errors.New("engine: at least one crypto instance is required")
	}
	if cfg.Offload == nil {
		cfg.Offload = []minitls.OpKind{
			minitls.KindRSA, minitls.KindECDSA, minitls.KindECDH,
			minitls.KindPRF, minitls.KindCipher,
		}
	}
	for _, k := range cfg.Offload {
		if k == minitls.KindHKDF {
			return nil, errors.New("engine: HKDF cannot be offloaded through the QAT Engine")
		}
		e.offload[k] = true
	}
	return e, nil
}

// submit places the request on the next instance in round-robin order,
// falling back to the other instances when a ring is full. It returns
// qat.ErrRingFull only when every instance's ring is full.
func (e *Engine) submit(req qat.Request) error {
	var lastErr error
	for i := 0; i < len(e.insts); i++ {
		inst := e.insts[e.next%len(e.insts)]
		e.next++
		lastErr = inst.Submit(req)
		if lastErr == nil {
			return nil
		}
		if !errors.Is(lastErr, qat.ErrRingFull) {
			return lastErr
		}
	}
	return lastErr
}

// Instances returns the engine's crypto instances.
func (e *Engine) Instances() []*qat.Instance { return e.insts }

// Name implements minitls.Provider.
func (e *Engine) Name() string { return "qat-engine" }

// Do implements minitls.Provider.
func (e *Engine) Do(call *minitls.OpCall, kind minitls.OpKind, work func() (any, error)) (any, error) {
	class, offloadable := classify(kind)
	if !offloadable || !e.offload[kind] {
		// Software fallback on the worker core (e.g. HKDF, or algorithms
		// excluded from default_algorithm).
		return work()
	}
	switch call.Mode {
	case minitls.AsyncModeFiber:
		return e.doFiber(call, kind, class, work)
	case minitls.AsyncModeStack:
		return e.doStack(call, kind, class, work)
	default:
		return e.doStraight(call, kind, class, work)
	}
}

// doStraight is the straight offload mode (§2.4, Fig. 3): replace the
// crypto function call with an offload I/O call and busy-wait for the
// response. The worker core spins, and at most one engine computes for
// this worker at any time — the blocking the paper measures.
func (e *Engine) doStraight(call *minitls.OpCall, kind minitls.OpKind, class Class, work func() (any, error)) (any, error) {
	var done atomic.Bool
	var result any
	var resultErr error
	req := qat.Request{
		Op:   opTypeFor(kind),
		Work: work,
		Callback: func(r qat.Response) {
			result, resultErr = r.Result, r.Err
			e.onResponse(class)
			done.Store(true)
		},
	}
	for {
		err := e.submit(req)
		if err == nil {
			break
		}
		if errors.Is(err, qat.ErrRingFull) {
			e.ringFulls.Add(1)
			e.pollAll(0)
			continue
		}
		return nil, err
	}
	e.onSubmit(class)
	for !done.Load() {
		if e.pollAll(0) == 0 {
			runtime.Gosched()
		}
	}
	return result, resultErr
}

// doFiber submits the request and pauses the calling ASYNC_JOB (§3.2
// pre-processing / Fig. 6). The response callback stores the result on
// the OpCall and fires the connection's notification; the application
// then resumes the job, and execution continues right here.
func (e *Engine) doFiber(call *minitls.OpCall, kind minitls.OpKind, class Class, work func() (any, error)) (any, error) {
	if call.Job == nil {
		return nil, errors.New("engine: fiber mode without a job")
	}
	for {
		delivered := false
		req := qat.Request{
			Op:   opTypeFor(kind),
			Work: work,
			Callback: func(r qat.Response) {
				call.SetResult(r.Result, r.Err)
				e.onResponse(class)
				delivered = true
				if call.WaitCtx != nil {
					call.WaitCtx.Notify()
				}
			},
		}
		if err := e.submit(req); err != nil {
			if errors.Is(err, qat.ErrRingFull) {
				// Pause with the retry indication; the application
				// reschedules this handler later and we resubmit (§3.2
				// "failure of crypto submission").
				e.ringFulls.Add(1)
				call.SubmitFailed = true
				if perr := call.Job.Pause(); perr != nil {
					return nil, perr
				}
				continue
			}
			return nil, err
		}
		e.onSubmit(class)
		call.SubmitFailed = false
		call.SetResult(nil, nil)
		// Tolerate spurious resumes: stay paused until the response
		// callback has actually delivered a result.
		for !delivered {
			if err := call.Job.Pause(); err != nil {
				return nil, err
			}
		}
		return call.Result()
	}
}

// doStack drives the stack-async state flag (Fig. 5): first entry submits
// and returns ErrWantAsync; the re-entered call consumes the ready result.
func (e *Engine) doStack(call *minitls.OpCall, kind minitls.OpKind, class Class, work func() (any, error)) (any, error) {
	st := call.Stack
	if st == nil {
		return nil, errors.New("engine: stack mode without a StackOp")
	}
	switch st.State() {
	case asynclib.StackReady:
		return st.Consume()
	case asynclib.StackIdle, asynclib.StackRetry:
		req := qat.Request{
			Op:   opTypeFor(kind),
			Work: work,
			Callback: func(r qat.Response) {
				st.MarkReady(r.Result, r.Err)
				e.onResponse(class)
				if call.WaitCtx != nil {
					call.WaitCtx.Notify()
				}
			},
		}
		if err := e.submit(req); err != nil {
			if errors.Is(err, qat.ErrRingFull) {
				e.ringFulls.Add(1)
				st.MarkRetry()
				return nil, minitls.ErrWantAsyncRetry
			}
			return nil, err
		}
		e.onSubmit(class)
		st.MarkInflight()
		return nil, minitls.ErrWantAsync
	default:
		return nil, errors.New("engine: stack op already in flight")
	}
}

func (e *Engine) onSubmit(class Class) {
	e.inflight[class].Add(1)
	e.submitted.Add(1)
}

func (e *Engine) onResponse(class Class) {
	e.inflight[class].Add(-1)
	e.retrieved.Add(1)
}

// Poll retrieves up to max QAT responses (0 = all available), running
// response callbacks on the calling goroutine. It returns the number
// retrieved.
func (e *Engine) Poll(max int) int {
	n := e.pollAll(max)
	e.polls.Add(1)
	if n == 0 {
		e.pollsEmpty.Add(1)
	}
	return n
}

// pollAll drains responses from every assigned instance.
func (e *Engine) pollAll(max int) int {
	n := 0
	for _, inst := range e.insts {
		n += inst.Poll(max)
	}
	return n
}

// InflightTotal returns Rtotal — the number of submitted-but-unretrieved
// crypto requests across all classes (§4.3).
func (e *Engine) InflightTotal() int {
	var t int64
	for i := range e.inflight {
		t += e.inflight[i].Load()
	}
	return int(t)
}

// InflightAsym returns Rasym, the in-flight asymmetric requests.
func (e *Engine) InflightAsym() int { return int(e.inflight[ClassAsym].Load()) }

// Inflight returns the in-flight count for one class.
func (e *Engine) Inflight(c Class) int { return int(e.inflight[c].Load()) }

// Stats is a snapshot of engine counters.
type Stats struct {
	Submitted  int64
	Retrieved  int64
	RingFulls  int64
	Polls      int64
	PollsEmpty int64
}

// Stats returns cumulative counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Submitted:  e.submitted.Load(),
		Retrieved:  e.retrieved.Load(),
		RingFulls:  e.ringFulls.Load(),
		Polls:      e.polls.Load(),
		PollsEmpty: e.pollsEmpty.Load(),
	}
}

var _ minitls.Provider = (*Engine)(nil)
