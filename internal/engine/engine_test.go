package engine

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"qtls/internal/asynclib"
	"qtls/internal/minitls"
	"qtls/internal/qat"
)

func newStack() *asynclib.StackOp { return &asynclib.StackOp{} }

func newWaitCtx(cb func(any), arg any) *asynclib.WaitCtx {
	w := asynclib.NewWaitCtx()
	w.SetCallback(cb, arg)
	return w
}

var (
	idOnce sync.Once
	rsaID  *minitls.Identity
)

func rsaIdentity(t testing.TB) *minitls.Identity {
	t.Helper()
	idOnce.Do(func() {
		var err error
		rsaID, err = minitls.NewRSAIdentity(2048)
		if err != nil {
			panic(err)
		}
	})
	return rsaID
}

func newEngine(t *testing.T, spec qat.DeviceSpec) (*Engine, *qat.Device) {
	t.Helper()
	dev := qat.NewDevice(spec)
	t.Cleanup(dev.Close)
	inst, err := dev.AllocInstance()
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Instance: inst})
	if err != nil {
		t.Fatal(err)
	}
	return e, dev
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil instance accepted")
	}
	dev := qat.NewDevice(qat.DeviceSpec{})
	defer dev.Close()
	inst, _ := dev.AllocInstance()
	if _, err := New(Config{Instance: inst, Offload: []minitls.OpKind{minitls.KindHKDF}}); err == nil {
		t.Fatal("HKDF offload accepted")
	}
}

// Straight offload blocks until the result is ready — and produces it.
func TestStraightOffloadBlocksAndCompletes(t *testing.T) {
	e, _ := newEngine(t, qat.DeviceSpec{ServiceTime: map[qat.OpType]time.Duration{qat.OpRSA: 5 * time.Millisecond}})
	call := &minitls.OpCall{Mode: minitls.AsyncModeOff}
	start := time.Now()
	res, err := e.Do(call, minitls.KindRSA, func() (any, error) { return "signed", nil })
	if err != nil || res != "signed" {
		t.Fatalf("Do = %v, %v", res, err)
	}
	if el := time.Since(start); el < 5*time.Millisecond {
		t.Fatalf("returned after %v; straight mode must wait for the device", el)
	}
	if e.InflightTotal() != 0 {
		t.Fatalf("inflight = %d", e.InflightTotal())
	}
	st := e.Stats()
	if st.Submitted != 1 || st.Retrieved != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHKDFNeverOffloaded(t *testing.T) {
	e, dev := newEngine(t, qat.DeviceSpec{})
	call := &minitls.OpCall{Mode: minitls.AsyncModeOff}
	res, err := e.Do(call, minitls.KindHKDF, func() (any, error) { return 42, nil })
	if err != nil || res != 42 {
		t.Fatalf("Do = %v, %v", res, err)
	}
	for _, c := range dev.Counters() {
		if c.TotalRequests() != 0 {
			t.Fatal("HKDF reached the device")
		}
	}
}

func TestOffloadFilter(t *testing.T) {
	dev := qat.NewDevice(qat.DeviceSpec{})
	defer dev.Close()
	inst, _ := dev.AllocInstance()
	e, err := New(Config{Instance: inst, Offload: []minitls.OpKind{minitls.KindRSA}})
	if err != nil {
		t.Fatal(err)
	}
	call := &minitls.OpCall{Mode: minitls.AsyncModeOff}
	// PRF excluded from offload: runs inline.
	if _, err := e.Do(call, minitls.KindPRF, func() (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if dev.Counters()[0].TotalRequests() != 0 {
		t.Fatal("excluded kind reached the device")
	}
	if _, err := e.Do(call, minitls.KindRSA, func() (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if dev.Counters()[0].Requests[qat.OpRSA] != 1 {
		t.Fatal("offloaded kind did not reach the device")
	}
}

// End-to-end handshakes through a real device in each server mode.
func testHandshakeWithEngine(t *testing.T, mode minitls.AsyncMode) {
	e, _ := newEngine(t, qat.DeviceSpec{Endpoints: 1, EnginesPerEndpoint: 4})
	cliT, srvT := net.Pipe()
	defer cliT.Close()
	defer srvT.Close()
	var ops minitls.OpCounts
	server := minitls.Server(srvT, &minitls.Config{
		Identity:     rsaIdentity(t),
		Provider:     e,
		AsyncMode:    mode,
		CipherSuites: []uint16{minitls.TLS_RSA_WITH_AES_128_CBC_SHA},
		OpCounter:    &ops,
	})
	client := minitls.ClientConn(cliT, &minitls.Config{})
	cliErr := make(chan error, 1)
	go func() { cliErr <- client.Handshake() }()

	// Event-loop-like driver: on want-async, poll until at least one
	// response is retrieved, then re-drive the handshake.
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := server.Handshake()
		if err == nil {
			break
		}
		if errors.Is(err, minitls.ErrWantAsync) || errors.Is(err, minitls.ErrWantAsyncRetry) {
			for e.Poll(0) == 0 && errors.Is(err, minitls.ErrWantAsync) {
				if time.Now().After(deadline) {
					t.Fatal("timed out polling for responses")
				}
				time.Sleep(50 * time.Microsecond)
			}
			continue
		}
		t.Fatalf("server handshake: %v", err)
	}
	if err := <-cliErr; err != nil {
		t.Fatalf("client: %v", err)
	}
	rsaN, _, prfN := ops.Table1Row()
	if rsaN != 1 || prfN != 4 {
		t.Fatalf("op counts RSA:%d PRF:%d", rsaN, prfN)
	}
	if e.InflightTotal() != 0 {
		t.Fatalf("inflight after handshake = %d", e.InflightTotal())
	}

	// Data transfer through the engine (cipher offload).
	msg := bytes.Repeat([]byte{7}, 48*1024)
	got := make([]byte, len(msg))
	done := make(chan error, 1)
	go func() {
		_, err := io.ReadFull(&connReader{client}, got)
		done <- err
	}()
	for {
		_, err := server.Write(msg)
		if err == nil {
			break
		}
		if errors.Is(err, minitls.ErrWantAsync) || errors.Is(err, minitls.ErrWantAsyncRetry) {
			for e.Poll(0) == 0 && errors.Is(err, minitls.ErrWantAsync) {
				time.Sleep(20 * time.Microsecond)
			}
			continue
		}
		t.Fatalf("write: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("transfer corrupted")
	}
}

type connReader struct{ c *minitls.Conn }

func (r *connReader) Read(p []byte) (int, error) { return r.c.Read(p) }

func TestHandshakeStraight(t *testing.T) { testHandshakeWithEngine(t, minitls.AsyncModeOff) }
func TestHandshakeFiber(t *testing.T)    { testHandshakeWithEngine(t, minitls.AsyncModeFiber) }
func TestHandshakeStack(t *testing.T)    { testHandshakeWithEngine(t, minitls.AsyncModeStack) }

// Ring-full during stack submission surfaces ErrWantAsyncRetry and
// recovers after the ring drains.
func TestStackRingFullRetry(t *testing.T) {
	e, _ := newEngine(t, qat.DeviceSpec{
		Endpoints: 1, EnginesPerEndpoint: 1, RingCapacity: 1,
		ServiceTime: map[qat.OpType]time.Duration{qat.OpPRF: 2 * time.Millisecond},
	})
	// Fill the single-slot ring.
	blockCall := &minitls.OpCall{Mode: minitls.AsyncModeStack, Stack: newStack()}
	if _, err := e.Do(blockCall, minitls.KindPRF, func() (any, error) { return 1, nil }); !errors.Is(err, minitls.ErrWantAsync) {
		t.Fatalf("first submit err = %v", err)
	}
	call := &minitls.OpCall{Mode: minitls.AsyncModeStack, Stack: newStack()}
	if _, err := e.Do(call, minitls.KindPRF, func() (any, error) { return 2, nil }); !errors.Is(err, minitls.ErrWantAsyncRetry) {
		t.Fatalf("second submit err = %v", err)
	}
	if e.Stats().RingFulls == 0 {
		t.Fatal("ring-full not counted")
	}
	// Drain and retry.
	deadline := time.Now().Add(5 * time.Second)
	for e.Poll(0) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no response")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if _, err := e.Do(call, minitls.KindPRF, func() (any, error) { return 2, nil }); !errors.Is(err, minitls.ErrWantAsync) {
		t.Fatalf("retry err = %v", err)
	}
	for e.Poll(0) == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	res, err := e.Do(call, minitls.KindPRF, nil)
	if err != nil || res != 2 {
		t.Fatalf("consume = %v, %v", res, err)
	}
}

// Inflight class counters track submissions and retrievals (§4.3).
func TestInflightCounters(t *testing.T) {
	e, _ := newEngine(t, qat.DeviceSpec{
		Endpoints: 1, EnginesPerEndpoint: 1,
		ServiceTime: map[qat.OpType]time.Duration{
			qat.OpRSA: 3 * time.Millisecond,
			qat.OpPRF: 3 * time.Millisecond,
		},
	})
	calls := []*minitls.OpCall{
		{Mode: minitls.AsyncModeStack, Stack: newStack()},
		{Mode: minitls.AsyncModeStack, Stack: newStack()},
		{Mode: minitls.AsyncModeStack, Stack: newStack()},
	}
	e.Do(calls[0], minitls.KindRSA, func() (any, error) { return nil, nil })
	e.Do(calls[1], minitls.KindRSA, func() (any, error) { return nil, nil })
	e.Do(calls[2], minitls.KindPRF, func() (any, error) { return nil, nil })
	if e.InflightAsym() != 2 || e.Inflight(ClassPRF) != 1 || e.InflightTotal() != 3 {
		t.Fatalf("inflight asym=%d prf=%d total=%d", e.InflightAsym(), e.Inflight(ClassPRF), e.InflightTotal())
	}
	deadline := time.Now().Add(10 * time.Second)
	for e.InflightTotal() > 0 {
		e.Poll(0)
		if time.Now().After(deadline) {
			t.Fatal("responses never drained")
		}
		time.Sleep(200 * time.Microsecond)
	}
	st := e.Stats()
	if st.Submitted != 3 || st.Retrieved != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// Kernel-bypass notification fires from the response callback during Poll.
func TestNotificationOnPoll(t *testing.T) {
	e, _ := newEngine(t, qat.DeviceSpec{})
	stack := newStack()
	var notified []any
	wctx := newWaitCtx(func(arg any) { notified = append(notified, arg) }, "h1")
	call := &minitls.OpCall{Mode: minitls.AsyncModeStack, Stack: stack, WaitCtx: wctx}
	if _, err := e.Do(call, minitls.KindPRF, func() (any, error) { return "x", nil }); !errors.Is(err, minitls.ErrWantAsync) {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.Poll(0) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no response")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if len(notified) != 1 || notified[0] != "h1" {
		t.Fatalf("notified = %v", notified)
	}
	if res, err := e.Do(call, minitls.KindPRF, nil); err != nil || res != "x" {
		t.Fatalf("consume = %v, %v", res, err)
	}
}

// Concurrent offloads from many connections in one "worker": the core of
// QTLS — multiple crypto operations in flight from one goroutine.
func TestConcurrentOffloadsOneWorker(t *testing.T) {
	e, _ := newEngine(t, qat.DeviceSpec{
		Endpoints: 1, EnginesPerEndpoint: 8, RingCapacity: 64,
		ServiceTime: map[qat.OpType]time.Duration{qat.OpRSA: time.Millisecond},
	})
	const conns = 32
	stacks := make([]*minitls.OpCall, conns)
	results := make([]bool, conns)
	start := time.Now()
	for i := range stacks {
		i := i
		stacks[i] = &minitls.OpCall{Mode: minitls.AsyncModeStack, Stack: newStack()}
		if _, err := e.Do(stacks[i], minitls.KindRSA, func() (any, error) { return i, nil }); !errors.Is(err, minitls.ErrWantAsync) {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if e.InflightTotal() != conns {
		t.Fatalf("inflight = %d", e.InflightTotal())
	}
	done := 0
	deadline := time.Now().Add(20 * time.Second)
	for done < conns {
		e.Poll(0)
		for i, call := range stacks {
			if results[i] || call.Stack.State() != asynclib.StackReady {
				continue
			}
			res, err := e.Do(call, minitls.KindRSA, nil)
			if err != nil || res != i {
				t.Fatalf("consume %d = %v, %v", i, res, err)
			}
			results[i] = true
			done++
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d completed", done, conns)
		}
		time.Sleep(100 * time.Microsecond)
	}
	// 32 ops of 1 ms on 8 engines ≈ 4 ms total; far below the 32 ms a
	// blocking sequence would need. Allow generous slack for CI noise.
	if el := time.Since(start); el > 24*time.Millisecond {
		t.Fatalf("took %v; concurrent offload should overlap service times", el)
	}
}
