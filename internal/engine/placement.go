package engine

import (
	"errors"

	"qtls/internal/flight"
	"qtls/internal/offload"
	"qtls/internal/qat"
	"qtls/internal/trace"
)

// This file is the engine's device-placement layer: the routing that
// turns "this worker owns instances on several QAT devices" into
// per-op-class submission decisions. Under offload.PlacementSingle — the
// zero value, and the only mode the paper's five configurations use —
// none of this runs: the legacy round-robin submitIdx path is taken
// byte-for-byte, which is what keeps the notify-parity golden stable.
//
// With an active placement and more than one device, each op class maps
// to a *lane* (asym or sym, the same split the heuristic polling
// thresholds use) and each lane prefers the device set
// offload.Placement.AsymDevices/SymDevices selects. A submission tries
// the preferred devices' instances first and spills to the rest of the
// pool when the preferred set is circuit-broken or its rings are full;
// every time a lane's op lands on a different device than its
// predecessor the engine counts a placement flip and journals it
// (flight.KindPlacement), so an incident dump shows the re-route that
// absorbed a dying device. Breaker state, inflight accounting and
// SubmitBatch doorbell amortization all stay per-instance — and
// therefore per-device — exactly as before.

// numLanes is the number of placement lanes (asym, sym).
const numLanes = 2

// laneOf maps an engine class to its placement lane: the asymmetric
// handshake ops form one lane, the symmetric-leaning PRF and cipher ops
// the other. Codes match flight.PlacementAsym/PlacementSym.
func laneOf(class Class) uint8 {
	if class == ClassAsym {
		return flight.PlacementAsym
	}
	return flight.PlacementSym
}

// placementActive reports whether per-class routing is in effect.
func (e *Engine) placementActive() bool {
	return e.placement != offload.PlacementSingle && e.numDevs > 1
}

// initPlacement derives the per-lane instance partitions from the
// instance→device mapping. Called from New.
func (e *Engine) initPlacement(cfg Config) error {
	e.placement = cfg.Placement
	e.devOf = make([]int, len(e.insts))
	if cfg.InstanceDevices != nil {
		if len(cfg.InstanceDevices) != len(e.insts) {
			return errors.New("engine: InstanceDevices must parallel the combined instance list")
		}
		copy(e.devOf, cfg.InstanceDevices)
	}
	e.numDevs = 1
	for _, d := range e.devOf {
		if d < 0 {
			return errors.New("engine: negative device index in InstanceDevices")
		}
		if d+1 > e.numDevs {
			e.numDevs = d + 1
		}
	}
	for lane := 0; lane < numLanes; lane++ {
		e.routeDev[lane].Store(-1)
	}
	e.homeDev = cfg.HomeDevice
	if e.homeDev < 0 || e.homeDev >= e.numDevs {
		e.homeDev = 0
	}
	if !e.placementActive() {
		return nil
	}
	e.buildLanes(e.laneSets())
	return nil
}

// laneSets derives each lane's preferred device set. Conn-hash placement
// is special-cased: offload.PlacementConnHash's device sets cover the
// whole pool (the placement decision is per-connection), so the engine
// narrows both lanes to the worker's home device and treats the rest of
// the pool as spill.
func (e *Engine) laneSets() [numLanes][]int {
	if e.placement == offload.PlacementConnHash {
		return [numLanes][]int{
			flight.PlacementAsym: {e.homeDev},
			flight.PlacementSym:  {e.homeDev},
		}
	}
	return [numLanes][]int{
		flight.PlacementAsym: e.placement.AsymDevices(e.numDevs),
		flight.PlacementSym:  e.placement.SymDevices(e.numDevs),
	}
}

// buildLanes (re)derives the per-lane instance partitions from the
// preferred device sets. Worker-goroutine only (Rehome reuses it live).
func (e *Engine) buildLanes(laneSets [numLanes][]int) {
	for lane, set := range laneSets {
		pref := make([]bool, e.numDevs)
		for _, d := range set {
			if d < e.numDevs {
				pref[d] = true
			}
		}
		e.lanePref[lane] = pref
		e.laneInsts[lane] = e.laneInsts[lane][:0]
		e.laneOther[lane] = e.laneOther[lane][:0]
		for idx, d := range e.devOf {
			if pref[d] {
				e.laneInsts[lane] = append(e.laneInsts[lane], idx)
			} else {
				e.laneOther[lane] = append(e.laneOther[lane], idx)
			}
		}
	}
}

// HomeDevice returns the conn-hash home device.
func (e *Engine) HomeDevice() int { return e.homeDev }

// Rehome moves a conn-hash engine's home device: both lanes re-prefer
// dev, existing in-flight work and instances stay where they are, and
// subsequent submissions land on the new home. Must be called from the
// worker goroutine (it rebuilds the lane partitions the submission path
// reads). No-op for other placements, out-of-range devices or when the
// home is unchanged; reports whether a move happened.
func (e *Engine) Rehome(dev int) bool {
	if e.placement != offload.PlacementConnHash || !e.placementActive() {
		return false
	}
	if dev < 0 || dev >= e.numDevs || dev == e.homeDev {
		return false
	}
	e.homeDev = dev
	e.buildLanes(e.laneSets())
	return true
}

// routeOrder returns the instance indexes a lane's submission should try,
// preferred-device instances first, each half rotated by the lane cursor
// so load spreads within a device set the way the legacy round-robin
// spread it across the whole engine.
func (e *Engine) routeOrder(lane uint8) []int {
	p, o := e.laneInsts[lane], e.laneOther[lane]
	c := e.laneCursor[lane]
	e.laneCursor[lane]++
	out := make([]int, 0, len(p)+len(o))
	for i := range p {
		out = append(out, p[(c+i)%len(p)])
	}
	for i := range o {
		out = append(out, o[(c+i)%len(o)])
	}
	return out
}

// noteRoute records where a lane's op landed, journaling a placement flip
// when the device changed. The first route of a lane is not a flip.
func (e *Engine) noteRoute(lane uint8, dev int) {
	prev := e.routeDev[lane].Swap(int64(dev))
	if prev == int64(dev) {
		return
	}
	if prev >= 0 {
		e.placementFlips.Add(1)
		e.fl.Note(flight.KindPlacement, lane, trace.OpNone, prev, int64(dev))
	}
}

// submitClass places the request on an instance chosen for the op's
// class. Single-device placement takes the legacy round-robin path
// unchanged; active placements route preferred-device-first with
// pool-wide spill.
func (e *Engine) submitClass(class Class, req qat.Request) (int, error) {
	if !e.placementActive() {
		return e.submitIdx(req)
	}
	lane := laneOf(class)
	var lastErr error
	tried := false
	for _, idx := range e.routeOrder(lane) {
		if !e.instAllowed(idx) {
			continue
		}
		tried = true
		lastErr = e.insts[idx].Submit(req)
		if lastErr == nil {
			e.noteRoute(lane, e.devOf[idx])
			return idx, nil
		}
		if !errors.Is(lastErr, qat.ErrRingFull) {
			e.recordResult(idx, false)
			return idx, lastErr
		}
	}
	if !tried {
		return -1, ErrNoInstance
	}
	return -1, lastErr
}

// instancesByFreeClass orders the flush candidates for one class: the
// legacy free-capacity order under single placement, and under an active
// placement the same order stably partitioned so the lane's preferred
// devices come first.
func (e *Engine) instancesByFreeClass(class Class) []int {
	order := e.instancesByFree()
	if !e.placementActive() {
		return order
	}
	pref := e.lanePref[laneOf(class)]
	out := make([]int, 0, len(order))
	for _, idx := range order {
		if pref[e.devOf[idx]] {
			out = append(out, idx)
		}
	}
	for _, idx := range order {
		if !pref[e.devOf[idx]] {
			out = append(out, idx)
		}
	}
	return out
}

// noteRouteClass is noteRoute keyed by class, a no-op under single
// placement; the coalescer calls it per accepted batch.
func (e *Engine) noteRouteClass(class Class, idx int) {
	if !e.placementActive() {
		return
	}
	e.noteRoute(laneOf(class), e.devOf[idx])
}

// Placement returns the engine's placement mode.
func (e *Engine) Placement() offload.Placement { return e.placement }

// DeviceInflight sums the occupied ring slots of the engine's instances
// on one device (per-device pressure for qatinfo and admission views).
func (e *Engine) DeviceInflight(dev int) int {
	n := 0
	for i, inst := range e.insts {
		if e.devOf[i] == dev {
			n += inst.Inflight()
		}
	}
	return n
}

// LaneDevice returns the device a lane's last op was routed to (-1 before
// the first route). Lanes are flight.PlacementAsym / flight.PlacementSym.
func (e *Engine) LaneDevice(lane uint8) int {
	if lane >= numLanes {
		return -1
	}
	return int(e.routeDev[lane].Load())
}
