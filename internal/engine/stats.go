package engine

import "qtls/internal/fault"

// This file is the engine's observable surface: the per-class in-flight
// counters that feed the heuristic polling scheme (§4.3), the response
// polling entry points, and the health/statistics snapshots consumed by
// qatinfo and the server's stub_status endpoint.

func (e *Engine) onSubmit(class Class) {
	e.inflight[class].Add(1)
	e.submitted.Add(1)
}

func (e *Engine) onResponse(class Class) {
	e.inflight[class].Add(-1)
	e.retrieved.Add(1)
}

// Poll retrieves up to max QAT responses (0 = all available), running
// response callbacks on the calling goroutine. It returns the number
// retrieved.
func (e *Engine) Poll(max int) int {
	n := e.pollAll(max)
	e.polls.Add(1)
	if n == 0 {
		e.pollsEmpty.Add(1)
	}
	return n
}

// pollAll drains responses from every assigned instance.
func (e *Engine) pollAll(max int) int {
	n := 0
	for _, inst := range e.insts {
		n += inst.Poll(max)
	}
	return n
}

// InflightTotal returns Rtotal — the number of submitted-but-unretrieved
// crypto requests across all classes (§4.3).
func (e *Engine) InflightTotal() int {
	var t int64
	for i := range e.inflight {
		t += e.inflight[i].Load()
	}
	return int(t)
}

// InflightAsym returns Rasym, the in-flight asymmetric requests.
func (e *Engine) InflightAsym() int { return int(e.inflight[ClassAsym].Load()) }

// Inflight returns the in-flight count for one class.
func (e *Engine) Inflight(c Class) int { return int(e.inflight[c].Load()) }

// InstanceHealth is one crypto instance's degradation view: its breaker
// state plus the device-level slot accounting.
type InstanceHealth struct {
	// Index is the instance's position in the engine's rotation.
	Index int
	// Endpoint is the QAT endpoint the instance's rings belong to.
	Endpoint int
	// State is the circuit-breaker state (closed when breakers are off).
	State fault.BreakerState
	// Breaker is the breaker's window snapshot (zero when breakers are
	// off).
	Breaker fault.BreakerSnapshot
	// Inflight is the instance's occupied ring slots.
	Inflight int
	// Leaked is the ring slots currently leaked by stalled requests.
	Leaked int
}

// Health reports per-instance breaker and slot state (for qatinfo and the
// server's stub_status).
func (e *Engine) Health() []InstanceHealth {
	out := make([]InstanceHealth, len(e.insts))
	for i, inst := range e.insts {
		h := InstanceHealth{
			Index:    i,
			Endpoint: inst.Endpoint(),
			State:    fault.StateClosed,
			Inflight: inst.Inflight(),
			Leaked:   inst.Leaked(),
		}
		if e.breakers != nil {
			h.State = e.breakers[i].State()
			h.Breaker = e.breakers[i].Snapshot()
		}
		out[i] = h
	}
	return out
}

// Stats is a snapshot of engine counters.
type Stats struct {
	Submitted  int64
	Retrieved  int64
	RingFulls  int64
	Polls      int64
	PollsEmpty int64

	// Submit-coalescer counters (zero with Config.Coalesce off).
	Flushes    int64 // Flush calls that submitted at least one op
	FlushedOps int64 // ops submitted through the coalescer
	MaxFlush   int64 // largest single-flush op count

	// Degradation counters (zero unless hardening knobs are set and the
	// device misbehaves).
	Timeouts    int64
	SWFallbacks int64
	Retries     int64
	VerifyFails int64
	Trips       int64
	Cancels     int64

	// PlacementFlips counts lane re-routes to a different device (zero
	// under single-device placement).
	PlacementFlips int64
}

// Stats returns cumulative counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Submitted:      e.submitted.Load(),
		Retrieved:      e.retrieved.Load(),
		RingFulls:      e.ringFulls.Load(),
		Polls:          e.polls.Load(),
		PollsEmpty:     e.pollsEmpty.Load(),
		Flushes:        e.flushes.Load(),
		FlushedOps:     e.flushedOps.Load(),
		MaxFlush:       e.maxFlush.Load(),
		Timeouts:       e.timeouts.Load(),
		SWFallbacks:    e.fallbacks.Load(),
		Retries:        e.retries.Load(),
		VerifyFails:    e.verifyFails.Load(),
		Trips:          e.trips.Load(),
		Cancels:        e.cancels.Load(),
		PlacementFlips: e.placementFlips.Load(),
	}
}
