package engine

import (
	"errors"
	"testing"
	"time"

	"qtls/internal/asynclib"
	"qtls/internal/minitls"
	"qtls/internal/qat"
)

// A worker with instances on several endpoints can employ more engines
// than any single endpoint offers (§2.3).
func TestMultiInstanceSpansEndpoints(t *testing.T) {
	dev := qat.NewDevice(qat.DeviceSpec{Endpoints: 3, EnginesPerEndpoint: 1})
	defer dev.Close()
	var insts []*qat.Instance
	for i := 0; i < 3; i++ {
		inst, err := dev.AllocInstance()
		if err != nil {
			t.Fatal(err)
		}
		insts = append(insts, inst)
	}
	// Round-robin allocation puts each instance on a distinct endpoint.
	seen := map[int]bool{}
	for _, inst := range insts {
		seen[inst.Endpoint()] = true
	}
	if len(seen) != 3 {
		t.Fatalf("instances on %d endpoints, want 3", len(seen))
	}
	e, err := New(Config{Instances: insts})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Instances()) != 3 {
		t.Fatalf("engine instances = %d", len(e.Instances()))
	}

	// Submit 3 async ops; with one engine per endpoint, all three run
	// concurrently only because submissions were spread across endpoints.
	gate := make(chan struct{})
	running := make(chan struct{}, 3)
	var calls []*minitls.OpCall
	for i := 0; i < 3; i++ {
		call := &minitls.OpCall{Mode: minitls.AsyncModeStack, Stack: &asynclib.StackOp{}}
		calls = append(calls, call)
		_, err := e.Do(call, minitls.KindRSA, func() (any, error) {
			running <- struct{}{}
			<-gate
			return nil, nil
		})
		if !errors.Is(err, minitls.ErrWantAsync) {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	deadline := time.After(5 * time.Second)
	for i := 0; i < 3; i++ {
		select {
		case <-running:
		case <-deadline:
			t.Fatalf("only %d ops running concurrently; submissions not balanced across endpoints", i)
		}
	}
	close(gate)
	waitDeadline := time.Now().Add(5 * time.Second)
	done := 0
	for done < 3 {
		e.Poll(0)
		done = 0
		for _, c := range calls {
			if c.Stack.State() == asynclib.StackReady {
				done++
			}
		}
		if time.Now().After(waitDeadline) {
			t.Fatalf("responses not retrieved: %d/3", done)
		}
		time.Sleep(100 * time.Microsecond)
	}
	for _, c := range calls {
		if _, err := e.Do(c, minitls.KindRSA, nil); err != nil {
			t.Fatal(err)
		}
	}
	if e.InflightTotal() != 0 {
		t.Fatalf("inflight = %d", e.InflightTotal())
	}
}

// When one instance's ring is full, submission falls over to the others;
// ErrRingFull only surfaces when every ring is full.
func TestMultiInstanceRingFallback(t *testing.T) {
	dev := qat.NewDevice(qat.DeviceSpec{Endpoints: 2, EnginesPerEndpoint: 1, RingCapacity: 1})
	defer dev.Close()
	i1, _ := dev.AllocInstance()
	i2, _ := dev.AllocInstance()
	e, err := New(Config{Instances: []*qat.Instance{i1, i2}})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	defer close(gate)
	blockWork := func() (any, error) { <-gate; return nil, nil }
	// Two submissions fill both 1-slot rings.
	for i := 0; i < 2; i++ {
		call := &minitls.OpCall{Mode: minitls.AsyncModeStack, Stack: &asynclib.StackOp{}}
		if _, err := e.Do(call, minitls.KindRSA, blockWork); !errors.Is(err, minitls.ErrWantAsync) {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if i1.Inflight() != 1 || i2.Inflight() != 1 {
		t.Fatalf("inflight not balanced: %d/%d", i1.Inflight(), i2.Inflight())
	}
	// Third fails everywhere.
	call := &minitls.OpCall{Mode: minitls.AsyncModeStack, Stack: &asynclib.StackOp{}}
	if _, err := e.Do(call, minitls.KindRSA, blockWork); !errors.Is(err, minitls.ErrWantAsyncRetry) {
		t.Fatalf("third submit: %v, want retry", err)
	}
	if e.Stats().RingFulls == 0 {
		t.Fatal("ring-full not counted")
	}
}
