package engine

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"qtls/internal/asynclib"
	"qtls/internal/fault"
	"qtls/internal/metrics"
	"qtls/internal/minitls"
	"qtls/internal/qat"
)

// hardenedEngine builds an engine over a freshly faulted device.
func hardenedEngine(t *testing.T, spec qat.DeviceSpec, inj *fault.Injector, cfg Config) (*Engine, *qat.Device) {
	t.Helper()
	spec.Injector = inj
	dev := qat.NewDevice(spec)
	t.Cleanup(dev.Close)
	if cfg.Instance == nil && cfg.Instances == nil {
		inst, err := dev.AllocInstance()
		if err != nil {
			t.Fatal(err)
		}
		cfg.Instance = inst
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, dev
}

// A stalled engine must not hang a straight offload: the deadline expires
// and the result is computed in software on the worker core.
func TestStraightTimeoutFallsBackToSoftware(t *testing.T) {
	inj := fault.NewInjector(1, fault.Rule{Kind: fault.Stall, Endpoint: fault.AnyEndpoint, Op: fault.AnyOp, P: 1, Limit: 1})
	reg := metrics.NewRegistry()
	e, _ := hardenedEngine(t, qat.DeviceSpec{Endpoints: 1, EnginesPerEndpoint: 1}, inj, Config{
		OpTimeout: 5 * time.Millisecond,
		Metrics:   reg,
	})
	call := &minitls.OpCall{Mode: minitls.AsyncModeOff}
	start := time.Now()
	res, err := e.Do(call, minitls.KindRSA, func() (any, error) { return "sw-result", nil })
	if err != nil || res != "sw-result" {
		t.Fatalf("Do = %v, %v", res, err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("fallback took %v; should be bounded by the deadline", el)
	}
	st := e.Stats()
	if st.Timeouts != 1 || st.SWFallbacks != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if e.InflightTotal() != 0 {
		t.Fatalf("inflight = %d after timeout settle", e.InflightTotal())
	}
	snap := reg.Snapshot()
	if snap["qat_op_timeouts"] != 1 || snap["qat_sw_fallbacks"] != 1 {
		t.Fatalf("registry = %v", snap)
	}
	// The leaked slot was reclaimed; a healthy op now offloads normally.
	res, err = e.Do(call, minitls.KindRSA, func() (any, error) { return "qat-result", nil })
	if err != nil || res != "qat-result" {
		t.Fatalf("post-recovery Do = %v, %v", res, err)
	}
	if e.Stats().SWFallbacks != 1 {
		t.Fatal("healthy op degraded")
	}
}

// A corrupted response is caught by the verify hook, retried, and — with
// corruption persisting — degraded to software.
func TestVerifyHookRetriesThenFallsBack(t *testing.T) {
	inj := fault.NewInjector(1, fault.Rule{Kind: fault.Corrupt, Endpoint: fault.AnyEndpoint, Op: fault.AnyOp, P: 1})
	want := []byte("good-signature")
	e, _ := hardenedEngine(t, qat.DeviceSpec{Endpoints: 1, EnginesPerEndpoint: 1}, inj, Config{
		MaxRetries:   2,
		RetryBackoff: 100 * time.Microsecond,
		Verify: func(_ minitls.OpKind, result any) bool {
			b, ok := result.([]byte)
			return ok && bytes.Equal(b, want) // sign→verify stand-in
		},
	})
	call := &minitls.OpCall{Mode: minitls.AsyncModeOff}
	res, err := e.Do(call, minitls.KindRSA, func() (any, error) {
		out := make([]byte, len(want))
		copy(out, want)
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.([]byte), want) {
		t.Fatalf("corrupted result delivered: %q", res)
	}
	st := e.Stats()
	if st.VerifyFails != 3 || st.Retries != 2 || st.SWFallbacks != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// A one-shot corruption is healed by a single retry — no fallback needed.
func TestVerifyHookRetrySucceeds(t *testing.T) {
	inj := fault.NewInjector(1, fault.Rule{Kind: fault.Corrupt, Endpoint: fault.AnyEndpoint, Op: fault.AnyOp, P: 1, Limit: 1})
	want := []byte("good-signature")
	e, _ := hardenedEngine(t, qat.DeviceSpec{Endpoints: 1, EnginesPerEndpoint: 1}, inj, Config{
		MaxRetries: 3,
		Verify: func(_ minitls.OpKind, result any) bool {
			b, ok := result.([]byte)
			return ok && bytes.Equal(b, want)
		},
	})
	call := &minitls.OpCall{Mode: minitls.AsyncModeOff}
	res, err := e.Do(call, minitls.KindRSA, func() (any, error) {
		out := make([]byte, len(want))
		copy(out, want)
		return out, nil
	})
	if err != nil || !bytes.Equal(res.([]byte), want) {
		t.Fatalf("Do = %q, %v", res, err)
	}
	st := e.Stats()
	if st.Retries != 1 || st.SWFallbacks != 0 || st.VerifyFails != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// A submit-time endpoint reset is retryable: the resubmission lands after
// the reset and completes on the device.
func TestDeviceResetRetried(t *testing.T) {
	inj := fault.NewInjector(1, fault.Rule{Kind: fault.Reset, Endpoint: fault.AnyEndpoint, Op: fault.AnyOp, P: 1, Limit: 1})
	e, dev := hardenedEngine(t, qat.DeviceSpec{Endpoints: 1, EnginesPerEndpoint: 1}, inj, Config{
		MaxRetries: 2,
	})
	call := &minitls.OpCall{Mode: minitls.AsyncModeOff}
	res, err := e.Do(call, minitls.KindRSA, func() (any, error) { return 7, nil })
	if err != nil || res != 7 {
		t.Fatalf("Do = %v, %v", res, err)
	}
	st := e.Stats()
	if st.Retries != 1 || st.SWFallbacks != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if dev.Resets()[0] != 1 {
		t.Fatalf("resets = %v", dev.Resets())
	}
}

// A persistently sick instance trips its breaker, and submissions route to
// the healthy instance on the other endpoint from then on.
func TestBreakerRoutesAroundSickInstance(t *testing.T) {
	// Endpoint 0 stalls everything; endpoint 1 is healthy.
	inj := fault.NewInjector(1, fault.Rule{Kind: fault.Stall, Endpoint: 0, Op: fault.AnyOp, P: 1})
	reg := metrics.NewRegistry()
	spec := qat.DeviceSpec{Endpoints: 2, EnginesPerEndpoint: 1}
	spec.Injector = inj
	dev := qat.NewDevice(spec)
	t.Cleanup(dev.Close)
	var insts []*qat.Instance
	for i := 0; i < 2; i++ {
		inst, err := dev.AllocInstance()
		if err != nil {
			t.Fatal(err)
		}
		insts = append(insts, inst)
	}
	if insts[0].Endpoint() == insts[1].Endpoint() {
		t.Fatal("instances share an endpoint; the test needs one per endpoint")
	}
	e, err := New(Config{
		Instances: insts,
		OpTimeout: 2 * time.Millisecond,
		Metrics:   reg,
		Breaker: &fault.BreakerConfig{
			Window: 4, FailureThreshold: 0.5, MinSamples: 2,
			Cooldown: time.Hour, ProbeCount: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	call := &minitls.OpCall{Mode: minitls.AsyncModeOff}
	for i := 0; i < 8; i++ {
		res, err := e.Do(call, minitls.KindRSA, func() (any, error) { return i, nil })
		if err != nil || res != i {
			t.Fatalf("op %d: %v, %v", i, res, err)
		}
	}
	st := e.Stats()
	if st.Trips < 1 {
		t.Fatalf("sick instance never tripped: %+v", st)
	}
	if st.Timeouts < 2 {
		t.Fatalf("timeouts = %d", st.Timeouts)
	}
	// With the breaker open, further ops must complete without timeouts.
	before := e.Stats().Timeouts
	for i := 0; i < 8; i++ {
		if _, err := e.Do(call, minitls.KindRSA, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if after := e.Stats().Timeouts; after != before {
		t.Fatalf("breaker open but %d more timeouts", after-before)
	}
	var sick, healthy *InstanceHealth
	for i, h := range e.Health() {
		h := h
		if e.insts[i].Endpoint() == 0 {
			sick = &h
		} else {
			healthy = &h
		}
	}
	if sick.State != fault.StateOpen {
		t.Fatalf("sick instance state = %v", sick.State)
	}
	if healthy.State != fault.StateClosed {
		t.Fatalf("healthy instance state = %v", healthy.State)
	}
	if reg.Snapshot()["qat_instance_trips"] < 1 {
		t.Fatalf("registry = %v", reg.Snapshot())
	}
}

// With every instance circuit-broken, ops degrade straight to software
// rather than erroring out.
func TestAllInstancesTrippedFallsBack(t *testing.T) {
	inj := fault.NewInjector(1, fault.Rule{Kind: fault.Stall, Endpoint: fault.AnyEndpoint, Op: fault.AnyOp, P: 1})
	e, _ := hardenedEngine(t, qat.DeviceSpec{Endpoints: 1, EnginesPerEndpoint: 1}, inj, Config{
		OpTimeout: 2 * time.Millisecond,
		Breaker: &fault.BreakerConfig{
			Window: 4, FailureThreshold: 0.5, MinSamples: 1,
			Cooldown: time.Hour, ProbeCount: 1,
		},
	})
	call := &minitls.OpCall{Mode: minitls.AsyncModeOff}
	for i := 0; i < 4; i++ {
		res, err := e.Do(call, minitls.KindRSA, func() (any, error) { return i, nil })
		if err != nil || res != i {
			t.Fatalf("op %d: %v, %v", i, res, err)
		}
	}
	st := e.Stats()
	if st.Timeouts != 1 {
		t.Fatalf("expected exactly one timeout before the trip, got %+v", st)
	}
	if st.SWFallbacks != 4 {
		t.Fatalf("fallbacks = %d", st.SWFallbacks)
	}
	if h := e.Health(); h[0].State != fault.StateOpen {
		t.Fatalf("health = %+v", h)
	}
}

// Fiber mode: a stalled offload is degraded when the paused job is resumed
// past its deadline (the worker's deadline scan stands in for a real event
// loop here).
func TestFiberTimeoutFallsBack(t *testing.T) {
	inj := fault.NewInjector(1, fault.Rule{Kind: fault.Stall, Endpoint: fault.AnyEndpoint, Op: fault.AnyOp, P: 1, Limit: 1})
	e, _ := hardenedEngine(t, qat.DeviceSpec{Endpoints: 1, EnginesPerEndpoint: 1}, inj, Config{
		OpTimeout: 2 * time.Millisecond,
	})
	call := &minitls.OpCall{Mode: minitls.AsyncModeFiber}
	var res any
	var doErr error
	status, job, err := asynclib.StartJob(nil, func(j *asynclib.Job) error {
		call.Job = j
		res, doErr = e.Do(call, minitls.KindRSA, func() (any, error) { return "sw", nil })
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if status != asynclib.StatusPause {
		t.Fatalf("status = %v; the offload should pause", status)
	}
	// Resume repeatedly, as the worker deadline scan does, until the
	// deadline triggers the software fallback.
	deadline := time.Now().Add(5 * time.Second)
	for status == asynclib.StatusPause {
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(time.Millisecond)
		status, _, err = asynclib.StartJob(job, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	if doErr != nil || res != "sw" {
		t.Fatalf("Do = %v, %v", res, doErr)
	}
	st := e.Stats()
	if st.Timeouts != 1 || st.SWFallbacks != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if e.InflightTotal() != 0 {
		t.Fatalf("inflight = %d", e.InflightTotal())
	}
}

// Stack mode: re-entering a past-deadline inflight op degrades it.
func TestStackTimeoutFallsBack(t *testing.T) {
	inj := fault.NewInjector(1, fault.Rule{Kind: fault.Stall, Endpoint: fault.AnyEndpoint, Op: fault.AnyOp, P: 1, Limit: 1})
	e, _ := hardenedEngine(t, qat.DeviceSpec{Endpoints: 1, EnginesPerEndpoint: 1}, inj, Config{
		OpTimeout: 2 * time.Millisecond,
	})
	st := &asynclib.StackOp{}
	call := &minitls.OpCall{Mode: minitls.AsyncModeStack, Stack: st}
	work := func() (any, error) { return "sw", nil }
	if _, err := e.Do(call, minitls.KindRSA, work); !errors.Is(err, minitls.ErrWantAsync) {
		t.Fatalf("submit err = %v", err)
	}
	// Before the deadline a spurious re-entry keeps waiting.
	if _, err := e.Do(call, minitls.KindRSA, work); !errors.Is(err, minitls.ErrWantAsync) {
		t.Fatalf("pre-deadline re-entry err = %v", err)
	}
	time.Sleep(5 * time.Millisecond)
	res, err := e.Do(call, minitls.KindRSA, work)
	if err != nil || res != "sw" {
		t.Fatalf("post-deadline re-entry = %v, %v", res, err)
	}
	stats := e.Stats()
	if stats.Timeouts != 1 || stats.SWFallbacks != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if st.State() != asynclib.StackIdle {
		t.Fatalf("stack state = %v; op must be reusable", st.State())
	}
	// The StackOp is reusable for a healthy follow-up offload.
	if _, err := e.Do(call, minitls.KindRSA, work); !errors.Is(err, minitls.ErrWantAsync) {
		t.Fatalf("reuse submit err = %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.Poll(0) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no response")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if res, err := e.Do(call, minitls.KindRSA, nil); err != nil || res != "sw" {
		t.Fatalf("consume = %v, %v", res, err)
	}
}

// Satellite: ring-full retry under many concurrent submitters. Each
// goroutine owns its engine (the single-owner model), all instances share
// one tiny-ringed device sprinkled with injected ring-full storms; every
// op must complete, and slot accounting must balance, under -race.
func TestConcurrentSubmittersRingFull(t *testing.T) {
	const (
		submitters = 8
		opsEach    = 40
	)
	inj := fault.NewInjector(42, fault.Rule{
		Kind: fault.RingFull, Endpoint: fault.AnyEndpoint, Op: fault.AnyOp, P: 0.3, Limit: 200,
	})
	spec := qat.DeviceSpec{
		Endpoints: 2, EnginesPerEndpoint: 2, RingCapacity: 2,
		ServiceTime: map[qat.OpType]time.Duration{qat.OpRSA: 200 * time.Microsecond},
	}
	spec.Injector = inj
	dev := qat.NewDevice(spec)
	t.Cleanup(dev.Close)

	var wg sync.WaitGroup
	errCh := make(chan error, submitters)
	for g := 0; g < submitters; g++ {
		inst, err := dev.AllocInstance()
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(Config{Instance: inst})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(g int, e *Engine) {
			defer wg.Done()
			call := &minitls.OpCall{Mode: minitls.AsyncModeOff}
			for i := 0; i < opsEach; i++ {
				want := g*1000 + i
				res, err := e.Do(call, minitls.KindRSA, func() (any, error) { return want, nil })
				if err != nil {
					errCh <- err
					return
				}
				if res != want {
					errCh <- errors.New("wrong result under ring-full storm")
					return
				}
			}
			if e.InflightTotal() != 0 {
				errCh <- errors.New("inflight not drained")
			}
		}(g, e)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	var reqs, resps uint64
	for _, c := range dev.Counters() {
		reqs += c.TotalRequests()
		resps += c.TotalResponses()
	}
	if reqs != submitters*opsEach || resps != reqs {
		t.Fatalf("device counters: requests=%d responses=%d", reqs, resps)
	}
}

// Satellite: the stack-async retry flag under an injected ring-full storm —
// the single-worker SubmitFailed/StackRetry path the server's retry queue
// drives.
func TestStackRetryUnderRingFullStorm(t *testing.T) {
	inj := fault.NewInjector(7, fault.Rule{
		Kind: fault.RingFull, Endpoint: fault.AnyEndpoint, Op: fault.AnyOp, P: 1, Limit: 5,
	})
	e, _ := hardenedEngine(t, qat.DeviceSpec{Endpoints: 1, EnginesPerEndpoint: 1}, inj, Config{})
	st := &asynclib.StackOp{}
	call := &minitls.OpCall{Mode: minitls.AsyncModeStack, Stack: st}
	work := func() (any, error) { return "v", nil }
	storms := 0
	for {
		_, err := e.Do(call, minitls.KindRSA, work)
		if errors.Is(err, minitls.ErrWantAsyncRetry) {
			storms++
			if st.State() != asynclib.StackRetry {
				t.Fatalf("state = %v after retry indication", st.State())
			}
			continue
		}
		if !errors.Is(err, minitls.ErrWantAsync) {
			t.Fatalf("submit err = %v", err)
		}
		break
	}
	if storms != 5 {
		t.Fatalf("retries before success = %d, want 5", storms)
	}
	if e.Stats().RingFulls != 5 {
		t.Fatalf("ring-full count = %d", e.Stats().RingFulls)
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.Poll(0) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no response")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if res, err := e.Do(call, minitls.KindRSA, nil); err != nil || res != "v" {
		t.Fatalf("consume = %v, %v", res, err)
	}
}
