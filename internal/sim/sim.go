// Package sim is a small deterministic discrete-event simulation kernel.
//
// A Simulation owns a virtual clock and a pending-event heap. Events are
// callbacks scheduled at absolute virtual times; ties are broken by
// scheduling order so runs are fully deterministic for a given seed.
// The kernel is single-threaded by design: model code runs inside event
// callbacks and must not block.
package sim

import (
	"container/heap"
	"math/rand"
	"time"
)

// Time is virtual time measured in nanoseconds since simulation start.
type Time int64

// Duration re-exports time.Duration for readability in model code.
type Duration = time.Duration

// ToDuration converts a virtual timestamp to a time.Duration offset.
func (t Time) ToDuration() time.Duration { return time.Duration(t) }

// Seconds returns the timestamp in seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among same-time events
	fn   func()
	dead bool // cancelled
	idx  int  // heap index, -1 when popped
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct{ ev *event }

// Stop cancels the timer. It reports whether the event had not yet fired
// or been stopped.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.dead || t.ev.idx == -1 {
		return false
	}
	t.ev.dead = true
	return true
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// Simulation is a deterministic event-driven virtual-time executor.
type Simulation struct {
	now    Time
	seq    uint64
	events eventHeap
	rng    *rand.Rand
	fired  uint64
}

// New returns a simulation with the given RNG seed.
func New(seed int64) *Simulation {
	return &Simulation{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulation) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Simulation) Rand() *rand.Rand { return s.rng }

// EventsFired returns the number of events executed so far.
func (s *Simulation) EventsFired() uint64 { return s.fired }

// Pending returns the number of scheduled (uncancelled popped excluded)
// events still in the heap, including cancelled ones not yet discarded.
func (s *Simulation) Pending() int { return len(s.events) }

// At schedules fn at absolute virtual time at. Scheduling in the past
// (before Now) panics: that is always a model bug.
func (s *Simulation) At(at Time, fn func()) *Timer {
	if at < s.now {
		panic("sim: scheduling event in the past")
	}
	ev := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn after delay d (clamped to >= 0).
func (s *Simulation) After(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+Time(d), fn)
}

// Step executes the next pending event, advancing the clock. It reports
// whether an event was executed.
func (s *Simulation) Step() bool {
	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(*event)
		if ev.dead {
			continue
		}
		s.now = ev.at
		s.fired++
		ev.fn()
		return true
	}
	return false
}

// RunUntil executes events until the clock would pass the deadline or no
// events remain. The clock is left at the time of the last executed event
// (or advanced to deadline when drained earlier and advance is true).
func (s *Simulation) RunUntil(deadline Time) {
	for len(s.events) > 0 {
		// Peek.
		next := s.events[0]
		if next.dead {
			heap.Pop(&s.events)
			continue
		}
		if next.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor advances the simulation by d virtual time.
func (s *Simulation) RunFor(d Duration) { s.RunUntil(s.now + Time(d)) }

// Drain runs events until none remain or the safety cap of maxEvents is
// reached; it reports whether the heap was fully drained.
func (s *Simulation) Drain(maxEvents uint64) bool {
	for i := uint64(0); i < maxEvents; i++ {
		if !s.Step() {
			return true
		}
	}
	return len(s.events) == 0
}
