package sim

// FIFO is a simple generic first-in-first-out queue used by model code
// (run queues, ring buffers with unbounded capacity, async queues).
type FIFO[T any] struct {
	items []T
	head  int
}

// Len returns the number of queued items.
func (q *FIFO[T]) Len() int { return len(q.items) - q.head }

// Push appends an item at the tail.
func (q *FIFO[T]) Push(v T) { q.items = append(q.items, v) }

// Pop removes and returns the head item; ok is false when empty.
func (q *FIFO[T]) Pop() (v T, ok bool) {
	if q.Len() == 0 {
		var zero T
		return zero, false
	}
	v = q.items[q.head]
	var zero T
	q.items[q.head] = zero // release reference
	q.head++
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return v, true
}

// Peek returns the head item without removing it.
func (q *FIFO[T]) Peek() (v T, ok bool) {
	if q.Len() == 0 {
		var zero T
		return zero, false
	}
	return q.items[q.head], true
}

// Clear removes all items.
func (q *FIFO[T]) Clear() {
	q.items = q.items[:0]
	q.head = 0
}

// Ring is a bounded FIFO with fixed capacity, mirroring a QAT
// hardware-assisted request/response ring.
type Ring[T any] struct {
	buf   []T
	head  int
	count int
}

// NewRing returns a ring with the given capacity (must be > 0).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		panic("sim: ring capacity must be positive")
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Cap returns the ring capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns the number of occupied slots.
func (r *Ring[T]) Len() int { return r.count }

// Full reports whether the ring has no free slots.
func (r *Ring[T]) Full() bool { return r.count == len(r.buf) }

// Put appends v; it reports false when the ring is full.
func (r *Ring[T]) Put(v T) bool {
	if r.Full() {
		return false
	}
	r.buf[(r.head+r.count)%len(r.buf)] = v
	r.count++
	return true
}

// Get removes the oldest entry; ok is false when empty.
func (r *Ring[T]) Get() (v T, ok bool) {
	if r.count == 0 {
		var zero T
		return zero, false
	}
	v = r.buf[r.head]
	var zero T
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	return v, true
}
