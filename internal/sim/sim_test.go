package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.After(30*time.Nanosecond, func() { got = append(got, 3) })
	s.After(10*time.Nanosecond, func() { got = append(got, 1) })
	s.After(20*time.Nanosecond, func() { got = append(got, 2) })
	if !s.Drain(100) {
		t.Fatal("drain did not complete")
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Fatalf("Now = %d, want 30", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Drain(100)
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.After(10, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false for pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	s.Drain(10)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(100, func() {})
	s.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	s.At(50, func() {})
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New(1)
	ran := 0
	s.At(10, func() { ran++ })
	s.At(1000, func() { ran++ })
	s.RunUntil(500)
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if s.Now() != 500 {
		t.Fatalf("Now = %d, want 500", s.Now())
	}
	s.RunUntil(2000)
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			s.After(time.Nanosecond, recurse)
		}
	}
	s.After(0, recurse)
	if !s.Drain(1000) {
		t.Fatal("drain failed")
	}
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() ([]Time, uint64) {
		s := New(42)
		var stamps []Time
		for i := 0; i < 200; i++ {
			d := time.Duration(s.Rand().Intn(1000)) * time.Nanosecond
			s.After(d, func() { stamps = append(stamps, s.Now()) })
		}
		s.Drain(1000)
		return stamps, s.EventsFired()
	}
	a, an := run()
	b, bn := run()
	if an != bn || len(a) != len(b) {
		t.Fatalf("nondeterministic event counts: %d vs %d", an, bn)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic timestamps at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestFIFOBasic(t *testing.T) {
	var q FIFO[int]
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty returned ok")
	}
	for i := 0; i < 1000; i++ {
		q.Push(i)
	}
	if q.Len() != 1000 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 1000; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = %d,%v want %d,true", v, ok, i)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len after drain = %d", q.Len())
	}
}

func TestFIFOInterleaved(t *testing.T) {
	var q FIFO[int]
	next := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 10; i++ {
			q.Push(round*10 + i)
		}
		for i := 0; i < 7; i++ {
			v, ok := q.Pop()
			if !ok || v != next {
				t.Fatalf("Pop = %d,%v want %d", v, ok, next)
			}
			next++
		}
	}
	for {
		v, ok := q.Pop()
		if !ok {
			break
		}
		if v != next {
			t.Fatalf("tail Pop = %d want %d", v, next)
		}
		next++
	}
	if next != 500 {
		t.Fatalf("drained %d items, want 500", next)
	}
}

func TestRingBounds(t *testing.T) {
	r := NewRing[int](3)
	for i := 0; i < 3; i++ {
		if !r.Put(i) {
			t.Fatalf("Put %d failed", i)
		}
	}
	if r.Put(99) {
		t.Fatal("Put succeeded on full ring")
	}
	if !r.Full() {
		t.Fatal("Full = false")
	}
	v, ok := r.Get()
	if !ok || v != 0 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if !r.Put(3) {
		t.Fatal("Put after Get failed")
	}
	want := []int{1, 2, 3}
	for _, w := range want {
		v, ok := r.Get()
		if !ok || v != w {
			t.Fatalf("Get = %d,%v want %d", v, ok, w)
		}
	}
	if _, ok := r.Get(); ok {
		t.Fatal("Get on empty succeeded")
	}
}

// Property: a Ring behaves exactly like a bounded FIFO queue for any
// sequence of put/get operations.
func TestRingMatchesModel(t *testing.T) {
	f := func(ops []bool, capSeed uint8) bool {
		capacity := int(capSeed%16) + 1
		ring := NewRing[int](capacity)
		var model []int
		next := 0
		for _, put := range ops {
			if put {
				ok := ring.Put(next)
				wantOK := len(model) < capacity
				if ok != wantOK {
					return false
				}
				if ok {
					model = append(model, next)
				}
				next++
			} else {
				v, ok := ring.Get()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if ring.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNewRingPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRing[int](0)
}
