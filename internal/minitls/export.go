package minitls

import (
	"encoding/binary"
	"errors"
	"io"
)

// kTLS-style key-export seam. After a handshake completes, the negotiated
// record-protection keys of either direction can be exported and handed
// to an external record engine (internal/record) — the userspace analogue
// of installing keys into kernel TLS with setsockopt(SOL_TLS): the
// handshake stays in this package, the data path moves out.

// Exported wire record-type values, for engines that frame records
// themselves after taking over a direction.
const (
	// RecordTypeAlert frames alert records (close-notify).
	RecordTypeAlert uint8 = recordAlert
	// RecordTypeApplicationData frames application-data records.
	RecordTypeApplicationData uint8 = recordApplicationData
)

// AlertCloseNotify is the close-notify alert payload (warning level,
// description 0), sealed as a RecordTypeAlert record by an engine that
// owns a detached write direction.
func AlertCloseNotify() []byte { return []byte{1, 0} }

// AppendRecordHeader appends the 5-byte TLS record header for a body of
// n bytes and returns the extended slice.
func AppendRecordHeader(dst []byte, wireTyp uint8, n int) []byte {
	var hdr [RecordHeaderLen]byte
	hdr[0] = wireTyp
	hdr[1], hdr[2] = 0x03, 0x03
	binary.BigEndian.PutUint16(hdr[3:5], uint16(n))
	return append(dst, hdr[:]...)
}

var (
	errNotExportable  = errors.New("minitls: record protection is not exportable")
	errNotDone        = errors.New("minitls: handshake not complete")
	errWriterDetached = errors.New("minitls: write direction detached to an external record engine")
)

// KeyMaterial is one direction's record-protection state, exported after
// handshake completion. Exactly one of MACKey (TLS 1.2 CBC+HMAC) or IV
// (TLS 1.3 AES-GCM) is set; Seq is the sequence number the next record
// in that direction must use — continuity is what keeps a software peer
// able to read the stream after the hand-off.
type KeyMaterial struct {
	Version uint16
	Suite   uint16
	// Key is the AES-128 cipher key (both suite families).
	Key []byte
	// MACKey is the HMAC-SHA1 key (TLS 1.2 CBC suites).
	MACKey []byte
	// IV is the implicit per-connection nonce (TLS 1.3 GCM suites).
	IV []byte
	// Seq is the next record sequence number for this direction.
	Seq uint64
}

// RecordCodec seals and opens TLS records outside a Conn, built from
// exported KeyMaterial. Seal and Open are pure with respect to codec
// state (the caller owns sequence numbers), so one codec may protect
// records concurrently — the property the offloaded record engine's
// pipelining relies on.
type RecordCodec interface {
	// Seal protects payload as a record of the given type under seq,
	// returning the wire record type and encrypted body.
	Seal(seq uint64, typ uint8, payload []byte, rnd io.Reader) (wireTyp uint8, body []byte, err error)
	// Open decrypts a wire body under seq, returning the inner record
	// type and plaintext.
	Open(seq uint64, wireTyp uint8, body []byte) (typ uint8, payload []byte, err error)
	// Overhead is the per-record ciphertext expansion upper bound.
	Overhead() int
}

// codec adapts the internal recordProtection to the exported interface.
type codec struct{ prot recordProtection }

func (c codec) Seal(seq uint64, typ uint8, payload []byte, rnd io.Reader) (uint8, []byte, error) {
	return c.prot.seal(seq, typ, payload, rnd)
}

func (c codec) Open(seq uint64, wireTyp uint8, body []byte) (uint8, []byte, error) {
	return c.prot.open(seq, wireTyp, body)
}

func (c codec) Overhead() int { return c.prot.overhead() }

// NewRecordCodec builds a RecordCodec from exported key material. The
// suite family is inferred from which key fields are present.
func NewRecordCodec(km KeyMaterial) (RecordCodec, error) {
	switch {
	case len(km.MACKey) > 0:
		p, err := newCBCProtection(cbcKeys{cipherKey: km.Key, macKey: km.MACKey})
		if err != nil {
			return nil, err
		}
		return codec{prot: p}, nil
	case len(km.IV) > 0:
		p, err := newGCMProtection(gcmKeys{key: km.Key, iv: km.IV})
		if err != nil {
			return nil, err
		}
		return codec{prot: p}, nil
	default:
		return nil, errors.New("minitls: key material carries neither MAC key nor IV")
	}
}

// keyExporter is implemented by protections whose raw keys can be
// exported (nullProtection cannot — exporting before the handshake
// installed keys is always an error).
type keyExporter interface {
	exportKeys() KeyMaterial
}

func (p *cbcProtection) exportKeys() KeyMaterial {
	return KeyMaterial{
		Key:    append([]byte(nil), p.keys.cipherKey...),
		MACKey: append([]byte(nil), p.keys.macKey...),
	}
}

func (p *gcmProtection) exportKeys() KeyMaterial {
	return KeyMaterial{
		Key: append([]byte(nil), p.key...),
		IV:  append([]byte(nil), p.iv...),
	}
}

// ExportWriteKeys exports the out-direction record keys and the next
// sequence number. Valid only after the handshake has completed.
func (c *Conn) ExportWriteKeys() (KeyMaterial, error) {
	return c.exportKeys(&c.out)
}

// ExportReadKeys exports the in-direction record keys and the next
// sequence number (the decrypt-side counterpart of ExportWriteKeys).
func (c *Conn) ExportReadKeys() (KeyMaterial, error) {
	return c.exportKeys(&c.in)
}

func (c *Conn) exportKeys(h *halfConn) (KeyMaterial, error) {
	if !c.handshakeDone {
		return KeyMaterial{}, errNotDone
	}
	if c.permErr != nil {
		return KeyMaterial{}, c.permErr
	}
	ex, ok := h.protection().(keyExporter)
	if !ok {
		return KeyMaterial{}, errNotExportable
	}
	km := ex.exportKeys()
	km.Version = c.version
	km.Suite = c.suite
	km.Seq = h.seq
	return km, nil
}

// DetachWriter hands ownership of the write direction to an external
// record engine: Write refuses from now on, and Close no longer emits
// the close-notify alert (the engine must, through its own sealed
// stream, so sequence numbers stay continuous). Reads are unaffected.
func (c *Conn) DetachWriter() error {
	if !c.handshakeDone {
		return errNotDone
	}
	c.outDetached = true
	return nil
}

// WriterDetached reports whether the write direction has been detached.
func (c *Conn) WriterDetached() bool { return c.outDetached }
