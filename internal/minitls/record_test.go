package minitls

import (
	"bytes"
	"crypto/rand"
	"testing"
	"testing/quick"
)

func testCBCKeys() cbcKeys {
	return cbcKeys{
		cipherKey: bytes.Repeat([]byte{0x11}, 16),
		macKey:    bytes.Repeat([]byte{0x22}, 20),
	}
}

func TestCBCSealOpenRoundTrip(t *testing.T) {
	p, err := newCBCProtection(testCBCKeys())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 15, 16, 17, 100, MaxPlaintext} {
		payload := make([]byte, n)
		rand.Read(payload)
		wireTyp, body, err := p.seal(7, recordApplicationData, payload, rand.Reader)
		if err != nil {
			t.Fatalf("seal(%d): %v", n, err)
		}
		typ, got, err := p.open(7, wireTyp, body)
		if err != nil {
			t.Fatalf("open(%d): %v", n, err)
		}
		if typ != recordApplicationData || !bytes.Equal(got, payload) {
			t.Fatalf("roundtrip(%d) mismatch", n)
		}
	}
}

func TestCBCWrongSequenceFailsMAC(t *testing.T) {
	p, _ := newCBCProtection(testCBCKeys())
	_, body, _ := p.seal(1, recordApplicationData, []byte("hello"), rand.Reader)
	if _, _, err := p.open(2, recordApplicationData, body); err == nil {
		t.Fatal("open with wrong seq should fail")
	}
}

func TestCBCTamperDetected(t *testing.T) {
	p, _ := newCBCProtection(testCBCKeys())
	payload := bytes.Repeat([]byte{0xab}, 64)
	_, body, _ := p.seal(0, recordApplicationData, payload, rand.Reader)
	for _, i := range []int{0, 16, len(body) - 1} {
		mut := append([]byte(nil), body...)
		mut[i] ^= 0x01
		if _, _, err := p.open(0, recordApplicationData, mut); err == nil {
			t.Fatalf("tamper at byte %d not detected", i)
		}
	}
}

func TestCBCRejectsBadLengths(t *testing.T) {
	p, _ := newCBCProtection(testCBCKeys())
	if _, _, err := p.open(0, recordApplicationData, make([]byte, 17)); err == nil {
		t.Fatal("non-block-multiple body accepted")
	}
	if _, _, err := p.open(0, recordApplicationData, make([]byte, 16)); err == nil {
		t.Fatal("too-short body accepted")
	}
}

func TestCBCKeyLengthValidation(t *testing.T) {
	if _, err := newCBCProtection(cbcKeys{cipherKey: make([]byte, 8), macKey: make([]byte, 20)}); err == nil {
		t.Fatal("bad cipher key accepted")
	}
	if _, err := newCBCProtection(cbcKeys{cipherKey: make([]byte, 16), macKey: make([]byte, 8)}); err == nil {
		t.Fatal("bad mac key accepted")
	}
}

func testGCMKeys() gcmKeys {
	return gcmKeys{
		key: bytes.Repeat([]byte{0x33}, 16),
		iv:  bytes.Repeat([]byte{0x44}, 12),
	}
}

func TestGCMSealOpenRoundTrip(t *testing.T) {
	p, err := newGCMProtection(testGCMKeys())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 100, MaxPlaintext} {
		payload := make([]byte, n)
		rand.Read(payload)
		wireTyp, body, err := p.seal(3, recordHandshake, payload, nil)
		if err != nil {
			t.Fatal(err)
		}
		if wireTyp != recordApplicationData {
			t.Fatalf("wire type = %d; TLS 1.3 records masquerade as app data", wireTyp)
		}
		typ, got, err := p.open(3, wireTyp, body)
		if err != nil {
			t.Fatal(err)
		}
		if typ != recordHandshake || !bytes.Equal(got, payload) {
			t.Fatalf("roundtrip(%d) mismatch", n)
		}
	}
}

func TestGCMWrongSeqOrTamper(t *testing.T) {
	p, _ := newGCMProtection(testGCMKeys())
	_, body, _ := p.seal(5, recordApplicationData, []byte("data"), nil)
	if _, _, err := p.open(6, recordApplicationData, body); err == nil {
		t.Fatal("wrong seq accepted")
	}
	mut := append([]byte(nil), body...)
	mut[0] ^= 1
	if _, _, err := p.open(5, recordApplicationData, mut); err == nil {
		t.Fatal("tampered record accepted")
	}
	if _, _, err := p.open(5, recordHandshake, body); err == nil {
		t.Fatal("non-appdata wire type accepted")
	}
}

func TestGCMKeyValidation(t *testing.T) {
	if _, err := newGCMProtection(gcmKeys{key: make([]byte, 8), iv: make([]byte, 12)}); err == nil {
		t.Fatal("bad key accepted")
	}
	if _, err := newGCMProtection(gcmKeys{key: make([]byte, 16), iv: make([]byte, 8)}); err == nil {
		t.Fatal("bad iv accepted")
	}
}

// Property: CBC and GCM protections round-trip arbitrary payloads at
// arbitrary sequence numbers.
func TestProtectionRoundTripProperty(t *testing.T) {
	cbc, _ := newCBCProtection(testCBCKeys())
	gcm, _ := newGCMProtection(testGCMKeys())
	f := func(payload []byte, seq uint64, typRaw uint8) bool {
		if len(payload) > MaxPlaintext {
			payload = payload[:MaxPlaintext]
		}
		typ := recordApplicationData
		if typRaw%2 == 0 {
			typ = recordHandshake
		}
		for _, p := range []recordProtection{cbc, gcm} {
			wt, body, err := p.seal(seq, typ, payload, rand.Reader)
			if err != nil {
				return false
			}
			gotTyp, got, err := p.open(seq, wt, body)
			if err != nil || gotTyp != typ || !bytes.Equal(got, payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNullProtectionPassThrough(t *testing.T) {
	var p nullProtection
	wt, body, err := p.seal(0, recordHandshake, []byte("x"), nil)
	if err != nil || wt != recordHandshake || string(body) != "x" {
		t.Fatal("null seal should pass through")
	}
	typ, got, err := p.open(0, recordHandshake, []byte("y"))
	if err != nil || typ != recordHandshake || string(got) != "y" {
		t.Fatal("null open should pass through")
	}
}

func TestHalfConnSetProtectionResetsSeq(t *testing.T) {
	var h halfConn
	h.seq = 9
	h.setProtection(nullProtection{})
	if h.seq != 0 {
		t.Fatalf("seq = %d after setProtection", h.seq)
	}
	if h.protection() == nil {
		t.Fatal("protection nil")
	}
}
