package prf

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// Published TLS 1.2 PRF (P_SHA256) test vector, widely used for
// interoperability testing (e.g. IETF TLS WG mail archive).
func TestTLS12KnownVector(t *testing.T) {
	secret := unhex(t, "9bbe436ba940f017b17652849a71db35")
	seed := unhex(t, "a0ba9f936cda311827a6f796ffd5198c")
	want := unhex(t,
		"e3f229ba727be17b8d122620557cd453c2aab21d07c3d495329b52d4e61edb5a"+
			"6b301791e90d35c9c9a46b4e14baf9af0fa022f7077def17abfd3797c0564bab"+
			"4fbc91666e9def9b97fce34f796789baa48082d122ee42c5a72e5a5110fff701"+
			"87347b66")
	got := TLS12(secret, "test label", seed, 100)
	if !bytes.Equal(got, want) {
		t.Fatalf("PRF mismatch:\n got %x\nwant %x", got, want)
	}
}

func TestTLS12Properties(t *testing.T) {
	secret := []byte("secret")
	seed := []byte("seed")
	a := TLS12(secret, "label", seed, 48)
	b := TLS12(secret, "label", seed, 48)
	if !bytes.Equal(a, b) {
		t.Fatal("PRF not deterministic")
	}
	// Prefix property: shorter output is a prefix of longer output.
	long := TLS12(secret, "label", seed, 100)
	if !bytes.Equal(long[:48], a) {
		t.Fatal("PRF output not prefix-consistent")
	}
	// Different label produces different output.
	c := TLS12(secret, "other", seed, 48)
	if bytes.Equal(a, c) {
		t.Fatal("different labels produced same output")
	}
	// Different secret produces different output.
	d := TLS12([]byte("secret2"), "label", seed, 48)
	if bytes.Equal(a, d) {
		t.Fatal("different secrets produced same output")
	}
}

func TestTLS12ZeroLength(t *testing.T) {
	if got := TLS12([]byte("s"), "l", []byte("x"), 0); len(got) != 0 {
		t.Fatalf("len = %d, want 0", len(got))
	}
}

// RFC 5869 Appendix A, test case 1 (SHA-256).
func TestHKDFRFC5869Case1(t *testing.T) {
	ikm := unhex(t, "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	salt := unhex(t, "000102030405060708090a0b0c")
	info := unhex(t, "f0f1f2f3f4f5f6f7f8f9")
	wantPRK := unhex(t, "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5")
	wantOKM := unhex(t, "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865")

	prk := HKDFExtract(salt, ikm)
	if !bytes.Equal(prk, wantPRK) {
		t.Fatalf("PRK = %x, want %x", prk, wantPRK)
	}
	okm := HKDFExpand(prk, info, 42)
	if !bytes.Equal(okm, wantOKM) {
		t.Fatalf("OKM = %x, want %x", okm, wantOKM)
	}
}

// RFC 5869 Appendix A, test case 3 (SHA-256, zero-length salt/info).
func TestHKDFRFC5869Case3(t *testing.T) {
	ikm := unhex(t, "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	wantOKM := unhex(t, "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8")
	prk := HKDFExtract(nil, ikm)
	okm := HKDFExpand(prk, nil, 42)
	if !bytes.Equal(okm, wantOKM) {
		t.Fatalf("OKM = %x, want %x", okm, wantOKM)
	}
}

func TestHKDFExpandTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	HKDFExpand(make([]byte, 32), nil, 255*sha256.Size+1)
}

func TestHKDFExpandLabelStructure(t *testing.T) {
	secret := bytes.Repeat([]byte{0x42}, 32)
	th := sha256.Sum256(nil)
	a := HKDFExpandLabel(secret, "c hs traffic", th[:], 32)
	b := HKDFExpandLabel(secret, "s hs traffic", th[:], 32)
	if bytes.Equal(a, b) {
		t.Fatal("distinct labels must derive distinct secrets")
	}
	if len(a) != 32 {
		t.Fatalf("len = %d", len(a))
	}
	// Deterministic.
	if !bytes.Equal(a, HKDFExpandLabel(secret, "c hs traffic", th[:], 32)) {
		t.Fatal("not deterministic")
	}
}

func TestDeriveSecretLength(t *testing.T) {
	s := DeriveSecret(make([]byte, 32), "derived", make([]byte, 32))
	if len(s) != sha256.Size {
		t.Fatalf("len = %d", len(s))
	}
}

// Property: requested output length is always honored exactly, and outputs
// for different lengths agree on their common prefix.
func TestOutputLengthProperty(t *testing.T) {
	f := func(secret, seed []byte, n uint8) bool {
		l1 := int(n % 200)
		l2 := l1 + 13
		a := TLS12(secret, "x", seed, l1)
		b := TLS12(secret, "x", seed, l2)
		if len(a) != l1 || len(b) != l2 {
			return false
		}
		return bytes.Equal(b[:l1], a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	g := func(prk, info []byte, n uint8) bool {
		if len(prk) == 0 {
			prk = []byte{0}
		}
		l := int(n)%100 + 1
		return len(HKDFExpand(prk, info, l)) == l
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTLS12PRF48(b *testing.B) {
	secret := make([]byte, 48)
	seed := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TLS12(secret, "master secret", seed, 48)
	}
}

func BenchmarkHKDFExpandLabel(b *testing.B) {
	secret := make([]byte, 32)
	th := make([]byte, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		HKDFExpandLabel(secret, "s ap traffic", th, 32)
	}
}
