// Package prf implements the TLS key-derivation primitives the QTLS paper
// counts in Table 1: the TLS 1.2 pseudo random function (RFC 5246 §5) and
// the TLS 1.3 HMAC-based key derivation function HKDF (RFC 5869) together
// with the HKDF-Expand-Label construction of RFC 8446 §7.1.
//
// In QTLS, PRF operations are offloadable to the QAT accelerator while
// HKDF is not ("the TLS 1.3 protocol introduces a new key derivation
// function named HKDF, which cannot be offloaded through the QAT Engine
// currently", §5.2) — which is why the TLS 1.3 speedup in Fig. 8 is lower
// than the TLS 1.2 one. Both are implemented here in pure Go over the
// standard library's HMAC; the engine layer decides what gets offloaded.
package prf

import (
	"crypto/hmac"
	"crypto/sha256"
	"hash"
)

// TLS12 computes PRF(secret, label, seed) with P_SHA256 as specified by
// RFC 5246 §5 for TLS 1.2, producing length bytes.
func TLS12(secret []byte, label string, seed []byte, length int) []byte {
	labelAndSeed := make([]byte, 0, len(label)+len(seed))
	labelAndSeed = append(labelAndSeed, label...)
	labelAndSeed = append(labelAndSeed, seed...)
	return pHash(sha256.New, secret, labelAndSeed, length)
}

// pHash is the P_hash data-expansion function of RFC 5246 §5:
//
//	P_hash(secret, seed) = HMAC_hash(secret, A(1) + seed) +
//	                       HMAC_hash(secret, A(2) + seed) + ...
//	A(0) = seed, A(i) = HMAC_hash(secret, A(i-1))
func pHash(newHash func() hash.Hash, secret, seed []byte, length int) []byte {
	out := make([]byte, 0, length)
	mac := hmac.New(newHash, secret)
	mac.Write(seed)
	a := mac.Sum(nil)
	for len(out) < length {
		mac.Reset()
		mac.Write(a)
		mac.Write(seed)
		out = append(out, mac.Sum(nil)...)
		mac.Reset()
		mac.Write(a)
		a = mac.Sum(nil)
	}
	return out[:length]
}

// HKDFExtract computes HKDF-Extract(salt, ikm) with SHA-256 (RFC 5869 §2.2).
// A nil or empty salt is replaced by a string of HashLen zeros.
func HKDFExtract(salt, ikm []byte) []byte {
	if len(salt) == 0 {
		salt = make([]byte, sha256.Size)
	}
	mac := hmac.New(sha256.New, salt)
	mac.Write(ikm)
	return mac.Sum(nil)
}

// HKDFExpand computes HKDF-Expand(prk, info, length) with SHA-256
// (RFC 5869 §2.3). length must not exceed 255*HashLen.
func HKDFExpand(prk, info []byte, length int) []byte {
	if length > 255*sha256.Size {
		panic("prf: HKDF-Expand length too large")
	}
	var (
		out  = make([]byte, 0, length)
		t    []byte
		ctr  byte
		hmac = hmac.New(sha256.New, prk)
	)
	for len(out) < length {
		ctr++
		hmac.Reset()
		hmac.Write(t)
		hmac.Write(info)
		hmac.Write([]byte{ctr})
		t = hmac.Sum(nil)
		out = append(out, t...)
	}
	return out[:length]
}

// HKDFExpandLabel implements HKDF-Expand-Label of RFC 8446 §7.1:
//
//	HKDF-Expand(Secret, HkdfLabel, Length) where HkdfLabel is
//	uint16 length || opaque label<7..255> = "tls13 " + Label ||
//	opaque context<0..255>
func HKDFExpandLabel(secret []byte, label string, context []byte, length int) []byte {
	fullLabel := "tls13 " + label
	info := make([]byte, 0, 2+1+len(fullLabel)+1+len(context))
	info = append(info, byte(length>>8), byte(length))
	info = append(info, byte(len(fullLabel)))
	info = append(info, fullLabel...)
	info = append(info, byte(len(context)))
	info = append(info, context...)
	return HKDFExpand(secret, info, length)
}

// DeriveSecret implements Derive-Secret of RFC 8446 §7.1; transcriptHash
// is the hash of the handshake messages so far.
func DeriveSecret(secret []byte, label string, transcriptHash []byte) []byte {
	return HKDFExpandLabel(secret, label, transcriptHash, sha256.Size)
}
