package minitls

import (
	"bytes"
	"crypto/ecdh"
	"crypto/ecdsa"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
)

// serverHS carries server handshake intermediate state across state-machine
// steps. Keeping every input of a crypto operation here is what makes
// stack-async re-entry safe: a re-entered state finds its inputs intact and
// the provider finds its pending result.
type serverHS struct {
	clientHello  clientHelloMsg
	clientRandom [32]byte
	serverRandom [32]byte
	sessionID    []byte
	kx           keyExchange

	ecdhPriv *ecdh.PrivateKey
	skx      serverKeyExchangeMsg
	cke      clientKeyExchangeMsg

	premaster []byte
	master    []byte
	clientCBC cbcKeys
	serverCBC cbcKeys

	clientVerify []byte // client Finished verify_data as received
	finHash      []byte // transcript hash the client Finished covers
	serverVerify []byte

	offerTicket bool

	// TLS 1.3 state.
	clientShare  []byte
	sharedSecret []byte
	sec          tls13Secrets
	certVerify   []byte
	cvHash       []byte
	psk          []byte // resumption PSK accepted from the ClientHello
}

// serverHandshakeStep advances the server handshake state machine until it
// completes or a retriable condition (want-read / want-async) surfaces.
// This is the QTLS-modified Nginx/OpenSSL handshake path: each state is a
// clean re-entry point, so a paused offload job resumes without redoing
// completed work (§3.2, §4.1).
func (c *Conn) serverHandshakeStep() error {
	if c.config.Identity == nil && c.config.GetIdentity == nil {
		return errors.New("minitls: server requires an Identity")
	}
	if c.hsrv == nil {
		c.hsrv = &serverHS{}
		c.identity = c.config.Identity
		c.state = stateS12ReadClientHello
	}
	for !c.handshakeDone {
		if err := c.serverStateStep(); err != nil {
			return err
		}
	}
	return nil
}

func (c *Conn) serverStateStep() error {
	hs := c.hsrv
	switch c.state {
	case stateS12ReadClientHello:
		return c.srvReadClientHello()

	// --- TLS 1.2 full handshake ---------------------------------------

	case stateS12GenServerKey:
		curve := c.config.curve()
		rnd := c.config.rand()
		res, err := c.do(KindECDH, func() (any, error) {
			return curve.GenerateKey(rnd)
		})
		if err != nil {
			return err
		}
		hs.ecdhPriv = res.(*ecdh.PrivateKey)
		hs.skx = serverKeyExchangeMsg{
			curveID:   curveIDFor(curve),
			publicKey: hs.ecdhPriv.PublicKey().Bytes(),
		}
		c.state = stateS12SignSKX
		return nil

	case stateS12SignSKX:
		var signInput bytes.Buffer
		signInput.Write(hs.clientRandom[:])
		signInput.Write(hs.serverRandom[:])
		signInput.Write(hs.skx.paramsBytes())
		digest := sha256.Sum256(signInput.Bytes())
		sig, alg, err := c.signDigest(digest[:])
		if err != nil {
			return err
		}
		hs.skx.sigAlg = alg
		hs.skx.signature = sig
		c.state = stateS12FlushHello
		return nil

	case stateS12FlushHello:
		sh := serverHelloMsg{
			version:       VersionTLS12,
			random:        hs.serverRandom,
			sessionID:     hs.sessionID,
			cipherSuite:   c.suite,
			ticketOffered: hs.offerTicket,
		}
		if err := c.writeHandshake(sh.marshal()); err != nil {
			return err
		}
		cert := certificateMsg{chain: c.identity.CertDER}
		if err := c.writeHandshake(cert.marshal()); err != nil {
			return err
		}
		if hs.kx != kxRSA {
			if err := c.writeHandshake(hs.skx.marshal()); err != nil {
				return err
			}
		}
		if err := c.writeHandshake(marshalServerHelloDone()); err != nil {
			return err
		}
		c.state = stateS12ReadCKE
		return nil

	case stateS12ReadCKE:
		typ, body, err := c.readHandshakeMsg()
		if err != nil {
			return err
		}
		if typ != typeClientKeyExchange {
			return unexpectedMsg(typ, "ClientKeyExchange")
		}
		if err := hs.cke.unmarshal(body, hs.kx == kxRSA); err != nil {
			return err
		}
		c.state = stateS12ProcessCKE
		return nil

	case stateS12ProcessCKE:
		if hs.kx == kxRSA {
			key, ok := c.identity.PrivateKey.(*rsa.PrivateKey)
			if !ok {
				return errors.New("minitls: RSA suite without RSA key")
			}
			ct := hs.cke.rsaCiphertext
			res, err := c.do(KindRSA, func() (any, error) {
				return rsa.DecryptPKCS1v15(nil, key, ct)
			})
			if err != nil {
				return err
			}
			hs.premaster = res.([]byte)
			if len(hs.premaster) != 48 {
				return errors.New("minitls: bad premaster length")
			}
		} else {
			priv := hs.ecdhPriv
			pubBytes := hs.cke.ecdhPublic
			curve := c.config.curve()
			res, err := c.do(KindECDH, func() (any, error) {
				peer, err := curve.NewPublicKey(pubBytes)
				if err != nil {
					return nil, err
				}
				return priv.ECDH(peer)
			})
			if err != nil {
				return err
			}
			hs.premaster = res.([]byte)
		}
		c.state = stateS12DeriveMaster
		return nil

	case stateS12DeriveMaster:
		master, err := c.doPRF(hs.premaster, "master secret",
			masterSeed(hs.clientRandom, hs.serverRandom), masterSecretLen)
		if err != nil {
			return err
		}
		hs.master = master
		c.state = stateS12DeriveKeys
		return nil

	case stateS12DeriveKeys:
		kb, err := c.doPRF(hs.master, "key expansion",
			keyExpansionSeed(hs.clientRandom, hs.serverRandom), keyBlockLen)
		if err != nil {
			return err
		}
		hs.clientCBC, hs.serverCBC = splitKeyBlock(kb)
		c.state = stateS12ReadCCS
		return nil

	case stateS12ReadCCS:
		if err := c.readChangeCipherSpec(); err != nil {
			return err
		}
		prot, err := newCBCProtection(hs.clientCBC)
		if err != nil {
			return err
		}
		c.in.setProtection(prot)
		c.state = stateS12ReadFinished
		return nil

	case stateS12ReadFinished:
		typ, body, err := c.readHandshakeMsg()
		if err != nil {
			return err
		}
		if typ != typeFinished {
			return unexpectedMsg(typ, "Finished")
		}
		var fin finishedMsg
		if err := fin.unmarshal(body); err != nil {
			return err
		}
		hs.clientVerify = fin.verifyData
		hs.finHash = c.preMsgHash
		c.state = stateS12VerifyFin
		return nil

	case stateS12VerifyFin:
		want, err := c.doPRF(hs.master, "client finished", hs.finHash, finishedVerify12)
		if err != nil {
			return err
		}
		if subtle.ConstantTimeCompare(want, hs.clientVerify) != 1 {
			return errors.New("minitls: client Finished verification failed")
		}
		c.state = stateS12SendFinished
		return nil

	case stateS12SendFinished:
		// Ticket (if offered), then CCS; no crypto offload in this state.
		if hs.offerTicket {
			ticket, err := c.config.sealSessionTicket(SessionState{
				Version:      VersionTLS12,
				CipherSuite:  c.suite,
				MasterSecret: hs.master,
			})
			if err != nil {
				return err
			}
			nst := newSessionTicketMsg{lifetimeSeconds: 3600, ticket: ticket}
			if err := c.writeHandshake(nst.marshal()); err != nil {
				return err
			}
			c.ticketSent = true
		}
		if err := c.writeRecord(recordChangeCipherSpec, []byte{1}); err != nil {
			return err
		}
		prot, err := newCBCProtection(hs.serverCBC)
		if err != nil {
			return err
		}
		c.out.setProtection(prot)
		c.state = stateS12ComputeFin
		return nil

	case stateS12ComputeFin:
		verify, err := c.doPRF(hs.master, "server finished", c.transcriptHash(), finishedVerify12)
		if err != nil {
			return err
		}
		hs.serverVerify = verify
		c.state = stateDone
		fin := finishedMsg{verifyData: hs.serverVerify}
		if err := c.writeHandshake(fin.marshal()); err != nil {
			return err
		}
		if len(hs.sessionID) > 0 && c.config.SessionCache != nil {
			c.config.SessionCache.Put(hs.sessionID, SessionState{
				Version:      VersionTLS12,
				CipherSuite:  c.suite,
				MasterSecret: hs.master,
			})
		}
		c.finishHandshake()
		return nil

	// --- TLS 1.2 abbreviated handshake (session resumption) ------------

	case stateS12ResumeKeys:
		kb, err := c.doPRF(hs.master, "key expansion",
			keyExpansionSeed(hs.clientRandom, hs.serverRandom), keyBlockLen)
		if err != nil {
			return err
		}
		hs.clientCBC, hs.serverCBC = splitKeyBlock(kb)
		c.state = stateS12ResumeSrvFin
		return nil

	case stateS12ResumeSrvFin:
		verify, err := c.doPRF(hs.master, "server finished", c.transcriptHash(), finishedVerify12)
		if err != nil {
			return err
		}
		hs.serverVerify = verify
		c.state = stateS12ResumeSend
		return nil

	case stateS12ResumeSend:
		if err := c.writeRecord(recordChangeCipherSpec, []byte{1}); err != nil {
			return err
		}
		prot, err := newCBCProtection(hs.serverCBC)
		if err != nil {
			return err
		}
		c.out.setProtection(prot)
		fin := finishedMsg{verifyData: hs.serverVerify}
		if err := c.writeHandshake(fin.marshal()); err != nil {
			return err
		}
		c.state = stateS12ResumeReadCCS
		return nil

	case stateS12ResumeReadCCS:
		if err := c.readChangeCipherSpec(); err != nil {
			return err
		}
		prot, err := newCBCProtection(hs.clientCBC)
		if err != nil {
			return err
		}
		c.in.setProtection(prot)
		c.state = stateS12ResumeReadFin
		return nil

	case stateS12ResumeReadFin:
		typ, body, err := c.readHandshakeMsg()
		if err != nil {
			return err
		}
		if typ != typeFinished {
			return unexpectedMsg(typ, "Finished")
		}
		var fin finishedMsg
		if err := fin.unmarshal(body); err != nil {
			return err
		}
		hs.clientVerify = fin.verifyData
		hs.finHash = c.preMsgHash
		c.state = stateS12ResumeVerify
		return nil

	case stateS12ResumeVerify:
		want, err := c.doPRF(hs.master, "client finished", hs.finHash, finishedVerify12)
		if err != nil {
			return err
		}
		if subtle.ConstantTimeCompare(want, hs.clientVerify) != 1 {
			return errors.New("minitls: client Finished verification failed")
		}
		c.state = stateDone
		c.finishHandshake()
		return nil

	// --- TLS 1.3 --------------------------------------------------------

	case stateS13GenKey:
		curve := c.config.curve()
		rnd := c.config.rand()
		res, err := c.do(KindECDH, func() (any, error) {
			return curve.GenerateKey(rnd)
		})
		if err != nil {
			return err
		}
		hs.ecdhPriv = res.(*ecdh.PrivateKey)
		c.state = stateS13Derive
		return nil

	case stateS13Derive:
		priv := hs.ecdhPriv
		share := hs.clientShare
		curve := c.config.curve()
		res, err := c.do(KindECDH, func() (any, error) {
			peer, err := curve.NewPublicKey(share)
			if err != nil {
				return nil, err
			}
			return priv.ECDH(peer)
		})
		if err != nil {
			return err
		}
		hs.sharedSecret = res.([]byte)
		c.state = stateS13Schedule1
		return nil

	case stateS13Schedule1:
		// ServerHello first: the handshake secrets cover CH..SH.
		sh := serverHelloMsg{
			version:       VersionTLS13,
			random:        hs.serverRandom,
			sessionID:     hs.clientHello.sessionID,
			cipherSuite:   c.suite,
			hasKeyShare:   true,
			keyShareGroup: curveIDFor(c.config.curve()),
			keyShareData:  hs.ecdhPriv.PublicKey().Bytes(),
			pskSelected:   c.didResume,
		}
		if err := c.writeHandshake(sh.marshal()); err != nil {
			return err
		}
		if err := c.schedule13Handshake(); err != nil {
			return err
		}
		// Install handshake protections and send the encrypted flight up
		// to Certificate (PSK resumption skips the certificate flight).
		outProt, err := newGCMProtection(trafficKeys(hs.sec.serverHS))
		if err != nil {
			return err
		}
		c.out.setProtection(outProt)
		inProt, err := newGCMProtection(trafficKeys(hs.sec.clientHS))
		if err != nil {
			return err
		}
		c.in.setProtection(inProt)
		var ee encryptedExtensionsMsg
		if err := c.writeHandshake(ee.marshal()); err != nil {
			return err
		}
		if c.didResume {
			c.state = stateS13Flush
			return nil
		}
		cert := certificateMsg{chain: c.identity.CertDER}
		if err := c.writeHandshake(cert.marshal()); err != nil {
			return err
		}
		hs.cvHash = c.transcriptHash()
		c.state = stateS13SignCV
		return nil

	case stateS13SignCV:
		content := certVerifyContent13(hs.cvHash)
		digest := sha256.Sum256(content)
		sig, alg, err := c.signDigest13(digest[:])
		if err != nil {
			return err
		}
		hs.certVerify = sig
		cv := certificateVerifyMsg{sigAlg: alg, signature: sig}
		if err := c.writeHandshake(cv.marshal()); err != nil {
			return err
		}
		c.state = stateS13Flush
		return nil

	case stateS13Flush:
		// Server Finished over the transcript through CertificateVerify.
		verify, err := c.hkdfOp(func() []byte {
			return finishedMAC13(hs.sec.serverHS, c.transcriptHash())
		})
		if err != nil {
			return err
		}
		fin := finishedMsg{verifyData: verify}
		if err := c.writeHandshake(fin.marshal()); err != nil {
			return err
		}
		// Application traffic secrets cover CH..server Finished.
		if err := c.schedule13App(c.transcriptHash()); err != nil {
			return err
		}
		outProt, err := newGCMProtection(trafficKeys(hs.sec.serverApp))
		if err != nil {
			return err
		}
		c.out.setProtection(outProt)
		c.state = stateS13ReadFin
		return nil

	case stateS13ReadFin:
		typ, body, err := c.readHandshakeMsg()
		if err != nil {
			return err
		}
		if typ != typeFinished {
			return unexpectedMsg(typ, "Finished")
		}
		var fin finishedMsg
		if err := fin.unmarshal(body); err != nil {
			return err
		}
		want, err := c.hkdfOp(func() []byte {
			return finishedMAC13(hs.sec.clientHS, hs.finHashOr(c.preMsgHash))
		})
		if err != nil {
			return err
		}
		if subtle.ConstantTimeCompare(want, fin.verifyData) != 1 {
			return errors.New("minitls: client Finished verification failed")
		}
		inProt, err := newGCMProtection(trafficKeys(hs.sec.clientApp))
		if err != nil {
			return err
		}
		c.in.setProtection(inProt)
		// Post-handshake NewSessionTicket: wrap the resumption PSK so a
		// later connection can run the PSK handshake (RFC 8446 §4.6.1).
		if c.config.hasTicketKey() {
			resMaster, err := c.hkdfOp(func() []byte {
				return resumptionMasterSecret(hs.sec.masterSecret, c.transcriptHash())
			})
			if err != nil {
				return err
			}
			psk, err := c.hkdfOp(func() []byte { return resumptionPSK(resMaster) })
			if err != nil {
				return err
			}
			ticket, err := c.config.sealSessionTicket(SessionState{
				Version:      VersionTLS13,
				CipherSuite:  c.suite,
				MasterSecret: psk,
			})
			if err != nil {
				return err
			}
			nst := newSessionTicketMsg{lifetimeSeconds: 3600, ticket: ticket}
			// Post-handshake message: sent under application keys and
			// excluded from the handshake transcript.
			if err := c.writeRecord(recordHandshake, nst.marshal()); err != nil {
				return err
			}
			c.ticketSent = true
		}
		c.state = stateDone
		c.finishHandshake()
		return nil

	default:
		return fmt.Errorf("minitls: invalid server handshake state %d", c.state)
	}
}

// finHashOr exists to keep the client-Finished hash stable across
// re-entries (preMsgHash may be overwritten by later reads).
func (hs *serverHS) finHashOr(h []byte) []byte {
	if hs.finHash == nil {
		hs.finHash = append([]byte(nil), h...)
	}
	return hs.finHash
}

// srvReadClientHello processes the ClientHello: version and suite
// negotiation, resumption lookup, and branch selection.
func (c *Conn) srvReadClientHello() error {
	hs := c.hsrv
	typ, body, err := c.readHandshakeMsg()
	if err != nil {
		return err
	}
	if typ != typeClientHello {
		return unexpectedMsg(typ, "ClientHello")
	}
	if err := hs.clientHello.unmarshal(body); err != nil {
		return err
	}
	hs.clientRandom = hs.clientHello.random

	// SNI-based identity selection (virtual hosting).
	if c.config.GetIdentity != nil {
		if id := c.config.GetIdentity(hs.clientHello.serverName); id != nil {
			c.identity = id
		}
	}
	if c.identity == nil {
		return errors.New("minitls: no identity for requested server name")
	}

	// Version negotiation: TLS 1.3 requires the supported_versions
	// extension (RFC 8446 §4.2.1).
	clientMax := hs.clientHello.version
	for _, v := range hs.clientHello.supportedVersions {
		if v > clientMax {
			clientMax = v
		}
	}
	c.version = VersionTLS12
	if c.config.maxVersion() >= VersionTLS13 && clientMax >= VersionTLS13 && hs.clientHello.hasKeyShare {
		c.version = VersionTLS13
	}

	// Cipher suite selection: server preference, filtered by identity key
	// type.
	c.suite = 0
	for _, s := range c.config.suites(c.version) {
		if !c.suiteUsable(s) {
			continue
		}
		for _, cs := range hs.clientHello.cipherSuites {
			if cs == s {
				c.suite = s
				break
			}
		}
		if c.suite != 0 {
			break
		}
	}
	if c.suite == 0 {
		return errors.New("minitls: no mutually acceptable cipher suite")
	}
	kx, _ := suiteKeyExchange(c.suite)
	hs.kx = kx

	if _, err := io.ReadFull(c.config.rand(), hs.serverRandom[:]); err != nil {
		return err
	}

	if c.version == VersionTLS13 {
		if hs.clientHello.keyShareGroup != curveIDFor(c.config.curve()) {
			return fmt.Errorf("minitls: unsupported key share group %d", hs.clientHello.keyShareGroup)
		}
		hs.clientShare = hs.clientHello.keyShareData
		// PSK resumption (psk_dhe_ke): open the ticket and verify the
		// binder over the truncated ClientHello. An invalid ticket or
		// binder silently falls back to a full handshake, except that a
		// *forged* binder on a valid ticket is fatal (RFC 8446 §4.2.11).
		if c.config.hasTicketKey() && hs.clientHello.hasPSK {
			if st, err := c.config.openSessionTicket(hs.clientHello.pskIdentity); err == nil && st.Version == VersionTLS13 {
				raw := handshakeMsg(typeClientHello, body)
				early, err := c.hkdfOp(func() []byte { return hkdfExtract(nil, st.MasterSecret) })
				if err != nil {
					return err
				}
				if !verifyBinder(early, truncatedCHHash(raw), hs.clientHello.pskBinder) {
					return errors.New("minitls: PSK binder verification failed")
				}
				hs.psk = st.MasterSecret
				c.didResume = true
			}
		}
		c.state = stateS13GenKey
		return nil
	}

	// TLS 1.2: resumption lookup — ticket first (RFC 5077 precedence),
	// then session-ID cache.
	if state, ok := c.lookupResumption(); ok {
		c.didResume = true
		hs.master = state.MasterSecret
		c.suite = state.CipherSuite
		hs.sessionID = hs.clientHello.sessionID
		sh := serverHelloMsg{
			version:     VersionTLS12,
			random:      hs.serverRandom,
			sessionID:   hs.sessionID,
			cipherSuite: c.suite,
		}
		if err := c.writeHandshake(sh.marshal()); err != nil {
			return err
		}
		c.state = stateS12ResumeKeys
		return nil
	}

	// Full handshake: offer a ticket when the client asked for one and we
	// have a ticket key; allocate a session ID when we have a cache.
	hs.offerTicket = hs.clientHello.hasTicketExt && c.config.hasTicketKey()
	if c.config.SessionCache != nil {
		hs.sessionID = make([]byte, 32)
		if _, err := io.ReadFull(c.config.rand(), hs.sessionID); err != nil {
			return err
		}
	}
	if hs.kx == kxRSA {
		c.state = stateS12FlushHello
	} else {
		c.state = stateS12GenServerKey
	}
	return nil
}

// lookupResumption checks the ClientHello for a resumable session.
func (c *Conn) lookupResumption() (SessionState, bool) {
	hs := c.hsrv
	if c.config.hasTicketKey() && hs.clientHello.hasTicketExt && len(hs.clientHello.sessionTicket) > 0 {
		if st, err := c.config.openSessionTicket(hs.clientHello.sessionTicket); err == nil && st.Version == VersionTLS12 {
			return st, true
		}
	}
	if c.config.SessionCache != nil && len(hs.clientHello.sessionID) > 0 {
		if st, ok := c.config.SessionCache.Get(hs.clientHello.sessionID); ok && st.Version == VersionTLS12 {
			return st, true
		}
	}
	return SessionState{}, false
}

// suiteUsable reports whether the server can use the suite with its key.
func (c *Conn) suiteUsable(s uint16) bool {
	kx, ok := suiteKeyExchange(s)
	if !ok {
		return false
	}
	_, isRSA := c.identity.PrivateKey.(*rsa.PrivateKey)
	_, isECDSA := c.identity.PrivateKey.(*ecdsa.PrivateKey)
	switch kx {
	case kxRSA, kxECDHERSA:
		return isRSA
	case kxECDHEECDSA:
		return isECDSA
	case kxTLS13:
		return isRSA || isECDSA
	}
	return false
}

// signDigest signs a SHA-256 digest for the TLS 1.2 ServerKeyExchange
// through the provider (RSA-PKCS1v15 or ECDSA).
func (c *Conn) signDigest(digest []byte) (sig []byte, alg uint16, err error) {
	switch key := c.identity.PrivateKey.(type) {
	case *rsa.PrivateKey:
		res, err := c.do(KindRSA, func() (any, error) {
			return rsa.SignPKCS1v15(nil, key, cryptoSHA256, digest)
		})
		if err != nil {
			return nil, 0, err
		}
		return res.([]byte), sigRSAPKCS1SHA256, nil
	case *ecdsa.PrivateKey:
		rnd := c.config.rand()
		res, err := c.do(KindECDSA, func() (any, error) {
			return ecdsa.SignASN1(rnd, key, digest)
		})
		if err != nil {
			return nil, 0, err
		}
		return res.([]byte), sigECDSAP256, nil
	default:
		return nil, 0, errors.New("minitls: unsupported identity key type")
	}
}

// signDigest13 signs the CertificateVerify digest (RSA-PSS per RFC 8446,
// or ECDSA) through the provider.
func (c *Conn) signDigest13(digest []byte) (sig []byte, alg uint16, err error) {
	switch key := c.identity.PrivateKey.(type) {
	case *rsa.PrivateKey:
		rnd := c.config.rand()
		res, err := c.do(KindRSA, func() (any, error) {
			return rsa.SignPSS(rnd, key, cryptoSHA256, digest, nil)
		})
		if err != nil {
			return nil, 0, err
		}
		return res.([]byte), sigRSAPKCS1SHA256, nil
	case *ecdsa.PrivateKey:
		rnd := c.config.rand()
		res, err := c.do(KindECDSA, func() (any, error) {
			return ecdsa.SignASN1(rnd, key, digest)
		})
		if err != nil {
			return nil, 0, err
		}
		return res.([]byte), sigECDSAP256, nil
	default:
		return nil, 0, errors.New("minitls: unsupported identity key type")
	}
}

// hkdfOp runs an HKDF-class derivation through the provider. Providers
// execute KindHKDF synchronously (the QAT Engine cannot offload HKDF,
// §5.2), so the result is available immediately.
func (c *Conn) hkdfOp(fn func() []byte) ([]byte, error) {
	res, err := c.do(KindHKDF, func() (any, error) { return fn(), nil })
	if err != nil {
		return nil, err
	}
	return res.([]byte), nil
}

// schedule13Handshake derives the TLS 1.3 handshake-phase secrets
// (several HKDF operations — this is the ">4" PRF/HKDF row of Table 1).
// A resumed handshake feeds the accepted PSK into the early secret.
func (c *Conn) schedule13Handshake() error {
	hs := c.hsrv
	th := c.transcriptHash()
	ikm := zeros32()
	if hs.psk != nil {
		ikm = hs.psk
	}
	early, err := c.hkdfOp(func() []byte { return hkdfExtract(nil, ikm) })
	if err != nil {
		return err
	}
	derived, err := c.hkdfOp(func() []byte { return deriveSecret(early, "derived", emptyHash()) })
	if err != nil {
		return err
	}
	hsSecret, err := c.hkdfOp(func() []byte { return hkdfExtract(derived, hs.sharedSecret) })
	if err != nil {
		return err
	}
	hs.sec.handshakeSecret = hsSecret
	if hs.sec.clientHS, err = c.hkdfOp(func() []byte { return deriveSecret(hsSecret, "c hs traffic", th) }); err != nil {
		return err
	}
	if hs.sec.serverHS, err = c.hkdfOp(func() []byte { return deriveSecret(hsSecret, "s hs traffic", th) }); err != nil {
		return err
	}
	derived2, err := c.hkdfOp(func() []byte { return deriveSecret(hsSecret, "derived", emptyHash()) })
	if err != nil {
		return err
	}
	if hs.sec.masterSecret, err = c.hkdfOp(func() []byte { return hkdfExtract(derived2, zeros32()) }); err != nil {
		return err
	}
	return nil
}

// schedule13App derives the application traffic secrets over the
// transcript through the server Finished.
func (c *Conn) schedule13App(th []byte) error {
	hs := c.hsrv
	var err error
	if hs.sec.clientApp, err = c.hkdfOp(func() []byte { return deriveSecret(hs.sec.masterSecret, "c ap traffic", th) }); err != nil {
		return err
	}
	if hs.sec.serverApp, err = c.hkdfOp(func() []byte { return deriveSecret(hs.sec.masterSecret, "s ap traffic", th) }); err != nil {
		return err
	}
	return nil
}

// finishHandshake marks completion and releases handshake scratch state.
func (c *Conn) finishHandshake() {
	c.handshakeDone = true
}

func unexpectedMsg(got uint8, want string) error {
	return fmt.Errorf("minitls: unexpected %s, want %s", msgTypeName(got), want)
}

func curveIDFor(curve ecdh.Curve) uint16 {
	switch curve {
	case ecdh.P384():
		return curveP384
	default:
		return curveP256
	}
}

func curveForID(id uint16) (ecdh.Curve, error) {
	switch id {
	case curveP256:
		return ecdh.P256(), nil
	case curveP384:
		return ecdh.P384(), nil
	default:
		return nil, fmt.Errorf("minitls: unsupported curve %d", id)
	}
}
