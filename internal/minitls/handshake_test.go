package minitls

import (
	"bytes"
	"crypto/elliptic"
	"io"
	"net"
	"sync"
	"testing"
)

// Shared identities: key generation is expensive, so tests share one RSA
// and one ECDSA identity.
var (
	idOnce  sync.Once
	rsaID   *Identity
	ecdsaID *Identity
)

func testIdentities(t testing.TB) (*Identity, *Identity) {
	t.Helper()
	idOnce.Do(func() {
		var err error
		rsaID, err = NewRSAIdentity(2048)
		if err != nil {
			panic(err)
		}
		ecdsaID, err = NewECDSAIdentity(elliptic.P256())
		if err != nil {
			panic(err)
		}
	})
	return rsaID, ecdsaID
}

// handshakePair runs a client/server handshake over an in-memory pipe,
// with the client on its own goroutine, and returns both sides plus the
// client error channel.
func handshakePair(t *testing.T, serverCfg, clientCfg *Config) (*Conn, *Conn, chan error) {
	t.Helper()
	cliT, srvT := net.Pipe()
	t.Cleanup(func() { cliT.Close(); srvT.Close() })
	server := Server(srvT, serverCfg)
	client := ClientConn(cliT, clientCfg)
	cliErr := make(chan error, 1)
	go func() { cliErr <- client.Handshake() }()
	if err := server.Handshake(); err != nil {
		t.Fatalf("server handshake: %v", err)
	}
	if err := <-cliErr; err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	return server, client, cliErr
}

// echoCheck verifies bidirectional application data after a handshake.
func echoCheck(t *testing.T, server, client *Conn) {
	t.Helper()
	msg := []byte("hello from server over minitls")
	done := make(chan error, 1)
	var got []byte
	go func() {
		buf := make([]byte, len(msg))
		_, err := io.ReadFull(&connReader{client}, buf)
		got = buf
		done <- err
	}()
	if _, err := server.Write(msg); err != nil {
		t.Fatalf("server write: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("client read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: %q", got)
	}

	reply := []byte("ack from client")
	go func() {
		_, err := client.Write(reply)
		done <- err
	}()
	buf := make([]byte, len(reply))
	if _, err := io.ReadFull(&connReader{server}, buf); err != nil {
		t.Fatalf("server read: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("client write: %v", err)
	}
	if !bytes.Equal(buf, reply) {
		t.Fatalf("reply mismatch: %q", buf)
	}
}

// connReader adapts Conn.Read to io.Reader for io.ReadFull.
type connReader struct{ c *Conn }

func (r *connReader) Read(p []byte) (int, error) { return r.c.Read(p) }

func TestHandshakeTLS12RSA(t *testing.T) {
	rsaID, _ := testIdentities(t)
	var ops OpCounts
	server, client, _ := handshakePair(t,
		&Config{Identity: rsaID, CipherSuites: []uint16{TLS_RSA_WITH_AES_128_CBC_SHA}, OpCounter: &ops},
		&Config{})
	st := server.ConnectionState()
	if st.Version != VersionTLS12 || st.CipherSuite != TLS_RSA_WITH_AES_128_CBC_SHA {
		t.Fatalf("state = %+v", st)
	}
	if st.DidResume {
		t.Fatal("unexpected resumption")
	}
	if client.ConnectionState().CipherSuite != TLS_RSA_WITH_AES_128_CBC_SHA {
		t.Fatal("client suite mismatch")
	}
	echoCheck(t, server, client)

	// Table 1, row "1.2 TLS-RSA": RSA=1, ECC=0, PRF=4.
	rsaN, ecc, prfN := ops.Table1Row()
	if rsaN != 1 || ecc != 0 || prfN != 4 {
		t.Fatalf("Table1 row = RSA:%d ECC:%d PRF:%d, want 1/0/4", rsaN, ecc, prfN)
	}
}

func TestHandshakeTLS12ECDHERSA(t *testing.T) {
	rsaID, _ := testIdentities(t)
	var ops OpCounts
	server, client, _ := handshakePair(t,
		&Config{Identity: rsaID, CipherSuites: []uint16{TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA}, OpCounter: &ops},
		&Config{})
	if server.ConnectionState().CipherSuite != TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA {
		t.Fatal("suite mismatch")
	}
	echoCheck(t, server, client)

	// Table 1, row "1.2 ECDHE-RSA": RSA=1, ECC=2, PRF=4.
	rsaN, ecc, prfN := ops.Table1Row()
	if rsaN != 1 || ecc != 2 || prfN != 4 {
		t.Fatalf("Table1 row = RSA:%d ECC:%d PRF:%d, want 1/2/4", rsaN, ecc, prfN)
	}
}

func TestHandshakeTLS12ECDHEECDSA(t *testing.T) {
	_, ecdsaID := testIdentities(t)
	var ops OpCounts
	server, client, _ := handshakePair(t,
		&Config{Identity: ecdsaID, CipherSuites: []uint16{TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA}, OpCounter: &ops},
		&Config{})
	if server.ConnectionState().CipherSuite != TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA {
		t.Fatal("suite mismatch")
	}
	echoCheck(t, server, client)

	// Table 1, row "1.2 ECDHE-ECDSA": RSA=0, ECC=3, PRF=4.
	rsaN, ecc, prfN := ops.Table1Row()
	if rsaN != 0 || ecc != 3 || prfN != 4 {
		t.Fatalf("Table1 row = RSA:%d ECC:%d PRF:%d, want 0/3/4", rsaN, ecc, prfN)
	}
}

func TestHandshakeTLS13(t *testing.T) {
	rsaID, _ := testIdentities(t)
	var ops OpCounts
	server, client, _ := handshakePair(t,
		&Config{Identity: rsaID, MaxVersion: VersionTLS13, OpCounter: &ops},
		&Config{MaxVersion: VersionTLS13})
	st := server.ConnectionState()
	if st.Version != VersionTLS13 || st.CipherSuite != TLS_AES_128_GCM_SHA256 {
		t.Fatalf("state = %+v", st)
	}
	echoCheck(t, server, client)

	// Table 1, row "1.3 ECDHE-RSA": RSA=1, ECC=2, PRF/HKDF > 4.
	rsaN, ecc, kdf := ops.Table1Row()
	if rsaN != 1 || ecc != 2 {
		t.Fatalf("RSA:%d ECC:%d, want 1/2", rsaN, ecc)
	}
	if kdf <= 4 {
		t.Fatalf("HKDF ops = %d, want > 4", kdf)
	}
	if ops.Get(KindPRF) != 0 {
		t.Fatal("TLS 1.3 must not use the TLS 1.2 PRF")
	}
}

func TestTLS13FallbackWhenClientIs12(t *testing.T) {
	rsaID, _ := testIdentities(t)
	server, client, _ := handshakePair(t,
		&Config{Identity: rsaID, MaxVersion: VersionTLS13},
		&Config{MaxVersion: VersionTLS12})
	if server.ConnectionState().Version != VersionTLS12 {
		t.Fatal("expected TLS 1.2 fallback")
	}
	echoCheck(t, server, client)
}

func TestSessionIDResumption(t *testing.T) {
	rsaID, _ := testIdentities(t)
	cache := NewSessionCache(16)
	serverCfg := &Config{
		Identity:     rsaID,
		CipherSuites: []uint16{TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA},
		SessionCache: cache,
	}

	server1, client1, _ := handshakePair(t, serverCfg, &Config{})
	if server1.ConnectionState().DidResume {
		t.Fatal("first handshake resumed")
	}
	sess := client1.ResumptionSession()
	if sess == nil || len(sess.SessionID) == 0 {
		t.Fatal("client has no resumable session")
	}
	if cache.Len() != 1 {
		t.Fatalf("cache len = %d", cache.Len())
	}

	var ops OpCounts
	serverCfg2 := *serverCfg
	serverCfg2.OpCounter = &ops
	server2, client2, _ := handshakePair(t, &serverCfg2, &Config{Session: sess})
	if !server2.ConnectionState().DidResume || !client2.ConnectionState().DidResume {
		t.Fatal("second handshake did not resume")
	}
	echoCheck(t, server2, client2)

	// Abbreviated handshake: PRF calculations only (§2.1, §5.3).
	rsaN, ecc, prfN := ops.Table1Row()
	if rsaN != 0 || ecc != 0 {
		t.Fatalf("asymmetric ops in abbreviated handshake: RSA:%d ECC:%d", rsaN, ecc)
	}
	if prfN != 3 {
		t.Fatalf("PRF ops = %d, want 3 (key expansion + 2 finished)", prfN)
	}
}

func TestTicketResumption(t *testing.T) {
	rsaID, _ := testIdentities(t)
	var key [32]byte
	copy(key[:], bytes.Repeat([]byte{0x5a}, 32))
	serverCfg := &Config{
		Identity:     rsaID,
		CipherSuites: []uint16{TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA},
		TicketKey:    &key,
	}

	_, client1, _ := handshakePair(t, serverCfg, &Config{RequestTicket: true})
	sess := client1.ResumptionSession()
	if sess == nil || len(sess.Ticket) == 0 {
		t.Fatal("client did not receive a ticket")
	}

	var ops OpCounts
	serverCfg2 := *serverCfg
	serverCfg2.OpCounter = &ops
	server2, client2, _ := handshakePair(t, &serverCfg2, &Config{Session: sess})
	if !server2.ConnectionState().DidResume {
		t.Fatal("ticket resumption failed")
	}
	echoCheck(t, server2, client2)
	rsaN, ecc, _ := ops.Table1Row()
	if rsaN != 0 || ecc != 0 {
		t.Fatalf("asymmetric ops in ticket resumption: RSA:%d ECC:%d", rsaN, ecc)
	}
}

func TestResumptionDeclinedFallsBackToFull(t *testing.T) {
	rsaID, _ := testIdentities(t)
	// Server without a cache cannot resume; client offers a stale session.
	serverCfg := &Config{Identity: rsaID, CipherSuites: []uint16{TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA}}
	stale := &ClientSession{
		SessionID:    bytes.Repeat([]byte{1}, 32),
		Version:      VersionTLS12,
		CipherSuite:  TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA,
		MasterSecret: bytes.Repeat([]byte{2}, 48),
	}
	server, client, _ := handshakePair(t, serverCfg, &Config{Session: stale})
	if server.ConnectionState().DidResume || client.ConnectionState().DidResume {
		t.Fatal("stale session resumed")
	}
	echoCheck(t, server, client)
}

func TestLargeTransferCipherOps(t *testing.T) {
	rsaID, _ := testIdentities(t)
	var ops OpCounts
	server, client, _ := handshakePair(t,
		&Config{Identity: rsaID, CipherSuites: []uint16{TLS_RSA_WITH_AES_128_CBC_SHA}, OpCounter: &ops},
		&Config{})
	ops.Reset()

	const size = 100 * 1024
	payload := bytes.Repeat([]byte{0xcd}, size)
	done := make(chan error, 1)
	received := make([]byte, size)
	go func() {
		_, err := io.ReadFull(&connReader{client}, received)
		done <- err
	}()
	if _, err := server.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(received, payload) {
		t.Fatal("payload corrupted")
	}
	// 100 KB fragments into ceil(100/16) = 7 records → 7 cipher ops
	// (the structure behind Fig. 10).
	if got := ops.Get(KindCipher); got != 7 {
		t.Fatalf("cipher ops = %d, want 7", got)
	}
}

func TestServerRequiresIdentity(t *testing.T) {
	cliT, srvT := net.Pipe()
	defer cliT.Close()
	defer srvT.Close()
	server := Server(srvT, &Config{})
	if err := server.Handshake(); err == nil {
		t.Fatal("handshake without identity succeeded")
	}
}

func TestSuiteKeyMismatchRejected(t *testing.T) {
	_, ecdsaID := testIdentities(t)
	cliT, srvT := net.Pipe()
	defer cliT.Close()
	defer srvT.Close()
	// ECDSA identity cannot serve RSA-keyed suites.
	server := Server(srvT, &Config{Identity: ecdsaID, CipherSuites: []uint16{TLS_RSA_WITH_AES_128_CBC_SHA}})
	client := ClientConn(cliT, &Config{CipherSuites: []uint16{TLS_RSA_WITH_AES_128_CBC_SHA}})
	go func() { client.Handshake() }()
	if err := server.Handshake(); err == nil {
		t.Fatal("expected suite negotiation failure")
	}
}

func TestCloseNotify(t *testing.T) {
	rsaID, _ := testIdentities(t)
	server, client, _ := handshakePair(t, &Config{Identity: rsaID}, &Config{})
	go server.Close()
	buf := make([]byte, 16)
	if _, err := client.Read(buf); err != io.EOF {
		t.Fatalf("read after close-notify = %v, want EOF", err)
	}
	// Conn unusable after Close.
	if _, err := server.Write([]byte("x")); err != ErrClosed {
		t.Fatalf("write after close = %v, want ErrClosed", err)
	}
}

func TestOpCountsHelpers(t *testing.T) {
	var ops OpCounts
	ops.Add(KindRSA, 2)
	ops.Add(KindECDSA, 1)
	ops.Add(KindECDH, 3)
	ops.Add(KindPRF, 4)
	ops.Add(KindHKDF, 5)
	r, e, p := ops.Table1Row()
	if r != 2 || e != 4 || p != 9 {
		t.Fatalf("Table1Row = %d/%d/%d", r, e, p)
	}
	ops.Reset()
	if ops.Get(KindRSA) != 0 {
		t.Fatal("Reset failed")
	}
}

func TestVersionAndSuiteNames(t *testing.T) {
	if VersionName(VersionTLS12) != "TLS 1.2" || VersionName(VersionTLS13) != "TLS 1.3" {
		t.Fatal("version names")
	}
	if VersionName(0x0301) == "" {
		t.Fatal("unknown version should render")
	}
	for _, s := range []uint16{TLS_RSA_WITH_AES_128_CBC_SHA, TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA,
		TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA, TLS_AES_128_GCM_SHA256, 0x9999} {
		if CipherSuiteName(s) == "" {
			t.Fatalf("no name for suite %04x", s)
		}
	}
}
