package minitls

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha1"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Record content types.
const (
	recordChangeCipherSpec uint8 = 20
	recordAlert            uint8 = 21
	recordHandshake        uint8 = 22
	recordApplicationData  uint8 = 23
)

// MaxPlaintext is the maximum TLS plaintext fragment (RFC 5246/8446
// §6.2.1): data objects larger than 16 KB are fragmented (§2.1), which is
// what makes the cipher-op count grow with file size in Fig. 10 (one
// 128 KB response = 8 cipher operations). Write fragments at exactly this
// boundary; the record-engine data plane (internal/record) sizes its
// pooled buffers from it.
const MaxPlaintext = 16384

// RecordHeaderLen is the TLS record header size on the wire
// (type + legacy version + length).
const RecordHeaderLen = 5

const recordHeaderLen = RecordHeaderLen

// MaxCiphertext bounds an encrypted record body (plaintext + IV + MAC +
// padding + AEAD overhead, with slack).
const MaxCiphertext = MaxPlaintext + 512

const maxCiphertext = MaxCiphertext

var errRecordOverflow = errors.New("minitls: oversized record")

// alertError is a fatal alert received from the peer.
type alertError struct {
	level uint8
	desc  uint8
}

func (a *alertError) Error() string {
	if a.level == 1 && a.desc == 0 {
		return "minitls: close notify"
	}
	return fmt.Sprintf("minitls: alert level=%d desc=%d", a.level, a.desc)
}

// errCloseNotify is the orderly-shutdown alert.
var errCloseNotify = &alertError{level: 1, desc: 0}

// recordProtection seals and opens record payloads. Implementations:
// nullProtection, cbcProtection (TLS 1.2 AES-128-CBC + HMAC-SHA1,
// MAC-then-encrypt) and gcmProtection (TLS 1.3 AES-128-GCM).
type recordProtection interface {
	// seal encrypts payload of the given record type, returning the wire
	// body and the wire record type.
	seal(seq uint64, typ uint8, payload []byte, rnd io.Reader) (wireTyp uint8, body []byte, err error)
	// open decrypts a wire body, returning the inner record type and
	// plaintext.
	open(seq uint64, wireTyp uint8, body []byte) (typ uint8, payload []byte, err error)
	// overhead returns the per-record ciphertext expansion upper bound.
	overhead() int
}

// nullProtection is the initial (plaintext) state.
type nullProtection struct{}

func (nullProtection) seal(_ uint64, typ uint8, payload []byte, _ io.Reader) (uint8, []byte, error) {
	return typ, payload, nil
}

func (nullProtection) open(_ uint64, wireTyp uint8, body []byte) (uint8, []byte, error) {
	return wireTyp, body, nil
}

func (nullProtection) overhead() int { return 0 }

// cbcKeys is the directional key material for the CBC+HMAC suite.
type cbcKeys struct {
	cipherKey []byte // 16 bytes (AES-128)
	macKey    []byte // 20 bytes (HMAC-SHA1)
}

// cbcProtection implements TLS 1.2 style AES-CBC with HMAC-SHA1,
// MAC-then-encrypt with a per-record explicit IV.
type cbcProtection struct {
	keys cbcKeys
}

func newCBCProtection(k cbcKeys) (*cbcProtection, error) {
	if len(k.cipherKey) != 16 || len(k.macKey) != 20 {
		return nil, errors.New("minitls: bad CBC key lengths")
	}
	return &cbcProtection{keys: k}, nil
}

func (p *cbcProtection) overhead() int { return aes.BlockSize /*IV*/ + sha1.Size + aes.BlockSize /*pad*/ }

func (p *cbcProtection) mac(seq uint64, typ uint8, payload []byte) []byte {
	m := hmac.New(sha1.New, p.keys.macKey)
	var hdr [13]byte
	binary.BigEndian.PutUint64(hdr[:8], seq)
	hdr[8] = typ
	binary.BigEndian.PutUint16(hdr[9:11], VersionTLS12)
	binary.BigEndian.PutUint16(hdr[11:13], uint16(len(payload)))
	m.Write(hdr[:])
	m.Write(payload)
	return m.Sum(nil)
}

func (p *cbcProtection) seal(seq uint64, typ uint8, payload []byte, rnd io.Reader) (uint8, []byte, error) {
	mac := p.mac(seq, typ, payload)
	plain := make([]byte, 0, len(payload)+len(mac)+aes.BlockSize)
	plain = append(plain, payload...)
	plain = append(plain, mac...)
	// TLS padding: padLen bytes each holding padLen, plus the length byte
	// itself; total padded length is a multiple of the block size.
	padLen := aes.BlockSize - (len(plain)+1)%aes.BlockSize
	if padLen == aes.BlockSize {
		padLen = 0
	}
	for i := 0; i <= padLen; i++ {
		plain = append(plain, byte(padLen))
	}
	block, err := aes.NewCipher(p.keys.cipherKey)
	if err != nil {
		return 0, nil, err
	}
	body := make([]byte, aes.BlockSize+len(plain))
	if _, err := io.ReadFull(rnd, body[:aes.BlockSize]); err != nil {
		return 0, nil, err
	}
	cipher.NewCBCEncrypter(block, body[:aes.BlockSize]).CryptBlocks(body[aes.BlockSize:], plain)
	return typ, body, nil
}

func (p *cbcProtection) open(seq uint64, wireTyp uint8, body []byte) (uint8, []byte, error) {
	if len(body) < 2*aes.BlockSize || len(body)%aes.BlockSize != 0 {
		return 0, nil, errDecode
	}
	block, err := aes.NewCipher(p.keys.cipherKey)
	if err != nil {
		return 0, nil, err
	}
	iv, ct := body[:aes.BlockSize], body[aes.BlockSize:]
	plain := make([]byte, len(ct))
	cipher.NewCBCDecrypter(block, iv).CryptBlocks(plain, ct)
	padLen := int(plain[len(plain)-1])
	if padLen+1+sha1.Size > len(plain) {
		return 0, nil, errors.New("minitls: bad record padding")
	}
	for _, b := range plain[len(plain)-1-padLen:] {
		if int(b) != padLen {
			return 0, nil, errors.New("minitls: bad record padding")
		}
	}
	plain = plain[:len(plain)-1-padLen]
	payload, mac := plain[:len(plain)-sha1.Size], plain[len(plain)-sha1.Size:]
	want := p.mac(seq, wireTyp, payload)
	if subtle.ConstantTimeCompare(mac, want) != 1 {
		return 0, nil, errors.New("minitls: record MAC mismatch")
	}
	return wireTyp, payload, nil
}

// gcmKeys is the directional key material for the TLS 1.3 AEAD.
type gcmKeys struct {
	key []byte // 16 bytes
	iv  []byte // 12 bytes
}

// gcmProtection implements TLS 1.3 AES-128-GCM record protection with the
// inner-content-type construction of RFC 8446 §5.2. The raw key is
// retained for the kTLS-style key-export seam (Conn.ExportWriteKeys),
// which hands it to an external record engine after the handshake.
type gcmProtection struct {
	aead cipher.AEAD
	key  []byte
	iv   []byte
}

func newGCMProtection(k gcmKeys) (*gcmProtection, error) {
	if len(k.key) != 16 || len(k.iv) != 12 {
		return nil, errors.New("minitls: bad GCM key lengths")
	}
	block, err := aes.NewCipher(k.key)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return &gcmProtection{aead: aead, key: k.key, iv: k.iv}, nil
}

func (p *gcmProtection) overhead() int { return 1 + p.aead.Overhead() }

func (p *gcmProtection) nonce(seq uint64) []byte {
	n := make([]byte, 12)
	copy(n, p.iv)
	var s [8]byte
	binary.BigEndian.PutUint64(s[:], seq)
	for i := 0; i < 8; i++ {
		n[4+i] ^= s[i]
	}
	return n
}

func aadFor(length int) []byte {
	return []byte{recordApplicationData, 0x03, 0x03, byte(length >> 8), byte(length)}
}

func (p *gcmProtection) seal(seq uint64, typ uint8, payload []byte, _ io.Reader) (uint8, []byte, error) {
	inner := make([]byte, 0, len(payload)+1)
	inner = append(inner, payload...)
	inner = append(inner, typ)
	body := p.aead.Seal(nil, p.nonce(seq), inner, aadFor(len(inner)+p.aead.Overhead()))
	return recordApplicationData, body, nil
}

func (p *gcmProtection) open(seq uint64, wireTyp uint8, body []byte) (uint8, []byte, error) {
	if wireTyp != recordApplicationData {
		// Unprotected CCS records may appear in TLS 1.3 middlebox-compat
		// mode; this stack never sends them.
		return 0, nil, errDecode
	}
	inner, err := p.aead.Open(nil, p.nonce(seq), body, aadFor(len(body)))
	if err != nil {
		return 0, nil, errors.New("minitls: record authentication failed")
	}
	// Strip zero padding then the inner content type.
	i := len(inner) - 1
	for i >= 0 && inner[i] == 0 {
		i--
	}
	if i < 0 {
		return 0, nil, errDecode
	}
	return inner[i], inner[:i], nil
}

// halfConn is one direction of a connection's record state.
type halfConn struct {
	prot recordProtection
	seq  uint64
}

func (h *halfConn) protection() recordProtection {
	if h.prot == nil {
		return nullProtection{}
	}
	return h.prot
}

// setProtection installs new keys and resets the sequence number (as on
// ChangeCipherSpec / TLS 1.3 key install).
func (h *halfConn) setProtection(p recordProtection) {
	h.prot = p
	h.seq = 0
}
