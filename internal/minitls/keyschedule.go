package minitls

import (
	"crypto"
	"crypto/hmac"
	"crypto/sha256"

	"qtls/internal/minitls/prf"
)

// cryptoSHA256 names the hash used throughout this stack's signatures.
const cryptoSHA256 = crypto.SHA256

// --- TLS 1.2 key schedule (RFC 5246 §8) ----------------------------------

const (
	masterSecretLen  = 48
	finishedVerify12 = 12
)

// prf12 is the TLS 1.2 PRF; exposed through this wrapper so handshake
// code routes all derivations through one point.
func prf12(secret []byte, label string, seed []byte, length int) []byte {
	return prf.TLS12(secret, label, seed, length)
}

// masterFromPremaster derives the 48-byte master secret.
func masterSeed(clientRandom, serverRandom [32]byte) []byte {
	seed := make([]byte, 0, 64)
	seed = append(seed, clientRandom[:]...)
	seed = append(seed, serverRandom[:]...)
	return seed
}

// keyExpansionSeed is the server_random || client_random seed for the key
// block derivation.
func keyExpansionSeed(clientRandom, serverRandom [32]byte) []byte {
	seed := make([]byte, 0, 64)
	seed = append(seed, serverRandom[:]...)
	seed = append(seed, clientRandom[:]...)
	return seed
}

// keyBlockLen is the TLS 1.2 key block size for AES-128-CBC + HMAC-SHA1:
// two 20-byte MAC keys and two 16-byte cipher keys (explicit IVs need no
// key-block material).
const keyBlockLen = 2*20 + 2*16

// splitKeyBlock carves the key block into directional CBC keys.
func splitKeyBlock(kb []byte) (client, server cbcKeys) {
	client.macKey = kb[0:20]
	server.macKey = kb[20:40]
	client.cipherKey = kb[40:56]
	server.cipherKey = kb[56:72]
	return client, server
}

// --- TLS 1.3 key schedule (RFC 8446 §7.1) --------------------------------

// tls13Secrets carries the evolving TLS 1.3 secrets.
type tls13Secrets struct {
	handshakeSecret []byte
	masterSecret    []byte
	clientHS        []byte
	serverHS        []byte
	clientApp       []byte
	serverApp       []byte
}

// emptyHash is SHA-256 of the empty string, used by Derive-Secret for
// "derived" steps.
func emptyHash() []byte {
	h := sha256.Sum256(nil)
	return h[:]
}

// zeros32 is a 32-byte zero string (the default IKM/PSK input).
func zeros32() []byte { return make([]byte, 32) }

// hkdfExtract and deriveSecret re-export the prf package primitives so
// handshake code reads like RFC 8446 §7.1.
func hkdfExtract(salt, ikm []byte) []byte { return prf.HKDFExtract(salt, ikm) }

func deriveSecret(secret []byte, label string, th []byte) []byte {
	return prf.DeriveSecret(secret, label, th)
}

// trafficKeys derives the AEAD key and IV from a traffic secret.
func trafficKeys(secret []byte) gcmKeys {
	return gcmKeys{
		key: prf.HKDFExpandLabel(secret, "key", nil, 16),
		iv:  prf.HKDFExpandLabel(secret, "iv", nil, 12),
	}
}

// finishedMAC13 computes the TLS 1.3 Finished verify_data for a traffic
// secret over the given transcript hash.
func finishedMAC13(trafficSecret, transcriptHash []byte) []byte {
	finishedKey := prf.HKDFExpandLabel(trafficSecret, "finished", nil, sha256.Size)
	m := hmac.New(sha256.New, finishedKey)
	m.Write(transcriptHash)
	return m.Sum(nil)
}

// certVerifyContent13 builds the to-be-signed content for the TLS 1.3
// server CertificateVerify (RFC 8446 §4.4.3).
func certVerifyContent13(transcriptHash []byte) []byte {
	const ctx = "TLS 1.3, server CertificateVerify"
	b := make([]byte, 0, 64+len(ctx)+1+len(transcriptHash))
	for i := 0; i < 64; i++ {
		b = append(b, 0x20)
	}
	b = append(b, ctx...)
	b = append(b, 0)
	b = append(b, transcriptHash...)
	return b
}
