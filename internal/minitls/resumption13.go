package minitls

import (
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"

	"qtls/internal/minitls/prf"
)

// TLS 1.3 session resumption (RFC 8446 §2.2, §4.2.11, §4.6.1), in
// psk_dhe_ke mode: the server issues a NewSessionTicket wrapping the
// resumption PSK after the handshake; a later connection offers the
// ticket in a pre_shared_key extension (with its binder) and, on
// acceptance, skips the certificate flight while still performing an
// ECDHE exchange for forward secrecy.
//
// This is the "enhanced security requires more key derivation operations"
// path the paper notes for TLS 1.3 (§2.1): the abbreviated handshake
// still runs the full HKDF schedule plus the binder derivations — all of
// it on the worker CPU, since HKDF is not offloadable.

// binderLen is the SHA-256 HMAC binder length.
const binderLen = sha256.Size

// pskBinderSuffixLen is the wire size of the binders list this stack
// emits: binders vector length (2) + one binder entry (1 + 32).
const pskBinderSuffixLen = 2 + 1 + binderLen

// resumptionMasterSecret derives the TLS 1.3 resumption master secret
// over the full handshake transcript (through client Finished).
func resumptionMasterSecret(masterSecret, fullTranscriptHash []byte) []byte {
	return prf.DeriveSecret(masterSecret, "res master", fullTranscriptHash)
}

// resumptionPSK derives the PSK from the resumption master secret
// (RFC 8446 §4.6.1 with a fixed ticket nonce).
func resumptionPSK(resMaster []byte) []byte {
	return prf.HKDFExpandLabel(resMaster, "resumption", []byte{0, 0, 0, 0}, sha256.Size)
}

// resumptionPSKClient is the client-side alias of resumptionPSK (both
// ends must derive the identical PSK from the shared resumption master).
func resumptionPSKClient(resMaster []byte) []byte { return resumptionPSK(resMaster) }

// binderKey derives the PSK binder MAC key from the PSK-based early
// secret (RFC 8446 §7.1: Derive-Secret(early, "res binder", "")).
func binderKey(earlySecret []byte) []byte {
	bk := prf.DeriveSecret(earlySecret, "res binder", emptyHash())
	return prf.HKDFExpandLabel(bk, "finished", nil, sha256.Size)
}

// computeBinder MACs the truncated-ClientHello transcript hash.
func computeBinder(earlySecret, truncatedCHHash []byte) []byte {
	m := hmac.New(sha256.New, binderKey(earlySecret))
	m.Write(truncatedCHHash)
	return m.Sum(nil)
}

// verifyBinder checks a received binder in constant time.
func verifyBinder(earlySecret, truncatedCHHash, binder []byte) bool {
	want := computeBinder(earlySecret, truncatedCHHash)
	return subtle.ConstantTimeCompare(want, binder) == 1
}

// truncatedCHHash computes the binder transcript hash: the ClientHello
// message bytes (framed) with the binders list removed. The PSK
// extension is always the last extension this stack emits, so the
// binders are the trailing pskBinderSuffixLen bytes.
func truncatedCHHash(chMsg []byte) []byte {
	if len(chMsg) <= pskBinderSuffixLen {
		return nil
	}
	h := sha256.Sum256(chMsg[:len(chMsg)-pskBinderSuffixLen])
	return h[:]
}
