package minitls

import (
	"bytes"
	"testing"
)

func ringServerConfig(t *testing.T, ring *TicketKeyRing) *Config {
	t.Helper()
	rsaID, _ := testIdentities(t)
	return &Config{
		Identity:     rsaID,
		CipherSuites: []uint16{TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA},
		TicketKeys:   ring,
	}
}

// TestTicketRingResumption checks the rotating ring end to end: a ticket
// sealed under the original key still resumes after one rotation (the
// old key is retained for opening), and stops resuming once its key ages
// out of the ring — the handshake then falls back to full, it does not
// fail.
func TestTicketRingResumption(t *testing.T) {
	var seed [32]byte
	copy(seed[:], bytes.Repeat([]byte{0x5a}, 32))
	ring := NewTicketKeyRing(seed, 2)
	serverCfg := ringServerConfig(t, ring)

	_, client1, _ := handshakePair(t, serverCfg, &Config{RequestTicket: true})
	sess := client1.ResumptionSession()
	if sess == nil || len(sess.Ticket) == 0 {
		t.Fatal("client did not receive a ticket")
	}

	// One rotation: the sealing key changes, the old key still opens.
	if err := ring.Rotate(); err != nil {
		t.Fatal(err)
	}
	if ring.Len() != 2 || ring.Generation() != 1 {
		t.Fatalf("ring len %d gen %d after rotate", ring.Len(), ring.Generation())
	}
	server2, client2, _ := handshakePair(t, serverCfg, &Config{Session: sess})
	if !server2.ConnectionState().DidResume || !client2.ConnectionState().DidResume {
		t.Fatal("ticket did not resume after one rotation")
	}
	echoCheck(t, server2, client2)

	// A second rotation ages the sealing key of the original ticket out
	// (retain=2): resumption declines, the connection completes full.
	if err := ring.Rotate(); err != nil {
		t.Fatal(err)
	}
	server3, client3, _ := handshakePair(t, serverCfg, &Config{Session: sess})
	if server3.ConnectionState().DidResume {
		t.Fatal("ticket resumed after its key aged out")
	}
	echoCheck(t, server3, client3)
}

// TestTicketRingCrossConfig models cross-worker resumption: two distinct
// server Configs (per-worker copies) sharing one ring pointer resume
// each other's tickets.
func TestTicketRingCrossConfig(t *testing.T) {
	ring, err := GenerateTicketKeyRing(3)
	if err != nil {
		t.Fatal(err)
	}
	worker0 := ringServerConfig(t, ring)
	worker1 := *worker0 // per-worker copy, shared ring pointer

	_, client1, _ := handshakePair(t, worker0, &Config{RequestTicket: true})
	sess := client1.ResumptionSession()
	if sess == nil || len(sess.Ticket) == 0 {
		t.Fatal("worker 0 did not issue a ticket")
	}
	server2, _, _ := handshakePair(t, &worker1, &Config{Session: sess})
	if !server2.ConnectionState().DidResume {
		t.Fatal("worker 1 did not resume worker 0's ticket")
	}
}

// TestTicketRingTLS13 checks the ring on the TLS 1.3 PSK path.
func TestTicketRingTLS13(t *testing.T) {
	ring, err := GenerateTicketKeyRing(2)
	if err != nil {
		t.Fatal(err)
	}
	rsaID, _ := testIdentities(t)
	serverCfg := &Config{Identity: rsaID, MaxVersion: VersionTLS13, TicketKeys: ring}

	_, client1 := run13(t, serverCfg, &Config{MaxVersion: VersionTLS13})
	sess := client1.ResumptionSession()
	if sess == nil || len(sess.Ticket) == 0 {
		t.Fatal("no TLS 1.3 ticket issued")
	}
	if err := ring.Rotate(); err != nil {
		t.Fatal(err)
	}
	server2, _ := run13(t, serverCfg, &Config{MaxVersion: VersionTLS13, Session: sess})
	if !server2.ConnectionState().DidResume {
		t.Fatal("TLS 1.3 PSK did not resume through the ring")
	}
}
