package minitls

import (
	"bytes"
	"io"
	"net"
	"testing"
)

func tls13ServerConfig(t *testing.T, ops *OpCounts) *Config {
	t.Helper()
	rsaID, _ := testIdentities(t)
	var key [32]byte
	copy(key[:], bytes.Repeat([]byte{0x77}, 32))
	return &Config{
		Identity:   rsaID,
		MaxVersion: VersionTLS13,
		TicketKey:  &key,
		OpCounter:  ops,
	}
}

// run13 performs a TLS 1.3 handshake and one byte of app data (so the
// client consumes the post-handshake NewSessionTicket), returning both
// ends.
func run13(t *testing.T, serverCfg *Config, clientCfg *Config) (*Conn, *Conn) {
	t.Helper()
	cliT, srvT := net.Pipe()
	t.Cleanup(func() { cliT.Close(); srvT.Close() })
	server := Server(srvT, serverCfg)
	client := ClientConn(cliT, clientCfg)
	cliErr := make(chan error, 1)
	got := make([]byte, 4)
	go func() {
		if err := client.Handshake(); err != nil {
			cliErr <- err
			return
		}
		_, err := io.ReadFull(&connReader{client}, got)
		cliErr <- err
	}()
	if err := server.Handshake(); err != nil {
		t.Fatalf("server handshake: %v", err)
	}
	if _, err := server.Write([]byte("pong")); err != nil {
		t.Fatalf("server write: %v", err)
	}
	if err := <-cliErr; err != nil {
		t.Fatalf("client: %v", err)
	}
	if string(got) != "pong" {
		t.Fatalf("app data = %q", got)
	}
	return server, client
}

func TestTLS13TicketIssued(t *testing.T) {
	serverCfg := tls13ServerConfig(t, nil)
	_, client := run13(t, serverCfg, &Config{MaxVersion: VersionTLS13})
	sess := client.ResumptionSession()
	if sess == nil {
		t.Fatal("no 1.3 session captured from NewSessionTicket")
	}
	if sess.Version != VersionTLS13 || len(sess.Ticket) == 0 || len(sess.MasterSecret) != 32 {
		t.Fatalf("session = %+v", sess)
	}
}

func TestTLS13PSKResumption(t *testing.T) {
	serverCfg := tls13ServerConfig(t, nil)
	_, client1 := run13(t, serverCfg, &Config{MaxVersion: VersionTLS13})
	sess := client1.ResumptionSession()
	if sess == nil {
		t.Fatal("no session")
	}

	var ops OpCounts
	serverCfg2 := tls13ServerConfig(t, &ops)
	server2, client2 := run13(t, serverCfg2, &Config{MaxVersion: VersionTLS13, Session: sess})
	if !server2.ConnectionState().DidResume {
		t.Fatal("server did not resume")
	}
	if !client2.ConnectionState().DidResume {
		t.Fatal("client did not resume")
	}
	// PSK mode skips the certificate flight: no RSA signature; ECDHE is
	// still performed (psk_dhe_ke forward secrecy); HKDF work increases
	// (binder + resumption derivations) — the TLS 1.3 behavior §2.1
	// describes: "the enhanced security requires more key derivation".
	rsaN, ecc, kdf := ops.Table1Row()
	if rsaN != 0 {
		t.Fatalf("RSA ops = %d in PSK handshake, want 0", rsaN)
	}
	if ecc != 2 {
		t.Fatalf("ECC ops = %d, want 2 (psk_dhe_ke)", ecc)
	}
	if kdf <= 11 {
		t.Fatalf("HKDF ops = %d, want > 11 (binder + ticket derivations)", kdf)
	}

	// The resumed connection issues a fresh ticket usable again.
	sess2 := client2.ResumptionSession()
	if sess2 == nil || bytes.Equal(sess2.Ticket, sess.Ticket) {
		t.Fatal("no fresh ticket on the resumed connection")
	}
	server3, _ := run13(t, tls13ServerConfig(t, nil), &Config{MaxVersion: VersionTLS13, Session: sess2})
	if !server3.ConnectionState().DidResume {
		t.Fatal("chained resumption failed")
	}
}

// A garbage ticket falls back to a full handshake (no fatal error).
func TestTLS13BogusTicketFallsBack(t *testing.T) {
	serverCfg := tls13ServerConfig(t, nil)
	bogus := &ClientSession{
		Version:      VersionTLS13,
		Ticket:       bytes.Repeat([]byte{0xee}, 64),
		MasterSecret: bytes.Repeat([]byte{0xdd}, 32),
	}
	server, client := run13(t, serverCfg, &Config{MaxVersion: VersionTLS13, Session: bogus})
	if server.ConnectionState().DidResume || client.ConnectionState().DidResume {
		t.Fatal("bogus ticket resumed")
	}
}

// A valid ticket with the wrong PSK (forged binder) is fatal.
func TestTLS13WrongPSKRejected(t *testing.T) {
	serverCfg := tls13ServerConfig(t, nil)
	_, client1 := run13(t, serverCfg, &Config{MaxVersion: VersionTLS13})
	sess := client1.ResumptionSession()
	if sess == nil {
		t.Fatal("no session")
	}
	forged := *sess
	forged.MasterSecret = bytes.Repeat([]byte{0x01}, 32)

	cliT, srvT := net.Pipe()
	defer cliT.Close()
	defer srvT.Close()
	server := Server(srvT, serverCfg)
	client := ClientConn(cliT, &Config{MaxVersion: VersionTLS13, Session: &forged})
	done := make(chan error, 1)
	go func() { done <- client.Handshake() }()
	err := server.Handshake()
	srvT.Close() // tear the transport down so the client unblocks
	if err == nil {
		t.Fatal("server accepted a forged binder")
	}
	if cliErr := <-done; cliErr == nil {
		t.Fatal("client completed against a failed server")
	}
}

// A 1.2-capped server declines the PSK and the connection falls back to
// a full TLS 1.2 handshake.
func TestTLS13SessionAgainstTLS12Server(t *testing.T) {
	serverCfg := tls13ServerConfig(t, nil)
	_, client1 := run13(t, serverCfg, &Config{MaxVersion: VersionTLS13})
	sess := client1.ResumptionSession()
	if sess == nil {
		t.Fatal("no session")
	}
	rsaID, _ := testIdentities(t)
	server, client, _ := handshakePair(t,
		&Config{Identity: rsaID, CipherSuites: []uint16{TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA}},
		&Config{MaxVersion: VersionTLS13, Session: sess})
	if server.ConnectionState().Version != VersionTLS12 {
		t.Fatalf("version = %04x", server.ConnectionState().Version)
	}
	if server.ConnectionState().DidResume {
		t.Fatal("1.3 session resumed on a 1.2 connection")
	}
	echoCheck(t, server, client)
}

// PSK resumption under the async offload framework: only the two ECDH
// ops pause (HKDF stays inline).
func TestTLS13PSKResumptionAsync(t *testing.T) {
	serverCfg := tls13ServerConfig(t, nil)
	_, client1 := run13(t, serverCfg, &Config{MaxVersion: VersionTLS13})
	sess := client1.ResumptionSession()
	if sess == nil {
		t.Fatal("no session")
	}

	p := &manualProvider{}
	cliT, srvT := net.Pipe()
	defer cliT.Close()
	defer srvT.Close()
	asyncCfg := tls13ServerConfig(t, nil)
	asyncCfg.Provider = p
	asyncCfg.AsyncMode = AsyncModeFiber
	server := Server(srvT, asyncCfg)
	client := ClientConn(cliT, &Config{MaxVersion: VersionTLS13, Session: sess})
	cliErr := make(chan error, 1)
	got := make([]byte, 2)
	go func() {
		if err := client.Handshake(); err != nil {
			cliErr <- err
			return
		}
		// Consume the post-handshake NewSessionTicket + app data so the
		// server's writes on the unbuffered pipe complete.
		_, err := io.ReadFull(&connReader{client}, got)
		cliErr <- err
	}()
	pauses := driveServer(t, server, p)
	for {
		_, err := server.Write([]byte("ok"))
		if err == nil {
			break
		}
		if IsBusy(err) {
			p.completeOne()
			continue
		}
		t.Fatalf("server write: %v", err)
	}
	if err := <-cliErr; err != nil {
		t.Fatal(err)
	}
	if !server.ConnectionState().DidResume {
		t.Fatal("did not resume")
	}
	if pauses != 2 {
		t.Fatalf("pauses = %d, want 2 (ECDH keygen + derive)", pauses)
	}
}

func TestBinderHelpers(t *testing.T) {
	psk := bytes.Repeat([]byte{9}, 32)
	early := hkdfExtract(nil, psk)
	ch := append([]byte{1, 0, 0, 100}, bytes.Repeat([]byte{5}, 100)...)
	th := truncatedCHHash(ch)
	if th == nil {
		t.Fatal("no truncated hash")
	}
	b := computeBinder(early, th)
	if len(b) != binderLen {
		t.Fatalf("binder len = %d", len(b))
	}
	if !verifyBinder(early, th, b) {
		t.Fatal("binder round trip failed")
	}
	b[0] ^= 1
	if verifyBinder(early, th, b) {
		t.Fatal("tampered binder accepted")
	}
	if truncatedCHHash(ch[:10]) != nil {
		t.Fatal("short CH should yield nil hash")
	}
}

func TestPSKExtensionRoundTrip(t *testing.T) {
	in := clientHelloMsg{
		version:           VersionTLS12,
		cipherSuites:      []uint16{TLS_AES_128_GCM_SHA256},
		supportedVersions: []uint16{VersionTLS13},
		hasKeyShare:       true,
		keyShareGroup:     curveP256,
		keyShareData:      bytes.Repeat([]byte{2}, 65),
		hasPSK:            true,
		pskIdentity:       []byte("ticket-identity"),
		pskBinder:         bytes.Repeat([]byte{7}, binderLen),
	}
	var out clientHelloMsg
	if err := out.unmarshal(in.marshal()[4:]); err != nil {
		t.Fatal(err)
	}
	if !out.hasPSK || !bytes.Equal(out.pskIdentity, in.pskIdentity) || !bytes.Equal(out.pskBinder, in.pskBinder) {
		t.Fatalf("psk roundtrip: %+v", out)
	}
	// ServerHello PSK acceptance flag.
	sh := serverHelloMsg{version: VersionTLS13, cipherSuite: TLS_AES_128_GCM_SHA256, pskSelected: true}
	var shOut serverHelloMsg
	if err := shOut.unmarshal(sh.marshal()[4:]); err != nil {
		t.Fatal(err)
	}
	if !shOut.pskSelected {
		t.Fatal("pskSelected lost")
	}
}
