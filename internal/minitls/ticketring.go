package minitls

import (
	"crypto/rand"
	"errors"
	"io"
	"sync"
)

// TicketKeyRing is a shared, rotating set of session-ticket keys. All of
// a server's workers point at one ring (the per-worker Config copies
// share the pointer), so a ticket sealed by any worker resumes on any
// other — the cross-worker resumption that makes a resumption-heavy,
// sym-dominated workload reachable with SO_REUSEPORT accept sharding.
//
// The newest key seals; every retained key still opens, so tickets
// issued before a rotation stay valid until their key ages out of the
// ring. Rotation is cheap (one allocation under a short lock) and safe
// to run from any goroutine.
type TicketKeyRing struct {
	mu     sync.RWMutex
	keys   [][32]byte // keys[0] seals; all open
	retain int
	gen    int64
}

// NewTicketKeyRing builds a ring seeded with initial, retaining at most
// retain keys (minimum 2: the sealing key plus one predecessor, so a
// rotation never instantly invalidates outstanding tickets).
func NewTicketKeyRing(initial [32]byte, retain int) *TicketKeyRing {
	if retain < 2 {
		retain = 2
	}
	return &TicketKeyRing{keys: [][32]byte{initial}, retain: retain}
}

// GenerateTicketKeyRing builds a ring seeded with a random key.
func GenerateTicketKeyRing(retain int) (*TicketKeyRing, error) {
	var k [32]byte
	if _, err := io.ReadFull(rand.Reader, k[:]); err != nil {
		return nil, err
	}
	return NewTicketKeyRing(k, retain), nil
}

// Rotate prepends a fresh random sealing key, aging the oldest key out
// once the ring exceeds its retention bound.
func (r *TicketKeyRing) Rotate() error {
	var k [32]byte
	if _, err := io.ReadFull(rand.Reader, k[:]); err != nil {
		return err
	}
	r.RotateTo(k)
	return nil
}

// RotateTo prepends the given sealing key (deterministic rotation for
// tests and key-escrow deployments).
func (r *TicketKeyRing) RotateTo(key [32]byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.keys = append([][32]byte{key}, r.keys...)
	if len(r.keys) > r.retain {
		r.keys = r.keys[:r.retain]
	}
	r.gen++
}

// Len returns the number of keys currently able to open tickets.
func (r *TicketKeyRing) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.keys)
}

// Generation returns how many rotations have happened.
func (r *TicketKeyRing) Generation() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gen
}

// current returns a stable copy of the sealing key.
func (r *TicketKeyRing) current() *[32]byte {
	r.mu.RLock()
	defer r.mu.RUnlock()
	k := r.keys[0]
	return &k
}

// all returns stable copies of every retained key, sealing key first.
func (r *TicketKeyRing) all() []*[32]byte {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*[32]byte, len(r.keys))
	for i := range r.keys {
		k := r.keys[i]
		out[i] = &k
	}
	return out
}

// hasTicketKey reports whether the config can seal/open session tickets
// through either the static key or a ring.
func (c *Config) hasTicketKey() bool {
	return c.TicketKeys != nil || c.TicketKey != nil
}

// sealSessionTicket seals state under the ring's current key, falling
// back to the static TicketKey — the pre-ring behavior, byte-identical
// for configs without a ring.
func (c *Config) sealSessionTicket(state SessionState) ([]byte, error) {
	if c.TicketKeys != nil {
		return sealTicket(c.TicketKeys.current(), state)
	}
	if c.TicketKey == nil {
		return nil, errors.New("minitls: no ticket key configured")
	}
	return sealTicket(c.TicketKey, state)
}

// openSessionTicket tries every retained ring key (newest first), then
// the static TicketKey. Tickets sealed before a rotation keep resuming
// until their key ages out.
func (c *Config) openSessionTicket(ticket []byte) (SessionState, error) {
	if c.TicketKeys != nil {
		var lastErr error
		for _, k := range c.TicketKeys.all() {
			st, err := openTicket(k, ticket)
			if err == nil {
				return st, nil
			}
			lastErr = err
		}
		if c.TicketKey == nil {
			return SessionState{}, lastErr
		}
	}
	if c.TicketKey == nil {
		return SessionState{}, errors.New("minitls: no ticket key configured")
	}
	return openTicket(c.TicketKey, ticket)
}
