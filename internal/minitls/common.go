// Package minitls is a from-scratch TLS 1.2/1.3 implementation whose
// software stack is re-engineered for asynchronous crypto offload, in the
// way the QTLS paper re-engineers OpenSSL (§3, §4):
//
//   - every crypto operation (RSA, ECDSA, ECDH, PRF, HKDF, record cipher)
//     is routed through a pluggable Provider, so an accelerator engine can
//     intercept it;
//   - the server handshake is an explicit state machine whose states are
//     fine-grained enough that a paused offload job can be resumed without
//     re-executing completed steps (the "careful skipping" of Fig. 5);
//   - both async implementations from §4.1 are supported: fiber async
//     (AsyncModeFiber, the OpenSSL 1.1.0 ASYNC_JOB design) and stack async
//     (AsyncModeStack, the original intrusive design);
//   - Handshake/Read/Write surface ErrWantAsync (the paper's
//     SSL_ERROR_WANT_ASYNC) and ErrWantRead so an event-driven application
//     can multiplex thousands of connections in one goroutine.
//
// The wire format follows the TLS 1.2/1.3 message layouts closely enough
// to exercise the same computational structure (message flights, transcript
// hashing, key schedules, 16 KB record fragmentation) but does not aim for
// byte-level interoperability with other stacks: both endpoints in this
// repository speak minitls. This substitution is recorded in DESIGN.md.
package minitls

import (
	"crypto"
	"crypto/ecdh"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/rsa"
	"crypto/x509"
	"crypto/x509/pkix"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync/atomic"
	"time"

	"qtls/internal/asynclib"
)

// TLS protocol versions.
const (
	VersionTLS12 uint16 = 0x0303
	VersionTLS13 uint16 = 0x0304
)

// VersionName returns a human-readable protocol version name.
func VersionName(v uint16) string {
	switch v {
	case VersionTLS12:
		return "TLS 1.2"
	case VersionTLS13:
		return "TLS 1.3"
	default:
		return fmt.Sprintf("0x%04x", v)
	}
}

// Cipher suites (IANA identifiers). These are the suites the paper
// evaluates: TLS-RSA, ECDHE-RSA and ECDHE-ECDSA with AES128-SHA record
// protection for TLS 1.2, and AES-128-GCM-SHA256 for TLS 1.3.
const (
	TLS_RSA_WITH_AES_128_CBC_SHA         uint16 = 0x002f
	TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA   uint16 = 0xc013
	TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA uint16 = 0xc009
	TLS_AES_128_GCM_SHA256               uint16 = 0x1301
)

// CipherSuiteName returns the conventional name of a suite.
func CipherSuiteName(id uint16) string {
	switch id {
	case TLS_RSA_WITH_AES_128_CBC_SHA:
		return "TLS-RSA-AES128-SHA"
	case TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA:
		return "ECDHE-RSA-AES128-SHA"
	case TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA:
		return "ECDHE-ECDSA-AES128-SHA"
	case TLS_AES_128_GCM_SHA256:
		return "TLS13-AES128-GCM-SHA256"
	default:
		return fmt.Sprintf("suite(0x%04x)", id)
	}
}

type keyExchange int

const (
	kxRSA keyExchange = iota
	kxECDHERSA
	kxECDHEECDSA
	kxTLS13
)

func suiteKeyExchange(id uint16) (keyExchange, bool) {
	switch id {
	case TLS_RSA_WITH_AES_128_CBC_SHA:
		return kxRSA, true
	case TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA:
		return kxECDHERSA, true
	case TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA:
		return kxECDHEECDSA, true
	case TLS_AES_128_GCM_SHA256:
		return kxTLS13, true
	default:
		return 0, false
	}
}

// Sentinel errors surfaced to event-driven applications. These are the
// moral equivalents of OpenSSL's SSL_ERROR_WANT_READ and the new
// SSL_ERROR_WANT_ASYNC / SSL_ERROR_WANT_ASYNC_JOB codes QTLS adds (§4.2).
var (
	// ErrWantRead means the operation needs more data from the transport;
	// retry when the socket is readable.
	ErrWantRead = errors.New("minitls: want read")
	// ErrWantAsync means an async crypto request was submitted and the
	// offload job paused; retry the same call once the async event for
	// this connection fires (§3.2 pre-processing).
	ErrWantAsync = errors.New("minitls: want async (crypto request in flight)")
	// ErrWantAsyncRetry means the crypto submission failed (accelerator
	// request ring full); retry the same call later (§3.2 special case).
	ErrWantAsyncRetry = errors.New("minitls: want async retry (submission failed)")
	// ErrClosed is returned on use after Close.
	ErrClosed = errors.New("minitls: connection closed")
)

// IsBusy reports whether err is one of the retriable in-progress
// conditions (want-read / want-async / want-retry).
func IsBusy(err error) bool {
	return errors.Is(err, ErrWantRead) || errors.Is(err, ErrWantAsync) || errors.Is(err, ErrWantAsyncRetry)
}

// wouldBlocker is implemented by transports with non-blocking semantics
// (internal/netpoll); a Read returning an error whose WouldBlock method
// reports true translates into ErrWantRead at the TLS layer.
type wouldBlocker interface{ WouldBlock() bool }

func isWouldBlock(err error) bool {
	var wb wouldBlocker
	return errors.As(err, &wb) && wb.WouldBlock()
}

// AsyncMode selects how the server-side stack suspends offload jobs.
type AsyncMode int

const (
	// AsyncModeOff disables crypto pause: provider calls complete
	// synchronously (the SW and straight-offload QAT+S configurations).
	AsyncModeOff AsyncMode = iota
	// AsyncModeFiber wraps each handshake/write drive in an ASYNC_JOB
	// fiber; crypto calls pause the fiber (§4.1 "fiber async", Fig. 6).
	AsyncModeFiber
	// AsyncModeStack uses the state-flag design: crypto calls return
	// ErrWantAsync and re-entry skips to result consumption (§4.1
	// "stack async", Fig. 5).
	AsyncModeStack
)

// String returns the mode name.
func (m AsyncMode) String() string {
	switch m {
	case AsyncModeOff:
		return "off"
	case AsyncModeFiber:
		return "fiber"
	case AsyncModeStack:
		return "stack"
	default:
		return fmt.Sprintf("AsyncMode(%d)", int(m))
	}
}

// OpKind classifies crypto operations for providers and counters.
type OpKind int

const (
	// KindRSA is an RSA private-key operation (decrypt or sign).
	KindRSA OpKind = iota
	// KindECDSA is an ECDSA signature.
	KindECDSA
	// KindECDH covers ECDH(E) key generation and shared-secret derivation.
	KindECDH
	// KindPRF is a TLS 1.2 PRF derivation.
	KindPRF
	// KindHKDF is a TLS 1.3 HKDF derivation. Providers must run HKDF
	// synchronously: the QAT Engine cannot offload it (§5.2), and minitls
	// batches several HKDF calls inside one handshake state relying on
	// this invariant.
	KindHKDF
	// KindCipher is a symmetric record protection operation.
	KindCipher

	numOpKinds = 6
)

// String returns the kind name.
func (k OpKind) String() string {
	switch k {
	case KindRSA:
		return "rsa"
	case KindECDSA:
		return "ecdsa"
	case KindECDH:
		return "ecdh"
	case KindPRF:
		return "prf"
	case KindHKDF:
		return "hkdf"
	case KindCipher:
		return "cipher"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Asymmetric reports whether the kind is an asymmetric-key calculation.
func (k OpKind) Asymmetric() bool {
	return k == KindRSA || k == KindECDSA || k == KindECDH
}

// OpCounts counts completed crypto operations by kind. It backs the
// reproduction of Table 1 and the engine's in-flight bookkeeping tests.
type OpCounts struct {
	counts [numOpKinds]atomic.Int64
}

// Add records n completed operations of kind k.
func (o *OpCounts) Add(k OpKind, n int64) { o.counts[k].Add(n) }

// Get returns the count for kind k.
func (o *OpCounts) Get(k OpKind) int64 { return o.counts[k].Load() }

// Reset zeroes all counts.
func (o *OpCounts) Reset() {
	for i := range o.counts {
		o.counts[i].Store(0)
	}
}

// Table1Row summarizes counts in the shape of the paper's Table 1:
// RSA, ECC (ECDSA+ECDH) and PRF/HKDF operations.
func (o *OpCounts) Table1Row() (rsaN, ecc, prfHKDF int64) {
	return o.Get(KindRSA),
		o.Get(KindECDSA) + o.Get(KindECDH),
		o.Get(KindPRF) + o.Get(KindHKDF)
}

// Provider executes crypto work on behalf of the TLS stack. The work
// closure performs the actual computation; the provider decides *where*
// and *when* it runs:
//
//   - SoftwareProvider runs it inline (CPU, AES-NI-style software path);
//   - the QAT engine provider (internal/engine) submits it to the
//     simulated accelerator and either pauses the calling fiber
//     (AsyncModeFiber), returns ErrWantAsync (AsyncModeStack), or busy
//     waits (straight offload).
//
// Providers must run KindHKDF work synchronously (see OpKind).
type Provider interface {
	// Name identifies the provider in logs and stats.
	Name() string
	// Do executes work of the given kind for the connection operation
	// context call.
	Do(call *OpCall, kind OpKind, work func() (any, error)) (any, error)
}

// OpCall carries per-connection async context into a Provider.
type OpCall struct {
	// Mode is the connection's async mode.
	Mode AsyncMode
	// Job is the current fiber (AsyncModeFiber only); the provider pauses
	// it after submitting a crypto request and the application resumes it
	// when the async event fires.
	Job *asynclib.Job
	// Stack is the connection's stack-async operation state
	// (AsyncModeStack only).
	Stack *asynclib.StackOp
	// WaitCtx is the connection-level wait context carrying the
	// notification plumbing (FD or kernel-bypass callback). The engine's
	// response callback uses it to deliver the async event.
	WaitCtx *asynclib.WaitCtx
	// SubmitFailed is set by the provider when the most recent crypto
	// submission failed (accelerator ring full) and the paused job must be
	// rescheduled for a retry rather than waiting for a response (§3.2).
	SubmitFailed bool
	// Cancelled is set by the application (Conn.CancelAsync) when the
	// connection is being torn down while an offload is in flight: the
	// next provider re-entry must settle the operation as abandoned
	// instead of re-parking, so device inflight accounting is released
	// even when no response will ever arrive.
	Cancelled bool

	// result/err hand the crypto result across a fiber pause point.
	result any
	err    error
}

// SetResult records the async result; providers call this from the
// response path before resuming/notifying.
func (c *OpCall) SetResult(v any, err error) {
	c.result = v
	c.err = err
}

// Result returns the recorded async result.
func (c *OpCall) Result() (any, error) { return c.result, c.err }

// SoftwareProvider computes every operation inline on the calling
// goroutine — the paper's SW configuration ("software calculation with
// modern AES-NI instructions").
type SoftwareProvider struct{}

// Name implements Provider.
func (SoftwareProvider) Name() string { return "software" }

// Do implements Provider by running work synchronously.
func (SoftwareProvider) Do(_ *OpCall, _ OpKind, work func() (any, error)) (any, error) {
	return work()
}

// Identity is a server identity: a private key and its certificate chain.
type Identity struct {
	// PrivateKey is an *rsa.PrivateKey or *ecdsa.PrivateKey.
	PrivateKey crypto.Signer
	// CertDER is the DER-encoded certificate chain, leaf first.
	CertDER [][]byte
}

// Leaf parses and returns the leaf certificate.
func (id *Identity) Leaf() (*x509.Certificate, error) {
	if len(id.CertDER) == 0 {
		return nil, errors.New("minitls: identity has no certificate")
	}
	return x509.ParseCertificate(id.CertDER[0])
}

func selfSigned(key crypto.Signer, cn string) ([]byte, error) {
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: cn},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * 365 * time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment,
		BasicConstraintsValid: true,
	}
	return x509.CreateCertificate(rand.Reader, tmpl, tmpl, key.Public(), key)
}

// NewRSAIdentity generates a self-signed RSA identity with the given
// modulus size (the paper uses 2048-bit keys throughout).
func NewRSAIdentity(bits int) (*Identity, error) {
	key, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, err
	}
	der, err := selfSigned(key, "qtls-test-rsa")
	if err != nil {
		return nil, err
	}
	return &Identity{PrivateKey: key, CertDER: [][]byte{der}}, nil
}

// NewECDSAIdentity generates a self-signed ECDSA identity on the given
// curve (the paper evaluates P-256 and P-384 among others).
func NewECDSAIdentity(curve elliptic.Curve) (*Identity, error) {
	key, err := ecdsa.GenerateKey(curve, rand.Reader)
	if err != nil {
		return nil, err
	}
	der, err := selfSigned(key, "qtls-test-ecdsa")
	if err != nil {
		return nil, err
	}
	return &Identity{PrivateKey: key, CertDER: [][]byte{der}}, nil
}

// Config configures a Conn. A Config may be shared between connections.
type Config struct {
	// Identity is the server identity (required server-side unless
	// GetIdentity is set).
	Identity *Identity
	// GetIdentity, when non-nil, selects the server identity from the
	// ClientHello's server_name (SNI) — virtual hosting, the way a CDN
	// TLS terminator fronts many sites. Returning nil falls back to
	// Identity.
	GetIdentity func(serverName string) *Identity
	// Provider executes crypto work; nil means SoftwareProvider.
	Provider Provider
	// AsyncMode selects the crypto pause implementation (server side).
	AsyncMode AsyncMode
	// MaxVersion caps the negotiated protocol version; 0 means TLS 1.2
	// (the paper's primary protocol).
	MaxVersion uint16
	// CipherSuites lists acceptable suites in preference order; nil means
	// all supported suites for the negotiated version.
	CipherSuites []uint16
	// Curve is the ECDHE group; nil means P-256 (the OpenSSL default the
	// paper uses).
	Curve ecdh.Curve
	// SessionCache enables session-ID resumption on the server.
	SessionCache *SessionCache
	// TicketKey, when non-nil, enables session-ticket resumption.
	TicketKey *[32]byte
	// TicketKeys, when non-nil, enables session-ticket resumption backed
	// by a shared rotating key ring; the ring's newest key seals and all
	// retained keys open, so workers sharing one ring resume each other's
	// tickets across rotations. Takes precedence over TicketKey.
	TicketKeys *TicketKeyRing
	// Session, on the client, resumes the given session.
	Session *ClientSession
	// RequestTicket, on the client, asks the server for a session ticket.
	RequestTicket bool
	// ServerName, on the client, is sent in the SNI extension.
	ServerName string
	// Rand is the entropy source; nil means crypto/rand.Reader.
	Rand io.Reader
	// OpCounter, when non-nil, counts completed crypto operations.
	OpCounter *OpCounts
}

func (c *Config) provider() Provider {
	if c.Provider == nil {
		return SoftwareProvider{}
	}
	return c.Provider
}

func (c *Config) rand() io.Reader {
	if c.Rand == nil {
		return rand.Reader
	}
	return c.Rand
}

func (c *Config) maxVersion() uint16 {
	if c.MaxVersion == 0 {
		return VersionTLS12
	}
	return c.MaxVersion
}

func (c *Config) curve() ecdh.Curve {
	if c.Curve == nil {
		return ecdh.P256()
	}
	return c.Curve
}

func (c *Config) suites(version uint16) []uint16 {
	if c.CipherSuites != nil {
		return c.CipherSuites
	}
	if version == VersionTLS13 {
		return []uint16{TLS_AES_128_GCM_SHA256}
	}
	return []uint16{
		TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA,
		TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA,
		TLS_RSA_WITH_AES_128_CBC_SHA,
	}
}

// clientSuites is the ClientHello offer: a 1.3-capable client also offers
// the 1.2 suites so version fallback can negotiate a cipher.
func (c *Config) clientSuites(maxVersion uint16) []uint16 {
	if c.CipherSuites != nil {
		return c.CipherSuites
	}
	if maxVersion >= VersionTLS13 {
		return append(c.suites(VersionTLS13), c.suites(VersionTLS12)...)
	}
	return c.suites(VersionTLS12)
}
