package minitls

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
)

// trickleConn delivers at most n bytes per Read, exercising partial
// record and partial handshake-message reassembly.
type trickleConn struct {
	net.Conn
	n int
}

func (c *trickleConn) Read(p []byte) (int, error) {
	if len(p) > c.n {
		p = p[:c.n]
	}
	return c.Conn.Read(p)
}

func TestHandshakeOverTrickleTransport(t *testing.T) {
	rsaID, _ := testIdentities(t)
	cliT, srvT := net.Pipe()
	defer cliT.Close()
	defer srvT.Close()
	server := Server(&trickleConn{Conn: srvT, n: 3}, &Config{
		Identity:     rsaID,
		CipherSuites: []uint16{TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA},
	})
	client := ClientConn(&trickleConn{Conn: cliT, n: 5}, &Config{})
	errc := make(chan error, 1)
	go func() { errc <- client.Handshake() }()
	if err := server.Handshake(); err != nil {
		t.Fatalf("server: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("client: %v", err)
	}
	echoCheck(t, server, client)
}

// nonBlockingWrap simulates a non-blocking transport: Read returns a
// would-block error when no data is buffered.
type nonBlockingWrap struct {
	in  bytes.Buffer
	out *bytes.Buffer
}

type nbErr struct{}

func (nbErr) Error() string    { return "would block" }
func (nbErr) WouldBlock() bool { return true }

func (c *nonBlockingWrap) Read(p []byte) (int, error) {
	if c.in.Len() == 0 {
		return 0, nbErr{}
	}
	return c.in.Read(p)
}

func (c *nonBlockingWrap) Write(p []byte) (int, error) { return c.out.Write(p) }

// A server on a non-blocking transport surfaces ErrWantRead until enough
// bytes arrive, then proceeds — the event-driven contract (§2.2).
func TestWantReadOnNonBlockingTransport(t *testing.T) {
	rsaID, _ := testIdentities(t)
	var toClient bytes.Buffer
	srvT := &nonBlockingWrap{out: &toClient}
	server := Server(srvT, &Config{
		Identity:     rsaID,
		CipherSuites: []uint16{TLS_RSA_WITH_AES_128_CBC_SHA},
	})
	if err := server.Handshake(); !errors.Is(err, ErrWantRead) {
		t.Fatalf("empty transport: err = %v, want ErrWantRead", err)
	}
	// Produce a real ClientHello via a scratch client.
	scratch := nonBlockingWrap{out: &bytes.Buffer{}}
	client := ClientConn(&scratch, &Config{})
	if err := client.Handshake(); !errors.Is(err, ErrWantRead) {
		t.Fatalf("client should want read after sending CH, got %v", err)
	}
	ch := scratch.out.Bytes()
	// Feed the ClientHello one byte at a time: ErrWantRead until complete.
	for i, b := range ch {
		srvT.in.WriteByte(b)
		err := server.Handshake()
		if i < len(ch)-1 {
			if !errors.Is(err, ErrWantRead) {
				t.Fatalf("byte %d/%d: err = %v, want ErrWantRead", i+1, len(ch), err)
			}
		} else if !errors.Is(err, ErrWantRead) {
			// After the full CH the server writes its flight and then
			// wants the next client flight.
			t.Fatalf("after full CH: err = %v, want ErrWantRead", err)
		}
	}
	if toClient.Len() == 0 {
		t.Fatal("server never flushed its flight")
	}
}

func TestReadWriteAutoHandshake(t *testing.T) {
	rsaID, _ := testIdentities(t)
	cliT, srvT := net.Pipe()
	defer cliT.Close()
	defer srvT.Close()
	server := Server(srvT, &Config{Identity: rsaID})
	client := ClientConn(cliT, &Config{})
	// Client Write triggers the handshake implicitly; server Read too.
	errc := make(chan error, 1)
	go func() {
		_, err := client.Write([]byte("implicit"))
		errc <- err
	}()
	buf := make([]byte, 8)
	if _, err := io.ReadFull(&connReader{server}, buf); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if string(buf) != "implicit" {
		t.Fatalf("got %q", buf)
	}
}

func TestFatalErrorIsSticky(t *testing.T) {
	rsaID, _ := testIdentities(t)
	var garbage nonBlockingWrap
	// A record that is too large: header declares an oversized body.
	garbage.in.Write([]byte{22, 3, 3, 0xff, 0xff})
	garbage.in.Write(make([]byte, 65535))
	server := Server(&garbage, &Config{Identity: rsaID})
	err1 := server.Handshake()
	if err1 == nil || IsBusy(err1) {
		t.Fatalf("err1 = %v, want fatal", err1)
	}
	err2 := server.Handshake()
	if !errors.Is(err2, err1) {
		t.Fatalf("fatal error not sticky: %v vs %v", err2, err1)
	}
}

func TestWriteReEntryWithDifferentBufferRejected(t *testing.T) {
	rsaID, _ := testIdentities(t)
	p := &manualProvider{}
	server, _, cliErr := asyncPair(t, AsyncModeFiber, p, TLS_RSA_WITH_AES_128_CBC_SHA, nil)
	driveServer(t, server, p)
	if err := <-cliErr; err != nil {
		t.Fatal(err)
	}
	_ = rsaID
	msg := bytes.Repeat([]byte{1}, 1024)
	if _, err := server.Write(msg); !errors.Is(err, ErrWantAsync) {
		t.Fatalf("first write: %v", err)
	}
	p.completeOne()
	other := bytes.Repeat([]byte{2}, 999)
	if _, err := server.Write(other); err == nil || IsBusy(err) {
		t.Fatalf("re-entry with different buffer: err = %v, want fatal", err)
	}
}

func TestIsBusyClassification(t *testing.T) {
	for _, err := range []error{ErrWantRead, ErrWantAsync, ErrWantAsyncRetry} {
		if !IsBusy(err) {
			t.Fatalf("%v should be busy", err)
		}
	}
	if IsBusy(io.EOF) || IsBusy(nil) {
		t.Fatal("misclassified")
	}
}

func TestAsyncModeStrings(t *testing.T) {
	if AsyncModeOff.String() != "off" || AsyncModeFiber.String() != "fiber" || AsyncModeStack.String() != "stack" {
		t.Fatal("mode names")
	}
	if AsyncMode(7).String() == "" {
		t.Fatal("unknown mode should render")
	}
	for _, k := range []OpKind{KindRSA, KindECDSA, KindECDH, KindPRF, KindHKDF, KindCipher} {
		if k.String() == "" {
			t.Fatalf("kind %d unnamed", k)
		}
	}
	if !KindRSA.Asymmetric() || KindPRF.Asymmetric() || KindHKDF.Asymmetric() {
		t.Fatal("Asymmetric misclassification")
	}
	if OpKind(99).String() == "" {
		t.Fatal("unknown kind should render")
	}
}

func TestIdentityLeaf(t *testing.T) {
	rsaID, _ := testIdentities(t)
	leaf, err := rsaID.Leaf()
	if err != nil || leaf == nil {
		t.Fatalf("Leaf: %v", err)
	}
	empty := &Identity{}
	if _, err := empty.Leaf(); err == nil {
		t.Fatal("empty identity should have no leaf")
	}
}

func TestOpCallResult(t *testing.T) {
	var c OpCall
	c.SetResult(42, io.EOF)
	v, err := c.Result()
	if v != 42 || !errors.Is(err, io.EOF) {
		t.Fatalf("Result = %v, %v", v, err)
	}
}

// Large certificates force handshake messages to span multiple records.
func TestHandshakeMessageSpanningRecords(t *testing.T) {
	rsaID, _ := testIdentities(t)
	// Pad the chain with large fake intermediate blobs (the client only
	// parses the leaf).
	big := *rsaID
	big.CertDER = [][]byte{
		rsaID.CertDER[0],
		bytes.Repeat([]byte{0xaa}, 20000),
		bytes.Repeat([]byte{0xbb}, 20000),
	}
	server, client, _ := handshakePair(t,
		&Config{Identity: &big, CipherSuites: []uint16{TLS_RSA_WITH_AES_128_CBC_SHA}},
		&Config{})
	echoCheck(t, server, client)
}

func TestHandshakeAfterCloseFails(t *testing.T) {
	rsaID, _ := testIdentities(t)
	cliT, srvT := net.Pipe()
	defer cliT.Close()
	defer srvT.Close()
	server := Server(srvT, &Config{Identity: rsaID})
	server.Close()
	if err := server.Handshake(); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if _, err := server.Read(make([]byte, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("read err = %v, want ErrClosed", err)
	}
}

// SNI-based identity selection: the server picks a certificate per
// requested server name (virtual hosting, as in a CDN TLS terminator).
func TestSNIIdentitySelection(t *testing.T) {
	rsaID, ecdsaID := testIdentities(t)
	getID := func(name string) *Identity {
		switch name {
		case "rsa.example":
			return rsaID
		case "ecdsa.example":
			return ecdsaID
		default:
			return nil // fall back to Config.Identity
		}
	}

	check := func(serverName string, wantSuite uint16) {
		t.Helper()
		server, client, _ := handshakePair(t,
			&Config{GetIdentity: getID, Identity: rsaID},
			&Config{ServerName: serverName})
		if got := server.ConnectionState().CipherSuite; got != wantSuite {
			t.Fatalf("SNI %q: suite = %s, want %s", serverName,
				CipherSuiteName(got), CipherSuiteName(wantSuite))
		}
		echoCheck(t, server, client)
	}
	// The negotiated suite reveals which identity was selected: ECDSA
	// identities can only serve the ECDHE-ECDSA suite.
	check("rsa.example", TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA)
	check("ecdsa.example", TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA)
	check("unknown.example", TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA) // fallback
}

// Without a fallback identity, an unknown server name is fatal.
func TestSNINoFallbackFails(t *testing.T) {
	_, ecdsaID := testIdentities(t)
	cliT, srvT := net.Pipe()
	defer cliT.Close()
	defer srvT.Close()
	server := Server(srvT, &Config{GetIdentity: func(name string) *Identity {
		if name == "known.example" {
			return ecdsaID
		}
		return nil
	}})
	client := ClientConn(cliT, &Config{ServerName: "other.example"})
	go func() { client.Handshake() }()
	if err := server.Handshake(); err == nil {
		t.Fatal("handshake without a matching identity succeeded")
	}
}
