package minitls

import (
	"bytes"
	"crypto/ecdh"
	"crypto/ecdsa"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/subtle"
	"crypto/x509"
	"errors"
	"fmt"
	"io"
)

// clientHS carries client handshake state. The client mirrors the paper's
// load generators (OpenSSL s_time, ApacheBench): it runs linearly with
// software crypto on a blocking transport.
type clientHS struct {
	hello        clientHelloMsg
	serverHello  serverHelloMsg
	clientRandom [32]byte
	serverRandom [32]byte
	serverCert   *x509.Certificate

	ecdhPriv  *ecdh.PrivateKey
	premaster []byte
	master    []byte
	clientCBC cbcKeys
	serverCBC cbcKeys

	ticket []byte

	// TLS 1.3
	sec        tls13Secrets
	psk        []byte // PSK offered for resumption
	offeredPSK bool
	resMaster  []byte         // resumption master secret (for tickets)
	session13  *ClientSession // session captured from a NewSessionTicket
}

// clientHandshake runs the full client handshake. It requires a blocking
// transport: a would-block mid-handshake is surfaced as ErrWantRead but
// the client does not checkpoint between messages.
func (c *Conn) clientHandshake() error {
	hs := &clientHS{}
	c.hcli = hs

	if _, err := io.ReadFull(c.config.rand(), hs.clientRandom[:]); err != nil {
		return err
	}
	maxV := c.config.maxVersion()
	hello := clientHelloMsg{
		version:      VersionTLS12,
		random:       hs.clientRandom,
		cipherSuites: c.config.clientSuites(maxV),
		serverName:   c.config.ServerName,
	}
	sess := c.config.Session
	if sess != nil && sess.Version == VersionTLS12 {
		hello.sessionID = sess.SessionID
		if len(sess.Ticket) > 0 {
			hello.hasTicketExt = true
			hello.sessionTicket = sess.Ticket
		}
	} else if sess == nil && c.config.RequestTicket {
		hello.hasTicketExt = true
	}
	if maxV >= VersionTLS13 {
		hello.supportedVersions = []uint16{VersionTLS13, VersionTLS12}
		curve := c.config.curve()
		priv, err := curve.GenerateKey(c.config.rand())
		if err != nil {
			return err
		}
		hs.ecdhPriv = priv
		hello.hasKeyShare = true
		hello.keyShareGroup = curveIDFor(curve)
		hello.keyShareData = priv.PublicKey().Bytes()
		if sess != nil && sess.Version == VersionTLS13 && len(sess.Ticket) > 0 {
			hello.hasPSK = true
			hello.pskIdentity = sess.Ticket
			hs.psk = sess.MasterSecret
			hs.offeredPSK = true
		}
	}
	hs.hello = hello
	msg := hello.marshal()
	if hello.hasPSK {
		// Patch the binder: it MACs the ClientHello up to (excluding)
		// the binders list (RFC 8446 §4.2.11).
		early := hkdfExtract(nil, hs.psk)
		binder := computeBinder(early, truncatedCHHash(msg))
		copy(msg[len(msg)-binderLen:], binder)
	}
	if err := c.writeHandshake(msg); err != nil {
		return err
	}

	typ, body, err := c.readHandshakeMsg()
	if err != nil {
		return err
	}
	if typ != typeServerHello {
		return unexpectedMsg(typ, "ServerHello")
	}
	if err := hs.serverHello.unmarshal(body); err != nil {
		return err
	}
	hs.serverRandom = hs.serverHello.random
	c.version = hs.serverHello.version
	c.suite = hs.serverHello.cipherSuite

	if c.version == VersionTLS13 {
		return c.clientHandshake13()
	}

	// TLS 1.2: did the server accept resumption? (It echoes our session
	// ID, or we offered a ticket and it jumped straight to CCS.)
	if sess := c.config.Session; sess != nil && sess.Version == VersionTLS12 {
		echoed := len(hello.sessionID) > 0 && bytes.Equal(hs.serverHello.sessionID, hello.sessionID)
		offeredTicket := len(sess.Ticket) > 0
		if echoed || offeredTicket {
			// Distinguish abbreviated from full by what follows: an
			// abbreviated handshake continues with CCS, a full one with
			// Certificate. For the ticket case the session IDs may match
			// coincidentally, so peek at the next record.
			if c.nextIsCCS() {
				c.didResume = true
				hs.master = sess.MasterSecret
				return c.clientFinishResumption()
			}
		}
	}
	return c.clientFull12()
}

// nextIsCCS reports whether the next record is a ChangeCipherSpec without
// consuming handshake data. It may block to read one record.
func (c *Conn) nextIsCCS() bool {
	if len(c.handBuf) > 0 {
		return false
	}
	// Read one record; if it is CCS we remember it, otherwise its payload
	// lands in handBuf.
	typ, payload, err := c.readRecord()
	if err != nil {
		return false
	}
	if typ == recordChangeCipherSpec {
		c.pendingCCS = true
		return true
	}
	if typ == recordHandshake {
		c.handBuf = append(c.handBuf, payload...)
	}
	return false
}

// clientFull12 runs the full TLS 1.2 client handshake after ServerHello.
func (c *Conn) clientFull12() error {
	hs := c.hcli
	kx, ok := suiteKeyExchange(c.suite)
	if !ok || kx == kxTLS13 {
		return fmt.Errorf("minitls: server selected unusable suite 0x%04x", c.suite)
	}

	// Certificate.
	typ, body, err := c.readHandshakeMsg()
	if err != nil {
		return err
	}
	if typ != typeCertificate {
		return unexpectedMsg(typ, "Certificate")
	}
	var certMsg certificateMsg
	if err := certMsg.unmarshal(body); err != nil {
		return err
	}
	leaf, err := x509.ParseCertificate(certMsg.chain[0])
	if err != nil {
		return err
	}
	hs.serverCert = leaf

	// ServerKeyExchange (ECDHE suites).
	var skx serverKeyExchangeMsg
	if kx != kxRSA {
		typ, body, err = c.readHandshakeMsg()
		if err != nil {
			return err
		}
		if typ != typeServerKeyExchange {
			return unexpectedMsg(typ, "ServerKeyExchange")
		}
		if err := skx.unmarshal(body); err != nil {
			return err
		}
		if err := c.verifySKX(&skx); err != nil {
			return err
		}
	}

	// ServerHelloDone.
	typ, _, err = c.readHandshakeMsg()
	if err != nil {
		return err
	}
	if typ != typeServerHelloDone {
		return unexpectedMsg(typ, "ServerHelloDone")
	}

	// ClientKeyExchange.
	var cke clientKeyExchangeMsg
	switch kx {
	case kxRSA:
		pub, ok := hs.serverCert.PublicKey.(*rsa.PublicKey)
		if !ok {
			return errors.New("minitls: RSA suite with non-RSA certificate")
		}
		hs.premaster = make([]byte, 48)
		if _, err := io.ReadFull(c.config.rand(), hs.premaster); err != nil {
			return err
		}
		hs.premaster[0], hs.premaster[1] = 0x03, 0x03
		ct, err := rsa.EncryptPKCS1v15(c.config.rand(), pub, hs.premaster)
		if err != nil {
			return err
		}
		cke = clientKeyExchangeMsg{isRSA: true, rsaCiphertext: ct}
	default:
		curve, err := curveForID(skx.curveID)
		if err != nil {
			return err
		}
		priv, err := curve.GenerateKey(c.config.rand())
		if err != nil {
			return err
		}
		peer, err := curve.NewPublicKey(skx.publicKey)
		if err != nil {
			return err
		}
		hs.premaster, err = priv.ECDH(peer)
		if err != nil {
			return err
		}
		cke = clientKeyExchangeMsg{ecdhPublic: priv.PublicKey().Bytes()}
	}
	if err := c.writeHandshake(cke.marshal()); err != nil {
		return err
	}

	// Key derivation.
	hs.master, err = c.doPRF(hs.premaster, "master secret",
		masterSeed(hs.clientRandom, hs.serverRandom), masterSecretLen)
	if err != nil {
		return err
	}
	kb, err := c.doPRF(hs.master, "key expansion",
		keyExpansionSeed(hs.clientRandom, hs.serverRandom), keyBlockLen)
	if err != nil {
		return err
	}
	hs.clientCBC, hs.serverCBC = splitKeyBlock(kb)

	// CCS + client Finished.
	if err := c.writeRecord(recordChangeCipherSpec, []byte{1}); err != nil {
		return err
	}
	prot, err := newCBCProtection(hs.clientCBC)
	if err != nil {
		return err
	}
	c.out.setProtection(prot)
	verify, err := c.doPRF(hs.master, "client finished", c.transcriptHash(), finishedVerify12)
	if err != nil {
		return err
	}
	fin := finishedMsg{verifyData: verify}
	if err := c.writeHandshake(fin.marshal()); err != nil {
		return err
	}

	// [NewSessionTicket] + server CCS + Finished.
	if hs.serverHello.ticketOffered {
		typ, body, err = c.readHandshakeMsg()
		if err != nil {
			return err
		}
		if typ != typeNewSessionTicket {
			return unexpectedMsg(typ, "NewSessionTicket")
		}
		var nst newSessionTicketMsg
		if err := nst.unmarshal(body); err != nil {
			return err
		}
		hs.ticket = nst.ticket
	}
	if err := c.readServerFinished12(); err != nil {
		return err
	}
	c.finishHandshake()
	return nil
}

// clientFinishResumption completes the abbreviated handshake after a
// resumption-accepting ServerHello.
func (c *Conn) clientFinishResumption() error {
	hs := c.hcli
	kb, err := c.doPRF(hs.master, "key expansion",
		keyExpansionSeed(hs.clientRandom, hs.serverRandom), keyBlockLen)
	if err != nil {
		return err
	}
	hs.clientCBC, hs.serverCBC = splitKeyBlock(kb)
	// Server CCS + Finished first, then ours.
	if err := c.readServerFinished12(); err != nil {
		return err
	}
	if err := c.writeRecord(recordChangeCipherSpec, []byte{1}); err != nil {
		return err
	}
	prot, err := newCBCProtection(hs.clientCBC)
	if err != nil {
		return err
	}
	c.out.setProtection(prot)
	verify, err := c.doPRF(hs.master, "client finished", c.transcriptHash(), finishedVerify12)
	if err != nil {
		return err
	}
	fin := finishedMsg{verifyData: verify}
	if err := c.writeHandshake(fin.marshal()); err != nil {
		return err
	}
	c.finishHandshake()
	return nil
}

// readServerFinished12 consumes the server's CCS and verifies its
// Finished message.
func (c *Conn) readServerFinished12() error {
	hs := c.hcli
	if c.pendingCCS {
		c.pendingCCS = false
	} else if err := c.readChangeCipherSpec(); err != nil {
		return err
	}
	prot, err := newCBCProtection(hs.serverCBC)
	if err != nil {
		return err
	}
	c.in.setProtection(prot)
	typ, body, err := c.readHandshakeMsg()
	if err != nil {
		return err
	}
	if typ != typeFinished {
		return unexpectedMsg(typ, "Finished")
	}
	var fin finishedMsg
	if err := fin.unmarshal(body); err != nil {
		return err
	}
	want, err := c.doPRF(hs.master, "server finished", c.preMsgHash, finishedVerify12)
	if err != nil {
		return err
	}
	if subtle.ConstantTimeCompare(want, fin.verifyData) != 1 {
		return errors.New("minitls: server Finished verification failed")
	}
	return nil
}

// verifySKX verifies the ServerKeyExchange signature against the server
// certificate's public key.
func (c *Conn) verifySKX(skx *serverKeyExchangeMsg) error {
	hs := c.hcli
	var signInput bytes.Buffer
	signInput.Write(hs.clientRandom[:])
	signInput.Write(hs.serverRandom[:])
	signInput.Write(skx.paramsBytes())
	digest := sha256.Sum256(signInput.Bytes())
	switch pub := hs.serverCert.PublicKey.(type) {
	case *rsa.PublicKey:
		return rsa.VerifyPKCS1v15(pub, cryptoSHA256, digest[:], skx.signature)
	case *ecdsa.PublicKey:
		if !ecdsa.VerifyASN1(pub, digest[:], skx.signature) {
			return errors.New("minitls: ECDSA ServerKeyExchange signature invalid")
		}
		return nil
	default:
		return errors.New("minitls: unsupported certificate key type")
	}
}

// clientHandshake13 completes the TLS 1.3 client handshake after
// ServerHello.
func (c *Conn) clientHandshake13() error {
	hs := c.hcli
	sh := &hs.serverHello
	if !sh.hasKeyShare {
		return errors.New("minitls: TLS 1.3 ServerHello without key share")
	}
	curve, err := curveForID(sh.keyShareGroup)
	if err != nil {
		return err
	}
	peer, err := curve.NewPublicKey(sh.keyShareData)
	if err != nil {
		return err
	}
	shared, err := hs.ecdhPriv.ECDH(peer)
	if err != nil {
		return err
	}

	// PSK acceptance: the server echoes the pre_shared_key extension.
	if sh.pskSelected {
		if !hs.offeredPSK {
			return errors.New("minitls: server selected a PSK we did not offer")
		}
		c.didResume = true
	}

	th := c.transcriptHash() // CH..SH
	ikm := zeros32()
	if c.didResume {
		ikm = hs.psk
	}
	early := hkdfExtract(nil, ikm)
	derived := deriveSecret(early, "derived", emptyHash())
	hsSecret := hkdfExtract(derived, shared)
	hs.sec.clientHS = deriveSecret(hsSecret, "c hs traffic", th)
	hs.sec.serverHS = deriveSecret(hsSecret, "s hs traffic", th)
	derived2 := deriveSecret(hsSecret, "derived", emptyHash())
	hs.sec.masterSecret = hkdfExtract(derived2, zeros32())

	inProt, err := newGCMProtection(trafficKeys(hs.sec.serverHS))
	if err != nil {
		return err
	}
	c.in.setProtection(inProt)
	outProt, err := newGCMProtection(trafficKeys(hs.sec.clientHS))
	if err != nil {
		return err
	}
	c.out.setProtection(outProt)

	// EncryptedExtensions.
	typ, body, err := c.readHandshakeMsg()
	if err != nil {
		return err
	}
	if typ != typeEncryptedExtensions {
		return unexpectedMsg(typ, "EncryptedExtensions")
	}
	var ee encryptedExtensionsMsg
	if err := ee.unmarshal(body); err != nil {
		return err
	}

	// Certificate + CertificateVerify (skipped on PSK resumption: the
	// PSK itself authenticates the server).
	if !c.didResume {
		typ, body, err = c.readHandshakeMsg()
		if err != nil {
			return err
		}
		if typ != typeCertificate {
			return unexpectedMsg(typ, "Certificate")
		}
		var certMsg certificateMsg
		if err := certMsg.unmarshal(body); err != nil {
			return err
		}
		leaf, err := x509.ParseCertificate(certMsg.chain[0])
		if err != nil {
			return err
		}
		hs.serverCert = leaf
		cvHash := c.transcriptHash() // CH..Certificate

		typ, body, err = c.readHandshakeMsg()
		if err != nil {
			return err
		}
		if typ != typeCertificateVerify {
			return unexpectedMsg(typ, "CertificateVerify")
		}
		var cv certificateVerifyMsg
		if err := cv.unmarshal(body); err != nil {
			return err
		}
		content := certVerifyContent13(cvHash)
		digest := sha256.Sum256(content)
		switch pub := leaf.PublicKey.(type) {
		case *rsa.PublicKey:
			if err := rsa.VerifyPSS(pub, cryptoSHA256, digest[:], cv.signature, nil); err != nil {
				return errors.New("minitls: CertificateVerify signature invalid")
			}
		case *ecdsa.PublicKey:
			if !ecdsa.VerifyASN1(pub, digest[:], cv.signature) {
				return errors.New("minitls: CertificateVerify signature invalid")
			}
		default:
			return errors.New("minitls: unsupported certificate key type")
		}
	}

	// Server Finished.
	typ, body, err = c.readHandshakeMsg()
	if err != nil {
		return err
	}
	if typ != typeFinished {
		return unexpectedMsg(typ, "Finished")
	}
	var fin finishedMsg
	if err := fin.unmarshal(body); err != nil {
		return err
	}
	want := finishedMAC13(hs.sec.serverHS, c.preMsgHash)
	if subtle.ConstantTimeCompare(want, fin.verifyData) != 1 {
		return errors.New("minitls: server Finished verification failed")
	}
	finishedTH := c.transcriptHash() // CH..server Finished

	// Client Finished (encrypted with client handshake keys).
	verify := finishedMAC13(hs.sec.clientHS, finishedTH)
	cfin := finishedMsg{verifyData: verify}
	if err := c.writeHandshake(cfin.marshal()); err != nil {
		return err
	}

	// Application keys, and the resumption master secret over the full
	// transcript (through our Finished) for later tickets.
	hs.sec.clientApp = deriveSecret(hs.sec.masterSecret, "c ap traffic", finishedTH)
	hs.sec.serverApp = deriveSecret(hs.sec.masterSecret, "s ap traffic", finishedTH)
	hs.resMaster = resumptionMasterSecret(hs.sec.masterSecret, c.transcriptHash())
	inApp, err := newGCMProtection(trafficKeys(hs.sec.serverApp))
	if err != nil {
		return err
	}
	c.in.setProtection(inApp)
	outApp, err := newGCMProtection(trafficKeys(hs.sec.clientApp))
	if err != nil {
		return err
	}
	c.out.setProtection(outApp)
	c.finishHandshake()
	return nil
}

// ResumptionSession returns the client-side session state usable for a
// later resumed connection, or nil when resumption is not possible. For
// TLS 1.3 the session comes from a post-handshake NewSessionTicket, so
// the caller must have performed at least one Read after the handshake.
func (c *Conn) ResumptionSession() *ClientSession {
	if c.isServer || !c.handshakeDone || c.hcli == nil {
		return nil
	}
	if c.version == VersionTLS13 {
		return c.hcli.session13
	}
	if c.version != VersionTLS12 {
		return nil
	}
	hs := c.hcli
	if len(hs.ticket) == 0 && len(hs.serverHello.sessionID) == 0 {
		return nil
	}
	if len(hs.master) == 0 {
		return nil
	}
	return &ClientSession{
		SessionID:    hs.serverHello.sessionID,
		Ticket:       hs.ticket,
		Version:      c.version,
		CipherSuite:  c.suite,
		MasterSecret: hs.master,
	}
}
