package minitls

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"io"

	"qtls/internal/asynclib"
)

// Conn is a TLS connection over an arbitrary transport. Unlike crypto/tls,
// a Conn is single-goroutine: it is designed to be driven by an
// event-loop worker, and Handshake/Read/Write surface ErrWantRead and
// ErrWantAsync instead of blocking when the transport is non-blocking or
// an async crypto offload is in flight.
type Conn struct {
	transport io.ReadWriter
	config    *Config
	isServer  bool
	identity  *Identity // server identity (possibly selected via SNI)

	in, out  halfConn
	rawInput []byte // undecoded transport bytes
	handBuf  []byte // reassembled handshake message stream
	appData  []byte // decrypted application data not yet consumed

	transcript hash.Hash // SHA-256 running handshake transcript
	preMsgHash []byte    // transcript hash before the last-read message

	// Handshake state machine.
	state   hsState
	version uint16
	suite   uint16
	hsrv    *serverHS
	hcli    *clientHS

	// Async machinery (§3.2). The wait context is shared across all async
	// jobs of the connection ("share one FD across all async jobs from the
	// same TLS connection", §4.4).
	opCall  OpCall
	job     *asynclib.Job
	stackOp asynclib.StackOp
	waitCtx *asynclib.WaitCtx

	// Pending Write progress for async re-entry.
	writeData []byte
	writeOff  int

	handshakeDone bool
	// outDetached marks the write direction handed to an external record
	// engine (DetachWriter): Write refuses, and Close leaves the
	// close-notify alert to the engine so the out-direction sequence
	// numbers stay consistent.
	outDetached     bool
	didResume       bool
	ticketSent      bool
	pendingCCS      bool // client peeked a CCS record (resumption detection)
	closed          bool
	closeNotifyRecv bool  // peer sent an orderly close-notify alert
	permErr         error // sticky fatal error
}

// hsState enumerates handshake state-machine states. Server and client
// share the enum; each side uses its own subset.
type hsState int

const (
	stateStart hsState = iota

	// TLS 1.2 server states. States whose handler performs exactly one
	// offloadable crypto operation are marked (crypto); they are the safe
	// re-entry points for stack async.
	stateS12ReadClientHello
	stateS12GenServerKey // (crypto: ECDH keygen)
	stateS12SignSKX      // (crypto: RSA/ECDSA sign)
	stateS12FlushHello   // send SH [+Cert+SKX] +SHD
	stateS12ReadCKE      // read ClientKeyExchange
	stateS12ProcessCKE   // (crypto: RSA decrypt | ECDH derive)
	stateS12DeriveMaster // (crypto: PRF master secret)
	stateS12DeriveKeys   // (crypto: PRF key expansion)
	stateS12ReadCCS      // read ChangeCipherSpec
	stateS12ReadFinished // read client Finished
	stateS12VerifyFin    // (crypto: PRF client verify_data)
	stateS12ComputeFin   // (crypto: PRF server verify_data)
	stateS12SendFinished // send [ticket] CCS+Finished

	// TLS 1.2 server abbreviated-handshake (resumption) states.
	stateS12ResumeKeys    // (crypto: PRF key expansion)
	stateS12ResumeSrvFin  // (crypto: PRF server verify_data)
	stateS12ResumeSend    // send SH+CCS+Finished
	stateS12ResumeReadCCS // read client CCS
	stateS12ResumeReadFin // read client Finished
	stateS12ResumeVerify  // (crypto: PRF client verify_data)

	// TLS 1.3 server states.
	stateS13ReadClientHello
	stateS13GenKey    // (crypto: ECDH keygen)
	stateS13Derive    // (crypto: ECDH derive)
	stateS13Schedule1 // HKDF batch: handshake secrets (inline-only ops)
	stateS13SignCV    // (crypto: RSA/ECDSA sign CertificateVerify)
	stateS13Flush     // send SH..Finished, derive app keys
	stateS13ReadFin   // read client Finished

	stateDone
)

// Server returns a server-side TLS connection over transport.
func Server(transport io.ReadWriter, config *Config) *Conn {
	c := newConn(transport, config, true)
	c.state = stateStart
	return c
}

// ClientConn returns a client-side TLS connection over transport. The
// client always computes crypto synchronously in software (the paper's
// clients are s_time/ab load generators).
func ClientConn(transport io.ReadWriter, config *Config) *Conn {
	return newConn(transport, config, false)
}

func newConn(transport io.ReadWriter, config *Config, server bool) *Conn {
	if config == nil {
		config = &Config{}
	}
	return &Conn{
		transport:  transport,
		config:     config,
		isServer:   server,
		transcript: sha256.New(),
		state:      stateStart,
	}
}

// WaitCtx returns the connection's async wait context, creating it on
// first use. The event loop installs its notification scheme here.
func (c *Conn) WaitCtx() *asynclib.WaitCtx {
	if c.waitCtx == nil {
		c.waitCtx = asynclib.NewWaitCtx()
	}
	return c.waitCtx
}

// SetAsyncCallback installs the kernel-bypass notification callback
// (mirrors SSL_set_async_callback, §4.4).
func (c *Conn) SetAsyncCallback(cb func(arg any), arg any) {
	c.WaitCtx().SetCallback(cb, arg)
}

// AsyncInFlight reports whether the connection has a paused offload job
// awaiting a crypto response.
func (c *Conn) AsyncInFlight() bool {
	if c.config.AsyncMode == AsyncModeFiber {
		return c.job != nil && !c.job.Finished()
	}
	return c.stackOp.State() == asynclib.StackInflight
}

// ConnectionState summarizes the negotiated parameters.
type ConnectionState struct {
	Version           uint16
	CipherSuite       uint16
	HandshakeComplete bool
	DidResume         bool
}

// ConnectionState returns the current connection state.
func (c *Conn) ConnectionState() ConnectionState {
	return ConnectionState{
		Version:           c.version,
		CipherSuite:       c.suite,
		HandshakeComplete: c.handshakeDone,
		DidResume:         c.didResume,
	}
}

// asyncMode returns the effective async mode: only the server side
// offloads asynchronously.
func (c *Conn) asyncMode() AsyncMode {
	if !c.isServer {
		return AsyncModeOff
	}
	return c.config.AsyncMode
}

// do routes one crypto operation through the provider with the
// connection's async context attached. Completed operations are counted
// in Config.OpCounter (this backs the Table 1 reproduction).
func (c *Conn) do(kind OpKind, work func() (any, error)) (any, error) {
	call := &c.opCall
	call.Mode = c.asyncMode()
	call.Job = c.job
	call.Stack = &c.stackOp
	call.WaitCtx = c.waitCtx
	res, err := c.config.provider().Do(call, kind, work)
	if err == nil && c.config.OpCounter != nil {
		c.config.OpCounter.Add(kind, 1)
	}
	return res, err
}

// doPRF derives length bytes with the TLS 1.2 PRF through the provider.
func (c *Conn) doPRF(secret []byte, label string, seed []byte, length int) ([]byte, error) {
	res, err := c.do(KindPRF, func() (any, error) {
		return prf12(secret, label, seed, length), nil
	})
	if err != nil {
		return nil, err
	}
	return res.([]byte), nil
}

// drive executes fn under the connection's async regime:
//
//   - AsyncModeOff/AsyncModeStack: fn runs on the calling goroutine; in
//     stack mode fn may surface ErrWantAsync / ErrWantAsyncRetry from a
//     provider call and is re-entered on the next drive.
//   - AsyncModeFiber: fn runs inside an ASYNC_JOB fiber. A paused fiber
//     maps to ErrWantAsync (or ErrWantAsyncRetry when the pause was due
//     to a failed submission); the next drive resumes it.
func (c *Conn) drive(fn func() error) error {
	if c.asyncMode() != AsyncModeFiber {
		return fn()
	}
	var status asynclib.Status
	var err error
	if c.job != nil && !c.job.Finished() {
		// Crypto resumption: jump back to the pause point (§3.2
		// post-processing).
		status, _, err = asynclib.StartJob(c.job, nil)
	} else {
		status, c.job, err = asynclib.StartJob(nil, func(j *asynclib.Job) error {
			// The fiber needs to see itself as the connection's current
			// job before any provider call; the driving goroutine is
			// parked inside StartJob, so this write is race-free.
			c.job = j
			return fn()
		})
	}
	if status == asynclib.StatusPause {
		if c.opCall.SubmitFailed {
			return ErrWantAsyncRetry
		}
		return ErrWantAsync
	}
	c.job = nil
	return err
}

// Handshake runs or continues the handshake. It returns nil when the
// handshake has completed, or one of ErrWantRead / ErrWantAsync /
// ErrWantAsyncRetry when it must be re-invoked later (non-blocking
// transport or async offload in flight). Any other error is fatal.
func (c *Conn) Handshake() error {
	if c.handshakeDone {
		return nil
	}
	if c.permErr != nil {
		return c.permErr
	}
	if c.closed {
		return ErrClosed
	}
	var err error
	if c.isServer {
		err = c.drive(c.serverHandshakeStep)
	} else {
		err = c.drive(c.clientHandshake)
	}
	if err != nil && !IsBusy(err) {
		c.permErr = err
	}
	return err
}

// HandshakeComplete reports whether the handshake has finished.
func (c *Conn) HandshakeComplete() bool { return c.handshakeDone }

// CancelAsync marks the connection's in-flight async operation as
// abandoned. The event loop calls it when a lifecycle deadline expires
// on an offload-paused connection: the next Handshake/Read/Write
// re-entry hands the cancel flag to the provider, which settles the
// operation (releasing its inflight slot and informing the breaker)
// instead of re-parking to wait for a response that may never come.
func (c *Conn) CancelAsync() {
	c.opCall.Cancelled = true
}

// CloseNotifyReceived reports whether the peer ended the connection
// with an orderly close-notify alert (as opposed to a bare transport
// EOF or reset). Load generators use it to classify server-initiated
// clean closes — keepalive timeout, graceful drain — separately from
// failures.
func (c *Conn) CloseNotifyReceived() bool { return c.closeNotifyRecv }

// --- record I/O ---------------------------------------------------------

// fill reads more transport bytes into rawInput. It translates
// would-block conditions into ErrWantRead.
func (c *Conn) fill() error {
	var buf [8192]byte
	n, err := c.transport.Read(buf[:])
	if n > 0 {
		c.rawInput = append(c.rawInput, buf[:n]...)
		return nil
	}
	if err == nil {
		return nil
	}
	if isWouldBlock(err) {
		return ErrWantRead
	}
	if errors.Is(err, io.EOF) && len(c.rawInput) > 0 {
		return io.ErrUnexpectedEOF
	}
	return err
}

// readRecord returns the next decrypted record. Incoming records are
// decrypted inline in software: QTLS pauses on the receive path too
// (ngx_ssl_handle_recv), but the evaluation's offload traffic is dominated
// by the send path; DESIGN.md records this simplification.
func (c *Conn) readRecord() (uint8, []byte, error) {
	for {
		if len(c.rawInput) >= recordHeaderLen {
			bodyLen := int(binary.BigEndian.Uint16(c.rawInput[3:5]))
			if bodyLen > maxCiphertext {
				return 0, nil, errRecordOverflow
			}
			if len(c.rawInput) >= recordHeaderLen+bodyLen {
				wireTyp := c.rawInput[0]
				// Copy the body out: the null protection returns its
				// input aliased, and rawInput is compacted below — more
				// than one buffered record (TCP coalescing) would
				// otherwise corrupt the returned payload.
				body := make([]byte, bodyLen)
				copy(body, c.rawInput[recordHeaderLen:recordHeaderLen+bodyLen])
				typ, payload, err := c.in.protection().open(c.in.seq, wireTyp, body)
				if err != nil {
					return 0, nil, err
				}
				c.in.seq++
				// Detach consumed bytes.
				rest := len(c.rawInput) - (recordHeaderLen + bodyLen)
				copy(c.rawInput, c.rawInput[recordHeaderLen+bodyLen:])
				c.rawInput = c.rawInput[:rest]
				if typ == recordAlert {
					if len(payload) != 2 {
						return 0, nil, errDecode
					}
					a := &alertError{level: payload[0], desc: payload[1]}
					if a.desc == 0 {
						return 0, nil, errCloseNotify
					}
					return 0, nil, a
				}
				return typ, payload, nil
			}
		}
		if err := c.fill(); err != nil {
			return 0, nil, err
		}
	}
}

// writeRecord seals and writes one record inline (handshake traffic,
// CCS, alerts). Application data goes through writeAppRecord so the
// cipher work can be offloaded.
func (c *Conn) writeRecord(typ uint8, payload []byte) error {
	wireTyp, body, err := c.out.protection().seal(c.out.seq, typ, payload, c.config.rand())
	if err != nil {
		return err
	}
	c.out.seq++
	return c.writeWire(wireTyp, body)
}

func (c *Conn) writeWire(wireTyp uint8, body []byte) error {
	if len(body) > maxCiphertext {
		return errRecordOverflow
	}
	hdr := [recordHeaderLen]byte{wireTyp, 0x03, 0x03}
	binary.BigEndian.PutUint16(hdr[3:5], uint16(len(body)))
	rec := make([]byte, 0, recordHeaderLen+len(body))
	rec = append(rec, hdr[:]...)
	rec = append(rec, body...)
	_, err := c.transport.Write(rec)
	return err
}

// writeHandshake writes handshake message bytes (already framed) and
// extends the transcript.
func (c *Conn) writeHandshake(msg []byte) error {
	c.transcript.Write(msg)
	for len(msg) > 0 {
		n := len(msg)
		if n > MaxPlaintext {
			n = MaxPlaintext
		}
		if err := c.writeRecord(recordHandshake, msg[:n]); err != nil {
			return err
		}
		msg = msg[n:]
	}
	return nil
}

// readHandshakeMsg returns the next handshake message (type, body). It
// buffers partial messages across records. CCS records are rejected here;
// states that expect CCS use readChangeCipherSpec.
func (c *Conn) readHandshakeMsg() (uint8, []byte, error) {
	for {
		if len(c.handBuf) >= 4 {
			n := int(c.handBuf[1])<<16 | int(c.handBuf[2])<<8 | int(c.handBuf[3])
			if len(c.handBuf) >= 4+n {
				typ := c.handBuf[0]
				msg := make([]byte, 4+n)
				copy(msg, c.handBuf[:4+n])
				rest := len(c.handBuf) - (4 + n)
				copy(c.handBuf, c.handBuf[4+n:])
				c.handBuf = c.handBuf[:rest]
				// Verification of Finished / CertificateVerify needs the
				// transcript hash *before* the message itself.
				c.preMsgHash = c.transcriptHash()
				c.transcript.Write(msg)
				return typ, msg[4:], nil
			}
		}
		typ, payload, err := c.readRecord()
		if err != nil {
			return 0, nil, err
		}
		switch typ {
		case recordHandshake:
			c.handBuf = append(c.handBuf, payload...)
		case recordApplicationData:
			return 0, nil, errors.New("minitls: application data during handshake")
		default:
			return 0, nil, fmt.Errorf("minitls: unexpected record type %d during handshake", typ)
		}
	}
}

// peekHandshakeType returns the type of the next buffered handshake
// message without consuming it, reading records as needed.
func (c *Conn) peekHandshakeType() (uint8, error) {
	for {
		if len(c.handBuf) >= 1 {
			return c.handBuf[0], nil
		}
		typ, payload, err := c.readRecord()
		if err != nil {
			return 0, err
		}
		if typ != recordHandshake {
			return 0, fmt.Errorf("minitls: unexpected record type %d during handshake", typ)
		}
		c.handBuf = append(c.handBuf, payload...)
	}
}

// readChangeCipherSpec consumes a CCS record.
func (c *Conn) readChangeCipherSpec() error {
	typ, payload, err := c.readRecord()
	if err != nil {
		return err
	}
	if typ != recordChangeCipherSpec || len(payload) != 1 || payload[0] != 1 {
		return errors.New("minitls: expected ChangeCipherSpec")
	}
	return nil
}

// transcriptHash returns the SHA-256 of the handshake transcript so far.
func (c *Conn) transcriptHash() []byte {
	return c.transcript.Sum(nil)
}

// --- application data ----------------------------------------------------

// Read returns decrypted application data. It completes the handshake
// first if necessary and surfaces the same retriable errors as Handshake.
// A close-notify alert from the peer yields io.EOF.
func (c *Conn) Read(p []byte) (int, error) {
	if c.closed {
		return 0, ErrClosed
	}
	if !c.handshakeDone {
		if err := c.Handshake(); err != nil {
			return 0, err
		}
	}
	for len(c.appData) == 0 {
		typ, payload, err := c.readRecord()
		if err != nil {
			if errors.Is(err, errCloseNotify) {
				c.closeNotifyRecv = true
				return 0, io.EOF
			}
			if errors.Is(err, io.EOF) {
				return 0, io.EOF
			}
			return 0, err
		}
		switch typ {
		case recordApplicationData:
			c.appData = append(c.appData, payload...)
		case recordHandshake:
			// Post-handshake messages (TLS 1.3 NewSessionTicket is
			// captured for resumption; anything else is ignored).
			c.handBuf = append(c.handBuf, payload...)
			c.drainPostHandshake()
		default:
			return 0, fmt.Errorf("minitls: unexpected record type %d", typ)
		}
	}
	n := copy(p, c.appData)
	rest := copy(c.appData, c.appData[n:])
	c.appData = c.appData[:rest]
	return n, nil
}

func (c *Conn) drainPostHandshake() {
	for len(c.handBuf) >= 4 {
		n := int(c.handBuf[1])<<16 | int(c.handBuf[2])<<8 | int(c.handBuf[3])
		if len(c.handBuf) < 4+n {
			return
		}
		typ := c.handBuf[0]
		body := make([]byte, n)
		copy(body, c.handBuf[4:4+n])
		rest := len(c.handBuf) - (4 + n)
		copy(c.handBuf, c.handBuf[4+n:])
		c.handBuf = c.handBuf[:rest]

		// TLS 1.3 client: capture NewSessionTicket for resumption.
		if typ == typeNewSessionTicket && !c.isServer && c.version == VersionTLS13 && c.hcli != nil {
			var nst newSessionTicketMsg
			if err := nst.unmarshal(body); err == nil && len(c.hcli.resMaster) > 0 {
				c.hcli.session13 = &ClientSession{
					Ticket:       nst.ticket,
					Version:      VersionTLS13,
					CipherSuite:  c.suite,
					MasterSecret: resumptionPSKClient(c.hcli.resMaster),
				}
			}
		}
	}
}

// Write encrypts and sends application data, fragmenting into 16 KB
// records. Record protection is routed through the provider as
// KindCipher work, so the QAT engine can offload it (this is the traffic
// measured in Fig. 10). On ErrWantAsync / ErrWantAsyncRetry the caller
// must call Write again with the same buffer once the async event fires;
// progress is kept internally. On success it returns len(p).
func (c *Conn) Write(p []byte) (int, error) {
	if c.closed {
		return 0, ErrClosed
	}
	if c.outDetached {
		return 0, errWriterDetached
	}
	if !c.handshakeDone {
		if err := c.Handshake(); err != nil {
			return 0, err
		}
	}
	if c.writeData != nil {
		if len(p) != len(c.writeData) {
			return 0, errors.New("minitls: Write re-entered with a different buffer")
		}
	} else {
		c.writeData = p
		c.writeOff = 0
	}
	err := c.drive(func() error {
		for c.writeOff < len(c.writeData) {
			n := len(c.writeData) - c.writeOff
			if n > MaxPlaintext {
				n = MaxPlaintext
			}
			frag := c.writeData[c.writeOff : c.writeOff+n]
			seq := c.out.seq
			prot := c.out.protection()
			rnd := c.config.rand()
			res, err := c.do(KindCipher, func() (any, error) {
				wireTyp, body, err := prot.seal(seq, recordApplicationData, frag, rnd)
				if err != nil {
					return nil, err
				}
				return sealedRecord{wireTyp: wireTyp, body: body}, nil
			})
			if err != nil {
				return err
			}
			sr := res.(sealedRecord)
			c.out.seq++
			if err := c.writeWire(sr.wireTyp, sr.body); err != nil {
				return err
			}
			c.writeOff += n
		}
		return nil
	})
	if err != nil {
		if IsBusy(err) {
			return 0, err
		}
		c.writeData, c.writeOff = nil, 0
		c.permErr = err
		return 0, err
	}
	n := len(c.writeData)
	c.writeData, c.writeOff = nil, 0
	return n, nil
}

type sealedRecord struct {
	wireTyp uint8
	body    []byte
}

// Close sends a close-notify alert (best effort) and marks the connection
// closed. The underlying transport is not closed: its lifecycle belongs
// to the caller (the event loop or the dialer).
func (c *Conn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if c.handshakeDone && c.permErr == nil && !c.outDetached {
		return c.writeRecord(recordAlert, []byte{1, 0})
	}
	return nil
}
