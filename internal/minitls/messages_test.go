package minitls

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

// stripFrame removes the 4-byte handshake framing and checks its header.
func stripFrame(t *testing.T, msg []byte, wantType uint8) []byte {
	t.Helper()
	if len(msg) < 4 {
		t.Fatal("message too short")
	}
	if msg[0] != wantType {
		t.Fatalf("type = %d, want %d", msg[0], wantType)
	}
	n := int(msg[1])<<16 | int(msg[2])<<8 | int(msg[3])
	if n != len(msg)-4 {
		t.Fatalf("framed length %d != body length %d", n, len(msg)-4)
	}
	return msg[4:]
}

func TestClientHelloRoundTrip(t *testing.T) {
	in := clientHelloMsg{
		version:           VersionTLS12,
		sessionID:         bytes.Repeat([]byte{9}, 32),
		cipherSuites:      []uint16{TLS_RSA_WITH_AES_128_CBC_SHA, TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA},
		serverName:        "example.test",
		hasTicketExt:      true,
		sessionTicket:     []byte("ticket-bytes"),
		supportedVersions: []uint16{VersionTLS13, VersionTLS12},
		hasKeyShare:       true,
		keyShareGroup:     curveP256,
		keyShareData:      bytes.Repeat([]byte{5}, 65),
	}
	copy(in.random[:], bytes.Repeat([]byte{7}, 32))
	body := stripFrame(t, in.marshal(), typeClientHello)
	var out clientHelloMsg
	if err := out.unmarshal(body); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("roundtrip mismatch:\n in %+v\nout %+v", in, out)
	}
}

func TestClientHelloMinimal(t *testing.T) {
	in := clientHelloMsg{version: VersionTLS12, cipherSuites: []uint16{TLS_RSA_WITH_AES_128_CBC_SHA}}
	body := stripFrame(t, in.marshal(), typeClientHello)
	var out clientHelloMsg
	if err := out.unmarshal(body); err != nil {
		t.Fatal(err)
	}
	if out.hasTicketExt || out.hasKeyShare || out.serverName != "" {
		t.Fatal("spurious extensions decoded")
	}
}

func TestServerHelloRoundTrip(t *testing.T) {
	in := serverHelloMsg{
		version:       VersionTLS13,
		sessionID:     []byte{1, 2, 3},
		cipherSuite:   TLS_AES_128_GCM_SHA256,
		ticketOffered: true,
		hasKeyShare:   true,
		keyShareGroup: curveP384,
		keyShareData:  bytes.Repeat([]byte{8}, 97),
	}
	copy(in.random[:], bytes.Repeat([]byte{3}, 32))
	body := stripFrame(t, in.marshal(), typeServerHello)
	var out serverHelloMsg
	if err := out.unmarshal(body); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("roundtrip mismatch")
	}
}

func TestCertificateRoundTrip(t *testing.T) {
	in := certificateMsg{chain: [][]byte{bytes.Repeat([]byte{1}, 900), {2, 2}}}
	body := stripFrame(t, in.marshal(), typeCertificate)
	var out certificateMsg
	if err := out.unmarshal(body); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in.chain, out.chain) {
		t.Fatal("chain mismatch")
	}
}

func TestCertificateEmptyChainRejected(t *testing.T) {
	in := certificateMsg{}
	body := stripFrame(t, in.marshal(), typeCertificate)
	var out certificateMsg
	if err := out.unmarshal(body); err == nil {
		t.Fatal("empty chain accepted")
	}
}

func TestServerKeyExchangeRoundTrip(t *testing.T) {
	in := serverKeyExchangeMsg{
		curveID:   curveP256,
		publicKey: bytes.Repeat([]byte{4}, 65),
		sigAlg:    sigRSAPKCS1SHA256,
		signature: bytes.Repeat([]byte{6}, 256),
	}
	body := stripFrame(t, in.marshal(), typeServerKeyExchange)
	var out serverKeyExchangeMsg
	if err := out.unmarshal(body); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatal("roundtrip mismatch")
	}
	if !bytes.Equal(in.paramsBytes(), out.paramsBytes()) {
		t.Fatal("signed params differ")
	}
}

func TestClientKeyExchangeRoundTrip(t *testing.T) {
	rsaIn := clientKeyExchangeMsg{isRSA: true, rsaCiphertext: bytes.Repeat([]byte{7}, 256)}
	body := stripFrame(t, rsaIn.marshal(), typeClientKeyExchange)
	var rsaOut clientKeyExchangeMsg
	if err := rsaOut.unmarshal(body, true); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rsaIn.rsaCiphertext, rsaOut.rsaCiphertext) {
		t.Fatal("rsa ciphertext mismatch")
	}

	ecIn := clientKeyExchangeMsg{ecdhPublic: bytes.Repeat([]byte{8}, 65)}
	body = stripFrame(t, ecIn.marshal(), typeClientKeyExchange)
	var ecOut clientKeyExchangeMsg
	if err := ecOut.unmarshal(body, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ecIn.ecdhPublic, ecOut.ecdhPublic) {
		t.Fatal("ec public mismatch")
	}
	// Trailing garbage rejected.
	if err := ecOut.unmarshal(append(body, 0xff), false); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestFinishedAndTicketRoundTrip(t *testing.T) {
	fin := finishedMsg{verifyData: bytes.Repeat([]byte{9}, 12)}
	body := stripFrame(t, fin.marshal(), typeFinished)
	var finOut finishedMsg
	if err := finOut.unmarshal(body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fin.verifyData, finOut.verifyData) {
		t.Fatal("verify data mismatch")
	}
	if err := finOut.unmarshal(nil); err == nil {
		t.Fatal("empty finished accepted")
	}

	nst := newSessionTicketMsg{lifetimeSeconds: 3600, ticket: []byte("tkt")}
	body = stripFrame(t, nst.marshal(), typeNewSessionTicket)
	var nstOut newSessionTicketMsg
	if err := nstOut.unmarshal(body); err != nil {
		t.Fatal(err)
	}
	if nstOut.lifetimeSeconds != 3600 || string(nstOut.ticket) != "tkt" {
		t.Fatal("ticket mismatch")
	}
}

func TestCertificateVerifyRoundTrip(t *testing.T) {
	in := certificateVerifyMsg{sigAlg: sigECDSAP256, signature: bytes.Repeat([]byte{2}, 70)}
	body := stripFrame(t, in.marshal(), typeCertificateVerify)
	var out certificateVerifyMsg
	if err := out.unmarshal(body); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestEncryptedExtensionsRoundTrip(t *testing.T) {
	var in encryptedExtensionsMsg
	body := stripFrame(t, in.marshal(), typeEncryptedExtensions)
	var out encryptedExtensionsMsg
	if err := out.unmarshal(body); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedMessagesRejected(t *testing.T) {
	full := clientHelloMsg{version: VersionTLS12, cipherSuites: []uint16{1}}
	body := stripFrame(t, full.marshal(), typeClientHello)
	for n := 0; n < len(body); n++ {
		var out clientHelloMsg
		if err := out.unmarshal(body[:n]); err == nil {
			// Some prefixes happen to parse when optional trailing parts
			// (extensions) are cut exactly at a boundary; that is legal.
			// But a prefix shorter than the mandatory fields must fail.
			if n < 2+32+1+2+2+1 {
				t.Fatalf("truncation to %d bytes accepted", n)
			}
		}
	}
}

// Property: ClientHello marshal/unmarshal is the identity on the fields
// we control.
func TestClientHelloRoundTripProperty(t *testing.T) {
	f := func(rnd [32]byte, sid []byte, suites []uint16, sn string, ticket []byte) bool {
		if len(sid) > 32 {
			sid = sid[:32]
		}
		if len(suites) == 0 {
			suites = []uint16{TLS_RSA_WITH_AES_128_CBC_SHA}
		}
		if len(suites) > 100 {
			suites = suites[:100]
		}
		if len(sn) > 200 {
			sn = sn[:200]
		}
		if len(ticket) > 1000 {
			ticket = ticket[:1000]
		}
		in := clientHelloMsg{
			version:       VersionTLS12,
			random:        rnd,
			sessionID:     sid,
			cipherSuites:  suites,
			serverName:    sn,
			hasTicketExt:  true,
			sessionTicket: ticket,
		}
		var out clientHelloMsg
		if err := out.unmarshal(stripFrameQuiet(in.marshal())); err != nil {
			return false
		}
		return out.version == in.version &&
			out.random == in.random &&
			bytes.Equal(out.sessionID, in.sessionID) &&
			reflect.DeepEqual(out.cipherSuites, in.cipherSuites) &&
			out.serverName == in.serverName &&
			out.hasTicketExt &&
			bytes.Equal(out.sessionTicket, in.sessionTicket)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func stripFrameQuiet(msg []byte) []byte { return msg[4:] }

func TestMsgTypeNames(t *testing.T) {
	for _, typ := range []uint8{typeClientHello, typeServerHello, typeNewSessionTicket,
		typeEncryptedExtensions, typeCertificate, typeServerKeyExchange,
		typeServerHelloDone, typeCertificateVerify, typeClientKeyExchange, typeFinished} {
		if msgTypeName(typ) == "" {
			t.Fatalf("no name for type %d", typ)
		}
	}
	if msgTypeName(99) != "handshake(99)" {
		t.Fatal("unknown type rendering")
	}
}
