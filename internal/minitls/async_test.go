package minitls

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"

	"qtls/internal/asynclib"
)

// manualProvider mimics the QAT engine's async protocol without a device:
// offloadable work is parked in a queue and completed only when the test
// calls completeOne/completeAll, exactly like polling the accelerator.
type manualProvider struct {
	mu        sync.Mutex
	queue     []*manualOp
	completed int
	failNext  int // fail the next N submissions with ring-full
	notified  int // kernel-bypass callbacks fired
}

type manualOp struct {
	call  *OpCall
	stack *asynclib.StackOp
	job   bool
	work  func() (any, error)
}

func (p *manualProvider) Name() string { return "manual" }

func (p *manualProvider) Do(call *OpCall, kind OpKind, work func() (any, error)) (any, error) {
	if kind == KindHKDF || call.Mode == AsyncModeOff {
		return work()
	}
	switch call.Mode {
	case AsyncModeFiber:
		p.mu.Lock()
		if p.failNext > 0 {
			p.failNext--
			p.mu.Unlock()
			call.SubmitFailed = true
			if err := call.Job.Pause(); err != nil {
				return nil, err
			}
			// Resumed after a failed submission: retry from scratch.
			return p.Do(call, kind, work)
		}
		p.queue = append(p.queue, &manualOp{call: call, job: true, work: work})
		p.mu.Unlock()
		call.SubmitFailed = false
		if err := call.Job.Pause(); err != nil {
			return nil, err
		}
		return call.Result()
	case AsyncModeStack:
		switch call.Stack.State() {
		case asynclib.StackReady:
			return call.Stack.Consume()
		case asynclib.StackIdle, asynclib.StackRetry:
			p.mu.Lock()
			if p.failNext > 0 {
				p.failNext--
				p.mu.Unlock()
				call.Stack.MarkRetry()
				return nil, ErrWantAsyncRetry
			}
			p.queue = append(p.queue, &manualOp{call: call, stack: call.Stack, work: work})
			p.mu.Unlock()
			call.Stack.MarkInflight()
			return nil, ErrWantAsync
		default:
			return nil, errors.New("manual: Do while inflight")
		}
	}
	return work()
}

// completeOne retrieves one "response", like one polled QAT completion.
func (p *manualProvider) completeOne() bool {
	p.mu.Lock()
	if len(p.queue) == 0 {
		p.mu.Unlock()
		return false
	}
	op := p.queue[0]
	p.queue = p.queue[1:]
	p.mu.Unlock()
	res, err := op.work()
	if op.stack != nil {
		op.stack.MarkReady(res, err)
	} else {
		op.call.SetResult(res, err)
	}
	if op.call.WaitCtx != nil && op.call.WaitCtx.Notify() {
		p.mu.Lock()
		p.notified++
		p.mu.Unlock()
	}
	p.mu.Lock()
	p.completed++
	p.mu.Unlock()
	return true
}

func (p *manualProvider) pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// driveServer pumps a server handshake in async mode to completion,
// counting how many times the handshake paused.
func driveServer(t *testing.T, server *Conn, p *manualProvider) (pauses int) {
	t.Helper()
	for {
		err := server.Handshake()
		switch {
		case err == nil:
			return pauses
		case errors.Is(err, ErrWantAsync):
			pauses++
			if !p.completeOne() {
				t.Fatal("want-async with empty queue")
			}
		case errors.Is(err, ErrWantAsyncRetry):
			pauses++
			// Retry immediately (the event loop would reschedule).
		default:
			t.Fatalf("server handshake: %v", err)
		}
	}
}

func asyncPair(t *testing.T, mode AsyncMode, p *manualProvider, suite uint16, ops *OpCounts) (*Conn, *Conn, chan error) {
	t.Helper()
	rsaID, ecdsaID := testIdentities(t)
	id := rsaID
	if suite == TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA {
		id = ecdsaID
	}
	cliT, srvT := net.Pipe()
	t.Cleanup(func() { cliT.Close(); srvT.Close() })
	server := Server(srvT, &Config{
		Identity:     id,
		Provider:     p,
		AsyncMode:    mode,
		CipherSuites: []uint16{suite},
		OpCounter:    ops,
	})
	client := ClientConn(cliT, &Config{})
	cliErr := make(chan error, 1)
	go func() { cliErr <- client.Handshake() }()
	return server, client, cliErr
}

func testAsyncHandshake(t *testing.T, mode AsyncMode, suite uint16, wantPauses int) {
	p := &manualProvider{}
	var ops OpCounts
	server, client, cliErr := asyncPair(t, mode, p, suite, &ops)
	pauses := driveServer(t, server, p)
	if err := <-cliErr; err != nil {
		t.Fatalf("client: %v", err)
	}
	if !server.HandshakeComplete() {
		t.Fatal("server handshake incomplete")
	}
	if pauses != wantPauses {
		t.Fatalf("pauses = %d, want %d (one per offloadable crypto op)", pauses, wantPauses)
	}
	if p.pending() != 0 {
		t.Fatalf("unretrieved responses: %d", p.pending())
	}
	echoAsync(t, server, client, p)
}

// echoAsync exercises async Write on the server side.
func echoAsync(t *testing.T, server, client *Conn, p *manualProvider) {
	t.Helper()
	msg := bytes.Repeat([]byte{0x42}, 40*1024) // 3 records → 3 cipher ops
	done := make(chan error, 1)
	got := make([]byte, len(msg))
	go func() {
		_, err := io.ReadFull(&connReader{client}, got)
		done <- err
	}()
	for {
		_, err := server.Write(msg)
		if err == nil {
			break
		}
		if errors.Is(err, ErrWantAsync) {
			if !p.completeOne() {
				t.Fatal("want-async with empty queue")
			}
			continue
		}
		t.Fatalf("server write: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("async transfer corrupted")
	}
}

// TLS-RSA full handshake offloads RSA(1) + PRF(4) = 5 ops.
func TestFiberAsyncHandshakeRSA(t *testing.T) {
	testAsyncHandshake(t, AsyncModeFiber, TLS_RSA_WITH_AES_128_CBC_SHA, 5)
}

func TestStackAsyncHandshakeRSA(t *testing.T) {
	testAsyncHandshake(t, AsyncModeStack, TLS_RSA_WITH_AES_128_CBC_SHA, 5)
}

// ECDHE-RSA offloads ECDH(2) + RSA(1) + PRF(4) = 7 ops.
func TestFiberAsyncHandshakeECDHERSA(t *testing.T) {
	testAsyncHandshake(t, AsyncModeFiber, TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA, 7)
}

func TestStackAsyncHandshakeECDHERSA(t *testing.T) {
	testAsyncHandshake(t, AsyncModeStack, TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA, 7)
}

// ECDHE-ECDSA offloads ECDH(2) + ECDSA(1) + PRF(4) = 7 ops.
func TestFiberAsyncHandshakeECDSA(t *testing.T) {
	testAsyncHandshake(t, AsyncModeFiber, TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA, 7)
}

func TestStackAsyncHandshakeECDSA(t *testing.T) {
	testAsyncHandshake(t, AsyncModeStack, TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA, 7)
}

// Submission failure (ring full): the job pauses/returns retry and the
// re-driven handshake resubmits (§3.2 "failure of crypto submission").
func TestFiberAsyncSubmitRetry(t *testing.T) {
	p := &manualProvider{failNext: 2}
	var ops OpCounts
	server, _, cliErr := asyncPair(t, AsyncModeFiber, p, TLS_RSA_WITH_AES_128_CBC_SHA, &ops)
	pauses := driveServer(t, server, p)
	if err := <-cliErr; err != nil {
		t.Fatal(err)
	}
	// 5 ops + 2 retry pauses.
	if pauses != 7 {
		t.Fatalf("pauses = %d, want 7", pauses)
	}
	if ops.Get(KindRSA) != 1 {
		t.Fatalf("RSA ops = %d (retries must not double-count)", ops.Get(KindRSA))
	}
}

func TestStackAsyncSubmitRetry(t *testing.T) {
	p := &manualProvider{failNext: 3}
	var ops OpCounts
	server, _, cliErr := asyncPair(t, AsyncModeStack, p, TLS_RSA_WITH_AES_128_CBC_SHA, &ops)
	pauses := driveServer(t, server, p)
	if err := <-cliErr; err != nil {
		t.Fatal(err)
	}
	if pauses != 8 {
		t.Fatalf("pauses = %d, want 8", pauses)
	}
	rsaN, _, prfN := ops.Table1Row()
	if rsaN != 1 || prfN != 4 {
		t.Fatalf("op counts with retries: RSA:%d PRF:%d", rsaN, prfN)
	}
}

// The kernel-bypass notification callback fires once per completed async
// operation when installed (§4.4).
func TestAsyncCallbackNotification(t *testing.T) {
	p := &manualProvider{}
	var ops OpCounts
	server, _, cliErr := asyncPair(t, AsyncModeFiber, p, TLS_RSA_WITH_AES_128_CBC_SHA, &ops)
	var events []any
	server.SetAsyncCallback(func(arg any) { events = append(events, arg) }, "conn-1")
	driveServer(t, server, p)
	if err := <-cliErr; err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("callback fired %d times, want 5", len(events))
	}
	for _, e := range events {
		if e != "conn-1" {
			t.Fatalf("callback arg = %v", e)
		}
	}
	if p.notified != 5 {
		t.Fatalf("notified = %d", p.notified)
	}
}

// AsyncInFlight reflects whether a paused offload job awaits a response.
func TestAsyncInFlight(t *testing.T) {
	for _, mode := range []AsyncMode{AsyncModeFiber, AsyncModeStack} {
		p := &manualProvider{}
		server, _, cliErr := asyncPair(t, mode, p, TLS_RSA_WITH_AES_128_CBC_SHA, nil)
		if server.AsyncInFlight() {
			t.Fatalf("%v: in-flight before start", mode)
		}
		err := server.Handshake()
		if !errors.Is(err, ErrWantAsync) {
			t.Fatalf("%v: first step err = %v", mode, err)
		}
		if !server.AsyncInFlight() {
			t.Fatalf("%v: not in-flight after pause", mode)
		}
		// Retrieve the pending response before resuming: the event loop
		// only reschedules a paused job after its async event fires.
		if !p.completeOne() {
			t.Fatalf("%v: nothing pending", mode)
		}
		driveServer(t, server, p)
		if err := <-cliErr; err != nil {
			t.Fatal(err)
		}
		if server.AsyncInFlight() {
			t.Fatalf("%v: in-flight after completion", mode)
		}
	}
}

// Async off mode with the manual provider behaves synchronously.
func TestAsyncOffRunsInline(t *testing.T) {
	p := &manualProvider{}
	var ops OpCounts
	server, client, cliErr := asyncPair(t, AsyncModeOff, p, TLS_RSA_WITH_AES_128_CBC_SHA, &ops)
	if err := server.Handshake(); err != nil {
		t.Fatal(err)
	}
	if err := <-cliErr; err != nil {
		t.Fatal(err)
	}
	if p.pending() != 0 || p.completed != 0 {
		t.Fatal("off mode must not queue work")
	}
	echoCheck(t, server, client)
}

// A resumed (abbreviated) handshake under async mode pauses once per PRF.
func TestAsyncResumption(t *testing.T) {
	rsaID, _ := testIdentities(t)
	cache := NewSessionCache(4)

	// Full handshake (sync) to seed the cache.
	_, client1, _ := handshakePair(t,
		&Config{Identity: rsaID, CipherSuites: []uint16{TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA}, SessionCache: cache},
		&Config{})
	sess := client1.ResumptionSession()
	if sess == nil {
		t.Fatal("no session")
	}

	p := &manualProvider{}
	cliT, srvT := net.Pipe()
	defer cliT.Close()
	defer srvT.Close()
	var ops OpCounts
	server := Server(srvT, &Config{
		Identity:     rsaID,
		Provider:     p,
		AsyncMode:    AsyncModeFiber,
		CipherSuites: []uint16{TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA},
		SessionCache: cache,
		OpCounter:    &ops,
	})
	client := ClientConn(cliT, &Config{Session: sess})
	cliErr := make(chan error, 1)
	go func() { cliErr <- client.Handshake() }()
	pauses := driveServer(t, server, p)
	if err := <-cliErr; err != nil {
		t.Fatal(err)
	}
	if !server.ConnectionState().DidResume {
		t.Fatal("did not resume")
	}
	if pauses != 3 {
		t.Fatalf("pauses = %d, want 3 (PRF only)", pauses)
	}
}

// TLS 1.3 under async mode: HKDF never pauses, so only ECDH + RSA pause.
func TestAsyncTLS13HKDFInline(t *testing.T) {
	rsaID, _ := testIdentities(t)
	p := &manualProvider{}
	cliT, srvT := net.Pipe()
	defer cliT.Close()
	defer srvT.Close()
	var ops OpCounts
	server := Server(srvT, &Config{
		Identity:   rsaID,
		Provider:   p,
		AsyncMode:  AsyncModeFiber,
		MaxVersion: VersionTLS13,
		OpCounter:  &ops,
	})
	client := ClientConn(cliT, &Config{MaxVersion: VersionTLS13})
	cliErr := make(chan error, 1)
	go func() { cliErr <- client.Handshake() }()
	pauses := driveServer(t, server, p)
	if err := <-cliErr; err != nil {
		t.Fatal(err)
	}
	// ECDH keygen + ECDH derive + RSA sign = 3 offloadable ops; the >4
	// HKDF ops run inline (not offloadable through the QAT Engine, §5.2).
	if pauses != 3 {
		t.Fatalf("pauses = %d, want 3", pauses)
	}
	if ops.Get(KindHKDF) <= 4 {
		t.Fatalf("HKDF ops = %d, want > 4", ops.Get(KindHKDF))
	}
}
