package minitls

import (
	"net"
	"testing"
)

func TestHandshakeOverRealTCP(t *testing.T) {
	rsaID, _ := testIdentities(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		srv := Server(c, &Config{Identity: rsaID, CipherSuites: []uint16{TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA}})
		done <- srv.Handshake()
	}()
	raw, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	cli := ClientConn(raw, &Config{})
	if err := cli.Handshake(); err != nil {
		t.Fatalf("client: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
}
