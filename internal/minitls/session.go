package minitls

import (
	"container/list"
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"io"
	"sync"
)

// SessionState is the server-side state needed to resume a TLS 1.2
// session: an abbreviated handshake reuses the master secret and skips
// the asymmetric-key calculations (§2.1 "session resumption").
type SessionState struct {
	Version      uint16
	CipherSuite  uint16
	MasterSecret []byte
}

func (s *SessionState) marshal() []byte {
	var w builder
	w.u16(s.Version)
	w.u16(s.CipherSuite)
	w.vec16(s.MasterSecret)
	return w.bytes()
}

func (s *SessionState) unmarshal(b []byte) error {
	r := reader{b: b}
	var err error
	if s.Version, err = r.u16(); err != nil {
		return err
	}
	if s.CipherSuite, err = r.u16(); err != nil {
		return err
	}
	if s.MasterSecret, err = r.vec16(); err != nil {
		return err
	}
	if !r.empty() {
		return errDecode
	}
	return nil
}

// ClientSession is what the client stores after a handshake to attempt
// resumption later (session ID, ticket, or both).
type ClientSession struct {
	SessionID    []byte
	Ticket       []byte
	Version      uint16
	CipherSuite  uint16
	MasterSecret []byte
}

// SessionCache is a bounded LRU mapping session IDs to session state,
// used for server-side session-ID resumption. It is safe for concurrent
// use by multiple server workers.
type SessionCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	order   *list.List // front = most recent

	hits, misses int64
}

type cacheEntry struct {
	key   string
	state SessionState
}

// NewSessionCache returns a cache bounded to max sessions (default 1024
// when max <= 0).
func NewSessionCache(max int) *SessionCache {
	if max <= 0 {
		max = 1024
	}
	return &SessionCache{
		max:     max,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// Put stores state under the given session ID.
func (sc *SessionCache) Put(sessionID []byte, state SessionState) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	key := string(sessionID)
	if el, ok := sc.entries[key]; ok {
		el.Value.(*cacheEntry).state = state
		sc.order.MoveToFront(el)
		return
	}
	sc.entries[key] = sc.order.PushFront(&cacheEntry{key: key, state: state})
	for sc.order.Len() > sc.max {
		oldest := sc.order.Back()
		sc.order.Remove(oldest)
		delete(sc.entries, oldest.Value.(*cacheEntry).key)
	}
}

// Get looks up a session by ID.
func (sc *SessionCache) Get(sessionID []byte) (SessionState, bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	el, ok := sc.entries[string(sessionID)]
	if !ok {
		sc.misses++
		return SessionState{}, false
	}
	sc.hits++
	sc.order.MoveToFront(el)
	return el.Value.(*cacheEntry).state, true
}

// Len returns the number of cached sessions.
func (sc *SessionCache) Len() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.order.Len()
}

// Stats returns hit/miss counters.
func (sc *SessionCache) Stats() (hits, misses int64) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.hits, sc.misses
}

// sealTicket encrypts session state into an opaque session ticket with
// AES-128-GCM under the server's ticket key. Ticket protection is a
// cheap symmetric operation done in software even under QTLS.
func sealTicket(key *[32]byte, state SessionState) ([]byte, error) {
	block, err := aes.NewCipher(key[:16])
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, err
	}
	return append(nonce, aead.Seal(nil, nonce, state.marshal(), key[16:])...), nil
}

// openTicket decrypts and validates a session ticket.
func openTicket(key *[32]byte, ticket []byte) (SessionState, error) {
	var state SessionState
	block, err := aes.NewCipher(key[:16])
	if err != nil {
		return state, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return state, err
	}
	if len(ticket) < aead.NonceSize() {
		return state, errors.New("minitls: ticket too short")
	}
	plain, err := aead.Open(nil, ticket[:aead.NonceSize()], ticket[aead.NonceSize():], key[16:])
	if err != nil {
		return state, errors.New("minitls: ticket authentication failed")
	}
	if err := state.unmarshal(plain); err != nil {
		return state, err
	}
	return state, nil
}
