package minitls

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Handshake message types (RFC 5246 / RFC 8446 values).
const (
	typeClientHello         uint8 = 1
	typeServerHello         uint8 = 2
	typeNewSessionTicket    uint8 = 4
	typeEncryptedExtensions uint8 = 8
	typeCertificate         uint8 = 11
	typeServerKeyExchange   uint8 = 12
	typeServerHelloDone     uint8 = 14
	typeCertificateVerify   uint8 = 15
	typeClientKeyExchange   uint8 = 16
	typeFinished            uint8 = 20
)

// Extension identifiers.
const (
	extServerName        uint16 = 0
	extSessionTicket     uint16 = 35
	extPreSharedKey      uint16 = 41
	extSupportedVersions uint16 = 43
	extKeyShare          uint16 = 51
)

// Named curve identifiers (RFC 8422).
const (
	curveP256 uint16 = 23
	curveP384 uint16 = 24
)

// errDecode is returned on any malformed message.
var errDecode = errors.New("minitls: malformed message")

// builder assembles length-prefixed wire structures.
type builder struct{ b []byte }

func (w *builder) bytes() []byte  { return w.b }
func (w *builder) u8(v uint8)     { w.b = append(w.b, v) }
func (w *builder) u16(v uint16)   { w.b = binary.BigEndian.AppendUint16(w.b, v) }
func (w *builder) u24(v int)      { w.b = append(w.b, byte(v>>16), byte(v>>8), byte(v)) }
func (w *builder) u32(v uint32)   { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *builder) raw(p []byte)   { w.b = append(w.b, p...) }
func (w *builder) vec8(p []byte)  { w.u8(uint8(len(p))); w.raw(p) }
func (w *builder) vec16(p []byte) { w.u16(uint16(len(p))); w.raw(p) }
func (w *builder) vec24(p []byte) { w.u24(len(p)); w.raw(p) }

// reader consumes length-prefixed wire structures.
type reader struct{ b []byte }

func (r *reader) empty() bool { return len(r.b) == 0 }

func (r *reader) u8() (uint8, error) {
	if len(r.b) < 1 {
		return 0, errDecode
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}

func (r *reader) u16() (uint16, error) {
	if len(r.b) < 2 {
		return 0, errDecode
	}
	v := binary.BigEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v, nil
}

func (r *reader) u24() (int, error) {
	if len(r.b) < 3 {
		return 0, errDecode
	}
	v := int(r.b[0])<<16 | int(r.b[1])<<8 | int(r.b[2])
	r.b = r.b[3:]
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if len(r.b) < 4 {
		return 0, errDecode
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v, nil
}

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || len(r.b) < n {
		return nil, errDecode
	}
	v := r.b[:n:n]
	r.b = r.b[n:]
	return v, nil
}

func (r *reader) vec8() ([]byte, error) {
	n, err := r.u8()
	if err != nil {
		return nil, err
	}
	return r.take(int(n))
}

func (r *reader) vec16() ([]byte, error) {
	n, err := r.u16()
	if err != nil {
		return nil, err
	}
	return r.take(int(n))
}

func (r *reader) vec24() ([]byte, error) {
	n, err := r.u24()
	if err != nil {
		return nil, err
	}
	return r.take(n)
}

// extension is a raw TLS extension.
type extension struct {
	typ  uint16
	data []byte
}

func marshalExtensions(w *builder, exts []extension) {
	var ew builder
	for _, e := range exts {
		ew.u16(e.typ)
		ew.vec16(e.data)
	}
	w.vec16(ew.bytes())
}

func parseExtensions(r *reader) ([]extension, error) {
	if r.empty() {
		return nil, nil // extensions block is optional
	}
	body, err := r.vec16()
	if err != nil {
		return nil, err
	}
	er := reader{b: body}
	var exts []extension
	for !er.empty() {
		typ, err := er.u16()
		if err != nil {
			return nil, err
		}
		data, err := er.vec16()
		if err != nil {
			return nil, err
		}
		exts = append(exts, extension{typ: typ, data: data})
	}
	return exts, nil
}

func findExtension(exts []extension, typ uint16) ([]byte, bool) {
	for _, e := range exts {
		if e.typ == typ {
			return e.data, true
		}
	}
	return nil, false
}

// handshakeMsg frames a handshake body: msg_type(1) || length(3) || body.
func handshakeMsg(typ uint8, body []byte) []byte {
	out := make([]byte, 0, 4+len(body))
	out = append(out, typ, byte(len(body)>>16), byte(len(body)>>8), byte(len(body)))
	return append(out, body...)
}

// clientHelloMsg is the ClientHello handshake message.
type clientHelloMsg struct {
	version           uint16
	random            [32]byte
	sessionID         []byte
	cipherSuites      []uint16
	serverName        string
	sessionTicket     []byte // nil: no ext; empty: empty ext (ticket requested)
	hasTicketExt      bool
	supportedVersions []uint16
	keyShareGroup     uint16
	keyShareData      []byte
	hasKeyShare       bool
	// TLS 1.3 PSK resumption (pre_shared_key must be the last extension,
	// RFC 8446 §4.2.11; the binder covers the ClientHello up to the
	// binders list).
	pskIdentity []byte
	pskBinder   []byte
	hasPSK      bool
}

func (m *clientHelloMsg) marshal() []byte {
	var w builder
	w.u16(m.version)
	w.raw(m.random[:])
	w.vec8(m.sessionID)
	var sw builder
	for _, s := range m.cipherSuites {
		sw.u16(s)
	}
	w.vec16(sw.bytes())
	w.vec8([]byte{0}) // compression methods: null only
	var exts []extension
	if m.serverName != "" {
		exts = append(exts, extension{extServerName, []byte(m.serverName)})
	}
	if m.hasTicketExt {
		exts = append(exts, extension{extSessionTicket, m.sessionTicket})
	}
	if len(m.supportedVersions) > 0 {
		var vw builder
		for _, v := range m.supportedVersions {
			vw.u16(v)
		}
		exts = append(exts, extension{extSupportedVersions, vw.bytes()})
	}
	if m.hasKeyShare {
		var kw builder
		kw.u16(m.keyShareGroup)
		kw.vec16(m.keyShareData)
		exts = append(exts, extension{extKeyShare, kw.bytes()})
	}
	if m.hasPSK {
		// identities: one entry {identity<2..>, obfuscated_ticket_age u32}
		// followed by binders: {binder<1..>}. Must be the final extension.
		var pw builder
		var iw builder
		iw.vec16(m.pskIdentity)
		iw.u32(0) // obfuscated_ticket_age: lifetimes are server-policed here
		pw.vec16(iw.bytes())
		var bw builder
		binder := m.pskBinder
		if len(binder) != binderLen {
			binder = make([]byte, binderLen) // placeholder before patching
		}
		bw.vec8(binder)
		pw.vec16(bw.bytes())
		exts = append(exts, extension{extPreSharedKey, pw.bytes()})
	}
	marshalExtensions(&w, exts)
	return handshakeMsg(typeClientHello, w.bytes())
}

func (m *clientHelloMsg) unmarshal(body []byte) error {
	r := reader{b: body}
	var err error
	if m.version, err = r.u16(); err != nil {
		return err
	}
	rnd, err := r.take(32)
	if err != nil {
		return err
	}
	copy(m.random[:], rnd)
	if m.sessionID, err = r.vec8(); err != nil {
		return err
	}
	if len(m.sessionID) > 32 {
		return errDecode
	}
	suites, err := r.vec16()
	if err != nil {
		return err
	}
	if len(suites)%2 != 0 || len(suites) == 0 {
		return errDecode
	}
	m.cipherSuites = m.cipherSuites[:0]
	for i := 0; i < len(suites); i += 2 {
		m.cipherSuites = append(m.cipherSuites, binary.BigEndian.Uint16(suites[i:]))
	}
	if _, err = r.vec8(); err != nil { // compression
		return err
	}
	exts, err := parseExtensions(&r)
	if err != nil {
		return err
	}
	if sn, ok := findExtension(exts, extServerName); ok {
		m.serverName = string(sn)
	}
	if tk, ok := findExtension(exts, extSessionTicket); ok {
		m.hasTicketExt = true
		m.sessionTicket = tk
	}
	if sv, ok := findExtension(exts, extSupportedVersions); ok {
		vr := reader{b: sv}
		for !vr.empty() {
			v, err := vr.u16()
			if err != nil {
				return err
			}
			m.supportedVersions = append(m.supportedVersions, v)
		}
	}
	if ks, ok := findExtension(exts, extKeyShare); ok {
		kr := reader{b: ks}
		if m.keyShareGroup, err = kr.u16(); err != nil {
			return err
		}
		if m.keyShareData, err = kr.vec16(); err != nil {
			return err
		}
		m.hasKeyShare = true
	}
	if psk, ok := findExtension(exts, extPreSharedKey); ok {
		pr := reader{b: psk}
		ids, err := pr.vec16()
		if err != nil {
			return err
		}
		ir := reader{b: ids}
		if m.pskIdentity, err = ir.vec16(); err != nil {
			return err
		}
		if _, err = ir.u32(); err != nil { // obfuscated age
			return err
		}
		binders, err := pr.vec16()
		if err != nil {
			return err
		}
		br := reader{b: binders}
		if m.pskBinder, err = br.vec8(); err != nil {
			return err
		}
		if len(m.pskBinder) != binderLen {
			return errDecode
		}
		m.hasPSK = true
	}
	return nil
}

// serverHelloMsg is the ServerHello handshake message.
type serverHelloMsg struct {
	version       uint16
	random        [32]byte
	sessionID     []byte
	cipherSuite   uint16
	ticketOffered bool   // 1.2: server will send NewSessionTicket
	keyShareGroup uint16 // 1.3
	keyShareData  []byte // 1.3
	hasKeyShare   bool
	pskSelected   bool // 1.3: pre_shared_key accepted (identity 0)
}

func (m *serverHelloMsg) marshal() []byte {
	var w builder
	w.u16(m.version)
	w.raw(m.random[:])
	w.vec8(m.sessionID)
	w.u16(m.cipherSuite)
	w.u8(0) // compression
	var exts []extension
	if m.ticketOffered {
		exts = append(exts, extension{extSessionTicket, nil})
	}
	if m.hasKeyShare {
		var kw builder
		kw.u16(m.keyShareGroup)
		kw.vec16(m.keyShareData)
		exts = append(exts, extension{extKeyShare, kw.bytes()})
	}
	if m.pskSelected {
		exts = append(exts, extension{extPreSharedKey, []byte{0, 0}})
	}
	marshalExtensions(&w, exts)
	return handshakeMsg(typeServerHello, w.bytes())
}

func (m *serverHelloMsg) unmarshal(body []byte) error {
	r := reader{b: body}
	var err error
	if m.version, err = r.u16(); err != nil {
		return err
	}
	rnd, err := r.take(32)
	if err != nil {
		return err
	}
	copy(m.random[:], rnd)
	if m.sessionID, err = r.vec8(); err != nil {
		return err
	}
	if m.cipherSuite, err = r.u16(); err != nil {
		return err
	}
	if _, err = r.u8(); err != nil {
		return err
	}
	exts, err := parseExtensions(&r)
	if err != nil {
		return err
	}
	if _, ok := findExtension(exts, extSessionTicket); ok {
		m.ticketOffered = true
	}
	if ks, ok := findExtension(exts, extKeyShare); ok {
		kr := reader{b: ks}
		if m.keyShareGroup, err = kr.u16(); err != nil {
			return err
		}
		if m.keyShareData, err = kr.vec16(); err != nil {
			return err
		}
		m.hasKeyShare = true
	}
	if _, ok := findExtension(exts, extPreSharedKey); ok {
		m.pskSelected = true
	}
	return nil
}

// certificateMsg carries the certificate chain (leaf first).
type certificateMsg struct {
	chain [][]byte
}

func (m *certificateMsg) marshal() []byte {
	var cw builder
	for _, c := range m.chain {
		cw.vec24(c)
	}
	var w builder
	w.vec24(cw.bytes())
	return handshakeMsg(typeCertificate, w.bytes())
}

func (m *certificateMsg) unmarshal(body []byte) error {
	r := reader{b: body}
	list, err := r.vec24()
	if err != nil {
		return err
	}
	lr := reader{b: list}
	m.chain = m.chain[:0]
	for !lr.empty() {
		c, err := lr.vec24()
		if err != nil {
			return err
		}
		m.chain = append(m.chain, c)
	}
	if len(m.chain) == 0 {
		return errDecode
	}
	return nil
}

// Signature algorithm identifiers used in serverKeyExchange /
// certificateVerify (subset of RFC 8446 SignatureScheme).
const (
	sigRSAPKCS1SHA256 uint16 = 0x0401
	sigECDSAP256      uint16 = 0x0403
	sigECDSAP384      uint16 = 0x0503
)

// serverKeyExchangeMsg carries the server's ephemeral ECDHE parameters
// and their signature (ECDHE suites, TLS 1.2).
type serverKeyExchangeMsg struct {
	curveID   uint16
	publicKey []byte
	sigAlg    uint16
	signature []byte
}

// paramsBytes returns the signed parameter block (curve_type || curve ||
// pubkey), the portion covered by the signature together with the randoms.
func (m *serverKeyExchangeMsg) paramsBytes() []byte {
	var w builder
	w.u8(3) // curve_type: named_curve
	w.u16(m.curveID)
	w.vec8(m.publicKey)
	return w.bytes()
}

func (m *serverKeyExchangeMsg) marshal() []byte {
	var w builder
	w.raw(m.paramsBytes())
	w.u16(m.sigAlg)
	w.vec16(m.signature)
	return handshakeMsg(typeServerKeyExchange, w.bytes())
}

func (m *serverKeyExchangeMsg) unmarshal(body []byte) error {
	r := reader{b: body}
	ct, err := r.u8()
	if err != nil || ct != 3 {
		return errDecode
	}
	if m.curveID, err = r.u16(); err != nil {
		return err
	}
	if m.publicKey, err = r.vec8(); err != nil {
		return err
	}
	if m.sigAlg, err = r.u16(); err != nil {
		return err
	}
	if m.signature, err = r.vec16(); err != nil {
		return err
	}
	return nil
}

// clientKeyExchangeMsg carries the RSA-encrypted premaster secret or the
// client's ephemeral ECDHE public key.
type clientKeyExchangeMsg struct {
	// exchange is the encrypted premaster (RSA kx, 16-bit length prefix)
	// or the EC point (ECDHE kx, 8-bit length prefix).
	rsaCiphertext []byte
	ecdhPublic    []byte
	isRSA         bool
}

func (m *clientKeyExchangeMsg) marshal() []byte {
	var w builder
	if m.isRSA {
		w.vec16(m.rsaCiphertext)
	} else {
		w.vec8(m.ecdhPublic)
	}
	return handshakeMsg(typeClientKeyExchange, w.bytes())
}

func (m *clientKeyExchangeMsg) unmarshal(body []byte, isRSA bool) error {
	r := reader{b: body}
	m.isRSA = isRSA
	var err error
	if isRSA {
		m.rsaCiphertext, err = r.vec16()
	} else {
		m.ecdhPublic, err = r.vec8()
	}
	if err != nil {
		return err
	}
	if !r.empty() {
		return errDecode
	}
	return nil
}

// finishedMsg carries the verify_data.
type finishedMsg struct {
	verifyData []byte
}

func (m *finishedMsg) marshal() []byte {
	return handshakeMsg(typeFinished, m.verifyData)
}

func (m *finishedMsg) unmarshal(body []byte) error {
	if len(body) == 0 {
		return errDecode
	}
	m.verifyData = body
	return nil
}

// newSessionTicketMsg (unified 1.2/1.3 layout): lifetime(4) ||
// ticket<2..>.
type newSessionTicketMsg struct {
	lifetimeSeconds uint32
	ticket          []byte
}

func (m *newSessionTicketMsg) marshal() []byte {
	var w builder
	w.u32(m.lifetimeSeconds)
	w.vec16(m.ticket)
	return handshakeMsg(typeNewSessionTicket, w.bytes())
}

func (m *newSessionTicketMsg) unmarshal(body []byte) error {
	r := reader{b: body}
	var err error
	if m.lifetimeSeconds, err = r.u32(); err != nil {
		return err
	}
	if m.ticket, err = r.vec16(); err != nil {
		return err
	}
	return nil
}

// certificateVerifyMsg (TLS 1.3).
type certificateVerifyMsg struct {
	sigAlg    uint16
	signature []byte
}

func (m *certificateVerifyMsg) marshal() []byte {
	var w builder
	w.u16(m.sigAlg)
	w.vec16(m.signature)
	return handshakeMsg(typeCertificateVerify, w.bytes())
}

func (m *certificateVerifyMsg) unmarshal(body []byte) error {
	r := reader{b: body}
	var err error
	if m.sigAlg, err = r.u16(); err != nil {
		return err
	}
	if m.signature, err = r.vec16(); err != nil {
		return err
	}
	return nil
}

// encryptedExtensionsMsg (TLS 1.3); extensions are unused here but the
// message is part of the flight and the transcript.
type encryptedExtensionsMsg struct{}

func (m *encryptedExtensionsMsg) marshal() []byte {
	var w builder
	marshalExtensions(&w, nil)
	return handshakeMsg(typeEncryptedExtensions, w.bytes())
}

func (m *encryptedExtensionsMsg) unmarshal(body []byte) error {
	r := reader{b: body}
	_, err := parseExtensions(&r)
	return err
}

// serverHelloDone is empty; helpers for symmetry.
func marshalServerHelloDone() []byte { return handshakeMsg(typeServerHelloDone, nil) }

func msgTypeName(t uint8) string {
	switch t {
	case typeClientHello:
		return "ClientHello"
	case typeServerHello:
		return "ServerHello"
	case typeNewSessionTicket:
		return "NewSessionTicket"
	case typeEncryptedExtensions:
		return "EncryptedExtensions"
	case typeCertificate:
		return "Certificate"
	case typeServerKeyExchange:
		return "ServerKeyExchange"
	case typeServerHelloDone:
		return "ServerHelloDone"
	case typeCertificateVerify:
		return "CertificateVerify"
	case typeClientKeyExchange:
		return "ClientKeyExchange"
	case typeFinished:
		return "Finished"
	default:
		return fmt.Sprintf("handshake(%d)", t)
	}
}
