package minitls

import (
	"bytes"
	"math/rand"
	"testing"
)

// garbageTransport feeds a fixed byte stream and swallows writes.
type garbageTransport struct{ in *bytes.Reader }

func (g *garbageTransport) Read(p []byte) (int, error)  { return g.in.Read(p) }
func (g *garbageTransport) Write(p []byte) (int, error) { return len(p), nil }

// The server must reject arbitrary garbage — truncated records, wild
// lengths, random extension bytes — with an error, never a panic or an
// accepted handshake.
func TestServerRejectsGarbageWithoutPanic(t *testing.T) {
	rsaID, _ := testIdentities(t)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		n := rng.Intn(512)
		buf := make([]byte, n)
		rng.Read(buf)
		// Half the time, make it look like a plausible handshake record
		// so parsing gets past the framing.
		if i%2 == 0 && n >= 9 {
			buf[0] = recordHandshake
			buf[1], buf[2] = 3, 3
			body := n - 5
			buf[3], buf[4] = byte(body>>8), byte(body)
			buf[5] = typeClientHello
			hs := body - 4
			buf[6], buf[7], buf[8] = byte(hs>>16), byte(hs>>8), byte(hs)
		}
		server := Server(&garbageTransport{in: bytes.NewReader(buf)}, &Config{Identity: rsaID})
		if err := server.Handshake(); err == nil {
			t.Fatalf("iteration %d: garbage accepted", i)
		}
	}
}

// Truncating a valid ClientHello at every byte boundary must produce an
// error (mostly unexpected-EOF), never a hang or panic.
func TestServerRejectsTruncatedClientHello(t *testing.T) {
	rsaID, _ := testIdentities(t)
	ch := clientHelloMsg{
		version:      VersionTLS12,
		cipherSuites: []uint16{TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA},
	}
	msg := ch.marshal()
	rec := append([]byte{recordHandshake, 3, 3, byte(len(msg) >> 8), byte(len(msg))}, msg...)
	for cut := 0; cut < len(rec); cut++ {
		server := Server(&garbageTransport{in: bytes.NewReader(rec[:cut])}, &Config{Identity: rsaID})
		if err := server.Handshake(); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// Bit-flipping a valid ClientHello must never panic the server (it may
// legitimately still parse — flipped random bytes are harmless — but
// flips in framing/length fields must error out, not hang or crash).
func TestServerSurvivesBitFlips(t *testing.T) {
	rsaID, _ := testIdentities(t)
	ch := clientHelloMsg{
		version:           VersionTLS12,
		cipherSuites:      []uint16{TLS_RSA_WITH_AES_128_CBC_SHA},
		supportedVersions: []uint16{VersionTLS13},
		hasTicketExt:      true,
		sessionTicket:     bytes.Repeat([]byte{1}, 40),
	}
	msg := ch.marshal()
	rec := append([]byte{recordHandshake, 3, 3, byte(len(msg) >> 8), byte(len(msg))}, msg...)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 400; i++ {
		mut := append([]byte(nil), rec...)
		for flips := 0; flips < 1+rng.Intn(4); flips++ {
			mut[rng.Intn(len(mut))] ^= 1 << uint(rng.Intn(8))
		}
		// Cap the declared record length to the bytes we actually have,
		// so the server fails parsing instead of waiting for more input
		// (a short read on a blocking transport is not a protocol flaw).
		declared := int(mut[3])<<8 | int(mut[4])
		if declared > len(mut)-5 {
			mut[3], mut[4] = byte((len(mut)-5)>>8), byte(len(mut)-5)
		}
		server := Server(&garbageTransport{in: bytes.NewReader(mut)}, &Config{Identity: rsaID})
		// Whatever happens must terminate; handshake cannot complete
		// because the client never answers the server flight.
		if err := server.Handshake(); err == nil {
			t.Fatalf("iteration %d: handshake completed on one flight", i)
		}
	}
}
