package minitls

import (
	"bytes"
	"crypto/rand"
	"io"
	"net"
	"testing"
)

// recordCountingRW counts the TLS records a Conn emits: writeWire issues
// exactly one transport Write per record, so counting Write calls after
// the handshake counts records.
type recordCountingRW struct {
	io.ReadWriter
	records int
	bytes   int
}

func (r *recordCountingRW) Write(p []byte) (int, error) {
	r.records++
	r.bytes += len(p)
	return r.ReadWriter.Write(p)
}

// TestWriteFragmentationBoundaries pins the MaxPlaintext fragmentation
// contract: a payload of exactly MaxPlaintext is one record, one byte
// more is two, and an empty write emits no record at all.
func TestWriteFragmentationBoundaries(t *testing.T) {
	rsaID, _ := testIdentities(t)
	cases := []struct {
		name    string
		size    int
		records int
	}{
		{"empty", 0, 0},
		{"one-byte", 1, 1},
		{"exactly-max", MaxPlaintext, 1},
		{"max-plus-one", MaxPlaintext + 1, 2},
		{"two-records-exact", 2 * MaxPlaintext, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cliT, srvT := net.Pipe()
			t.Cleanup(func() { cliT.Close(); srvT.Close() })
			counting := &recordCountingRW{ReadWriter: srvT}
			server := Server(counting, &Config{
				Identity:     rsaID,
				CipherSuites: []uint16{TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA},
			})
			client := ClientConn(cliT, &Config{})
			cliErr := make(chan error, 1)
			go func() { cliErr <- client.Handshake() }()
			if err := server.Handshake(); err != nil {
				t.Fatalf("server handshake: %v", err)
			}
			if err := <-cliErr; err != nil {
				t.Fatalf("client handshake: %v", err)
			}

			counting.records = 0
			payload := bytes.Repeat([]byte{'r'}, tc.size)
			done := make(chan error, 1)
			got := make([]byte, tc.size)
			go func() {
				if tc.size == 0 {
					done <- nil
					return
				}
				_, err := io.ReadFull(&connReader{client}, got)
				done <- err
			}()
			n, err := server.Write(payload)
			if err != nil {
				t.Fatalf("write: %v", err)
			}
			if n != tc.size {
				t.Fatalf("write returned %d, want %d", n, tc.size)
			}
			if err := <-done; err != nil {
				t.Fatalf("client read: %v", err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatal("payload mismatch after fragmentation")
			}
			if counting.records != tc.records {
				t.Errorf("wrote %d records for %d bytes, want %d",
					counting.records, tc.size, tc.records)
			}
		})
	}
}

// TestCodecBoundaryRecords exercises the exported RecordCodec at the
// fragment boundaries, including the empty application-data record the
// Conn write path never produces on its own.
func TestCodecBoundaryRecords(t *testing.T) {
	codecs := map[string]KeyMaterial{
		"cbc": {Key: bytes.Repeat([]byte{1}, 16), MACKey: bytes.Repeat([]byte{2}, 20)},
		"gcm": {Key: bytes.Repeat([]byte{3}, 16), IV: bytes.Repeat([]byte{4}, 12)},
	}
	for name, km := range codecs {
		t.Run(name, func(t *testing.T) {
			cd, err := NewRecordCodec(km)
			if err != nil {
				t.Fatal(err)
			}
			for _, size := range []int{0, 1, MaxPlaintext} {
				payload := bytes.Repeat([]byte{'x'}, size)
				wireTyp, body, err := cd.Seal(7, RecordTypeApplicationData, payload, rand.Reader)
				if err != nil {
					t.Fatalf("seal %d bytes: %v", size, err)
				}
				if len(body) > size+cd.Overhead() {
					t.Errorf("sealed body %d exceeds payload %d + overhead %d",
						len(body), size, cd.Overhead())
				}
				if len(body) > MaxCiphertext {
					t.Errorf("sealed body %d exceeds MaxCiphertext", len(body))
				}
				typ, plain, err := cd.Open(7, wireTyp, body)
				if err != nil {
					t.Fatalf("open %d bytes: %v", size, err)
				}
				if typ != RecordTypeApplicationData || !bytes.Equal(plain, payload) {
					t.Errorf("roundtrip mismatch at %d bytes", size)
				}
				// Wrong sequence number must not authenticate.
				if _, _, err := cd.Open(8, wireTyp, body); err == nil {
					t.Errorf("open under wrong seq succeeded at %d bytes", size)
				}
			}
		})
	}
}

// TestExportKeysAndDetach validates the kTLS-style hand-off: export the
// server's write keys, detach the writer, seal records externally with
// continuing sequence numbers, and confirm a plain software client reads
// the stream and sees the external close-notify as an orderly EOF.
func TestExportKeysAndDetach(t *testing.T) {
	rsaID, _ := testIdentities(t)
	suites := map[string]*Config{
		"tls12-cbc": {Identity: rsaID, CipherSuites: []uint16{TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA}},
		"tls13-gcm": {Identity: rsaID, MaxVersion: VersionTLS13},
	}
	for name, srvCfg := range suites {
		t.Run(name, func(t *testing.T) {
			server, client, _ := handshakePair(t, srvCfg, &Config{MaxVersion: srvCfg.MaxVersion})

			if _, err := server.ExportWriteKeys(); err != nil {
				t.Fatalf("export write keys: %v", err)
			}
			km, err := server.ExportWriteKeys()
			if err != nil {
				t.Fatal(err)
			}
			cd, err := NewRecordCodec(km)
			if err != nil {
				t.Fatal(err)
			}
			if err := server.DetachWriter(); err != nil {
				t.Fatal(err)
			}
			if !server.WriterDetached() {
				t.Fatal("WriterDetached() = false after DetachWriter")
			}
			if _, err := server.Write([]byte("x")); err == nil {
				t.Fatal("Write succeeded on a detached writer")
			}

			// Seal two records externally, continuing from the exported seq.
			msgs := [][]byte{[]byte("first external record"), []byte("second external record")}
			readDone := make(chan error, 1)
			var got []byte
			go func() {
				buf := make([]byte, len(msgs[0])+len(msgs[1]))
				_, err := io.ReadFull(&connReader{client}, buf)
				got = buf
				readDone <- err
			}()
			seq := km.Seq
			transport := server.transport
			for _, msg := range msgs {
				wireTyp, body, err := cd.Seal(seq, RecordTypeApplicationData, msg, rand.Reader)
				if err != nil {
					t.Fatal(err)
				}
				seq++
				rec := AppendRecordHeader(nil, wireTyp, len(body))
				rec = append(rec, body...)
				if _, err := transport.Write(rec); err != nil {
					t.Fatal(err)
				}
			}
			if err := <-readDone; err != nil {
				t.Fatalf("client read: %v", err)
			}
			if !bytes.Equal(got, append(append([]byte(nil), msgs[0]...), msgs[1]...)) {
				t.Fatal("externally sealed records did not decrypt to the original payloads")
			}

			// Close-notify through the external stream: the client must see
			// an orderly EOF, and Conn.Close must not double-send the alert.
			go func() {
				var b [1]byte
				_, err := client.Read(b[:])
				readDone <- err
			}()
			wireTyp, body, err := cd.Seal(seq, RecordTypeAlert, AlertCloseNotify(), rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			rec := AppendRecordHeader(nil, wireTyp, len(body))
			rec = append(rec, body...)
			if _, err := transport.Write(rec); err != nil {
				t.Fatal(err)
			}
			if err := <-readDone; err != io.EOF {
				t.Fatalf("client read after external close-notify = %v, want io.EOF", err)
			}
			if !client.CloseNotifyReceived() {
				t.Fatal("client did not register the close-notify")
			}
			if err := server.Close(); err != nil {
				t.Fatalf("Close on detached conn: %v", err)
			}
		})
	}
}
