package minitls

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestSessionCachePutGet(t *testing.T) {
	sc := NewSessionCache(8)
	st := SessionState{Version: VersionTLS12, CipherSuite: TLS_RSA_WITH_AES_128_CBC_SHA, MasterSecret: bytes.Repeat([]byte{1}, 48)}
	sc.Put([]byte("id-1"), st)
	got, ok := sc.Get([]byte("id-1"))
	if !ok || got.CipherSuite != st.CipherSuite || !bytes.Equal(got.MasterSecret, st.MasterSecret) {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if _, ok := sc.Get([]byte("missing")); ok {
		t.Fatal("missing id found")
	}
	hits, misses := sc.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
}

func TestSessionCacheLRUEviction(t *testing.T) {
	sc := NewSessionCache(3)
	for i := 0; i < 3; i++ {
		sc.Put([]byte{byte(i)}, SessionState{Version: VersionTLS12})
	}
	// Touch 0 so it becomes most recent; inserting 3 must evict 1.
	sc.Get([]byte{0})
	sc.Put([]byte{3}, SessionState{Version: VersionTLS12})
	if sc.Len() != 3 {
		t.Fatalf("len = %d", sc.Len())
	}
	if _, ok := sc.Get([]byte{1}); ok {
		t.Fatal("LRU entry not evicted")
	}
	for _, id := range []byte{0, 2, 3} {
		if _, ok := sc.Get([]byte{id}); !ok {
			t.Fatalf("entry %d evicted wrongly", id)
		}
	}
}

func TestSessionCacheUpdateExisting(t *testing.T) {
	sc := NewSessionCache(2)
	sc.Put([]byte("a"), SessionState{CipherSuite: 1})
	sc.Put([]byte("a"), SessionState{CipherSuite: 2})
	if sc.Len() != 1 {
		t.Fatalf("len = %d", sc.Len())
	}
	got, _ := sc.Get([]byte("a"))
	if got.CipherSuite != 2 {
		t.Fatalf("suite = %d", got.CipherSuite)
	}
}

func TestSessionCacheDefaultSize(t *testing.T) {
	sc := NewSessionCache(0)
	for i := 0; i < 2000; i++ {
		sc.Put([]byte(fmt.Sprintf("id-%d", i)), SessionState{})
	}
	if sc.Len() != 1024 {
		t.Fatalf("len = %d, want default bound 1024", sc.Len())
	}
}

func TestSessionCacheConcurrent(t *testing.T) {
	sc := NewSessionCache(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := []byte{byte(w), byte(i)}
				sc.Put(id, SessionState{CipherSuite: uint16(i)})
				sc.Get(id)
			}
		}(w)
	}
	wg.Wait()
	if sc.Len() > 64 {
		t.Fatalf("len = %d exceeds bound", sc.Len())
	}
}

func TestSessionStateRoundTrip(t *testing.T) {
	in := SessionState{Version: VersionTLS12, CipherSuite: TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA, MasterSecret: bytes.Repeat([]byte{7}, 48)}
	var out SessionState
	if err := out.unmarshal(in.marshal()); err != nil {
		t.Fatal(err)
	}
	if out.Version != in.Version || out.CipherSuite != in.CipherSuite || !bytes.Equal(out.MasterSecret, in.MasterSecret) {
		t.Fatal("roundtrip mismatch")
	}
	if err := out.unmarshal(append(in.marshal(), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestTicketSealOpen(t *testing.T) {
	var key [32]byte
	copy(key[:], bytes.Repeat([]byte{9}, 32))
	st := SessionState{Version: VersionTLS12, CipherSuite: TLS_RSA_WITH_AES_128_CBC_SHA, MasterSecret: bytes.Repeat([]byte{3}, 48)}
	ticket, err := sealTicket(&key, st)
	if err != nil {
		t.Fatal(err)
	}
	got, err := openTicket(&key, ticket)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.MasterSecret, st.MasterSecret) {
		t.Fatal("ticket state mismatch")
	}
}

func TestTicketTamperAndWrongKey(t *testing.T) {
	var key, other [32]byte
	key[0] = 1
	other[0] = 2
	st := SessionState{Version: VersionTLS12, MasterSecret: make([]byte, 48)}
	ticket, _ := sealTicket(&key, st)

	mut := append([]byte(nil), ticket...)
	mut[len(mut)-1] ^= 1
	if _, err := openTicket(&key, mut); err == nil {
		t.Fatal("tampered ticket accepted")
	}
	if _, err := openTicket(&other, ticket); err == nil {
		t.Fatal("ticket opened with wrong key")
	}
	if _, err := openTicket(&key, ticket[:4]); err == nil {
		t.Fatal("truncated ticket accepted")
	}
}

// Property: tickets round-trip arbitrary session state.
func TestTicketRoundTripProperty(t *testing.T) {
	var key [32]byte
	key[5] = 0xaa
	f := func(ver, suite uint16, master []byte) bool {
		if len(master) > 256 {
			master = master[:256]
		}
		st := SessionState{Version: ver, CipherSuite: suite, MasterSecret: master}
		ticket, err := sealTicket(&key, st)
		if err != nil {
			return false
		}
		got, err := openTicket(&key, ticket)
		if err != nil {
			return false
		}
		return got.Version == ver && got.CipherSuite == suite && bytes.Equal(got.MasterSecret, master)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
