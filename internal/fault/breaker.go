package fault

import (
	"fmt"
	"sync"
	"time"
)

// BreakerState is the circuit-breaker state of one crypto instance.
type BreakerState int

const (
	// StateClosed: the instance is healthy; submissions flow normally.
	StateClosed BreakerState = iota
	// StateOpen: the instance tripped; submissions are routed away until
	// the cooldown elapses.
	StateOpen
	// StateHalfOpen: the cooldown elapsed; a limited number of probe
	// submissions test whether the instance recovered.
	StateHalfOpen
)

// String returns the conventional breaker-state name.
func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// BreakerConfig tunes a Breaker. The zero value selects the defaults.
type BreakerConfig struct {
	// Window is the rolling outcome window size (default 16).
	Window int
	// FailureThreshold trips the breaker when the window's failure rate
	// reaches it with at least MinSamples outcomes (default 0.5).
	FailureThreshold float64
	// MinSamples is the minimum window fill before the rate is
	// meaningful (default 4).
	MinSamples int
	// Cooldown is how long an open breaker waits before admitting
	// half-open probes (default 100 ms).
	Cooldown time.Duration
	// ProbeCount is how many consecutive half-open successes close the
	// breaker again (default 2).
	ProbeCount int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 4
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 100 * time.Millisecond
	}
	if c.ProbeCount <= 0 {
		c.ProbeCount = 2
	}
	return c
}

// Breaker is a per-instance health tracker: a rolling window of submit
// outcomes drives the classic closed → open → half-open circuit. It is
// safe for concurrent use.
type Breaker struct {
	mu  sync.Mutex
	cfg BreakerConfig

	state        BreakerState
	window       []bool // true = failure; ring buffer
	widx         int
	filled       int
	openedAt     time.Time
	probes       int // successful half-open probes so far
	inProbe      int // half-open probes currently admitted but unresolved
	trips        int64
	successes    int64
	failures     int64
	onTransition func(from, to BreakerState)
}

// SetOnTransition installs a hook invoked on every state transition
// (closed→open, open→half-open, half-open→closed, half-open→open). The
// hook runs outside the breaker's lock, on the goroutine that caused
// the transition; it may call back into the breaker. Pass nil to
// detach. One hook; the latest call wins.
func (b *Breaker) SetOnTransition(fn func(from, to BreakerState)) {
	b.mu.Lock()
	b.onTransition = fn
	b.mu.Unlock()
}

// notify fires the transition hook after the lock is released.
func (b *Breaker) notify(hook func(from, to BreakerState), from, to BreakerState) {
	if hook != nil && from != to {
		hook(from, to)
	}
}

// NewBreaker builds a breaker (closed) with the given configuration.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, window: make([]bool, cfg.Window)}
}

// Allow reports whether a submission may be routed to this instance now.
// In the half-open state it admits up to ProbeCount unresolved probes.
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	from, hook := b.state, b.onTransition
	var ok bool
	switch b.state {
	case StateClosed:
		ok = true
	case StateOpen:
		if now.Sub(b.openedAt) >= b.cfg.Cooldown {
			b.state = StateHalfOpen
			b.probes = 0
			b.inProbe = 1
			ok = true
		}
	default: // StateHalfOpen
		if b.inProbe < b.cfg.ProbeCount {
			b.inProbe++
			ok = true
		}
	}
	to := b.state
	b.mu.Unlock()
	b.notify(hook, from, to)
	return ok
}

// RecordSuccess feeds one successful outcome.
func (b *Breaker) RecordSuccess(now time.Time) {
	b.mu.Lock()
	from, hook := b.state, b.onTransition
	b.successes++
	switch b.state {
	case StateHalfOpen:
		b.probes++
		if b.inProbe > 0 {
			b.inProbe--
		}
		if b.probes >= b.cfg.ProbeCount {
			// Recovered: close and forget the bad window.
			b.state = StateClosed
			b.resetWindow()
		}
	case StateClosed:
		b.push(false)
	}
	to := b.state
	b.mu.Unlock()
	b.notify(hook, from, to)
}

// RecordFailure feeds one failed outcome (timeout, reset, corruption).
// It returns true when this failure tripped the breaker open.
func (b *Breaker) RecordFailure(now time.Time) bool {
	b.mu.Lock()
	from, hook := b.state, b.onTransition
	tripped := false
	b.failures++
	switch b.state {
	case StateHalfOpen:
		// A failed probe reopens immediately.
		b.state = StateOpen
		b.openedAt = now
		b.trips++
		b.inProbe = 0
		tripped = true
	case StateOpen:
	default: // StateClosed
		b.push(true)
		if b.filled >= b.cfg.MinSamples && b.failureRate() >= b.cfg.FailureThreshold {
			b.state = StateOpen
			b.openedAt = now
			b.trips++
			tripped = true
		}
	}
	to := b.state
	b.mu.Unlock()
	b.notify(hook, from, to)
	return tripped
}

func (b *Breaker) push(failure bool) {
	b.window[b.widx] = failure
	b.widx = (b.widx + 1) % len(b.window)
	if b.filled < len(b.window) {
		b.filled++
	}
}

func (b *Breaker) resetWindow() {
	for i := range b.window {
		b.window[i] = false
	}
	b.widx, b.filled, b.probes, b.inProbe = 0, 0, 0, 0
}

func (b *Breaker) failureRate() float64 {
	if b.filled == 0 {
		return 0
	}
	n := 0
	for i := 0; i < b.filled; i++ {
		if b.window[i] {
			n++
		}
	}
	return float64(n) / float64(b.filled)
}

// State returns the current breaker state (open breakers past their
// cooldown still report open until the next Allow probes them).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerSnapshot is a point-in-time health summary of one instance.
type BreakerSnapshot struct {
	State     BreakerState
	Successes int64
	Failures  int64
	Trips     int64
}

// Snapshot returns cumulative health counters and the current state.
func (b *Breaker) Snapshot() BreakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerSnapshot{
		State:     b.state,
		Successes: b.successes,
		Failures:  b.failures,
		Trips:     b.trips,
	}
}

// String renders the snapshot for stub_status / qatinfo output.
func (s BreakerSnapshot) String() string {
	return fmt.Sprintf("%s ok=%d fail=%d trips=%d", s.State, s.Successes, s.Failures, s.Trips)
}
