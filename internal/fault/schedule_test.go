package fault

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestParseSchedule pins the chaos grammar: statement separators (';' and
// newlines), comments, the bare-duration window, and every option key.
func TestParseSchedule(t *testing.T) {
	src := `
	t=0s dev1 stall 10s              # wedge device 1
	t=5s dev0 drop 2s p=0.5 op=rsa; t=5s dev0 latency 1s d=3ms
	t=30s dev1 RESET-STORM n=4 gap=25ms
	t=40s dev2 ringfull 500ms p=0.25
	`
	s, err := ParseSchedule(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{At: 0, Dev: 1, Action: ActStall, Dur: 10 * time.Second, P: 1, Op: AnyOp, Count: 3, Gap: 50 * time.Millisecond},
		{At: 5 * time.Second, Dev: 0, Action: ActDrop, Dur: 2 * time.Second, P: 0.5, Op: 0, Count: 3, Gap: 50 * time.Millisecond},
		{At: 5 * time.Second, Dev: 0, Action: ActLatency, Dur: time.Second, Latency: 3 * time.Millisecond, P: 1, Op: AnyOp, Count: 3, Gap: 50 * time.Millisecond},
		{At: 30 * time.Second, Dev: 1, Action: ActResetStorm, P: 1, Op: AnyOp, Count: 4, Gap: 25 * time.Millisecond},
		{At: 40 * time.Second, Dev: 2, Action: ActRingFull, Dur: 500 * time.Millisecond, P: 0.25, Op: AnyOp, Count: 3, Gap: 50 * time.Millisecond},
	}
	if len(s.Events) != len(want) {
		t.Fatalf("parsed %d events, want %d: %v", len(s.Events), len(want), s)
	}
	for i, w := range want {
		if s.Events[i] != w {
			t.Fatalf("event %d = %+v, want %+v", i, s.Events[i], w)
		}
	}

	// Rule mapping: window events become injector rules, storms do not.
	r, ok := s.Events[2].Rule()
	if !ok || r.Kind != Latency || r.Latency != 3*time.Millisecond || r.Endpoint != AnyEndpoint {
		t.Fatalf("latency event rule = %+v ok=%v", r, ok)
	}
	if _, ok := s.Events[3].Rule(); ok {
		t.Fatal("reset-storm must not map to an injector rule")
	}

	// String renders back in grammar form and re-parses to the same events.
	s2, err := ParseSchedule(s.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", s.String(), err)
	}
	for i := range want {
		if s2.Events[i] != want[i] {
			t.Fatalf("round-trip event %d = %+v, want %+v", i, s2.Events[i], want[i])
		}
	}
}

// TestParseScheduleEmpty: empty and comment-only scripts parse to the nil
// schedule, which Duration/String/Run/Apply all accept as a no-op.
func TestParseScheduleEmpty(t *testing.T) {
	for _, src := range []string{"", "  \n\t", "# nothing ; here\n# either"} {
		s, err := ParseSchedule(src)
		if err != nil || s != nil {
			t.Fatalf("ParseSchedule(%q) = %v, %v; want nil, nil", src, s, err)
		}
	}
	var s *Schedule
	if s.Duration() != 0 || s.String() != "" {
		t.Fatal("nil schedule must be quiet")
	}
	if err := s.Apply(context.Background(), nil, nil); err != nil {
		t.Fatalf("nil schedule Apply: %v", err)
	}
}

// TestParseScheduleErrors pins rejection of malformed scripts with a
// message naming the problem.
func TestParseScheduleErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"dev1 stall 1s", "first token must be t="},
		{"t=1s stall", "want 't=<offset>"},
		{"t=nope dev1 stall 1s", "bad offset"},
		{"t=1s d1 stall 1s", "second token must be dev<N>"},
		{"t=1s dev-1 stall 1s", "bad device"},
		{"t=1s devx stall 1s", "bad device"},
		{"t=1s dev1 explode 1s", "unknown action"},
		{"t=1s dev1 stall", "needs a window duration"},
		{"t=1s dev1 stall 1s p=2", "probability"},
		{"t=1s dev1 stall 1s op=quantum", "unknown op"},
		{"t=1s dev1 stall 1s foo=bar", "unknown option"},
		{"t=1s dev1 latency 1s", "needs d=<delay>"},
		{"t=1s dev1 reset-storm 5s", "n=/gap= options"},
		{"t=1s dev1 reset-storm n=0", "n>=1"},
		{"t=5s dev1 stall 1s; t=1s dev0 stall 1s", "time order"},
	}
	for _, c := range cases {
		_, err := ParseSchedule(c.src)
		if err == nil {
			t.Fatalf("ParseSchedule(%q) accepted", c.src)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("ParseSchedule(%q) error %q, want substring %q", c.src, err, c.want)
		}
	}
}

// TestScheduleDuration: the quiet point is the latest window close,
// counting a storm's full burst as its window.
func TestScheduleDuration(t *testing.T) {
	s, err := ParseSchedule("t=1s dev0 stall 10s; t=5s dev1 reset-storm n=4 gap=1s; t=8s dev0 drop 2s")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Duration(), 11*time.Second; got != want {
		t.Fatalf("Duration = %v, want %v", got, want)
	}
}

// TestScheduleApply replays a fast schedule against a real injector: the
// stall rule is installed for exactly its window, the storm fires its
// reset burst through the callback, and Apply blocks until both finish.
func TestScheduleApply(t *testing.T) {
	s, err := ParseSchedule("t=0s dev0 stall 60ms op=rsa; t=0s dev1 reset-storm n=3 gap=5ms")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(1)
	var mu sync.Mutex
	resets := map[int]int{}

	windowSeen := make(chan struct{})
	go func() {
		defer close(windowSeen)
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if len(inj.Rules()) == 1 && inj.AtService(0, 0).Stall {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	start := time.Now()
	err = s.Apply(context.Background(),
		func(dev int) *Injector {
			if dev == 0 {
				return inj
			}
			return nil
		},
		func(dev int) {
			mu.Lock()
			resets[dev]++
			mu.Unlock()
		})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("Apply returned after %v, before the stall window closed", elapsed)
	}
	<-windowSeen
	if len(inj.Rules()) != 0 {
		t.Fatalf("stall rule still installed after its window: %v", inj.Rules())
	}
	if inj.AtService(0, 0).Stall {
		t.Fatal("injector still stalling after the window closed")
	}
	mu.Lock()
	defer mu.Unlock()
	if resets[1] != 3 || len(resets) != 1 {
		t.Fatalf("reset bursts %v, want dev1 reset 3 times", resets)
	}
}

// TestScheduleRunCancel: a cancelled context aborts the replay before
// far-future events fire.
func TestScheduleRunCancel(t *testing.T) {
	s, err := ParseSchedule("t=1h dev0 stall 1s")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if err := s.Run(ctx, func(Event) { t.Error("far-future event fired") }); err != context.Canceled {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Run did not abort promptly")
	}
}
