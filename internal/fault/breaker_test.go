package fault

import (
	"testing"
	"time"
)

func testBreaker() *Breaker {
	return NewBreaker(BreakerConfig{
		Window:           8,
		FailureThreshold: 0.5,
		MinSamples:       4,
		Cooldown:         50 * time.Millisecond,
		ProbeCount:       2,
	})
}

func TestBreakerStartsClosed(t *testing.T) {
	b := testBreaker()
	now := time.Now()
	if b.State() != StateClosed || !b.Allow(now) {
		t.Fatal("new breaker should be closed and allowing")
	}
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	b := testBreaker()
	now := time.Now()
	// Below MinSamples: no trip even at 100% failure.
	for i := 0; i < 3; i++ {
		if b.RecordFailure(now) {
			t.Fatalf("tripped at sample %d, below MinSamples", i+1)
		}
	}
	if !b.RecordFailure(now) {
		t.Fatal("did not trip at MinSamples with 100% failures")
	}
	if b.State() != StateOpen || b.Allow(now) {
		t.Fatal("open breaker should reject submissions")
	}
	if b.Snapshot().Trips != 1 {
		t.Fatalf("trips = %d", b.Snapshot().Trips)
	}
}

func TestBreakerSuccessesKeepItClosed(t *testing.T) {
	b := testBreaker()
	now := time.Now()
	// 3 failures diluted by 5 successes in a window of 8: rate 3/8 < 0.5.
	for i := 0; i < 5; i++ {
		b.RecordSuccess(now)
	}
	for i := 0; i < 3; i++ {
		if b.RecordFailure(now) {
			t.Fatal("tripped below threshold")
		}
	}
	if b.State() != StateClosed {
		t.Fatalf("state = %v", b.State())
	}
}

func tripped(b *Breaker, now time.Time) {
	for i := 0; i < 8; i++ {
		b.RecordFailure(now)
	}
}

func TestBreakerHalfOpenProbesAndRecovery(t *testing.T) {
	b := testBreaker()
	now := time.Now()
	tripped(b, now)
	if b.Allow(now) {
		t.Fatal("open breaker allowed before cooldown")
	}
	later := now.Add(60 * time.Millisecond)
	// First Allow after cooldown transitions to half-open and admits a probe.
	if !b.Allow(later) {
		t.Fatal("cooldown elapsed but probe rejected")
	}
	if b.State() != StateHalfOpen {
		t.Fatalf("state = %v", b.State())
	}
	// Second probe admitted, third rejected (ProbeCount = 2 unresolved).
	if !b.Allow(later) {
		t.Fatal("second probe rejected")
	}
	if b.Allow(later) {
		t.Fatal("probe cap ignored")
	}
	// Two probe successes close the breaker.
	b.RecordSuccess(later)
	if b.State() != StateHalfOpen {
		t.Fatal("closed after a single probe success")
	}
	b.RecordSuccess(later)
	if b.State() != StateClosed {
		t.Fatalf("state after recovery = %v", b.State())
	}
	// The old bad window must not instantly re-trip on one failure.
	if b.RecordFailure(later) {
		t.Fatal("stale window re-tripped a recovered breaker")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b := testBreaker()
	now := time.Now()
	tripped(b, now)
	later := now.Add(60 * time.Millisecond)
	if !b.Allow(later) {
		t.Fatal("probe rejected")
	}
	if !b.RecordFailure(later) {
		t.Fatal("failed probe should count as a trip")
	}
	if b.State() != StateOpen {
		t.Fatalf("state = %v", b.State())
	}
	// The cooldown restarts from the probe failure.
	if b.Allow(later.Add(10 * time.Millisecond)) {
		t.Fatal("reopened breaker allowed before its new cooldown")
	}
	if b.Snapshot().Trips != 2 {
		t.Fatalf("trips = %d", b.Snapshot().Trips)
	}
}

func TestBreakerSnapshotString(t *testing.T) {
	b := testBreaker()
	now := time.Now()
	b.RecordSuccess(now)
	b.RecordFailure(now)
	s := b.Snapshot()
	if s.Successes != 1 || s.Failures != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty snapshot string")
	}
}
