package fault

import (
	"strings"
	"testing"
	"time"
)

// A nil injector is the free default: no faults, zero counters.
func TestNilInjectorIsFree(t *testing.T) {
	var inj *Injector
	if out := inj.AtSubmit(0, 0); out != (Outcome{}) {
		t.Fatalf("nil AtSubmit = %+v", out)
	}
	if out := inj.AtService(0, 0); out != (Outcome{}) {
		t.Fatalf("nil AtService = %+v", out)
	}
	if inj.TotalInjected() != 0 || inj.Injected(Stall) != 0 {
		t.Fatal("nil injector counted injections")
	}
	if inj.String() != "fault: none" {
		t.Fatalf("String = %q", inj.String())
	}
	inj.SetSink(nil) // must not panic
}

// Same seed and rule set → identical decision sequence.
func TestInjectorDeterministic(t *testing.T) {
	mk := func() *Injector {
		return NewInjector(42, Rule{Kind: Drop, Endpoint: AnyEndpoint, Op: AnyOp, P: 0.3})
	}
	a, b := mk(), mk()
	for i := 0; i < 1000; i++ {
		oa, ob := a.AtService(i%3, i%5), b.AtService(i%3, i%5)
		if oa != ob {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, oa, ob)
		}
	}
	if a.TotalInjected() == 0 {
		t.Fatal("p=0.3 over 1000 opportunities injected nothing")
	}
	if a.TotalInjected() != b.TotalInjected() {
		t.Fatal("totals diverged")
	}
}

func TestProbabilityExtremes(t *testing.T) {
	always := NewInjector(1, Rule{Kind: Stall, Endpoint: AnyEndpoint, Op: AnyOp, P: 1})
	never := NewInjector(1, Rule{Kind: Stall, Endpoint: AnyEndpoint, Op: AnyOp, P: 0})
	for i := 0; i < 100; i++ {
		if !always.AtService(0, 0).Stall {
			t.Fatal("p=1 did not fire")
		}
		if never.AtService(0, 0).Stall {
			t.Fatal("p=0 fired")
		}
	}
	if always.Injected(Stall) != 100 || never.Injected(Stall) != 0 {
		t.Fatalf("counts = %d, %d", always.Injected(Stall), never.Injected(Stall))
	}
}

func TestSelectorsAndPhases(t *testing.T) {
	inj := NewInjector(7,
		Rule{Kind: RingFull, Endpoint: 1, Op: AnyOp, P: 1},
		Rule{Kind: Corrupt, Endpoint: AnyEndpoint, Op: 2, P: 1},
	)
	// RingFull is a submit-time fault: never fires at service time.
	if inj.AtService(1, 0) != (Outcome{}) {
		t.Fatal("submit-time kind fired at service time")
	}
	// Endpoint selector.
	if inj.AtSubmit(0, 0).RingFull {
		t.Fatal("endpoint selector ignored")
	}
	if !inj.AtSubmit(1, 0).RingFull {
		t.Fatal("matching endpoint did not fire")
	}
	// Op selector at service time.
	if inj.AtService(0, 1).Corrupt {
		t.Fatal("op selector ignored")
	}
	if !inj.AtService(0, 2).Corrupt {
		t.Fatal("matching op did not fire")
	}
}

func TestAfterAndLimit(t *testing.T) {
	inj := NewInjector(3, Rule{Kind: Reset, Endpoint: AnyEndpoint, Op: AnyOp, P: 1, After: 5, Limit: 2})
	fired := 0
	for i := 0; i < 20; i++ {
		if inj.AtSubmit(0, 0).Reset {
			if i < 5 {
				t.Fatalf("fired during the after-window at opportunity %d", i)
			}
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want limit 2", fired)
	}
}

func TestLatencyStacks(t *testing.T) {
	inj := NewInjector(9,
		Rule{Kind: Latency, Endpoint: AnyEndpoint, Op: AnyOp, P: 1, Latency: 2 * time.Millisecond},
		Rule{Kind: Latency, Endpoint: AnyEndpoint, Op: AnyOp, P: 1, Latency: 3 * time.Millisecond},
	)
	if d := inj.AtService(0, 0).ExtraLatency; d != 5*time.Millisecond {
		t.Fatalf("stacked latency = %v", d)
	}
}

type testSink struct{ n int }

func (s *testSink) Inc() { s.n++ }

func TestSinkMirrorsInjections(t *testing.T) {
	inj := NewInjector(11, Rule{Kind: Drop, Endpoint: AnyEndpoint, Op: AnyOp, P: 1})
	sink := &testSink{}
	inj.SetSink(sink)
	for i := 0; i < 7; i++ {
		inj.AtService(0, 0)
	}
	if sink.n != 7 {
		t.Fatalf("sink = %d", sink.n)
	}
}

func TestParseSpec(t *testing.T) {
	inj, err := ParseSpec("stall:ep=0,op=rsa,p=1 latency:d=5ms,p=0.2;ringfull:p=0.5,limit=100 reset:after=1000,limit=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	rules := inj.Rules()
	if len(rules) != 4 {
		t.Fatalf("rules = %d", len(rules))
	}
	if rules[0].Kind != Stall || rules[0].Endpoint != 0 || rules[0].Op != 0 || rules[0].P != 1 {
		t.Fatalf("rule 0 = %+v", rules[0])
	}
	if rules[1].Kind != Latency || rules[1].Latency != 5*time.Millisecond || rules[1].P != 0.2 {
		t.Fatalf("rule 1 = %+v", rules[1])
	}
	if rules[2].Kind != RingFull || rules[2].Limit != 100 {
		t.Fatalf("rule 2 = %+v", rules[2])
	}
	if rules[3].Kind != Reset || rules[3].After != 1000 || rules[3].Limit != 1 {
		t.Fatalf("rule 3 = %+v", rules[3])
	}
	if !strings.Contains(inj.String(), "stall:ep=0,op=rsa,p=1") {
		t.Fatalf("String = %q", inj.String())
	}
}

func TestParseSpecEmpty(t *testing.T) {
	inj, err := ParseSpec("  ", 1)
	if err != nil || inj != nil {
		t.Fatalf("empty spec = %v, %v; want nil, nil", inj, err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"explode",      // unknown kind
		"stall:p=2",    // probability out of range
		"stall:wat=1",  // unknown option
		"stall:p",      // malformed option
		"latency:p=1",  // latency without d=
		"stall:op=des", // unknown op
		"drop:after=x", // bad int
	} {
		if _, err := ParseSpec(spec, 1); err == nil {
			t.Fatalf("spec %q accepted", spec)
		}
	}
}

// Defaults: bare kind means p=1, any endpoint, any op.
func TestParseSpecDefaults(t *testing.T) {
	inj, err := ParseSpec("drop", 1)
	if err != nil {
		t.Fatal(err)
	}
	r := inj.Rules()[0]
	if r.P != 1 || r.Endpoint != AnyEndpoint || r.Op != AnyOp {
		t.Fatalf("defaults = %+v", r)
	}
	if !inj.AtService(4, 3).Drop {
		t.Fatal("bare rule did not fire everywhere")
	}
}
