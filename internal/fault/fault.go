// Package fault is the fault-injection and device-health subsystem of the
// QTLS reproduction. The paper's offload contract admits exactly one
// failure mode — ring-full submit rejection (§3.2) — but a production
// offload stack must survive the rest of a sick accelerator's repertoire:
// stalled engines, dropped or corrupted responses, latency spikes and
// whole-endpoint resets.
//
// The package has two halves:
//
//   - Injector: a composable, deterministic (seedable splitmix64 RNG,
//     no wall-clock dependence, so decisions are reproducible and
//     compatible with the discrete-event model's determinism contract)
//     source of fault decisions the simulated QAT device consults at
//     submit and service time. A nil *Injector is the free default:
//     every decision method on a nil receiver returns the zero Outcome.
//
//   - Breaker: a per-crypto-instance health tracker / circuit breaker
//     (rolling error-rate window, open → half-open probes → closed)
//     the engine uses to route submissions away from sick instances and
//     re-admit them after recovery.
//
// Fault scenarios are describable as strings ("stall:op=rsa,p=1" …) via
// ParseSpec, which backs the -fault flags of cmd/qtlsserver, cmd/qatinfo
// and examples/httpsserver.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// Stall: the engine never produces a response and the request's ring
	// slot stays occupied (a hung computation engine). The submitter's
	// only defense is a deadline.
	Stall Kind = iota
	// Drop: the engine consumes the request (the ring slot is freed) but
	// the response is lost on the way back.
	Drop
	// Corrupt: the response arrives carrying wrong bytes.
	Corrupt
	// Latency: the response is delayed by an extra service latency.
	Latency
	// RingFull: the submission is rejected as if the request ring were
	// full (a transient ring-full storm).
	RingFull
	// Reset: the whole endpoint resets; requests in flight on it fail
	// with a reset error.
	Reset

	numKinds = 6
)

// String returns the canonical (ParseSpec) name of the kind.
func (k Kind) String() string {
	switch k {
	case Stall:
		return "stall"
	case Drop:
		return "drop"
	case Corrupt:
		return "corrupt"
	case Latency:
		return "latency"
	case RingFull:
		return "ringfull"
	case Reset:
		return "reset"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// kindByName is the inverse of Kind.String for ParseSpec.
func kindByName(name string) (Kind, bool) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// AnyEndpoint and AnyOp are wildcard selectors for Rule.
const (
	AnyEndpoint = -1
	AnyOp       = -1
)

// opNames mirrors qat.OpType's ordinal names without importing qat (the
// dependency points the other way: qat consults fault).
var opNames = []string{"rsa", "ecdsa", "ecdh", "prf", "cipher", "sym"}

// Rule is one composable fault source. A rule observes every opportunity
// (submission or service event) matching its Endpoint/Op selectors and
// fires with probability P, skipping the first After opportunities and
// firing at most Limit times (0 = unlimited).
type Rule struct {
	// Kind is the fault class this rule injects.
	Kind Kind
	// Endpoint selects a device endpoint (AnyEndpoint matches all).
	Endpoint int
	// Op selects an operation type by qat.OpType ordinal (AnyOp matches
	// all).
	Op int
	// P is the per-opportunity injection probability in [0, 1].
	P float64
	// Latency is the added service delay for Kind == Latency.
	Latency time.Duration
	// After skips the rule's first After matching opportunities.
	After int
	// Limit caps the number of injections (0 = unlimited).
	Limit int

	seen  int // matching opportunities observed
	fired int // injections performed
}

func (r Rule) String() string {
	var parts []string
	if r.Endpoint != AnyEndpoint {
		parts = append(parts, fmt.Sprintf("ep=%d", r.Endpoint))
	}
	if r.Op != AnyOp && r.Op >= 0 && r.Op < len(opNames) {
		parts = append(parts, "op="+opNames[r.Op])
	}
	parts = append(parts, fmt.Sprintf("p=%g", r.P))
	if r.Kind == Latency {
		parts = append(parts, "d="+r.Latency.String())
	}
	if r.After > 0 {
		parts = append(parts, fmt.Sprintf("after=%d", r.After))
	}
	if r.Limit > 0 {
		parts = append(parts, fmt.Sprintf("limit=%d", r.Limit))
	}
	return r.Kind.String() + ":" + strings.Join(parts, ",")
}

// Outcome is the set of faults injected at one decision point. The zero
// value means "no fault".
type Outcome struct {
	// RingFull rejects the submission with a ring-full status
	// (submit-time only).
	RingFull bool
	// Reset resets the whole endpoint (submit-time only).
	Reset bool
	// Stall suppresses the response forever and leaks the ring slot
	// (service-time only).
	Stall bool
	// Drop suppresses the response but frees the ring slot
	// (service-time only).
	Drop bool
	// Corrupt delivers wrong bytes in the response (service-time only).
	Corrupt bool
	// ExtraLatency delays the response (service-time only).
	ExtraLatency time.Duration
}

// Counter is the minimal metric sink the injector reports into — satisfied
// by *metrics.Counter without importing the metrics package.
type Counter interface{ Inc() }

// EventSink receives one call per injected fault with the fault kind and
// the endpoint/op it hit. It is invoked while the injector's lock is
// held, so the sink must be fast and must not call back into the
// injector (the flight-recorder journal qualifies: one seqlock write).
type EventSink func(k Kind, endpoint, op int)

// Injector decides, deterministically, which submissions and services the
// device should sabotage. All methods are safe for concurrent use, and all
// methods on a nil *Injector report no faults — nil is the free default.
type Injector struct {
	mu       sync.Mutex
	rng      uint64 // splitmix64 state
	rules    []*Rule
	injected [numKinds]int64
	total    int64
	sink     Counter
	events   EventSink
}

// NewInjector builds an injector with a deterministic RNG seed and a rule
// set. Rules are evaluated in order; the first firing rule of each
// decision point wins (faults of different kinds at the same point
// compose only through ExtraLatency, which stacks with Corrupt).
func NewInjector(seed int64, rules ...Rule) *Injector {
	inj := &Injector{rng: uint64(seed) ^ 0x9e3779b97f4a7c15}
	for i := range rules {
		r := rules[i]
		inj.rules = append(inj.rules, &r)
	}
	return inj
}

// SetSink mirrors every injection into c (typically the registry counter
// "qat_faults_injected"). Pass nil to detach.
func (inj *Injector) SetSink(c Counter) {
	if inj == nil {
		return
	}
	inj.mu.Lock()
	inj.sink = c
	inj.mu.Unlock()
}

// SetEventSink mirrors every injection (with kind/endpoint/op detail)
// into fn — typically the flight recorder's journal. Pass nil to detach.
func (inj *Injector) SetEventSink(fn EventSink) {
	if inj == nil {
		return
	}
	inj.mu.Lock()
	inj.events = fn
	inj.mu.Unlock()
}

// splitmix64 advances the RNG; returns a uniform uint64.
func (inj *Injector) next() uint64 {
	inj.rng += 0x9e3779b97f4a7c15
	z := inj.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// roll returns true with probability p.
func (inj *Injector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		inj.next() // keep the stream position deterministic either way
		return true
	}
	return float64(inj.next()>>11)/(1<<53) < p
}

// fire evaluates one rule at one opportunity.
func (inj *Injector) fire(r *Rule) bool {
	r.seen++
	if r.seen <= r.After {
		return false
	}
	if r.Limit > 0 && r.fired >= r.Limit {
		return false
	}
	if !inj.roll(r.P) {
		return false
	}
	r.fired++
	inj.injected[r.Kind]++
	inj.total++
	if inj.sink != nil {
		inj.sink.Inc()
	}
	return true
}

func ruleMatches(r *Rule, endpoint, op int) bool {
	if r.Endpoint != AnyEndpoint && r.Endpoint != endpoint {
		return false
	}
	if r.Op != AnyOp && r.Op != op {
		return false
	}
	return true
}

// AtSubmit is consulted once per submission attempt. Only RingFull and
// Reset rules apply at this point.
func (inj *Injector) AtSubmit(endpoint, op int) Outcome {
	if inj == nil {
		return Outcome{}
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	var out Outcome
	for _, r := range inj.rules {
		if r.Kind != RingFull && r.Kind != Reset {
			continue
		}
		if !ruleMatches(r, endpoint, op) {
			continue
		}
		if !inj.fire(r) {
			continue
		}
		if inj.events != nil {
			inj.events(r.Kind, endpoint, op)
		}
		switch r.Kind {
		case RingFull:
			out.RingFull = true
		case Reset:
			out.Reset = true
		}
	}
	return out
}

// AtService is consulted once per request as an engine services it. Only
// Stall, Drop, Corrupt and Latency rules apply at this point.
func (inj *Injector) AtService(endpoint, op int) Outcome {
	if inj == nil {
		return Outcome{}
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	var out Outcome
	for _, r := range inj.rules {
		switch r.Kind {
		case Stall, Drop, Corrupt, Latency:
		default:
			continue
		}
		if !ruleMatches(r, endpoint, op) {
			continue
		}
		if !inj.fire(r) {
			continue
		}
		if inj.events != nil {
			inj.events(r.Kind, endpoint, op)
		}
		switch r.Kind {
		case Stall:
			out.Stall = true
		case Drop:
			out.Drop = true
		case Corrupt:
			out.Corrupt = true
		case Latency:
			out.ExtraLatency += r.Latency
		}
	}
	return out
}

// Injected returns the number of injections of one kind so far.
func (inj *Injector) Injected(k Kind) int64 {
	if inj == nil {
		return 0
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.injected[k]
}

// TotalInjected returns the total number of injections so far.
func (inj *Injector) TotalInjected() int64 {
	if inj == nil {
		return 0
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.total
}

// AddRule installs one rule at runtime and returns a handle for
// RemoveRule. This is the chaos-schedule primitive: a Schedule applies a
// fault window by adding a rule at its start time and removing it when
// the window closes.
func (inj *Injector) AddRule(r Rule) *Rule {
	if inj == nil {
		return nil
	}
	h := &r
	inj.mu.Lock()
	inj.rules = append(inj.rules, h)
	inj.mu.Unlock()
	return h
}

// RemoveRule removes a rule previously returned by AddRule (matched by
// identity). Unknown or nil handles are ignored.
func (inj *Injector) RemoveRule(h *Rule) {
	if inj == nil || h == nil {
		return
	}
	inj.mu.Lock()
	for i, r := range inj.rules {
		if r == h {
			inj.rules = append(inj.rules[:i], inj.rules[i+1:]...)
			break
		}
	}
	inj.mu.Unlock()
}

// Rules returns the injector's rule list (copies, for display).
func (inj *Injector) Rules() []Rule {
	if inj == nil {
		return nil
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make([]Rule, len(inj.rules))
	for i, r := range inj.rules {
		out[i] = *r
	}
	return out
}

// String summarizes the injector for logs.
func (inj *Injector) String() string {
	if inj == nil {
		return "fault: none"
	}
	rules := inj.Rules()
	parts := make([]string, len(rules))
	for i, r := range rules {
		parts[i] = r.String()
	}
	return "fault: " + strings.Join(parts, " ")
}

// ParseSpec parses a fault-scenario string into an Injector. The grammar
// is a space- or semicolon-separated list of rules,
//
//	kind[:key=value[,key=value...]]
//
// with kinds stall, drop, corrupt, latency, ringfull, reset and keys
//
//	p=<probability 0..1>     (default 1)
//	ep=<endpoint index>      (default any)
//	op=<rsa|ecdsa|ecdh|prf|cipher> (default any)
//	d=<duration>             (latency only, e.g. d=2ms)
//	after=<n>                (skip the first n opportunities)
//	limit=<n>                (fire at most n times)
//
// Examples:
//
//	stall:ep=0,op=rsa,p=1            # endpoint 0 never answers RSA
//	latency:d=5ms,p=0.2              # 20% of responses 5 ms late
//	ringfull:p=0.5,limit=100         # transient submit-rejection storm
//	reset:after=1000,limit=1         # one endpoint reset after 1000 ops
//
// An empty spec returns (nil, nil): the free no-fault default.
func ParseSpec(spec string, seed int64) (*Injector, error) {
	fields := strings.FieldsFunc(spec, func(r rune) bool {
		return r == ' ' || r == ';' || r == '\t' || r == '\n'
	})
	if len(fields) == 0 {
		return nil, nil
	}
	var rules []Rule
	for _, f := range fields {
		name, args, _ := strings.Cut(f, ":")
		k, ok := kindByName(strings.ToLower(strings.TrimSpace(name)))
		if !ok {
			return nil, fmt.Errorf("fault: unknown kind %q (want one of %s)", name, kindList())
		}
		r := Rule{Kind: k, Endpoint: AnyEndpoint, Op: AnyOp, P: 1}
		if args != "" {
			for _, kv := range strings.Split(args, ",") {
				key, val, found := strings.Cut(kv, "=")
				if !found {
					return nil, fmt.Errorf("fault: malformed option %q in %q", kv, f)
				}
				key = strings.ToLower(strings.TrimSpace(key))
				val = strings.TrimSpace(val)
				var err error
				switch key {
				case "p":
					r.P, err = strconv.ParseFloat(val, 64)
					if err == nil && (r.P < 0 || r.P > 1) {
						err = fmt.Errorf("probability out of [0,1]")
					}
				case "ep":
					r.Endpoint, err = strconv.Atoi(val)
				case "op":
					r.Op = -2
					for i, n := range opNames {
						if n == strings.ToLower(val) {
							r.Op = i
						}
					}
					if r.Op == -2 {
						err = fmt.Errorf("unknown op %q (want %s)", val, strings.Join(opNames, "|"))
					}
				case "d":
					r.Latency, err = time.ParseDuration(val)
				case "after":
					r.After, err = strconv.Atoi(val)
				case "limit":
					r.Limit, err = strconv.Atoi(val)
				default:
					err = fmt.Errorf("unknown option %q", key)
				}
				if err != nil {
					return nil, fmt.Errorf("fault: %s in %q: %v", key, f, err)
				}
			}
		}
		if r.Kind == Latency && r.Latency <= 0 {
			return nil, fmt.Errorf("fault: latency rule %q needs d=<duration>", f)
		}
		rules = append(rules, r)
	}
	return NewInjector(seed, rules...), nil
}

func kindList() string {
	names := make([]string, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		names[k] = k.String()
	}
	sort.Strings(names)
	return strings.Join(names, "|")
}
