package fault

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Time-scripted chaos: a Schedule is a parsed list of timed fault events
// ("at t=5s, stall device 1 for 10s; at t=30s, reset-storm device 0")
// that the chaos soak harness and `qtlsserver -chaos` replay against a
// live pool. Rule-window actions (stall, drop, corrupt, latency,
// ringfull) are applied by installing an injector rule at the window
// start and removing it when the window closes; reset-storm fires a
// burst of device resets through a caller-supplied callback (the fault
// package cannot import qat — the dependency points the other way).

// Action enumerates schedule actions.
type Action int

const (
	// ActStall opens a window during which engine responses are
	// suppressed and ring slots leak (drives the wedge watchdog).
	ActStall Action = iota
	// ActDrop opens a window during which responses are lost (ring slots
	// freed) — drives breaker-open density via timeouts.
	ActDrop
	// ActCorrupt opens a window of corrupted responses.
	ActCorrupt
	// ActLatency opens a window of added service latency.
	ActLatency
	// ActRingFull opens a window of submit-time ring-full rejections.
	ActRingFull
	// ActResetStorm fires Count endpoint resets spaced Gap apart (drives
	// the reset-storm detector).
	ActResetStorm
)

// String returns the schedule-grammar name of the action.
func (a Action) String() string {
	switch a {
	case ActStall:
		return "stall"
	case ActDrop:
		return "drop"
	case ActCorrupt:
		return "corrupt"
	case ActLatency:
		return "latency"
	case ActRingFull:
		return "ringfull"
	case ActResetStorm:
		return "reset-storm"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// actionByName is the inverse of Action.String for ParseSchedule.
func actionByName(name string) (Action, bool) {
	for a := ActStall; a <= ActResetStorm; a++ {
		if a.String() == name {
			return a, true
		}
	}
	return 0, false
}

// Event is one scheduled fault.
type Event struct {
	// At is the event's offset from schedule start.
	At time.Duration
	// Dev is the target device index.
	Dev int
	// Action is what happens.
	Action Action
	// Dur is the fault window for rule actions (how long the rule stays
	// installed). Zero for reset-storm.
	Dur time.Duration
	// P is the rule's per-opportunity probability (rule actions; default 1).
	P float64
	// Op restricts the rule to one op class (AnyOp by default).
	Op int
	// Latency is the added delay for ActLatency.
	Latency time.Duration
	// Count is the number of resets in a reset-storm (default 3).
	Count int
	// Gap is the spacing between reset-storm resets (default 50ms).
	Gap time.Duration
}

// Rule maps a rule-window event onto the injector rule to install for
// its window. ok is false for reset-storm (not a rule; apply it by
// resetting the device).
func (e Event) Rule() (Rule, bool) {
	r := Rule{Endpoint: AnyEndpoint, Op: e.Op, P: e.P}
	switch e.Action {
	case ActStall:
		r.Kind = Stall
	case ActDrop:
		r.Kind = Drop
	case ActCorrupt:
		r.Kind = Corrupt
	case ActLatency:
		r.Kind = Latency
		r.Latency = e.Latency
	case ActRingFull:
		r.Kind = RingFull
	default:
		return Rule{}, false
	}
	return r, true
}

// String renders the event back in schedule grammar.
func (e Event) String() string {
	s := fmt.Sprintf("t=%v dev%d %v", e.At, e.Dev, e.Action)
	if e.Action == ActResetStorm {
		return s + fmt.Sprintf(" n=%d gap=%v", e.Count, e.Gap)
	}
	s += fmt.Sprintf(" %v", e.Dur)
	if e.Action == ActLatency {
		s += fmt.Sprintf(" d=%v", e.Latency)
	}
	if e.P != 1 {
		s += fmt.Sprintf(" p=%g", e.P)
	}
	if e.Op != AnyOp && e.Op >= 0 && e.Op < len(opNames) {
		s += " op=" + opNames[e.Op]
	}
	return s
}

// Schedule is a parsed chaos script: events sorted by At.
type Schedule struct {
	Events []Event
}

// ParseSchedule parses a chaos script. The grammar is a list of
// statements separated by semicolons or newlines ('#' starts a comment):
//
//	t=<offset> dev<N> <action> [args]
//
// with actions
//
//	stall <window> [p=<prob>] [op=<name>]     # responses suppressed, slots leak
//	drop <window> [p=<prob>] [op=<name>]      # responses lost, slots freed
//	corrupt <window> [p=<prob>] [op=<name>]   # wrong bytes delivered
//	latency <window> d=<delay> [p=] [op=]     # responses delayed
//	ringfull <window> [p=<prob>]              # submits rejected
//	reset-storm [n=<count>] [gap=<dur>]       # burst of endpoint resets
//
// Example:
//
//	t=5s dev1 stall 10s; t=30s dev0 reset-storm n=4 gap=50ms
//
// An empty script returns (nil, nil).
func ParseSchedule(s string) (*Schedule, error) {
	var events []Event
	var stmts []string
	// Strip comments per line before splitting on ';', so a comment may
	// itself contain a semicolon.
	for _, line := range strings.Split(s, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		stmts = append(stmts, strings.Split(line, ";")...)
	}
	for _, raw := range stmts {
		fields := strings.Fields(raw)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 3 {
			return nil, fmt.Errorf("chaos: statement %q: want 't=<offset> dev<N> <action> [args]'", strings.TrimSpace(raw))
		}
		e := Event{P: 1, Op: AnyOp, Count: 3, Gap: 50 * time.Millisecond}

		tok := fields[0]
		if !strings.HasPrefix(tok, "t=") {
			return nil, fmt.Errorf("chaos: statement %q: first token must be t=<offset>", strings.TrimSpace(raw))
		}
		var err error
		if e.At, err = time.ParseDuration(tok[2:]); err != nil {
			return nil, fmt.Errorf("chaos: bad offset %q: %v", tok, err)
		}

		tok = fields[1]
		if !strings.HasPrefix(tok, "dev") {
			return nil, fmt.Errorf("chaos: statement %q: second token must be dev<N>", strings.TrimSpace(raw))
		}
		if e.Dev, err = strconv.Atoi(tok[3:]); err != nil || e.Dev < 0 {
			return nil, fmt.Errorf("chaos: bad device %q", tok)
		}

		act, ok := actionByName(strings.ToLower(fields[2]))
		if !ok {
			return nil, fmt.Errorf("chaos: unknown action %q (want stall|drop|corrupt|latency|ringfull|reset-storm)", fields[2])
		}
		e.Action = act

		for _, arg := range fields[3:] {
			key, val, found := strings.Cut(arg, "=")
			if !found {
				// A bare duration is the rule window.
				if act == ActResetStorm {
					return nil, fmt.Errorf("chaos: reset-storm takes n=/gap= options, not %q", arg)
				}
				if e.Dur, err = time.ParseDuration(arg); err != nil {
					return nil, fmt.Errorf("chaos: bad window %q: %v", arg, err)
				}
				continue
			}
			switch strings.ToLower(key) {
			case "p":
				e.P, err = strconv.ParseFloat(val, 64)
				if err == nil && (e.P < 0 || e.P > 1) {
					err = fmt.Errorf("probability out of [0,1]")
				}
			case "op":
				e.Op = -2
				for i, n := range opNames {
					if n == strings.ToLower(val) {
						e.Op = i
					}
				}
				if e.Op == -2 {
					err = fmt.Errorf("unknown op %q (want %s)", val, strings.Join(opNames, "|"))
				}
			case "d":
				e.Latency, err = time.ParseDuration(val)
			case "n":
				e.Count, err = strconv.Atoi(val)
			case "gap":
				e.Gap, err = time.ParseDuration(val)
			default:
				err = fmt.Errorf("unknown option %q", key)
			}
			if err != nil {
				return nil, fmt.Errorf("chaos: %s in %q: %v", key, strings.TrimSpace(raw), err)
			}
		}
		if act != ActResetStorm && e.Dur <= 0 {
			return nil, fmt.Errorf("chaos: %v needs a window duration in %q", act, strings.TrimSpace(raw))
		}
		if act == ActLatency && e.Latency <= 0 {
			return nil, fmt.Errorf("chaos: latency needs d=<delay> in %q", strings.TrimSpace(raw))
		}
		if act == ActResetStorm && e.Count <= 0 {
			return nil, fmt.Errorf("chaos: reset-storm needs n>=1 in %q", strings.TrimSpace(raw))
		}
		events = append(events, e)
	}
	if len(events) == 0 {
		return nil, nil
	}
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			return nil, fmt.Errorf("chaos: events must be in time order (%v after %v)", events[i].At, events[i-1].At)
		}
	}
	return &Schedule{Events: events}, nil
}

// Duration returns when the schedule is fully quiet: the latest event
// start plus its window (plus storm tail), the minimum soak length.
func (s *Schedule) Duration() time.Duration {
	if s == nil {
		return 0
	}
	var end time.Duration
	for _, e := range s.Events {
		t := e.At + e.Dur
		if e.Action == ActResetStorm {
			t = e.At + time.Duration(e.Count)*e.Gap
		}
		if t > end {
			end = t
		}
	}
	return end
}

// String renders the schedule back in grammar form.
func (s *Schedule) String() string {
	if s == nil {
		return ""
	}
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, "; ")
}

// Run replays the schedule in real time from now: apply is called once
// per event at its At offset. Run blocks until the last event has fired
// (not until its window closes — see Duration) or ctx is cancelled.
// Window bookkeeping is the caller's job; most callers want Apply.
func (s *Schedule) Run(ctx context.Context, apply func(Event)) error {
	if s == nil {
		return nil
	}
	start := time.Now()
	for _, e := range s.Events {
		delay := e.At - time.Since(start)
		if delay > 0 {
			t := time.NewTimer(delay)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		} else if ctx.Err() != nil {
			return ctx.Err()
		}
		apply(e)
	}
	return nil
}

// Apply replays the schedule against live injectors: rule-window events
// install their rule on the target device's injector at the window start
// and remove it at the window end; reset-storm events call reset(dev)
// Count times, Gap apart. injector maps a device index to its injector
// (chaos setups give each device its own); reset resets a device's
// endpoints (qat.Device.Reset, supplied as a callback). Apply blocks
// until every window has closed and every storm has finished, or ctx is
// cancelled.
func (s *Schedule) Apply(ctx context.Context, injector func(dev int) *Injector, reset func(dev int)) error {
	if s == nil {
		return nil
	}
	var timers []*time.Timer
	defer func() {
		for _, t := range timers {
			t.Stop()
		}
	}()
	done := make(chan struct{}, len(s.Events))
	pending := 0
	err := s.Run(ctx, func(e Event) {
		if e.Action == ActResetStorm {
			pending++
			go func() {
				defer func() { done <- struct{}{} }()
				for i := 0; i < e.Count; i++ {
					if ctx.Err() != nil {
						return
					}
					reset(e.Dev)
					if i < e.Count-1 {
						t := time.NewTimer(e.Gap)
						select {
						case <-ctx.Done():
							t.Stop()
							return
						case <-t.C:
						}
					}
				}
			}()
			return
		}
		rule, ok := e.Rule()
		if !ok {
			return
		}
		inj := injector(e.Dev)
		if inj == nil {
			return
		}
		h := inj.AddRule(rule)
		pending++
		timers = append(timers, time.AfterFunc(e.Dur, func() {
			inj.RemoveRule(h)
			done <- struct{}{}
		}))
	})
	for i := 0; i < pending; i++ {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-done:
		}
	}
	return err
}
