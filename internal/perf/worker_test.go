package perf

import (
	"testing"
	"time"
)

// A tiny request ring throttles async concurrency and surfaces ring-full
// retries (§3.2's submission-failure path).
func TestRingCapacityBackpressure(t *testing.T) {
	p := DefaultParams()
	p.RingCapacity = 2
	res := Run(RunOptions{
		Params: p, Config: QTLS(2), Warmup: tWarm, Measure: tMeasure,
		Install: func(m *Model) {
			STimeWorkload{Clients: 300, Spec: ScriptSpec{Suite: SuiteRSA}}.Install(m)
		},
	})
	if res.Stats.RingFulls == 0 {
		t.Fatal("no ring-full events with a 2-slot ring under load")
	}
	if res.CPS == 0 {
		t.Fatal("system must still make progress under ring pressure")
	}
	// A large ring removes the throttle.
	wide := Run(RunOptions{
		Config: QTLS(2), Warmup: tWarm, Measure: tMeasure,
		Install: func(m *Model) {
			STimeWorkload{Clients: 300, Spec: ScriptSpec{Suite: SuiteRSA}}.Install(m)
		},
	})
	if wide.Stats.RingFulls != 0 {
		t.Fatalf("ring-fulls with default capacity: %d", wide.Stats.RingFulls)
	}
	if wide.CPS < res.CPS {
		t.Fatalf("default ring %.0f should beat tiny ring %.0f", wide.CPS, res.CPS)
	}
}

// The failover timer fires when heuristic polling has been quiet but
// requests are in flight; at healthy load it should be rare relative to
// heuristic polls.
func TestFailoverPollsAreBackstopOnly(t *testing.T) {
	res := Run(RunOptions{
		Config: QTLS(4), Warmup: tWarm, Measure: tMeasure,
		Install: func(m *Model) {
			STimeWorkload{Clients: 300, Spec: ScriptSpec{Suite: SuiteRSA}}.Install(m)
		},
	})
	st := res.Stats
	if st.Polls == 0 {
		t.Fatal("no polls at all")
	}
	if st.FailoverPolls > st.Polls/10 {
		t.Fatalf("failover polls %d of %d — heuristic should carry the load", st.FailoverPolls, st.Polls)
	}
}

// Notifications are delivered once per retrieved response.
func TestNotificationAccounting(t *testing.T) {
	res := Run(RunOptions{
		Config: QTLS(2), Warmup: tWarm, Measure: tMeasure,
		Install: func(m *Model) {
			STimeWorkload{Clients: 150, Spec: ScriptSpec{Suite: SuiteRSA}}.Install(m)
		},
	})
	st := res.Stats
	// 5 offloadable ops per TLS-RSA handshake; the window boundary may
	// clip a few ops.
	perHS := float64(st.Notifications) / float64(st.Handshakes)
	if perHS < 4.5 || perHS > 5.5 {
		t.Fatalf("notifications per handshake = %.2f, want ≈5", perHS)
	}
}

// Worker utilization stays within [0,1] and approaches 1 under
// saturation for the software baseline.
func TestUtilizationBounds(t *testing.T) {
	res := Run(RunOptions{
		Config: SW(2), Warmup: tWarm, Measure: tMeasure,
		Install: func(m *Model) {
			STimeWorkload{Clients: 200, Spec: ScriptSpec{Suite: SuiteRSA}}.Install(m)
		},
	})
	u := res.Utilization
	if u < 0.9 || u > 1.01 {
		t.Fatalf("saturated SW utilization = %.3f, want ≈1", u)
	}
}

// Straight offload (QAT+S) blocks the worker: utilization ≈ 1 even
// though most of the time is spent waiting on the device.
func TestStraightOffloadOccupiesCore(t *testing.T) {
	res := Run(RunOptions{
		Config: QATS(2), Warmup: tWarm, Measure: tMeasure,
		Install: func(m *Model) {
			STimeWorkload{Clients: 200, Spec: ScriptSpec{Suite: SuiteRSA}}.Install(m)
		},
	})
	if res.Utilization < 0.9 {
		t.Fatalf("blocked QAT+S utilization = %.3f, want ≈1 (core wasted waiting)", res.Utilization)
	}
}

// The open-loop latency workload produces stable latencies when the
// system is unsaturated, and the latency includes at least one RTT plus
// the asymmetric pipeline latency.
func TestLatencyFloor(t *testing.T) {
	p := DefaultParams()
	res := Run(RunOptions{
		Config: QTLS(1), Warmup: tWarm, Measure: tMeasure,
		Install: func(m *Model) {
			LatencyWorkload{Concurrency: 1, PerClientRate: 5}.Install(m)
		},
	})
	floor := p.RTT + p.PipeLatencyAsym // bare minimum: one RTT + RSA latency
	if res.AvgLatency < floor {
		t.Fatalf("latency %v below physical floor %v", res.AvgLatency, floor)
	}
	if res.AvgLatency > 5*time.Millisecond {
		t.Fatalf("unsaturated QTLS latency %v implausibly high", res.AvgLatency)
	}
}

// Seeds change arrival jitter but not the throughput regime.
func TestSeedRobustness(t *testing.T) {
	get := func(seed int64) float64 {
		res := Run(RunOptions{
			Config: QTLS(4), Seed: seed, Warmup: tWarm, Measure: tMeasure,
			Install: func(m *Model) {
				STimeWorkload{Clients: 260, Spec: ScriptSpec{Suite: SuiteRSA}}.Install(m)
			},
		})
		return res.CPS
	}
	a, b := get(1), get(99)
	ratio := a / b
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("seed sensitivity too high: %.0f vs %.0f", a, b)
	}
}

// Timer polling with a 1 ms interval still completes work under load
// (coalescing covers the latency), verifying the Fig. 12a convergence.
func TestSlowTimerPollingThroughputConverges(t *testing.T) {
	slow := QATA(4)
	slow.PollInterval = time.Millisecond
	got := cps(t, slow, ScriptSpec{Suite: SuiteRSA}, 400, 0)
	heur := cps(t, QATAH(4), ScriptSpec{Suite: SuiteRSA}, 400, 0)
	if got < 0.6*heur {
		t.Fatalf("1ms timer %.0f too far below heuristic %.0f under saturation", got, heur)
	}
}

// PollKind/NotifKind configs derived from constructors carry the right
// settings.
func TestConfigConstructors(t *testing.T) {
	if c := SW(4); c.UseQAT || c.Workers != 4 {
		t.Fatalf("SW = %+v", c)
	}
	if c := QATS(4); !c.UseQAT || c.Async {
		t.Fatalf("QATS = %+v", c)
	}
	if c := QATA(4); !c.Async || c.Polling != PollTimer || c.Notify != NotifFD {
		t.Fatalf("QATA = %+v", c)
	}
	if c := QATAH(4); c.Polling != PollHeuristic || c.Notify != NotifFD {
		t.Fatalf("QATAH = %+v", c)
	}
	if c := QTLS(4); c.Polling != PollHeuristic || c.Notify != NotifBypass {
		t.Fatalf("QTLS = %+v", c)
	}
}

// Zero-worker configs are normalized to one worker.
func TestWorkerDefault(t *testing.T) {
	m := NewModel(DefaultParams(), Config{Name: "x"}, 1)
	if len(m.workers) != 1 {
		t.Fatalf("workers = %d", len(m.workers))
	}
}

// §4.1 ablation: stack async is slightly faster than fiber async (no
// fiber context swaps), but both are in the same regime.
func TestStackAsyncSlightlyFaster(t *testing.T) {
	fiber := QTLS(4)
	stack := QTLS(4)
	stack.Impl = ImplStack
	f := cps(t, fiber, ScriptSpec{Suite: SuiteRSA}, 300, 0)
	s := cps(t, stack, ScriptSpec{Suite: SuiteRSA}, 300, 0)
	if s < f {
		t.Fatalf("stack %.0f should be at least fiber %.0f", s, f)
	}
	if s > 1.1*f {
		t.Fatalf("stack %.0f implausibly far above fiber %.0f", s, f)
	}
}

// §3.3 ablation: interrupt-driven completion delivery costs throughput
// relative to heuristic polling (per-event kernel transitions).
func TestInterruptDeliveryCostsThroughput(t *testing.T) {
	intr := QTLS(8)
	intr.Polling = PollInterrupt
	intr.Name = "QAT+interrupt"
	i := cps(t, intr, ScriptSpec{Suite: SuiteRSA}, clients2(8), 0)
	h := cps(t, QTLS(8), ScriptSpec{Suite: SuiteRSA}, clients2(8), 0)
	if i >= h {
		t.Fatalf("interrupt %.0f should trail heuristic polling %.0f", i, h)
	}
	if i < 0.5*h {
		t.Fatalf("interrupt %.0f implausibly slow vs %.0f", i, h)
	}
}
