package perf

import (
	"fmt"
	"time"

	"qtls/internal/flight"
	"qtls/internal/metrics"
	"qtls/internal/offload"
	"qtls/internal/sim"
)

// PollKind selects the response retrieval scheme in the model. It is the
// shared offload.PollScheme under its historical name.
type PollKind = offload.PollScheme

const (
	// PollInline: the blocking straight-offload retrieval (QAT+S).
	PollInline = offload.PollNone
	// PollTimer: a timer-based polling thread pinned to the worker core.
	PollTimer = offload.PollTimer
	// PollHeuristic: the QTLS heuristic polling scheme.
	PollHeuristic = offload.PollHeuristic
	// PollInterrupt: no polling — each completion raises a kernel
	// interrupt that delivers the response to the worker (the alternative
	// §3.3 rejects for its per-event kernel cost; ablation only).
	PollInterrupt = offload.PollInterrupt
)

// AsyncImpl selects the crypto pause implementation (§4.1 ablation).
// The live stack has a matching knob (minitls.AsyncMode) but the choice
// does not change offload policy, so it stays outside internal/offload.
type AsyncImpl int

const (
	// ImplFiber is the ASYNC_JOB fiber mechanism in OpenSSL releases.
	ImplFiber AsyncImpl = iota
	// ImplStack is the original intrusive state-flag implementation —
	// slightly faster (no fiber context swaps) but API-incompatible.
	ImplStack
)

// NotifKind selects the async event notification scheme. It is the
// shared offload.NotifyScheme under its historical name.
type NotifKind = offload.NotifyScheme

const (
	// NotifFD is the descriptor-based scheme (write(2) + epoll).
	NotifFD = offload.NotifierFD
	// NotifBypass is the kernel-bypass async queue.
	NotifBypass = offload.NotifierKernelBypass
	// NotifCoalesced is eventfd-style batched delivery: bypass-cost
	// queueing per event plus one descriptor write per completion batch.
	NotifCoalesced = offload.NotifierCoalesced
)

// Config selects one offload configuration for a model run.
type Config struct {
	// Name labels the configuration ("SW", "QAT+S", ...).
	Name string
	// UseQAT enables the accelerator.
	UseQAT bool
	// Async enables the asynchronous offload framework; false with UseQAT
	// is the straight (blocking) offload.
	Async bool
	// Polling is the retrieval scheme for async configurations.
	Polling PollKind
	// PollInterval is the timer polling period (QAT+S and PollTimer).
	PollInterval time.Duration
	// Notify is the async notification scheme.
	Notify NotifKind
	// Impl is the crypto pause implementation (fiber by default; the
	// stack-async §4.1 ablation sets ImplStack).
	Impl AsyncImpl
	// Workers is the number of event-loop workers (HT cores).
	Workers int
	// Fault, when non-nil, injects a device-degradation scenario — the
	// discrete-event counterpart of the internal/fault subsystem.
	Fault *FaultScenario
	// Overload, when non-nil, arms admission control: new connections are
	// shed (TCP reset at accept) while the target worker's in-flight
	// offloads or connection count exceed the policy's pressure points —
	// the discrete-event counterpart of the live stack's accept-time
	// shedding. Zero fields take the offload defaults.
	Overload *offload.OverloadPolicy
	// Record, when non-nil, routes post-handshake record seals per the
	// shared record policy (software / offload / adaptive-above-threshold)
	// — the discrete-event counterpart of internal/record. Nil keeps the
	// paper's behavior: the QAT Engine offloads every cipher operation
	// whenever the accelerator is in use.
	Record *offload.RecordPolicy
	// Adaptive, when non-nil, arms the closed-loop threshold controller
	// on every worker (PollHeuristic only): each worker's poll policy
	// carries an offload.AdaptivePoll fed by virtual-time sliding windows
	// of retrieve-phase latency and completion-batch size — the
	// discrete-event counterpart of the live stack's flight-backed
	// feedback. Nil keeps the paper's static thresholds.
	Adaptive *offload.AdaptiveConfig
	// Devices is the number of modeled QAT cards (default 1 — the
	// paper's single-card testbed). With more than one, Placement
	// selects how op classes and workers spread across them — the
	// discrete-event counterpart of the live stack's qat.Pool sharding.
	Devices int
	// Placement is the multi-device placement mode. The zero value pins
	// everything to device 0, byte-identical to the pre-placement model;
	// PlacementClassShard routes asymmetric ops and sym/PRF ops to
	// disjoint device sets; PlacementConnHash homes each worker (and its
	// connections) on one device by worker hash.
	Placement offload.Placement
	// DegradeAt, when positive with Devices > 1 and an active Placement,
	// stalls every engine pool of DegradeDevice that far into the run
	// (virtual time from model start): the mid-run device-degradation
	// scenario. Workers detect the stall at submission time and re-route
	// to a healthy device, so connections complete with bounded latency
	// instead of hanging.
	DegradeAt time.Duration
	// DegradeDevice is the device index DegradeAt stalls.
	DegradeDevice int
	// RecoverAt, when positive with DegradeAt armed, un-stalls
	// DegradeDevice's engine pools that far into the run (virtual time
	// from model start, so RecoverAt > DegradeAt): the kill → degrade →
	// recover timeline of the lifecycle's probation re-admission. Workers
	// route per submission, so traffic returns to the recovered device on
	// its own — the DES counterpart of re-homing back.
	RecoverAt time.Duration
}

// FaultScenario degrades the modeled device and arms the engine-side
// defenses, mirroring internal/fault + the hardened internal/engine: a
// stalled engine pool never answers, per-op deadlines convert the hang
// into a software fallback, and a circuit breaker stops submitting to an
// instance once enough deadlines have expired.
type FaultScenario struct {
	// StalledEndpoints marks the asymmetric engine pools of the first N
	// endpoints as stalled: submissions to them are accepted but never
	// complete (a hung computation engine).
	StalledEndpoints int
	// OpTimeout is the per-operation deadline after which the worker
	// abandons a stalled offload and computes the result in software
	// (default 5 ms when a fault scenario is set).
	OpTimeout time.Duration
	// TripThreshold opens a worker's circuit breaker after this many
	// deadline expirations: subsequent asymmetric ops on the sick
	// instance skip the doomed submission and go straight to software.
	// 0 disables the breaker (every op pays the full deadline).
	TripThreshold int
}

// fromPolicy builds a model Config from a shared offload policy at a
// given worker count.
func fromPolicy(p offload.Policy, workers int) Config {
	return Config{
		Name:         p.Name,
		UseQAT:       p.UseQAT,
		Async:        p.Async,
		Polling:      p.Poll.Scheme,
		PollInterval: p.Poll.Interval,
		Notify:       p.Notify,
		Workers:      workers,
	}
}

// pollPolicy resolves the Config's retrieval knobs plus the calibrated
// thresholds into the shared policy value.
func (cfg Config) pollPolicy(p Params) offload.PollPolicy {
	return offload.PollPolicy{
		Scheme:           cfg.Polling,
		Interval:         cfg.PollInterval,
		AsymThreshold:    p.AsymThreshold,
		SymThreshold:     p.SymThreshold,
		FailoverInterval: p.FailoverInterval,
	}.WithDefaults()
}

// OffloadPolicy resolves the Config (with the given model parameters)
// into the shared offload-policy vocabulary — the same value the live
// stack's RunConfig.OffloadPolicy yields for each named configuration
// (see the parity test in internal/offload).
func (cfg Config) OffloadPolicy(p Params) offload.Policy {
	pol := offload.Policy{
		Name:      cfg.Name,
		UseQAT:    cfg.UseQAT,
		Async:     cfg.Async,
		Poll:      cfg.pollPolicy(p),
		Notify:    cfg.Notify,
		Placement: cfg.Placement,
	}
	if cfg.Record != nil {
		pol.Record = cfg.Record.WithDefaults()
	}
	return pol
}

// The paper's five configurations (§5.1) at a given worker count,
// derived from the shared policy layer.
func SW(workers int) Config { return fromPolicy(offload.SW(), workers) }

func QATS(workers int) Config { return fromPolicy(offload.QATS(), workers) }

func QATA(workers int) Config { return fromPolicy(offload.QATA(), workers) }

func QATAH(workers int) Config { return fromPolicy(offload.QATAH(), workers) }

func QTLS(workers int) Config { return fromPolicy(offload.QTLS(), workers) }

// Configurations returns the paper's five configurations in order.
func Configurations(workers int) []Config {
	return []Config{SW(workers), QATS(workers), QATA(workers), QATAH(workers), QTLS(workers)}
}

// opClass classifies modeled crypto operations.
type opClass int

const (
	opRSA opClass = iota
	opECDSA
	opECDH
	opPRF
	opHKDF
	opCipher
)

func (o opClass) asym() bool { return o == opRSA || o == opECDSA || o == opECDH }

// offloadable reports whether the QAT Engine can offload the class (HKDF
// cannot, §5.2).
func (o opClass) offloadable() bool { return o != opHKDF }

// stepKind enumerates connection script steps.
type stepKind int

const (
	stepCPU     stepKind = iota // worker CPU burst
	stepCrypto                  // crypto operation (software or offloaded)
	stepNet                     // wait for the client (worker free)
	stepHSDone                  // marker: handshake completed (counts CPS)
	stepReqDone                 // marker: one HTTP request served
)

// step is one unit of a connection's server-side script.
type step struct {
	kind  stepKind
	dur   time.Duration // stepCPU burst or stepNet delay
	op    opClass       // stepCrypto
	sw    time.Duration // software cost of the crypto op
	hw    time.Duration // accelerator service time of the crypto op
	bytes int           // stepNet: response bytes serialized onto the link
}

// conn is one modeled TLS connection.
type conn struct {
	w       *worker
	script  []step
	idx     int
	start   sim.Time // client-side start (for latency)
	resumed bool
	onDone  func(at sim.Time)
	// fallback is a pending software-fallback CPU burst (set when an
	// offload deadline expired; paid when the worker next runs the conn).
	fallback time.Duration
	// offAt is the submission time of the conn's in-flight async offload;
	// poll() reads it to feed the retrieve-latency window (submission →
	// response collected, the live stack's PhaseRetrieve).
	offAt sim.Time
}

// Stats aggregates a measurement window.
type Stats struct {
	Handshakes    int64
	Resumed       int64
	Requests      int64
	BytesServed   int64
	Latency       *metrics.Histogram
	Polls         int64
	EmptyPolls    int64
	FailoverPolls int64
	Notifications int64
	RingFulls     int64
	CPUBusy       time.Duration // summed across workers

	// Degradation counters (zero unless Config.Fault is set).
	Timeouts    int64 // offload deadlines expired
	SWFallbacks int64 // ops recomputed in software after a fault
	Trips       int64 // workers whose circuit breaker is open at window end

	// Sheds counts connections rejected at accept time by the admission
	// policy (zero unless Config.Overload is set).
	Sheds int64

	// Reroutes counts offloads diverted away from their preferred device
	// because its engine pool was stalled (zero unless a multi-device
	// placement absorbed a degradation).
	Reroutes int64

	// Record-path counters: cipher (record seal) operations routed to the
	// accelerator vs computed on the worker core. With Config.Record nil
	// every cipher op under a QAT configuration counts as offloaded (the
	// paper's engine-level cipher offload).
	RecordOffloadOps int64
	RecordSWOps      int64

	// Adaptive-poll telemetry (async configurations only). RetrieveP99 is
	// the windowed retrieve-phase p99 (ns) at the end of the measurement
	// window — the controller's feedback signal, reported for static runs
	// too so figures can compare planes. The threshold fields are zero
	// unless Config.Adaptive armed the controller.
	RetrieveP99        float64
	FinalAsymThreshold int
	FinalSymThreshold  int
	ThresholdAdjusts   int64
}

// CPUPerKB returns worker-CPU nanoseconds per kilobyte of served
// response body — the figure of merit for record-path offload (0 when
// nothing was served).
func (s *Stats) CPUPerKB() float64 {
	if s.BytesServed <= 0 {
		return 0
	}
	return float64(s.CPUBusy) / (float64(s.BytesServed) / 1024)
}

func newStats() *Stats {
	return &Stats{Latency: metrics.NewHistogram(1 << 14)}
}

// Model is one configured simulation instance.
type Model struct {
	sim     *sim.Simulation
	p       Params
	cfg     Config
	poll    offload.PollPolicy     // resolved retrieval policy (shared seam)
	shed    offload.OverloadPolicy // resolved admission policy (shedOn)
	shedOn  bool
	rec     offload.RecordPolicy // resolved record policy (recOn)
	recOn   bool
	workers []*worker
	dev     *device   // devs[0]: the legacy single-device view
	devs    []*device // all modeled cards, indexed by device
	// placementOn marks a multi-device placement: workers carry per-lane
	// endpoints and re-route around stalled devices. Off (the zero
	// Placement or one device), every path is byte-identical to the
	// single-device model.
	placementOn bool
	link        *link
	// retrieveWin is the shared virtual-time retrieve-latency window
	// (submission → response collected), the DES analogue of the flight
	// recorder's PhaseRetrieve window: process-wide, fed by every
	// worker's poll path, read by every worker's controller. Nil for
	// non-async configurations.
	retrieveWin *flight.Window

	measuring bool
	stats     *Stats
	nextConn  int
}

// NewModel builds a model for one configuration.
func NewModel(p Params, cfg Config, seed int64) *Model {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	poll := cfg.pollPolicy(p)
	cfg.PollInterval = poll.Interval
	m := &Model{
		sim:   sim.New(seed),
		p:     p,
		cfg:   cfg,
		poll:  poll,
		stats: newStats(),
		link:  &link{gbps: p.LinkGbps},
	}
	if cfg.Overload != nil {
		m.shed = cfg.Overload.WithDefaults()
		m.shedOn = true
	}
	if cfg.Record != nil {
		m.rec = cfg.Record.WithDefaults()
		m.recOn = true
	}
	if cfg.UseQAT {
		ndev := cfg.Devices
		if ndev <= 0 {
			ndev = 1
		}
		for d := 0; d < ndev; d++ {
			m.devs = append(m.devs, newDevice(m.sim, p.Endpoints, p.AsymEnginesPerEndpoint, p.SymEnginesPerEndpoint))
		}
		m.dev = m.devs[0]
		m.placementOn = ndev > 1 && cfg.Placement != offload.PlacementSingle
		if sc := cfg.Fault; sc != nil {
			if sc.OpTimeout <= 0 {
				sc.OpTimeout = 5 * time.Millisecond
			}
			for i := 0; i < sc.StalledEndpoints && i < len(m.dev.endpoints); i++ {
				m.dev.endpoints[i].asym.stalled = true
			}
		}
		if cfg.DegradeAt > 0 && m.placementOn {
			dd := cfg.DegradeDevice % ndev
			m.sim.After(cfg.DegradeAt, func() {
				for _, ep := range m.devs[dd].endpoints {
					ep.asym.stalled = true
					ep.sym.stalled = true
				}
			})
			if cfg.RecoverAt > cfg.DegradeAt {
				m.sim.After(cfg.RecoverAt, func() {
					for _, ep := range m.devs[dd].endpoints {
						ep.asym.stalled = false
						ep.sym.stalled = false
					}
				})
			}
		}
	}
	if cfg.UseQAT && cfg.Async {
		m.retrieveWin = flight.NewWindow(adaptiveWinBuckets, adaptiveWinBucket)
	}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{m: m, id: i, policy: poll}
		if m.dev != nil {
			w.endpoint = m.dev.endpoints[i%len(m.dev.endpoints)]
		}
		if m.placementOn {
			// Per-lane home endpoints: class sharding routes each op
			// class to its device set; conn-hash homes the whole worker
			// (both lanes) on one hash-picked device.
			if cfg.Placement == offload.PlacementConnHash {
				home := m.devs[i%len(m.devs)]
				w.endpoint = home.endpoints[i%len(home.endpoints)]
				w.asymEP, w.symEP = w.endpoint, w.endpoint
			} else {
				asymDevs := cfg.Placement.AsymDevices(len(m.devs))
				symDevs := cfg.Placement.SymDevices(len(m.devs))
				ad := m.devs[asymDevs[i%len(asymDevs)]]
				sd := m.devs[symDevs[i%len(symDevs)]]
				w.asymEP = ad.endpoints[i%len(ad.endpoints)]
				w.symEP = sd.endpoints[i%len(sd.endpoints)]
				w.endpoint = w.asymEP
			}
		}
		if cfg.UseQAT && cfg.Async {
			w.notif = offload.NewNotifier(cfg.Notify)
			w.batchWin = flight.NewWindow(adaptiveWinBuckets, adaptiveWinBucket)
			if cfg.Adaptive != nil && cfg.Polling == PollHeuristic {
				ac := *cfg.Adaptive
				if ac.Failover <= 0 {
					// Steer against the failover timer actually pacing
					// this policy, not the paper default.
					ac.Failover = poll.FailoverInterval
				}
				w.adaptive = offload.NewAdaptivePoll(ac, flight.WindowFeedback{
					Latency: m.retrieveWin,
					Batch:   w.batchWin,
				})
				w.policy.Adaptive = w.adaptive
			}
		}
		m.workers = append(m.workers, w)
		if cfg.UseQAT && !cfg.Async {
			// QAT+S: the timer polling thread makes blocked responses
			// visible on its tick grid; modeled inside blocking waits.
			continue
		}
		if cfg.UseQAT && cfg.Polling == PollTimer {
			w.startTimerPolling()
		}
		if cfg.UseQAT && cfg.Polling == PollHeuristic {
			w.startFailoverTimer()
		}
	}
	return m
}

// Virtual-time window geometry for the DES feedback windows: runs last
// hundreds of virtual milliseconds, so the windows span 200 ms (8 × 25
// ms) rather than the live recorder's 60 s.
const (
	adaptiveWinBuckets = 8
	adaptiveWinBucket  = 25 * time.Millisecond
)

// Sim exposes the underlying simulation (workload drivers schedule client
// events on it).
func (m *Model) Sim() *sim.Simulation { return m.sim }

// Stats returns the current measurement window's statistics.
func (m *Model) Stats() *Stats { return m.stats }

// recordOffload reports whether a record seal of n plaintext bytes takes
// the accelerator path: the explicit record policy when one is set, else
// the legacy engine-level cipher offload of the paper's configurations.
func (m *Model) recordOffload(n int) bool {
	if !m.cfg.UseQAT {
		return false
	}
	if !m.recOn {
		return true
	}
	return m.rec.Offload(n)
}

// worker picks the worker for a new connection (round robin, like
// SO_REUSEPORT balancing).
func (m *Model) worker() *worker {
	w := m.workers[m.nextConn%len(m.workers)]
	m.nextConn++
	return w
}

// StartConn introduces a new connection at the current virtual time.
// start is the client-side initiation time (now - RTT/2 for a freshly
// dialed connection).
func (m *Model) StartConn(script []step, resumed bool, onDone func(at sim.Time)) {
	w := m.worker()
	if m.shedOn && m.shed.ShedAccept(w.inflight, m.p.RingCapacity, w.alive) {
		// Admission control: the accept is answered with a TCP reset
		// before any TLS work is spent. The client learns immediately, so
		// closed-loop drivers keep cycling instead of hanging.
		if m.measuring {
			m.stats.Sheds++
		}
		if onDone != nil {
			onDone(m.sim.Now())
		}
		return
	}
	c := &conn{
		w:       w,
		script:  script,
		start:   m.sim.Now() - sim.Time(m.p.RTT/2),
		resumed: resumed,
		onDone:  onDone,
	}
	w.alive++
	w.enqueue(c)
}

// Run executes warmup, resets counters, then measures for the given
// window and returns the stats.
func (m *Model) Run(warmup, measure time.Duration) *Stats {
	m.sim.RunFor(warmup)
	m.stats = newStats()
	for _, w := range m.workers {
		w.busyAccum = 0
		if w.busy {
			w.busyStart = m.sim.Now()
		}
	}
	m.measuring = true
	m.sim.RunFor(measure)
	m.measuring = false
	for _, w := range m.workers {
		m.stats.CPUBusy += w.busyAccum
		if w.busy {
			m.stats.CPUBusy += time.Duration(m.sim.Now() - w.busyStart)
			w.busyStart = m.sim.Now() // avoid double counting on reuse
		}
		if w.tripped {
			m.stats.Trips++
		}
		if w.adaptive != nil {
			m.stats.ThresholdAdjusts += w.adaptive.Adjusts()
		}
	}
	if m.retrieveWin != nil {
		m.stats.RetrieveP99 = m.retrieveWin.Snapshot(int64(m.sim.Now())).P99
	}
	if w := m.workers[0]; w.adaptive != nil {
		// Workers see round-robin slices of the same traffic, so their
		// controllers converge together; worker 0 stands in for the fleet.
		m.stats.FinalAsymThreshold, m.stats.FinalSymThreshold = w.adaptive.Thresholds()
	}
	return m.stats
}

// Utilization returns mean worker CPU utilization over the measurement
// window of length measure.
func (s *Stats) Utilization(workers int, measure time.Duration) float64 {
	if workers == 0 || measure == 0 {
		return 0
	}
	return float64(s.CPUBusy) / float64(measure) / float64(workers)
}

// CPS returns completed handshakes per second for the window length.
func (s *Stats) CPS(measure time.Duration) float64 {
	return float64(s.Handshakes) / measure.Seconds()
}

// Gbps returns served gigabits per second for the window length.
func (s *Stats) Gbps(measure time.Duration) float64 {
	return float64(s.BytesServed) * 8 / measure.Seconds() / 1e9
}

// --- device ---------------------------------------------------------------

// device models the QAT card: endpoints with parallel engines, FIFO
// request queues, and per-instance response rings polled by workers.
// Each endpoint has two engine pools, matching the hardware's split
// between public-key (PKE) engines and cipher/authentication engines.
type device struct {
	s         *sim.Simulation
	endpoints []*endpoint
}

type endpoint struct {
	asym enginePool
	sym  enginePool
}

type enginePool struct {
	s       *sim.Simulation
	engines int
	busy    int
	queue   sim.FIFO[*devReq]
	// stalled: the pool's engines hang. Requests are swallowed and their
	// done callback never fires; only the submitter's deadline saves it.
	stalled bool
}

type devReq struct {
	service time.Duration
	done    func(at sim.Time)
}

func newDevice(s *sim.Simulation, endpoints, asymEngines, symEngines int) *device {
	d := &device{s: s}
	for i := 0; i < endpoints; i++ {
		d.endpoints = append(d.endpoints, &endpoint{
			asym: enginePool{s: s, engines: asymEngines},
			sym:  enginePool{s: s, engines: symEngines},
		})
	}
	return d
}

// pool returns the engine pool serving an op class.
func (ep *endpoint) pool(op opClass) *enginePool {
	if op.asym() {
		return &ep.asym
	}
	return &ep.sym
}

// submit hands a request to the right engine pool; done fires at
// completion time. Load balancing across a pool's engines is implicit
// (any free engine takes the next queued request).
func (ep *endpoint) submit(op opClass, service time.Duration, done func(at sim.Time)) {
	pool := ep.pool(op)
	if pool.stalled {
		return // swallowed by the hung engine; done never fires
	}
	req := &devReq{service: service, done: done}
	if pool.busy < pool.engines {
		pool.start(req)
		return
	}
	pool.queue.Push(req)
}

func (pool *enginePool) start(req *devReq) {
	pool.busy++
	pool.s.After(req.service, func() {
		pool.busy--
		req.done(pool.s.Now())
		if next, ok := pool.queue.Pop(); ok {
			pool.start(next)
		}
	})
}

// --- link -----------------------------------------------------------------

// link models NIC serialization at line rate (shared FIFO).
type link struct {
	gbps   float64
	freeAt sim.Time
}

// sendDelay returns the extra delay to serialize n bytes starting now.
func (l *link) sendDelay(now sim.Time, n int) time.Duration {
	if n <= 0 || l.gbps <= 0 {
		return 0
	}
	// n bytes at gbps Gbit/s → nanoseconds on the wire.
	ser := time.Duration(float64(n) * 8 / (l.gbps * 1e9) * 1e9)
	start := now
	if l.freeAt > start {
		start = l.freeAt
	}
	l.freeAt = start + sim.Time(ser)
	return time.Duration(l.freeAt - now)
}

func (m *Model) String() string {
	return fmt.Sprintf("model[%s w=%d]", m.cfg.Name, m.cfg.Workers)
}
