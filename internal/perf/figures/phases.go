//go:build linux

package figures

import (
	"time"

	"qtls/internal/loadgen"
	"qtls/internal/metrics"
	"qtls/internal/minitls"
	"qtls/internal/qat"
	"qtls/internal/server"
	"qtls/internal/trace"
)

func init() { registerExtra("phases", Phases) }

// phasesConfigs are the run configurations contrasted by the phase
// breakdown: QAT+A pays the notification fd round trip through epoll,
// QTLS takes the kernel-bypass queue (§3.4), so the notify column is
// where the two should visibly part ways.
func phasesConfigs() []server.RunConfig {
	return []server.RunConfig{server.ConfigQATA, server.ConfigQTLS}
}

// phaseRun drives real ECDHE-RSA handshakes through one offload
// configuration on the live event-loop stack (not the DES model) with
// tracing enabled, and returns the four phase-latency histograms.
func phaseRun(o Opts, run server.RunConfig) [4]*metrics.Histogram {
	dev := qat.NewDevice(qat.DeviceSpec{Endpoints: 3, EnginesPerEndpoint: 4, RingCapacity: 128})
	defer dev.Close()
	rec := trace.NewRecorder(4096)
	rec.SetEnabled(true)
	reg := metrics.NewRegistry()
	rsaID, _ := table1Identities()
	srv, err := server.New(server.Options{
		Addr:    "127.0.0.1:0",
		Workers: 2,
		Run:     run,
		TLS: &minitls.Config{
			Identity:     rsaID,
			CipherSuites: []uint16{minitls.TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA},
		},
		Device:  dev,
		Handler: server.SizedBodyHandler(1 << 20),
		Metrics: reg,
		Trace:   rec,
	})
	if err != nil {
		panic("phases: " + err.Error())
	}
	srv.Start()
	defer srv.Stop()
	loadgen.STime(loadgen.STimeOptions{
		Addr:           srv.Addr(),
		Clients:        16,
		Duration:       o.Warmup + o.Measure,
		RequestPath:    "/2048",
		MaxConnections: 4096,
	})
	var hists [4]*metrics.Histogram
	for i, ph := range trace.OffloadPhases() {
		h, ok := reg.LookupHistogram(trace.PhaseSeriesName(ph))
		if !ok {
			panic("phases: missing histogram for phase " + ph.String())
		}
		hists[i] = h
	}
	return hists
}

// Phases reproduces the paper's §3.2 offload-phase breakdown on the
// live stack: per-phase p50/p99 latency for QAT+A versus QTLS, in
// microseconds. The notify column carries the kernel-bypass story; the
// retrieve column carries the polling-heuristic story.
func Phases(o Opts) Table {
	o = o.withDefaults()
	t := Table{
		ID:     "phases",
		Title:  "Offload phase latency breakdown (live stack)",
		XLabel: "offload phase (§3.2) quantile",
		YLabel: "latency (µs)",
		Notes: "Measured from the span recorder on real handshakes, not the DES model.\n" +
			"  Phases: pre-processing, QAT response retrieval, async event notification, post-processing.",
	}
	for _, ph := range trace.OffloadPhases() {
		t.Columns = append(t.Columns, ph.String()+" p50", ph.String()+" p99")
	}
	for _, run := range phasesConfigs() {
		hists := phaseRun(o, run)
		s := Series{Name: run.Name}
		for _, h := range hists {
			s.Values = append(s.Values,
				h.Quantile(0.50)/float64(time.Microsecond),
				h.Quantile(0.99)/float64(time.Microsecond))
		}
		t.Series = append(t.Series, s)
	}
	return t
}
