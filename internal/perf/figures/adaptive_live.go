//go:build linux

package figures

import (
	"time"

	"qtls/internal/flight"
	"qtls/internal/loadgen"
	"qtls/internal/minitls"
	"qtls/internal/offload"
	"qtls/internal/qat"
	"qtls/internal/server"
	"qtls/internal/trace"
)

func init() { registerExtra("adaptive-live", AdaptiveLive) }

// adaptiveLiveRun drives the closed-loop handshake workload through a
// live QTLS server and returns the load result, the windowed retrieve
// p99 at the end of the run, and the thresholds the first worker ended
// on. A nil ad runs the static 48/24 scheme.
func adaptiveLiveRun(o Opts, ad *offload.AdaptiveConfig) (loadgen.Result, flight.WindowSnapshot, int, int) {
	dev := qat.NewDevice(qat.DeviceSpec{
		Endpoints:          3,
		EnginesPerEndpoint: 4,
		RingCapacity:       128,
	})
	defer dev.Close()

	rec := trace.NewRecorder(1024)
	rec.SetEnabled(true)
	fr := flight.New(flight.Config{Buckets: 8, Bucket: 500 * time.Millisecond})
	fr.SetEnabled(true)

	run := server.ConfigQTLS
	run.AdaptivePoll = ad
	rsaID, _ := table1Identities()
	srv, err := server.New(server.Options{
		Addr:    "127.0.0.1:0",
		Workers: 2,
		Run:     run,
		TLS: &minitls.Config{
			Identity:     rsaID,
			CipherSuites: []uint16{minitls.TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA},
		},
		Device:  dev,
		Trace:   rec,
		Flight:  fr,
		Handler: server.SizedBodyHandler(4 << 20),
	})
	if err != nil {
		panic("adaptive-live: " + err.Error())
	}
	srv.Start()
	res := loadgen.STime(loadgen.STimeOptions{
		Addr:     srv.Addr(),
		Clients:  16,
		Duration: o.Warmup + o.Measure,
	})
	snap := fr.PhaseWindow(trace.PhaseRetrieve).Snapshot(time.Now().UnixNano())
	asym, sym := srv.Workers()[0].PollThresholds()
	srv.Stop()
	return res, snap, asym, sym
}

// AdaptiveLive is the live-stack half of the adaptive experiment: the
// same static-vs-adaptive contrast as the DES adaptive figure, measured
// end-to-end through real sockets with the controller fed by the flight
// recorder's retrieve-phase window. It proves the whole feedback loop
// functions under load — spans flow from the tracer into the sliding
// windows, the controller ticks on the worker loop, threshold moves are
// journaled and exported as gauges — rather than re-deriving the DES
// convergence numbers.
func AdaptiveLive(o Opts) Table {
	o = o.withDefaults()
	t := Table{
		ID:     "adaptive-live",
		Title:  "Adaptive poll thresholds, live stack: static 48/24 vs closed-loop",
		XLabel: "metric",
		YLabel: "CPS, retrieve p99 ms, final thresholds, moves",
		Notes: "controller fed by the flight recorder's retrieve window (500ms buckets);\n" +
			"  short Interval/MinSamples so it moves within the measurement window.",
		Columns: []string{"CPS", "retrieve p99 ms", "final asym", "final sym"},
	}
	ad := &offload.AdaptiveConfig{
		Interval:   250 * time.Millisecond,
		MinSamples: 16,
	}
	for _, c := range []struct {
		name string
		ad   *offload.AdaptiveConfig
	}{
		{"static 48/24", nil},
		{"adaptive", ad},
	} {
		res, snap, asym, sym := adaptiveLiveRun(o, c.ad)
		t.Series = append(t.Series, Series{Name: c.name, Values: []float64{
			res.CPS(), snap.P99 / 1e6, float64(asym), float64(sym),
		}})
	}
	return t
}
