//go:build linux

package figures

import (
	"strings"
	"testing"

	"qtls/internal/trace"
)

// TestPhasesFigureTrace smoke-runs the live-stack phase breakdown and
// asserts both configurations produced non-zero latency for all four
// offload phases.
func TestPhasesFigureTrace(t *testing.T) {
	tab := Phases(Quick())
	if tab.ID != "phases" {
		t.Fatalf("ID = %q", tab.ID)
	}
	if len(tab.Columns) != 8 {
		t.Fatalf("columns = %v", tab.Columns)
	}
	if len(tab.Series) != 2 {
		t.Fatalf("series = %d", len(tab.Series))
	}
	for _, s := range tab.Series {
		if len(s.Values) != len(tab.Columns) {
			t.Fatalf("%s: %d values for %d columns", s.Name, len(s.Values), len(tab.Columns))
		}
		for i, v := range s.Values {
			if v <= 0 {
				t.Errorf("%s %s = %v, want > 0", s.Name, tab.Columns[i], v)
			}
		}
	}
	if !strings.Contains(tab.Format(), "QTLS") {
		t.Fatal("formatted table missing QTLS series")
	}
}

// TestPhasesRegisteredTrace asserts the extras registry exposes the
// live-stack figure through ByID and IDs like any model figure.
func TestPhasesRegisteredTrace(t *testing.T) {
	if _, ok := ByID("phases"); !ok {
		t.Fatal("phases not registered in ByID")
	}
	found := false
	for _, id := range IDs() {
		if id == "phases" {
			found = true
		}
	}
	if !found {
		t.Fatalf("phases missing from IDs(): %v", IDs())
	}
	if len(trace.OffloadPhases()) != 4 {
		t.Fatalf("offload phases = %v", trace.OffloadPhases())
	}
}
