package figures

import (
	"fmt"
	"time"

	"qtls/internal/offload"
	"qtls/internal/perf"
)

// The adaptive-poll experiment: the paper calibrates the 48/24
// heuristic thresholds for one device and one op mix (§4.3); this
// figure asks what happens when the mix moves. Three workloads — the
// classical handshake mix the thresholds were tuned for, a record-heavy
// keepalive transfer mix, and a "10x asym" mix whose asymmetric ops are
// an order of magnitude slower (post-quantum-scale signatures) — are
// each run with the static defaults, with the best static scheme from a
// threshold sweep (the oracle a human operator would find offline), and
// with the closed-loop adaptive controller. The reported metric is the
// windowed retrieve-phase p99: how long completed responses sit on the
// rings before a poll collects them — exactly the signal the controller
// steers on.

// adaptiveSweepGrid is the static grid the adaptive run is judged
// against; sym = asym/2 preserves the paper's 2:1 shape.
var adaptiveSweepGrid = []int{8, 16, 24, 48, 96}

// adaptiveDESConfig is the controller tuning used in virtual time: the
// DES compresses a run into hundreds of milliseconds, so the control
// interval and sample gate shrink accordingly (the live stack defaults
// are 1s / 32 samples).
func adaptiveDESConfig() *offload.AdaptiveConfig {
	return &offload.AdaptiveConfig{
		Interval:   5 * time.Millisecond,
		MinSamples: 16,
	}
}

// adaptiveMix is one workload column of the figure.
type adaptiveMix struct {
	name    string
	workers int
	clients int
	params  func() perf.Params
	install func(clients int) func(*perf.Model)
}

func adaptiveMixes() []adaptiveMix {
	handshakes := func(clients int) func(*perf.Model) {
		return func(m *perf.Model) {
			perf.STimeWorkload{Clients: clients, Spec: perf.ScriptSpec{Suite: perf.SuiteRSA}}.Install(m)
		}
	}
	return []adaptiveMix{
		{
			// The mix the paper tuned 48/24 for.
			name: "classical", workers: 2, clients: clientsFor(2),
			params:  perf.DefaultParams,
			install: handshakes,
		},
		{
			// Symmetric record traffic: the sym threshold governs.
			name: "record-heavy", workers: 2, clients: 100,
			params: perf.DefaultParams,
			install: func(clients int) func(*perf.Model) {
				return func(m *perf.Model) {
					perf.ABWorkload{Clients: clients, FileBytes: 64 * 1024}.Install(m)
				}
			},
		},
		{
			// Asymmetric ops 10x slower, software and accelerated alike —
			// the PQ-scale mix. In-flight counts hover far below 48, so
			// the static default degenerates to failover-paced polling.
			name: "10x-asym", workers: 1, clients: 30,
			params: func() perf.Params {
				p := perf.DefaultParams()
				p.SwRSA *= 10
				p.QatRSA *= 10
				return p
			},
			install: handshakes,
		},
	}
}

// runAdaptiveMix runs one QTLS configuration over one mix. asym/sym
// override the static thresholds (0 keeps the calibrated defaults);
// ad, when non-nil, arms the controller.
func runAdaptiveMix(o Opts, mix adaptiveMix, asym, sym int, ad *offload.AdaptiveConfig) perf.RunResult {
	p := mix.params()
	if asym > 0 {
		p.AsymThreshold, p.SymThreshold = asym, sym
	}
	cfg := perf.QTLS(mix.workers)
	cfg.Adaptive = ad
	return perf.Run(perf.RunOptions{
		Params:  p,
		Config:  cfg,
		Warmup:  o.Warmup,
		Measure: o.Measure,
		Install: mix.install(mix.clients),
	})
}

// bestStaticAdaptive sweeps the static grid on one mix and returns the
// scheme with the lowest windowed retrieve p99, plus its result.
func bestStaticAdaptive(o Opts, mix adaptiveMix) (asym int, best perf.RunResult) {
	for _, a := range adaptiveSweepGrid {
		r := runAdaptiveMix(o, mix, a, a/2, nil)
		if asym == 0 || r.Stats.RetrieveP99 < best.Stats.RetrieveP99 {
			asym, best = a, r
		}
	}
	return asym, best
}

// Adaptive is the closed-loop threshold figure.
func Adaptive(o Opts) Table {
	o = o.withDefaults()
	t := Table{
		ID:     "adaptive",
		Title:  "Adaptive poll thresholds: windowed retrieve p99 vs static schemes, QTLS",
		XLabel: "workload mix",
		YLabel: "retrieve-phase windowed p99 (ms); final thresholds",
		Notes: fmt.Sprintf("best static = lowest-p99 scheme from a sym=asym/2 sweep over %v;\n"+
			"  the controller starts at the paper's %d/%d and walks toward the latency knee",
			adaptiveSweepGrid, offload.DefaultAsymThreshold, offload.DefaultSymThreshold),
	}
	static := Series{Name: fmt.Sprintf("static %d/%d p99", offload.DefaultAsymThreshold, offload.DefaultSymThreshold)}
	best := Series{Name: "best static p99"}
	bestAsym := Series{Name: "best static asym"}
	adapt := Series{Name: "adaptive p99"}
	finalAsym := Series{Name: "adaptive final asym"}
	moves := Series{Name: "adaptive moves"}
	for _, mix := range adaptiveMixes() {
		t.Columns = append(t.Columns, mix.name)
		def := runAdaptiveMix(o, mix, 0, 0, nil)
		a, b := bestStaticAdaptive(o, mix)
		ad := runAdaptiveMix(o, mix, 0, 0, adaptiveDESConfig())
		ms := func(r perf.RunResult) float64 { return r.Stats.RetrieveP99 / 1e6 }
		static.Values = append(static.Values, ms(def))
		best.Values = append(best.Values, ms(b))
		bestAsym.Values = append(bestAsym.Values, float64(a))
		adapt.Values = append(adapt.Values, ms(ad))
		finalAsym.Values = append(finalAsym.Values, float64(ad.Stats.FinalAsymThreshold))
		moves.Values = append(moves.Values, float64(ad.Stats.ThresholdAdjusts))
	}
	t.Series = []Series{static, best, bestAsym, adapt, finalAsym, moves}
	return t
}
