package figures

import (
	"fmt"
	"time"

	"qtls/internal/flight"
	"qtls/internal/metrics"
)

// Blackbox contrasts the two latency planes the stack exposes: the
// all-time metrics.Histogram behind qtls_phase_ns, and the sliding
// flight.Window behind qtls_phase_ns_w60s. A transient incident —
// a minority of spans jumping three orders of magnitude, the signature
// of a stalled engine driving ops into timeout fallback — is injected
// after a long healthy run. The windowed p99 crosses the SLO within a
// few seconds of onset (arming the flight recorder's anomaly dump) and
// decays once the incident leaves the window; the lifetime p99 never
// moves, because the slow spans stay below one percent of all samples
// ever observed. That asymmetry is why the anomaly trigger and any
// future self-tuning read the window, never the lifetime series.
//
// The simulation is fully deterministic: the clock is synthetic (every
// Window method takes nowNs), the jitter comes from a fixed-seed LCG,
// and the histogram's reservoir uses a fixed xorshift seed — so the
// shape test can assert exact detector behavior.
func Blackbox(Opts) Table {
	const (
		spanEvery = 2500 * time.Microsecond // 400 spans/s
		warmup    = 600 * time.Second       // healthy history before onset
		incident  = 30 * time.Second
		tail      = 70 * time.Second // recovery horizon after the incident
		slo       = 5 * time.Millisecond
		slowPct   = 15 // % of spans hitting timeout fallback during incident
	)
	onset := warmup
	end := onset + incident
	total := end + tail

	win := flight.NewWindow(12, 5*time.Second)
	all := metrics.NewHistogram(0)

	// Column instants relative to onset; the recovery columns sit past
	// the window span so the figure shows the windowed p99 forgetting.
	offsets := []time.Duration{
		-60 * time.Second, -5 * time.Second,
		2 * time.Second, 5 * time.Second, 10 * time.Second,
		20 * time.Second, 30 * time.Second,
		45 * time.Second, 60 * time.Second, 95 * time.Second,
	}
	windowed := make([]float64, 0, len(offsets))
	lifetime := make([]float64, 0, len(offsets))
	trigger := make([]float64, 0, len(offsets))
	active := make([]float64, 0, len(offsets))

	rng := uint64(1)
	next := func(mod int64) int64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int64(rng>>33) % mod
	}

	detect := time.Duration(-1)
	lastCheck := time.Duration(-time.Second)
	si := 0
	for now := time.Duration(0); now < total; now += spanEvery {
		nowNs := int64(now)
		inIncident := now >= onset && now < end
		var lat time.Duration
		if inIncident && next(100) < slowPct {
			lat = 15*time.Millisecond + time.Duration(next(int64(25*time.Millisecond)))
		} else {
			lat = 80*time.Microsecond + time.Duration(next(int64(80*time.Microsecond)))
		}
		win.Observe(float64(lat), nowNs)
		all.Observe(float64(lat))
		// The SLO detector runs once per simulated second, like the
		// worker-loop Check cadence.
		if now-lastCheck >= time.Second {
			lastCheck = now
			if detect < 0 && now >= onset && win.Snapshot(nowNs).P99 > float64(slo) {
				detect = now - onset
			}
		}
		for si < len(offsets) && now-onset >= offsets[si] {
			s := win.Snapshot(nowNs)
			windowed = append(windowed, s.P99/float64(time.Millisecond))
			lifetime = append(lifetime, all.Quantile(0.99)/float64(time.Millisecond))
			if s.P99 > float64(slo) {
				trigger = append(trigger, 1)
			} else {
				trigger = append(trigger, 0)
			}
			if inIncident {
				active = append(active, 1)
			} else {
				active = append(active, 0)
			}
			si++
		}
	}

	t := Table{
		ID:     "blackbox",
		Title:  "Windowed vs lifetime p99 around a transient engine stall",
		XLabel: "seconds relative to incident onset",
		YLabel: "p99 span latency (ms); trigger/incident are 0/1 markers",
	}
	for _, off := range offsets {
		t.Columns = append(t.Columns, fmt.Sprintf("%+ds", int(off/time.Second)))
	}
	t.Series = []Series{
		{Name: "w60s p99", Values: windowed},
		{Name: "all-time p99", Values: lifetime},
		{Name: "slo trigger", Values: trigger},
		{Name: "incident", Values: active},
	}
	detected := "never"
	if detect >= 0 {
		detected = fmt.Sprintf("%.0fs after onset", detect.Seconds())
	}
	t.Notes = fmt.Sprintf(
		"%d%% of spans jump to 15-40ms for %ds after %ds healthy; windowed p99 crosses the %v SLO %s, lifetime p99 never does (slow spans stay <1%% of all samples)",
		slowPct, int(incident.Seconds()), int(warmup.Seconds()), slo, detected)
	return t
}
