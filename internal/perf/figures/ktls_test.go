package figures

import "testing"

// TestKTLSShape smoke-runs the DES record-path figure and pins its
// headline shape: the offloaded record path is cheaper per byte than
// software for large responses, while below the adaptive threshold the
// submit overhead makes software the better deal — which the adaptive
// series exploits by matching software there.
func TestKTLSShape(t *testing.T) {
	tab := KTLS(Quick())
	checkShape(t, tab, 3)
	sw := seriesByName(t, tab, "record=sw")
	off := seriesByName(t, tab, "record=offload")
	adaptive := seriesByName(t, tab, "record=adaptive")
	last := len(tab.Columns) - 1
	if off.Values[last] >= sw.Values[last] {
		t.Errorf("%s: offload %.0f ns/KB not below sw %.0f ns/KB",
			tab.Columns[last], off.Values[last], sw.Values[last])
	}
	if adaptive.Values[last] >= sw.Values[last] {
		t.Errorf("%s: adaptive %.0f ns/KB not below sw %.0f ns/KB",
			tab.Columns[last], adaptive.Values[last], sw.Values[last])
	}
	// 1 KB responses: always-offload pays for its submissions; adaptive
	// falls back to software and dodges that overhead.
	if off.Values[0] <= sw.Values[0] {
		t.Errorf("%s: offload %.0f ns/KB should exceed sw %.0f ns/KB (submit overhead)",
			tab.Columns[0], off.Values[0], sw.Values[0])
	}
	if adaptive.Values[0] >= off.Values[0] {
		t.Errorf("%s: adaptive %.0f ns/KB should undercut always-offload %.0f ns/KB",
			tab.Columns[0], adaptive.Values[0], off.Values[0])
	}
}
