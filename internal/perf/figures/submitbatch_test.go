//go:build linux

package figures

import (
	"strings"
	"testing"
)

// TestSubmitBatchFigure smoke-runs the live-stack submit-batching
// contrast and asserts the batched series routes its submissions through
// SubmitBatch (batch stats populated) at no loss of correctness (both
// variants complete connections).
func TestSubmitBatchFigure(t *testing.T) {
	tab := SubmitBatch(Quick())
	if tab.ID != "submitbatch" {
		t.Fatalf("ID = %q", tab.ID)
	}
	if len(tab.Columns) != 4 || len(tab.Series) != 2 {
		t.Fatalf("shape = %v / %d series", tab.Columns, len(tab.Series))
	}
	unbatched, batched := tab.Series[0], tab.Series[1]
	for _, s := range tab.Series {
		if len(s.Values) != 4 {
			t.Fatalf("%s: values = %v", s.Name, s.Values)
		}
		if s.Values[0] <= 0 {
			t.Errorf("%s: CPS = %v, want > 0", s.Name, s.Values[0])
		}
	}
	// Unbatched: exactly one doorbell per op, size-1 "batches" by
	// definition.
	if unbatched.Values[1] != 1 || unbatched.Values[2] != 1 || unbatched.Values[3] != 1 {
		t.Errorf("unbatched series not 1/1/1: %v", unbatched.Values)
	}
	// Batched: every op rides SubmitBatch, so doorbells/op <= 1 and the
	// batch stats are live.
	if batched.Values[1] <= 0 || batched.Values[1] > 1 {
		t.Errorf("batched doorbells/op = %v, want in (0, 1]", batched.Values[1])
	}
	if batched.Values[2] < 1 || batched.Values[3] < 1 {
		t.Errorf("batched batch stats empty: %v", batched.Values)
	}
	if !strings.Contains(tab.Format(), "QTLS+batch") {
		t.Fatal("formatted table missing batched series")
	}
}

// TestSubmitBatchRegistered asserts the figure is reachable through the
// extras registry.
func TestSubmitBatchRegistered(t *testing.T) {
	if _, ok := ByID("submitbatch"); !ok {
		t.Fatal("submitbatch not registered in ByID")
	}
	found := false
	for _, id := range IDs() {
		if id == "submitbatch" {
			found = true
		}
	}
	if !found {
		t.Fatalf("submitbatch missing from IDs(): %v", IDs())
	}
}
