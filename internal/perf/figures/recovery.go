package figures

import (
	"fmt"
	"time"

	"qtls/internal/perf"
)

// Recovery is the device kill → degrade → recover timeline: the DES
// counterpart of the live stack's lifecycle quarantine/probation cycle.
// 8 QTLS workers are conn-hashed across 2 shrunken devices on the
// resumption-heavy 1:9 mix; device 1's engine pools stall two buckets
// into the measured timeline (the kill) and un-stall four buckets in
// (probation re-admitting the device). Each column is one CPS bucket:
// the pre-fault plateau, the degraded valley where every offload crowds
// onto device 0, and the recovery back to the full-throughput plateau as
// per-submission routing returns home — the re-home-back behavior the
// chaos soak harness pins on the live stack.
func Recovery(o Opts) Table {
	o = o.withDefaults()
	bucket := o.Measure / 2
	const (
		preBuckets      = 2
		degradedBuckets = 2
		recovBuckets    = 2
		nBuckets        = preBuckets + degradedBuckets + recovBuckets
	)
	cfg := shardConfig(2)
	cfg.DegradeAt = o.Warmup + time.Duration(preBuckets)*bucket
	cfg.DegradeDevice = 1
	cfg.RecoverAt = o.Warmup + time.Duration(preBuckets+degradedBuckets)*bucket

	m := perf.NewModel(shardParams(), cfg, 1)
	perf.STimeWorkload{
		Clients:        320,
		Spec:           perf.ScriptSpec{Suite: perf.SuiteECDHERSA},
		ResumeFraction: 0.9,
	}.Install(m)

	t := Table{
		ID:     "recovery",
		Title:  "Device kill and recovery: QTLS 2xQAT conn-hash CPS timeline, full:abbrev = 1:9",
		XLabel: fmt.Sprintf("timeline bucket (%v each)", bucket),
		YLabel: "connections per second / reroutes",
		Notes: "device 1 stalls at the start of the 'kill' buckets and recovers at the start of " +
			"the 'recovered' buckets; offloads re-route onto device 0 while it is down (CPS dips " +
			"to roughly the single-device plateau) and return home once it answers again, " +
			"restoring full throughput — the DES mirror of quarantine, probation and re-homing",
	}
	labels := []string{"pre 1", "pre 2", "kill 1", "kill 2", "recovered 1", "recovered 2"}
	cps := Series{Name: "CPS"}
	rer := Series{Name: "reroutes"}
	// Warmup once, then measure back-to-back buckets; DegradeAt/RecoverAt
	// are absolute virtual times, so they fire at the bucket boundaries
	// computed above while the bucket loop is running.
	warmup := o.Warmup
	for i := 0; i < nBuckets; i++ {
		st := m.Run(warmup, bucket)
		warmup = 0
		t.Columns = append(t.Columns, labels[i])
		cps.Values = append(cps.Values, st.CPS(bucket))
		rer.Values = append(rer.Values, float64(st.Reroutes))
	}
	t.Series = []Series{cps, rer}
	return t
}
