package figures

import (
	"fmt"
	"time"

	"qtls/internal/perf"
)

// degradedQTLS returns QTLS with the first of the three endpoints
// stalled, per-op deadlines armed and an optional circuit breaker.
func degradedQTLS(workers, trip int) perf.Config {
	cfg := perf.QTLS(workers)
	cfg.Fault = &perf.FaultScenario{
		StalledEndpoints: 1,
		OpTimeout:        2 * time.Millisecond,
		TripThreshold:    trip,
	}
	return cfg
}

// Degraded is the fault-injection experiment added on top of the paper's
// evaluation: ECDHE-RSA full-handshake CPS when 1 of the 3 QAT endpoints
// stalls its asymmetric engines (the internal/fault "stall" scenario).
// Four series: healthy QTLS, degraded QTLS surviving on per-op deadlines
// alone, degraded QTLS with a circuit breaker routing the sick instance's
// ops straight to software, and the all-software baseline.
func Degraded(o Opts) Table {
	o = o.withDefaults()
	t := Table{
		ID:     "degraded",
		Title:  "Degraded device: ECDHE-RSA CPS with 1 of 3 endpoints stalled (2 ms op deadline)",
		XLabel: "Nginx workers (HT cores)",
		YLabel: "connections per second",
		Notes: "every handshake completes (graceful degradation); the sick workers' software " +
			"fallbacks serialize, so the closed loop throttles toward them — the breaker " +
			"removes the per-op deadline stall on top of that",
	}
	workerCounts := []int{3, 6, 9, 12}
	for _, w := range workerCounts {
		t.Columns = append(t.Columns, fmt.Sprintf("%dHT", w))
	}
	series := []struct {
		name string
		mk   func(int) perf.Config
	}{
		{"QTLS healthy", perf.QTLS},
		{"QTLS 1ep stalled", func(w int) perf.Config { return degradedQTLS(w, 0) }},
		{"QTLS stalled+brk", func(w int) perf.Config { return degradedQTLS(w, 4) }},
		{"SW", perf.SW},
	}
	spec := perf.ScriptSpec{Suite: perf.SuiteECDHERSA}
	for _, sr := range series {
		s := Series{Name: sr.name}
		for _, w := range workerCounts {
			oo := o
			if sr.name == "SW" {
				oo.Warmup = o.Warmup * 2 // slow baseline settles slowly
			}
			// A lighter closed loop than clientsFor: with a saturating
			// client pool the sick workers' FIFO queues advance every
			// trapped connection one operation per multi-hundred-ms
			// "wave", so no handshake completes inside a short window.
			s.Values = append(s.Values, runCPS(oo, sr.mk(w), spec, 12*w, 0))
		}
		t.Series = append(t.Series, s)
	}
	return t
}
