package figures

import (
	"fmt"

	"qtls/internal/offload"
	"qtls/internal/perf"
)

// KTLS contrasts the record-path modes on the model — the kTLS-style
// data-plane experiment the paper leaves unmeasured. Every series runs
// the QTLS handshake configuration; only the post-handshake record
// policy differs. The metric is worker-CPU nanoseconds per served
// kilobyte (lower is better): handing large-record seals to the
// accelerator's symmetric engines frees the worker core, while small
// records are cheaper to seal in place than to submit — which is why
// the adaptive series hugs the software line below the size threshold
// and the offload line above it.
func KTLS(o Opts) Table {
	o = o.withDefaults()
	t := Table{
		ID:     "ktls",
		Title:  "Record-path offload: worker CPU per served KB, QTLS handshake, 8 workers",
		XLabel: "response size (KB)",
		YLabel: "worker-CPU ns per KB",
		Notes: fmt.Sprintf("record=adaptive offloads records ≥ %d B (16 KB max plaintext per record);\n"+
			"  below the threshold it matches record=sw — submit overhead beats nothing on small seals",
			offload.DefaultRecordThreshold),
	}
	sizes := []int{1, 2, 4, 16, 64, 256, 1024}
	for _, kb := range sizes {
		t.Columns = append(t.Columns, fmt.Sprintf("%dKB", kb))
	}
	modes := []struct {
		name string
		pol  offload.RecordPolicy
	}{
		{"record=sw", offload.RecordPolicy{Mode: offload.RecordSoftware}},
		{"record=offload", offload.RecordPolicy{Mode: offload.RecordOffload}},
		{"record=adaptive", offload.RecordPolicy{Mode: offload.RecordAdaptive}},
	}
	for i := range modes {
		mode := modes[i]
		s := Series{Name: mode.name}
		for _, kb := range sizes {
			cfg := perf.QTLS(8)
			cfg.Record = &mode.pol
			res := perf.Run(perf.RunOptions{
				Config:  cfg,
				Warmup:  o.Warmup,
				Measure: o.Measure,
				Install: func(m *perf.Model) {
					perf.ABWorkload{Clients: 400, FileBytes: kb * 1024}.Install(m)
				},
			})
			s.Values = append(s.Values, res.Stats.CPUPerKB())
		}
		t.Series = append(t.Series, s)
	}
	return t
}
