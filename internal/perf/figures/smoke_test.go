package figures

import (
	"testing"
	"time"
)

// tiny returns sub-smoke durations: the values are statistically
// meaningless but every generator's full code path executes.
func tiny() Opts {
	return Opts{Warmup: 40 * time.Millisecond, Measure: 60 * time.Millisecond}
}

// Every figure generator runs end-to-end and produces a well-formed
// table with positive values where the model guarantees activity.
func TestAllGeneratorsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke sweep")
	}
	cases := []struct {
		id         string
		gen        func(Opts) Table
		wantSeries int
	}{
		{"fig7b", Fig7b, 5},
		{"fig7c", Fig7c, 5},
		{"fig8", Fig8, 5},
		{"fig9b", Fig9b, 5},
		{"fig11", Fig11, 4},
		{"fig12a", Fig12a, 3},
		{"fig12c", Fig12c, 3},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.id, func(t *testing.T) {
			tab := tc.gen(tiny())
			checkShape(t, tab, tc.wantSeries)
			if tab.ID != tc.id {
				t.Fatalf("ID = %q", tab.ID)
			}
			// The fastest configuration must show activity in every
			// column even at tiny scale.
			best := tab.Series[len(tab.Series)-1]
			for i, v := range best.Values {
				if v <= 0 {
					t.Fatalf("%s/%s col %s = %v", tc.id, best.Name, tab.Columns[i], v)
				}
			}
		})
	}
}
