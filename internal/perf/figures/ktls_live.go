//go:build linux

package figures

import (
	"fmt"
	"time"

	"qtls/internal/loadgen"
	"qtls/internal/minitls"
	"qtls/internal/offload"
	"qtls/internal/qat"
	"qtls/internal/server"
)

func init() { registerExtra("ktls-live", KTLSLive) }

// ktlsLiveRun drives bulk keepalive transfers of one response size
// through a live server whose record path runs in the given mode, and
// returns goodput, process CPU per KB, and the record engine's op split.
func ktlsLiveRun(o Opts, mode offload.RecordMode, sizeBytes int) (loadgen.BulkResult, server.RecordStats) {
	dev := qat.NewDevice(qat.DeviceSpec{
		Endpoints:          3,
		EnginesPerEndpoint: 4,
		RingCapacity:       128,
		SymBaseTime:        4 * time.Microsecond,
		SymPerKB:           time.Microsecond,
	})
	defer dev.Close()
	run := server.ConfigQTLS
	run.RecordMode = mode
	rsaID, _ := table1Identities()
	srv, err := server.New(server.Options{
		Addr:    "127.0.0.1:0",
		Workers: 2,
		Run:     run,
		TLS: &minitls.Config{
			Identity:     rsaID,
			CipherSuites: []uint16{minitls.TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA},
		},
		Device:  dev,
		Handler: server.SizedBodyHandler(4 << 20),
	})
	if err != nil {
		panic("ktls-live: " + err.Error())
	}
	srv.Start()
	res := loadgen.Bulk(loadgen.BulkOptions{
		Addr:     srv.Addr(),
		Clients:  8,
		Sizes:    []int{sizeBytes},
		Duration: o.Warmup + o.Measure,
	})
	srv.Stop()
	return res, srv.RecordStats()
}

// KTLSLive is the live-stack half of the ktls experiment: the same
// record-mode contrast measured end-to-end through real sockets, real
// minitls framing and the simulated symmetric instances. Because the
// accelerator's engines are in-process goroutines, process CPU includes
// their seal work — the worker-core separation is the DES ktls figure's
// story; this one proves the data plane functions under load and shows
// the adaptive policy splitting ops across the size threshold.
func KTLSLive(o Opts) Table {
	o = o.withDefaults()
	t := Table{
		ID:     "ktls-live",
		Title:  "Record-path offload, live stack: goodput and offload share by response size",
		XLabel: "response size / metric",
		YLabel: "Gbps, CPU ns per KB, offloaded share of record ops",
		Notes: fmt.Sprintf("offload share = offloaded ops / (offloaded + software) from the record engines;\n"+
			"  adaptive offloads records ≥ %d B. Process CPU includes the in-process engine goroutines.",
			offload.DefaultRecordThreshold),
	}
	sizes := []int{1 << 10, 16 << 10, 256 << 10}
	for _, sz := range sizes {
		kb := sz >> 10
		t.Columns = append(t.Columns,
			fmt.Sprintf("%dKB Gbps", kb),
			fmt.Sprintf("%dKB ns/KB", kb),
			fmt.Sprintf("%dKB off%%", kb),
		)
	}
	modes := []struct {
		name string
		mode offload.RecordMode
	}{
		{"record=sw", offload.RecordSoftware},
		{"record=offload", offload.RecordOffload},
		{"record=adaptive", offload.RecordAdaptive},
	}
	for _, m := range modes {
		s := Series{Name: m.name}
		for _, sz := range sizes {
			res, st := ktlsLiveRun(o, m.mode, sz)
			gbps := 0.0
			if res.Elapsed > 0 {
				gbps = float64(res.BytesIn) * 8 / res.Elapsed.Seconds() / 1e9
			}
			share := 0.0
			if tot := st.OffloadOps + st.SoftwareOps; tot > 0 {
				share = 100 * float64(st.OffloadOps) / float64(tot)
			}
			s.Values = append(s.Values, gbps, res.CPUPerKB(), share)
		}
		t.Series = append(t.Series, s)
	}
	return t
}
