//go:build linux

package figures

import "testing"

// TestAdaptiveLiveFigure smoke-runs the live feedback loop: both
// schemes serve handshakes and produce a retrieve distribution, the
// static run keeps the paper thresholds, and the adaptive run's final
// thresholds stay inside the default clamps. Whether the controller
// moves in the short smoke window is load-dependent, so convergence
// itself is the DES adaptive figure's claim, not this test's.
func TestAdaptiveLiveFigure(t *testing.T) {
	tab := AdaptiveLive(Quick())
	if tab.ID != "adaptive-live" {
		t.Fatalf("ID = %q", tab.ID)
	}
	checkShape(t, tab, 2)
	static := seriesByName(t, tab, "static 48/24")
	adaptive := seriesByName(t, tab, "adaptive")
	for _, s := range []Series{static, adaptive} {
		if s.Values[0] <= 0 {
			t.Errorf("%s: no connections completed", s.Name)
		}
		if s.Values[1] <= 0 {
			t.Errorf("%s: empty retrieve window", s.Name)
		}
	}
	if static.Values[2] != 48 || static.Values[3] != 24 {
		t.Errorf("static thresholds moved: %v/%v", static.Values[2], static.Values[3])
	}
	if a := adaptive.Values[2]; a < 4 || a > 192 {
		t.Errorf("adaptive final asym %v outside clamps", a)
	}
	if s := adaptive.Values[3]; s < 2 || s > 96 {
		t.Errorf("adaptive final sym %v outside clamps", s)
	}
}
