package figures

import (
	"math"
	"testing"

	"qtls/internal/offload"
)

// The tentpole acceptance claim: on the 10x-asym mix — where the static
// 48/24 scheme degenerates to failover-paced polling because in-flight
// counts never reach 48 — the controller must end with its windowed
// retrieve p99 at least 20% closer to the best static scheme than the
// static default gets, having walked the asym threshold down from 48.
func TestAdaptiveConvergesOn10xAsym(t *testing.T) {
	o := Quick()
	mix := adaptiveMixes()[2]
	if mix.name != "10x-asym" {
		t.Fatalf("mix order changed: %q", mix.name)
	}
	def := runAdaptiveMix(o, mix, 0, 0, nil)
	bestA, best := bestStaticAdaptive(o, mix)
	ad := runAdaptiveMix(o, mix, 0, 0, adaptiveDESConfig())

	if ad.Stats.ThresholdAdjusts == 0 {
		t.Fatal("controller made no moves")
	}
	if ad.Stats.FinalAsymThreshold >= offload.DefaultAsymThreshold {
		t.Fatalf("final asym threshold %d did not walk below %d",
			ad.Stats.FinalAsymThreshold, offload.DefaultAsymThreshold)
	}
	gapStatic := math.Abs(def.Stats.RetrieveP99 - best.Stats.RetrieveP99)
	gapAdaptive := math.Abs(ad.Stats.RetrieveP99 - best.Stats.RetrieveP99)
	if gapAdaptive > 0.8*gapStatic {
		t.Fatalf("adaptive p99 %.3fms is not ≥20%% closer to best static (asym=%d, %.3fms) than the default (%.3fms): gaps %.3f vs %.3f ms",
			ad.Stats.RetrieveP99/1e6, bestA, best.Stats.RetrieveP99/1e6, def.Stats.RetrieveP99/1e6,
			gapAdaptive/1e6, gapStatic/1e6)
	}
}

func TestAdaptiveFigureShape(t *testing.T) {
	tab := Adaptive(Quick())
	checkShape(t, tab, 6)
	if len(tab.Columns) != 3 || tab.Columns[2] != "10x-asym" {
		t.Fatalf("columns = %v", tab.Columns)
	}
	static := seriesByName(t, tab, "static 48/24 p99")
	adapt := seriesByName(t, tab, "adaptive p99")
	// Every run must have produced a retrieve distribution.
	for i := range tab.Columns {
		if static.Values[i] <= 0 || adapt.Values[i] <= 0 {
			t.Fatalf("col %s: empty retrieve window: static %.3f adaptive %.3f",
				tab.Columns[i], static.Values[i], adapt.Values[i])
		}
	}
	// On the PQ-scale mix the controller must beat the miscalibrated
	// static default outright.
	if adapt.Values[2] >= static.Values[2] {
		t.Fatalf("10x-asym: adaptive p99 %.3fms not below static default %.3fms",
			adapt.Values[2], static.Values[2])
	}
}
