//go:build linux

package figures

import "testing"

// TestKTLSLiveFigure smoke-runs the live-stack record-path contrast:
// every mode moves real bytes, and the offload share splits with the
// size threshold — zero in software mode, full for always-offload, and
// size-dependent for adaptive.
func TestKTLSLiveFigure(t *testing.T) {
	tab := KTLSLive(Quick())
	if tab.ID != "ktls-live" {
		t.Fatalf("ID = %q", tab.ID)
	}
	checkShape(t, tab, 3)
	sw := seriesByName(t, tab, "record=sw")
	off := seriesByName(t, tab, "record=offload")
	adaptive := seriesByName(t, tab, "record=adaptive")
	// Columns come in (Gbps, ns/KB, off%) triples per size.
	for i := 0; i < len(tab.Columns); i += 3 {
		for _, s := range tab.Series {
			if s.Values[i] <= 0 {
				t.Errorf("%s %s: no goodput", s.Name, tab.Columns[i])
			}
		}
		if v := sw.Values[i+2]; v != 0 {
			t.Errorf("sw %s: offload share %.0f%%, want 0", tab.Columns[i+2], v)
		}
		if v := off.Values[i+2]; v < 90 {
			t.Errorf("offload %s: offload share %.0f%%, want ~100", tab.Columns[i+2], v)
		}
	}
	// Adaptive: 1 KB records stay below the threshold (share 0). At
	// 16 KB each request is one software-sealed response header plus one
	// offloaded body record (~50%); at 256 KB the sixteen body records
	// dominate the header.
	if v := adaptive.Values[2]; v != 0 {
		t.Errorf("adaptive 1KB: offload share %.0f%%, want 0", v)
	}
	if v := adaptive.Values[5]; v < 25 {
		t.Errorf("adaptive 16KB: offload share %.0f%%, want ~50", v)
	}
	if v := adaptive.Values[8]; v < 80 {
		t.Errorf("adaptive 256KB: offload share %.0f%%, want ~94", v)
	}
}
