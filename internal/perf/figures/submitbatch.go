//go:build linux

package figures

import (
	"qtls/internal/loadgen"
	"qtls/internal/minitls"
	"qtls/internal/qat"
	"qtls/internal/server"
)

func init() { registerExtra("submitbatch", SubmitBatch) }

// submitBatchRun drives live ECDHE-RSA handshakes through one QTLS
// variant and returns the measured CPS plus the summed per-instance
// submit counters, which carry the doorbell-amortization story.
func submitBatchRun(o Opts, run server.RunConfig) (float64, qat.InstanceStats) {
	dev := qat.NewDevice(qat.DeviceSpec{Endpoints: 3, EnginesPerEndpoint: 4, RingCapacity: 128})
	defer dev.Close()
	rsaID, _ := table1Identities()
	srv, err := server.New(server.Options{
		Addr:    "127.0.0.1:0",
		Workers: 2,
		Run:     run,
		TLS: &minitls.Config{
			Identity:     rsaID,
			CipherSuites: []uint16{minitls.TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA},
		},
		Device:  dev,
		Handler: server.SizedBodyHandler(1 << 20),
	})
	if err != nil {
		panic("submitbatch: " + err.Error())
	}
	srv.Start()
	defer srv.Stop()
	res := loadgen.STime(loadgen.STimeOptions{
		Addr:           srv.Addr(),
		Clients:        16,
		Duration:       o.Warmup + o.Measure,
		RequestPath:    "/2048",
		MaxConnections: 4096,
	})
	var st qat.InstanceStats
	for _, w := range srv.Workers() {
		if w.Engine() == nil {
			continue
		}
		for _, inst := range w.Engine().Instances() {
			is := inst.Stats()
			st.Submits += is.Submits
			st.Doorbells += is.Doorbells
			st.SubmitBatches += is.SubmitBatches
			st.BatchSubmitted += is.BatchSubmitted
			if is.MaxSubmitBatch > st.MaxSubmitBatch {
				st.MaxSubmitBatch = is.MaxSubmitBatch
			}
		}
	}
	return res.CPS(), st
}

// SubmitBatch contrasts QTLS with and without the submit coalescer on
// the live stack: connections per second plus the ring-doorbell cost per
// submitted op. The batched run amortizes the ring lock and doorbell
// across the ops gathered within one event-loop iteration (the
// submit-side dual of the §3.3 polling heuristic), so its doorbells/op
// falls below 1 whenever concurrent handshakes coalesce.
func SubmitBatch(o Opts) Table {
	o = o.withDefaults()
	batched := server.ConfigQTLS
	batched.Name = "QTLS+batch"
	batched.CoalesceSubmits = true
	t := Table{
		ID:     "submitbatch",
		Title:  "Submit batching: doorbell amortization (live stack)",
		XLabel: "metric",
		YLabel: "CPS / doorbells per op / batch size",
		Columns: []string{
			"CPS", "doorbells/op", "batch mean", "batch max",
		},
		Notes: "doorbells/op = ring-lock acquisitions per submitted op (1.0 without batching).\n" +
			"  Batch mean/max are SubmitBatch sizes; the unbatched path submits one op per doorbell.",
	}
	for _, run := range []server.RunConfig{server.ConfigQTLS, batched} {
		cps, st := submitBatchRun(o, run)
		perOp, mean, max := 1.0, 1.0, 1.0
		if st.Submits > 0 {
			perOp = float64(st.Doorbells) / float64(st.Submits)
		}
		if st.SubmitBatches > 0 {
			mean = float64(st.BatchSubmitted) / float64(st.SubmitBatches)
			max = float64(st.MaxSubmitBatch)
		}
		t.Series = append(t.Series, Series{
			Name:   run.Name,
			Values: []float64{cps, perOp, mean, max},
		})
	}
	return t
}
