package figures

import (
	"fmt"
	"time"

	"qtls/internal/perf"
)

// NotifyParity is not a paper figure: it is the refactoring guard for the
// offload-policy seam. It runs the five named configurations (SW, QAT+S,
// QAT+A, QAT+AH, QTLS) through a fixed-seed handshake sweep and a
// fixed-seed keepalive transfer sweep and tabulates throughput plus the
// scheduler counters that would move if poll ordering, notification
// delivery order, or per-event costs drifted.
//
// The DES is deterministic for a given seed, so this table is
// byte-stable: TestNotifierByteParity regenerates it and compares the
// CSV rendering against testdata/notify_parity.golden, which was
// captured before the Notifier enum became the Notifier interface. Any
// behavioral drift in the static schemes — a reordered delivery, an
// extra poll, a cost charged twice — shows up as a byte diff here.
//
// Durations are literal (not Quick()) so the golden cannot be
// invalidated by unrelated changes to the shared smoke options.
func NotifyParity() Table {
	const (
		warmup  = 150 * time.Millisecond
		measure = 200 * time.Millisecond
		workers = 2
	)
	t := Table{
		ID:     "notify-parity",
		Title:  "Notifier refactoring guard: fixed-seed DES counters, five configurations",
		XLabel: "configuration",
		YLabel: "CPS / Gbps / scheduler counters",
		Notes:  "byte-stable for a fixed seed: regenerating this table must be a no-op across notifier and poll-policy refactors",
	}
	rows := []string{
		"hs cps", "hs p99 ms", "hs polls", "hs empty polls", "hs failover polls", "hs notifications",
		"ab gbps", "ab polls", "ab notifications",
	}
	vals := make(map[string][]float64, len(rows))
	for _, mk := range []func(int) perf.Config{perf.SW, perf.QATS, perf.QATA, perf.QATAH, perf.QTLS} {
		cfg := mk(workers)
		t.Columns = append(t.Columns, cfg.Name)
		hs := perf.Run(perf.RunOptions{
			Config:  cfg,
			Warmup:  warmup,
			Measure: measure,
			Install: func(m *perf.Model) {
				perf.STimeWorkload{Clients: clientsFor(workers), Spec: perf.ScriptSpec{Suite: perf.SuiteRSA}}.Install(m)
			},
		})
		ab := perf.Run(perf.RunOptions{
			Config:  cfg,
			Warmup:  warmup,
			Measure: measure,
			Install: func(m *perf.Model) {
				perf.ABWorkload{Clients: 100, FileBytes: 64 * 1024}.Install(m)
			},
		})
		vals["hs cps"] = append(vals["hs cps"], hs.CPS)
		vals["hs p99 ms"] = append(vals["hs p99 ms"], float64(hs.P99Latency)/float64(time.Millisecond))
		vals["hs polls"] = append(vals["hs polls"], float64(hs.Stats.Polls))
		vals["hs empty polls"] = append(vals["hs empty polls"], float64(hs.Stats.EmptyPolls))
		vals["hs failover polls"] = append(vals["hs failover polls"], float64(hs.Stats.FailoverPolls))
		vals["hs notifications"] = append(vals["hs notifications"], float64(hs.Stats.Notifications))
		vals["ab gbps"] = append(vals["ab gbps"], ab.Gbps)
		vals["ab polls"] = append(vals["ab polls"], float64(ab.Stats.Polls))
		vals["ab notifications"] = append(vals["ab notifications"], float64(ab.Stats.Notifications))
	}
	for _, r := range rows {
		t.Series = append(t.Series, Series{Name: r, Values: vals[r]})
	}
	if len(t.Series) != len(rows) {
		panic(fmt.Sprintf("notify-parity: %d series, want %d", len(t.Series), len(rows)))
	}
	return t
}
