package figures

import (
	"os"
	"path/filepath"
	"testing"
)

const notifyParityGolden = "testdata/notify_parity.golden"

// TestNotifierByteParity proves the five named configurations still
// produce byte-identical DES output after the Notifier enum became the
// Notifier interface (and after any later poll-policy refactor): the
// golden file was generated from the pre-interface model, and the
// fixed-seed regeneration must match it byte for byte.
//
// Regenerate deliberately (after an intentional model change) with:
//
//	QTLS_UPDATE_GOLDEN=1 go test ./internal/perf/figures/ -run TestNotifierByteParity
func TestNotifierByteParity(t *testing.T) {
	got := NotifyParity().CSV()
	if os.Getenv("QTLS_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(notifyParityGolden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(notifyParityGolden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s (%d bytes)", notifyParityGolden, len(got))
		return
	}
	want, err := os.ReadFile(notifyParityGolden)
	if err != nil {
		t.Fatalf("read golden: %v (generate with QTLS_UPDATE_GOLDEN=1)", err)
	}
	if got != string(want) {
		t.Errorf("notify-parity output drifted from the pre-refactor golden\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
