package figures

import (
	"strings"
	"testing"
)

func seriesByName(t *testing.T, tab Table, name string) Series {
	t.Helper()
	for _, s := range tab.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("%s: no series %q", tab.ID, name)
	return Series{}
}

func checkShape(t *testing.T, tab Table, wantSeries int) {
	t.Helper()
	if len(tab.Series) != wantSeries {
		t.Fatalf("%s: %d series, want %d", tab.ID, len(tab.Series), wantSeries)
	}
	for _, s := range tab.Series {
		if len(s.Values) != len(tab.Columns) {
			t.Fatalf("%s/%s: %d values for %d columns", tab.ID, s.Name, len(s.Values), len(tab.Columns))
		}
	}
	out := tab.Format()
	if !strings.Contains(out, tab.ID) || !strings.Contains(out, tab.Columns[0]) {
		t.Fatalf("%s: Format output incomplete:\n%s", tab.ID, out)
	}
}

// Table 1 must match the paper exactly — it is measured on the real
// minitls stack.
func TestTable1MatchesPaper(t *testing.T) {
	tab := Table1()
	checkShape(t, tab, 4)
	want := map[string][2]float64{ // RSA, ECC (PRF/HKDF checked separately)
		"1.2 TLS-RSA":     {1, 0},
		"1.2 ECDHE-RSA":   {1, 2},
		"1.2 ECDHE-ECDSA": {0, 3},
		"1.3 ECDHE-RSA":   {1, 2},
	}
	for name, w := range want {
		s := seriesByName(t, tab, name)
		if s.Values[0] != w[0] || s.Values[1] != w[1] {
			t.Fatalf("%s: RSA/ECC = %v/%v, want %v/%v", name, s.Values[0], s.Values[1], w[0], w[1])
		}
	}
	// PRF/HKDF: exactly 4 for the 1.2 rows, > 4 for the 1.3 row.
	for _, name := range []string{"1.2 TLS-RSA", "1.2 ECDHE-RSA", "1.2 ECDHE-ECDSA"} {
		if v := seriesByName(t, tab, name).Values[2]; v != 4 {
			t.Fatalf("%s: PRF = %v, want 4", name, v)
		}
	}
	if v := seriesByName(t, tab, "1.3 ECDHE-RSA").Values[2]; v <= 4 {
		t.Fatalf("1.3: HKDF = %v, want > 4", v)
	}
}

func TestFig7aShape(t *testing.T) {
	tab := Fig7a(Quick())
	checkShape(t, tab, 5)
	sw := seriesByName(t, tab, "SW")
	qtls := seriesByName(t, tab, "QTLS")
	// QTLS dominates SW at every worker count; the 8HT speedup is large
	// (paper: 9x).
	for i := range sw.Values {
		if qtls.Values[i] <= sw.Values[i] {
			t.Fatalf("col %s: QTLS %.0f <= SW %.0f", tab.Columns[i], qtls.Values[i], sw.Values[i])
		}
	}
	if ratio := qtls.Values[2] / sw.Values[2]; ratio < 6 {
		t.Fatalf("8HT QTLS/SW = %.1fx, want large (paper 9x)", ratio)
	}
}

func TestFig9aShape(t *testing.T) {
	tab := Fig9a(Quick())
	checkShape(t, tab, 5)
	sw := seriesByName(t, tab, "SW")
	qs := seriesByName(t, tab, "QAT+S")
	qtls := seriesByName(t, tab, "QTLS")
	mid := 2 // 8 workers column
	if qs.Values[mid] >= sw.Values[mid] {
		t.Fatalf("QAT+S %.0f should lose to SW %.0f on abbreviated handshakes", qs.Values[mid], sw.Values[mid])
	}
	gain := qtls.Values[mid]/sw.Values[mid] - 1
	if gain < 0.15 || gain > 0.8 {
		t.Fatalf("QTLS gain %.0f%%, paper says 30-40%%", gain*100)
	}
}

func TestFig10Shape(t *testing.T) {
	tab := Fig10(Quick())
	checkShape(t, tab, 5)
	sw := seriesByName(t, tab, "SW")
	qtls := seriesByName(t, tab, "QTLS")
	// 128KB column index 4: QTLS ≈ 2x SW.
	if qtls.Values[4] < 1.6*sw.Values[4] {
		t.Fatalf("128KB: QTLS %.1f vs SW %.1f, want ~2x", qtls.Values[4], sw.Values[4])
	}
	// Throughput grows with file size for QTLS.
	if qtls.Values[0] >= qtls.Values[4] {
		t.Fatalf("QTLS throughput should grow with file size: %v", qtls.Values)
	}
}

func TestFig12bShape(t *testing.T) {
	tab := Fig12b(Quick())
	checkShape(t, tab, 3)
	slow := seriesByName(t, tab, "1ms")
	heur := seriesByName(t, tab, "Heuristic")
	// 1ms polling collapses at 16 clients, converges by 512.
	if slow.Values[0] > heur.Values[0]/2 {
		t.Fatalf("1ms at 16 clients %.1f should collapse vs heuristic %.1f", slow.Values[0], heur.Values[0])
	}
	last := len(slow.Values) - 1
	if slow.Values[last] < 0.7*heur.Values[last] {
		t.Fatalf("1ms should converge at 512 clients: %.1f vs %.1f", slow.Values[last], heur.Values[last])
	}
}

func TestByIDAndIDs(t *testing.T) {
	ids := IDs()
	if want := 20 + len(extraIDs); len(ids) != want {
		t.Fatalf("want %d experiments (1 table + 11 figures + degraded + overload + ktls + blackbox + adaptive + notify-parity + shard + recovery + %d extras), got %d",
			want, len(extraIDs), len(ids))
	}
	for _, id := range ids {
		if _, ok := ByID(id); !ok {
			t.Fatalf("ByID(%q) missing", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id resolved")
	}
}

func TestFormatValues(t *testing.T) {
	cases := map[float64]string{0: "0", 5.5: "5.50", 42: "42", 1234: "1.2K"}
	for v, want := range cases {
		if got := formatValue(v); got != want {
			t.Fatalf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := Table{
		ID:      "x",
		Columns: []string{"a", "b"},
		Series:  []Series{{Name: "s1", Values: []float64{1, 2.5}}},
	}
	want := "series,a,b\ns1,1,2.5\n"
	if got := tab.CSV(); got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestDegradedShape(t *testing.T) {
	tab := Degraded(Quick())
	checkShape(t, tab, 4)
	healthy := seriesByName(t, tab, "QTLS healthy")
	stalled := seriesByName(t, tab, "QTLS 1ep stalled")
	breaker := seriesByName(t, tab, "QTLS stalled+brk")
	for i := range tab.Columns {
		// Graceful degradation: the stalled runs keep completing
		// handshakes but never beat the healthy device.
		if stalled.Values[i] <= 0 || breaker.Values[i] <= 0 {
			t.Fatalf("col %s: degraded CPS zero: %v / %v", tab.Columns[i], stalled.Values, breaker.Values)
		}
		if stalled.Values[i] >= healthy.Values[i] {
			t.Fatalf("col %s: stalled %.0f not below healthy %.0f", tab.Columns[i], stalled.Values[i], healthy.Values[i])
		}
	}
}
