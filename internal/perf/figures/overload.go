package figures

import (
	"fmt"
	"time"

	"qtls/internal/offload"
	"qtls/internal/perf"
)

// overloadQTLS returns QTLS with the first endpoint's asymmetric engines
// stalled (so in-flight offloads pile up against the ring capacity) and,
// optionally, admission control armed.
func overloadQTLS(workers int, shed bool) perf.Config {
	cfg := perf.QTLS(workers)
	cfg.Fault = &perf.FaultScenario{
		StalledEndpoints: 1,
		OpTimeout:        2 * time.Millisecond,
	}
	if shed {
		// The DES has no retrieval lag, so in-flight counts stay low even
		// under congestion; the per-worker connection cap is the pressure
		// signal that fires here. 24 ≈ the conns a healthy worker keeps
		// live at this load; the sick workers pile up far past it.
		cfg.Overload = &offload.OverloadPolicy{MaxConns: 24, ShedFraction: 0.4}
	}
	return cfg
}

// Overload is the admission-control experiment: ECDHE-RSA CPS and p99
// connection latency for a partially stalled device under a saturating
// client pool, with and without accept-time shedding. Shedding trades
// rejected connections (counted per second in the last series) for a
// bounded p99 on the connections it does admit: without it, every
// arriving connection queues behind the sick workers' deadline stalls.
func Overload(o Opts) Table {
	o = o.withDefaults()
	t := Table{
		ID:     "overload",
		Title:  "Admission control under overload: QTLS, 1 of 3 endpoints stalled (2 ms op deadline)",
		XLabel: "Nginx workers (HT cores)",
		YLabel: "CPS / p99 ms / sheds per second",
		Notes: "shed = offload.OverloadPolicy{MaxConns: 24, ShedFraction: 0.4} (accept-time TCP " +
			"reset past the per-worker conn cap or ring pressure); a shed client retries on the " +
			"next worker at zero cost in the DES, so sheds/s is the retry storm the reset " +
			"absorbs while the admitted connections' p99 stays bounded",
	}
	workerCounts := []int{3, 6, 9}
	for _, w := range workerCounts {
		t.Columns = append(t.Columns, fmt.Sprintf("%dHT", w))
	}
	type cell struct{ cps, p99ms, sheds float64 }
	run := func(w int, shed bool) cell {
		res := perf.Run(perf.RunOptions{
			Config:  overloadQTLS(w, shed),
			Warmup:  o.Warmup,
			Measure: o.Measure,
			Install: func(m *perf.Model) {
				// Saturating pool: the sick endpoint's workers accumulate
				// nearly every closed-loop conn, so their in-flight count
				// climbs to the ring capacity and crosses the shed fraction.
				spec := perf.ScriptSpec{Suite: perf.SuiteECDHERSA}
				perf.STimeWorkload{Clients: 40 * w, Spec: spec}.Install(m)
			},
		})
		return cell{
			cps:   res.CPS,
			p99ms: float64(res.P99Latency) / float64(time.Millisecond),
			sheds: float64(res.Stats.Sheds) / o.Measure.Seconds(),
		}
	}
	var plain, shed []cell
	for _, w := range workerCounts {
		plain = append(plain, run(w, false))
		shed = append(shed, run(w, true))
	}
	pick := func(cells []cell, f func(cell) float64) []float64 {
		out := make([]float64, len(cells))
		for i, c := range cells {
			out[i] = f(c)
		}
		return out
	}
	t.Series = []Series{
		{Name: "CPS no-shed", Values: pick(plain, func(c cell) float64 { return c.cps })},
		{Name: "CPS shed", Values: pick(shed, func(c cell) float64 { return c.cps })},
		{Name: "p99ms no-shed", Values: pick(plain, func(c cell) float64 { return c.p99ms })},
		{Name: "p99ms shed", Values: pick(shed, func(c cell) float64 { return c.p99ms })},
		{Name: "sheds/s", Values: pick(shed, func(c cell) float64 { return c.sheds })},
	}
	return t
}
