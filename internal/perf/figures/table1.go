package figures

import (
	"crypto/elliptic"
	"net"
	"sync"

	"qtls/internal/minitls"
)

// Table 1 is reproduced on the *functional* stack, not the model: real
// handshakes run through internal/minitls with an operation counter, and
// the counted server-side RSA / ECC / PRF-HKDF operations are reported.

var (
	t1Once  sync.Once
	t1RSA   *minitls.Identity
	t1ECDSA *minitls.Identity
)

func table1Identities() (*minitls.Identity, *minitls.Identity) {
	t1Once.Do(func() {
		var err error
		if t1RSA, err = minitls.NewRSAIdentity(2048); err != nil {
			panic(err)
		}
		if t1ECDSA, err = minitls.NewECDSAIdentity(elliptic.P256()); err != nil {
			panic(err)
		}
	})
	return t1RSA, t1ECDSA
}

// countHandshakeOps runs one full handshake and returns the server's
// Table-1 row (RSA, ECC, PRF/HKDF operation counts).
func countHandshakeOps(serverCfg, clientCfg *minitls.Config) (rsaN, ecc, kdf int64) {
	var ops minitls.OpCounts
	serverCfg.OpCounter = &ops
	cliT, srvT := net.Pipe()
	defer cliT.Close()
	defer srvT.Close()
	server := minitls.Server(srvT, serverCfg)
	client := minitls.ClientConn(cliT, clientCfg)
	errc := make(chan error, 1)
	go func() { errc <- client.Handshake() }()
	if err := server.Handshake(); err != nil {
		panic("table1: server handshake: " + err.Error())
	}
	if err := <-errc; err != nil {
		panic("table1: client handshake: " + err.Error())
	}
	return ops.Table1Row()
}

// Table1 reproduces "Table 1: Server-side crypto operations for full
// handshake" by counting real operations in the minitls stack.
func Table1() Table {
	rsaID, ecdsaID := table1Identities()
	rows := []struct {
		name      string
		serverCfg *minitls.Config
		clientCfg *minitls.Config
	}{
		{"1.2 TLS-RSA", &minitls.Config{
			Identity:     rsaID,
			CipherSuites: []uint16{minitls.TLS_RSA_WITH_AES_128_CBC_SHA},
		}, &minitls.Config{}},
		{"1.2 ECDHE-RSA", &minitls.Config{
			Identity:     rsaID,
			CipherSuites: []uint16{minitls.TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA},
		}, &minitls.Config{}},
		{"1.2 ECDHE-ECDSA", &minitls.Config{
			Identity:     ecdsaID,
			CipherSuites: []uint16{minitls.TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA},
		}, &minitls.Config{}},
		{"1.3 ECDHE-RSA", &minitls.Config{
			Identity:   rsaID,
			MaxVersion: minitls.VersionTLS13,
		}, &minitls.Config{MaxVersion: minitls.VersionTLS13}},
	}
	t := Table{
		ID:      "table1",
		Title:   "Server-side crypto operations for full handshake (measured on the minitls stack)",
		XLabel:  "operation type",
		YLabel:  "operations per handshake",
		Columns: []string{"RSA", "ECC", "PRF/HKDF"},
		Notes:   "paper: TLS-RSA 1/0/4; ECDHE-RSA 1/2/4; ECDHE-ECDSA 0/3/4; 1.3 ECDHE-RSA 1/2/>4",
	}
	for _, r := range rows {
		rsaN, ecc, kdf := countHandshakeOps(r.serverCfg, r.clientCfg)
		t.Series = append(t.Series, Series{
			Name:   r.name,
			Values: []float64{float64(rsaN), float64(ecc), float64(kdf)},
		})
	}
	return t
}
