package figures

import (
	"testing"
	"time"
)

// TestShardScaling pins the headline claim of the placement layer: on a
// resumption-heavy mix where one device is the bottleneck, hashing the
// same workers across two devices buys at least 1.7x CPS, and four
// devices keep climbing until worker CPU takes over.
func TestShardScaling(t *testing.T) {
	o := Quick()
	one := shardRun(o, 1, -1)
	two := shardRun(o, 2, -1)
	four := shardRun(o, 4, -1)
	if one.CPS <= 0 {
		t.Fatalf("1-device run produced no handshakes: %+v", one.Stats)
	}
	if ratio := two.CPS / one.CPS; ratio < 1.7 {
		t.Fatalf("2-device scaling %.2fx (%.0f -> %.0f CPS), want >= 1.7x",
			ratio, one.CPS, two.CPS)
	}
	if four.CPS <= two.CPS {
		t.Fatalf("4 devices (%.0f CPS) should beat 2 (%.0f CPS)", four.CPS, two.CPS)
	}
}

// TestShardDegradedReroutes stalls device 1 of 2 a third into the
// measurement window: the conn-hashed workers homed there must re-route
// onto device 0 — handshakes keep completing, nothing times out, and the
// closed loop's p99 stays bounded by queueing on the surviving device.
func TestShardDegradedReroutes(t *testing.T) {
	o := Quick()
	res := shardRun(o, 2, 1)
	st := res.Stats
	if st.Handshakes == 0 {
		t.Fatal("no handshakes completed under mid-run degradation")
	}
	if st.Timeouts != 0 {
		t.Fatalf("%d offload timeouts; re-routing should avoid the stalled device", st.Timeouts)
	}
	if st.Reroutes == 0 {
		t.Fatal("device 1 stalled but no offloads were re-routed")
	}
	if res.P99Latency > 250*time.Millisecond {
		t.Fatalf("p99 %v unbounded after degradation", res.P99Latency)
	}
}

func TestShardShape(t *testing.T) {
	tab := Shard(Quick())
	checkShape(t, tab, 3)
	cps := seriesByName(t, tab, "CPS")
	rer := seriesByName(t, tab, "reroutes")
	if cps.Values[1] < 1.7*cps.Values[0] {
		t.Fatalf("table 2-device column %.0f < 1.7x of %.0f", cps.Values[1], cps.Values[0])
	}
	for i, v := range rer.Values[:3] {
		if v != 0 {
			t.Fatalf("healthy column %s rerouted %v ops", tab.Columns[i], v)
		}
	}
	if rer.Values[3] == 0 {
		t.Fatal("degraded column recorded no reroutes")
	}
}
