package figures

import "testing"

// TestRecoveryShape pins the kill → degrade → recover timeline of the
// recovery figure: the pre-fault plateau, a degraded valley while device
// 1 is stalled (every offload re-routed onto device 0), and CPS back
// within 10% of the pre-fault plateau once the device recovers — the DES
// counterpart of the chaos soak's full-CPS-recovery invariant.
func TestRecoveryShape(t *testing.T) {
	tab := Recovery(Quick())
	checkShape(t, tab, 2)
	cps := seriesByName(t, tab, "CPS")
	rer := seriesByName(t, tab, "reroutes")

	pre := (cps.Values[0] + cps.Values[1]) / 2
	if pre <= 0 {
		t.Fatalf("pre-fault buckets completed no handshakes: %v", cps.Values)
	}
	// The kill buckets lose the dead device's capacity: the device is the
	// bottleneck in this rig, so CPS must drop visibly below the plateau.
	degraded := cps.Values[3] // second kill bucket: past the transient
	if degraded >= 0.9*pre {
		t.Fatalf("degraded bucket %.0f CPS not below pre-fault plateau %.0f", degraded, pre)
	}
	// Offloads homed on the dead device must re-route, not vanish: the
	// kill buckets record reroutes, the pre-fault buckets none.
	if rer.Values[0] != 0 || rer.Values[1] != 0 {
		t.Fatalf("pre-fault buckets rerouted ops: %v", rer.Values)
	}
	if rer.Values[2] == 0 && rer.Values[3] == 0 {
		t.Fatal("kill buckets recorded no reroutes")
	}
	// Full recovery: the final bucket is back within 10% of the pre-fault
	// plateau (the acceptance bar the live chaos soak uses too).
	final := cps.Values[5]
	if final < 0.9*pre {
		t.Fatalf("recovered bucket %.0f CPS below 90%% of pre-fault plateau %.0f", final, pre)
	}
}
