package figures

import (
	"strings"
	"testing"
)

// TestBlackboxShape runs the deterministic flight-telemetry figure and
// pins its headline asymmetry: the windowed p99 crosses the SLO within
// seconds of incident onset and forgets once the incident leaves the
// window, while the lifetime p99 never reacts at all.
func TestBlackboxShape(t *testing.T) {
	tab := Blackbox(Quick())
	checkShape(t, tab, 4)
	win := seriesByName(t, tab, "w60s p99")
	life := seriesByName(t, tab, "all-time p99")
	trig := seriesByName(t, tab, "slo trigger")

	col := func(name string) int {
		for i, c := range tab.Columns {
			if c == name {
				return i
			}
		}
		t.Fatalf("no column %q in %v", name, tab.Columns)
		return -1
	}
	const sloMs = 5.0

	// Healthy before onset: both planes agree, well under the SLO.
	for _, c := range []string{"-60s", "-5s"} {
		i := col(c)
		if win.Values[i] >= sloMs || trig.Values[i] != 0 {
			t.Errorf("%s: windowed p99 %.2f ms already over the %g ms SLO", c, win.Values[i], sloMs)
		}
	}
	// Detection: the trigger is armed within ten seconds of onset and
	// stays armed through the incident.
	for _, c := range []string{"+10s", "+20s", "+30s"} {
		i := col(c)
		if win.Values[i] <= sloMs || trig.Values[i] != 1 {
			t.Errorf("%s: windowed p99 %.2f ms did not cross the %g ms SLO", c, win.Values[i], sloMs)
		}
	}
	// Forgetting: one window span after the incident ends, the windowed
	// p99 is back under the SLO.
	if i := col("+95s"); win.Values[i] >= sloMs || trig.Values[i] != 0 {
		t.Errorf("+95s: windowed p99 %.2f ms has not recovered below %g ms", win.Values[i], sloMs)
	}
	// The lifetime histogram never moves: its p99 stays under the SLO at
	// every sampled instant, incident included.
	for i, c := range tab.Columns {
		if life.Values[i] >= sloMs {
			t.Errorf("%s: lifetime p99 %.2f ms crossed the %g ms SLO", c, life.Values[i], sloMs)
		}
	}
	if !strings.Contains(tab.Notes, "after onset") {
		t.Errorf("notes do not report a detection latency: %q", tab.Notes)
	}
}
