// Package figures regenerates every table and figure of the QTLS paper's
// evaluation (§5) on the discrete-event model (internal/perf) and — for
// Table 1 — on the real minitls stack. Each generator returns a Table
// whose series correspond to the lines/bars of the original figure.
package figures

import (
	"fmt"
	"strings"
	"time"

	"qtls/internal/perf"
)

// Table is a rendered experiment result: one row per series, one column
// per x-axis point.
type Table struct {
	ID      string
	Title   string
	XLabel  string
	YLabel  string
	Columns []string
	Series  []Series
	Notes   string
}

// Series is one line/bar group of a figure.
type Series struct {
	Name   string
	Values []float64
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "  y: %s;  x: %s\n", t.YLabel, t.XLabel)
	width := 12
	for _, c := range t.Columns {
		if len(c)+2 > width {
			width = len(c) + 2
		}
	}
	fmt.Fprintf(&b, "  %-16s", "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%*s", width, c)
	}
	b.WriteByte('\n')
	for _, s := range t.Series {
		fmt.Fprintf(&b, "  %-16s", s.Name)
		for _, v := range s.Values {
			fmt.Fprintf(&b, "%*s", width, formatValue(v))
		}
		b.WriteByte('\n')
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "  note: %s\n", t.Notes)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (one header row, one
// row per series) for plotting.
func (t Table) CSV() string {
	var b strings.Builder
	b.WriteString("series")
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for _, s := range t.Series {
		b.WriteString(s.Name)
		for _, v := range s.Values {
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.1fK", v/1000)
	case v >= 10:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Opts scales experiment durations (benches and tests shrink them; the
// full qtlsbench run uses defaults).
type Opts struct {
	// Warmup precedes measurement (default 600 ms; slow software
	// baselines use a multiple of it).
	Warmup time.Duration
	// Measure is the measurement window (default 800 ms).
	Measure time.Duration
}

func (o Opts) withDefaults() Opts {
	if o.Warmup <= 0 {
		o.Warmup = 600 * time.Millisecond
	}
	if o.Measure <= 0 {
		o.Measure = 800 * time.Millisecond
	}
	return o
}

// Quick returns options for fast smoke runs (unit tests, -bench smoke).
func Quick() Opts {
	return Opts{Warmup: 150 * time.Millisecond, Measure: 200 * time.Millisecond}
}

// clientsFor sizes the closed-loop client pool to saturate the fastest
// configuration at the given worker count.
func clientsFor(workers int) int { return 100 + 40*workers }

func runCPS(o Opts, cfg perf.Config, spec perf.ScriptSpec, clients int, resume float64) float64 {
	res := perf.Run(perf.RunOptions{
		Config:  cfg,
		Warmup:  o.Warmup,
		Measure: o.Measure,
		Install: func(m *perf.Model) {
			perf.STimeWorkload{Clients: clients, Spec: spec, ResumeFraction: resume}.Install(m)
		},
	})
	return res.CPS
}

// cpsFigure sweeps worker counts for the five configurations.
func cpsFigure(o Opts, id, title string, spec perf.ScriptSpec, workerCounts []int, resume float64) Table {
	o = o.withDefaults()
	t := Table{
		ID:     id,
		Title:  title,
		XLabel: "Nginx workers (HT cores)",
		YLabel: "connections per second",
	}
	for _, w := range workerCounts {
		t.Columns = append(t.Columns, fmt.Sprintf("%dHT", w))
	}
	for _, mk := range []func(int) perf.Config{perf.SW, perf.QATS, perf.QATA, perf.QATAH, perf.QTLS} {
		name := mk(1).Name
		s := Series{Name: name}
		for _, w := range workerCounts {
			cfg := mk(w)
			oo := o
			if name == "SW" || name == "QAT+S" {
				// Slow baselines need longer settling (queues are long).
				oo.Warmup = o.Warmup * 2
			}
			s.Values = append(s.Values, runCPS(oo, cfg, spec, clientsFor(w), resume))
		}
		t.Series = append(t.Series, s)
	}
	return t
}

// Fig7a: TLS 1.2 TLS-RSA (2048) full handshake CPS vs workers.
func Fig7a(o Opts) Table {
	t := cpsFigure(o, "fig7a", "Full handshake, TLS 1.2 TLS-RSA (2048-bit)",
		perf.ScriptSpec{Suite: perf.SuiteRSA}, []int{2, 4, 8, 16, 24, 32}, 0)
	t.Notes = "paper anchors: SW 4.3K @8HT; QAT+A 29.5K; QAT+AH 35.8K; QTLS 38.8K (9x SW); ~100K card limit @32HT"
	return t
}

// Fig7b: TLS 1.2 ECDHE-RSA (2048, P-256) full handshake CPS vs workers.
func Fig7b(o Opts) Table {
	t := cpsFigure(o, "fig7b", "Full handshake, TLS 1.2 ECDHE-RSA (2048-bit, P-256)",
		perf.ScriptSpec{Suite: perf.SuiteECDHERSA}, []int{2, 4, 8, 12, 16, 20}, 0)
	t.Notes = "paper anchors: QAT+S ≈ SW (blocking); QTLS 5.5x SW; 40K card limit from 16 workers"
	return t
}

// Fig7c: TLS 1.2 ECDHE-ECDSA CPS across six NIST curves, 4 workers.
func Fig7c(o Opts) Table {
	o = o.withDefaults()
	t := Table{
		ID:     "fig7c",
		Title:  "Full handshake, TLS 1.2 ECDHE-ECDSA, six NIST curves, 4 workers",
		XLabel: "curve",
		YLabel: "connections per second",
		Notes:  "paper anchors: SW P-256 beats QAT+S (Montgomery-friendly); QTLS +70% on P-256, 14x on P-384, >12x on B/K curves",
	}
	curves := perf.Curves()
	for _, c := range curves {
		t.Columns = append(t.Columns, c.Name)
	}
	for _, mk := range []func(int) perf.Config{perf.SW, perf.QATS, perf.QATA, perf.QATAH, perf.QTLS} {
		name := mk(1).Name
		s := Series{Name: name}
		for _, c := range curves {
			oo := o
			if name == "SW" || name == "QAT+S" {
				oo.Warmup = o.Warmup * 4 // multi-ms handshakes settle slowly
			}
			spec := perf.ScriptSpec{Suite: perf.SuiteECDHEECDSA, Curve: c}
			s.Values = append(s.Values, runCPS(oo, mk(4), spec, clientsFor(4), 0))
		}
		t.Series = append(t.Series, s)
	}
	return t
}

// Fig8: TLS 1.3 ECDHE-RSA full handshake CPS vs workers.
func Fig8(o Opts) Table {
	t := cpsFigure(o, "fig8", "Full handshake, TLS 1.3 ECDHE-RSA (2048-bit)",
		perf.ScriptSpec{Suite: perf.SuiteTLS13}, []int{2, 4, 8, 12, 16, 20}, 0)
	t.Notes = "paper anchor: QTLS 3.5x SW — lower than TLS 1.2 because HKDF cannot be offloaded"
	return t
}

// Fig9a: session resumption, 100% abbreviated handshakes.
func Fig9a(o Opts) Table {
	t := cpsFigure(o, "fig9a", "Session resumption, 100% abbreviated handshakes (ECDHE-RSA)",
		perf.ScriptSpec{Suite: perf.SuiteECDHERSA}, []int{2, 4, 8, 12, 16, 20}, 1.0)
	t.Notes = "paper anchors: QTLS 30-40% over SW; QAT+S clearly below SW"
	return t
}

// Fig9b: full:abbreviated = 1:9 mix.
func Fig9b(o Opts) Table {
	t := cpsFigure(o, "fig9b", "Session resumption, full:abbreviated = 1:9 (ECDHE-RSA 2048)",
		perf.ScriptSpec{Suite: perf.SuiteECDHERSA}, []int{2, 4, 8, 12, 16, 20}, 0.9)
	t.Notes = "paper anchor: QTLS more than 2x SW at this mix"
	return t
}

// Fig10: secure data transfer throughput vs requested file size.
func Fig10(o Opts) Table {
	o = o.withDefaults()
	t := Table{
		ID:     "fig10",
		Title:  "Secure data transfer throughput, AES128-SHA, 8 workers, 400 keepalive clients",
		XLabel: "requested file size (KB)",
		YLabel: "throughput (Gbps)",
		Notes:  "paper anchors: parity at 4KB; QTLS >2x SW from 128KB up",
	}
	sizes := []int{4, 16, 32, 64, 128, 256, 512, 1024}
	for _, kb := range sizes {
		t.Columns = append(t.Columns, fmt.Sprintf("%dKB", kb))
	}
	for _, mk := range []func(int) perf.Config{perf.SW, perf.QATS, perf.QATA, perf.QATAH, perf.QTLS} {
		s := Series{Name: mk(1).Name}
		for _, kb := range sizes {
			res := perf.Run(perf.RunOptions{
				Config:  mk(8),
				Warmup:  o.Warmup,
				Measure: o.Measure,
				Install: func(m *perf.Model) {
					perf.ABWorkload{Clients: 400, FileBytes: kb * 1024}.Install(m)
				},
			})
			s.Values = append(s.Values, res.Gbps)
		}
		t.Series = append(t.Series, s)
	}
	return t
}

// Fig11: average response time vs number of concurrent end clients,
// one worker, full TLS-RSA handshake per request.
func Fig11(o Opts) Table {
	o = o.withDefaults()
	t := Table{
		ID:     "fig11",
		Title:  "Average response time, TLS-RSA full handshake per request, 1 worker",
		XLabel: "concurrent end clients",
		YLabel: "average response time (ms)",
		Notes:  "paper anchors: QAT+S lowest at concurrency 1 (busy loop); SW grows steeply; QTLS ~85% below SW at high concurrency",
	}
	concs := []int{1, 2, 4, 6, 8, 12, 16, 32, 64, 128, 256}
	for _, c := range concs {
		t.Columns = append(t.Columns, fmt.Sprintf("%d", c))
	}
	for _, mk := range []func(int) perf.Config{perf.SW, perf.QATS, perf.QATA, perf.QTLS} {
		name := mk(1).Name
		s := Series{Name: name}
		for _, c := range concs {
			oo := o
			if name == "SW" && c >= 32 {
				oo.Warmup = o.Warmup * 3 // deep queues settle slowly
			}
			res := perf.Run(perf.RunOptions{
				Config:  mk(1),
				Warmup:  oo.Warmup,
				Measure: oo.Measure,
				Install: func(m *perf.Model) {
					perf.LatencyWorkload{Concurrency: c, PerClientRate: 6}.Install(m)
				},
			})
			s.Values = append(s.Values, float64(res.AvgLatency)/float64(time.Millisecond))
		}
		t.Series = append(t.Series, s)
	}
	return t
}

// timer returns an async configuration with a fixed-interval polling
// thread, for the Fig. 12 polling comparison.
func timer(workers int, interval time.Duration) perf.Config {
	cfg := perf.QATA(workers)
	cfg.PollInterval = interval
	cfg.Name = interval.String()
	return cfg
}

func heuristic(workers int) perf.Config {
	cfg := perf.QATAH(workers)
	cfg.Name = "Heuristic"
	return cfg
}

// fig12Configs are the three §5.6 scenarios: 10 µs timer, 1 ms timer,
// heuristic — all on the async framework with FD notification.
func fig12Configs(workers int) []perf.Config {
	return []perf.Config{
		timer(workers, 10*time.Microsecond),
		timer(workers, time.Millisecond),
		heuristic(workers),
	}
}

// Fig12a: polling comparison — TLS-RSA full handshake CPS vs workers.
func Fig12a(o Opts) Table {
	o = o.withDefaults()
	t := Table{
		ID:     "fig12a",
		Title:  "Polling thread vs heuristic polling: TLS-RSA full handshake CPS",
		XLabel: "Nginx workers",
		YLabel: "connections per second",
		Notes:  "paper anchors: 10µs polling ~20% below heuristic; 1ms collapses at low load, trails at high load",
	}
	workerCounts := []int{2, 4, 8, 12, 16, 20, 24, 28, 32}
	for _, w := range workerCounts {
		t.Columns = append(t.Columns, fmt.Sprintf("%d", w))
	}
	for i := 0; i < 3; i++ {
		var s Series
		for _, w := range workerCounts {
			cfg := fig12Configs(w)[i]
			if s.Name == "" {
				s.Name = cfg.Name
			}
			s.Values = append(s.Values, runCPS(o, cfg, perf.ScriptSpec{Suite: perf.SuiteRSA}, clientsFor(w), 0))
		}
		t.Series = append(t.Series, s)
	}
	return t
}

// Fig12b: polling comparison — 64 KB transfer throughput vs concurrent
// end clients.
func Fig12b(o Opts) Table {
	o = o.withDefaults()
	t := Table{
		ID:     "fig12b",
		Title:  "Polling thread vs heuristic polling: 64 KB transfer throughput, 8 workers",
		XLabel: "concurrent end clients",
		YLabel: "throughput (Gbps)",
		Notes:  "paper anchor: 1ms polling collapses throughput at low client counts",
	}
	clients := []int{16, 32, 48, 64, 96, 128, 192, 256, 512}
	for _, c := range clients {
		t.Columns = append(t.Columns, fmt.Sprintf("%d", c))
	}
	for i := 0; i < 3; i++ {
		var s Series
		for _, c := range clients {
			cfg := fig12Configs(8)[i]
			if s.Name == "" {
				s.Name = cfg.Name
			}
			res := perf.Run(perf.RunOptions{
				Config:  cfg,
				Warmup:  o.Warmup,
				Measure: o.Measure,
				Install: func(m *perf.Model) {
					perf.ABWorkload{Clients: c, FileBytes: 64 * 1024}.Install(m)
				},
			})
			s.Values = append(s.Values, res.Gbps)
		}
		t.Series = append(t.Series, s)
	}
	return t
}

// Fig12c: polling comparison — response time vs concurrency, 1 worker.
func Fig12c(o Opts) Table {
	o = o.withDefaults()
	t := Table{
		ID:     "fig12c",
		Title:  "Polling thread vs heuristic polling: average response time, 1 worker",
		XLabel: "concurrent end clients",
		YLabel: "average response time (ms)",
		Notes:  "paper anchor: 1ms polling adds ~ms-scale latency at low concurrency; heuristic lowest everywhere",
	}
	concs := []int{1, 2, 4, 6, 8, 12, 16, 32, 64}
	for _, c := range concs {
		t.Columns = append(t.Columns, fmt.Sprintf("%d", c))
	}
	for i := 0; i < 3; i++ {
		var s Series
		for _, c := range concs {
			cfg := fig12Configs(1)[i]
			if s.Name == "" {
				s.Name = cfg.Name
			}
			res := perf.Run(perf.RunOptions{
				Config:  cfg,
				Warmup:  o.Warmup,
				Measure: o.Measure,
				Install: func(m *perf.Model) {
					perf.LatencyWorkload{Concurrency: c, PerClientRate: 6}.Install(m)
				},
			})
			s.Values = append(s.Values, float64(res.AvgLatency)/float64(time.Millisecond))
		}
		t.Series = append(t.Series, s)
	}
	return t
}

// extraGens holds platform-gated generators — experiments that drive
// the live event-loop server (linux-only) rather than the portable DES
// model — registered via init() from their own build-tagged files.
var (
	extraGens = map[string]func(Opts) Table{}
	extraIDs  []string
)

func registerExtra(id string, gen func(Opts) Table) {
	extraGens[id] = gen
	extraIDs = append(extraIDs, id)
}

// All runs every figure (Table 1 is generated separately by Table1,
// which exercises the functional stack rather than the model).
func All(o Opts) []Table {
	out := []Table{
		Table1(), Fig7a(o), Fig7b(o), Fig7c(o), Fig8(o),
		Fig9a(o), Fig9b(o), Fig10(o), Fig11(o),
		Fig12a(o), Fig12b(o), Fig12c(o), Degraded(o), Overload(o), KTLS(o),
		Blackbox(o), Adaptive(o), NotifyParity(), Shard(o), Recovery(o),
	}
	for _, id := range extraIDs {
		out = append(out, extraGens[id](o))
	}
	return out
}

// ByID returns the generator for one experiment id.
func ByID(id string) (func(Opts) Table, bool) {
	gens := map[string]func(Opts) Table{
		"table1": func(Opts) Table { return Table1() },
		"fig7a":  Fig7a, "fig7b": Fig7b, "fig7c": Fig7c,
		"fig8": Fig8, "fig9a": Fig9a, "fig9b": Fig9b,
		"fig10": Fig10, "fig11": Fig11,
		"fig12a": Fig12a, "fig12b": Fig12b, "fig12c": Fig12c,
		"degraded": Degraded, "overload": Overload, "ktls": KTLS,
		"blackbox": Blackbox, "adaptive": Adaptive,
		"notify-parity": func(Opts) Table { return NotifyParity() },
		"shard":         Shard,
		"recovery":      Recovery,
	}
	if g, ok := gens[id]; ok {
		return g, true
	}
	g, ok := extraGens[id]
	return g, ok
}

// IDs lists all experiment identifiers in paper order.
func IDs() []string {
	ids := []string{"table1", "fig7a", "fig7b", "fig7c", "fig8",
		"fig9a", "fig9b", "fig10", "fig11", "fig12a", "fig12b", "fig12c",
		"degraded", "overload", "ktls", "blackbox", "adaptive", "notify-parity", "shard", "recovery"}
	return append(ids, extraIDs...)
}
