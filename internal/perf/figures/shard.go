package figures

import (
	"fmt"
	"time"

	"qtls/internal/offload"
	"qtls/internal/perf"
)

// shardParams shrinks the modeled card so one device — not worker CPU —
// is the CPS ceiling on a resumption-heavy mix: a single endpoint with a
// single (slower) PRF engine caps one device near 13K abbreviated
// handshakes/s, while 8 workers of CPU can drive ~45K. Scaling the
// device count then moves the bottleneck, which is exactly what the
// figure is about.
func shardParams() perf.Params {
	p := perf.DefaultParams()
	p.Endpoints = 1
	p.SymEnginesPerEndpoint = 1
	p.QatPRF = 25 * time.Microsecond
	return p
}

// shardConfig is QTLS on 8 workers hashed across n devices.
func shardConfig(devices int) perf.Config {
	cfg := perf.QTLS(8)
	cfg.Devices = devices
	cfg.Placement = offload.PlacementConnHash
	cfg.Name = fmt.Sprintf("QTLS %dxQAT", devices)
	return cfg
}

// shardRun drives the full:abbreviated = 1:9 closed loop against the
// sharded model; degradeDev >= 0 stalls that device a third of the way
// into the measurement window.
func shardRun(o Opts, devices, degradeDev int) perf.RunResult {
	cfg := shardConfig(devices)
	if degradeDev >= 0 {
		cfg.DegradeAt = o.Warmup + o.Measure/3
		cfg.DegradeDevice = degradeDev
	}
	return perf.Run(perf.RunOptions{
		Params:  shardParams(),
		Config:  cfg,
		Warmup:  o.Warmup,
		Measure: o.Measure,
		Install: func(m *perf.Model) {
			perf.STimeWorkload{
				Clients:        320,
				Spec:           perf.ScriptSpec{Suite: perf.SuiteECDHERSA},
				ResumeFraction: 0.9,
			}.Install(m)
		},
	})
}

// Shard is the multi-device scale-out experiment: CPS and p99 latency on
// a resumption-heavy ECDHE-RSA mix (full:abbreviated = 1:9) as the same
// 8 workers are conn-hashed across 1, 2 and 4 QAT devices, plus a 2-device
// run where device 1 stalls mid-measurement and the placement layer
// re-routes its workers' offloads onto device 0.
func Shard(o Opts) Table {
	o = o.withDefaults()
	t := Table{
		ID:     "shard",
		Title:  "Multi-device sharding: 8 workers conn-hashed over N devices, full:abbrev = 1:9",
		XLabel: "QAT devices",
		YLabel: "connections per second / p99 ms / reroutes",
		Notes: "one shrunken device (1 endpoint, 1 PRF engine) is the bottleneck, so CPS " +
			"scales with the device count until worker CPU saturates; in the degraded run " +
			"device 1 stalls a third into the window and its workers' submissions re-route " +
			"to device 0 with no lost handshakes",
	}
	type point struct {
		label      string
		devices    int
		degradeDev int
	}
	points := []point{
		{"1", 1, -1},
		{"2", 2, -1},
		{"4", 4, -1},
		{"2 (1 degraded)", 2, 1},
	}
	cps := Series{Name: "CPS"}
	p99 := Series{Name: "p99 (ms)"}
	rer := Series{Name: "reroutes"}
	for _, pt := range points {
		t.Columns = append(t.Columns, pt.label)
		res := shardRun(o, pt.devices, pt.degradeDev)
		cps.Values = append(cps.Values, res.CPS)
		p99.Values = append(p99.Values, float64(res.P99Latency)/float64(time.Millisecond))
		rer.Values = append(rer.Values, float64(res.Stats.Reroutes))
	}
	t.Series = []Series{cps, p99, rer}
	return t
}
