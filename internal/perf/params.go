// Package perf is a deterministic discrete-event performance model of the
// QTLS system: event-driven workers, the QAT accelerator (endpoints ×
// parallel engines), the network, the five offload configurations, and
// the paper's workloads (s_time closed-loop handshakes, ab keepalive
// transfers, open-loop latency probes).
//
// The paper's testbed — two 22-core Xeon E5-2699 v4 servers, 40 GbE
// back-to-back links and an Intel DH8970 QAT card — is not reproducible
// on a laptop, so every table and figure of §5 is regenerated on this
// model instead (DESIGN.md records the substitution). Absolute numbers
// are calibrated to be in the right ballpark; the claims that matter are
// the *shapes*: who wins, by what factor, and where the crossovers fall.
package perf

import (
	"time"

	"qtls/internal/offload"
)

// Params holds every calibrated constant of the model. The defaults are
// tuned against the anchors in §5 (see EXPERIMENTS.md for the full
// paper-vs-model table):
//
//   - SW TLS-RSA full handshake ≈ 0.54 K CPS per worker (Fig. 7a: 4.3 K
//     at 8 workers);
//   - DH8970 card limits ≈ 100 K RSA-2048 CPS and ≈ 40 K ECDHE-RSA CPS;
//   - software ECDSA/ECDH on P-256 is Montgomery-optimized and fast
//     (Fig. 7c's anomaly), P-384 and the binary/Koblitz curves are not;
//   - a 10 µs polling thread costs ≈ 20 % handshake throughput (Fig. 12a);
//   - AES128-CBC-HMAC-SHA1 in software moves ≈ 350 MB/s per core.
type Params struct {
	// --- CPU costs of non-crypto worker work -------------------------

	// AcceptCost is accept(2) + connection setup.
	AcceptCost time.Duration
	// ParseCHCost is ClientHello parsing + ServerHello/Certificate flight
	// construction and record writes.
	ParseCHCost time.Duration
	// ParseCKECost is ClientKeyExchange/CCS/Finished flight parsing.
	ParseCKECost time.Duration
	// SendFinCost is the ticket/CCS/Finished flight write.
	SendFinCost time.Duration
	// ReqParseCost is HTTP request parsing + response header build.
	ReqParseCost time.Duration
	// RecordIOCost is the non-crypto per-16KB-record cost: TLS record
	// framing plus kernel TCP transmit work.
	RecordIOCost time.Duration
	// CloseCost tears a connection down.
	CloseCost time.Duration

	// --- crypto costs -------------------------------------------------

	// SwRSA is a software RSA-2048 private-key operation on one HT core.
	SwRSA time.Duration
	// SwPRF is one TLS 1.2 PRF derivation in software.
	SwPRF time.Duration
	// SwHKDF is one TLS 1.3 HKDF derivation (never offloaded).
	SwHKDF time.Duration
	// SwCipherPerKB is software AES128-CBC-HMAC-SHA1 per kilobyte.
	SwCipherPerKB time.Duration

	// QatRSA is the engine service time of an RSA-2048 operation.
	QatRSA time.Duration
	// QatPRF is the engine service time of a PRF derivation.
	QatPRF time.Duration
	// QatCipherPerKB is the engine cipher service time per kilobyte.
	QatCipherPerKB time.Duration
	// QatCipherBase is the fixed engine cost per cipher request.
	QatCipherBase time.Duration

	// --- offload I/O costs --------------------------------------------

	// SubmitCost is the CPU cost of building and submitting one QAT
	// request (QAT Engine + userspace driver).
	SubmitCost time.Duration
	// FiberSwapCost is one crypto pause + later resumption (two fiber
	// context swaps plus job management, §4.1).
	FiberSwapCost time.Duration
	// StackSwapCost is the cheaper pause/resume of the stack-async
	// implementation (state flag + careful skipping; no fiber contexts,
	// §4.1: "the stack async implementation has a good performance").
	StackSwapCost time.Duration
	// InterruptCost is one kernel-based completion interrupt delivered to
	// the worker (§3.3 rejects interrupts: "one userspace-based polling
	// operation has much less overhead than one kernel-based interrupt").
	InterruptCost time.Duration
	// PollCost is one userspace polling operation on the response rings.
	PollCost time.Duration
	// PerResponseCost is the per-retrieved-response callback cost.
	PerResponseCost time.Duration
	// NotifyFDCost is one FD-based async event: the response callback's
	// write(2) plus the epoll wakeup processing (user/kernel switches).
	NotifyFDCost time.Duration
	// NotifyBypassCost is one kernel-bypass async-queue insertion.
	NotifyBypassCost time.Duration
	// FDDispatchDelay is the extra event-loop latency of an FD event (it
	// is observed on the next epoll_wait iteration).
	FDDispatchDelay time.Duration
	// CtxSwitchCost is one context switch to the timer polling thread
	// (pinned to the same core as its worker, §5.1).
	CtxSwitchCost time.Duration
	// BlockedOpOverhead is the extra per-operation wait of the straight
	// (blocking) offload mode beyond the response-ready time (inline
	// busy-poll slop).
	BlockedOpOverhead time.Duration
	// IdleLoopCost is one iteration of the event loop when it is spinning
	// on in-flight crypto requests with nothing else to do (epoll_wait
	// with zero timeout plus the heuristic checks); it paces how quickly
	// an idle worker discovers new responses.
	IdleLoopCost time.Duration

	// PipeLatencyAsym is the end-to-end request latency of an asymmetric
	// operation through the accelerator (DMA, firmware scheduling,
	// response write-back) over and above engine occupancy. Real QAT
	// RSA-2048 latency at queue depth 1 is several hundred µs even though
	// aggregate throughput implies ~120 µs of engine occupancy; this is
	// why the async framework, which overlaps these latencies, wins so
	// much (§2.4).
	PipeLatencyAsym time.Duration
	// PipeLatencySym is the same pipeline latency for symmetric/PRF ops.
	PipeLatencySym time.Duration

	// --- device -------------------------------------------------------

	// Endpoints is the number of QAT endpoints (DH8970: 3).
	Endpoints int
	// AsymEnginesPerEndpoint is the number of public-key (PKE) engines
	// per endpoint; QAT hardware dedicates separate engines to
	// asymmetric crypto and to cipher/authentication services.
	AsymEnginesPerEndpoint int
	// SymEnginesPerEndpoint is the number of symmetric (cipher/auth/PRF)
	// engines per endpoint.
	SymEnginesPerEndpoint int
	// RingCapacity bounds in-flight requests per crypto instance.
	RingCapacity int

	// --- network ------------------------------------------------------

	// RTT is the client↔server round trip on the back-to-back 40 GbE
	// link, including client-side processing of a handshake flight.
	RTT time.Duration
	// LinkGbps is the NIC line rate.
	LinkGbps float64

	// --- heuristic polling defaults (§4.3) -----------------------------
	//
	// The default values live in internal/offload (the single definition
	// both the model and the live stack share).

	// AsymThreshold triggers a poll when Rasym > 0 (default
	// offload.DefaultAsymThreshold).
	AsymThreshold int
	// SymThreshold triggers a poll otherwise (default
	// offload.DefaultSymThreshold).
	SymThreshold int
	// FailoverInterval is the heuristic failover timer (default
	// offload.DefaultFailoverInterval).
	FailoverInterval time.Duration
}

// DefaultParams returns the calibrated model constants.
func DefaultParams() Params {
	return Params{
		AcceptCost:   20 * time.Microsecond,
		ParseCHCost:  60 * time.Microsecond,
		ParseCKECost: 30 * time.Microsecond,
		SendFinCost:  30 * time.Microsecond,
		ReqParseCost: 20 * time.Microsecond,
		RecordIOCost: 30 * time.Microsecond,
		CloseCost:    15 * time.Microsecond,

		SwRSA: 1660 * time.Microsecond,
		SwPRF: 25 * time.Microsecond,
		// SwHKDF bundles one TLS 1.3 derivation step with its transcript
		// hashing and key-install work; the per-handshake total (~9 ops)
		// matches the non-offloadable CPU share implied by Fig. 8.
		SwHKDF:        50 * time.Microsecond,
		SwCipherPerKB: 2800 * time.Nanosecond, // ≈ 350 MB/s

		QatRSA:         120 * time.Microsecond,
		QatPRF:         10 * time.Microsecond,
		QatCipherPerKB: 1 * time.Microsecond, // wire-speed-class engine
		QatCipherBase:  4 * time.Microsecond,

		SubmitCost:        3 * time.Microsecond,
		FiberSwapCost:     1 * time.Microsecond,
		StackSwapCost:     300 * time.Nanosecond,
		InterruptCost:     7 * time.Microsecond,
		PollCost:          500 * time.Nanosecond,
		PerResponseCost:   500 * time.Nanosecond,
		NotifyFDCost:      4 * time.Microsecond,
		NotifyBypassCost:  200 * time.Nanosecond,
		FDDispatchDelay:   5 * time.Microsecond,
		CtxSwitchCost:     1200 * time.Nanosecond,
		BlockedOpOverhead: 10 * time.Microsecond,
		IdleLoopCost:      8 * time.Microsecond,
		PipeLatencyAsym:   330 * time.Microsecond,
		PipeLatencySym:    55 * time.Microsecond,

		Endpoints:              3,
		AsymEnginesPerEndpoint: 4,
		SymEnginesPerEndpoint:  2,
		RingCapacity:           64,

		RTT:      120 * time.Microsecond,
		LinkGbps: 40,

		AsymThreshold:    offload.DefaultAsymThreshold,
		SymThreshold:     offload.DefaultSymThreshold,
		FailoverInterval: offload.DefaultFailoverInterval,
	}
}

// CurveParams captures per-curve asymmetric costs for Fig. 7c: software
// sign / key-exchange op costs and the QAT engine service times. The
// P-256 software costs reflect the "Montgomery friendly" optimized
// implementation (§5.2); the other curves use the generic code paths.
type CurveParams struct {
	Name    string
	SwSign  time.Duration
	SwECDH  time.Duration
	QatSign time.Duration
	QatECDH time.Duration
}

// Curves returns the six NIST curves of Fig. 7c.
func Curves() []CurveParams {
	return []CurveParams{
		// P-256: Montgomery-domain software (2.33x faster sign than the
		// traditional implementation) — the SW anomaly of Fig. 7c.
		{Name: "P-256", SwSign: 40 * time.Microsecond, SwECDH: 110 * time.Microsecond,
			QatSign: 85 * time.Microsecond, QatECDH: 85 * time.Microsecond},
		{Name: "P-384", SwSign: 1300 * time.Microsecond, SwECDH: 1500 * time.Microsecond,
			QatSign: 210 * time.Microsecond, QatECDH: 210 * time.Microsecond},
		{Name: "B-283", SwSign: 1500 * time.Microsecond, SwECDH: 1800 * time.Microsecond,
			QatSign: 240 * time.Microsecond, QatECDH: 240 * time.Microsecond},
		{Name: "B-409", SwSign: 2800 * time.Microsecond, SwECDH: 3400 * time.Microsecond,
			QatSign: 340 * time.Microsecond, QatECDH: 340 * time.Microsecond},
		{Name: "K-283", SwSign: 1450 * time.Microsecond, SwECDH: 1700 * time.Microsecond,
			QatSign: 240 * time.Microsecond, QatECDH: 240 * time.Microsecond},
		{Name: "K-409", SwSign: 2700 * time.Microsecond, SwECDH: 3200 * time.Microsecond,
			QatSign: 330 * time.Microsecond, QatECDH: 330 * time.Microsecond},
	}
}

// P256 returns the P-256 curve parameters (the OpenSSL default used by
// the ECDHE-RSA evaluations).
func P256() CurveParams { return Curves()[0] }
