package perf

import "time"

// RunResult is one model run's headline numbers.
type RunResult struct {
	Config      string
	CPS         float64
	Gbps        float64
	AvgLatency  time.Duration
	P99Latency  time.Duration
	Utilization float64
	Stats       *Stats
}

// RunOptions configures one model run.
type RunOptions struct {
	Params  Params
	Config  Config
	Seed    int64
	Warmup  time.Duration
	Measure time.Duration
	Install func(*Model) // workload installer
}

func (o RunOptions) withDefaults() RunOptions {
	if o.Params == (Params{}) {
		o.Params = DefaultParams()
	}
	if o.Warmup <= 0 {
		o.Warmup = 200 * time.Millisecond
	}
	if o.Measure <= 0 {
		o.Measure = time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Run executes one simulation and summarizes it.
func Run(o RunOptions) RunResult {
	o = o.withDefaults()
	m := NewModel(o.Params, o.Config, o.Seed)
	o.Install(m)
	st := m.Run(o.Warmup, o.Measure)
	return RunResult{
		Config:      o.Config.Name,
		CPS:         st.CPS(o.Measure),
		Gbps:        st.Gbps(o.Measure),
		AvgLatency:  time.Duration(st.Latency.Mean()),
		P99Latency:  time.Duration(st.Latency.Quantile(0.99)),
		Utilization: st.Utilization(o.Config.Workers, o.Measure),
		Stats:       st,
	}
}

// RunCPS measures handshake throughput for a configuration with the
// closed-loop s_time workload.
func RunCPS(cfg Config, spec ScriptSpec, clients int, resumeFraction float64, measure time.Duration) RunResult {
	return Run(RunOptions{
		Config:  cfg,
		Measure: measure,
		Install: func(m *Model) {
			STimeWorkload{Clients: clients, Spec: spec, ResumeFraction: resumeFraction}.Install(m)
		},
	})
}

// RunThroughput measures secure transfer goodput with the ab keepalive
// workload.
func RunThroughput(cfg Config, fileBytes, clients int, measure time.Duration) RunResult {
	return Run(RunOptions{
		Config:  cfg,
		Measure: measure,
		Install: func(m *Model) {
			ABWorkload{Clients: clients, FileBytes: fileBytes}.Install(m)
		},
	})
}

// RunLatency measures average response time with the open-loop workload.
func RunLatency(cfg Config, concurrency int, perClientRate float64, measure time.Duration) RunResult {
	return Run(RunOptions{
		Config:  cfg,
		Measure: measure,
		Install: func(m *Model) {
			LatencyWorkload{Concurrency: concurrency, PerClientRate: perClientRate}.Install(m)
		},
	})
}
