package perf

import (
	"testing"
	"time"

	"qtls/internal/offload"
)

func runBulk(t *testing.T, rec *offload.RecordPolicy, fileBytes int) RunResult {
	t.Helper()
	cfg := QTLS(4)
	cfg.Record = rec
	return Run(RunOptions{
		Config:  cfg,
		Warmup:  100 * time.Millisecond,
		Measure: 200 * time.Millisecond,
		Install: func(m *Model) {
			ABWorkload{Clients: 100, FileBytes: fileBytes}.Install(m)
		},
	})
}

// The record policy routes each seal: software mode never touches the
// accelerator, offload mode never seals on the worker, and the legacy
// nil policy keeps the paper's engine-level cipher offload.
func TestRecordPolicyRouting(t *testing.T) {
	sw := runBulk(t, &offload.RecordPolicy{Mode: offload.RecordSoftware}, 64<<10)
	if sw.Stats.RecordOffloadOps != 0 || sw.Stats.RecordSWOps == 0 {
		t.Fatalf("software mode: offload=%d sw=%d", sw.Stats.RecordOffloadOps, sw.Stats.RecordSWOps)
	}
	off := runBulk(t, &offload.RecordPolicy{Mode: offload.RecordOffload}, 64<<10)
	if off.Stats.RecordOffloadOps == 0 || off.Stats.RecordSWOps != 0 {
		t.Fatalf("offload mode: offload=%d sw=%d", off.Stats.RecordOffloadOps, off.Stats.RecordSWOps)
	}
	legacy := runBulk(t, nil, 64<<10)
	if legacy.Stats.RecordOffloadOps == 0 || legacy.Stats.RecordSWOps != 0 {
		t.Fatalf("nil policy lost the engine-level cipher offload: offload=%d sw=%d",
			legacy.Stats.RecordOffloadOps, legacy.Stats.RecordSWOps)
	}
}

// Adaptive mode splits per record: 1 KB responses stay below the
// threshold (all software), large responses fragment into 16 KB records
// that all offload.
func TestRecordPolicyAdaptiveThreshold(t *testing.T) {
	adaptive := &offload.RecordPolicy{Mode: offload.RecordAdaptive}
	small := runBulk(t, adaptive, 1<<10)
	if small.Stats.RecordOffloadOps != 0 || small.Stats.RecordSWOps == 0 {
		t.Fatalf("1KB records should fall back to software: offload=%d sw=%d",
			small.Stats.RecordOffloadOps, small.Stats.RecordSWOps)
	}
	large := runBulk(t, adaptive, 256<<10)
	if large.Stats.RecordOffloadOps == 0 || large.Stats.RecordSWOps != 0 {
		t.Fatalf("16KB records should offload: offload=%d sw=%d",
			large.Stats.RecordOffloadOps, large.Stats.RecordSWOps)
	}
}

// The headline claim of the record-path experiment: offloading large
// records costs less worker CPU per served byte than sealing in
// software, while for small records the submit overhead makes software
// the cheaper path.
func TestRecordOffloadCPUPerByte(t *testing.T) {
	swLarge := runBulk(t, &offload.RecordPolicy{Mode: offload.RecordSoftware}, 256<<10)
	offLarge := runBulk(t, &offload.RecordPolicy{Mode: offload.RecordOffload}, 256<<10)
	if offLarge.Stats.CPUPerKB() >= swLarge.Stats.CPUPerKB() {
		t.Fatalf("256KB: offloaded record path not cheaper: offload %.0f ns/KB, sw %.0f ns/KB",
			offLarge.Stats.CPUPerKB(), swLarge.Stats.CPUPerKB())
	}
	swSmall := runBulk(t, &offload.RecordPolicy{Mode: offload.RecordSoftware}, 1<<10)
	offSmall := runBulk(t, &offload.RecordPolicy{Mode: offload.RecordOffload}, 1<<10)
	if offSmall.Stats.CPUPerKB() <= swSmall.Stats.CPUPerKB() {
		t.Fatalf("1KB: submit overhead should beat software sealing: offload %.0f ns/KB, sw %.0f ns/KB",
			offSmall.Stats.CPUPerKB(), swSmall.Stats.CPUPerKB())
	}
}
