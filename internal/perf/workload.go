package perf

import (
	"time"

	"qtls/internal/sim"
)

// Suite identifies the modeled handshake flavor.
type Suite int

const (
	// SuiteRSA is TLS 1.2 TLS-RSA (2048-bit).
	SuiteRSA Suite = iota
	// SuiteECDHERSA is TLS 1.2 ECDHE-RSA (2048-bit, P-256 by default).
	SuiteECDHERSA
	// SuiteECDHEECDSA is TLS 1.2 ECDHE-ECDSA.
	SuiteECDHEECDSA
	// SuiteTLS13 is TLS 1.3 ECDHE-RSA (2048-bit).
	SuiteTLS13
)

// String names the suite.
func (s Suite) String() string {
	switch s {
	case SuiteRSA:
		return "TLS-RSA"
	case SuiteECDHERSA:
		return "ECDHE-RSA"
	case SuiteECDHEECDSA:
		return "ECDHE-ECDSA"
	case SuiteTLS13:
		return "TLS1.3-ECDHE-RSA"
	default:
		return "suite?"
	}
}

// ScriptSpec parameterizes connection script construction.
type ScriptSpec struct {
	Suite Suite
	// Curve provides the ECC costs (defaults to P-256).
	Curve CurveParams
	// Abbreviated selects the session-resumption handshake.
	Abbreviated bool
	// RequestBytes, when > 0, appends one HTTP request serving a response
	// of this size after the handshake.
	RequestBytes int
	// Requests is how many keepalive requests to serve (default 1 when
	// RequestBytes > 0).
	Requests int
}

// cryptoStep builds a crypto step.
func cryptoStep(op opClass, sw, hw time.Duration) step {
	return step{kind: stepCrypto, op: op, sw: sw, hw: hw}
}

func cpuStep(d time.Duration) step { return step{kind: stepCPU, dur: d} }
func netStep(d time.Duration) step { return step{kind: stepNet, dur: d} }
func markStep(k stepKind) step     { return step{kind: k} }

// BuildScript constructs the server-side step script for one connection.
// The op sequences match Table 1 (and the minitls implementation): e.g. a
// TLS 1.2 ECDHE-RSA full handshake performs ECDH keygen, RSA sign, ECDH
// derive and 4 PRF derivations on the server.
func BuildScript(p *Params, spec ScriptSpec) []step {
	curve := spec.Curve
	if curve.Name == "" {
		curve = P256()
	}
	var s []step
	s = append(s, cpuStep(p.AcceptCost), cpuStep(p.ParseCHCost))

	if spec.Abbreviated {
		// Abbreviated handshake: PRF calculations only (§2.1): key
		// expansion + server Finished, flight, then the client's
		// CCS/Finished and its verification.
		s = append(s,
			cryptoStep(opPRF, p.SwPRF, p.QatPRF),
			cryptoStep(opPRF, p.SwPRF, p.QatPRF),
			cpuStep(p.SendFinCost),
			netStep(p.RTT),
			cpuStep(p.ParseCKECost),
			cryptoStep(opPRF, p.SwPRF, p.QatPRF),
			markStep(stepHSDone),
		)
	} else {
		switch spec.Suite {
		case SuiteRSA:
			s = append(s,
				cpuStep(p.SendFinCost), // SH+Cert+SHD flight
				netStep(p.RTT),
				cpuStep(p.ParseCKECost),
				cryptoStep(opRSA, p.SwRSA, p.QatRSA), // premaster decrypt
				cryptoStep(opPRF, p.SwPRF, p.QatPRF), // master secret
				cryptoStep(opPRF, p.SwPRF, p.QatPRF), // key expansion
				cryptoStep(opPRF, p.SwPRF, p.QatPRF), // client Finished
				cryptoStep(opPRF, p.SwPRF, p.QatPRF), // server Finished
				cpuStep(p.SendFinCost),
				markStep(stepHSDone),
			)
		case SuiteECDHERSA:
			s = append(s,
				cryptoStep(opECDH, curve.SwECDH, curve.QatECDH), // keygen
				cryptoStep(opRSA, p.SwRSA, p.QatRSA),            // SKX sign
				cpuStep(p.SendFinCost),
				netStep(p.RTT),
				cpuStep(p.ParseCKECost),
				cryptoStep(opECDH, curve.SwECDH, curve.QatECDH), // derive
				cryptoStep(opPRF, p.SwPRF, p.QatPRF),
				cryptoStep(opPRF, p.SwPRF, p.QatPRF),
				cryptoStep(opPRF, p.SwPRF, p.QatPRF),
				cryptoStep(opPRF, p.SwPRF, p.QatPRF),
				cpuStep(p.SendFinCost),
				markStep(stepHSDone),
			)
		case SuiteECDHEECDSA:
			s = append(s,
				cryptoStep(opECDH, curve.SwECDH, curve.QatECDH),  // keygen
				cryptoStep(opECDSA, curve.SwSign, curve.QatSign), // SKX sign
				cpuStep(p.SendFinCost),
				netStep(p.RTT),
				cpuStep(p.ParseCKECost),
				cryptoStep(opECDH, curve.SwECDH, curve.QatECDH), // derive
				cryptoStep(opPRF, p.SwPRF, p.QatPRF),
				cryptoStep(opPRF, p.SwPRF, p.QatPRF),
				cryptoStep(opPRF, p.SwPRF, p.QatPRF),
				cryptoStep(opPRF, p.SwPRF, p.QatPRF),
				cpuStep(p.SendFinCost),
				markStep(stepHSDone),
			)
		case SuiteTLS13:
			// One network round trip; HKDF derivations are not
			// offloadable and run on the worker core (§5.2, Fig. 8) —
			// Table 1 counts "> 4" of them.
			s = append(s,
				cryptoStep(opECDH, curve.SwECDH, curve.QatECDH), // keygen
				cryptoStep(opECDH, curve.SwECDH, curve.QatECDH), // derive
				cryptoStep(opHKDF, p.SwHKDF, 0),                 // early/derived
				cryptoStep(opHKDF, p.SwHKDF, 0),                 // hs secret
				cryptoStep(opHKDF, p.SwHKDF, 0),                 // c hs traffic
				cryptoStep(opHKDF, p.SwHKDF, 0),                 // s hs traffic
				cryptoStep(opHKDF, p.SwHKDF, 0),                 // master
				cryptoStep(opRSA, p.SwRSA, p.QatRSA),            // CertificateVerify
				cryptoStep(opHKDF, p.SwHKDF, 0),                 // server Finished
				cryptoStep(opHKDF, p.SwHKDF, 0),                 // app secrets
				cpuStep(p.SendFinCost),
				netStep(p.RTT),
				cpuStep(p.ParseCKECost),
				cryptoStep(opHKDF, p.SwHKDF, 0), // client Finished verify
				markStep(stepHSDone),
			)
		}
	}

	// Optional request/response phase (keepalive requests of a fixed-size
	// object, fragmented into 16 KB records — the Fig. 10 traffic).
	if spec.RequestBytes > 0 {
		requests := spec.Requests
		if requests <= 0 {
			requests = 1
		}
		for r := 0; r < requests; r++ {
			s = append(s, netStep(p.RTT/2)) // request arrives
			s = append(s, cpuStep(p.ReqParseCost))
			remaining := spec.RequestBytes
			for remaining > 0 {
				rec := remaining
				if rec > 16384 {
					rec = 16384
				}
				remaining -= rec
				kb := float64(rec) / 1024
				swc := time.Duration(float64(p.SwCipherPerKB) * kb)
				hwc := p.QatCipherBase + time.Duration(float64(p.QatCipherPerKB)*kb)
				// Cipher steps carry their record size so the record policy
				// can route each seal (adaptive offload is per record).
				s = append(s,
					step{kind: stepCrypto, op: opCipher, sw: swc, hw: hwc, bytes: rec},
					cpuStep(p.RecordIOCost),
				)
			}
			// Response leaves on the link; the step's bytes model NIC
			// serialization and count toward served throughput.
			s = append(s, step{kind: stepNet, dur: p.RTT / 2, bytes: spec.RequestBytes}, markStep(stepReqDone))
		}
	}
	s = append(s, cpuStep(p.CloseCost))
	return s
}

// --- workload drivers -----------------------------------------------------

// STimeWorkload drives closed-loop handshake clients (the s_time load of
// §5.2/§5.3): each of Clients loops connect → handshake → [request] →
// close.
type STimeWorkload struct {
	// Clients is the number of concurrent closed-loop clients.
	Clients int
	// Spec builds each connection's script.
	Spec ScriptSpec
	// ResumeFraction is the fraction of connections using the
	// abbreviated handshake (0 = all full, 1 = all abbreviated — the
	// s_time "reuse" option; 0.9 = the paper's 1:9 mix).
	ResumeFraction float64
	// ClientDelay is client-side processing between connections.
	ClientDelay time.Duration
}

// Install starts the workload on the model.
func (wl STimeWorkload) Install(m *Model) {
	if wl.ClientDelay <= 0 {
		wl.ClientDelay = 30 * time.Microsecond
	}
	counter := 0
	var launch func()
	launch = func() {
		counter++
		spec := wl.Spec
		resumed := false
		if wl.ResumeFraction > 0 {
			// Deterministic interleaving of full/abbreviated handshakes.
			if float64(counter%100)/100.0 < wl.ResumeFraction {
				spec.Abbreviated = true
				resumed = true
			}
		}
		script := BuildScript(&m.p, spec)
		m.StartConn(script, resumed, func(at sim.Time) {
			m.sim.After(wl.ClientDelay+m.p.RTT/2, launch)
		})
	}
	// Stagger client start-up to avoid a synchronized thundering herd.
	for i := 0; i < wl.Clients; i++ {
		d := time.Duration(i%97) * 7 * time.Microsecond
		m.sim.After(d, launch)
	}
}

// ABWorkload drives keepalive transfer clients (the ApacheBench load of
// §5.4): each client handshakes once and then requests a fixed file in a
// closed loop for the whole run.
type ABWorkload struct {
	// Clients is the number of keepalive connections.
	Clients int
	// FileBytes is the requested object size.
	FileBytes int
	// RequestsPerConn bounds requests per connection before it reconnects
	// (large default ≈ keepalive forever).
	RequestsPerConn int
}

// Install starts the workload on the model.
func (wl ABWorkload) Install(m *Model) {
	reqs := wl.RequestsPerConn
	if reqs <= 0 {
		// Scripts are materialized up front, so keepalive connections are
		// bounded and reconnect periodically. Enough requests per
		// connection amortize the handshake to noise ("the keepalive
		// setting was tuned to avoid the influence of TLS handshake",
		// §5.4) while keeping script memory bounded for large files.
		reqs = (4 << 20) / max(wl.FileBytes, 1)
		if reqs < 16 {
			reqs = 16
		}
		if reqs > 1024 {
			reqs = 1024
		}
	}
	spec := ScriptSpec{
		Suite:        SuiteRSA, // AES128-SHA transfer after a TLS-RSA handshake
		RequestBytes: wl.FileBytes,
		Requests:     reqs,
	}
	var launch func()
	launch = func() {
		script := BuildScript(&m.p, spec)
		m.StartConn(script, false, func(at sim.Time) {
			m.sim.After(m.p.RTT/2, launch)
		})
	}
	for i := 0; i < wl.Clients; i++ {
		d := time.Duration(i%89) * 11 * time.Microsecond
		m.sim.After(d, launch)
	}
}

// LatencyWorkload drives an open-loop handshake-per-request load for the
// response-time evaluation (§5.5): Concurrency end clients each issue a
// new TLS-RSA connection (full handshake + small page) at a fixed rate.
type LatencyWorkload struct {
	// Concurrency is the number of end clients.
	Concurrency int
	// PerClientRate is connections per second per client.
	PerClientRate float64
	// PageBytes is the small response size (< 100 bytes in the paper).
	PageBytes int
}

// Install starts the workload on the model.
func (wl LatencyWorkload) Install(m *Model) {
	rate := wl.PerClientRate
	if rate <= 0 {
		rate = 50
	}
	page := wl.PageBytes
	if page <= 0 {
		page = 100
	}
	spec := ScriptSpec{Suite: SuiteRSA, RequestBytes: page, Requests: 1}
	mean := time.Duration(float64(time.Second) / rate)
	var clientLoop func()
	clientLoop = func() {
		// Exponential interarrival via the simulation's deterministic RNG.
		gap := time.Duration(m.sim.Rand().ExpFloat64() * float64(mean))
		m.sim.After(gap, func() {
			script := BuildScript(&m.p, spec)
			m.StartConn(script, false, nil)
			clientLoop()
		})
	}
	for i := 0; i < wl.Concurrency; i++ {
		clientLoop()
	}
}
