package perf

import (
	"testing"
	"time"

	"qtls/internal/offload"
)

// runOverload measures the stalled-endpoint saturation scenario with and
// without admission control.
func runOverload(t *testing.T, policy *offload.OverloadPolicy) RunResult {
	t.Helper()
	cfg := QTLS(3)
	cfg.Fault = &FaultScenario{StalledEndpoints: 1, OpTimeout: 2 * time.Millisecond}
	cfg.Overload = policy
	return Run(RunOptions{
		Config:  cfg,
		Warmup:  100 * time.Millisecond,
		Measure: 300 * time.Millisecond,
		Install: func(m *Model) {
			STimeWorkload{Clients: 120, Spec: ScriptSpec{Suite: SuiteECDHERSA}}.Install(m)
		},
	})
}

// Admission control in the DES: with one endpoint stalled and a
// saturating closed-loop pool, the armed policy sheds connections at
// accept time; without it the shed counter stays zero. Shed clients
// re-enter the closed loop immediately, so throughput does not collapse.
func TestOverloadSheddingDES(t *testing.T) {
	plain := runOverload(t, nil)
	if plain.Stats.Sheds != 0 {
		t.Fatalf("sheds counted with no policy armed: %+v", plain.Stats)
	}
	if plain.Stats.Handshakes == 0 {
		t.Fatal("no handshakes in the no-shed overload run")
	}

	// The per-worker connection cap is the signal that fires in the DES
	// (retrieval is lag-free, so in-flight counts stay low); the sick
	// workers accumulate conns far past any healthy worker's count.
	shed := runOverload(t, &offload.OverloadPolicy{MaxConns: 24, ShedFraction: 0.4})
	if shed.Stats.Sheds == 0 {
		t.Fatalf("armed policy shed nothing under saturation: %+v", shed.Stats)
	}
	if shed.Stats.Handshakes == 0 {
		t.Fatal("shedding starved every handshake")
	}
	// Shedding redirects clients off the congested workers: both CPS and
	// p99 must improve on the no-shed collapse.
	if shed.CPS <= plain.CPS {
		t.Fatalf("shedding did not recover throughput: %.0f vs %.0f CPS", shed.CPS, plain.CPS)
	}
	if shed.P99Latency >= plain.P99Latency {
		t.Fatalf("shedding did not bound p99: %v vs %v", shed.P99Latency, plain.P99Latency)
	}
}

// The overload figure has the expected shape: both shed and no-shed
// series are populated and the shed run actually sheds.
// (The figures package has its own shape test; this one pins the
// Config.Overload plumbing through Run.)
func TestOverloadPolicyDisabledByDefault(t *testing.T) {
	cfg := QTLS(1)
	if cfg.Overload != nil {
		t.Fatal("admission control must be opt-in for the paper's five configurations")
	}
}
