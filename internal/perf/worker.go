package perf

import (
	"time"

	"qtls/internal/flight"
	"qtls/internal/offload"
	"qtls/internal/sim"
)

// worker models one event-driven server worker pinned to one HT core: a
// run queue of connection activations, the in-flight offload counters
// feeding the heuristic polling scheme, a response ring shared with its
// QAT crypto instance, and the CPU accounting from which utilization and
// throughput emerge.
type worker struct {
	m        *Model
	id       int
	endpoint *endpoint

	// Per-lane home endpoints under a multi-device placement (nil
	// otherwise): asymmetric ops submit to asymEP, sym/PRF ops to symEP.
	// Conn-hash placements set both to the worker's hash-picked device.
	asymEP *endpoint
	symEP  *endpoint

	queue sim.FIFO[*conn]
	busy  bool

	// CPU accounting.
	busyStart sim.Time
	busyAccum time.Duration

	// Offload state.
	inflight     int
	inflightAsym int
	responses    sim.FIFO[*conn] // response ring: conns whose op completed
	alive        int             // open connections (TCalive)
	idle         int             // keepalive-idle connections (TCidle)
	lastPoll     sim.Time

	// policy is this worker's retrieval policy — a copy of the model's
	// so an armed adaptive controller is per-worker, exactly like the
	// live stack's Worker.poll.
	policy offload.PollPolicy
	// notif queues completed async events and schedules their delivery
	// (the §3.4 seam as an interface; nil for non-async configurations).
	notif offload.Notifier
	// adaptive is the closed-loop threshold controller (nil = static
	// thresholds), fed by the shared retrieve window and batchWin.
	adaptive *offload.AdaptivePoll
	batchWin *flight.Window

	// Timer-polling thread preemption debt (ticks landing while busy).
	stolen time.Duration

	// Pending FD notifications to dispatch after the FD delay.
	blocked *conn // QAT+S: connection the worker is blocked on

	// Degradation state (Config.Fault).
	timeoutCnt int  // offload deadlines expired on this instance
	tripped    bool // circuit breaker open: stop submitting doomed ops
}

// active returns TCactive = TCalive - TCidle (§4.3).
func (w *worker) active() int { return w.alive - w.idle }

func (w *worker) now() sim.Time { return w.m.sim.Now() }

// enqueue adds a connection activation to the run queue and kicks the
// worker if idle.
func (w *worker) enqueue(c *conn) {
	w.queue.Push(c)
	if !w.busy {
		w.beginBusy()
		w.runNext()
	}
}

func (w *worker) beginBusy() {
	w.busy = true
	w.busyStart = w.now()
}

func (w *worker) endBusy() {
	w.busy = false
	w.busyAccum += time.Duration(w.now() - w.busyStart)
}

// runNext pops the next activation; called only while busy.
func (w *worker) runNext() {
	// Pay any polling-thread preemption debt first.
	if w.stolen > 0 {
		d := w.stolen
		w.stolen = 0
		w.m.sim.After(d, w.runNext)
		return
	}
	c, ok := w.queue.Pop()
	if !ok {
		w.taskBoundary()
		return
	}
	w.processConn(c)
}

// taskBoundary runs end-of-iteration work: heuristic polling checks and
// the async queue drain, then either continues with queued work or goes
// idle.
func (w *worker) taskBoundary() {
	if w.heuristicCheck() {
		// heuristicCheck scheduled a poll; it re-enters taskBoundary.
		return
	}
	if w.queue.Len() > 0 {
		w.runNext()
		return
	}
	w.endBusy()
}

// stalledOffload reports whether an offload of op from this worker would
// vanish into a stalled engine pool (Config.Fault scenario).
func (w *worker) stalledOffload(op opClass) bool {
	return w.m.cfg.Fault != nil && w.endpoint != nil && op.asym() && w.endpoint.asym.stalled
}

// routeEndpoint picks the endpoint an offload of op submits to. Without
// a multi-device placement it is always the worker's pinned endpoint —
// the exact legacy path, including the Fault scenario's stalled-pool
// semantics (ops vanish and the deadline rescues them). Under an active
// placement the op goes to its lane's home endpoint, spilling pool-wide
// to the first healthy device when the home pool is stalled — the
// re-routing that absorbs a mid-run device degradation.
func (w *worker) routeEndpoint(op opClass) *endpoint {
	if !w.m.placementOn {
		return w.endpoint
	}
	ep := w.symEP
	if op.asym() {
		ep = w.asymEP
	}
	if !ep.pool(op).stalled {
		return ep
	}
	for _, d := range w.m.devs {
		cand := d.endpoints[w.id%len(d.endpoints)]
		if cand != ep && !cand.pool(op).stalled {
			if w.m.measuring {
				w.m.stats.Reroutes++
			}
			return cand
		}
	}
	return ep // every device degraded: swallowed like a Fault stall
}

// recordTimeout feeds the circuit breaker after a deadline expiration.
func (w *worker) recordTimeout() {
	sc := w.m.cfg.Fault
	if sc == nil || sc.TripThreshold <= 0 || w.tripped {
		return
	}
	w.timeoutCnt++
	if w.timeoutCnt >= sc.TripThreshold {
		w.tripped = true
	}
}

// onOpTimeout abandons a stalled async offload: the in-flight counters
// are settled (the response will never arrive) and the connection is
// re-queued carrying the op's software cost as a fallback burst.
func (w *worker) onOpTimeout(c *conn, st step) {
	w.inflight--
	if st.op.asym() {
		w.inflightAsym--
	}
	if w.m.measuring {
		w.m.stats.Timeouts++
		w.m.stats.SWFallbacks++
	}
	w.recordTimeout()
	c.fallback = st.sw
	w.enqueue(c)
}

// processConn executes one connection's script from its current step
// until it parks (network wait, async offload) or finishes.
func (w *worker) processConn(c *conn) {
	if c.fallback > 0 {
		// Pay a pending software-fallback burst on the worker core.
		d := c.fallback
		c.fallback = 0
		w.m.sim.After(d, func() { w.processConn(c) })
		return
	}
	for {
		if c.idx >= len(c.script) {
			w.finishConn(c)
			w.runNext()
			return
		}
		st := c.script[c.idx]
		switch st.kind {
		case stepCPU:
			c.idx++
			w.m.sim.After(st.dur, func() { w.processConn(c) })
			return

		case stepHSDone:
			c.idx++
			if w.m.measuring {
				w.m.stats.Handshakes++
				if c.resumed {
					w.m.stats.Resumed++
				}
			}
			continue

		case stepReqDone:
			c.idx++
			if w.m.measuring {
				w.m.stats.Requests++
			}
			continue

		case stepNet:
			c.idx++
			delay := st.dur
			if st.bytes > 0 {
				delay += w.m.link.sendDelay(w.now(), st.bytes)
				if w.m.measuring {
					w.m.stats.BytesServed += int64(st.bytes)
				}
			}
			// While waiting for the client (next handshake flight or
			// keepalive request) the connection leaves TCactive: the
			// timeliness constraint compares in-flight requests against
			// connections actually awaiting server work (§3.3).
			w.idle++
			arr := w.now() + sim.Time(delay)
			w.m.sim.At(arr, func() {
				w.idle--
				w.enqueue(c)
			})
			w.runNext()
			return

		case stepCrypto:
			if st.op == opCipher && !w.m.recordOffload(st.bytes) {
				// The record policy keeps this seal on the worker core
				// (software mode, or an adaptive record below threshold).
				if w.m.measuring {
					w.m.stats.RecordSWOps++
				}
				c.idx++
				w.m.sim.After(st.sw, func() { w.processConn(c) })
				return
			}
			if !w.m.cfg.UseQAT || !st.op.offloadable() {
				// Software calculation on the worker core.
				c.idx++
				w.m.sim.After(st.sw, func() { w.processConn(c) })
				return
			}
			if w.tripped && w.stalledOffload(st.op) {
				// Breaker open: skip the doomed submission entirely.
				if w.m.measuring {
					w.m.stats.SWFallbacks++
				}
				c.idx++
				w.m.sim.After(st.sw, func() { w.processConn(c) })
				return
			}
			if !w.m.cfg.Async {
				w.straightOffload(c, st)
				return
			}
			if w.inflight >= w.m.p.RingCapacity {
				// Request ring full: the submission fails, the offload
				// job pauses with the retry indication, and the handler
				// is rescheduled after responses have been retrieved
				// (§3.2 "failure of crypto submission").
				if w.m.measuring {
					w.m.stats.RingFulls++
				}
				w.queue.Push(c)
				w.poll(false)
				return
			}
			w.asyncOffload(c, st)
			return
		}
	}
}

// finishConn completes a connection. The client-perceived completion
// (connection latency for Fig. 11) includes the final half-RTT back.
func (w *worker) finishConn(c *conn) {
	w.alive--
	if w.m.measuring {
		w.m.stats.Latency.Observe(float64(w.now()-c.start) + float64(w.m.p.RTT/2))
	}
	if c.onDone != nil {
		c.onDone(w.now())
	}
}

// straightOffload is the blocking offload of QAT+S (Fig. 3): the worker
// submits and then waits — busy-looping/sleeping on its core — until the
// polling thread's next tick after the accelerator completes.
func (w *worker) straightOffload(c *conn, st step) {
	p := &w.m.p
	c.idx++
	if st.op == opCipher && w.m.measuring {
		w.m.stats.RecordOffloadOps++
	}
	if w.stalledOffload(st.op) {
		// The submission vanishes into the hung engine; the worker stays
		// blocked until the deadline, then computes in software inline.
		w.m.sim.After(p.SubmitCost+w.m.cfg.Fault.OpTimeout, func() {
			if w.m.measuring {
				w.m.stats.Timeouts++
				w.m.stats.SWFallbacks++
			}
			w.recordTimeout()
			w.m.sim.After(st.sw, func() { w.processConn(c) })
		})
		return
	}
	w.m.sim.After(p.SubmitCost, func() {
		w.blocked = c
		submitAt := w.now()
		w.routeEndpoint(st.op).submit(st.op, st.hw, func(at sim.Time) {
			// The response is ready after both engine completion and the
			// device pipeline latency; the inline busy-poll discovers it
			// with a small slop.
			ready := submitAt + sim.Time(w.pipeLatency(st.op))
			if at > ready {
				ready = at
			}
			ready += sim.Time(p.BlockedOpOverhead)
			w.m.sim.At(ready, func() {
				w.blocked = nil
				// Retrieval cost, then continue the same connection —
				// the worker never yielded.
				w.m.sim.After(p.PollCost+p.PerResponseCost, func() {
					w.processConn(c)
				})
			})
		})
	})
}

// pipeLatency returns the device's end-to-end latency floor for an op.
func (w *worker) pipeLatency(op opClass) time.Duration {
	if op.asym() {
		return w.m.p.PipeLatencyAsym
	}
	return w.m.p.PipeLatencySym
}

// asyncOffload is the QTLS pre-processing phase (§3.2): submit, pause the
// offload job, and return control to the event loop.
func (w *worker) asyncOffload(c *conn, st step) {
	p := &w.m.p
	c.idx++
	if st.op == opCipher && w.m.measuring {
		w.m.stats.RecordOffloadOps++
	}
	w.inflight++
	if st.op.asym() {
		w.inflightAsym++
	}
	swap := p.FiberSwapCost
	if w.m.cfg.Impl == ImplStack {
		swap = p.StackSwapCost
	}
	cost := p.SubmitCost + swap
	w.m.sim.After(cost, func() {
		if w.stalledOffload(st.op) {
			// Swallowed by the hung engine; only the per-op deadline
			// gets the connection moving again (the done callback below
			// never fires for a stalled pool).
			w.m.sim.After(w.m.cfg.Fault.OpTimeout, func() { w.onOpTimeout(c, st) })
		}
		submitAt := w.now()
		c.offAt = submitAt
		w.routeEndpoint(st.op).submit(st.op, st.hw, func(at sim.Time) {
			// Response lands on the instance's response ring once the
			// pipeline latency has elapsed; it is retrieved by a later
			// poll — or delivered immediately by a kernel interrupt in
			// the PollInterrupt ablation.
			ready := submitAt + sim.Time(w.pipeLatency(st.op))
			if at > ready {
				ready = at
			}
			w.m.sim.At(ready, func() {
				if w.m.cfg.Polling == PollInterrupt {
					w.deliverInterrupt(c)
					return
				}
				w.responses.Push(c)
			})
		})
		// Control returned to the application: next connection. Check
		// the heuristic conditions right after the submission ("wherever
		// a crypto operation may be involved", §4.3).
		w.taskBoundary()
	})
}

// notifyCost is the per-event notification cost of the configured
// scheme: an FD event pays the write(2) + epoll processing, the
// kernel-bypass and coalesced schemes pay a user-space queue insertion
// (coalesced pays its single descriptor write per batch separately).
func (w *worker) notifyCost() time.Duration {
	if w.m.cfg.Notify == NotifFD {
		return w.m.p.NotifyFDCost
	}
	return w.m.p.NotifyBypassCost
}

// retrieveOne pops one response off the ring, settles the in-flight
// counters, feeds the feedback windows, and hands the event to the
// notifier. It returns the handle and whether the notifier demanded a
// kernel wakeup for it.
func (w *worker) retrieveOne(now sim.Time) (c *conn, wake bool) {
	c, _ = w.responses.Pop()
	w.inflight--
	if c.idx > 0 {
		if st := c.script[c.idx-1]; st.kind == stepCrypto && st.op.asym() {
			w.inflightAsym--
		}
	}
	if w.m.retrieveWin != nil {
		// Submission → collected: the live stack's PhaseRetrieve span.
		w.m.retrieveWin.Observe(float64(now-c.offAt), int64(now))
	}
	if w.m.measuring {
		w.m.stats.Notifications++
	}
	return c, w.notif.Wake(c)
}

// collect drains the response ring through the notifier and returns the
// notification cost plus the two delivery batches, captured at the
// point the poll pays for them (the notifier queue never spans a
// virtual-time gap, mirroring the single-threaded live loop).
func (w *worker) collect(n int, now sim.Time) (cost time.Duration, wakeBatch, loopBatch []any) {
	p := &w.m.p
	wakes := 0
	for i := 0; i < n; i++ {
		cost += p.PerResponseCost + w.notifyCost()
		if _, wake := w.retrieveOne(now); wake {
			wakes++
		}
	}
	if w.m.cfg.Notify == NotifCoalesced {
		// The batch's armed wakeups (one per coalesced delivery) each pay
		// one descriptor write — the eventfd amortization.
		cost += time.Duration(wakes) * p.NotifyFDCost
	}
	if n > 0 {
		if w.batchWin != nil {
			w.batchWin.Observe(float64(n), int64(now))
		}
		if w.adaptive != nil {
			w.adaptive.Tick(int64(now))
		}
	}
	return cost, w.notif.Deliver(offload.DeliverWakeup), w.notif.Deliver(offload.DeliverLoopEnd)
}

// poll retrieves all ready responses, paying the polling and
// notification costs, then dispatches the resumed handlers.
// It re-enters taskBoundary when done.
func (w *worker) poll(failover bool) {
	p := &w.m.p
	n := w.responses.Len()
	now := w.now()
	w.lastPoll = now
	if w.m.measuring {
		w.m.stats.Polls++
		if n == 0 {
			w.m.stats.EmptyPolls++
		}
		if failover {
			w.m.stats.FailoverPolls++
		}
	}
	cost := p.PollCost
	if n == 0 {
		// An empty poll from the spinning loop: one loop iteration's
		// worth of work paces the spin.
		cost += p.IdleLoopCost
	}
	ncost, wakeBatch, loopBatch := w.collect(n, now)
	cost += ncost
	w.m.sim.After(cost, func() {
		if len(wakeBatch) > 0 {
			// Wakeup-delivered events surface on a later epoll iteration;
			// the worker is free to process other work meanwhile.
			w.m.sim.After(p.FDDispatchDelay, func() {
				for _, h := range wakeBatch {
					w.enqueue(h.(*conn))
				}
			})
			w.taskBoundary()
			return
		}
		for _, h := range loopBatch {
			w.queue.Push(h.(*conn))
		}
		w.taskBoundary()
	})
}

// deliverInterrupt hands one completion to the worker via a kernel
// interrupt: per-event kernel transition cost, no polling (§3.3's
// rejected alternative, kept as an ablation).
func (w *worker) deliverInterrupt(c *conn) {
	p := &w.m.p
	w.inflight--
	if c.idx > 0 {
		if st := c.script[c.idx-1]; st.kind == stepCrypto && st.op.asym() {
			w.inflightAsym--
		}
	}
	if w.m.measuring {
		w.m.stats.Notifications++
	}
	// The interrupt steals CPU like a preemption.
	if w.busy {
		w.stolen += p.InterruptCost
	} else {
		w.busyAccum += p.InterruptCost
	}
	w.enqueue(c)
}

// heuristicCheck applies the efficiency and timeliness constraints
// (§3.3) via the shared offload.PollPolicy. It returns true when a poll
// was scheduled (the poll re-enters taskBoundary).
func (w *worker) heuristicCheck() bool {
	if !w.m.cfg.UseQAT || !w.m.cfg.Async {
		return false
	}
	if !w.policy.ShouldPoll(w.inflight, w.inflightAsym, w.active()) {
		return false
	}
	w.poll(false)
	return true
}

// startTimerPolling launches the timer-based polling thread: every
// interval it preempts the worker core (context switch + poll). Ready
// responses are dispatched; empty polls still cost their tick.
func (w *worker) startTimerPolling() {
	p := &w.m.p
	interval := w.m.cfg.PollInterval
	var tick func()
	tick = func() {
		w.m.sim.After(interval, func() {
			tickCost := p.CtxSwitchCost + p.PollCost
			n := w.responses.Len()
			now := w.now()
			ncost, wakeBatch, loopBatch := w.collect(n, now)
			tickCost += ncost
			if w.m.measuring {
				w.m.stats.Polls++
				if n == 0 {
					w.m.stats.EmptyPolls++
				}
			}
			w.lastPoll = now
			if len(wakeBatch) > 0 {
				w.m.sim.After(p.FDDispatchDelay, func() {
					for _, h := range wakeBatch {
						w.enqueue(h.(*conn))
					}
				})
			} else {
				for _, h := range loopBatch {
					w.enqueue(h.(*conn))
				}
			}
			// The polling thread steals CPU from the worker: preemption
			// debt if busy, direct busy time otherwise.
			if w.busy {
				w.stolen += tickCost
			} else {
				w.busyAccum += tickCost
			}
			tick()
		})
	}
	tick()
}

// startFailoverTimer arms the heuristic failover poll (§4.3): if no poll
// happened during the last interval but requests are in flight, poll
// once.
func (w *worker) startFailoverTimer() {
	interval := w.policy.FailoverInterval
	var tick func()
	tick = func() {
		w.m.sim.After(interval, func() {
			if w.policy.FailoverDue(w.inflight, time.Duration(w.now()-w.lastPoll)) {
				if !w.busy {
					w.beginBusy()
					w.poll(true)
				}
				// If busy, the in-loop checks will fire soon enough.
			}
			tick()
		})
	}
	tick()
}
