package perf

import (
	"testing"
	"time"
)

// runDegraded measures ECDHE-RSA CPS for a QTLS configuration with an
// optional fault scenario.
func runDegraded(t *testing.T, sc *FaultScenario, clients int) RunResult {
	t.Helper()
	cfg := QTLS(3) // one worker per endpoint: exactly one sits on the sick one
	cfg.Fault = sc
	return Run(RunOptions{
		Config:  cfg,
		Warmup:  100 * time.Millisecond,
		Measure: 300 * time.Millisecond,
		Install: func(m *Model) {
			STimeWorkload{Clients: clients, Spec: ScriptSpec{Suite: SuiteECDHERSA}}.Install(m)
		},
	})
}

// A stalled endpoint degrades throughput instead of hanging the workers
// pinned to it: every doomed op times out into a software fallback, so
// handshakes keep completing on all workers.
func TestStalledEndpointDegradesNotHangs(t *testing.T) {
	healthy := runDegraded(t, nil, 120)
	if healthy.Stats.Timeouts != 0 || healthy.Stats.SWFallbacks != 0 || healthy.Stats.Trips != 0 {
		t.Fatalf("healthy run has degradation counters: %+v", healthy.Stats)
	}
	sick := runDegraded(t, &FaultScenario{StalledEndpoints: 1, OpTimeout: 2 * time.Millisecond}, 120)
	if sick.Stats.Handshakes == 0 {
		t.Fatal("no handshakes completed with a stalled endpoint")
	}
	if sick.Stats.Timeouts == 0 || sick.Stats.SWFallbacks == 0 {
		t.Fatalf("stall produced no timeouts/fallbacks: %+v", sick.Stats)
	}
	if sick.CPS >= healthy.CPS {
		t.Fatalf("degraded CPS %.0f not below healthy %.0f", sick.CPS, healthy.CPS)
	}
	// Degraded, not dead. Under this closed loop the round-robin conn
	// dispatch lets the sick worker's queue throttle the whole pool (its
	// software fallbacks serialize ~1.8 ms of CPU per handshake), so the
	// floor is the trapped steady state, not healthy×2/3.
	if sick.CPS < healthy.CPS/30 {
		t.Fatalf("degraded CPS %.0f collapsed (healthy %.0f)", sick.CPS, healthy.CPS)
	}
}

// The circuit breaker stops paying the deadline per doomed op: after
// TripThreshold timeouts the sick worker's asymmetric ops go straight to
// software. At light load (deadline waits, not fallback CPU, dominate
// the sick worker's latency) that clearly recovers both CPS and latency.
func TestBreakerTripRecoversThroughput(t *testing.T) {
	noBreaker := runDegraded(t, &FaultScenario{StalledEndpoints: 1, OpTimeout: 2 * time.Millisecond}, 12)
	breaker := runDegraded(t, &FaultScenario{
		StalledEndpoints: 1,
		OpTimeout:        2 * time.Millisecond,
		TripThreshold:    4,
	}, 12)
	if breaker.Stats.Trips != 1 {
		t.Fatalf("trips = %d, want exactly the one worker on the stalled endpoint", breaker.Stats.Trips)
	}
	if breaker.Stats.SWFallbacks == 0 {
		t.Fatalf("breaker run recorded no fallbacks: %+v", breaker.Stats)
	}
	// Once open, the breaker skips the 2 ms deadline stall per asym op.
	if breaker.CPS <= noBreaker.CPS {
		t.Fatalf("breaker CPS %.0f not above deadline-only %.0f", breaker.CPS, noBreaker.CPS)
	}
	if breaker.AvgLatency >= noBreaker.AvgLatency {
		t.Fatalf("breaker latency %v not below deadline-only %v", breaker.AvgLatency, noBreaker.AvgLatency)
	}
	// Timeouts stop once the breaker is open (the trip happens during
	// warmup), so the measured window sees far fewer than deadline-only.
	if breaker.Stats.Timeouts > noBreaker.Stats.Timeouts/2 {
		t.Fatalf("breaker did not curb timeouts: %d vs %d", breaker.Stats.Timeouts, noBreaker.Stats.Timeouts)
	}
}

// The straight (blocking) offload path honors the deadline too: QAT+S on
// a fully stalled device still completes handshakes in software.
func TestStraightOffloadStallDeadline(t *testing.T) {
	cfg := QATS(2)
	cfg.Fault = &FaultScenario{StalledEndpoints: 3, OpTimeout: time.Millisecond}
	res := Run(RunOptions{
		Config:  cfg,
		Warmup:  100 * time.Millisecond,
		Measure: 300 * time.Millisecond,
		Install: func(m *Model) {
			STimeWorkload{Clients: 32, Spec: ScriptSpec{Suite: SuiteRSA}}.Install(m)
		},
	})
	if res.Stats.Handshakes == 0 {
		t.Fatal("QAT+S with stalled device completed no handshakes")
	}
	if res.Stats.Timeouts == 0 || res.Stats.SWFallbacks == 0 {
		t.Fatalf("no deadline activity: %+v", res.Stats)
	}
}

// Fault runs are as deterministic as healthy ones: same seed, same stats.
func TestFaultScenarioDeterministic(t *testing.T) {
	a := runDegraded(t, &FaultScenario{StalledEndpoints: 1, OpTimeout: 2 * time.Millisecond, TripThreshold: 4}, 60)
	b := runDegraded(t, &FaultScenario{StalledEndpoints: 1, OpTimeout: 2 * time.Millisecond, TripThreshold: 4}, 60)
	if a.Stats.Handshakes != b.Stats.Handshakes ||
		a.Stats.Timeouts != b.Stats.Timeouts ||
		a.Stats.SWFallbacks != b.Stats.SWFallbacks {
		t.Fatalf("nondeterministic fault run: %+v vs %+v", a.Stats, b.Stats)
	}
}
