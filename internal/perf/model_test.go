package perf

import (
	"testing"
	"time"

	"qtls/internal/sim"
)

// short run windows keep unit tests fast; calibration-grade runs live in
// shape_test.go.
const (
	tWarm    = 100 * time.Millisecond
	tMeasure = 200 * time.Millisecond
)

func cps(t *testing.T, cfg Config, spec ScriptSpec, clients int, resume float64) float64 {
	t.Helper()
	res := Run(RunOptions{
		Config: cfg, Warmup: tWarm, Measure: tMeasure,
		Install: func(m *Model) {
			STimeWorkload{Clients: clients, Spec: spec, ResumeFraction: resume}.Install(m)
		},
	})
	return res.CPS
}

func TestDeterminism(t *testing.T) {
	a := cps(t, QTLS(4), ScriptSpec{Suite: SuiteRSA}, 200, 0)
	b := cps(t, QTLS(4), ScriptSpec{Suite: SuiteRSA}, 200, 0)
	if a != b {
		t.Fatalf("model not deterministic: %v vs %v", a, b)
	}
}

func TestConfigurationsOrder(t *testing.T) {
	cfgs := Configurations(4)
	want := []string{"SW", "QAT+S", "QAT+A", "QAT+AH", "QTLS"}
	if len(cfgs) != len(want) {
		t.Fatalf("got %d configurations", len(cfgs))
	}
	for i, c := range cfgs {
		if c.Name != want[i] {
			t.Fatalf("config %d = %s, want %s", i, c.Name, want[i])
		}
	}
}

// The headline ordering of the paper: SW < QAT+S < QAT+A < QAT+AH < QTLS
// for full TLS-RSA handshakes at moderate worker counts.
func TestConfigurationOrderingRSA(t *testing.T) {
	var prev float64
	var prevName string
	for _, cfg := range Configurations(4) {
		got := cps(t, cfg, ScriptSpec{Suite: SuiteRSA}, 300, 0)
		if got <= prev {
			t.Fatalf("%s (%.0f) should beat %s (%.0f)", cfg.Name, got, prevName, prev)
		}
		prev, prevName = got, cfg.Name
	}
}

// CPS scales roughly linearly with workers below device saturation
// (Fig. 7a: "increases linearly ... from 2 to 24").
func TestLinearScalingBelowSaturation(t *testing.T) {
	c2 := cps(t, QTLS(2), ScriptSpec{Suite: SuiteRSA}, clients2(2), 0)
	c8 := cps(t, QTLS(8), ScriptSpec{Suite: SuiteRSA}, clients2(8), 0)
	ratio := c8 / c2
	if ratio < 3.2 || ratio > 4.8 {
		t.Fatalf("8w/2w ratio = %.2f, want ~4 (linear scaling)", ratio)
	}
}

func clients2(w int) int { return 100 + 40*w }

// The QAT card saturates: 32 workers deliver far less than 4x the CPS of
// 8 workers (the ~100K DH8970 limit).
func TestCardSaturation(t *testing.T) {
	c8 := cps(t, QTLS(8), ScriptSpec{Suite: SuiteRSA}, clients2(8), 0)
	c32 := cps(t, QTLS(32), ScriptSpec{Suite: SuiteRSA}, clients2(32), 0)
	if c32 > 3.2*c8 {
		t.Fatalf("no saturation: 32w=%.0f vs 8w=%.0f", c32, c8)
	}
	if c32 < 80_000 || c32 > 115_000 {
		t.Fatalf("card limit = %.0f, want ≈100K", c32)
	}
}

// Abbreviated handshakes skip asymmetric work: resumption CPS is much
// higher than full-handshake CPS for the software baseline.
func TestResumptionSkipsAsymmetricWork(t *testing.T) {
	full := cps(t, SW(4), ScriptSpec{Suite: SuiteECDHERSA}, 300, 0)
	abbr := cps(t, SW(4), ScriptSpec{Suite: SuiteECDHERSA}, 300, 1.0)
	if abbr < 4*full {
		t.Fatalf("abbreviated %.0f should be >4x full %.0f for SW", abbr, full)
	}
}

// QAT+S loses to SW on abbreviated handshakes (Fig. 9a): blocking offload
// of cheap PRF ops costs more than computing them.
func TestStraightOffloadLosesOnResumption(t *testing.T) {
	sw := cps(t, SW(4), ScriptSpec{Suite: SuiteECDHERSA}, 400, 1.0)
	qs := cps(t, QATS(4), ScriptSpec{Suite: SuiteECDHERSA}, 400, 1.0)
	if qs >= sw {
		t.Fatalf("QAT+S %.0f should lose to SW %.0f on 100%% abbreviated", qs, sw)
	}
}

// The resumption mix interpolates between full and abbreviated rates.
func TestResumptionMixMonotonic(t *testing.T) {
	full := cps(t, QTLS(4), ScriptSpec{Suite: SuiteECDHERSA}, 300, 0)
	mix := cps(t, QTLS(4), ScriptSpec{Suite: SuiteECDHERSA}, 300, 0.9)
	abbr := cps(t, QTLS(4), ScriptSpec{Suite: SuiteECDHERSA}, 300, 1.0)
	if !(full < mix && mix < abbr) {
		t.Fatalf("mix not monotonic: full=%.0f mix=%.0f abbr=%.0f", full, mix, abbr)
	}
}

// Throughput: QTLS beats SW by ~2x at large files, roughly ties at 4 KB
// (Fig. 10).
func TestThroughputShape(t *testing.T) {
	run := func(cfg Config, kb int) float64 {
		res := Run(RunOptions{
			Config: cfg, Warmup: tWarm, Measure: tMeasure,
			Install: func(m *Model) {
				ABWorkload{Clients: 200, FileBytes: kb * 1024}.Install(m)
			},
		})
		return res.Gbps
	}
	swBig, qtBig := run(SW(8), 128), run(QTLS(8), 128)
	if qtBig < 1.7*swBig {
		t.Fatalf("128KB: QTLS %.1f should be ~2x SW %.1f", qtBig, swBig)
	}
	swSmall, qtSmall := run(SW(8), 4), run(QTLS(8), 4)
	if qtSmall > 1.6*swSmall {
		t.Fatalf("4KB: QTLS %.1f should be close to SW %.1f", qtSmall, swSmall)
	}
}

// Latency: the async framework keeps response time flat as concurrency
// grows while SW queues up (Fig. 11).
func TestLatencyShape(t *testing.T) {
	lat := func(cfg Config, conc int) time.Duration {
		res := Run(RunOptions{
			Config: cfg, Warmup: 2 * tWarm, Measure: tMeasure,
			Install: func(m *Model) {
				LatencyWorkload{Concurrency: conc, PerClientRate: 6}.Install(m)
			},
		})
		return res.AvgLatency
	}
	swLow := lat(SW(1), 1)
	qtLow := lat(QTLS(1), 1)
	if qtLow >= swLow {
		t.Fatalf("QTLS %v should beat SW %v at concurrency 1", qtLow, swLow)
	}
	swHigh := lat(SW(1), 64)
	qtHigh := lat(QTLS(1), 64)
	reduction := 1 - float64(qtHigh)/float64(swHigh)
	if reduction < 0.5 {
		t.Fatalf("reduction at c=64 = %.0f%%, want large (paper ~85%%)", reduction*100)
	}
}

// The 1 ms polling thread devastates low-concurrency latency (Fig. 12c).
func TestSlowTimerPollingLatency(t *testing.T) {
	mk := func(interval time.Duration) Config {
		cfg := QATA(1)
		cfg.PollInterval = interval
		return cfg
	}
	lat := func(cfg Config) time.Duration {
		res := Run(RunOptions{
			Config: cfg, Warmup: tWarm, Measure: tMeasure,
			Install: func(m *Model) {
				LatencyWorkload{Concurrency: 2, PerClientRate: 6}.Install(m)
			},
		})
		return res.AvgLatency
	}
	fast := lat(mk(10 * time.Microsecond))
	slow := lat(mk(time.Millisecond))
	if slow < fast+2*time.Millisecond {
		t.Fatalf("1ms polling latency %v should far exceed 10µs polling %v", slow, fast)
	}
}

// 10µs timer polling costs throughput relative to heuristic polling
// (Fig. 12a: ~20% gap).
func TestTimerPollingThroughputGap(t *testing.T) {
	timer := cps(t, QATA(8), ScriptSpec{Suite: SuiteRSA}, clients2(8), 0)
	heur := cps(t, QATAH(8), ScriptSpec{Suite: SuiteRSA}, clients2(8), 0)
	gap := 1 - timer/heur
	if gap < 0.08 || gap > 0.35 {
		t.Fatalf("10µs-vs-heuristic gap = %.0f%%, want ~20%%", gap*100)
	}
}

// Kernel-bypass notification beats FD notification (Fig. 7a: ~8%).
func TestNotificationSchemeGap(t *testing.T) {
	fd := cps(t, QATAH(8), ScriptSpec{Suite: SuiteRSA}, clients2(8), 0)
	bypass := cps(t, QTLS(8), ScriptSpec{Suite: SuiteRSA}, clients2(8), 0)
	if bypass <= fd {
		t.Fatalf("kernel bypass %.0f should beat FD %.0f", bypass, fd)
	}
	gain := bypass/fd - 1
	if gain > 0.25 {
		t.Fatalf("bypass gain %.0f%% implausibly large", gain*100)
	}
}

// TLS 1.3 gains less from offload than TLS 1.2 because HKDF stays on the
// CPU (Fig. 8 vs Fig. 7b).
func TestTLS13GainLowerThanTLS12(t *testing.T) {
	ratio := func(spec ScriptSpec) float64 {
		sw := cps(t, SW(8), spec, clients2(8), 0)
		qt := cps(t, QTLS(8), spec, clients2(8), 0)
		return qt / sw
	}
	r12 := ratio(ScriptSpec{Suite: SuiteRSA})
	r13 := ratio(ScriptSpec{Suite: SuiteTLS13})
	if r13 >= r12 {
		t.Fatalf("TLS1.3 gain %.1fx should be below TLS1.2 gain %.1fx", r13, r12)
	}
	if r13 < 2 {
		t.Fatalf("TLS1.3 gain %.1fx implausibly low", r13)
	}
}

// The P-256 software anomaly (Fig. 7c): SW beats QAT+S on P-256 but loses
// badly on P-384.
func TestP256MontgomeryAnomaly(t *testing.T) {
	p256 := ScriptSpec{Suite: SuiteECDHEECDSA, Curve: Curves()[0]}
	p384 := ScriptSpec{Suite: SuiteECDHEECDSA, Curve: Curves()[1]}
	sw256 := cps(t, SW(4), p256, 260, 0)
	qs256 := cps(t, QATS(4), p256, 260, 0)
	if sw256 <= qs256 {
		t.Fatalf("P-256: SW %.0f should beat QAT+S %.0f", sw256, qs256)
	}
	sw384 := cps(t, SW(4), p384, 260, 0)
	qt384 := cps(t, QTLS(4), p384, 260, 0)
	if qt384 < 6*sw384 {
		t.Fatalf("P-384: QTLS %.0f should crush SW %.0f (paper 14x)", qt384, sw384)
	}
}

// Engine pools: asymmetric and symmetric requests queue independently.
func TestEnginePoolIndependence(t *testing.T) {
	s := sim.New(1)
	dev := newDevice(s, 1, 1, 1)
	ep := dev.endpoints[0]
	var doneOrder []string
	ep.submit(opRSA, 100*time.Microsecond, func(sim.Time) { doneOrder = append(doneOrder, "rsa1") })
	ep.submit(opRSA, 100*time.Microsecond, func(sim.Time) { doneOrder = append(doneOrder, "rsa2") })
	ep.submit(opPRF, 10*time.Microsecond, func(sim.Time) { doneOrder = append(doneOrder, "prf") })
	s.Drain(100)
	// The PRF runs on the sym engine concurrently with rsa1; rsa2 queues.
	if len(doneOrder) != 3 || doneOrder[0] != "prf" || doneOrder[2] != "rsa2" {
		t.Fatalf("order = %v, want prf first, rsa2 last", doneOrder)
	}
	if s.Now() != sim.Time(200*time.Microsecond) {
		t.Fatalf("rsa2 finished at %v, want 200µs (queued behind rsa1)", s.Now())
	}
}

func TestLinkSerialization(t *testing.T) {
	l := &link{gbps: 8} // 1 GB/s → 1 ns per byte
	d1 := l.sendDelay(0, 1000)
	if d1 != 1000*time.Nanosecond {
		t.Fatalf("first send delay = %v", d1)
	}
	// Second send queues behind the first.
	d2 := l.sendDelay(0, 1000)
	if d2 != 2000*time.Nanosecond {
		t.Fatalf("queued send delay = %v", d2)
	}
	if l.sendDelay(0, 0) != 0 {
		t.Fatal("zero bytes should cost nothing")
	}
}

func TestBuildScriptOpCounts(t *testing.T) {
	p := DefaultParams()
	count := func(spec ScriptSpec) (rsa, ecc, prf, hkdf, cipher int) {
		for _, st := range BuildScript(&p, spec) {
			if st.kind != stepCrypto {
				continue
			}
			switch st.op {
			case opRSA:
				rsa++
			case opECDSA, opECDH:
				ecc++
			case opPRF:
				prf++
			case opHKDF:
				hkdf++
			case opCipher:
				cipher++
			}
		}
		return
	}
	// Table 1 rows.
	if r, e, p4, h, _ := count(ScriptSpec{Suite: SuiteRSA}); r != 1 || e != 0 || p4 != 4 || h != 0 {
		t.Fatalf("TLS-RSA script ops = %d/%d/%d/%d", r, e, p4, h)
	}
	if r, e, p4, _, _ := count(ScriptSpec{Suite: SuiteECDHERSA}); r != 1 || e != 2 || p4 != 4 {
		t.Fatalf("ECDHE-RSA script ops = %d/%d/%d", r, e, p4)
	}
	if r, e, p4, _, _ := count(ScriptSpec{Suite: SuiteECDHEECDSA}); r != 0 || e != 3 || p4 != 4 {
		t.Fatalf("ECDHE-ECDSA script ops = %d/%d/%d", r, e, p4)
	}
	if r, e, _, h, _ := count(ScriptSpec{Suite: SuiteTLS13}); r != 1 || e != 2 || h <= 4 {
		t.Fatalf("TLS1.3 script ops = %d/%d/hkdf=%d", r, e, h)
	}
	// Abbreviated: PRF only.
	if r, e, p4, _, _ := count(ScriptSpec{Suite: SuiteECDHERSA, Abbreviated: true}); r != 0 || e != 0 || p4 != 3 {
		t.Fatalf("abbreviated script ops = %d/%d/%d", r, e, p4)
	}
	// 100KB response = 7 records = 7 cipher ops.
	if _, _, _, _, c := count(ScriptSpec{Suite: SuiteRSA, RequestBytes: 100 * 1024}); c != 7 {
		t.Fatalf("cipher ops = %d, want 7", c)
	}
}

func TestStatsHelpers(t *testing.T) {
	st := newStats()
	st.Handshakes = 500
	st.BytesServed = 1 << 30
	if got := st.CPS(time.Second); got != 500 {
		t.Fatalf("CPS = %v", got)
	}
	if got := st.Gbps(time.Second); got < 8.5 || got > 8.7 {
		t.Fatalf("Gbps = %v", got)
	}
	st.CPUBusy = 2 * time.Second
	if got := st.Utilization(4, time.Second); got != 0.5 {
		t.Fatalf("Utilization = %v", got)
	}
}

func TestSuiteNames(t *testing.T) {
	for _, s := range []Suite{SuiteRSA, SuiteECDHERSA, SuiteECDHEECDSA, SuiteTLS13} {
		if s.String() == "suite?" {
			t.Fatalf("missing name for suite %d", s)
		}
	}
}
