package offload

import (
	"fmt"
	"time"
)

// Connection-lifecycle policy vocabulary: the per-connection deadline
// classes the server's timer wheel enforces, and the admission-control
// (load-shedding) policy that keeps a saturated or degraded accelerator
// from collapsing the event loop. Like PollPolicy, these are defined once
// here and consumed by both the live stack (internal/server) and the DES
// performance model (internal/perf).

// The lifecycle defaults, next to the paper's polling constants. They
// mirror the Nginx directives the paper's deployment relies on
// (client_header_timeout, keepalive_timeout, send_timeout) — the
// machinery QTLS inherits from its host web server.
const (
	// DefaultHandshakeTimeout bounds the whole TLS handshake, from accept
	// to Finished — including any time spent parked on a stalled offload.
	DefaultHandshakeTimeout = 15 * time.Second
	// DefaultHeaderTimeout bounds the gap between successive reads while
	// request headers are arriving (client_header_timeout semantics).
	DefaultHeaderTimeout = 10 * time.Second
	// DefaultKeepaliveTimeout closes an idle keepalive connection that has
	// not issued its next request (keepalive_timeout semantics).
	DefaultKeepaliveTimeout = 60 * time.Second
	// DefaultWriteStallTimeout bounds the wait for a client that stops
	// reading while response bytes are queued (send_timeout semantics).
	DefaultWriteStallTimeout = 10 * time.Second
	// DefaultDeadlineTick is the timer wheel's slot granularity. Deadlines
	// fire up to one tick late — coarse on purpose, so arming/disarming on
	// every request costs a map-free append instead of a heap operation.
	DefaultDeadlineTick = 25 * time.Millisecond
)

// Admission-control defaults.
const (
	// DefaultMaxConnsPerWorker caps live connections per worker (Nginx
	// worker_connections semantics).
	DefaultMaxConnsPerWorker = 4096
	// DefaultShedFraction is the in-flight-vs-ring-capacity admission
	// threshold: once a worker's outstanding offloads reach this fraction
	// of its request-ring capacity, new connections are shed at accept
	// time before any TLS bytes are spent on them.
	DefaultShedFraction = 0.85
	// DefaultKeepaliveShedFraction starts closing idle keepalive
	// connections (after their in-flight response completes) at a lower
	// pressure point than accept shedding, freeing capacity before the
	// hard admission edge is reached.
	DefaultKeepaliveShedFraction = 0.70
)

// DeadlineClass identifies which lifecycle deadline a connection is
// currently under. Exactly one class is armed per connection at a time.
type DeadlineClass int

const (
	// DeadlineHandshake runs from accept until the handshake completes.
	DeadlineHandshake DeadlineClass = iota
	// DeadlineHeader runs while request headers are being read.
	DeadlineHeader
	// DeadlineKeepalive runs while the connection idles between requests.
	DeadlineKeepalive
	// DeadlineWrite runs while response bytes wait on a slow reader.
	DeadlineWrite

	// NumDeadlineClasses is the number of defined classes.
	NumDeadlineClasses
)

// String returns the short class name used in metric labels.
func (c DeadlineClass) String() string {
	switch c {
	case DeadlineHandshake:
		return "handshake"
	case DeadlineHeader:
		return "header"
	case DeadlineKeepalive:
		return "keepalive"
	case DeadlineWrite:
		return "write"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// DeadlinePolicy carries the per-class connection deadlines plus the
// wheel tick. The zero value resolves to the defaults via WithDefaults;
// a negative duration disables that class.
type DeadlinePolicy struct {
	// Handshake bounds accept → handshake-complete.
	Handshake time.Duration
	// Header bounds successive reads while request headers arrive.
	Header time.Duration
	// Keepalive bounds the idle gap between requests.
	Keepalive time.Duration
	// WriteStall bounds the wait for a stalled reader with output queued.
	WriteStall time.Duration
	// Tick is the timer-wheel slot granularity.
	Tick time.Duration
}

// WithDefaults resolves unset (zero) parameters to the defaults.
// Negative durations — "disabled" — are preserved.
func (d DeadlinePolicy) WithDefaults() DeadlinePolicy {
	if d.Handshake == 0 {
		d.Handshake = DefaultHandshakeTimeout
	}
	if d.Header == 0 {
		d.Header = DefaultHeaderTimeout
	}
	if d.Keepalive == 0 {
		d.Keepalive = DefaultKeepaliveTimeout
	}
	if d.WriteStall == 0 {
		d.WriteStall = DefaultWriteStallTimeout
	}
	if d.Tick <= 0 {
		d.Tick = DefaultDeadlineTick
	}
	return d
}

// Timeout returns the duration for one class; <= 0 means the class is
// disabled and must not be armed.
func (d DeadlinePolicy) Timeout(c DeadlineClass) time.Duration {
	switch c {
	case DeadlineHandshake:
		return d.Handshake
	case DeadlineHeader:
		return d.Header
	case DeadlineKeepalive:
		return d.Keepalive
	case DeadlineWrite:
		return d.WriteStall
	default:
		return 0
	}
}

// OverloadPolicy is the admission-control policy, PollPolicy-shaped:
// plain threshold fields, WithDefaults resolution, and pure decision
// methods fed the live inputs (per-worker in-flight offloads, the
// worker's summed request-ring capacity, and its live connection count).
// Shedding happens at the two points where a connection costs the least
// to refuse: accept time (TCP reset before any TLS bytes are spent) and
// keepalive-reuse time (a polite Connection: close after the in-flight
// response).
type OverloadPolicy struct {
	// MaxConns caps live connections per worker (default
	// DefaultMaxConnsPerWorker; negative disables the cap).
	MaxConns int
	// ShedFraction is the inflight/ring-capacity admission threshold for
	// new connections (default DefaultShedFraction; negative disables
	// pressure-based shedding).
	ShedFraction float64
	// KeepaliveShedFraction is the lower pressure point at which idle
	// keepalive connections stop being retained (default
	// DefaultKeepaliveShedFraction; negative disables).
	KeepaliveShedFraction float64
}

// WithDefaults resolves unset (zero) parameters to the defaults.
// Negative values — "disabled" — are preserved.
func (p OverloadPolicy) WithDefaults() OverloadPolicy {
	if p.MaxConns == 0 {
		p.MaxConns = DefaultMaxConnsPerWorker
	}
	if p.ShedFraction == 0 {
		p.ShedFraction = DefaultShedFraction
	}
	if p.KeepaliveShedFraction == 0 {
		p.KeepaliveShedFraction = DefaultKeepaliveShedFraction
	}
	return p
}

// pressured reports whether inflight has reached frac of ringCap.
func pressured(frac float64, inflight, ringCap int) bool {
	return frac > 0 && ringCap > 0 && float64(inflight) >= frac*float64(ringCap)
}

// ShedAccept decides admission for a brand-new connection: shed when the
// worker is at its connection cap or its rings are saturated. A shed
// accept costs the client one TCP reset and the server nothing.
func (p OverloadPolicy) ShedAccept(inflight, ringCap, conns int) bool {
	if p.MaxConns > 0 && conns >= p.MaxConns {
		return true
	}
	return pressured(p.ShedFraction, inflight, ringCap)
}

// ShedKeepalive decides whether an idle-capable connection should be
// closed after its current response instead of being kept alive: under
// pressure, retained idle connections are capacity the admission edge
// will soon refuse to newcomers.
func (p OverloadPolicy) ShedKeepalive(inflight, ringCap, conns int) bool {
	if p.MaxConns > 0 && 4*conns >= 3*p.MaxConns {
		return true
	}
	return pressured(p.KeepaliveShedFraction, inflight, ringCap)
}
