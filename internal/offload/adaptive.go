package offload

import (
	"math"
	"sync"
	"time"
)

// The adaptive polling controller. The paper calibrates the 48/24
// efficiency thresholds for one device and one op mix (§4.3); the record
// path's symmetric traffic and PQ-scale asymmetric ops invalidate both.
// AdaptivePoll closes the loop: it reads a windowed feedback signal —
// retrieve-phase latency (how long completed responses sit on the rings
// before a poll collects them) and completion-batch efficiency (how many
// responses each poll amortizes its cost over) — and walks the asym/sym
// thresholds toward the latency knee with hysteresis and clamped steps.
// Everything behind PollPolicy.Threshold, so ShouldPoll and FailoverDue
// call sites never change.

// FeedbackPoint is one windowed reading of the retrieve-phase signal.
type FeedbackPoint struct {
	// Samples is the number of retrieve observations in the window; the
	// controller holds while it is under AdaptiveConfig.MinSamples.
	Samples int64
	// P95 and P99 are windowed retrieve-phase latency quantiles in
	// nanoseconds (submission → response collected).
	P95, P99 float64
	// BatchMean is the mean completion-batch size per non-empty poll over
	// the window.
	BatchMean float64
}

// PollFeedback is the injected feedback source. The live stack and the
// DES both back it with flight.Window pairs (flight.WindowFeedback);
// tests use fixed fakes. The clock is the caller's: the live stack
// passes wall nanoseconds, the DES passes virtual nanoseconds.
type PollFeedback interface {
	Feedback(nowNs int64) FeedbackPoint
}

// AdaptiveConfig parameterizes the controller. The zero value resolves
// to usable defaults via WithDefaults.
type AdaptiveConfig struct {
	// MinAsym/MaxAsym clamp the asym threshold walk (defaults 4, 192).
	MinAsym, MaxAsym int
	// MinSym/MaxSym clamp the sym threshold walk (defaults 2, 96).
	MinSym, MaxSym int
	// Step is the largest per-adjustment move of the asym threshold; the
	// sym threshold moves by max(1, Step/2), preserving the paper's 2:1
	// shape (default 4).
	Step int
	// Hysteresis is the dead band around the latency knee: no adjustment
	// while the windowed p99 is within ±Hysteresis of it (default 0.15).
	Hysteresis float64
	// Headroom positions the knee above the observed latency floor:
	// knee = floor × (1 + Headroom) (default 0.5).
	Headroom float64
	// BatchFill gates upward steps: thresholds only grow while the mean
	// completion batch is at least BatchFill × the current asym
	// threshold, i.e. polls actually run threshold-sized (default 0.75).
	BatchFill float64
	// Interval is the minimum spacing between adjustments; Tick calls
	// inside it are no-ops (default 1s).
	Interval time.Duration
	// MinSamples is the windowed sample count below which the feedback
	// is not trusted (default 32).
	MinSamples int64
	// Failover is the failover interval of the policy this controller
	// steers (default DefaultFailoverInterval; the stacks override it
	// with the resolved policy value). A windowed p99 near it means
	// responses are being collected by the failover timer, not the
	// efficiency constraint — the threshold is unreachable for the
	// current in-flight population and stepping down is free.
	Failover time.Duration
}

// WithDefaults resolves unset fields.
func (c AdaptiveConfig) WithDefaults() AdaptiveConfig {
	if c.MinAsym <= 0 {
		c.MinAsym = 4
	}
	if c.MaxAsym <= 0 {
		c.MaxAsym = 4 * DefaultAsymThreshold
	}
	if c.MinSym <= 0 {
		c.MinSym = 2
	}
	if c.MaxSym <= 0 {
		c.MaxSym = 4 * DefaultSymThreshold
	}
	if c.Step <= 0 {
		c.Step = 4
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 0.15
	}
	if c.Headroom <= 0 {
		c.Headroom = 0.5
	}
	if c.BatchFill <= 0 {
		c.BatchFill = 0.75
	}
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 32
	}
	if c.Failover <= 0 {
		c.Failover = DefaultFailoverInterval
	}
	return c
}

// Threshold classes reported to the OnChange hook (and journaled as
// flight threshold-change events).
const (
	ThresholdAsym = iota
	ThresholdSym
)

// ThresholdClassName names a threshold class for metric labels.
func ThresholdClassName(class int) string {
	if class == ThresholdAsym {
		return "asym"
	}
	return "sym"
}

// failoverFill is the fraction of the failover interval beyond which
// the windowed p99 is read as failover pacing (see AdaptiveConfig.
// Failover).
const failoverFill = 0.8

// floorDecay is the fraction by which the latency floor creeps toward
// the current reading each adjustment when the reading is above it, so
// a permanently changed workload re-bases the knee instead of chasing a
// floor observed under conditions that no longer exist.
const floorDecay = 0.05

// AdaptivePoll is the closed-loop threshold controller. One instance
// belongs to one worker loop; Threshold is read on that loop's hot path
// (and by the observability plane), Tick runs on the same loop, so a
// single small mutex suffices — there is no contention, only
// cross-goroutine visibility for metric readers.
type AdaptivePoll struct {
	mu       sync.Mutex
	cfg      AdaptiveConfig
	fb       PollFeedback
	asym     int
	sym      int
	floor    float64 // lowest windowed p99 seen (ns), with upward creep
	lastNs   int64   // virtual/wall time of the last adjustment
	adjusts  int64   // adjustments that moved a threshold
	onChange func(class, old, new int)
}

// NewAdaptivePoll builds a controller starting from the paper's static
// defaults (clamped into the configured range), reading fb.
func NewAdaptivePoll(cfg AdaptiveConfig, fb PollFeedback) *AdaptivePoll {
	cfg = cfg.WithDefaults()
	return &AdaptivePoll{
		cfg:  cfg,
		fb:   fb,
		asym: clampInt(DefaultAsymThreshold, cfg.MinAsym, cfg.MaxAsym),
		sym:  clampInt(DefaultSymThreshold, cfg.MinSym, cfg.MaxSym),
	}
}

// SetOnChange installs a hook invoked (outside the controller mutex)
// once per threshold move — the seam for flight journal events and the
// qtls_poll_threshold gauges. Install before the loop starts.
func (a *AdaptivePoll) SetOnChange(fn func(class, old, new int)) {
	a.mu.Lock()
	a.onChange = fn
	a.mu.Unlock()
}

// Threshold returns the current efficiency threshold for the in-flight
// mix, mirroring PollPolicy.Threshold's static contract.
func (a *AdaptivePoll) Threshold(inflightAsym int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if inflightAsym > 0 {
		return a.asym
	}
	return a.sym
}

// Thresholds returns both current thresholds.
func (a *AdaptivePoll) Thresholds() (asym, sym int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.asym, a.sym
}

// Adjusts returns how many threshold moves the controller has made.
func (a *AdaptivePoll) Adjusts() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.adjusts
}

// Tick runs one controller step if at least Interval has elapsed since
// the last one. It is called from the worker loop (wall clock) or the
// DES (virtual clock); the controller itself never reads a clock.
func (a *AdaptivePoll) Tick(nowNs int64) {
	a.mu.Lock()
	if a.lastNs != 0 && nowNs-a.lastNs < int64(a.cfg.Interval) {
		a.mu.Unlock()
		return
	}
	a.lastNs = nowNs
	fb := a.fb
	a.mu.Unlock()

	// Read the feedback outside the mutex: window snapshots take their
	// own locks and may be fed concurrently by other goroutines.
	p := fb.Feedback(nowNs)
	if p.Samples < a.cfg.MinSamples || p.P99 <= 0 || math.IsNaN(p.P99) {
		return
	}

	a.mu.Lock()
	// Track the latency floor: the best windowed p99 this workload has
	// shown. Creep it upward slowly otherwise so a re-based workload
	// (bigger ops, more load) grows a new knee instead of pinning the
	// thresholds at MinAsym forever.
	if a.floor == 0 || p.P99 < a.floor {
		a.floor = p.P99
	} else {
		a.floor += (p.P99 - a.floor) * floorDecay
	}
	knee := a.floor * (1 + a.cfg.Headroom)
	oldAsym, oldSym := a.asym, a.sym
	switch {
	case p.P99 >= failoverFill*float64(a.cfg.Failover):
		// Failover-paced: responses sit on the rings until the failover
		// timer collects them, so the efficiency constraint never fires
		// and the threshold is dead weight. This is the one regime the
		// knee cannot see — a workload that starts here establishes its
		// latency floor at the failover interval and the relative
		// comparison below is forever content with it.
		a.asym = clampInt(a.asym-a.cfg.Step, a.cfg.MinAsym, a.cfg.MaxAsym)
		a.sym = clampInt(a.sym-symStep(a.cfg.Step), a.cfg.MinSym, a.cfg.MaxSym)
	case p.P99 > knee*(1+a.cfg.Hysteresis):
		// Beyond the knee: completed responses are sitting on the rings
		// waiting for the efficiency constraint — poll earlier.
		a.asym = clampInt(a.asym-a.cfg.Step, a.cfg.MinAsym, a.cfg.MaxAsym)
		a.sym = clampInt(a.sym-symStep(a.cfg.Step), a.cfg.MinSym, a.cfg.MaxSym)
	case p.P99 < knee*(1-a.cfg.Hysteresis) && p.BatchMean >= a.cfg.BatchFill*float64(a.asym):
		// Under the knee with threshold-sized batches: the efficiency
		// constraint is what fires polls and latency has headroom, so
		// coalesce harder.
		a.asym = clampInt(a.asym+a.cfg.Step, a.cfg.MinAsym, a.cfg.MaxAsym)
		a.sym = clampInt(a.sym+symStep(a.cfg.Step), a.cfg.MinSym, a.cfg.MaxSym)
	}
	moved := a.asym != oldAsym || a.sym != oldSym
	if moved {
		a.adjusts++
	}
	fn := a.onChange
	newAsym, newSym := a.asym, a.sym
	a.mu.Unlock()

	if moved && fn != nil {
		if newAsym != oldAsym {
			fn(ThresholdAsym, oldAsym, newAsym)
		}
		if newSym != oldSym {
			fn(ThresholdSym, oldSym, newSym)
		}
	}
}

func symStep(step int) int {
	if step <= 1 {
		return 1
	}
	return step / 2
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
