//go:build linux

package offload_test

import (
	"reflect"
	"testing"

	"qtls/internal/offload"
	"qtls/internal/perf"
	"qtls/internal/server"
)

// TestCrossStackPolicyParity pins the guarantee that makes the shared
// policy layer worth having: for every named configuration, the live
// server (internal/server) and the performance model (internal/perf)
// resolve to exactly the same offload policy — thresholds, failover
// timer, polling scheme and interval, notification mode, submit mode.
// Before internal/offload existed, the two stacks each carried a private
// copy of these parameters and could silently drift apart.
func TestCrossStackPolicyParity(t *testing.T) {
	serverByName := map[string]server.RunConfig{}
	for _, rc := range server.Configurations() {
		serverByName[rc.Name] = rc
	}
	perfByName := map[string]perf.Config{}
	for _, pc := range perf.Configurations(1) {
		perfByName[pc.Name] = pc
	}

	params := perf.DefaultParams()
	configs := offload.Configurations()
	if len(configs) != 5 {
		t.Fatalf("offload.Configurations() returned %d policies, want 5", len(configs))
	}
	for _, canonical := range configs {
		t.Run(canonical.Name, func(t *testing.T) {
			want := canonical.WithDefaults()

			rc, ok := serverByName[canonical.Name]
			if !ok {
				t.Fatalf("server has no configuration named %q", canonical.Name)
			}
			fromServer := rc.OffloadPolicy()

			pc, ok := perfByName[canonical.Name]
			if !ok {
				t.Fatalf("perf has no configuration named %q", canonical.Name)
			}
			fromPerf := pc.OffloadPolicy(params)

			if !reflect.DeepEqual(fromServer, want) {
				t.Errorf("server policy drifted from internal/offload:\n server: %+v\n  want:  %+v", fromServer, want)
			}
			if !reflect.DeepEqual(fromPerf, want) {
				t.Errorf("perf policy drifted from internal/offload:\n perf: %+v\n want: %+v", fromPerf, want)
			}
			if !reflect.DeepEqual(fromServer, fromPerf) {
				t.Errorf("server and perf resolve %q differently:\n server: %+v\n perf:   %+v", canonical.Name, fromServer, fromPerf)
			}
		})
	}
}

// TestParityCoversModelKnobs guards the parameters the model exposes
// through Params rather than Config: the defaults the DES actually runs
// with must be the shared package's defaults, not a re-tuned copy.
func TestParityCoversModelKnobs(t *testing.T) {
	p := perf.DefaultParams()
	if p.AsymThreshold != offload.DefaultAsymThreshold {
		t.Errorf("Params.AsymThreshold = %d, want offload.DefaultAsymThreshold (%d)", p.AsymThreshold, offload.DefaultAsymThreshold)
	}
	if p.SymThreshold != offload.DefaultSymThreshold {
		t.Errorf("Params.SymThreshold = %d, want offload.DefaultSymThreshold (%d)", p.SymThreshold, offload.DefaultSymThreshold)
	}
	if p.FailoverInterval != offload.DefaultFailoverInterval {
		t.Errorf("Params.FailoverInterval = %v, want offload.DefaultFailoverInterval (%v)", p.FailoverInterval, offload.DefaultFailoverInterval)
	}
}
