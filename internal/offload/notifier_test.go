package offload

import (
	"reflect"
	"testing"
)

func TestFDNotifier(t *testing.T) {
	n := NewNotifier(NotifierFD)
	// Every event demands its own kernel wakeup.
	if !n.Wake("a") || !n.Wake("b") {
		t.Fatal("fd Wake must always request a wakeup")
	}
	if n.Pending(DeliverWakeup) != 2 || n.Pending(DeliverLoopEnd) != 0 {
		t.Fatal("fd events pend at the wakeup point only")
	}
	if got := n.Deliver(DeliverLoopEnd); got != nil {
		t.Fatalf("fd delivered at loop end: %v", got)
	}
	if got := n.Deliver(DeliverWakeup); !reflect.DeepEqual(got, []any{"a", "b"}) {
		t.Fatalf("fd wakeup delivery = %v", got)
	}
	if n.Pending(DeliverWakeup) != 0 || n.Deliver(DeliverWakeup) != nil {
		t.Fatal("fd queue not emptied by delivery")
	}
}

func TestBypassNotifier(t *testing.T) {
	n := NewNotifier(NotifierKernelBypass)
	// Kernel bypass: no wakeups, ever.
	if n.Wake("a") || n.Wake("b") {
		t.Fatal("bypass Wake must never request a wakeup")
	}
	if n.Pending(DeliverLoopEnd) != 2 || n.Pending(DeliverWakeup) != 0 {
		t.Fatal("bypass events pend at the loop-end point only")
	}
	if got := n.Deliver(DeliverWakeup); got != nil {
		t.Fatalf("bypass delivered on wakeup: %v", got)
	}
	if got := n.Deliver(DeliverLoopEnd); !reflect.DeepEqual(got, []any{"a", "b"}) {
		t.Fatalf("bypass loop-end delivery = %v", got)
	}
	if n.Pending(DeliverLoopEnd) != 0 {
		t.Fatal("bypass queue not emptied by delivery")
	}
}

func TestCoalescedNotifier(t *testing.T) {
	n := NewNotifier(NotifierCoalesced)
	// Only the first event of a batch arms the kernel wakeup.
	if !n.Wake("a") {
		t.Fatal("first event must arm a wakeup")
	}
	if n.Wake("b") || n.Wake("c") {
		t.Fatal("subsequent events must coalesce into the armed wakeup")
	}
	if n.Pending(DeliverWakeup) != 3 {
		t.Fatal("coalesced events pend at the wakeup point")
	}
	if got := n.Deliver(DeliverWakeup); !reflect.DeepEqual(got, []any{"a", "b", "c"}) {
		t.Fatalf("coalesced delivery = %v", got)
	}
	// Delivery disarms: the next batch's first event wakes again.
	if !n.Wake("d") {
		t.Fatal("delivery must disarm the wakeup")
	}
}

func TestNotifierDrain(t *testing.T) {
	for _, s := range []NotifyScheme{NotifierFD, NotifierKernelBypass, NotifierCoalesced} {
		n := NewNotifier(s)
		n.Wake("a")
		n.Wake("b")
		if got := n.Drain(); !reflect.DeepEqual(got, []any{"a", "b"}) {
			t.Errorf("%v: Drain = %v", s, got)
		}
		if n.Drain() != nil || n.Pending(DeliverWakeup) != 0 || n.Pending(DeliverLoopEnd) != 0 {
			t.Errorf("%v: queue survived Drain", s)
		}
		// Coalesced: Drain must disarm so the next event wakes.
		if s == NotifierCoalesced && !n.Wake("c") {
			t.Error("coalesced Drain left the wakeup armed")
		}
	}
}

func TestNewNotifierUnknownScheme(t *testing.T) {
	n := NewNotifier(NotifyScheme(99))
	if n.Scheme() != NotifierFD {
		t.Fatalf("unknown scheme → %v, want fd fallback", n.Scheme())
	}
}
