// Package offload is the shared policy vocabulary of the QTLS offload
// framework. The paper's five evaluated configurations (SW, QAT+S, QAT+A,
// QAT+AH, QTLS — §5.1) are a matrix of three orthogonal policies:
//
//   - how QAT responses are retrieved (PollPolicy: none/inline, a timer
//     polling thread, or the heuristic scheme of §3.3 with its 48/24
//     thresholds and 5 ms failover timer);
//   - how async events reach the event loop (Notifier: a file descriptor
//     watched by epoll vs the kernel-bypass async queue, §3.4); and
//   - how submissions reach the request rings (SubmitMode: one doorbell
//     per op vs coalesced batches per event-loop iteration).
//
// Both the live stack (internal/server, internal/engine) and the
// discrete-event performance model (internal/perf) consume this package,
// so the thresholds, defaults and poll decisions are defined exactly once
// and the two stacks cannot drift.
package offload

import (
	"fmt"
	"time"
)

// The heuristic polling defaults of §3.3/§4.3 and the artifact's SSL
// Engine Framework directives (§A.7). These are the single definition of
// the paper's magic numbers; every other package references them.
const (
	// DefaultAsymThreshold is qat_heuristic_poll_asym_threshold: the
	// efficiency-constraint threshold while asymmetric requests are in
	// flight.
	DefaultAsymThreshold = 48
	// DefaultSymThreshold is qat_heuristic_poll_sym_threshold: the
	// threshold while only symmetric/PRF requests are in flight.
	DefaultSymThreshold = 24
	// DefaultFailoverInterval backs the heuristic scheme up: if no poll
	// happened for this long while requests are in flight, poll once.
	DefaultFailoverInterval = 5 * time.Millisecond
	// DefaultPollInterval is the timer polling period (the QAT Engine's
	// default 10 µs polling thread).
	DefaultPollInterval = 10 * time.Microsecond
)

// PollScheme selects how QAT responses are retrieved (§3.3, §5.6).
type PollScheme int

const (
	// PollNone: no retrieval loop — software crypto (SW) or the inline
	// blocking retrieval of the straight offload mode (QAT+S).
	PollNone PollScheme = iota
	// PollTimer: poll at fixed intervals (the default QAT Engine polling
	// thread).
	PollTimer
	// PollHeuristic: the QTLS heuristic polling scheme driven by in-flight
	// request counts and active-connection counts.
	PollHeuristic
	// PollInterrupt: no polling — each completion raises a kernel
	// interrupt (the alternative §3.3 rejects for its per-event kernel
	// cost; modeled as an ablation by internal/perf only).
	PollInterrupt
)

// String returns the scheme name.
func (p PollScheme) String() string {
	switch p {
	case PollNone:
		return "none"
	case PollTimer:
		return "timer"
	case PollHeuristic:
		return "heuristic"
	case PollInterrupt:
		return "interrupt"
	default:
		return fmt.Sprintf("PollScheme(%d)", int(p))
	}
}

// NotifyScheme selects how async events reach the event loop (§3.4).
// It names a notification strategy; NewNotifier builds the matching
// Notifier implementation.
type NotifyScheme int

const (
	// NotifierFD: the response callback writes to a descriptor monitored
	// by epoll — user/kernel switches on every event.
	NotifierFD NotifyScheme = iota
	// NotifierKernelBypass: the response callback pushes the saved async
	// handler onto an application-level async queue drained at the end of
	// the event loop.
	NotifierKernelBypass
	// NotifierCoalesced: eventfd-style batched delivery — events queue in
	// user space like kernel bypass, but the first event of a batch writes
	// the wake descriptor once, so epoll-blocked workers still wake while
	// the per-event kernel cost is amortized across the batch. A third
	// point on the paper's FD vs kernel-bypass comparison (§3.4).
	NotifierCoalesced
)

// String returns the notifier name.
func (n NotifyScheme) String() string {
	switch n {
	case NotifierFD:
		return "fd"
	case NotifierKernelBypass:
		return "kernel-bypass"
	case NotifierCoalesced:
		return "coalesced"
	default:
		return fmt.Sprintf("NotifyScheme(%d)", int(n))
	}
}

// NotifySchemeByName maps a flag value ("fd", "kernel-bypass",
// "coalesced") back to its scheme.
func NotifySchemeByName(name string) (NotifyScheme, bool) {
	for _, s := range []NotifyScheme{NotifierFD, NotifierKernelBypass, NotifierCoalesced} {
		if s.String() == name {
			return s, true
		}
	}
	return 0, false
}

// Placement selects how work is spread across the devices of a qat.Pool.
// The zero value (PlacementSingle) is the exact legacy single-device
// behavior: everything lands on device 0 and no placement decisions are
// taken, so the five named configurations are byte-identical to the
// pre-placement stack.
type Placement int

const (
	// PlacementSingle pins all work to one device (the paper's setup).
	PlacementSingle Placement = iota
	// PlacementClassShard shards by op class: asymmetric handshake ops go
	// to one device set, OpSym record traffic (and the sym-leaning PRF /
	// cipher handshake ops) to another. A saturated or broken preferred
	// set fails over to the other, journaled as a placement flip.
	PlacementClassShard
	// PlacementConnHash shards whole connections across devices by
	// connection hash — with SO_REUSEPORT accept sharding, each worker's
	// engine is pinned to the device its hash selects.
	PlacementConnHash
)

// String returns the placement name.
func (p Placement) String() string {
	switch p {
	case PlacementSingle:
		return "single"
	case PlacementClassShard:
		return "class-shard"
	case PlacementConnHash:
		return "conn-hash"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// PlacementByName maps a flag value ("single", "class-shard",
// "conn-hash") back to its placement mode.
func PlacementByName(name string) (Placement, bool) {
	for _, p := range []Placement{PlacementSingle, PlacementClassShard, PlacementConnHash} {
		if p.String() == name {
			return p, true
		}
	}
	return 0, false
}

// AsymDevices returns the preferred device indices for asymmetric ops in
// a pool of n devices under this placement; SymDevices returns the set
// for symmetric/PRF/record ops. Under class-shard the pool splits in
// half, asym taking the first ceil(n/2) devices — the asym ops are the
// expensive ones, and a resumption-heavy mix drains the sym set instead.
// Under single (or a one-device pool) both sets are {0}; under conn-hash
// placement is per-connection, not per-class, so both sets cover the
// whole pool.
func (p Placement) AsymDevices(n int) []int {
	if n <= 1 || p != PlacementClassShard {
		return allDevices(n, p)
	}
	return deviceRange(0, (n+1)/2)
}

// SymDevices returns the preferred device indices for symmetric-class
// ops. See AsymDevices.
func (p Placement) SymDevices(n int) []int {
	if n <= 1 || p != PlacementClassShard {
		return allDevices(n, p)
	}
	return deviceRange((n+1)/2, n)
}

func allDevices(n int, p Placement) []int {
	if n <= 1 || p == PlacementSingle {
		return []int{0}
	}
	return deviceRange(0, n)
}

func deviceRange(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

// SubmitMode selects how submissions reach the request rings.
type SubmitMode int

const (
	// SubmitDirect places each request on a ring as its op pauses — one
	// ring lock and one doorbell per op.
	SubmitDirect SubmitMode = iota
	// SubmitCoalesced gathers the ops paused within one event-loop
	// iteration and pushes them onto the rings in batches — the
	// submit-side dual of heuristic polling.
	SubmitCoalesced
)

// String returns the mode name.
func (m SubmitMode) String() string {
	switch m {
	case SubmitDirect:
		return "direct"
	case SubmitCoalesced:
		return "coalesced"
	default:
		return fmt.Sprintf("SubmitMode(%d)", int(m))
	}
}

// PollPolicy is one response-retrieval policy: the scheme plus every
// parameter the schemes read. The zero value resolves to the paper's
// defaults via WithDefaults.
type PollPolicy struct {
	// Scheme selects the retrieval mechanism.
	Scheme PollScheme
	// Interval is the timer polling period (PollTimer; default 10 µs).
	Interval time.Duration
	// AsymThreshold is the heuristic efficiency threshold while
	// asymmetric requests are in flight (default 48).
	AsymThreshold int
	// SymThreshold is the heuristic threshold otherwise (default 24).
	SymThreshold int
	// FailoverInterval is the heuristic failover timer (default 5 ms).
	FailoverInterval time.Duration
	// Adaptive, when non-nil, overrides the static thresholds with the
	// closed-loop controller's current values: Threshold (and therefore
	// ShouldPoll) reads the controller instead of AsymThreshold /
	// SymThreshold, while the call sites stay byte-for-byte identical.
	// Nil — the paper's static scheme — for all five named
	// configurations, which keeps the cross-stack parity comparison
	// exact.
	Adaptive *AdaptivePoll
}

// WithDefaults resolves unset parameters to the paper's defaults.
func (p PollPolicy) WithDefaults() PollPolicy {
	if p.Interval <= 0 {
		p.Interval = DefaultPollInterval
	}
	if p.AsymThreshold <= 0 {
		p.AsymThreshold = DefaultAsymThreshold
	}
	if p.SymThreshold <= 0 {
		p.SymThreshold = DefaultSymThreshold
	}
	if p.FailoverInterval <= 0 {
		p.FailoverInterval = DefaultFailoverInterval
	}
	return p
}

// Threshold returns the efficiency-constraint threshold in effect:
// AsymThreshold while any asymmetric request is in flight, SymThreshold
// otherwise (§4.3: "48 when asymmetric requests are in flight, 24
// otherwise").
func (p PollPolicy) Threshold(inflightAsym int) int {
	if p.Adaptive != nil {
		return p.Adaptive.Threshold(inflightAsym)
	}
	if inflightAsym > 0 {
		return p.AsymThreshold
	}
	return p.SymThreshold
}

// ShouldPoll is the heuristic polling decision (§3.3): poll when the
// efficiency constraint holds (enough responses to coalesce into one
// retrieval) or the timeliness constraint holds (every active connection
// is waiting on the accelerator, so nothing else can make progress).
// It returns false when nothing is in flight or the scheme is not
// heuristic.
func (p PollPolicy) ShouldPoll(inflight, inflightAsym, activeConns int) bool {
	if p.Scheme != PollHeuristic || inflight <= 0 {
		return false
	}
	return inflight >= p.Threshold(inflightAsym) || inflight >= activeConns
}

// FailoverDue reports whether the failover timer demands a poll: requests
// are in flight but no poll has happened for a full interval (§4.3).
func (p PollPolicy) FailoverDue(inflight int, sinceLastPoll time.Duration) bool {
	if p.Scheme != PollHeuristic || inflight <= 0 {
		return false
	}
	return sinceLastPoll >= p.FailoverInterval
}

// Policy is one complete offload configuration: whether the accelerator
// is used at all, whether offloads pause asynchronously or block, and the
// three orthogonal sub-policies.
type Policy struct {
	// Name labels the configuration ("SW", "QAT+S", ...).
	Name string
	// UseQAT enables the accelerator.
	UseQAT bool
	// Async enables the asynchronous offload framework; false with UseQAT
	// is the straight (blocking) offload mode.
	Async bool
	// Poll is the response-retrieval policy.
	Poll PollPolicy
	// Notify is the async event notification scheme.
	Notify NotifyScheme
	// Submit is the submission strategy.
	Submit SubmitMode
	// Record is the post-handshake record-path policy (zero: software
	// record protection, as in the paper's five configurations).
	Record RecordPolicy
	// Placement is the multi-device placement mode (zero: single device,
	// as in the paper's five configurations).
	Placement Placement
}

// WithDefaults resolves the poll policy's unset parameters.
func (p Policy) WithDefaults() Policy {
	p.Poll = p.Poll.WithDefaults()
	p.Record = p.Record.WithDefaults()
	return p
}

// The paper's five configurations (§5.1), built from the composable
// policy values. Both the live stack's RunConfig constructors and the
// DES Config constructors derive from these.

// SW is software calculation with AES-NI-class instructions.
func SW() Policy { return Policy{Name: "SW"} }

// QATS is the straight (blocking) offload mode.
func QATS() Policy {
	return Policy{Name: "QAT+S", UseQAT: true, Poll: PollPolicy{Scheme: PollNone}}
}

// QATA is the async framework with timer polling and FD notification.
func QATA() Policy {
	return Policy{Name: "QAT+A", UseQAT: true, Async: true,
		Poll: PollPolicy{Scheme: PollTimer}, Notify: NotifierFD}
}

// QATAH replaces the polling thread with the heuristic scheme.
func QATAH() Policy {
	return Policy{Name: "QAT+AH", UseQAT: true, Async: true,
		Poll: PollPolicy{Scheme: PollHeuristic}, Notify: NotifierFD}
}

// QTLS is the full QTLS: heuristic polling + kernel-bypass notification.
func QTLS() Policy {
	return Policy{Name: "QTLS", UseQAT: true, Async: true,
		Poll: PollPolicy{Scheme: PollHeuristic}, Notify: NotifierKernelBypass}
}

// Configurations lists the five configurations in evaluation order.
func Configurations() []Policy {
	return []Policy{SW(), QATS(), QATA(), QATAH(), QTLS()}
}

// ByName returns the named configuration (resolved to defaults) and
// whether the name is known.
func ByName(name string) (Policy, bool) {
	for _, p := range Configurations() {
		if p.Name == name {
			return p, true
		}
	}
	return Policy{}, false
}
