package offload

// The notification seam (§3.4) as behavior instead of an enum. A
// Notifier owns the queue of completed-but-undelivered async events and
// decides two things per scheme: whether enqueueing an event must wake
// the kernel (a write on the notification descriptor the event loop
// polls), and at which point of the loop the queued handlers are handed
// back (on the epoll wakeup that saw the descriptor, or at the
// end-of-loop drain). The worker loop and the DES model both route
// completions through this interface, so a new delivery strategy is a
// new implementation — the loops never change.
//
// Implementations are not goroutine-safe: a Notifier belongs to one
// worker loop, exactly like the queues it replaces.

// DeliveryPoint says where in the event loop a delivery is happening.
type DeliveryPoint int

const (
	// DeliverWakeup is the epoll-wakeup path: the notification
	// descriptor became readable and the worker is collecting the events
	// behind it.
	DeliverWakeup DeliveryPoint = iota
	// DeliverLoopEnd is the end-of-iteration drain (§3.4's
	// kernel-bypass async queue).
	DeliverLoopEnd
)

// Notifier queues completed async events and schedules their delivery.
type Notifier interface {
	// Wake enqueues one completed event and reports whether the caller
	// must perform a kernel wakeup (write the notification descriptor)
	// for it. Handles are opaque to the notifier.
	Wake(h any) bool
	// Deliver returns the events due at the given point, in completion
	// order, removing them from the queue. It returns nil when nothing
	// is due at that point.
	Deliver(p DeliveryPoint) []any
	// Pending reports how many queued events are waiting for the given
	// delivery point.
	Pending(p DeliveryPoint) int
	// Drain unconditionally removes and returns every queued event —
	// the shutdown path, where delivery points no longer apply.
	Drain() []any
	// Scheme names the strategy this implementation realizes.
	Scheme() NotifyScheme
	// String is the compat rendering the old enum had ("fd",
	// "kernel-bypass", "coalesced").
	String() string
}

// NewNotifier builds the implementation for a scheme. Unknown schemes
// fall back to NotifierFD, the paper's default.
func NewNotifier(s NotifyScheme) Notifier {
	switch s {
	case NotifierKernelBypass:
		return &bypassNotifier{}
	case NotifierCoalesced:
		return &coalescedNotifier{}
	default:
		return &fdNotifier{}
	}
}

// fdNotifier is the descriptor-per-event scheme: every completion
// writes the notification descriptor, and the events are handed back on
// the epoll wakeup that saw it — user/kernel switches on every event.
type fdNotifier struct {
	q []any
}

func (n *fdNotifier) Wake(h any) bool {
	n.q = append(n.q, h)
	return true
}

func (n *fdNotifier) Deliver(p DeliveryPoint) []any {
	if p != DeliverWakeup || len(n.q) == 0 {
		return nil
	}
	q := n.q
	n.q = nil
	return q
}

func (n *fdNotifier) Pending(p DeliveryPoint) int {
	if p != DeliverWakeup {
		return 0
	}
	return len(n.q)
}

func (n *fdNotifier) Drain() []any {
	q := n.q
	n.q = nil
	return q
}

func (n *fdNotifier) Scheme() NotifyScheme { return NotifierFD }
func (n *fdNotifier) String() string       { return NotifierFD.String() }

// bypassNotifier is the kernel-bypass async queue: no kernel wakeup
// ever, events drain at the end of the loop iteration that retrieved
// them.
type bypassNotifier struct {
	q []any
}

func (n *bypassNotifier) Wake(h any) bool {
	n.q = append(n.q, h)
	return false
}

func (n *bypassNotifier) Deliver(p DeliveryPoint) []any {
	if p != DeliverLoopEnd || len(n.q) == 0 {
		return nil
	}
	q := n.q
	n.q = nil
	return q
}

func (n *bypassNotifier) Pending(p DeliveryPoint) int {
	if p != DeliverLoopEnd {
		return 0
	}
	return len(n.q)
}

func (n *bypassNotifier) Drain() []any {
	q := n.q
	n.q = nil
	return q
}

func (n *bypassNotifier) Scheme() NotifyScheme { return NotifierKernelBypass }
func (n *bypassNotifier) String() string       { return NotifierKernelBypass.String() }

// coalescedNotifier is eventfd-style batched delivery: events queue in
// user space and are handed back on the epoll wakeup (so a worker
// blocked in epoll_wait still wakes promptly), but only the first event
// since the last delivery arms the kernel wakeup — one descriptor write
// amortized across the whole completion batch.
type coalescedNotifier struct {
	q     []any
	armed bool // a wakeup write is outstanding for the queued events
}

func (n *coalescedNotifier) Wake(h any) bool {
	n.q = append(n.q, h)
	if n.armed {
		return false
	}
	n.armed = true
	return true
}

func (n *coalescedNotifier) Deliver(p DeliveryPoint) []any {
	if p != DeliverWakeup || len(n.q) == 0 {
		return nil
	}
	q := n.q
	n.q = nil
	n.armed = false
	return q
}

func (n *coalescedNotifier) Pending(p DeliveryPoint) int {
	if p != DeliverWakeup {
		return 0
	}
	return len(n.q)
}

func (n *coalescedNotifier) Drain() []any {
	q := n.q
	n.q = nil
	n.armed = false
	return q
}

func (n *coalescedNotifier) Scheme() NotifyScheme { return NotifierCoalesced }
func (n *coalescedNotifier) String() string       { return NotifierCoalesced.String() }
