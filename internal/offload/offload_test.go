package offload

import (
	"testing"
	"time"
)

func TestWithDefaults(t *testing.T) {
	p := PollPolicy{}.WithDefaults()
	if p.AsymThreshold != DefaultAsymThreshold || p.SymThreshold != DefaultSymThreshold {
		t.Fatalf("thresholds = %d/%d", p.AsymThreshold, p.SymThreshold)
	}
	if p.FailoverInterval != DefaultFailoverInterval {
		t.Fatalf("failover = %v", p.FailoverInterval)
	}
	if p.Interval != DefaultPollInterval {
		t.Fatalf("interval = %v", p.Interval)
	}
	// Explicit values survive.
	q := PollPolicy{AsymThreshold: 7, SymThreshold: 3, Interval: time.Millisecond,
		FailoverInterval: time.Second}.WithDefaults()
	if q.AsymThreshold != 7 || q.SymThreshold != 3 || q.Interval != time.Millisecond ||
		q.FailoverInterval != time.Second {
		t.Fatalf("explicit values clobbered: %+v", q)
	}
}

func TestThreshold(t *testing.T) {
	p := PollPolicy{Scheme: PollHeuristic}.WithDefaults()
	if got := p.Threshold(1); got != DefaultAsymThreshold {
		t.Fatalf("asym threshold = %d", got)
	}
	if got := p.Threshold(0); got != DefaultSymThreshold {
		t.Fatalf("sym threshold = %d", got)
	}
}

func TestShouldPoll(t *testing.T) {
	p := PollPolicy{Scheme: PollHeuristic}.WithDefaults()
	cases := []struct {
		name                            string
		inflight, inflightAsym, actives int
		want                            bool
	}{
		{"nothing inflight", 0, 0, 10, false},
		{"below both constraints", 10, 1, 100, false},
		{"efficiency asym", DefaultAsymThreshold, 1, 1000, true},
		{"efficiency sym", DefaultSymThreshold, 0, 1000, true},
		{"sym count under asym threshold", DefaultSymThreshold, 1, 1000, false},
		{"timeliness", 3, 1, 3, true},
		{"timeliness excess", 3, 0, 2, true},
	}
	for _, c := range cases {
		if got := p.ShouldPoll(c.inflight, c.inflightAsym, c.actives); got != c.want {
			t.Errorf("%s: ShouldPoll(%d,%d,%d) = %v, want %v",
				c.name, c.inflight, c.inflightAsym, c.actives, got, c.want)
		}
	}
	// Non-heuristic schemes never poll heuristically.
	for _, s := range []PollScheme{PollNone, PollTimer, PollInterrupt} {
		q := PollPolicy{Scheme: s}.WithDefaults()
		if q.ShouldPoll(1000, 1000, 1) {
			t.Errorf("scheme %v: ShouldPoll fired", s)
		}
	}
}

func TestFailoverDue(t *testing.T) {
	p := PollPolicy{Scheme: PollHeuristic}.WithDefaults()
	if p.FailoverDue(0, time.Hour) {
		t.Fatal("failover with nothing in flight")
	}
	if p.FailoverDue(1, DefaultFailoverInterval-time.Microsecond) {
		t.Fatal("failover before the interval")
	}
	if !p.FailoverDue(1, DefaultFailoverInterval) {
		t.Fatal("no failover at the interval")
	}
	if (PollPolicy{Scheme: PollTimer}).WithDefaults().FailoverDue(1, time.Hour) {
		t.Fatal("failover under timer polling")
	}
}

func TestNamedConfigurations(t *testing.T) {
	want := []struct {
		name   string
		useQAT bool
		async  bool
		scheme PollScheme
		notify Notifier
	}{
		{"SW", false, false, PollNone, NotifierFD},
		{"QAT+S", true, false, PollNone, NotifierFD},
		{"QAT+A", true, true, PollTimer, NotifierFD},
		{"QAT+AH", true, true, PollHeuristic, NotifierFD},
		{"QTLS", true, true, PollHeuristic, NotifierKernelBypass},
	}
	got := Configurations()
	if len(got) != len(want) {
		t.Fatalf("%d configurations", len(got))
	}
	for i, w := range want {
		p := got[i]
		if p.Name != w.name || p.UseQAT != w.useQAT || p.Async != w.async ||
			p.Poll.Scheme != w.scheme || p.Notify != w.notify {
			t.Errorf("config %d = %+v, want %+v", i, p, w)
		}
		if p.Submit != SubmitDirect {
			t.Errorf("%s: submit mode = %v, want direct", p.Name, p.Submit)
		}
		byName, ok := ByName(w.name)
		if !ok || byName.Name != w.name {
			t.Errorf("ByName(%q) = %+v, %v", w.name, byName, ok)
		}
	}
	if _, ok := ByName("QAT+X"); ok {
		t.Fatal("ByName accepted an unknown name")
	}
}

func TestStrings(t *testing.T) {
	if PollNone.String() != "none" || PollTimer.String() != "timer" ||
		PollHeuristic.String() != "heuristic" || PollInterrupt.String() != "interrupt" {
		t.Fatal("PollScheme strings")
	}
	if NotifierFD.String() != "fd" || NotifierKernelBypass.String() != "kernel-bypass" {
		t.Fatal("Notifier strings")
	}
	if SubmitDirect.String() != "direct" || SubmitCoalesced.String() != "coalesced" {
		t.Fatal("SubmitMode strings")
	}
	if PollScheme(99).String() == "" || Notifier(99).String() == "" || SubmitMode(99).String() == "" {
		t.Fatal("out-of-range strings")
	}
}
