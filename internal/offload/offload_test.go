package offload

import (
	"testing"
	"time"
)

func TestWithDefaults(t *testing.T) {
	p := PollPolicy{}.WithDefaults()
	if p.AsymThreshold != DefaultAsymThreshold || p.SymThreshold != DefaultSymThreshold {
		t.Fatalf("thresholds = %d/%d", p.AsymThreshold, p.SymThreshold)
	}
	if p.FailoverInterval != DefaultFailoverInterval {
		t.Fatalf("failover = %v", p.FailoverInterval)
	}
	if p.Interval != DefaultPollInterval {
		t.Fatalf("interval = %v", p.Interval)
	}
	// Explicit values survive.
	q := PollPolicy{AsymThreshold: 7, SymThreshold: 3, Interval: time.Millisecond,
		FailoverInterval: time.Second}.WithDefaults()
	if q.AsymThreshold != 7 || q.SymThreshold != 3 || q.Interval != time.Millisecond ||
		q.FailoverInterval != time.Second {
		t.Fatalf("explicit values clobbered: %+v", q)
	}
}

func TestThreshold(t *testing.T) {
	p := PollPolicy{Scheme: PollHeuristic}.WithDefaults()
	if got := p.Threshold(1); got != DefaultAsymThreshold {
		t.Fatalf("asym threshold = %d", got)
	}
	if got := p.Threshold(0); got != DefaultSymThreshold {
		t.Fatalf("sym threshold = %d", got)
	}
}

func TestShouldPoll(t *testing.T) {
	p := PollPolicy{Scheme: PollHeuristic}.WithDefaults()
	cases := []struct {
		name                            string
		inflight, inflightAsym, actives int
		want                            bool
	}{
		{"nothing inflight", 0, 0, 10, false},
		{"below both constraints", 10, 1, 100, false},
		{"efficiency asym", DefaultAsymThreshold, 1, 1000, true},
		{"efficiency sym", DefaultSymThreshold, 0, 1000, true},
		{"sym count under asym threshold", DefaultSymThreshold, 1, 1000, false},
		{"timeliness", 3, 1, 3, true},
		{"timeliness excess", 3, 0, 2, true},
	}
	for _, c := range cases {
		if got := p.ShouldPoll(c.inflight, c.inflightAsym, c.actives); got != c.want {
			t.Errorf("%s: ShouldPoll(%d,%d,%d) = %v, want %v",
				c.name, c.inflight, c.inflightAsym, c.actives, got, c.want)
		}
	}
	// Non-heuristic schemes never poll heuristically.
	for _, s := range []PollScheme{PollNone, PollTimer, PollInterrupt} {
		q := PollPolicy{Scheme: s}.WithDefaults()
		if q.ShouldPoll(1000, 1000, 1) {
			t.Errorf("scheme %v: ShouldPoll fired", s)
		}
	}
}

func TestFailoverDue(t *testing.T) {
	p := PollPolicy{Scheme: PollHeuristic}.WithDefaults()
	if p.FailoverDue(0, time.Hour) {
		t.Fatal("failover with nothing in flight")
	}
	if p.FailoverDue(1, DefaultFailoverInterval-time.Microsecond) {
		t.Fatal("failover before the interval")
	}
	if !p.FailoverDue(1, DefaultFailoverInterval) {
		t.Fatal("no failover at the interval")
	}
	if (PollPolicy{Scheme: PollTimer}).WithDefaults().FailoverDue(1, time.Hour) {
		t.Fatal("failover under timer polling")
	}
}

// TestFailoverDueBoundaries pins the edge behavior of the §3.3 failover
// check on raw policies (no WithDefaults, which would replace a zero
// interval with the 5 ms default).
func TestFailoverDueBoundaries(t *testing.T) {
	zero := PollPolicy{Scheme: PollHeuristic}
	if !zero.FailoverDue(1, 0) {
		t.Fatal("zero interval must fire immediately (0 >= 0)")
	}
	p := PollPolicy{Scheme: PollHeuristic, FailoverInterval: DefaultFailoverInterval}
	if !p.FailoverDue(1, DefaultFailoverInterval) {
		t.Fatal("exact-interval elapsed must fire (>= boundary)")
	}
	if p.FailoverDue(1, DefaultFailoverInterval-time.Nanosecond) {
		t.Fatal("one nanosecond short must not fire")
	}
	// A clock regression (worker's lastPoll stamped after "now", e.g. a
	// virtual-time replay) yields a negative elapsed time: never due.
	if p.FailoverDue(1, -time.Millisecond) {
		t.Fatal("negative elapsed time must not fire")
	}
	if p.FailoverDue(0, time.Hour) {
		t.Fatal("failover with nothing in flight")
	}
}

func TestNamedConfigurations(t *testing.T) {
	want := []struct {
		name   string
		useQAT bool
		async  bool
		scheme PollScheme
		notify NotifyScheme
	}{
		{"SW", false, false, PollNone, NotifierFD},
		{"QAT+S", true, false, PollNone, NotifierFD},
		{"QAT+A", true, true, PollTimer, NotifierFD},
		{"QAT+AH", true, true, PollHeuristic, NotifierFD},
		{"QTLS", true, true, PollHeuristic, NotifierKernelBypass},
	}
	got := Configurations()
	if len(got) != len(want) {
		t.Fatalf("%d configurations", len(got))
	}
	for i, w := range want {
		p := got[i]
		if p.Name != w.name || p.UseQAT != w.useQAT || p.Async != w.async ||
			p.Poll.Scheme != w.scheme || p.Notify != w.notify {
			t.Errorf("config %d = %+v, want %+v", i, p, w)
		}
		if p.Submit != SubmitDirect {
			t.Errorf("%s: submit mode = %v, want direct", p.Name, p.Submit)
		}
		byName, ok := ByName(w.name)
		if !ok || byName.Name != w.name {
			t.Errorf("ByName(%q) = %+v, %v", w.name, byName, ok)
		}
	}
	if _, ok := ByName("QAT+X"); ok {
		t.Fatal("ByName accepted an unknown name")
	}
}

func TestStrings(t *testing.T) {
	if PollNone.String() != "none" || PollTimer.String() != "timer" ||
		PollHeuristic.String() != "heuristic" || PollInterrupt.String() != "interrupt" {
		t.Fatal("PollScheme strings")
	}
	if NotifierFD.String() != "fd" || NotifierKernelBypass.String() != "kernel-bypass" ||
		NotifierCoalesced.String() != "coalesced" {
		t.Fatal("NotifyScheme strings")
	}
	if SubmitDirect.String() != "direct" || SubmitCoalesced.String() != "coalesced" {
		t.Fatal("SubmitMode strings")
	}
	// Out-of-range values render the exact Go-style fallback so log lines
	// stay greppable across renames.
	if got := PollScheme(99).String(); got != "PollScheme(99)" {
		t.Fatalf("PollScheme fallback = %q", got)
	}
	if got := NotifyScheme(99).String(); got != "NotifyScheme(99)" {
		t.Fatalf("NotifyScheme fallback = %q", got)
	}
	if got := SubmitMode(99).String(); got != "SubmitMode(99)" {
		t.Fatalf("SubmitMode fallback = %q", got)
	}
	// Notifier implementations echo their scheme names: a worker log that
	// prints the backend must match the flag spelling that selected it.
	for _, s := range []NotifyScheme{NotifierFD, NotifierKernelBypass, NotifierCoalesced} {
		n := NewNotifier(s)
		if n.Scheme() != s || n.String() != s.String() {
			t.Errorf("NewNotifier(%v): scheme %v string %q", s, n.Scheme(), n.String())
		}
	}
}

func TestNotifySchemeByName(t *testing.T) {
	for _, s := range []NotifyScheme{NotifierFD, NotifierKernelBypass, NotifierCoalesced} {
		got, ok := NotifySchemeByName(s.String())
		if !ok || got != s {
			t.Errorf("NotifySchemeByName(%q) = %v, %v", s.String(), got, ok)
		}
	}
	if _, ok := NotifySchemeByName("smoke-signal"); ok {
		t.Fatal("NotifySchemeByName accepted an unknown name")
	}
}
