package offload

import (
	"reflect"
	"testing"
)

// TestPlacementZeroValue pins the parity guarantee: the zero Placement is
// single-device, so every pre-placement Policy literal keeps its exact
// legacy meaning.
func TestPlacementZeroValue(t *testing.T) {
	var p Placement
	if p != PlacementSingle {
		t.Fatalf("zero Placement = %v, want single", p)
	}
	for _, cfg := range Configurations() {
		if cfg.Placement != PlacementSingle {
			t.Fatalf("%s: placement %v, want single", cfg.Name, cfg.Placement)
		}
	}
}

func TestPlacementByName(t *testing.T) {
	for _, p := range []Placement{PlacementSingle, PlacementClassShard, PlacementConnHash} {
		got, ok := PlacementByName(p.String())
		if !ok || got != p {
			t.Fatalf("PlacementByName(%q) = %v, %v", p.String(), got, ok)
		}
	}
	if _, ok := PlacementByName("bogus"); ok {
		t.Fatal("PlacementByName accepted bogus")
	}
}

// TestPlacementDeviceSets checks the class-shard split and its
// degenerate cases.
func TestPlacementDeviceSets(t *testing.T) {
	cases := []struct {
		p         Placement
		n         int
		asym, sym []int
	}{
		{PlacementSingle, 4, []int{0}, []int{0}},
		{PlacementClassShard, 1, []int{0}, []int{0}},
		{PlacementClassShard, 2, []int{0}, []int{1}},
		{PlacementClassShard, 3, []int{0, 1}, []int{2}},
		{PlacementClassShard, 4, []int{0, 1}, []int{2, 3}},
		{PlacementConnHash, 2, []int{0, 1}, []int{0, 1}},
	}
	for _, c := range cases {
		if got := c.p.AsymDevices(c.n); !reflect.DeepEqual(got, c.asym) {
			t.Errorf("%v.AsymDevices(%d) = %v, want %v", c.p, c.n, got, c.asym)
		}
		if got := c.p.SymDevices(c.n); !reflect.DeepEqual(got, c.sym) {
			t.Errorf("%v.SymDevices(%d) = %v, want %v", c.p, c.n, got, c.sym)
		}
	}
}
