package offload

import (
	"testing"
	"time"
)

// fakeFeedback is a fixed PollFeedback whose reading tests mutate
// between ticks.
type fakeFeedback struct {
	p FeedbackPoint
}

func (f *fakeFeedback) Feedback(int64) FeedbackPoint { return f.p }

// testCfg is a controller config with a tiny interval so every Tick at
// a fresh timestamp runs a step, and wide clamps unless a test narrows
// them.
func testCfg() AdaptiveConfig {
	return AdaptiveConfig{Interval: time.Microsecond, MinSamples: 1}
}

// tick advances the controller n steps, each past the rate limit.
func tick(a *AdaptivePoll, start int64, n int) int64 {
	for i := 0; i < n; i++ {
		start += int64(10 * time.Microsecond)
		a.Tick(start)
	}
	return start
}

func TestAdaptiveStartsAtStaticDefaults(t *testing.T) {
	a := NewAdaptivePoll(AdaptiveConfig{}, &fakeFeedback{})
	asym, sym := a.Thresholds()
	if asym != DefaultAsymThreshold || sym != DefaultSymThreshold {
		t.Fatalf("start = %d/%d, want %d/%d", asym, sym,
			DefaultAsymThreshold, DefaultSymThreshold)
	}
	// Threshold mirrors the static contract: asym mix reads the asym
	// threshold, pure-sym mix the sym one.
	if a.Threshold(1) != asym || a.Threshold(0) != sym {
		t.Fatal("Threshold class selection")
	}
	// Clamps apply to the starting point too.
	b := NewAdaptivePoll(AdaptiveConfig{MaxAsym: 10, MaxSym: 5}, &fakeFeedback{})
	if ba, bs := b.Thresholds(); ba != 10 || bs != 5 {
		t.Fatalf("clamped start = %d/%d, want 10/5", ba, bs)
	}
}

func TestAdaptiveStepsDownWhenLatencyHigh(t *testing.T) {
	fb := &fakeFeedback{}
	a := NewAdaptivePoll(testCfg(), fb)

	// Establish a floor at 1ms.
	fb.p = FeedbackPoint{Samples: 100, P99: 1e6}
	now := tick(a, 0, 1)
	// knee = 1ms * 1.5; push p99 well beyond knee*(1+hyst).
	fb.p = FeedbackPoint{Samples: 100, P99: 5e6}
	tick(a, now, 3)

	asym, sym := a.Thresholds()
	if asym >= DefaultAsymThreshold || sym >= DefaultSymThreshold {
		t.Fatalf("thresholds did not walk down: %d/%d", asym, sym)
	}
	if a.Adjusts() == 0 {
		t.Fatal("no adjustments counted")
	}
}

func TestAdaptiveStepsUpOnlyWithFullBatches(t *testing.T) {
	fb := &fakeFeedback{}
	a := NewAdaptivePoll(testCfg(), fb)

	// Floor at 1ms, then comfortable latency but thin batches: hold.
	fb.p = FeedbackPoint{Samples: 100, P99: 1e6}
	now := tick(a, 0, 1)
	fb.p = FeedbackPoint{Samples: 100, P99: 1e6, BatchMean: 1}
	now = tick(a, now, 3)
	if asym, _ := a.Thresholds(); asym != DefaultAsymThreshold {
		t.Fatalf("thin batches moved the threshold: %d", asym)
	}

	// Threshold-sized batches unlock the upward walk.
	fb.p = FeedbackPoint{Samples: 100, P99: 1e6, BatchMean: float64(DefaultAsymThreshold)}
	tick(a, now, 3)
	asym, sym := a.Thresholds()
	if asym <= DefaultAsymThreshold || sym <= DefaultSymThreshold {
		t.Fatalf("full batches did not walk up: %d/%d", asym, sym)
	}
}

func TestAdaptiveHysteresisDeadBand(t *testing.T) {
	fb := &fakeFeedback{}
	cfg := testCfg()
	a := NewAdaptivePoll(cfg, fb)

	// Floor at 1ms → knee 1.5ms. Readings inside ±15% of the knee must
	// not move anything, even with full batches.
	fb.p = FeedbackPoint{Samples: 100, P99: 1e6}
	now := tick(a, 0, 1)
	for _, p99 := range []float64{1.5e6, 1.6e6, 1.55e6} {
		fb.p = FeedbackPoint{Samples: 100, P99: p99, BatchMean: 1000}
		now = tick(a, now, 2)
	}
	if got := a.Adjusts(); got != 0 {
		t.Fatalf("%d adjustments inside the dead band", got)
	}
}

func TestAdaptiveClamps(t *testing.T) {
	fb := &fakeFeedback{}
	cfg := testCfg()
	cfg.MinAsym, cfg.MinSym = 8, 4
	cfg.MaxAsym, cfg.MaxSym = 64, 32
	a := NewAdaptivePoll(cfg, fb)

	fb.p = FeedbackPoint{Samples: 100, P99: 1e6}
	now := tick(a, 0, 1)
	fb.p = FeedbackPoint{Samples: 100, P99: 1e9} // way past the knee
	now = tick(a, now, 50)
	if asym, sym := a.Thresholds(); asym != 8 || sym != 4 {
		t.Fatalf("floor clamp: %d/%d, want 8/4", asym, sym)
	}

	fb.p = FeedbackPoint{Samples: 100, P99: 1, BatchMean: 1e9}
	tick(a, now, 50)
	if asym, sym := a.Thresholds(); asym != 64 || sym != 32 {
		t.Fatalf("ceiling clamp: %d/%d, want 64/32", asym, sym)
	}
}

func TestAdaptiveMinSamplesGate(t *testing.T) {
	fb := &fakeFeedback{p: FeedbackPoint{Samples: 31, P99: 1e9}}
	cfg := testCfg()
	cfg.MinSamples = 32
	a := NewAdaptivePoll(cfg, fb)
	tick(a, 0, 10)
	if a.Adjusts() != 0 {
		t.Fatal("controller moved on an under-sampled window")
	}
}

func TestAdaptiveIntervalRateLimit(t *testing.T) {
	fb := &fakeFeedback{}
	cfg := testCfg()
	cfg.Interval = time.Second
	a := NewAdaptivePoll(cfg, fb)

	fb.p = FeedbackPoint{Samples: 100, P99: 1e6}
	a.Tick(int64(time.Second)) // first tick sets the floor
	fb.p = FeedbackPoint{Samples: 100, P99: 1e9}
	// 100 ticks crammed into half the interval: at most the one step
	// that lands when the interval first elapses.
	for i := 0; i < 100; i++ {
		a.Tick(int64(time.Second) + int64(i)*int64(5*time.Millisecond))
	}
	if got := a.Adjusts(); got > 1 {
		t.Fatalf("%d adjustments inside one interval", got)
	}
}

func TestAdaptiveOnChangeHook(t *testing.T) {
	fb := &fakeFeedback{}
	a := NewAdaptivePoll(testCfg(), fb)
	type move struct{ class, old, new int }
	var moves []move
	a.SetOnChange(func(class, old, new int) {
		moves = append(moves, move{class, old, new})
	})

	fb.p = FeedbackPoint{Samples: 100, P99: 1e6}
	now := tick(a, 0, 1)
	fb.p = FeedbackPoint{Samples: 100, P99: 1e9}
	tick(a, now, 1)

	if len(moves) != 2 {
		t.Fatalf("%d moves, want 2 (asym + sym)", len(moves))
	}
	if moves[0].class != ThresholdAsym || moves[1].class != ThresholdSym {
		t.Fatalf("move classes = %+v", moves)
	}
	if moves[0].old != DefaultAsymThreshold || moves[0].new >= moves[0].old {
		t.Fatalf("asym move = %+v", moves[0])
	}
	if ThresholdClassName(ThresholdAsym) != "asym" || ThresholdClassName(ThresholdSym) != "sym" {
		t.Fatal("ThresholdClassName")
	}
}

// TestShouldPollAtHysteresisEdges drives a policy with an armed
// controller through feedback swings and checks ShouldPoll flips exactly
// when the walked threshold crosses the in-flight count — the unchanged
// call-site contract the tentpole promises.
func TestShouldPollAtHysteresisEdges(t *testing.T) {
	fb := &fakeFeedback{}
	cfg := testCfg()
	cfg.Step = 8
	a := NewAdaptivePoll(cfg, fb)
	p := PollPolicy{Scheme: PollHeuristic, Adaptive: a}.WithDefaults()

	// Static defaults: 40 asym in flight with plentiful actives is under
	// the 48 threshold.
	const inflight = 40
	if p.ShouldPoll(inflight, inflight, 1000) {
		t.Fatal("ShouldPoll fired under the static threshold")
	}

	// High latency walks asym 48 → 40: the same in-flight count now
	// meets the efficiency constraint.
	fb.p = FeedbackPoint{Samples: 100, P99: 1e6}
	now := tick(a, 0, 1)
	fb.p = FeedbackPoint{Samples: 100, P99: 1e9}
	now = tick(a, now, 1)
	if asym, _ := a.Thresholds(); asym != 40 {
		t.Fatalf("asym threshold = %d, want 40", asym)
	}
	if !p.ShouldPoll(inflight, inflight, 1000) {
		t.Fatal("ShouldPoll ignored the walked-down threshold")
	}

	// Readings just inside the dead band leave it there; just outside
	// the low edge with full batches walks it back up and ShouldPoll
	// goes quiet again.
	fb.p = FeedbackPoint{Samples: 100, P99: 1e6, BatchMean: 1000}
	tick(a, now, 2)
	if asym, _ := a.Thresholds(); asym <= 40 {
		t.Fatalf("asym threshold = %d, want > 40", asym)
	}
	if p.ShouldPoll(inflight, inflight, 1000) {
		t.Fatal("ShouldPoll fired after the threshold walked back up")
	}
}

func BenchmarkShouldPoll(b *testing.B) {
	b.Run("static", func(b *testing.B) {
		p := PollPolicy{Scheme: PollHeuristic}.WithDefaults()
		for i := 0; i < b.N; i++ {
			_ = p.ShouldPoll(10, 2, 100)
		}
	})
	b.Run("adaptive", func(b *testing.B) {
		a := NewAdaptivePoll(AdaptiveConfig{}, &fakeFeedback{})
		p := PollPolicy{Scheme: PollHeuristic, Adaptive: a}.WithDefaults()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = p.ShouldPoll(10, 2, 100)
		}
	})
}
