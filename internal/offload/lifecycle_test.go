package offload

import (
	"testing"
	"time"
)

func TestDeadlinePolicyWithDefaults(t *testing.T) {
	d := DeadlinePolicy{}.WithDefaults()
	if d.Handshake != DefaultHandshakeTimeout || d.Header != DefaultHeaderTimeout ||
		d.Keepalive != DefaultKeepaliveTimeout || d.WriteStall != DefaultWriteStallTimeout ||
		d.Tick != DefaultDeadlineTick {
		t.Fatalf("zero value did not resolve to defaults: %+v", d)
	}

	// Explicit values survive, negative (disabled) values survive.
	d = DeadlinePolicy{Handshake: time.Second, Keepalive: -1}.WithDefaults()
	if d.Handshake != time.Second {
		t.Fatalf("explicit handshake overridden: %v", d.Handshake)
	}
	if d.Keepalive != -1 {
		t.Fatalf("disabled keepalive not preserved: %v", d.Keepalive)
	}
	if d.Header != DefaultHeaderTimeout {
		t.Fatalf("unset header not defaulted: %v", d.Header)
	}

	// A non-positive tick is always resolved: the wheel needs a granularity.
	if d := (DeadlinePolicy{Tick: -time.Second}).WithDefaults(); d.Tick != DefaultDeadlineTick {
		t.Fatalf("negative tick not resolved: %v", d.Tick)
	}
}

func TestDeadlinePolicyTimeout(t *testing.T) {
	d := DeadlinePolicy{Handshake: 1, Header: 2, Keepalive: 3, WriteStall: 4}
	want := map[DeadlineClass]time.Duration{
		DeadlineHandshake: 1,
		DeadlineHeader:    2,
		DeadlineKeepalive: 3,
		DeadlineWrite:     4,
	}
	for class, w := range want {
		if got := d.Timeout(class); got != w {
			t.Fatalf("Timeout(%s) = %v, want %v", class, got, w)
		}
	}
	if d.Timeout(NumDeadlineClasses) != 0 {
		t.Fatal("out-of-range class must read as disabled")
	}
}

func TestDeadlineClassString(t *testing.T) {
	want := map[DeadlineClass]string{
		DeadlineHandshake: "handshake",
		DeadlineHeader:    "header",
		DeadlineKeepalive: "keepalive",
		DeadlineWrite:     "write",
	}
	for class, w := range want {
		if class.String() != w {
			t.Fatalf("%d.String() = %q, want %q", class, class.String(), w)
		}
	}
	if DeadlineClass(99).String() == "" {
		t.Fatal("unknown class must still render")
	}
}

func TestOverloadPolicyWithDefaults(t *testing.T) {
	p := OverloadPolicy{}.WithDefaults()
	if p.MaxConns != DefaultMaxConnsPerWorker || p.ShedFraction != DefaultShedFraction ||
		p.KeepaliveShedFraction != DefaultKeepaliveShedFraction {
		t.Fatalf("zero value did not resolve to defaults: %+v", p)
	}
	p = OverloadPolicy{MaxConns: -1, ShedFraction: -1, KeepaliveShedFraction: -1}.WithDefaults()
	if p.MaxConns != -1 || p.ShedFraction != -1 || p.KeepaliveShedFraction != -1 {
		t.Fatalf("disabled values not preserved: %+v", p)
	}
}

func TestShedAccept(t *testing.T) {
	p := OverloadPolicy{MaxConns: 10, ShedFraction: 0.5}.WithDefaults()

	// Connection cap: boundary is inclusive.
	if p.ShedAccept(0, 100, 9) {
		t.Fatal("shed below the connection cap")
	}
	if !p.ShedAccept(0, 100, 10) {
		t.Fatal("no shed at the connection cap")
	}

	// Ring pressure: 0.5 × 100 = 50 in-flight is the admission edge.
	if p.ShedAccept(49, 100, 0) {
		t.Fatal("shed below the pressure threshold")
	}
	if !p.ShedAccept(50, 100, 0) {
		t.Fatal("no shed at the pressure threshold")
	}

	// No ring (SW configuration): pressure shedding is inert, the
	// connection cap still applies.
	if p.ShedAccept(1000, 0, 0) {
		t.Fatal("pressure shed without a ring")
	}
	if !p.ShedAccept(1000, 0, 10) {
		t.Fatal("connection cap inert without a ring")
	}

	// Fully disabled policy never sheds.
	off := OverloadPolicy{MaxConns: -1, ShedFraction: -1, KeepaliveShedFraction: -1}
	if off.ShedAccept(1<<20, 1, 1<<20) {
		t.Fatal("disabled policy shed an accept")
	}
}

func TestShedKeepalive(t *testing.T) {
	p := OverloadPolicy{MaxConns: 100, KeepaliveShedFraction: 0.5}.WithDefaults()

	// Keepalive retention stops at 3/4 of the connection cap — before the
	// accept edge, so idle conns free capacity first.
	if p.ShedKeepalive(0, 0, 74) {
		t.Fatal("keepalive shed below 3/4 of the cap")
	}
	if !p.ShedKeepalive(0, 0, 75) {
		t.Fatal("no keepalive shed at 3/4 of the cap")
	}

	// Pressure threshold.
	if p.ShedKeepalive(49, 100, 0) {
		t.Fatal("keepalive shed below the pressure threshold")
	}
	if !p.ShedKeepalive(50, 100, 0) {
		t.Fatal("no keepalive shed at the pressure threshold")
	}

	off := OverloadPolicy{MaxConns: -1, ShedFraction: -1, KeepaliveShedFraction: -1}
	if off.ShedKeepalive(1<<20, 1, 1<<20) {
		t.Fatal("disabled policy shed a keepalive")
	}
}
