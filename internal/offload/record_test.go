package offload

import "testing"

func TestRecordPolicyOffloadDecision(t *testing.T) {
	cases := []struct {
		name  string
		pol   RecordPolicy
		bytes int
		want  bool
	}{
		{"software-never", RecordPolicy{Mode: RecordSoftware}, 1 << 20, false},
		{"offload-always-small", RecordPolicy{Mode: RecordOffload}, 1, true},
		{"offload-always-large", RecordPolicy{Mode: RecordOffload}, 16384, true},
		{"adaptive-below", RecordPolicy{Mode: RecordAdaptive}, DefaultRecordThreshold - 1, false},
		{"adaptive-at", RecordPolicy{Mode: RecordAdaptive}, DefaultRecordThreshold, true},
		{"adaptive-custom-below", RecordPolicy{Mode: RecordAdaptive, SizeThreshold: 1024}, 1023, false},
		{"adaptive-custom-at", RecordPolicy{Mode: RecordAdaptive, SizeThreshold: 1024}, 1024, true},
	}
	for _, tc := range cases {
		if got := tc.pol.Offload(tc.bytes); got != tc.want {
			t.Errorf("%s: Offload(%d) = %v, want %v", tc.name, tc.bytes, got, tc.want)
		}
	}
}

func TestRecordPolicyDefaults(t *testing.T) {
	// The zero policy must stay zero under WithDefaults — the cross-stack
	// parity test depends on the five named configurations resolving
	// identically, and they all carry the zero (software) record policy.
	if got := (RecordPolicy{}).WithDefaults(); got != (RecordPolicy{}) {
		t.Errorf("zero RecordPolicy resolved to %+v", got)
	}
	got := RecordPolicy{Mode: RecordAdaptive}.WithDefaults()
	if got.SizeThreshold != DefaultRecordThreshold {
		t.Errorf("adaptive threshold default = %d, want %d", got.SizeThreshold, DefaultRecordThreshold)
	}
	for m, want := range map[RecordMode]string{
		RecordSoftware: "software", RecordOffload: "offload", RecordAdaptive: "adaptive",
	} {
		if m.String() != want {
			t.Errorf("RecordMode(%d).String() = %q, want %q", int(m), m.String(), want)
		}
	}
}
