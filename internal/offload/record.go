package offload

import "fmt"

// The post-handshake record-path policy dimension. The paper offloads
// only the handshake's asymmetric work; the record-engine subsystem
// (internal/record) extends offload to the symmetric data path, kTLS
// style. This file defines the shared vocabulary both stacks use to
// decide, per record, whether its protection runs on the worker core or
// on a QAT symmetric instance.

// DefaultRecordThreshold is the adaptive record-offload size threshold:
// records at least this large go to the accelerator, smaller ones are
// sealed in software. Below ~4 KB the submit + pipeline latency of an
// offload outweighs the cipher time it saves, mirroring where the
// per-record fixed costs dominate in the Fig. 10 size sweep.
const DefaultRecordThreshold = 4096

// RecordMode selects how post-handshake record protection is computed.
type RecordMode int

const (
	// RecordSoftware seals and opens every record on the worker core
	// (the paper's configuration: only handshake crypto is offloaded).
	RecordSoftware RecordMode = iota
	// RecordOffload routes every application-data record through a QAT
	// symmetric instance.
	RecordOffload
	// RecordAdaptive offloads records of at least SizeThreshold bytes
	// and seals smaller records in software.
	RecordAdaptive
)

// String returns the mode name (the qat_record_offload directive values).
func (m RecordMode) String() string {
	switch m {
	case RecordSoftware:
		return "software"
	case RecordOffload:
		return "offload"
	case RecordAdaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("RecordMode(%d)", int(m))
	}
}

// RecordPolicy is the record-path policy: the mode plus the adaptive
// size threshold. The zero value is the paper's software record path.
type RecordPolicy struct {
	// Mode selects the record data plane.
	Mode RecordMode
	// SizeThreshold is the adaptive cutoff in payload bytes (default
	// DefaultRecordThreshold; only meaningful for RecordAdaptive).
	SizeThreshold int
}

// WithDefaults resolves the unset threshold for the adaptive mode. The
// software and always-offload modes keep a zero threshold so the zero
// policy stays canonical across stacks (parity test).
func (p RecordPolicy) WithDefaults() RecordPolicy {
	if p.Mode == RecordAdaptive && p.SizeThreshold <= 0 {
		p.SizeThreshold = DefaultRecordThreshold
	}
	return p
}

// Offload is the per-record decision: should a record of the given
// payload size be protected on the accelerator?
func (p RecordPolicy) Offload(bytes int) bool {
	switch p.Mode {
	case RecordOffload:
		return true
	case RecordAdaptive:
		t := p.SizeThreshold
		if t <= 0 {
			t = DefaultRecordThreshold
		}
		return bytes >= t
	default:
		return false
	}
}
