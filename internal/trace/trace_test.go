package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTraceRecordAndRecent(t *testing.T) {
	r := NewRecorder(16)
	r.SetEnabled(true)
	b := r.Buffer(3)
	base := time.Unix(1000, 0)
	for i := 0; i < 5; i++ {
		b.Record(PhasePre, Op(0), TagNone, int64(100+i), base.Add(time.Duration(i)*time.Millisecond), time.Microsecond*time.Duration(i+1))
	}
	spans := r.Recent(0)
	if len(spans) != 5 {
		t.Fatalf("got %d spans, want 5", len(spans))
	}
	for i, s := range spans {
		if s.Phase != PhasePre || s.Op != Op(0) || s.Worker != 3 {
			t.Fatalf("span %d decoded wrong: %+v", i, s)
		}
		if s.Arg != int64(100+i) {
			t.Fatalf("span %d arg = %d (spans not in start order)", i, s.Arg)
		}
		if s.Dur != int64(time.Microsecond)*int64(i+1) {
			t.Fatalf("span %d dur = %d", i, s.Dur)
		}
	}
	if got := r.Recent(2); len(got) != 2 || got[1].Arg != 104 {
		t.Fatalf("Recent(2) = %+v, want the 2 newest", got)
	}
	if r.Count() != 5 {
		t.Fatalf("Count = %d", r.Count())
	}
}

func TestTraceRingOverwritesOldest(t *testing.T) {
	r := NewRecorder(8)
	r.SetEnabled(true)
	b := r.Buffer(0)
	for i := 0; i < 20; i++ {
		b.Record(PhasePoll, OpNone, TagHeuristic, int64(i), time.Unix(0, int64(i)), 0)
	}
	spans := r.Recent(0)
	if len(spans) != 8 {
		t.Fatalf("retained %d spans, want ring size 8", len(spans))
	}
	if spans[0].Arg != 12 || spans[7].Arg != 19 {
		t.Fatalf("ring kept wrong window: first=%d last=%d", spans[0].Arg, spans[7].Arg)
	}
	if r.Count() != 20 {
		t.Fatalf("Count = %d, want total recorded", r.Count())
	}
}

func TestTraceDisabledAndNilAreInert(t *testing.T) {
	r := NewRecorder(8)
	b := r.Buffer(0)
	if b.Active() {
		t.Fatal("buffer active before enable")
	}
	b.Record(PhasePre, OpNone, TagNone, 0, time.Now(), 0)
	if r.Count() != 0 {
		t.Fatal("disabled recorder kept a span")
	}

	var nilBuf *Buffer
	if nilBuf.Active() {
		t.Fatal("nil buffer active")
	}
	nilBuf.Record(PhasePre, OpNone, TagNone, 0, time.Now(), 0) // must not panic

	var nilRec *Recorder
	nilRec.SetEnabled(true)
	if nilRec.Enabled() || nilRec.Buffer(0) != nil || nilRec.Recent(1) != nil || nilRec.Count() != 0 {
		t.Fatal("nil recorder not inert")
	}
}

// The disabled span path must not allocate — the opt-out-cheap
// guarantee the server relies on to leave instrumentation compiled in.
func TestTraceDisabledRecordDoesNotAllocate(t *testing.T) {
	r := NewRecorder(8)
	b := r.Buffer(0)
	now := time.Now()
	if n := testing.AllocsPerRun(1000, func() {
		b.Record(PhaseRetrieve, Op(0), TagNone, 7, now, time.Microsecond)
	}); n != 0 {
		t.Fatalf("disabled Record allocates %v times per call", n)
	}
	r.SetEnabled(true)
	if n := testing.AllocsPerRun(1000, func() {
		b.Record(PhaseRetrieve, Op(0), TagNone, 7, now, time.Microsecond)
	}); n != 0 {
		t.Fatalf("enabled Record allocates %v times per call", n)
	}
}

// Concurrent writers on their own buffers plus a reader merging them:
// exercised under -race; torn slots must be skipped, not corrupted.
func TestTraceConcurrentRecordAndSnapshot(t *testing.T) {
	r := NewRecorder(64)
	r.SetEnabled(true)
	const workers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		b := r.Buffer(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				b.Record(PhaseRetrieve, Op(uint8(i%5)), TagNone, int64(i), time.Now(), time.Nanosecond)
			}
		}()
	}
	for i := 0; i < 50; i++ {
		for _, s := range r.Recent(0) {
			if s.Phase != PhaseRetrieve || int(s.Worker) >= workers || int(s.Op) >= 5 {
				t.Errorf("corrupt span read: %+v", s)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestTraceSpanJSON(t *testing.T) {
	s := Span{Start: 123, Dur: 456, Phase: PhaseNotify, Op: OpNone, Tag: TagHeuristic, Worker: 2, Arg: 9}
	out, err := json.Marshal([]Span{s})
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatalf("span JSON does not round-trip: %v\n%s", err, out)
	}
	for _, want := range []string{`"phase":"notify"`, `"op":"none"`, `"tag":"heuristic"`, `"dur_ns":456`} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("JSON missing %s: %s", want, out)
		}
	}
}

func TestTraceNames(t *testing.T) {
	if PhasePre.String() != "pre" || PhaseRetrieve.String() != "retrieve" ||
		PhaseNotify.String() != "notify" || PhasePost.String() != "post" ||
		PhasePoll.String() != "poll" || PhaseFlush.String() != "flush" {
		t.Fatal("phase names")
	}
	if TagCoalesce.String() != "coalesce" {
		t.Fatal("tag names")
	}
	if Phase(99).String() == "" || Op(99).String() == "" || Tag(99).String() == "" {
		t.Fatal("unknown value rendering")
	}
	if Op(0).String() != "rsa" || Op(4).String() != "cipher" || OpNone.String() != "none" {
		t.Fatal("op names")
	}
	if len(OffloadPhases()) != 4 {
		t.Fatal("want 4 offload phases")
	}
	if got := PhaseSeriesName(PhasePre); got != `qtls_phase_ns{phase="pre"}` {
		t.Fatalf("series name = %s", got)
	}
}

func TestTraceSubscribeSeesCommittedSpans(t *testing.T) {
	r := NewRecorder(16)
	r.SetEnabled(true)
	var got []Span
	r.Subscribe(func(s Span) { got = append(got, s) })
	b := r.Buffer(2)
	base := time.Unix(2000, 0)
	b.Record(PhaseRetrieve, Op(1), TagRetry, 42, base, 3*time.Microsecond)
	if len(got) != 1 {
		t.Fatalf("hook saw %d spans, want 1", len(got))
	}
	s := got[0]
	if s.Phase != PhaseRetrieve || s.Op != Op(1) || s.Tag != TagRetry ||
		s.Worker != 2 || s.Arg != 42 || s.Dur != int64(3*time.Microsecond) ||
		s.Start != base.UnixNano() {
		t.Fatalf("hook span decoded wrong: %+v", s)
	}

	// A disabled recorder must not invoke the hook.
	r.SetEnabled(false)
	b.Record(PhasePre, Op(0), TagNone, 0, base, time.Microsecond)
	if len(got) != 1 {
		t.Fatal("hook fired while recorder disabled")
	}

	// Detach: spans keep flowing into the ring but not the hook.
	r.SetEnabled(true)
	r.Subscribe(nil)
	b.Record(PhasePre, Op(0), TagNone, 0, base, time.Microsecond)
	if len(got) != 1 {
		t.Fatal("hook fired after Subscribe(nil)")
	}

	var nilRec *Recorder
	nilRec.Subscribe(func(Span) {}) // must not panic
}

// A non-allocating subscriber must keep the enabled record path at zero
// allocations — flight's span hook depends on the span arriving by
// value.
func TestTraceSubscribedRecordDoesNotAllocate(t *testing.T) {
	r := NewRecorder(8)
	var sink atomic.Int64
	r.Subscribe(func(s Span) { sink.Add(s.Dur) })
	b := r.Buffer(0)
	now := time.Now()
	if n := testing.AllocsPerRun(1000, func() {
		b.Record(PhaseRetrieve, Op(0), TagNone, 7, now, time.Microsecond)
	}); n != 0 {
		t.Fatalf("disabled Record with subscriber allocates %v times per call", n)
	}
	r.SetEnabled(true)
	if n := testing.AllocsPerRun(1000, func() {
		b.Record(PhaseRetrieve, Op(0), TagNone, 7, now, time.Microsecond)
	}); n != 0 {
		t.Fatalf("enabled Record with subscriber allocates %v times per call", n)
	}
	if sink.Load() == 0 {
		t.Fatal("subscriber never ran")
	}
}

func BenchmarkRecordDisabled(b *testing.B) {
	r := NewRecorder(4096)
	buf := r.Buffer(0)
	now := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Record(PhasePre, Op(0), TagNone, int64(i), now, time.Microsecond)
	}
}

func BenchmarkRecordEnabled(b *testing.B) {
	r := NewRecorder(4096)
	r.SetEnabled(true)
	buf := r.Buffer(0)
	now := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Record(PhasePre, Op(0), TagNone, int64(i), now, time.Microsecond)
	}
}

func BenchmarkRecordSubscribed(b *testing.B) {
	r := NewRecorder(4096)
	r.SetEnabled(true)
	var sink atomic.Int64
	r.Subscribe(func(s Span) { sink.Add(s.Dur) })
	buf := r.Buffer(0)
	now := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Record(PhasePre, Op(0), TagNone, int64(i), now, time.Microsecond)
	}
}
