// Package trace is the low-overhead span recorder behind the QTLS
// observability surface. It records the paper's four offload phases
// (§3.2: pre-processing, QAT response retrieval, async event
// notification, post-processing) plus poll batches as fixed-size span
// records in per-worker ring buffers, so the live stack can answer the
// question the whole design argues about — *where the time between
// submission and resumption goes* — without perturbing the event loop
// it is measuring.
//
// Design constraints, in order:
//
//   - Opt-out cheap: with the recorder disabled, the span path is one
//     atomic load and no allocations (guarded by a benchmark).
//   - No cross-worker contention: each worker owns a private ring
//     buffer; nothing on the record path is shared between workers.
//   - Race-detector clean: every slot word is an atomic.Int64 and each
//     slot carries a seqlock-style generation word, so a reader racing a
//     wrap-around writer detects the torn slot and skips it instead of
//     returning garbage (and `go test -race` stays quiet, which a
//     classic plain-field seqlock would not).
//
// Spans are fixed-size (five words) and written in place; the ring
// overwrites the oldest spans when full. Readers (the /debug/trace
// endpoint, CLI dumps) merge the per-worker rings and sort by start
// time.
package trace

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Phase identifies what a span measures. The first four values are the
// paper's four offload phases (§3.2, Fig. 4); PhasePoll spans cover one
// response-retrieval poll batch (tagged with what triggered it).
type Phase uint8

const (
	// PhasePre is pre-processing: entering the crypto call to the
	// request being submitted on the QAT request ring (the job pauses
	// right after).
	PhasePre Phase = iota
	// PhaseRetrieve is QAT response retrieval: submission to the
	// response callback running inside a poll.
	PhaseRetrieve
	// PhaseNotify is async event notification: response callback firing
	// the notification to the event loop picking the async handler up.
	PhaseNotify
	// PhasePost is post-processing: resuming the paused job to the
	// handler yielding control back to the event loop.
	PhasePost
	// PhasePoll is one response-retrieval poll batch (not an offload
	// phase; Tag says whether the heuristic, the timer or the failover
	// check triggered it, Arg carries the batch size).
	PhasePoll
	// PhaseFlush is one submit-coalescer flush: draining the ops that
	// paused during an event-loop iteration onto the request rings in
	// batches (the submit-side dual of PhasePoll; Arg carries the number
	// of ops flushed).
	PhaseFlush
	// PhaseShed is one admission-control rejection: the worker refused a
	// connection under overload, at accept time (TCP reset before TLS
	// bytes were spent) or at keepalive-reuse time (Connection: close
	// after the in-flight response). Arg carries the connection fd.
	PhaseShed
	// PhaseRecord is one post-handshake record-engine flush: sealed
	// records leaving the record data plane for a connection's socket
	// buffer, in order (Arg carries the wire bytes flushed).
	PhaseRecord

	// NumPhases is the number of defined phases.
	NumPhases
)

// String returns the short phase name used in metric labels.
func (p Phase) String() string {
	switch p {
	case PhasePre:
		return "pre"
	case PhaseRetrieve:
		return "retrieve"
	case PhaseNotify:
		return "notify"
	case PhasePost:
		return "post"
	case PhasePoll:
		return "poll"
	case PhaseFlush:
		return "flush"
	case PhaseShed:
		return "shed"
	case PhaseRecord:
		return "record"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// OffloadPhases returns the paper's four offload phases in §3.2 order.
func OffloadPhases() []Phase {
	return []Phase{PhasePre, PhaseRetrieve, PhaseNotify, PhasePost}
}

// PhaseSeriesName is the registry series (metric name + label) that
// carries the latency histogram of one phase, shared by the engine, the
// server worker and the figure generators.
func PhaseSeriesName(p Phase) string {
	return `qtls_phase_ns{phase="` + p.String() + `"}`
}

// Op classifies the crypto operation a span belongs to. Values mirror
// qat.OpType (rsa, ecdsa, ecdh, prf, cipher, sym); OpNone marks spans
// not tied to one operation (polls, loop work).
type Op uint8

// OpNone marks a span with no associated crypto operation.
const OpNone Op = 0xff

var opNames = [...]string{"rsa", "ecdsa", "ecdh", "prf", "cipher", "sym"}

// String returns the conventional op name.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	if o == OpNone {
		return "none"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Tag qualifies a span: for PhasePoll it records what triggered the
// poll (the heuristic constraints, the polling timer, or the 5 ms
// failover timer); offload-phase spans may carry TagRetry or
// TagFallback when the op took a degradation path.
type Tag uint8

const (
	// TagNone is the default tag.
	TagNone Tag = iota
	// TagHeuristic marks a poll triggered by the heuristic constraints.
	TagHeuristic
	// TagTimer marks a poll triggered by the fixed polling interval.
	TagTimer
	// TagFailover marks a poll triggered by the failover timer.
	TagFailover
	// TagRetry marks an op span on a resubmission attempt.
	TagRetry
	// TagFallback marks an op span that degraded to software.
	TagFallback
	// TagKernelBypass marks a notification span delivered through the
	// application-level async queue (§3.4, no kernel involvement).
	TagKernelBypass
	// TagFD marks a notification span delivered through the notification
	// pipe and epoll (costing user/kernel switches).
	TagFD
	// TagCoalesce marks a pre-processing span whose submission was
	// gathered by the engine's submit coalescer and deferred to the
	// iteration-end batch flush instead of ringing the doorbell alone.
	TagCoalesce
	// TagDrain marks a span recorded while the worker was draining:
	// shutdown-initiated close-notify writes, the final submit flushes,
	// and PhaseShed spans for connections refused because the listener
	// was already closed.
	TagDrain
)

// String returns the tag name.
func (t Tag) String() string {
	switch t {
	case TagNone:
		return "none"
	case TagHeuristic:
		return "heuristic"
	case TagTimer:
		return "timer"
	case TagFailover:
		return "failover"
	case TagRetry:
		return "retry"
	case TagFallback:
		return "fallback"
	case TagKernelBypass:
		return "kernel-bypass"
	case TagFD:
		return "fd"
	case TagCoalesce:
		return "coalesce"
	case TagDrain:
		return "drain"
	default:
		return fmt.Sprintf("tag(%d)", int(t))
	}
}

// Span is one decoded span record.
type Span struct {
	// Start is the span start, nanoseconds since the Unix epoch.
	Start int64
	// Dur is the span duration in nanoseconds.
	Dur int64
	// Phase says what was measured.
	Phase Phase
	// Op is the crypto operation class (OpNone when not applicable).
	Op Op
	// Tag qualifies the span (poll trigger, degradation path).
	Tag Tag
	// Worker is the recording worker's id.
	Worker uint8
	// Arg is phase-dependent: the connection fd for offload phases, the
	// batch size for poll spans.
	Arg int64
}

// MarshalJSON renders the span with symbolic phase/op/tag names, the
// shape served by the /debug/trace endpoint.
func (s Span) MarshalJSON() ([]byte, error) {
	return fmt.Appendf(nil,
		`{"start_ns":%d,"dur_ns":%d,"phase":%q,"op":%q,"tag":%q,"worker":%d,"arg":%d}`,
		s.Start, s.Dur, s.Phase, s.Op, s.Tag, s.Worker, s.Arg), nil
}

// Slot layout: [generation, start, dur, meta, arg]. The generation word
// is 2*index+1 while the slot is being written and 2*index+2 once
// stable, so a reader can both detect in-progress writes (odd) and
// verify the slot still holds the generation it started reading (equal
// before and after).
const slotWords = 5

// Buffer is one worker's private span ring. The zero/nil Buffer is
// inert: Active reports false and Record is a no-op, so callers hold a
// plain *Buffer and never nil-check.
type Buffer struct {
	rec    *Recorder
	worker uint8
	mask   uint64
	cursor atomic.Uint64
	slots  []atomic.Int64
}

// Active reports whether spans recorded now would be kept. Callers use
// it to skip timestamping entirely when tracing is off.
func (b *Buffer) Active() bool {
	return b != nil && b.rec.enabled.Load()
}

// Record stores one span. It is safe to call on a nil or disabled
// buffer (single branch + atomic load, no allocation — the property the
// package benchmark guards).
func (b *Buffer) Record(ph Phase, op Op, tag Tag, arg int64, start time.Time, dur time.Duration) {
	if !b.Active() {
		return
	}
	idx := b.cursor.Add(1) - 1
	base := int(idx&b.mask) * slotWords
	gen := int64(idx) * 2
	b.slots[base].Store(gen + 1)
	b.slots[base+1].Store(start.UnixNano())
	b.slots[base+2].Store(int64(dur))
	b.slots[base+3].Store(int64(ph) | int64(op)<<8 | int64(tag)<<16 | int64(b.worker)<<24)
	b.slots[base+4].Store(arg)
	b.slots[base].Store(gen + 2)
	if h := b.rec.hook.Load(); h != nil {
		// The span is handed over by value: a subscriber that does not
		// allocate keeps this path allocation-free (the package benchmark
		// guards the disabled path; flight's guards the subscribed one).
		(*h)(Span{
			Start:  start.UnixNano(),
			Dur:    int64(dur),
			Phase:  ph,
			Op:     op,
			Tag:    tag,
			Worker: b.worker,
			Arg:    arg,
		})
	}
}

// size returns the ring capacity in spans.
func (b *Buffer) size() uint64 { return b.mask + 1 }

// snapshot appends every readable span in the ring to out, oldest
// first. Torn slots (a writer raced the read) are skipped.
func (b *Buffer) snapshot(out []Span) []Span {
	if b == nil {
		return out
	}
	cur := b.cursor.Load()
	n := cur
	if n > b.size() {
		n = b.size()
	}
	for i := cur - n; i < cur; i++ {
		base := int(i&b.mask) * slotWords
		want := int64(i)*2 + 2
		if b.slots[base].Load() != want {
			continue // being written, or already overwritten by a wrap
		}
		s := Span{
			Start: b.slots[base+1].Load(),
			Dur:   b.slots[base+2].Load(),
		}
		meta := b.slots[base+3].Load()
		arg := b.slots[base+4].Load()
		if b.slots[base].Load() != want {
			continue // torn: a wrap-around writer got in between
		}
		s.Phase = Phase(meta & 0xff)
		s.Op = Op(meta >> 8 & 0xff)
		s.Tag = Tag(meta >> 16 & 0xff)
		s.Worker = uint8(meta >> 24 & 0xff)
		s.Arg = arg
		out = append(out, s)
	}
	return out
}

// Recorder owns the per-worker buffers and the global enable flag.
// Buffers are created lazily, one per worker id.
type Recorder struct {
	enabled   atomic.Bool
	perWorker uint64
	hook      atomic.Pointer[func(Span)]

	mu   sync.Mutex
	bufs map[int]*Buffer
}

// NewRecorder returns a disabled recorder whose per-worker rings hold
// perWorker spans (rounded up to a power of two; <= 0 selects 4096).
func NewRecorder(perWorker int) *Recorder {
	if perWorker <= 0 {
		perWorker = 4096
	}
	size := uint64(1)
	for size < uint64(perWorker) {
		size <<= 1
	}
	return &Recorder{perWorker: size, bufs: make(map[int]*Buffer)}
}

// SetEnabled turns span recording on or off. Disabling keeps already
// recorded spans readable.
func (r *Recorder) SetEnabled(on bool) {
	if r != nil {
		r.enabled.Store(on)
	}
}

// Enabled reports whether spans are currently being kept.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled.Load() }

// Subscribe installs fn as the span-commit hook: every span recorded
// while the recorder is enabled is also handed to fn, by value, on the
// recording goroutine. This is how the flight recorder observes the
// stack without re-instrumenting it. fn must be fast and must not
// allocate if the record path's zero-alloc property matters to the
// caller; it must not call back into the recorder. Pass nil to detach.
// Only one subscriber is supported; the latest call wins.
func (r *Recorder) Subscribe(fn func(Span)) {
	if r == nil {
		return
	}
	if fn == nil {
		r.hook.Store(nil)
		return
	}
	r.hook.Store(&fn)
}

// Buffer returns worker's private ring, creating it on first use. A nil
// recorder returns a nil (inert) buffer, so wiring is optional
// end-to-end.
func (r *Recorder) Buffer(worker int) *Buffer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.bufs[worker]
	if !ok {
		b = &Buffer{
			rec:    r,
			worker: uint8(worker),
			mask:   r.perWorker - 1,
			slots:  make([]atomic.Int64, r.perWorker*slotWords),
		}
		r.bufs[worker] = b
	}
	return b
}

// Count returns the total number of spans recorded across all buffers
// (including spans already overwritten by the rings).
func (r *Recorder) Count() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, b := range r.bufs {
		n += int64(b.cursor.Load())
	}
	return n
}

// Recent returns up to n spans, merged across workers and sorted by
// start time (oldest first). n <= 0 returns everything retained.
func (r *Recorder) Recent(n int) []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	bufs := make([]*Buffer, 0, len(r.bufs))
	for _, b := range r.bufs {
		bufs = append(bufs, b)
	}
	r.mu.Unlock()
	var spans []Span
	for _, b := range bufs {
		spans = b.snapshot(spans)
	}
	sortSpans(spans)
	if n > 0 && len(spans) > n {
		spans = spans[len(spans)-n:]
	}
	return spans
}

// sortSpans orders by start time (insertion-free pdqsort via sort.Slice
// would allocate a closure; spans are small, use a simple shellsort to
// keep the read path allocation-light).
func sortSpans(s []Span) {
	for gap := len(s) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(s); i++ {
			v := s[i]
			j := i
			for ; j >= gap && s[j-gap].Start > v.Start; j -= gap {
				s[j] = s[j-gap]
			}
			s[j] = v
		}
	}
}
