package server

import (
	"strings"
	"testing"
	"time"

	"qtls/internal/minitls"
)

// The example from the artifact appendix (§A.7), with threshold overrides
// deliberately different from the offload-package defaults so the test
// proves the directives are read rather than defaulted.
const artifactConf = `
worker_processes 8;
ssl_engine {
    use qat_engine;
    default_algorithm RSA,EC,DH,PKEY_CRYPTO;
    qat_engine {
        qat_offload_mode async;
        qat_notify_mode poll;
        qat_poll_mode heuristic;
        qat_heuristic_poll_asym_threshold 64;
        qat_heuristic_poll_sym_threshold 32;
    }
}
`

func TestParseArtifactExample(t *testing.T) {
	s, err := ParseEngineConfig(artifactConf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Workers != 8 {
		t.Fatalf("workers = %d", s.Workers)
	}
	if s.Run.Name != "QTLS" {
		t.Fatalf("config = %s, want QTLS (async+heuristic+poll-notify)", s.Run.Name)
	}
	if !s.Run.UseQAT || s.Run.AsyncMode != minitls.AsyncModeFiber {
		t.Fatalf("run = %+v", s.Run)
	}
	if s.Run.Polling != PollHeuristic || s.Run.Notify != NotifyKernelBypass {
		t.Fatalf("polling/notify = %v/%v", s.Run.Polling, s.Run.Notify)
	}
	if s.Run.AsymThreshold != 64 || s.Run.SymThreshold != 32 {
		t.Fatalf("thresholds = %d/%d", s.Run.AsymThreshold, s.Run.SymThreshold)
	}
	// RSA,EC,DH,PKEY_CRYPTO → RSA, ECDSA, ECDH, PRF (no cipher).
	want := []minitls.OpKind{minitls.KindRSA, minitls.KindECDSA, minitls.KindECDH, minitls.KindPRF}
	if len(s.Offload) != len(want) {
		t.Fatalf("offload = %v", s.Offload)
	}
	for i, k := range want {
		if s.Offload[i] != k {
			t.Fatalf("offload = %v, want %v", s.Offload, want)
		}
	}
}

func TestParseNoEngineMeansSW(t *testing.T) {
	s, err := ParseEngineConfig("worker_processes 4;")
	if err != nil {
		t.Fatal(err)
	}
	if s.Run.Name != "SW" || s.Run.UseQAT {
		t.Fatalf("run = %+v", s.Run)
	}
	if s.Workers != 4 {
		t.Fatalf("workers = %d", s.Workers)
	}
}

func TestParseSyncModeIsQATS(t *testing.T) {
	s, err := ParseEngineConfig(`
ssl_engine {
    use qat_engine;
    qat_engine { qat_offload_mode sync; }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Run.Name != "QAT+S" || s.Run.AsyncMode != minitls.AsyncModeOff {
		t.Fatalf("run = %+v", s.Run)
	}
}

func TestParseTimerFDIsQATA(t *testing.T) {
	s, err := ParseEngineConfig(`
ssl_engine {
    use qat_engine;
    qat_engine {
        qat_offload_mode async;
        qat_poll_mode timer;
        qat_notify_mode event_fd;
        qat_poll_interval 1ms;
    }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Run.Name != "QAT+A" || s.Run.Polling != PollTimer || s.Run.Notify != NotifyFD {
		t.Fatalf("run = %+v", s.Run)
	}
	if s.Run.PollInterval != time.Millisecond {
		t.Fatalf("interval = %v", s.Run.PollInterval)
	}
}

func TestParseHeuristicFDIsQATAH(t *testing.T) {
	s, err := ParseEngineConfig(`
ssl_engine {
    use qat_engine;
    qat_engine {
        qat_offload_mode async;
        qat_poll_mode heuristic;
        qat_notify_mode fd;
    }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Run.Name != "QAT+AH" {
		t.Fatalf("run = %+v", s.Run)
	}
}

func TestParseStackAsyncMode(t *testing.T) {
	s, err := ParseEngineConfig(`
ssl_engine {
    use qat_engine;
    qat_engine { qat_offload_mode async_stack; }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Run.AsyncMode != minitls.AsyncModeStack {
		t.Fatalf("mode = %v", s.Run.AsyncMode)
	}
}

func TestParseAlgorithmVariants(t *testing.T) {
	kinds, err := parseAlgorithms("ALL")
	if err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 5 {
		t.Fatalf("ALL = %v", kinds)
	}
	kinds, err = parseAlgorithms("CIPHERS,rsa,")
	if err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 2 || kinds[0] != minitls.KindRSA || kinds[1] != minitls.KindCipher {
		t.Fatalf("kinds = %v", kinds)
	}
	if _, err := parseAlgorithms("HKDF"); err == nil {
		t.Fatal("HKDF must be rejected (not offloadable)")
	}
}

func TestParseComments(t *testing.T) {
	s, err := ParseEngineConfig(`
# a comment
worker_processes 2; # trailing comment
ssl_engine {
    use qat_engine;  # another
    qat_engine { qat_offload_mode async; }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Workers != 2 || !s.Run.UseQAT {
		t.Fatalf("parsed = %+v", s)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, conf, wantErr string
	}{
		{"unknown top directive", "listen 80;", "unknown directive"},
		{"unknown engine", "ssl_engine { use foo_engine; }", "unknown engine"},
		{"unknown inner", "ssl_engine { frob 1; }", "unknown directive"},
		{"unknown qat directive", "ssl_engine { use qat_engine; qat_engine { nope 1; } }", "unknown directive"},
		{"bad offload mode", "ssl_engine { use qat_engine; qat_engine { qat_offload_mode warp; } }", "unknown mode"},
		{"bad poll mode", "ssl_engine { use qat_engine; qat_engine { qat_offload_mode async; qat_poll_mode never; } }", "unknown mode"},
		{"bad notify mode", "ssl_engine { use qat_engine; qat_engine { qat_offload_mode async; qat_notify_mode smoke; } }", "unknown mode"},
		{"missing semicolon", "worker_processes 8", "expected"},
		{"bad int", "worker_processes eight;", "invalid syntax"},
		{"truncated block", "ssl_engine {", "unexpected end"},
		{"missing arg", "worker_processes ;", "missing argument"},
		{"bad interval", "ssl_engine { use qat_engine; qat_engine { qat_offload_mode async; qat_poll_interval soon; } }", "qat_poll_interval"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseEngineConfig(tc.conf)
			if err == nil {
				t.Fatalf("no error for %q", tc.conf)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}
