//go:build linux

package server

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// The record-path mode switch: with RecordMode != software each
// connection's write direction is handed from minitls to the worker's
// record engine (internal/record) once the handshake completes — the
// userspace equivalent of installing kTLS keys on the socket. Response
// plaintext then flows handler → record engine → socket buffer without
// ever being copied into a TLS-layer staging buffer: the seal reads the
// handler's bytes in place, and the sealed wire record lands in a
// pooled buffer that goes straight to the kernel.

// recordSink adapts a connection's socket buffer to record.Sink.
// netpoll.Conn.Write never fails with EAGAIN (it buffers in user
// space), so in-order delivery is preserved under backpressure too.
type recordSink struct{ c *conn }

func (s recordSink) WriteRecord(rec []byte) (err error) {
	_, err = s.c.nc.Write(rec)
	return err
}

// installStream switches c to the offloaded record path: export the
// negotiated write keys, build a stream continuing the handshake's
// sequence numbers, and detach minitls's writer so the two planes can
// never interleave records. Any failure leaves the connection on the
// software path — the mode switch degrades, it doesn't break.
func (w *Worker) installStream(c *conn) {
	km, err := c.tls.ExportWriteKeys()
	if err != nil {
		return
	}
	s, err := w.rec.NewStream(km, recordSink{c})
	if err != nil {
		return
	}
	if err := c.tls.DetachWriter(); err != nil {
		return
	}
	c.stream = s
}

// serveRecord writes one response through the record stream. The header
// is a fresh small allocation; the body is the handler's own buffer,
// sealed in place (the zero-copy contract: jobs hold the only
// reference, keeping it alive until the stream drains).
func (w *Worker) serveRecord(c *conn, hdr string, body []byte) {
	c.respBytes = len(hdr) + len(body)
	if err := c.stream.Write([]byte(hdr)); err == nil && len(body) > 0 {
		c.stream.Write(body)
	}
	c.handler = w.recordWriteHandler
	w.recordWriteHandler(c)
}

// recordWriteHandler finishes a record-path response. Software-sealed
// records have already reached the socket buffer; offloaded ones arrive
// via pollRecordEngine, which re-invokes this handler until the stream
// has drained. The keepalive/close tail mirrors writeHandler.
func (w *Worker) recordWriteHandler(c *conn) {
	if err := c.stream.Err(); err != nil {
		w.Stats.Errors.Add(1)
		w.closeConn(c)
		return
	}
	if c.stream.Pending() > 0 {
		// Offloaded seals still in flight: park on the completion scan.
		if !c.recQueued {
			c.recQueued = true
			w.recWaiting = append(w.recWaiting, c)
		}
		return
	}
	w.Stats.BytesOut.Add(int64(c.respBytes))
	c.respBytes = 0
	if c.closeAfterWrite {
		w.sendCloseNotify(c)
		if c.nc.Flush(); c.nc.HasPending() {
			c.draining = true
			w.updateWriteInterest(c)
			return
		}
		w.closeConn(c)
		return
	}
	c.handler = w.requestHandler
	if c.active {
		c.active = false
		w.activeConns--
	}
	if len(c.reqBuf) > 0 {
		c.active = true
		w.activeConns++
		w.requestHandler(c)
	}
}

// pollRecordEngine drains record-engine completions and re-invokes the
// write handler of every connection whose stream finished (or failed).
// Runs once per loop iteration, like the async/retry queue drains.
func (w *Worker) pollRecordEngine() {
	if w.rec == nil {
		return
	}
	if w.rec.Inflight() > 0 {
		w.rec.Poll()
	}
	if len(w.recWaiting) == 0 {
		return
	}
	waiting := w.recWaiting
	w.recWaiting = nil // invoke() may re-queue conns (pipelined requests)
	for _, c := range waiting {
		c.recQueued = false
		if c.closed || c.stream == nil {
			continue
		}
		if c.stream.Err() == nil && c.stream.Pending() > 0 {
			c.recQueued = true
			w.recWaiting = append(w.recWaiting, c)
			continue
		}
		w.invoke(c) // recordWriteHandler completes or closes the conn
	}
}

// sendCloseNotify queues the TLS close-notify alert on whichever plane
// owns the write direction. On the record path the stream seals it
// (software, ordering-critical) with the live sequence number;
// tls.Close then only tears down handshake-layer state — a detached
// Conn skips its own alert.
func (w *Worker) sendCloseNotify(c *conn) {
	if c.stream != nil && c.stream.Err() == nil {
		c.stream.CloseNotify()
	}
	c.tls.Close()
}

// FileHandler serves files from root — the ServeFile seam of the
// record path. Each file is read once and cached; on record-path
// configurations responses are sealed from the cached bytes in place,
// so repeated transfers of the same file never copy its plaintext
// (the userspace analogue of sendfile over kTLS). Paths are constrained
// to the root; unknown or escaping paths 404.
func FileHandler(root string) Handler {
	cache := map[string][]byte{}
	var mu sync.Mutex
	return func(path string) ([]byte, bool) {
		rel := strings.TrimPrefix(path, "/")
		if rel == "" || strings.Contains(rel, "..") {
			return nil, false
		}
		mu.Lock()
		defer mu.Unlock()
		if body, ok := cache[rel]; ok {
			return body, true
		}
		full := filepath.Join(root, filepath.FromSlash(rel))
		body, err := os.ReadFile(full)
		if err != nil {
			return nil, false
		}
		cache[rel] = body
		return body, true
	}
}

// RecordStats sums the per-worker record-engine counters. Callers must
// quiesce the workers first (Stop/Shutdown) — the counters are owned by
// the worker goroutines; the live view is the metrics registry
// (qtls_record_bytes, qtls_record_offload_ops, qtls_record_sw_ops).
func (s *Server) RecordStats() (st RecordStats) {
	for _, w := range s.workers {
		if w == nil || w.rec == nil {
			continue
		}
		rs := w.rec.Stats()
		st.Records += rs.Records
		st.OffloadOps += rs.OffloadOps
		st.SoftwareOps += rs.SoftwareOps
		st.Fallbacks += rs.Fallbacks
		st.Bytes += rs.Bytes
	}
	return st
}

// RecordStats aggregates record-engine counters across workers.
type RecordStats struct {
	Records, OffloadOps, SoftwareOps, Fallbacks, Bytes int64
}

// String renders the counters for logs and figure captions.
func (st RecordStats) String() string {
	return fmt.Sprintf("records=%d offload=%d sw=%d fallback=%d bytes=%d",
		st.Records, st.OffloadOps, st.SoftwareOps, st.Fallbacks, st.Bytes)
}
