//go:build linux

package server

import (
	"time"

	"qtls/internal/trace"
)

// The poll/failover/deadline policy driver: the worker-side consumer of
// the shared offload.PollPolicy (internal/offload). The decisions — when
// the heuristic constraints demand a poll, when the failover timer is due
// — live in the policy value; this file feeds it the live inputs (Rtotal,
// in-flight asymmetric count, TCactive) and performs the polls.

// pollEngine drains QAT responses, attributing the poll to its trigger:
// a span (arg = batch size) plus a batch-size histogram per cause. The
// lastPoll / per-cause stat bookkeeping stays at the call sites, which
// have different rules for it.
func (w *Worker) pollEngine(tag trace.Tag) int {
	var start time.Time
	if w.tr.Active() {
		start = time.Now()
	}
	n := w.eng.Poll(0)
	if n > 0 && w.batchWin != nil {
		// Completion-batch efficiency feed for the adaptive controller:
		// how many responses this poll amortized its cost over.
		w.batchWin.Observe(float64(n), time.Now().UnixNano())
	}
	if !start.IsZero() {
		w.tr.Record(trace.PhasePoll, trace.OpNone, tag, int64(n), start, time.Since(start))
		if h := w.histBatch[batchIdx(tag)]; h != nil {
			h.Observe(float64(n))
		}
	}
	return n
}

// flushSubmits pushes the engine's gathered submissions onto the request
// rings (engine.Flush: one ring lock and one doorbell per instance
// chunk). The worker calls it wherever it drains the async notification
// queue, so an op coalesced during this iteration is on the rings before
// the loop sleeps. With tracing on the flush is one PhaseFlush span whose
// Arg is the number of ops flushed, plus a flush-size histogram sample.
func (w *Worker) flushSubmits() {
	if w.eng == nil || w.eng.PendingSubmits() == 0 {
		return
	}
	var start time.Time
	if w.tr.Active() {
		start = time.Now()
	}
	n := w.eng.Flush()
	if n > 0 {
		w.Stats.SubmitFlushes.Add(1)
	}
	if !start.IsZero() {
		w.tr.Record(trace.PhaseFlush, trace.OpNone, trace.TagCoalesce, int64(n), start, time.Since(start))
		if w.histFlush != nil && n > 0 {
			w.histFlush.Observe(float64(n))
		}
	}
}

// heuristicCheck implements the efficiency and timeliness constraints of
// the heuristic polling scheme (§3.3, §4.3). The decision itself is
// offload.PollPolicy.ShouldPoll; this wrapper supplies the live inputs.
func (w *Worker) heuristicCheck() {
	if w.eng == nil || w.poll.Scheme != PollHeuristic {
		return
	}
	if !w.poll.ShouldPoll(w.eng.InflightTotal(), w.eng.InflightAsym(), w.activeConns) {
		return
	}
	w.pollEngine(trace.TagHeuristic)
	w.lastPoll = time.Now()
	w.Stats.HeuristicPolls.Add(1)
}

// failoverCheck is the failover timer: if no heuristic poll happened
// during the last interval but requests are in flight, poll once (§4.3).
func (w *Worker) failoverCheck() {
	if w.eng == nil || w.poll.Scheme != PollHeuristic {
		return
	}
	if !w.poll.FailoverDue(w.eng.InflightTotal(), time.Since(w.lastPoll)) {
		return
	}
	w.pollEngine(trace.TagFailover)
	w.lastPoll = time.Now()
	w.Stats.FailoverPolls.Add(1)
}

// deadlineCheck resumes paused offload jobs whose op deadline has passed
// without a response — the graceful-degradation path for a sick device.
// The forced resume re-enters the engine, which abandons the offload and
// computes the result in software (see engine.Config.OpTimeout). If the
// engine's own deadline has not quite expired yet the job re-pauses and
// is re-resumed a millisecond later.
func (w *Worker) deadlineCheck() {
	if w.cfg.OpTimeout <= 0 || w.asyncWaiting == 0 {
		return
	}
	now := time.Now()
	var due []*conn
	for _, c := range w.conns {
		if c.asyncPending && !c.asyncDeadline.IsZero() && now.After(c.asyncDeadline) {
			due = append(due, c)
		}
	}
	for _, c := range due {
		c.asyncDeadline = now.Add(time.Millisecond)
		w.Stats.DeadlineWakeups.Add(1)
		w.resumeAsync(c)
	}
}
