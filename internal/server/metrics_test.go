//go:build linux

package server

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"qtls/internal/loadgen"
	"qtls/internal/minitls"
	"qtls/internal/qat"
	"qtls/internal/trace"
)

// startTracedServer is startServer plus an enabled span recorder.
func startTracedServer(t *testing.T, run RunConfig, workers int) (*Server, *trace.Recorder) {
	t.Helper()
	var dev *qat.Device
	if run.UseQAT {
		dev = qat.NewDevice(qat.DeviceSpec{Endpoints: 3, EnginesPerEndpoint: 4, RingCapacity: 128})
		t.Cleanup(dev.Close)
	}
	rec := trace.NewRecorder(1024)
	rec.SetEnabled(true)
	srv, err := New(Options{
		Addr:    "127.0.0.1:0",
		Workers: workers,
		Run:     run,
		TLS: &minitls.Config{
			Identity:     identity(t),
			CipherSuites: []uint16{minitls.TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA},
		},
		Device:  dev,
		Handler: SizedBodyHandler(4 << 20),
		Trace:   rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)
	return srv, rec
}

// fetchPath performs one TLS GET against the server and returns the
// response body (failing the test on any protocol error).
func fetchPath(t *testing.T, addr, path string) string {
	t.Helper()
	body, err := tryFetchPath(addr, path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return body
}

func tryFetchPath(addr, path string) (string, error) {
	raw, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return "", err
	}
	defer raw.Close()
	raw.SetDeadline(time.Now().Add(10 * time.Second))
	tc := minitls.ClientConn(raw, &minitls.Config{})
	if err := tc.Handshake(); err != nil {
		return "", err
	}
	req := "GET " + path + " HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
	if _, err := tc.Write([]byte(req)); err != nil {
		return "", err
	}
	br := bufio.NewReader(readerFor(tc))
	if _, err := br.ReadString('\n'); err != nil {
		return "", err
	}
	cl := -1
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return "", err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			break
		}
		if v, ok := strings.CutPrefix(strings.ToLower(line), "content-length:"); ok {
			cl = atoiOr(strings.TrimSpace(v), -1)
		}
	}
	if cl < 0 {
		return "", io.ErrUnexpectedEOF
	}
	body := make([]byte, cl)
	if _, err := io.ReadFull(br, body); err != nil {
		return "", err
	}
	return string(body), nil
}

// TestMetricsEndpoint drives real handshakes through the QTLS
// configuration and asserts the /metrics exposition carries non-zero
// histograms for all four offload phases (the paper's §3.2 breakdown)
// plus the event-loop gauges.
func TestMetricsEndpoint(t *testing.T) {
	srv, _ := startTracedServer(t, ConfigQTLS, 2)
	res := loadgen.STime(loadgen.STimeOptions{
		Addr:           srv.Addr(),
		Clients:        8,
		Duration:       400 * time.Millisecond,
		RequestPath:    "/2048",
		MaxConnections: 64,
	})
	if res.Connections == 0 {
		t.Fatalf("no load completed: %s", res)
	}
	page := fetchPath(t, srv.Addr(), "/metrics")
	for _, want := range []string{
		"# TYPE qtls_phase_ns summary",
		"# TYPE qtls_handshakes counter",
		"# TYPE qtls_inflight gauge",
		"# TYPE qat_sw_fallbacks counter",
		`qtls_asym_threshold `,
		`qtls_sym_threshold `,
		`qtls_jobs_started `,
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, page)
		}
	}
	for _, ph := range trace.OffloadPhases() {
		base := `qtls_phase_ns_count{phase="` + ph.String() + `"}`
		count := metricValue(t, page, base)
		if count <= 0 {
			t.Errorf("phase %s histogram empty:\n%s", ph, page)
		}
	}
	if hs := metricValue(t, page, "qtls_handshakes"); hs <= 0 {
		t.Errorf("qtls_handshakes = %v", hs)
	}
}

// metricValue extracts the numeric value of an exposition line whose
// series name (including labels) equals key.
func metricValue(t *testing.T, page, key string) float64 {
	t.Helper()
	for _, line := range strings.Split(page, "\n") {
		name, val, ok := strings.Cut(line, " ")
		if !ok || name != key {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			t.Fatalf("bad value for %s: %q", key, val)
		}
		return f
	}
	t.Fatalf("series %s not found:\n%s", key, page)
	return 0
}

// TestDebugTraceEndpoint asserts /debug/trace serves recent spans as
// JSON with all four offload phases present after live handshakes.
func TestDebugTraceEndpoint(t *testing.T) {
	srv, rec := startTracedServer(t, ConfigQTLS, 1)
	loadgen.STime(loadgen.STimeOptions{
		Addr:           srv.Addr(),
		Clients:        4,
		Duration:       300 * time.Millisecond,
		RequestPath:    "/1024",
		MaxConnections: 32,
	})
	if rec.Count() == 0 {
		t.Fatal("recorder captured no spans during live load")
	}
	page := fetchPath(t, srv.Addr(), "/debug/trace?n=2000")
	var spans []map[string]any
	if err := json.Unmarshal([]byte(page), &spans); err != nil {
		t.Fatalf("trace dump is not JSON: %v\n%s", err, page)
	}
	if len(spans) == 0 {
		t.Fatal("trace dump empty")
	}
	phases := map[string]bool{}
	for _, s := range spans {
		ph, _ := s["phase"].(string)
		phases[ph] = true
		if dur, ok := s["dur_ns"].(float64); !ok || dur < 0 {
			t.Fatalf("span without duration: %v", s)
		}
	}
	for _, ph := range trace.OffloadPhases() {
		if !phases[ph.String()] {
			t.Errorf("no %s span in dump (saw %v)", ph, phases)
		}
	}
}

// TestConcurrentMetricsAndStatusScrapes hammers /metrics and
// /stub_status from several goroutines while handshake load is in
// flight; run under -race this is the registry/scrape race test.
func TestConcurrentMetricsAndStatusScrapes(t *testing.T) {
	srv, _ := startTracedServer(t, ConfigQTLS, 2)
	stop := make(chan struct{})
	var loadWG sync.WaitGroup
	loadWG.Add(1)
	go func() {
		defer loadWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			loadgen.STime(loadgen.STimeOptions{
				Addr:           srv.Addr(),
				Clients:        4,
				Duration:       150 * time.Millisecond,
				RequestPath:    "/1024",
				MaxConnections: 32,
			})
		}
	}()
	var scrapeWG sync.WaitGroup
	for _, path := range []string{"/metrics", "/stub_status", "/metrics", "/debug/trace?n=64"} {
		path := path
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for i := 0; i < 5; i++ {
				if body, err := tryFetchPath(srv.Addr(), path); err == nil && body == "" {
					t.Errorf("%s returned empty body", path)
				}
			}
		}()
	}
	scrapeWG.Wait()
	close(stop)
	loadWG.Wait()
	page := fetchPath(t, srv.Addr(), "/metrics")
	if !strings.Contains(page, "qtls_phase_ns") {
		t.Fatalf("scrape after load missing phase series:\n%s", page)
	}
}
