//go:build linux

package server

import (
	"bufio"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"qtls/internal/fault"
	"qtls/internal/loadgen"
	"qtls/internal/metrics"
	"qtls/internal/minitls"
	"qtls/internal/qat"
)

// The ISSUE's acceptance scenario: every RSA offload stalls on a sick
// engine, yet full TLS handshakes through the server still complete —
// the worker's deadline scan wakes the paused connection, the engine
// abandons the offload and computes the signature in software.
func TestGracefulDegradationStalledEngine(t *testing.T) {
	dev := qat.NewDevice(qat.DeviceSpec{
		Endpoints:          1,
		EnginesPerEndpoint: 4,
		RingCapacity:       128,
		Injector: fault.NewInjector(1, fault.Rule{
			Kind:     fault.Stall,
			Endpoint: fault.AnyEndpoint,
			Op:       int(qat.OpRSA),
			P:        1,
		}),
	})
	t.Cleanup(dev.Close)
	run := ConfigQTLS
	run.OpTimeout = 10 * time.Millisecond
	reg := metrics.NewRegistry()
	srv, err := New(Options{
		Addr:    "127.0.0.1:0",
		Workers: 1,
		Run:     run,
		TLS: &minitls.Config{
			Identity:     identity(t),
			CipherSuites: []uint16{minitls.TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA},
		},
		Device:  dev,
		Handler: SizedBodyHandler(1 << 20),
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)
	res := loadgen.STime(loadgen.STimeOptions{
		Addr:           srv.Addr(),
		Clients:        4,
		Duration:       600 * time.Millisecond,
		RequestPath:    "/1024",
		MaxConnections: 32,
	})
	if res.Connections < 4 {
		t.Fatalf("too few connections with stalled RSA engine: %s", res)
	}
	if res.Errors > 0 {
		t.Fatalf("client errors despite software fallback: %s", res)
	}
	st := srv.Stats()
	if st.Handshakes == 0 || st.Errors > 0 {
		t.Fatalf("server stats: %+v", st)
	}
	if st.DeadlineWakeups == 0 {
		t.Fatalf("worker deadline scan never fired: %+v", st)
	}
	snap := reg.Snapshot()
	if snap["qat_faults_injected"] == 0 {
		t.Fatalf("injector fired no faults: %v", snap)
	}
	if snap["qat_op_timeouts"] == 0 {
		t.Fatalf("no op timeouts recorded: %v", snap)
	}
	if snap["qat_sw_fallbacks"] == 0 {
		t.Fatalf("no software fallbacks recorded: %v", snap)
	}
	// Non-RSA ops still reached the device: degradation, not abandonment.
	offloaded := uint64(0)
	for _, c := range dev.Counters() {
		offloaded += c.TotalResponses()
	}
	if offloaded == 0 {
		t.Fatal("no op completed on the device; expected only RSA to degrade")
	}
}

// Without an injector the whole degradation apparatus is inert: the
// counters exist (registered up front for stub_status) but stay zero.
func TestNilInjectorFaultCountersZero(t *testing.T) {
	run := ConfigQTLS
	run.OpTimeout = 250 * time.Millisecond // generous: must never fire
	run.MaxRetries = 2
	srv, _ := startServer(t, run, 1, nil)
	res := loadgen.STime(loadgen.STimeOptions{
		Addr:           srv.Addr(),
		Clients:        4,
		Duration:       300 * time.Millisecond,
		RequestPath:    "/512",
		MaxConnections: 24,
	})
	if res.Connections == 0 {
		t.Fatalf("no connections: %s", res)
	}
	snap := srv.Metrics().Snapshot()
	for _, name := range faultCounterNames {
		v, ok := snap[name]
		if !ok {
			t.Fatalf("counter %s not registered: %v", name, snap)
		}
		if v != 0 {
			t.Fatalf("counter %s = %d with nil injector: %v", name, v, snap)
		}
	}
}

// /stub_status reports worker activity, the fault counters and
// per-instance health over the TLS connection itself.
func TestStubStatusEndpoint(t *testing.T) {
	srv, _ := startServer(t, ConfigQTLS, 1, nil)
	raw, err := net.DialTimeout("tcp", srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.SetDeadline(time.Now().Add(10 * time.Second))
	tc := minitls.ClientConn(raw, &minitls.Config{})
	if err := tc.Handshake(); err != nil {
		t.Fatal(err)
	}
	req := "GET /stub_status HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
	if _, err := tc.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(readerFor(tc))
	status, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status, "200") {
		t.Fatalf("status = %q", status)
	}
	cl := -1
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			break
		}
		if v, ok := strings.CutPrefix(strings.ToLower(line), "content-length:"); ok {
			cl = atoiOr(strings.TrimSpace(v), -1)
		}
	}
	if cl <= 0 {
		t.Fatal("no content length in stub_status response")
	}
	body := make([]byte, cl)
	if _, err := io.ReadFull(br, body); err != nil {
		t.Fatal(err)
	}
	page := string(body)
	for _, want := range []string{
		"Active connections:",
		"handshakes ",
		"qat_faults_injected 0",
		"qat_op_timeouts 0",
		"qat_sw_fallbacks 0",
		"qat_instance_trips 0",
		"qat_retries 0",
		"instance 0 endpoint ",
		"breaker closed",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("stub_status missing %q:\n%s", want, page)
		}
	}
}
