//go:build linux

package server

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"qtls/internal/loadgen"
	"qtls/internal/qat"
)

// qtlsCoalesced is the QTLS configuration with submit batching on.
func qtlsCoalesced() RunConfig {
	run := ConfigQTLS
	run.Name = "QTLS+B"
	run.CoalesceSubmits = true
	return run
}

// sumInstanceStats folds the per-instance submit counters across every
// worker engine.
func sumInstanceStats(srv *Server) (st qat.InstanceStats) {
	for _, w := range srv.Workers() {
		if w.Engine() == nil {
			continue
		}
		for _, inst := range w.Engine().Instances() {
			is := inst.Stats()
			st.Submits += is.Submits
			st.Doorbells += is.Doorbells
			st.SubmitBatches += is.SubmitBatches
			st.BatchSubmitted += is.BatchSubmitted
			if is.MaxSubmitBatch > st.MaxSubmitBatch {
				st.MaxSubmitBatch = is.MaxSubmitBatch
			}
		}
	}
	return st
}

// TestCoalescedServerServesIdentically drives the same load through QTLS
// with and without submit batching: both must complete handshakes and
// requests cleanly, and the batched run must route every submission
// through SubmitBatch with worker-driven flushes.
func TestCoalescedServerServesIdentically(t *testing.T) {
	for _, tc := range []struct {
		name      string
		run       RunConfig
		coalesced bool
	}{
		{"unbatched", ConfigQTLS, false},
		{"batched", qtlsCoalesced(), true},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			srv, _ := startServer(t, tc.run, 2, nil)
			res := loadgen.STime(loadgen.STimeOptions{
				Addr:           srv.Addr(),
				Clients:        8,
				Duration:       400 * time.Millisecond,
				RequestPath:    "/2048",
				MaxConnections: 64,
			})
			if res.Connections == 0 {
				t.Fatalf("no connections completed: %s", res)
			}
			if res.Errors > res.Connections/4 {
				t.Fatalf("too many errors: %s", res)
			}
			st := srv.Stats()
			if st.Handshakes == 0 || st.Requests == 0 {
				t.Fatalf("server stats empty: %+v", st)
			}
			// Same protocol work regardless of batching: 7 async events
			// per full ECDHE-RSA handshake.
			if st.AsyncEvents < st.Handshakes*7 {
				t.Fatalf("async events %d < 7×handshakes %d", st.AsyncEvents, st.Handshakes)
			}
			ist := sumInstanceStats(srv)
			flushes := int64(0)
			for _, w := range srv.Workers() {
				flushes += w.Stats.SubmitFlushes.Load()
			}
			if tc.coalesced {
				if ist.SubmitBatches == 0 || ist.BatchSubmitted != ist.Submits {
					t.Fatalf("batched run did not route submissions through SubmitBatch: %+v", ist)
				}
				if flushes == 0 {
					t.Fatalf("no worker submit flushes recorded: %+v", ist)
				}
				if ist.Doorbells > ist.Submits {
					t.Fatalf("doorbells %d exceed submits %d", ist.Doorbells, ist.Submits)
				}
			} else {
				if ist.SubmitBatches != 0 || flushes != 0 {
					t.Fatalf("unbatched run used the batch path: batches=%d flushes=%d", ist.SubmitBatches, flushes)
				}
			}
		})
	}
}

// TestCoalescedFlushSpansAndMetrics asserts the batched path shows up on
// the observability surface: PhaseFlush spans on /debug/trace and the
// submit-batch series on /metrics.
func TestCoalescedFlushSpansAndMetrics(t *testing.T) {
	srv, rec := startTracedServer(t, qtlsCoalesced(), 1)
	loadgen.STime(loadgen.STimeOptions{
		Addr:           srv.Addr(),
		Clients:        4,
		Duration:       300 * time.Millisecond,
		RequestPath:    "/1024",
		MaxConnections: 32,
	})
	if rec.Count() == 0 {
		t.Fatal("recorder captured no spans during live load")
	}
	page := fetchPath(t, srv.Addr(), "/debug/trace?n=2000")
	var spans []map[string]any
	if err := json.Unmarshal([]byte(page), &spans); err != nil {
		t.Fatalf("trace dump is not JSON: %v\n%s", err, page)
	}
	flushSpans, coalesceTagged := 0, 0
	for _, s := range spans {
		if ph, _ := s["phase"].(string); ph == "flush" {
			flushSpans++
		}
		if tag, _ := s["tag"].(string); tag == "coalesce" {
			coalesceTagged++
		}
	}
	if flushSpans == 0 {
		t.Error("no flush spans in trace dump")
	}
	if coalesceTagged == 0 {
		t.Error("no coalesce-tagged spans in trace dump")
	}
	mpage := fetchPath(t, srv.Addr(), "/metrics")
	for _, key := range []string{
		"qat_submit_flushes",
		"qat_batched_ops",
		"qtls_submit_flush_events",
		`qtls_submit_batch_count`,
		`qtls_submit_amortized_ns_count`,
		`qtls_submit_flush_batch_count`,
	} {
		if v := metricValue(t, mpage, key); v <= 0 {
			t.Errorf("series %s = %v, want > 0", key, v)
		}
	}
}

// TestConcurrentScrapesCoalesced is the registry/scrape race test for the
// batched submit path: /metrics, /stub_status and /debug/trace hammered
// while coalesced handshake load is in flight (meaningful under -race).
func TestConcurrentScrapesCoalesced(t *testing.T) {
	srv, _ := startTracedServer(t, qtlsCoalesced(), 2)
	stop := make(chan struct{})
	var loadWG sync.WaitGroup
	loadWG.Add(1)
	go func() {
		defer loadWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			loadgen.STime(loadgen.STimeOptions{
				Addr:           srv.Addr(),
				Clients:        4,
				Duration:       150 * time.Millisecond,
				RequestPath:    "/1024",
				MaxConnections: 32,
			})
		}
	}()
	var scrapeWG sync.WaitGroup
	for _, path := range []string{"/metrics", "/stub_status", "/metrics", "/debug/trace?n=64"} {
		path := path
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for i := 0; i < 5; i++ {
				if body, err := tryFetchPath(srv.Addr(), path); err == nil && body == "" {
					t.Errorf("%s returned empty body", path)
				}
			}
		}()
	}
	scrapeWG.Wait()
	close(stop)
	loadWG.Wait()
	page := fetchPath(t, srv.Addr(), "/metrics")
	if !strings.Contains(page, "qat_submit_flushes") {
		t.Fatalf("scrape after coalesced load missing submit-flush series:\n%s", page)
	}
}
