//go:build linux

package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"qtls/internal/fault"
	"qtls/internal/flight"
	"qtls/internal/metrics"
	"qtls/internal/minitls"
	"qtls/internal/offload"
	"qtls/internal/qat"
	"qtls/internal/trace"
)

// Names of the fault/degradation counters exported via stub_status.
var faultCounterNames = []string{
	"qat_faults_injected",
	"qat_op_timeouts",
	"qat_op_cancels",
	"qat_sw_fallbacks",
	"qat_instance_trips",
	"qat_retries",
}

// Options configures a multi-worker server.
type Options struct {
	// Addr is the listen address ("127.0.0.1:0" picks a free port). All
	// workers share the port via SO_REUSEPORT, like Nginx worker
	// processes.
	Addr string
	// Workers is the number of event-loop workers (default 1). The paper
	// varies this from 2 to 32 (Fig. 7).
	Workers int
	// Run selects the offload configuration (SW / QAT+S / ... / QTLS).
	Run RunConfig
	// TLS is the TLS template: identity, suites, session cache, tickets.
	// Provider and AsyncMode are overridden per the Run configuration.
	TLS *minitls.Config
	// Device is the QAT device shared by all workers (required for QAT
	// configurations). Workers allocate one crypto instance each,
	// distributed across the device's endpoints.
	Device *qat.Device
	// Pool, when set, supplies multiple QAT devices and takes precedence
	// over Device. How workers spread instances and op classes across the
	// pool is selected by Run.Placement; with PlacementSingle the pool
	// behaves exactly like Device = Pool.Device(0). A single Device is
	// wrapped into a one-device pool internally, so the two fields are
	// interchangeable for single-device setups.
	Pool *qat.Pool
	// Handler serves request paths.
	Handler Handler
	// Metrics is the registry behind the /stub_status endpoint and the
	// engines' degradation counters. nil creates a private registry, so
	// stub_status always works.
	Metrics *metrics.Registry
	// Trace, when set, enables the four-phase span recorder behind the
	// /debug/trace endpoint; each worker gets a private ring buffer from
	// it. nil disables span recording (and /debug/trace 404s).
	Trace *trace.Recorder
	// Flight, when set, wires the black-box flight recorder: each worker
	// gets a private event journal, breaker transitions and fault
	// injections are journaled, span windows feed the `_w60s` metric
	// series, and the /debug/flight endpoint serves anomaly dumps. nil
	// disables the flight surface (and /debug/flight 404s). Windowed
	// span-fed series additionally require Trace to be set and enabled —
	// the flight recorder consumes spans through trace.Subscribe.
	Flight *flight.Recorder
}

// Server is a set of event-driven workers sharing one listening port.
type Server struct {
	workers   []*Worker
	reg       *metrics.Registry
	pool      *qat.Pool
	lifecycle *qat.Lifecycle // device lifecycle manager (nil when off)
	tickets   *minitls.TicketKeyRing
	wg        sync.WaitGroup
	started   atomic.Bool
}

// New builds the workers (not yet running).
func New(opts Options) (*Server, error) {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.TLS == nil {
		return nil, fmt.Errorf("server: TLS config required")
	}
	if opts.Handler == nil {
		return nil, fmt.Errorf("server: Handler required")
	}
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	// Register the degradation counters up front so stub_status lists
	// them at zero even before any fault fires.
	for _, name := range faultCounterNames {
		reg.Counter(name)
	}
	// Normalize the device surface to a pool: a bare Device becomes a
	// one-device pool, so the worker allocation path is uniform.
	pool := opts.Pool
	if pool == nil && opts.Device != nil {
		pool = qat.PoolOf(opts.Device)
	}
	if pool != nil {
		// Mirror every injected fault into the registry (nil-injector
		// safe: SetSink on a nil *fault.Injector is a no-op). Pool
		// devices may share one spec — and therefore one injector — so
		// wire each distinct injector once.
		seen := make(map[*fault.Injector]bool)
		for _, d := range pool.Devices() {
			inj := d.Spec().Injector
			if seen[inj] {
				continue
			}
			seen[inj] = true
			inj.SetSink(reg.Counter("qat_faults_injected"))
		}
	}
	if opts.Flight != nil {
		// Span windows feed off the trace recorder; windowed series join
		// the /metrics exposition; every injected fault lands in the
		// black-box journal with its kind and endpoint/op.
		opts.Flight.AttachTrace(opts.Trace)
		opts.Flight.Register(reg)
		if pool != nil {
			fl := opts.Flight.Journal(flight.SystemWorker)
			seen := make(map[*fault.Injector]bool)
			for _, d := range pool.Devices() {
				inj := d.Spec().Injector
				if seen[inj] {
					continue
				}
				seen[inj] = true
				inj.SetEventSink(func(k fault.Kind, endpoint, op int) {
					fl.Note(flight.KindFault, uint8(k), trace.Op(op), int64(endpoint), 0)
				})
			}
		}
	}
	s := &Server{reg: reg, pool: pool}
	if pool != nil && opts.Run.Lifecycle != nil {
		// Device lifecycle manager: quarantine sick devices, probe them
		// back. Transitions are journaled as flight lifecycle events and
		// exported as the qtls_device_state{dev} gauges; workers notice
		// via the lifecycle epoch and re-home their conn-hash engines.
		lc := qat.NewLifecycle(pool, *opts.Run.Lifecycle)
		var fl *flight.Journal
		if opts.Flight != nil {
			fl = opts.Flight.Journal(flight.SystemWorker)
		}
		gauges := make([]*metrics.Gauge, pool.Size())
		for d := range gauges {
			gauges[d] = reg.Gauge(fmt.Sprintf(`qtls_device_state{dev="%d"}`, d))
		}
		lc.SetOnTransition(func(tr qat.Transition) {
			fl.Note(flight.KindLifecycle, uint8(tr.Reason), trace.OpNone,
				flight.PackLifecycleStates(int64(tr.From), int64(tr.To)), int64(tr.Dev))
			if tr.Dev >= 0 && tr.Dev < len(gauges) {
				gauges[tr.Dev].Set(int64(tr.To))
			}
		})
		s.lifecycle = lc
	}
	// Sharded placements spread connections across workers and devices;
	// resumption must survive whichever worker a reconnect hashes to, so
	// provision a shared rotating ticket-key ring when the caller has not
	// configured any session-ticket key of their own.
	tlsCfg := opts.TLS
	if opts.Run.Placement != offload.PlacementSingle &&
		tlsCfg.TicketKeys == nil && tlsCfg.TicketKey == nil {
		ring, err := minitls.GenerateTicketKeyRing(0)
		if err != nil {
			return nil, err
		}
		c := *tlsCfg
		c.TicketKeys = ring
		tlsCfg = &c
	}
	s.tickets = tlsCfg.TicketKeys
	addr := opts.Addr
	for i := 0; i < opts.Workers; i++ {
		w, err := NewWorker(i, opts.Run, addr, tlsCfg, pool, opts.Handler, reg, opts.Trace, opts.Flight)
		if err != nil {
			s.Stop()
			return nil, err
		}
		s.workers = append(s.workers, w)
		// Subsequent workers bind the same concrete port.
		addr = w.Addr()
	}
	return s, nil
}

// Pool returns the device pool the workers allocate from: the Options
// pool, or the wrapper around a bare Options.Device. Nil for SW servers
// built without a device.
func (s *Server) Pool() *qat.Pool { return s.pool }

// TicketKeys returns the shared session-ticket key ring — the one the
// caller configured, or the ring New provisioned for a sharded
// placement. Rotating it affects every worker at once. Nil when the
// server resumes through a static TicketKey or not at all.
func (s *Server) TicketKeys() *minitls.TicketKeyRing { return s.tickets }

// Lifecycle returns the device lifecycle manager (nil when Run.Lifecycle
// was not configured or the server has no pool).
func (s *Server) Lifecycle() *qat.Lifecycle { return s.lifecycle }

// Start launches every worker loop on its own goroutine.
func (s *Server) Start() {
	s.started.Store(true)
	if s.lifecycle != nil {
		s.lifecycle.Start()
	}
	for _, w := range s.workers {
		w := w
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			w.Run()
		}()
	}
}

// Addr returns the shared listening address.
func (s *Server) Addr() string { return s.workers[0].Addr() }

// Workers returns the workers (for stats inspection).
func (s *Server) Workers() []*Worker { return s.workers }

// Metrics returns the registry backing /stub_status.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Stats aggregates worker counters.
type Stats struct {
	Accepted, Handshakes, Resumed, Requests, BytesOut int64
	AsyncEvents, RetryEvents, SubmitFlushes           int64
	HeuristicPolls, TimerPolls, FailoverPolls         int64
	DeadlineWakeups                                   int64
	ShedAccepts, ShedKeepalive                        int64
	DeadlineExpired                                   [offload.NumDeadlineClasses]int64
	Errors                                            int64
}

// Stats sums all worker counters.
func (s *Server) Stats() Stats {
	var t Stats
	for _, w := range s.workers {
		t.Accepted += w.Stats.Accepted.Load()
		t.Handshakes += w.Stats.Handshakes.Load()
		t.Resumed += w.Stats.Resumed.Load()
		t.Requests += w.Stats.Requests.Load()
		t.BytesOut += w.Stats.BytesOut.Load()
		t.AsyncEvents += w.Stats.AsyncEvents.Load()
		t.RetryEvents += w.Stats.RetryEvents.Load()
		t.SubmitFlushes += w.Stats.SubmitFlushes.Load()
		t.HeuristicPolls += w.Stats.HeuristicPolls.Load()
		t.TimerPolls += w.Stats.TimerPolls.Load()
		t.FailoverPolls += w.Stats.FailoverPolls.Load()
		t.DeadlineWakeups += w.Stats.DeadlineWakeups.Load()
		t.ShedAccepts += w.Stats.ShedAccepts.Load()
		t.ShedKeepalive += w.Stats.ShedKeepalive.Load()
		for i := range w.Stats.DeadlineExpired {
			t.DeadlineExpired[i] += w.Stats.DeadlineExpired[i].Load()
		}
		t.Errors += w.Stats.Errors.Load()
	}
	return t
}

// Stop terminates all workers and waits for their loops to exit. It is
// the hard cutoff: in-flight requests are cancelled, not completed.
func (s *Server) Stop() {
	if s.lifecycle != nil {
		s.lifecycle.Stop()
	}
	for _, w := range s.workers {
		if w != nil {
			w.Stop()
		}
	}
	if !s.started.Load() {
		// Built but never run (the New error path, or a caller that
		// changed its mind): no loop will ever execute the deferred
		// shutdown, so release the descriptors here.
		for _, w := range s.workers {
			if w != nil {
				w.Close()
			}
		}
		return
	}
	s.wg.Wait()
}

// Shutdown drains the server gracefully: every worker stops accepting,
// lets admitted requests and in-flight QAT responses complete, sends TLS
// close-notify on idle keepalive connections, flushes coalesced
// submissions, and only then tears down its poller and pipes. When ctx
// expires first, Shutdown falls back to the hard Stop cutoff and returns
// the context's error.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.lifecycle != nil {
		s.lifecycle.Stop()
	}
	for _, w := range s.workers {
		if w != nil {
			w.Drain()
		}
	}
	if !s.started.Load() {
		for _, w := range s.workers {
			if w != nil {
				w.Close()
			}
		}
		return nil
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.Stop()
		return ctx.Err()
	}
}

// SizedBodyHandler serves "/<n>" paths with n bytes of deterministic
// content — the fixed-size file workload of Fig. 10 (ab requesting a
// fixed file). Unknown paths 404.
func SizedBodyHandler(maxSize int) Handler {
	cache := map[int][]byte{}
	var mu sync.Mutex
	return func(path string) ([]byte, bool) {
		var n int
		if _, err := fmt.Sscanf(path, "/%d", &n); err != nil || n < 0 || n > maxSize {
			return nil, false
		}
		mu.Lock()
		defer mu.Unlock()
		body, ok := cache[n]
		if !ok {
			body = make([]byte, n)
			for i := range body {
				body[i] = byte('a' + i%26)
			}
			cache[n] = body
		}
		return body, true
	}
}
