//go:build linux

package server

import (
	"time"

	"qtls/internal/trace"
)

// Async event notification (§3.4) and the queues it feeds: the
// kernel-bypass async queue, the FD-notification queue, and the
// submission-retry queue. Everything here runs on the worker goroutine —
// the engine's response callbacks fire inside engine.Poll, which the
// worker drives.

// asyncEventCallback is the engine's response-callback notification hook.
// It runs on the worker goroutine (inside an engine.Poll call).
func (w *Worker) asyncEventCallback(arg any) {
	c := arg.(*conn)
	if w.tr.Active() {
		c.notifyAt = time.Now().UnixNano()
	}
	if w.cfg.Notify == NotifyKernelBypass {
		// Insert the async handler at the tail of the async queue — no
		// kernel involvement (§3.4).
		w.asyncQueue = append(w.asyncQueue, c)
		return
	}
	// FD-based: a real write syscall on the notification pipe; epoll
	// reports it on a later iteration, costing user/kernel switches.
	w.fdQueue = append(w.fdQueue, c)
	w.notifyPipe.Notify()
}

// suspendForAsync parks the connection while an offload job is paused.
func (w *Worker) suspendForAsync(c *conn) {
	w.setAsyncPending(c, true)
	if w.cfg.OpTimeout > 0 {
		c.asyncDeadline = time.Now().Add(w.cfg.OpTimeout)
	}
}

// resumeAsync restores the saved handler and re-enters it (§3.2
// post-processing). With tracing on it attributes the two application
// phases: notification (event queued → handler picked up) and
// post-processing (handler re-entry → yield back to the loop).
func (w *Worker) resumeAsync(c *conn) {
	if c.closed {
		return
	}
	w.setAsyncPending(c, false)
	w.Stats.AsyncEvents.Add(1)
	notifyAt := c.notifyAt
	c.notifyAt = 0
	if notifyAt != 0 && w.tr.Active() {
		now := time.Now()
		nd := time.Duration(now.UnixNano() - notifyAt)
		w.tr.Record(trace.PhaseNotify, trace.OpNone, w.notifyTag(), int64(c.fd), time.Unix(0, notifyAt), nd)
		if w.histNotify != nil {
			w.histNotify.ObserveDuration(nd)
		}
		w.invoke(c)
		pd := time.Since(now)
		w.tr.Record(trace.PhasePost, trace.OpNone, trace.TagNone, int64(c.fd), now, pd)
		if w.histPost != nil {
			w.histPost.ObserveDuration(pd)
		}
	} else {
		w.invoke(c)
	}
	if !c.closed && c.pendingRead && !c.asyncPending {
		c.pendingRead = false
		w.onReadable(c)
	}
}

// notifyTag says which notification scheme delivered the async event.
func (w *Worker) notifyTag() trace.Tag {
	if w.cfg.Notify == NotifyKernelBypass {
		return trace.TagKernelBypass
	}
	return trace.TagFD
}

func (w *Worker) processAsyncQueue() {
	// Drain the application-defined async queue at the end of the main
	// event loop (§3.4). Handlers may enqueue more events (next offload
	// op of the same connection completes during a heuristic poll), so
	// iterate until empty.
	for len(w.asyncQueue) > 0 {
		q := w.asyncQueue
		w.asyncQueue = nil
		for _, c := range q {
			w.resumeAsync(c)
		}
		// Resumed handlers typically pause on their next offload op; flush
		// the batch they formed before the next drain round so its
		// responses can feed that round.
		w.flushSubmits()
	}
}

func (w *Worker) processFDQueue() {
	q := w.fdQueue
	w.fdQueue = nil
	for _, c := range q {
		w.resumeAsync(c)
	}
}

func (w *Worker) processRetryQueue() {
	if len(w.retryQueue) == 0 {
		return
	}
	// A failed submission means the request ring was full; retrieving
	// responses frees slots before the retry.
	if w.eng != nil && w.pollEngine(trace.TagRetry) > 0 {
		w.lastPoll = time.Now()
	}
	q := w.retryQueue
	w.retryQueue = nil
	for _, c := range q {
		w.Stats.RetryEvents.Add(1)
		w.setAsyncPending(c, false)
		w.invoke(c)
	}
}
