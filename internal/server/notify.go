//go:build linux

package server

import (
	"time"

	"qtls/internal/offload"
	"qtls/internal/trace"
)

// Async event notification (§3.4) behind the offload.Notifier seam: the
// notifier owns the queue of completed-but-undelivered events and the
// per-scheme delivery rules (kernel wakeup or not, hand-back on the
// epoll wakeup or at the end-of-loop drain). Everything here runs on
// the worker goroutine — the engine's response callbacks fire inside
// engine.Poll, which the worker drives.

// asyncEventCallback is the engine's response-callback notification hook.
// It runs on the worker goroutine (inside an engine.Poll call).
func (w *Worker) asyncEventCallback(arg any) {
	c := arg.(*conn)
	if w.tr.Active() {
		c.notifyAt = time.Now().UnixNano()
	}
	if w.notif.Wake(c) {
		// The scheme demands a kernel wakeup for this event: a real write
		// syscall on the notification pipe; epoll reports it on a later
		// iteration, costing user/kernel switches. Kernel bypass never
		// lands here; coalesced lands here once per completion batch.
		w.notifyPipe.Notify()
	}
}

// suspendForAsync parks the connection while an offload job is paused.
func (w *Worker) suspendForAsync(c *conn) {
	w.setAsyncPending(c, true)
	if w.cfg.OpTimeout > 0 {
		c.asyncDeadline = time.Now().Add(w.cfg.OpTimeout)
	}
}

// resumeAsync restores the saved handler and re-enters it (§3.2
// post-processing). With tracing on it attributes the two application
// phases: notification (event queued → handler picked up) and
// post-processing (handler re-entry → yield back to the loop).
func (w *Worker) resumeAsync(c *conn) {
	if c.closed {
		return
	}
	w.setAsyncPending(c, false)
	w.Stats.AsyncEvents.Add(1)
	notifyAt := c.notifyAt
	c.notifyAt = 0
	if notifyAt != 0 && w.tr.Active() {
		now := time.Now()
		nd := time.Duration(now.UnixNano() - notifyAt)
		w.tr.Record(trace.PhaseNotify, trace.OpNone, w.notifyTag(), int64(c.fd), time.Unix(0, notifyAt), nd)
		if w.histNotify != nil {
			w.histNotify.ObserveDuration(nd)
		}
		w.invoke(c)
		pd := time.Since(now)
		w.tr.Record(trace.PhasePost, trace.OpNone, trace.TagNone, int64(c.fd), now, pd)
		if w.histPost != nil {
			w.histPost.ObserveDuration(pd)
		}
	} else {
		w.invoke(c)
	}
	if !c.closed && c.pendingRead && !c.asyncPending {
		c.pendingRead = false
		w.onReadable(c)
	}
}

// notifyTag says which notification scheme delivered the async event.
func (w *Worker) notifyTag() trace.Tag {
	switch w.cfg.Notify {
	case NotifyKernelBypass:
		return trace.TagKernelBypass
	case NotifyCoalesced:
		return trace.TagCoalesce
	default:
		return trace.TagFD
	}
}

// pendingNotifications counts queued async events across both delivery
// points — the epoll-timeout input.
func (w *Worker) pendingNotifications() int {
	return w.notif.Pending(offload.DeliverWakeup) + w.notif.Pending(offload.DeliverLoopEnd)
}

func (w *Worker) processAsyncQueue() {
	// Drain the end-of-loop delivery point (§3.4's application-defined
	// async queue). Handlers may enqueue more events (next offload op of
	// the same connection completes during a heuristic poll), so iterate
	// until empty.
	for {
		q := w.notif.Deliver(offload.DeliverLoopEnd)
		if len(q) == 0 {
			return
		}
		for _, h := range q {
			w.resumeAsync(h.(*conn))
		}
		// Resumed handlers typically pause on their next offload op; flush
		// the batch they formed before the next drain round so its
		// responses can feed that round.
		w.flushSubmits()
	}
}

func (w *Worker) processFDQueue() {
	// The wakeup delivery point: events whose completion wrote the
	// notification pipe (every event under fd, one per batch under
	// coalesced).
	for _, h := range w.notif.Deliver(offload.DeliverWakeup) {
		w.resumeAsync(h.(*conn))
	}
}

func (w *Worker) processRetryQueue() {
	if len(w.retryQueue) == 0 {
		return
	}
	// A failed submission means the request ring was full; retrieving
	// responses frees slots before the retry.
	if w.eng != nil && w.pollEngine(trace.TagRetry) > 0 {
		w.lastPoll = time.Now()
	}
	q := w.retryQueue
	w.retryQueue = nil
	for _, c := range q {
		w.Stats.RetryEvents.Add(1)
		w.setAsyncPending(c, false)
		w.invoke(c)
	}
}
