//go:build linux

package server

import (
	"testing"
	"time"
)

// wheelHarness arms synthetic connections on a bare wheel and records
// expiries, without any worker machinery.
type wheelHarness struct {
	dw    *deadlineWheel
	fired []*conn
}

func newWheelHarness(tick time.Duration, now time.Time) *wheelHarness {
	return &wheelHarness{dw: newDeadlineWheel(tick, now)}
}

func (h *wheelHarness) arm(at time.Time) *conn {
	c := &conn{}
	c.dlArmed = true
	c.dlAt = at
	h.dw.add(c)
	return c
}

func (h *wheelHarness) expire(c *conn) { h.fired = append(h.fired, c) }

func (h *wheelHarness) advance(now time.Time) { h.dw.advance(now, h.expire) }

// A deadline rounds up to the next tick: it may fire late, never early.
func TestWheelNeverFiresEarly(t *testing.T) {
	t0 := time.Unix(1000, 0)
	h := newWheelHarness(10*time.Millisecond, t0)
	h.arm(t0.Add(35 * time.Millisecond)) // rounds up to tick 4 (t0+40ms)

	h.advance(t0.Add(30 * time.Millisecond))
	if len(h.fired) != 0 {
		t.Fatalf("fired %d entries 5ms before the deadline", len(h.fired))
	}
	h.advance(t0.Add(39 * time.Millisecond)) // still inside tick 3
	if len(h.fired) != 0 {
		t.Fatal("fired before the rounded-up tick boundary")
	}
	h.advance(t0.Add(40 * time.Millisecond))
	if len(h.fired) != 1 {
		t.Fatalf("fired %d entries at the deadline tick, want 1", len(h.fired))
	}
	if h.dw.live != 0 {
		t.Fatalf("live = %d after expiry, want 0", h.dw.live)
	}
}

// A deadline landing exactly on a tick boundary fires on that tick.
func TestWheelExactBoundary(t *testing.T) {
	t0 := time.Unix(1000, 0)
	h := newWheelHarness(10*time.Millisecond, t0)
	h.arm(t0.Add(20 * time.Millisecond))
	h.advance(t0.Add(19 * time.Millisecond))
	if len(h.fired) != 0 {
		t.Fatal("fired before boundary")
	}
	h.advance(t0.Add(20 * time.Millisecond))
	if len(h.fired) != 1 {
		t.Fatalf("fired %d at boundary, want 1", len(h.fired))
	}
}

// Lazy cancellation: bumping the generation (disarm/re-arm) or closing
// the connection strands the old entry, which is skipped when its slot
// comes around.
func TestWheelLazyCancel(t *testing.T) {
	t0 := time.Unix(1000, 0)
	h := newWheelHarness(10*time.Millisecond, t0)

	rearmed := h.arm(t0.Add(30 * time.Millisecond))
	rearmed.dlGen++ // disarm-style cancellation of the wheel entry
	rearmed.dlAt = t0.Add(70 * time.Millisecond)
	h.dw.add(rearmed) // re-armed later under the new generation

	disarmed := h.arm(t0.Add(30 * time.Millisecond))
	disarmed.dlArmed = false
	disarmed.dlGen++

	closed := h.arm(t0.Add(30 * time.Millisecond))
	closed.closed = true

	h.advance(t0.Add(50 * time.Millisecond))
	if len(h.fired) != 0 {
		t.Fatalf("stale entries fired: %d", len(h.fired))
	}
	h.advance(t0.Add(100 * time.Millisecond))
	if len(h.fired) != 1 || h.fired[0] != rearmed {
		t.Fatalf("want exactly the re-armed conn to fire, got %d", len(h.fired))
	}
	if h.dw.live != 0 {
		t.Fatalf("live = %d, want 0", h.dw.live)
	}
}

// A deadline beyond the wheel horizon parks in the rim slot and
// re-inserts until its real time is due — it fires exactly once, and not
// at the horizon.
func TestWheelHorizonReinsert(t *testing.T) {
	t0 := time.Unix(1000, 0)
	tick := 10 * time.Millisecond
	h := newWheelHarness(tick, t0)
	deadline := t0.Add(time.Duration(wheelSlots+50) * tick)
	h.arm(deadline)

	// One full rotation: the rim entry is reached but not yet due.
	h.advance(t0.Add(time.Duration(wheelSlots-1) * tick))
	if len(h.fired) != 0 {
		t.Fatal("horizon-clamped entry fired a rotation early")
	}
	if h.dw.live != 1 {
		t.Fatalf("live = %d after re-insert, want 1", h.dw.live)
	}
	h.advance(deadline.Add(-tick))
	if len(h.fired) != 0 {
		t.Fatal("fired before the true deadline")
	}
	h.advance(deadline)
	if len(h.fired) != 1 {
		t.Fatalf("fired %d, want exactly 1", len(h.fired))
	}
}

// A loop stalled for more than a full rotation fast-forwards: every due
// entry fires once, and the wheel stays usable afterwards.
func TestWheelFastForwardAfterStall(t *testing.T) {
	t0 := time.Unix(1000, 0)
	tick := 10 * time.Millisecond
	h := newWheelHarness(tick, t0)
	h.arm(t0.Add(30 * time.Millisecond))

	// Stall for two rotations.
	now := t0.Add(time.Duration(2*wheelSlots) * tick)
	h.advance(now)
	if len(h.fired) != 1 {
		t.Fatalf("fired %d after stall, want 1", len(h.fired))
	}

	// The wheel still places and fires fresh deadlines correctly.
	h.fired = nil
	h.arm(now.Add(20 * time.Millisecond))
	h.advance(now.Add(10 * time.Millisecond))
	if len(h.fired) != 0 {
		t.Fatal("post-stall entry fired early")
	}
	h.advance(now.Add(20 * time.Millisecond))
	if len(h.fired) != 1 {
		t.Fatalf("post-stall entry fired %d, want 1", len(h.fired))
	}
}

// Many deadlines across slots all fire, in no worse than tick order.
func TestWheelBulkExpiry(t *testing.T) {
	t0 := time.Unix(1000, 0)
	h := newWheelHarness(10*time.Millisecond, t0)
	const n = 100
	for i := 0; i < n; i++ {
		h.arm(t0.Add(time.Duration(10+i*7) * time.Millisecond))
	}
	h.advance(t0.Add(800 * time.Millisecond))
	if len(h.fired) != n {
		t.Fatalf("fired %d of %d", len(h.fired), n)
	}
	if h.dw.live != 0 {
		t.Fatalf("live = %d, want 0", h.dw.live)
	}
}
