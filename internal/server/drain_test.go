//go:build linux

package server

import (
	"bufio"
	"context"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"qtls/internal/loadgen"
	"qtls/internal/minitls"
	"qtls/internal/qat"
)

// drainClient is one established keepalive connection used to observe the
// server's drain behaviour from the outside.
type drainClient struct {
	raw net.Conn
	tc  *minitls.Conn
	br  *bufio.Reader
}

func dialDrainClient(t *testing.T, addr string) *drainClient {
	t.Helper()
	raw, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { raw.Close() })
	raw.SetDeadline(time.Now().Add(15 * time.Second))
	tc := minitls.ClientConn(raw, &minitls.Config{})
	if err := tc.Handshake(); err != nil {
		t.Fatal(err)
	}
	c := &drainClient{raw: raw, tc: tc, br: bufio.NewReader(readerFor(tc))}
	if _, err := tc.Write([]byte("GET /128 HTTP/1.1\r\nHost: x\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	lcReadResponse(t, c.br)
	return c
}

// Shutdown with idle keepalive clients: each gets a close-notify, the
// workers end with zero connections and zero in-flight offloads, and no
// worker goroutines leak.
func TestShutdownDrainsIdleKeepalives(t *testing.T) {
	dev := qat.NewDevice(qat.DeviceSpec{Endpoints: 3, EnginesPerEndpoint: 4, RingCapacity: 128})
	t.Cleanup(dev.Close)
	time.Sleep(20 * time.Millisecond) // device goroutines settle
	base := runtime.NumGoroutine()

	srv, err := New(Options{
		Addr:    "127.0.0.1:0",
		Workers: 2,
		Run:     ConfigQTLS,
		TLS: &minitls.Config{
			Identity:     identity(t),
			CipherSuites: []uint16{minitls.TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA},
		},
		Device:  dev,
		Handler: SizedBodyHandler(1 << 20),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)

	// Three idle keepalive clients plus one silent mid-handshake socket.
	clients := []*drainClient{
		dialDrainClient(t, srv.Addr()),
		dialDrainClient(t, srv.Addr()),
		dialDrainClient(t, srv.Addr()),
	}
	silent, err := net.DialTimeout("tcp", srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Idle keepalive clients got an orderly close-notify...
	for i, c := range clients {
		if _, err := c.br.ReadByte(); err != io.EOF {
			t.Fatalf("client %d: read = %v, want io.EOF", i, err)
		}
		if !c.tc.CloseNotifyReceived() {
			t.Fatalf("client %d: drained without close-notify", i)
		}
	}
	// ...while the never-handshaked socket was simply cut.
	silent.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := silent.Read(make([]byte, 1)); err == nil {
		t.Fatal("mid-handshake socket survived the drain")
	}

	for _, w := range srv.Workers() {
		if !w.Draining() {
			t.Fatalf("%s not marked draining", w)
		}
		if n := w.ConnCount(); n != 0 {
			t.Fatalf("%s still holds %d connections", w, n)
		}
		if e := w.Engine(); e != nil && e.InflightTotal() != 0 {
			t.Fatalf("%s: %d offloads still in flight", w, e.InflightTotal())
		}
	}
	// And a new connection is refused: the listeners are gone.
	if c, err := net.DialTimeout("tcp", srv.Addr(), 250*time.Millisecond); err == nil {
		c.Close()
		t.Fatal("dial succeeded after Shutdown")
	}

	// No leaked worker or fiber goroutines.
	ok := false
	for i := 0; i < 100 && !ok; i++ {
		ok = runtime.NumGoroutine() <= base+2
		if !ok {
			time.Sleep(20 * time.Millisecond)
		}
	}
	if !ok {
		t.Fatalf("goroutines leaked: %d now vs %d baseline", runtime.NumGoroutine(), base)
	}
}

// Shutdown fired in the middle of a live handshake/request load still
// converges: in-flight work completes or cancels, nothing is left on the
// rings, and the call returns before its context expires.
func TestShutdownUnderLoad(t *testing.T) {
	srv, _ := startServer(t, ConfigQTLS, 2, nil)

	var res loadgen.Result
	done := make(chan struct{})
	go func() {
		defer close(done)
		res = loadgen.STime(loadgen.STimeOptions{
			Addr:        srv.Addr(),
			Clients:     8,
			Duration:    600 * time.Millisecond,
			RequestPath: "/2048",
		})
	}()
	time.Sleep(120 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown under load: %v", err)
	}
	<-done

	if res.Connections == 0 {
		t.Fatalf("no connections completed before the drain: %s", res)
	}
	for _, w := range srv.Workers() {
		if n := w.ConnCount(); n != 0 {
			t.Fatalf("%s still holds %d connections", w, n)
		}
		if e := w.Engine(); e != nil && e.InflightTotal() != 0 {
			t.Fatalf("%s: %d offloads still in flight", w, e.InflightTotal())
		}
	}
}

// A context that expires mid-drain falls back to the hard cutoff and
// reports the context error.
func TestShutdownHardCutoff(t *testing.T) {
	srv, _ := startServer(t, ConfigSW, 1, nil)
	// A connection with admitted work that never finishes: its request
	// never arrives, so the drain cannot complete on its own.
	c := dialDrainClient(t, srv.Addr())
	if _, err := c.tc.Write([]byte("GET /12")); err != nil { // half a request line
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the worker read the partial request
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
	for _, w := range srv.Workers() {
		if n := w.ConnCount(); n != 0 {
			t.Fatalf("%s still holds %d connections after hard cutoff", w, n)
		}
	}
}

// The satellite regression: Stop hammered while handshakes are actively
// in flight, repeatedly and from multiple goroutines, must never
// double-close a descriptor, race the teardown, or strand an offload.
func TestStopDuringActiveHandshakes(t *testing.T) {
	for iter := 0; iter < 4; iter++ {
		dev := qat.NewDevice(qat.DeviceSpec{Endpoints: 3, EnginesPerEndpoint: 4, RingCapacity: 128})
		srv, err := New(Options{
			Addr:    "127.0.0.1:0",
			Workers: 2,
			Run:     ConfigQTLS,
			TLS: &minitls.Config{
				Identity:     identity(t),
				CipherSuites: []uint16{minitls.TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA},
			},
			Device:  dev,
			Handler: SizedBodyHandler(1 << 20),
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()

		loadDone := make(chan struct{})
		go func() {
			defer close(loadDone)
			loadgen.STime(loadgen.STimeOptions{
				Addr:     srv.Addr(),
				Clients:  8,
				Duration: 400 * time.Millisecond,
			})
		}()
		time.Sleep(40 * time.Millisecond) // handshakes now in flight

		var wg sync.WaitGroup
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				srv.Stop()
			}()
		}
		wg.Wait()
		<-loadDone

		for _, w := range srv.Workers() {
			if e := w.Engine(); e != nil && e.InflightTotal() != 0 {
				t.Fatalf("iter %d: %s left %d offloads in flight after Stop",
					iter, w, e.InflightTotal())
			}
		}
		dev.Close()
	}
}
