// Package server implements the event-driven HTTPS server QTLS is
// evaluated on: the equivalent of Nginx workers modified for asynchronous
// crypto offload (§4.2). Each worker owns one epoll event loop, one QAT
// crypto instance, the TLS-ASYNC connection state handling (including the
// saved read handler for event disorder), the heuristic polling scheme
// (§3.3/§4.3) and both async event notification schemes (§3.4/§4.4).
//
// The five configurations evaluated in the paper map onto RunConfig:
//
//	SW      — software crypto, no engine
//	QAT+S   — straight (blocking) offload
//	QAT+A   — async offload + timer-based polling + FD notification
//	QAT+AH  — async offload + heuristic polling + FD notification
//	QTLS    — async offload + heuristic polling + kernel-bypass notification
package server

import (
	"fmt"
	"time"

	"qtls/internal/fault"
	"qtls/internal/minitls"
)

// PollingScheme selects how QAT responses are retrieved (§3.3, §5.6).
type PollingScheme int

const (
	// PollNone: no accelerator (SW) or inline blocking retrieval (QAT+S).
	PollNone PollingScheme = iota
	// PollTimer: poll at fixed intervals (the default QAT Engine polling
	// thread; integrated into the loop's wait timeout in this functional
	// implementation — the separate-thread context-switch cost is modeled
	// in the DES, internal/perf).
	PollTimer
	// PollHeuristic: the QTLS heuristic polling scheme driven by in-flight
	// counts and active-connection counts.
	PollHeuristic
)

// String returns the scheme name.
func (p PollingScheme) String() string {
	switch p {
	case PollNone:
		return "none"
	case PollTimer:
		return "timer"
	case PollHeuristic:
		return "heuristic"
	default:
		return fmt.Sprintf("PollingScheme(%d)", int(p))
	}
}

// NotifyScheme selects how async events reach the event loop (§3.4).
type NotifyScheme int

const (
	// NotifyFD: the response callback writes to a descriptor monitored by
	// epoll — user/kernel switches on every event.
	NotifyFD NotifyScheme = iota
	// NotifyKernelBypass: the response callback pushes the saved async
	// handler onto an application-level async queue drained at the end of
	// the event loop.
	NotifyKernelBypass
)

// String returns the scheme name.
func (n NotifyScheme) String() string {
	switch n {
	case NotifyFD:
		return "fd"
	case NotifyKernelBypass:
		return "kernel-bypass"
	default:
		return fmt.Sprintf("NotifyScheme(%d)", int(n))
	}
}

// RunConfig selects the offload configuration of a worker, mirroring the
// paper's five evaluated configurations plus the knobs the SSL Engine
// Framework exposes in the Nginx conf (§A.7).
type RunConfig struct {
	// Name labels the configuration in stats and logs.
	Name string
	// UseQAT enables the accelerator engine.
	UseQAT bool
	// AsyncMode is the crypto-pause implementation; AsyncModeOff with
	// UseQAT selects the straight (blocking) offload mode.
	AsyncMode minitls.AsyncMode
	// Polling selects the response retrieval scheme.
	Polling PollingScheme
	// PollInterval is the timer polling period (default 10 µs, the QAT
	// Engine default).
	PollInterval time.Duration
	// Notify selects the async event notification scheme.
	Notify NotifyScheme
	// AsymThreshold is the heuristic coalescing threshold when asymmetric
	// requests are in flight (qat_heuristic_poll_asym_threshold, default
	// 48).
	AsymThreshold int
	// SymThreshold is the heuristic threshold otherwise
	// (qat_heuristic_poll_sym_threshold, default 24).
	SymThreshold int
	// FailoverInterval is the heuristic failover timer (default 5 ms,
	// §4.3).
	FailoverInterval time.Duration
	// Offload selects which crypto op kinds the engine offloads (the
	// default_algorithm directive, §A.7); nil means all offloadable
	// kinds.
	Offload []minitls.OpKind
	// InstancesPerWorker assigns this many crypto instances to each
	// worker (default 1; §2.3 allows several, from different endpoints,
	// to employ more computation engines).
	InstancesPerWorker int
	// CoalesceSubmits batches async submissions: ops paused within one
	// event-loop iteration are gathered by the engine and pushed onto the
	// request rings with one ring lock and one doorbell per batch — the
	// submit-side dual of heuristic polling. Straight offload (AsyncModeOff)
	// is unaffected. Off by default.
	CoalesceSubmits bool

	// OpTimeout bounds each offloaded crypto operation: past the
	// deadline the engine abandons the offload and computes the result
	// in software, so a sick device degrades handshakes instead of
	// hanging them (see internal/fault). 0 disables deadlines.
	OpTimeout time.Duration
	// MaxRetries bounds the engine's resubmissions after retryable
	// offload failures (endpoint reset, corrupted response) before the
	// software fallback.
	MaxRetries int
	// RetryBackoff is the engine's initial retry backoff (doubles per
	// attempt; only the straight-offload path sleeps).
	RetryBackoff time.Duration
	// Breaker, when set, gives every worker's crypto instances a circuit
	// breaker: instances whose recent offloads keep failing are taken
	// out of the submission rotation until half-open probes succeed.
	Breaker *fault.BreakerConfig
}

func (rc RunConfig) withDefaults() RunConfig {
	if rc.PollInterval <= 0 {
		rc.PollInterval = 10 * time.Microsecond
	}
	if rc.AsymThreshold <= 0 {
		rc.AsymThreshold = 48
	}
	if rc.SymThreshold <= 0 {
		rc.SymThreshold = 24
	}
	if rc.FailoverInterval <= 0 {
		rc.FailoverInterval = 5 * time.Millisecond
	}
	return rc
}

// The paper's five configurations.
var (
	// ConfigSW is software calculation with AES-NI-class instructions.
	ConfigSW = RunConfig{Name: "SW"}
	// ConfigQATS is the straight offload mode.
	ConfigQATS = RunConfig{Name: "QAT+S", UseQAT: true, AsyncMode: minitls.AsyncModeOff, Polling: PollNone}
	// ConfigQATA is the async framework with timer polling and FD
	// notification.
	ConfigQATA = RunConfig{Name: "QAT+A", UseQAT: true, AsyncMode: minitls.AsyncModeFiber, Polling: PollTimer, Notify: NotifyFD}
	// ConfigQATAH replaces the polling thread with the heuristic scheme.
	ConfigQATAH = RunConfig{Name: "QAT+AH", UseQAT: true, AsyncMode: minitls.AsyncModeFiber, Polling: PollHeuristic, Notify: NotifyFD}
	// ConfigQTLS is the full QTLS: heuristic polling + kernel bypass.
	ConfigQTLS = RunConfig{Name: "QTLS", UseQAT: true, AsyncMode: minitls.AsyncModeFiber, Polling: PollHeuristic, Notify: NotifyKernelBypass}
)

// Configurations lists the paper's five configurations in evaluation
// order.
func Configurations() []RunConfig {
	return []RunConfig{ConfigSW, ConfigQATS, ConfigQATA, ConfigQATAH, ConfigQTLS}
}
