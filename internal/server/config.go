// Package server implements the event-driven HTTPS server QTLS is
// evaluated on: the equivalent of Nginx workers modified for asynchronous
// crypto offload (§4.2). Each worker owns one epoll event loop, one QAT
// crypto instance, the TLS-ASYNC connection state handling (including the
// saved read handler for event disorder), the heuristic polling scheme
// (§3.3/§4.3) and both async event notification schemes (§3.4/§4.4).
//
// The offload-policy vocabulary — polling scheme and thresholds,
// notification scheme, submit strategy, and the five named configurations
// — lives in internal/offload and is shared with the DES performance
// model (internal/perf). This package re-exports the enum values under
// their historical names and adds the live-stack-only knobs (fiber mode,
// hardening ladder, instance counts).
//
// The five configurations evaluated in the paper map onto RunConfig:
//
//	SW      — software crypto, no engine
//	QAT+S   — straight (blocking) offload
//	QAT+A   — async offload + timer-based polling + FD notification
//	QAT+AH  — async offload + heuristic polling + FD notification
//	QTLS    — async offload + heuristic polling + kernel-bypass notification
package server

import (
	"time"

	"qtls/internal/fault"
	"qtls/internal/minitls"
	"qtls/internal/offload"
	"qtls/internal/qat"
)

// PollingScheme selects how QAT responses are retrieved (§3.3, §5.6).
// It is the shared offload.PollScheme under its historical name.
type PollingScheme = offload.PollScheme

const (
	// PollNone: no accelerator (SW) or inline blocking retrieval (QAT+S).
	PollNone = offload.PollNone
	// PollTimer: poll at fixed intervals (the default QAT Engine polling
	// thread; integrated into the loop's wait timeout in this functional
	// implementation — the separate-thread context-switch cost is modeled
	// in the DES, internal/perf).
	PollTimer = offload.PollTimer
	// PollHeuristic: the QTLS heuristic polling scheme driven by in-flight
	// counts and active-connection counts.
	PollHeuristic = offload.PollHeuristic
)

// NotifyScheme selects how async events reach the event loop (§3.4).
// It is the shared offload.NotifyScheme under its historical name; each
// worker builds the matching offload.Notifier implementation from it.
type NotifyScheme = offload.NotifyScheme

const (
	// NotifyFD: the response callback writes to a descriptor monitored by
	// epoll — user/kernel switches on every event.
	NotifyFD = offload.NotifierFD
	// NotifyKernelBypass: the response callback pushes the saved async
	// handler onto an application-level async queue drained at the end of
	// the event loop.
	NotifyKernelBypass = offload.NotifierKernelBypass
	// NotifyCoalesced: eventfd-style batched delivery — events queue in
	// user space, one wakeup write per completion batch.
	NotifyCoalesced = offload.NotifierCoalesced
)

// RunConfig selects the offload configuration of a worker, mirroring the
// paper's five evaluated configurations plus the knobs the SSL Engine
// Framework exposes in the Nginx conf (§A.7).
type RunConfig struct {
	// Name labels the configuration in stats and logs.
	Name string
	// UseQAT enables the accelerator engine.
	UseQAT bool
	// AsyncMode is the crypto-pause implementation; AsyncModeOff with
	// UseQAT selects the straight (blocking) offload mode.
	AsyncMode minitls.AsyncMode
	// Polling selects the response retrieval scheme.
	Polling PollingScheme
	// PollInterval is the timer polling period (default
	// offload.DefaultPollInterval, the QAT Engine default).
	PollInterval time.Duration
	// Notify selects the async event notification scheme.
	Notify NotifyScheme
	// AsymThreshold is the heuristic coalescing threshold when asymmetric
	// requests are in flight (qat_heuristic_poll_asym_threshold, default
	// offload.DefaultAsymThreshold).
	AsymThreshold int
	// SymThreshold is the heuristic threshold otherwise
	// (qat_heuristic_poll_sym_threshold, default
	// offload.DefaultSymThreshold).
	SymThreshold int
	// FailoverInterval is the heuristic failover timer (default
	// offload.DefaultFailoverInterval, §4.3).
	FailoverInterval time.Duration
	// Offload selects which crypto op kinds the engine offloads (the
	// default_algorithm directive, §A.7); nil means all offloadable
	// kinds.
	Offload []minitls.OpKind
	// InstancesPerWorker assigns this many crypto instances to each
	// worker (default 1; §2.3 allows several, from different endpoints,
	// to employ more computation engines).
	InstancesPerWorker int
	// CoalesceSubmits batches async submissions: ops paused within one
	// event-loop iteration are gathered by the engine and pushed onto the
	// request rings with one ring lock and one doorbell per batch — the
	// submit-side dual of heuristic polling. Straight offload (AsyncModeOff)
	// is unaffected. Off by default.
	CoalesceSubmits bool
	// RecordMode selects the post-handshake record data plane
	// (qat_record_offload): software (the paper's configuration),
	// offload every application-data record, or offload adaptively above
	// RecordThreshold. Non-software modes hand each connection's write
	// keys to a per-worker record engine (internal/record) after the
	// handshake, kTLS style.
	RecordMode offload.RecordMode
	// RecordThreshold is the adaptive record-offload cutoff in payload
	// bytes (default offload.DefaultRecordThreshold; RecordAdaptive only).
	RecordThreshold int
	// Placement selects how workers spread offload work across the
	// devices of a qat.Pool (Options.Pool). The zero value pins all work
	// to device 0 — the paper's single-device setup, byte-identical to
	// the pre-placement behavior. PlacementClassShard routes asymmetric
	// handshake ops and symmetric/PRF ops to disjoint device sets inside
	// every worker's engine; PlacementConnHash homes each worker (and
	// with it every connection SO_REUSEPORT hashes to it) on one device.
	Placement offload.Placement

	// OpTimeout bounds each offloaded crypto operation: past the
	// deadline the engine abandons the offload and computes the result
	// in software, so a sick device degrades handshakes instead of
	// hanging them (see internal/fault). 0 disables deadlines.
	OpTimeout time.Duration
	// MaxRetries bounds the engine's resubmissions after retryable
	// offload failures (endpoint reset, corrupted response) before the
	// software fallback.
	MaxRetries int
	// RetryBackoff is the engine's initial retry backoff (doubles per
	// attempt; only the straight-offload path sleeps).
	RetryBackoff time.Duration
	// Breaker, when set, gives every worker's crypto instances a circuit
	// breaker: instances whose recent offloads keep failing are taken
	// out of the submission rotation until half-open probes succeed.
	Breaker *fault.BreakerConfig
	// Lifecycle, when set, arms the per-device lifecycle manager
	// (healthy → suspect → quarantined → probation → healthy): breaker
	// opens, reset storms and wedges quarantine a device, quarantine
	// drains its in-flight ops through the fallback path, routing and
	// conn-hash worker homes move off it (and move back after probation
	// re-admits it). Zero fields of the config take the qat defaults.
	// Nil keeps devices unmanaged — the pre-lifecycle behavior.
	Lifecycle *qat.LifecycleConfig

	// Deadlines are the connection-lifecycle deadlines (handshake,
	// request-header, keepalive-idle, write-stall) enforced by each
	// worker's deadline wheel. Zero fields take the offload defaults; a
	// negative timeout disables that class.
	Deadlines offload.DeadlinePolicy
	// Overload is the admission-control policy: connections are shed with
	// a TCP reset at accept time, and denied keepalive reuse, when QAT
	// inflight pressure or the connection count says the worker is beyond
	// its capacity. Zero fields take the offload defaults.
	Overload offload.OverloadPolicy

	// AdaptivePoll, when non-nil, arms the closed-loop threshold
	// controller (PollHeuristic only): each worker walks its asym/sym
	// efficiency thresholds toward the retrieve-latency knee, fed by the
	// flight recorder's retrieve-phase window and a per-worker
	// completion-batch window. Requires the trace and flight recorders
	// (they are the feedback source). Zero fields of the config take the
	// offload defaults. Nil keeps the paper's static thresholds.
	AdaptivePoll *offload.AdaptiveConfig
}

// pollPolicy resolves the RunConfig's retrieval knobs into the shared
// policy value, applying the paper's defaults for unset parameters.
func (rc RunConfig) pollPolicy() offload.PollPolicy {
	return offload.PollPolicy{
		Scheme:           rc.Polling,
		Interval:         rc.PollInterval,
		AsymThreshold:    rc.AsymThreshold,
		SymThreshold:     rc.SymThreshold,
		FailoverInterval: rc.FailoverInterval,
	}.WithDefaults()
}

// recordPolicy resolves the record-path knobs into the shared policy
// value.
func (rc RunConfig) recordPolicy() offload.RecordPolicy {
	return offload.RecordPolicy{
		Mode:          rc.RecordMode,
		SizeThreshold: rc.RecordThreshold,
	}.WithDefaults()
}

func (rc RunConfig) withDefaults() RunConfig {
	p := rc.pollPolicy()
	rc.PollInterval = p.Interval
	rc.AsymThreshold = p.AsymThreshold
	rc.SymThreshold = p.SymThreshold
	rc.FailoverInterval = p.FailoverInterval
	rc.RecordThreshold = rc.recordPolicy().SizeThreshold
	rc.Deadlines = rc.Deadlines.WithDefaults()
	rc.Overload = rc.Overload.WithDefaults()
	return rc
}

// OffloadPolicy resolves the RunConfig into the shared offload-policy
// vocabulary (defaults applied). The DES's perf.Config resolves to the
// same value for each of the five named configurations — the parity test
// in internal/offload holds the two stacks together.
func (rc RunConfig) OffloadPolicy() offload.Policy {
	p := offload.Policy{
		Name:      rc.Name,
		UseQAT:    rc.UseQAT,
		Async:     rc.UseQAT && rc.AsyncMode != minitls.AsyncModeOff,
		Poll:      rc.pollPolicy(),
		Notify:    rc.Notify,
		Record:    rc.recordPolicy(),
		Placement: rc.Placement,
	}
	if rc.CoalesceSubmits {
		p.Submit = offload.SubmitCoalesced
	}
	return p
}

// FromPolicy builds a RunConfig from a shared offload policy. Async
// policies run the fiber pause implementation (the OpenSSL ASYNC_JOB
// equivalent the paper ships, §4.1).
func FromPolicy(p offload.Policy) RunConfig {
	rc := RunConfig{
		Name:             p.Name,
		UseQAT:           p.UseQAT,
		Polling:          p.Poll.Scheme,
		PollInterval:     p.Poll.Interval,
		AsymThreshold:    p.Poll.AsymThreshold,
		SymThreshold:     p.Poll.SymThreshold,
		FailoverInterval: p.Poll.FailoverInterval,
		Notify:           p.Notify,
		CoalesceSubmits:  p.Submit == offload.SubmitCoalesced,
		RecordMode:       p.Record.Mode,
		RecordThreshold:  p.Record.SizeThreshold,
		Placement:        p.Placement,
	}
	if p.Async {
		rc.AsyncMode = minitls.AsyncModeFiber
	}
	return rc
}

// The paper's five configurations, derived from the shared policy layer.
var (
	// ConfigSW is software calculation with AES-NI-class instructions.
	ConfigSW = FromPolicy(offload.SW())
	// ConfigQATS is the straight offload mode.
	ConfigQATS = FromPolicy(offload.QATS())
	// ConfigQATA is the async framework with timer polling and FD
	// notification.
	ConfigQATA = FromPolicy(offload.QATA())
	// ConfigQATAH replaces the polling thread with the heuristic scheme.
	ConfigQATAH = FromPolicy(offload.QATAH())
	// ConfigQTLS is the full QTLS: heuristic polling + kernel bypass.
	ConfigQTLS = FromPolicy(offload.QTLS())
)

// Configurations lists the paper's five configurations in evaluation
// order.
func Configurations() []RunConfig {
	return []RunConfig{ConfigSW, ConfigQATS, ConfigQATA, ConfigQATAH, ConfigQTLS}
}
