//go:build linux

package server

import "testing"

func TestRequestWantsClose(t *testing.T) {
	cases := []struct {
		name string
		req  string
		want bool
	}{
		{"no headers", "GET / HTTP/1.1", false},
		{"keep-alive", "GET / HTTP/1.1\r\nConnection: keep-alive", false},
		{"plain close", "GET / HTTP/1.1\r\nConnection: close", true},
		{"mixed case", "GET / HTTP/1.1\r\nCONNECTION: Close", true},
		{"surrounding space", "GET / HTTP/1.1\r\nConnection :   close  ", true},
		{"multiple tokens", "GET / HTTP/1.1\r\nConnection: keep-alive, close", true},
		{"multiple tokens no close", "GET / HTTP/1.1\r\nConnection: keep-alive, upgrade", false},
		{"token is a substring", "GET / HTTP/1.1\r\nConnection: close-ish", false},
		{"missing value", "GET / HTTP/1.1\r\nConnection:", false},
		{"second connection header", "GET / HTTP/1.1\r\nConnection: keep-alive\r\nConnection: close", true},
		{"folded continuation", "GET / HTTP/1.1\r\nConnection: keep-alive,\r\n close", true},
		{"folded with tab", "GET / HTTP/1.1\r\nConnection: upgrade,\r\n\tclose", true},
		{"folded other header", "GET / HTTP/1.1\r\nX-Note: first,\r\n close\r\nConnection: keep-alive", false},
		{"close in other header", "GET / HTTP/1.1\r\nX-Mode: close", false},
		{"prefixed header name", "GET / HTTP/1.1\r\nX-Connection: close", false},
		{"lower name upper value", "GET / HTTP/1.1\r\nconnection:   CLOSE", true},
		{"close in request line", "GET /close HTTP/1.1\r\nHost: x", false},
		{"request line with colon", "GET /a:close HTTP/1.1\r\nHost: x", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := requestWantsClose([]byte(tc.req)); got != tc.want {
				t.Fatalf("requestWantsClose(%q) = %v, want %v", tc.req, got, tc.want)
			}
		})
	}
}

func TestASCIIEqualFold(t *testing.T) {
	cases := []struct {
		b, s string
		want bool
	}{
		{"connection", "connection", true},
		{"CONNECTION", "connection", true},
		{"CoNnEcTiOn", "connection", true},
		{"connectio", "connection", false},
		{"connectionn", "connection", false},
		{"", "", true},
		// Folding is one-directional: the reference string must already be
		// lower-case, and non-ASCII bytes must match exactly.
		{"close\x80", "close\x80", true},
	}
	for _, tc := range cases {
		if got := asciiEqualFold([]byte(tc.b), tc.s); got != tc.want {
			t.Errorf("asciiEqualFold(%q, %q) = %v, want %v", tc.b, tc.s, got, tc.want)
		}
	}
}
